package server

import (
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/wire"
)

// TestWedgedConnectionReaped is the satellite deadline test: a peer that
// connects and never sends a complete frame must be disconnected by the
// idle deadline instead of pinning its handler goroutine forever.
func TestWedgedConnectionReaped(t *testing.T) {
	s := NewWithOptions(testStore(t), nil, Options{IdleTimeout: 50 * time.Millisecond})
	client, srv := net.Pipe()
	done := make(chan struct{})
	go func() {
		s.ServeConn(srv)
		close(done)
	}()
	// Send half a frame header, then wedge.
	if _, err := client.Write([]byte{0x01, 0x00}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wedged connection was never reaped")
	}
	client.Close()
}

// TestIdleTimeoutSparesActivePeers: consecutive requests inside the
// deadline keep the connection alive — the deadline is per-frame, not
// per-connection.
func TestIdleTimeoutSparesActivePeers(t *testing.T) {
	s := NewWithOptions(testStore(t), nil, Options{IdleTimeout: 200 * time.Millisecond})
	client, srv := net.Pipe()
	defer client.Close()
	go s.ServeConn(srv)
	for i := 0; i < 3; i++ {
		time.Sleep(50 * time.Millisecond)
		if err := wire.WriteFrame(client, wire.Frame{Type: wire.CmdList}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		f, err := wire.ReadFrame(client)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if f.Type != wire.RespList {
			t.Fatalf("response %d type %#x", i, f.Type)
		}
	}
}

func TestMaxConnsRefusesExcess(t *testing.T) {
	s := NewWithOptions(testStore(t), nil, Options{MaxConns: 2})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer s.Close()

	dial := func() net.Conn {
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	// Two live connections fill the house (prove liveness with a request).
	c1, c2 := dial(), dial()
	defer c1.Close()
	defer c2.Close()
	for _, c := range []net.Conn{c1, c2} {
		if err := wire.WriteFrame(c, wire.Frame{Type: wire.CmdList}); err != nil {
			t.Fatal(err)
		}
		if _, err := wire.ReadFrame(c); err != nil {
			t.Fatal(err)
		}
	}
	// The third is closed without service: its first read reports EOF.
	c3 := dial()
	defer c3.Close()
	if err := wire.WriteFrame(c3, wire.Frame{Type: wire.CmdList}); err == nil {
		c3.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := wire.ReadFrame(c3); err == nil {
			t.Fatal("third connection was served past MaxConns=2")
		}
	}
	// Freeing a slot lets the next connection in.
	c1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		c4 := dial()
		err := wire.WriteFrame(c4, wire.Frame{Type: wire.CmdList})
		if err == nil {
			_, err = wire.ReadFrame(c4)
		}
		c4.Close()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after closing a connection")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestReadOnlyRejectsMutations(t *testing.T) {
	s := NewWithOptions(testStore(t), nil, Options{ReadOnly: true})
	for _, f := range []wire.Frame{
		storeFrame("emp", encTable(1)),
		{Type: wire.CmdInsert, Payload: wire.AppendU32(wire.AppendString(nil, "emp"), 0)},
		{Type: wire.CmdInsertStamped, Payload: wire.AppendU32(wire.AppendString(nil, "emp"), 0)},
		{Type: wire.CmdDrop, Payload: wire.AppendString(nil, "emp")},
	} {
		if resp := s.dispatch(f, nil); resp.Type != wire.RespError {
			t.Fatalf("read-only server answered %#x to mutation %#x", resp.Type, f.Type)
		}
	}
	// Reads still work.
	if resp := s.dispatch(wire.Frame{Type: wire.CmdList}, nil); resp.Type != wire.RespList {
		t.Fatalf("read-only server refused CmdList: %#x", resp.Type)
	}
}

func TestShipLogCommand(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	st, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(st, nil)
	if resp := s.dispatch(storeFrame("emp", encTable(3)), nil); resp.Type != wire.RespOK {
		t.Fatalf("store: %#x %s", resp.Type, resp.Payload)
	}

	ship := func(epoch, from uint64, maxBytes uint32) (recs []wire.LogRecord, gotEpoch, start, head uint64) {
		t.Helper()
		payload := wire.AppendU64(nil, epoch)
		payload = wire.AppendU64(payload, from)
		payload = wire.AppendU32(payload, maxBytes)
		resp := s.dispatch(wire.Frame{Type: wire.CmdShipLog, Payload: payload}, nil)
		if resp.Type != wire.RespLogChunk {
			t.Fatalf("ship response %#x: %s", resp.Type, resp.Payload)
		}
		r := wire.NewBuffer(resp.Payload)
		if gotEpoch, err = r.U64(); err != nil {
			t.Fatal(err)
		}
		if start, err = r.U64(); err != nil {
			t.Fatal(err)
		}
		if head, err = r.U64(); err != nil {
			t.Fatal(err)
		}
		n, err := r.U32()
		if err != nil {
			t.Fatal(err)
		}
		for i := uint32(0); i < n; i++ {
			op, err := r.U8()
			if err != nil {
				t.Fatal(err)
			}
			p, err := r.Bytes()
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, wire.LogRecord{Op: op, Payload: p})
		}
		return recs, gotEpoch, start, head
	}

	// Bootstrap from an unknown cursor.
	recs, epoch, start, head := ship(0, 0, 1<<20)
	if start != 0 || head != 1 || len(recs) != 1 {
		t.Fatalf("bootstrap: start %d head %d recs %d", start, head, len(recs))
	}
	if epoch != st.LogEpoch() {
		t.Fatalf("epoch %d, store says %d", epoch, st.LogEpoch())
	}
	// Caught-up cursor ships nothing.
	recs, _, start, head = ship(epoch, 1, 1<<20)
	if len(recs) != 0 || start != 1 || head != 1 {
		t.Fatalf("caught up: start %d head %d recs %d", start, head, len(recs))
	}
	// A hostile cursor is clamped to the bootstrap stream.
	_, _, start, _ = ship(epoch, 1<<50, 1<<20)
	if start != 0 {
		t.Fatalf("hostile cursor served from %d, want 0", start)
	}
	// A truncated request frame is an error, not a panic.
	if resp := s.dispatch(wire.Frame{Type: wire.CmdShipLog, Payload: []byte{1, 2}}, nil); resp.Type != wire.RespError {
		t.Fatalf("truncated ship request answered %#x", resp.Type)
	}
}

// TestInflightFloorBoundsThroughput pins the capacity model E18 leans
// on: with MaxInflight=1 and a service-time floor, N requests take at
// least N*floor, however fast the machine is.
func TestInflightFloorBoundsThroughput(t *testing.T) {
	s := NewWithOptions(testStore(t), nil, Options{MaxInflight: 1, MinServiceTime: 10 * time.Millisecond})
	start := time.Now()
	const n = 5
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func() {
			s.serveRequest(wire.Frame{Type: wire.CmdList}, nil)
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	if elapsed := time.Since(start); elapsed < n*10*time.Millisecond {
		t.Fatalf("%d requests finished in %v; the floor should force >= %v", n, elapsed, n*10*time.Millisecond)
	}
}
