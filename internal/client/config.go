package client

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/schemes/bucket"
	"repro/internal/schemes/damiani"
	"repro/internal/schemes/detph"
	"repro/internal/schemes/gohph"
)

// Config is the client-side description of an outsourcing setup: which
// remote tables exist, their schemas, and how each is encrypted. It
// contains **no key material** — per-table keys are derived on demand from
// a master key the application supplies (e.g. from a passphrase), so the
// config file can live on disk unprotected.
type Config struct {
	// Tables holds one entry per outsourced table.
	Tables []TableConfig `json:"tables"`
	// Net holds the transport knobs (dial retry, I/O deadlines, read
	// replicas). The zero value keeps the library defaults.
	Net NetConfig `json:"net,omitempty"`
	// Shards, when present, describes a sharded serving tier: the catalog
	// scatters to these backends through an in-process coordinator
	// instead of talking to one server. Net.Replicas is ignored in
	// sharded mode — followers attach per shard.
	Shards *ShardsConfig `json:"shards,omitempty"`
}

// ShardsConfig is the JSON form of a versioned partition map: which
// shard backends exist, in partition order, and which map version the
// placement hash is stamped with. The shard *order is the partition
// map* — reordering entries reshards the data — so edits must bump
// Version and re-upload.
type ShardsConfig struct {
	// Version stamps the partition map; servers echo it so a client
	// with a stale config fails loudly instead of merging mis-routed
	// answers.
	Version uint64 `json:"version"`
	// Shards lists the backends in partition order.
	Shards []ShardConfig `json:"shards"`
}

// ShardConfig describes one shard backend.
type ShardConfig struct {
	// Addr is the shard primary's address.
	Addr string `json:"addr"`
	// Replicas lists read-replica addresses for this shard.
	Replicas []string `json:"replicas,omitempty"`
}

// NetConfig is the JSON form of the client's transport knobs. All
// durations are milliseconds; zero means "library default" everywhere
// (see DialConfig).
type NetConfig struct {
	// DialTimeoutMS bounds one dial attempt.
	DialTimeoutMS int `json:"dial_timeout_ms,omitempty"`
	// DialAttempts is the total number of dial attempts before giving up.
	DialAttempts int `json:"dial_attempts,omitempty"`
	// DialBackoffMinMS/DialBackoffMaxMS bound the jittered doubling wait
	// between attempts.
	DialBackoffMinMS int `json:"dial_backoff_min_ms,omitempty"`
	DialBackoffMaxMS int `json:"dial_backoff_max_ms,omitempty"`
	// IOTimeoutMS bounds every round trip on established connections.
	IOTimeoutMS int `json:"io_timeout_ms,omitempty"`
	// Replicas lists read-replica addresses; pass them to DB.AddReplicas
	// to spread verified reads with primary failover.
	Replicas []string `json:"replicas,omitempty"`
}

// DialConfig converts the JSON knobs into a DialConfig.
func (nc NetConfig) DialConfig() DialConfig {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	return DialConfig{
		Timeout:    ms(nc.DialTimeoutMS),
		Attempts:   nc.DialAttempts,
		BackoffMin: ms(nc.DialBackoffMinMS),
		BackoffMax: ms(nc.DialBackoffMaxMS),
		IOTimeout:  ms(nc.IOTimeoutMS),
	}
}

// TableConfig describes one outsourced table.
type TableConfig struct {
	// Remote is the table name at the server.
	Remote string `json:"remote"`
	// Scheme is the scheme ID (swp-ph, bucket, damiani, detph).
	Scheme string `json:"scheme"`
	// Schema describes the plaintext relation.
	Schema SchemaConfig `json:"schema"`
	// ChecksumLen is the SWP checksum width for swp-ph (0 = default).
	ChecksumLen int `json:"checksum_len,omitempty"`
	// PerColumnWidth enables the variable-length layout for swp-ph.
	PerColumnWidth bool `json:"per_column_width,omitempty"`
	// Buckets is the bucket count for bucket/damiani (0 = default).
	Buckets int `json:"buckets,omitempty"`
	// IntDomains declares integer domains for the bucket scheme.
	IntDomains map[string]bucket.Domain `json:"int_domains,omitempty"`
	// FPRate is the Bloom false-positive target for goh-ph (0 = default).
	FPRate float64 `json:"fp_rate,omitempty"`
}

// SchemaConfig is the JSON form of a relation schema.
type SchemaConfig struct {
	// Name is the relation name.
	Name string `json:"name"`
	// Columns lists the attributes in order.
	Columns []ColumnConfig `json:"columns"`
}

// ColumnConfig is the JSON form of one column.
type ColumnConfig struct {
	// Name is the attribute name.
	Name string `json:"name"`
	// Type is "string" or "int".
	Type string `json:"type"`
	// Width is the maximum encoded width.
	Width int `json:"width"`
}

// SchemaConfigOf converts a schema into its JSON form.
func SchemaConfigOf(s *relation.Schema) SchemaConfig {
	sc := SchemaConfig{Name: s.Name}
	for _, c := range s.Columns {
		sc.Columns = append(sc.Columns, ColumnConfig{Name: c.Name, Type: c.Type.String(), Width: c.Width})
	}
	return sc
}

// Build validates the JSON form back into a schema.
func (sc SchemaConfig) Build() (*relation.Schema, error) {
	cols := make([]relation.Column, len(sc.Columns))
	for i, cc := range sc.Columns {
		var typ relation.Type
		switch cc.Type {
		case "string":
			typ = relation.TypeString
		case "int":
			typ = relation.TypeInt
		default:
			return nil, fmt.Errorf("client: column %q has unknown type %q", cc.Name, cc.Type)
		}
		cols[i] = relation.Column{Name: cc.Name, Type: typ, Width: cc.Width}
	}
	return relation.NewSchema(sc.Name, cols...)
}

// BuildScheme instantiates the table's privacy homomorphism. The table key
// is derived from the master key and the remote table name, so one
// passphrase serves a whole catalog without key reuse across tables.
func (tc TableConfig) BuildScheme(master crypto.Key) (ph.Scheme, error) {
	schema, err := tc.Schema.Build()
	if err != nil {
		return nil, err
	}
	key := crypto.NewPRF(master).DeriveKey("client/table-key", []byte(tc.Remote))
	switch tc.Scheme {
	case core.SchemeID:
		return core.New(key, schema, core.Options{
			ChecksumLen:    tc.ChecksumLen,
			PerColumnWidth: tc.PerColumnWidth,
		})
	case bucket.SchemeID:
		return bucket.New(key, schema, bucket.Options{Buckets: tc.Buckets, IntDomains: tc.IntDomains})
	case damiani.SchemeID:
		return damiani.New(key, schema, damiani.Options{Buckets: tc.Buckets})
	case detph.SchemeID:
		return detph.New(key, schema)
	case gohph.SchemeID:
		return gohph.New(key, schema, gohph.Options{FPRate: tc.FPRate})
	default:
		return nil, fmt.Errorf("client: unknown scheme %q for table %q", tc.Scheme, tc.Remote)
	}
}

// AttachAll builds every table in the config and attaches it to a catalog
// over the connection.
func (c *Config) AttachAll(conn *Conn, master crypto.Key) (*Catalog, error) {
	cat := NewCatalog(conn)
	for _, tc := range c.Tables {
		scheme, err := tc.BuildScheme(master)
		if err != nil {
			return nil, fmt.Errorf("client: table %q: %w", tc.Remote, err)
		}
		if _, err := cat.Attach(tc.Remote, scheme); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// AttachAllSharded builds every table in the config and attaches it to a
// catalog over a sharded serving tier (built from the config's Shards
// section, e.g. with shard.FromConfig).
func (c *Config) AttachAllSharded(cl Cluster, master crypto.Key) (*Catalog, error) {
	cat := NewShardedCatalog(cl)
	for _, tc := range c.Tables {
		scheme, err := tc.BuildScheme(master)
		if err != nil {
			return nil, fmt.Errorf("client: table %q: %w", tc.Remote, err)
		}
		if _, err := cat.Attach(tc.Remote, scheme); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// SaveConfig writes the config as JSON to path (0600: it names tables and
// schemas, which are metadata Alex may prefer to keep private, though no
// keys are inside).
func SaveConfig(path string, c *Config) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("client: encoding config: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o600); err != nil {
		return fmt.Errorf("client: writing config: %w", err)
	}
	return nil
}

// LoadConfig reads a JSON config from path and validates every schema.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("client: reading config: %w", err)
	}
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("client: parsing config %s: %w", path, err)
	}
	seen := map[string]bool{}
	for _, tc := range c.Tables {
		if tc.Remote == "" {
			return nil, fmt.Errorf("client: config %s: table with empty remote name", path)
		}
		if seen[tc.Remote] {
			return nil, fmt.Errorf("client: config %s: duplicate table %q", path, tc.Remote)
		}
		seen[tc.Remote] = true
		if _, err := tc.Schema.Build(); err != nil {
			return nil, fmt.Errorf("client: config %s: table %q: %w", path, tc.Remote, err)
		}
	}
	if sc := c.Shards; sc != nil {
		if len(sc.Shards) == 0 {
			return nil, fmt.Errorf("client: config %s: shards section with no shards", path)
		}
		for i, s := range sc.Shards {
			if s.Addr == "" {
				return nil, fmt.Errorf("client: config %s: shard %d has no address", path, i)
			}
		}
	}
	return &c, nil
}
