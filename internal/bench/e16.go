package bench

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/authindex"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/workload"
)

// RunE16 regenerates experiment E16 (extension): the verified-read path
// before/after the versioned incremental authenticated index. The
// before-side reproduces the seed's serving shape — every CmdRoot and
// CmdProve deep-copied the whole table (Store.Get) and rebuilt the
// Merkle tree from scratch, and a verified select paid that twice (root
// fetch + proof fetch) on top of the query. The after-side is the
// one-round QueryVerified: result, proofs, root and version cut from one
// read-locked snapshot over the incrementally extended tree.
//
// Four measurements:
//
//  1. hot-word query: unverified (cache hit) vs one-round verified —
//     the "verified reads as cheap as cached reads" claim;
//  2. verified hot-word query: seed shape (two rebuilds per request) vs
//     engine (incremental tree);
//  3. append-then-verified-requery: rebuild-after-append vs Extend;
//  4. proof throughput (proofs/s) over a result-sized position batch,
//     rebuild-per-request vs incremental tree.
//
// A built-in gate verifies every proof produced while measuring against
// the root it travelled with, and the incremental root against a
// from-scratch rebuild of the final table.
func RunE16(tuples int, seed int64) (*Table, error) {
	t := &Table{
		ID: "E16",
		Title: fmt.Sprintf("verified reads: incremental authenticated index vs rebuild-per-request (table: %d tuples)",
			tuples),
		Header: []string{"path", "unit", "ns/op", "B/op", "allocs/op"},
		Notes: []string{
			"'seed' rows reproduce the pre-index serving shape: Store.Get deep-copies the table and authindex.Build rebuilds the whole tree per request; a verified select paid that for the root AND again for the proofs",
			"'engine' rows use the store's versioned per-table tree: built once, extended incrementally on append, served under the same read lock as the tuples",
		},
	}

	key, err := crypto.RandomKey()
	if err != nil {
		return nil, err
	}
	table, err := workload.Employees(tuples, seed)
	if err != nil {
		return nil, err
	}
	scheme, err := core.New(key, table.Schema(), core.Options{})
	if err != nil {
		return nil, err
	}
	ct, err := scheme.EncryptTable(table)
	if err != nil {
		return nil, err
	}
	hotQ, err := scheme.EncryptQuery(relation.Eq{Column: "dept", Value: relation.String("FIN")})
	if err != nil {
		return nil, err
	}

	store := storage.NewMemory()
	if err := store.Put("emp", ct); err != nil {
		return nil, err
	}
	if _, err := store.Query("emp", hotQ); err != nil { // warm the result cache
		return nil, err
	}

	// seedVerifiedSelect is the seed's verified select, faithfully: query,
	// then root via deep-copy + rebuild, then proofs via another
	// deep-copy + rebuild.
	seedVerifiedSelect := func() (*ph.Result, []byte, []authindex.Proof, error) {
		res, err := store.Query("emp", hotQ)
		if err != nil {
			return nil, nil, nil, err
		}
		rt, err := store.Get("emp")
		if err != nil {
			return nil, nil, nil, err
		}
		root := authindex.Build(rt).Root()
		pt, err := store.Get("emp")
		if err != nil {
			return nil, nil, nil, err
		}
		proofs, err := authindex.Build(pt).Prove(res.Positions)
		if err != nil {
			return nil, nil, nil, err
		}
		return res, root, proofs, nil
	}

	// --- 1 + 2. Hot-word serving cost. ---
	unverified := testing.Benchmark(func(b *testing.B) { benchStoreQuery(b, store, hotQ) })
	addBenchRow(t, "hot query: unverified (cache hit)", "per query", unverified)

	seedVerified := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := seedVerifiedSelect(); err != nil {
				b.Fatal(err)
			}
		}
	})
	addBenchRow(t, "hot query: verified, seed (2x copy+rebuild)", "per query", seedVerified)

	engineVerified := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := store.QueryVerified("emp", hotQ); err != nil {
				b.Fatal(err)
			}
		}
	})
	addBenchRow(t, "hot query: verified, engine (one-round)", "per query", engineVerified)
	if unverified.NsPerOp() > 0 && engineVerified.NsPerOp() > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"verified vs unverified hot query: %.2fx the cached latency (seed shape was %.1fx); verified vs seed verified: %.1fx faster",
			float64(engineVerified.NsPerOp())/float64(unverified.NsPerOp()),
			float64(seedVerified.NsPerOp())/float64(unverified.NsPerOp()),
			float64(seedVerified.NsPerOp())/float64(engineVerified.NsPerOp())))
	}

	// --- 3. Append then verified requery: rebuild vs Extend. The seed
	// side appends to a second store that serves its tree by rebuild; the
	// engine side appends to the live store (tree already materialised)
	// and pays only the extend + delta scan + proofs. ---
	oneTuple, err := encryptFreshTuples(scheme, 1, seed+1)
	if err != nil {
		return nil, err
	}
	seedAppend := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := store.Append("emp", oneTuple); err != nil {
				b.Fatal(err)
			}
			if _, _, _, err := seedVerifiedSelect(); err != nil {
				b.Fatal(err)
			}
		}
	})
	addBenchRow(t, "append+verified requery: seed (rebuild)", "per append+query", seedAppend)
	engineAppend := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := store.Append("emp", oneTuple); err != nil {
				b.Fatal(err)
			}
			if _, err := store.QueryVerified("emp", hotQ); err != nil {
				b.Fatal(err)
			}
		}
	})
	addBenchRow(t, "append+verified requery: engine (extend)", "per append+query", engineAppend)
	if engineAppend.NsPerOp() > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("append-then-verified-requery: %.1fx faster than the rebuild shape",
			float64(seedAppend.NsPerOp())/float64(engineAppend.NsPerOp())))
	}

	// --- 4. Proof throughput over a result-sized batch. ---
	vr, err := store.QueryVerified("emp", hotQ)
	if err != nil {
		return nil, err
	}
	positions := vr.Result.Positions
	if len(positions) == 0 {
		return nil, fmt.Errorf("bench: e16 hot word matched nothing")
	}
	proofThroughput := func(prove func() error) (float64, error) {
		const rounds = 64
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if err := prove(); err != nil {
				return 0, err
			}
		}
		return float64(rounds*len(positions)) / time.Since(start).Seconds(), nil
	}
	seedPPS, err := proofThroughput(func() error {
		pt, err := store.Get("emp")
		if err != nil {
			return err
		}
		_, err = authindex.Build(pt).Prove(positions)
		return err
	})
	if err != nil {
		return nil, err
	}
	enginePPS, err := proofThroughput(func() error {
		_, _, _, _, err := store.Prove("emp", positions)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("proof throughput: seed (copy+rebuild)", "proofs/s", fmt.Sprintf("%.0f", seedPPS), "-", "-")
	t.AddRow("proof throughput: engine (incremental)", "proofs/s", fmt.Sprintf("%.0f", enginePPS), "-", "-")
	if seedPPS > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("proof throughput over %d-position batches: %.0f vs %.0f proofs/s (%.1fx)",
			len(positions), enginePPS, seedPPS, enginePPS/seedPPS))
	}

	// --- Correctness gate: the engine's verified answer must verify
	// against the root it carries, and that root must equal a rebuild of
	// the final table. ---
	final, err := store.QueryVerified("emp", hotQ)
	if err != nil {
		return nil, err
	}
	for i, p := range final.Proofs {
		if err := authindex.Verify(final.Root, final.Leaves, final.Result.Tuples[i], p); err != nil {
			return nil, fmt.Errorf("bench: e16 gate: proof %d rejected: %w", i, err)
		}
	}
	full, err := store.Get("emp")
	if err != nil {
		return nil, err
	}
	if want := authindex.Build(full).Root(); !bytes.Equal(final.Root, want) {
		return nil, fmt.Errorf("bench: e16 gate: incremental root differs from rebuild")
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"correctness gate: every proof verified against its snapshot root, and the incrementally extended root matches a from-scratch rebuild of the final %d-tuple table", len(full.Tuples)))
	return t, nil
}
