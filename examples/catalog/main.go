// Catalog: several outsourced tables, several schemes, one passphrase.
// A JSON config (no keys inside — per-table keys are derived from the
// master passphrase) attaches an employee table under the paper's SWP
// construction and a patient table under the Goh instantiation; SQL is
// routed to the right table and scheme by its FROM clause.
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/relation"
	"repro/internal/schemes/gohph"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/workload"
)

// pickSalary returns the salary of some HR employee so the example's
// conjunction has a non-empty intersection.
func pickSalary(t *relation.Table) int64 {
	s := t.Schema()
	dept, salary := s.ColumnIndex("dept"), s.ColumnIndex("salary")
	for _, tp := range t.Tuples() {
		if tp[dept].Equal(relation.String("HR")) {
			return tp[salary].Integer()
		}
	}
	return 7500
}

func main() {
	// Eve.
	srv := server.New(storage.NewMemory(), nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	// The setup Alex persists: table names, schemas, schemes — no keys.
	cfg := &client.Config{Tables: []client.TableConfig{
		{
			Remote: "payroll",
			Scheme: core.SchemeID,
			Schema: client.SchemaConfigOf(workload.EmployeeSchema()),
		},
		{
			Remote: "clinic",
			Scheme: gohph.SchemeID,
			Schema: client.SchemaConfigOf(workload.HospitalSchema()),
		},
	}}
	dir, err := os.MkdirTemp("", "catalog-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfgPath := filepath.Join(dir, "client.json")
	if err := client.SaveConfig(cfgPath, cfg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("config written to %s (no key material inside)\n", cfgPath)

	// Alex: one passphrase unlocks the whole catalog.
	loaded, err := client.LoadConfig(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	conn, err := client.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	master := crypto.KeyFromBytes([]byte("one passphrase to rule them all"))
	cat, err := loaded.AttachAll(conn, master)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attached tables: %v\n\n", cat.Names())

	// Populate both tables through their handles.
	payroll, err := cat.DB("payroll")
	if err != nil {
		log.Fatal(err)
	}
	emp, err := workload.Employees(150, 11)
	if err != nil {
		log.Fatal(err)
	}
	if err := payroll.CreateTable(emp); err != nil {
		log.Fatal(err)
	}
	clinic, err := cat.DB("clinic")
	if err != nil {
		log.Fatal(err)
	}
	patients, err := workload.Hospital(workload.HospitalConfig{Patients: 200}, 12)
	if err != nil {
		log.Fatal(err)
	}
	if err := clinic.CreateTable(patients); err != nil {
		log.Fatal(err)
	}

	// SQL routed by FROM clause: "payroll" by remote name, "patients" by
	// schema name. The multi-predicate statement runs through the
	// server-side conjunctive planner (one CmdQueryConj; only the
	// intersection crosses the wire).
	for _, sql := range []string{
		"SELECT name, salary FROM payroll WHERE dept = 'HR'",
		"SELECT name FROM patients WHERE hospital = 2 AND outcome = 'fatal'",
	} {
		res, err := cat.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n%s(%d tuples)\n\n", sql, res.Sorted(), res.Len())
	}

	// The pushdown must agree with the legacy client-side intersection
	// (SelectMany per conjunct + relation.Intersect after decryption) —
	// the equivalence the E17 gate also enforces.
	conj := []relation.Eq{
		{Column: "dept", Value: relation.String("HR")},
		{Column: "salary", Value: relation.Int(pickSalary(emp))},
	}
	pushed, err := payroll.SelectConj(conj)
	if err != nil {
		log.Fatal(err)
	}
	legacy, err := payroll.SelectConjLegacy(conj)
	if err != nil {
		log.Fatal(err)
	}
	if pushed.Sorted().String() != legacy.Sorted().String() {
		log.Fatalf("pushdown diverged from client-side intersection:\n%s\nvs\n%s",
			pushed.Sorted(), legacy.Sorted())
	}
	fmt.Printf("pushdown == legacy intersection for %v ∧ %v (%d tuples)\n\n",
		conj[0], conj[1], pushed.Len())

	// And the server will happily explain what it would do.
	plan, err := cat.Explain("SELECT * FROM payroll WHERE dept = 'HR' AND salary = 7500")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)
	fmt.Println()

	// The server directory shows two differently encrypted tables.
	infos, err := conn.List()
	if err != nil {
		log.Fatal(err)
	}
	for _, ti := range infos {
		fmt.Printf("Eve stores %-8s scheme=%-8s %d tuples\n", ti.Name, ti.SchemeID, ti.Tuples)
	}

	// --- The same catalog over a sharded serving tier. ---
	// Two more Eves; the config's shards section (its order IS the
	// partition map) turns the catalog into a scatter-gather client: an
	// in-process coordinator hash-partitions uploads across both shards
	// and merges per-shard answers, and verified reads pin one root per
	// shard (a root vector), so either shard lying about one tuple fails
	// the read.
	var shardAddrs []client.ShardConfig
	for i := 0; i < 2; i++ {
		ssrv := server.New(storage.NewMemory(), nil)
		sl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go ssrv.Serve(sl)
		defer ssrv.Close()
		shardAddrs = append(shardAddrs, client.ShardConfig{Addr: sl.Addr().String()})
	}
	loaded.Shards = &client.ShardsConfig{Version: 1, Shards: shardAddrs}
	co, err := shard.FromConfig(loaded.Shards, loaded.Net.DialConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer co.Close()
	scat, err := loaded.AttachAllSharded(co, master)
	if err != nil {
		log.Fatal(err)
	}
	spayroll, err := scat.DB("payroll")
	if err != nil {
		log.Fatal(err)
	}
	if err := spayroll.CreateTable(emp); err != nil {
		log.Fatal(err)
	}
	for i, c := range shardAddrs {
		sc, err := client.Dial(c.Addr)
		if err != nil {
			log.Fatal(err)
		}
		sinfos, err := sc.List()
		if err != nil {
			log.Fatal(err)
		}
		sc.Close()
		for _, ti := range sinfos {
			fmt.Printf("shard %d stores %-8s %d tuples\n", i, ti.Name, ti.Tuples)
		}
	}

	// Three-way equivalence on the sharded tier: the scattered
	// conjunctive pushdown, the scattered legacy client-side
	// intersection, and a plaintext scan of the original table must all
	// return the same rows.
	shardPushed, err := spayroll.SelectConj(conj)
	if err != nil {
		log.Fatal(err)
	}
	shardLegacy, err := spayroll.SelectConjLegacy(conj)
	if err != nil {
		log.Fatal(err)
	}
	plain := relation.NewTable(emp.Schema())
	deptIdx, salaryIdx := emp.Schema().ColumnIndex("dept"), emp.Schema().ColumnIndex("salary")
	for _, tp := range emp.Tuples() {
		if tp[deptIdx].Equal(conj[0].Value) && tp[salaryIdx].Equal(conj[1].Value) {
			if err := plain.Insert(tp); err != nil {
				log.Fatal(err)
			}
		}
	}
	if shardPushed.Sorted().String() != shardLegacy.Sorted().String() ||
		shardPushed.Sorted().String() != plain.Sorted().String() {
		log.Fatalf("sharded three-way equivalence broken:\npushdown:\n%s\nlegacy:\n%s\nplaintext:\n%s",
			shardPushed.Sorted(), shardLegacy.Sorted(), plain.Sorted())
	}
	fmt.Printf("\n2-shard pushdown == legacy intersection == plaintext scan for %v ∧ %v (%d tuples)\n",
		conj[0], conj[1], shardPushed.Len())
}
