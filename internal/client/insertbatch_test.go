package client

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"testing"

	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/storage"
)

// pipeDialer returns a dial function minting fresh client connections,
// each served by its own ServeConn goroutine over a net.Pipe — the
// multi-connection analogue of startPipe.
func pipeDialer(t *testing.T, srv *server.Server) func() (*Conn, error) {
	t.Helper()
	return func() (*Conn, error) {
		cliSide, srvSide := net.Pipe()
		go srv.ServeConn(srvSide)
		return NewConn(cliSide), nil
	}
}

// bigEmpTable builds n employee tuples under empSchema.
func bigEmpTuples(n int) []relation.Tuple {
	out := make([]relation.Tuple, 0, n)
	depts := []string{"HR", "IT", "OPS"}
	for i := 0; i < n; i++ {
		out = append(out, relation.Tuple{
			relation.String(fmt.Sprintf("emp%04d", i)),
			relation.String(depts[i%len(depts)]),
			relation.Int(int64(3000 + i)),
		})
	}
	return out
}

// TestInsertBatchDurable drives the client batch-insert path against a
// durable group-commit store: parallel chunked inserts over several
// connections, then a simulated crash (no Close) and replay, asserting
// every acknowledged chunk survived and the data is queryable.
func TestInsertBatchDurable(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "store.log")
	st, err := storage.OpenOptions(logPath, storage.Options{Sync: storage.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(st, nil)
	dial := pipeDialer(t, srv)
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	scheme := newScheme(t)
	db := NewDB(conn, scheme, "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}

	const n = 120
	if err := db.InsertBatch(dial, 4, 10, bigEmpTuples(n)...); err != nil {
		t.Fatal(err)
	}
	got, err := db.SelectAll()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3+n {
		t.Fatalf("after batch insert: %d tuples, want %d", got.Len(), 3+n)
	}
	if st.LogStats().Syncs == 0 {
		t.Fatal("batch insert under SyncAlways recorded no fsyncs")
	}

	// Crash: abandon the server and store without Close, then replay.
	srv.Close()
	st2, err := storage.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	ct, err := st2.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.Tuples) != 3+n {
		t.Fatalf("crash lost acknowledged batch inserts: replayed %d tuples, want %d", len(ct.Tuples), 3+n)
	}
	// The replayed ciphertext decrypts to the full data set.
	got2, err := scheme.DecryptTable(ct)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Len() != 3+n {
		t.Fatalf("replayed table decrypts to %d tuples, want %d", got2.Len(), 3+n)
	}
}

// TestInsertBatchVerifiedRoot: with a pinned root, InsertBatch refreshes
// it so verified selects keep working afterwards.
func TestInsertBatchVerifiedRoot(t *testing.T) {
	st := storage.NewMemory()
	srv := server.New(st, nil)
	dial := pipeDialer(t, srv)
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	if root, _ := db.Root(); root == nil {
		t.Fatal("no root pinned after create")
	}
	if err := db.InsertBatch(dial, 3, 7, bigEmpTuples(40)...); err != nil {
		t.Fatal(err)
	}
	got, err := db.Select(relation.Eq{Column: "dept", Value: relation.String("HR")})
	if err != nil {
		t.Fatalf("verified select after batch insert: %v", err)
	}
	// 2 HR rows in empTable, plus every i%3==0 row of the batch.
	if want := 2 + (40+2)/3; got.Len() != want {
		t.Fatalf("verified select returned %d rows, want %d", got.Len(), want)
	}
}

// TestInsertBatchDialFailure: a dial error surfaces and the feeder does
// not deadlock on the dead worker.
func TestInsertBatchDialFailure(t *testing.T) {
	st := storage.NewMemory()
	conn := startPipe(t, st)
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("no route")
	err := db.InsertBatch(func() (*Conn, error) { return nil, boom }, 2, 4, bigEmpTuples(30)...)
	if !errors.Is(err, boom) {
		t.Fatalf("dial failure not surfaced: %v", err)
	}
}

// TestInsertBatchNilDialFallsBack: the serial path over the DB's own
// connection still works.
func TestInsertBatchNilDialFallsBack(t *testing.T) {
	conn := startPipe(t, storage.NewMemory())
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertBatch(nil, 0, 0, bigEmpTuples(5)...); err != nil {
		t.Fatal(err)
	}
	got, err := db.SelectAll()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 8 {
		t.Fatalf("fallback insert: %d tuples, want 8", got.Len())
	}
}
