package relation

import "testing"

func empTestSchema() *Schema {
	return MustSchema("emp",
		Column{Name: "name", Type: TypeString, Width: 10},
		Column{Name: "dept", Type: TypeString, Width: 5},
		Column{Name: "salary", Type: TypeInt, Width: 5},
	)
}

func empTestTable() *Table {
	t := NewTable(empTestSchema())
	t.MustInsert(String("Montgomery"), String("HR"), Int(7500))
	t.MustInsert(String("Ada"), String("IT"), Int(9100))
	t.MustInsert(String("Grace"), String("HR"), Int(8800))
	t.MustInsert(String("Alan"), String("IT"), Int(7500))
	return t
}

func TestSelectEq(t *testing.T) {
	tab := empTestTable()
	res, err := Select(tab, Eq{Column: "dept", Value: String("HR")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("σ_dept:HR returned %d tuples, want 2", res.Len())
	}
	for _, tp := range res.Tuples() {
		if tp[1].Str() != "HR" {
			t.Fatalf("non-matching tuple in result: %v", tp)
		}
	}
}

func TestSelectEmptyResult(t *testing.T) {
	res, err := Select(empTestTable(), Eq{Column: "dept", Value: String("NONE")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("expected empty result, got %d tuples", res.Len())
	}
}

func TestSelectValidation(t *testing.T) {
	tab := empTestTable()
	if _, err := Select(tab, Eq{Column: "zzz", Value: String("x")}); err == nil {
		t.Fatal("select on unknown column accepted")
	}
	if _, err := Select(tab, Eq{Column: "salary", Value: String("x")}); err == nil {
		t.Fatal("type-mismatched predicate accepted")
	}
	if _, err := Select(tab, Eq{Column: "dept", Value: String("toolongvalue")}); err == nil {
		t.Fatal("out-of-range constant accepted")
	}
}

func TestAndPredicate(t *testing.T) {
	tab := empTestTable()
	pred := And{Preds: []Pred{
		Eq{Column: "dept", Value: String("IT")},
		Eq{Column: "salary", Value: Int(7500)},
	}}
	res, err := Select(tab, pred)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Tuple(0)[0].Str() != "Alan" {
		t.Fatalf("conjunction: got %v", res)
	}
	if _, err := Select(tab, And{}); err == nil {
		t.Fatal("empty conjunction accepted")
	}
}

func TestPredString(t *testing.T) {
	p := Eq{Column: "dept", Value: String("HR")}
	if p.String() != "σ_dept:HR" {
		t.Fatalf("Eq.String() = %q", p.String())
	}
	a := And{Preds: []Pred{p, Eq{Column: "salary", Value: Int(1)}}}
	if a.String() != "σ_dept:HR ∧ σ_salary:1" {
		t.Fatalf("And.String() = %q", a.String())
	}
}

func TestProject(t *testing.T) {
	tab := empTestTable()
	res, err := Project(tab, "salary", "name")
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema().NumColumns() != 2 {
		t.Fatalf("projected schema has %d columns", res.Schema().NumColumns())
	}
	if res.Schema().Columns[0].Name != "salary" || res.Schema().Columns[1].Name != "name" {
		t.Fatalf("projection order wrong: %v", res.Schema())
	}
	if res.Len() != tab.Len() {
		t.Fatalf("projection dropped tuples: %d vs %d (multiset semantics)", res.Len(), tab.Len())
	}
	if res.Tuple(0)[0].Integer() != 7500 || res.Tuple(0)[1].Str() != "Montgomery" {
		t.Fatalf("projected tuple wrong: %v", res.Tuple(0))
	}
}

func TestProjectErrors(t *testing.T) {
	tab := empTestTable()
	if _, err := Project(tab); err == nil {
		t.Fatal("empty projection accepted")
	}
	if _, err := Project(tab, "nope"); err == nil {
		t.Fatal("projection on unknown column accepted")
	}
}

func TestIntersectMultiset(t *testing.T) {
	s := MustSchema("t", Column{Name: "a", Type: TypeInt, Width: 3})
	mk := func(vals ...int64) *Table {
		tab := NewTable(s)
		for _, v := range vals {
			tab.MustInsert(Int(v))
		}
		return tab
	}
	res, err := Intersect(mk(1, 2, 2, 3), mk(2, 2, 4, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(mk(1, 2, 2)) {
		t.Fatalf("multiset intersection wrong: %v", res)
	}
}

func TestIntersectSchemaMismatch(t *testing.T) {
	a := NewTable(MustSchema("a", Column{Name: "x", Type: TypeInt, Width: 3}))
	b := NewTable(MustSchema("b", Column{Name: "x", Type: TypeInt, Width: 3}))
	if _, err := Intersect(a, b); err == nil {
		t.Fatal("intersect across schemas accepted")
	}
}
