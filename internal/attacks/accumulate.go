package attacks

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/games"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/workload"
)

// AccumulationReport measures how Eve's knowledge grows with the query
// budget q of Definition 2.1: the passive §2 attack, generalised from "the
// four queries" to a random application workload observed over time. For
// each q, Alex issues q queries drawn from a realistic mix; Eve identifies
// each by result size and maintains estimates of every hospital's fatality
// ratio, falling back to the public marginal where she has not yet seen
// the needed queries.
type AccumulationReport struct {
	// Q is the observed query budget.
	Q int
	// MeanAbsError is Eve's average per-hospital estimation error.
	MeanAbsError float64
	// BlindError is the error of always answering the public marginal.
	BlindError float64
	// Coverage is the fraction of (hospital, fatal) query pairs Eve has
	// observed and identified, averaged over trials.
	Coverage float64
}

// queryPool is the application's query mix: per-hospital selects and the
// two outcome selects.
func queryPool() []relation.Eq {
	return []relation.Eq{
		{Column: "hospital", Value: relation.Int(1)},
		{Column: "hospital", Value: relation.Int(2)},
		{Column: "hospital", Value: relation.Int(3)},
		{Column: "outcome", Value: relation.String(workload.OutcomeFatal)},
		{Column: "outcome", Value: relation.String(workload.OutcomeHealthy)},
	}
}

// LeakageAccumulation runs the generalised passive attack for each query
// budget in qs and reports one AccumulationReport per budget.
func LeakageAccumulation(factory games.SchemeFactory, patients, trials int, qs []int, seed int64) ([]AccumulationReport, error) {
	if patients <= 0 || trials <= 0 {
		return nil, fmt.Errorf("attacks: accumulation needs positive patients (%d) and trials (%d)", patients, trials)
	}
	rng := rand.New(rand.NewSource(seed))
	reports := make([]AccumulationReport, 0, len(qs))
	for _, q := range qs {
		var sumErr, sumBlind, sumCov float64
		for trial := 0; trial < trials; trial++ {
			// Hidden rates centred on the public marginal 0.08, so Eve's
			// size fingerprinting stays reliable (the paper grants her
			// "good estimates" of the distributions) while the
			// per-hospital values remain secrets worth stealing.
			rates := []float64{
				0.03 + 0.10*rng.Float64(),
				0.03 + 0.10*rng.Float64(),
				0.03 + 0.10*rng.Float64(),
			}
			table, err := workload.Hospital(workload.HospitalConfig{
				Patients:            patients,
				FatalRateByHospital: rates,
			}, rng.Int63())
			if err != nil {
				return nil, err
			}
			scheme, err := factory(table.Schema())
			if err != nil {
				return nil, err
			}
			ct, err := scheme.EncryptTable(table)
			if err != nil {
				return nil, err
			}
			// Alex issues q queries drawn uniformly from the pool; Eve
			// observes only position sets.
			pool := queryPool()
			type obs struct {
				positions []int
			}
			seen := make(map[int]obs) // pool index (as identified by Eve) -> positions
			for issued := 0; issued < q; issued++ {
				qi := rng.Intn(len(pool))
				eq, err := scheme.EncryptQuery(pool[qi])
				if err != nil {
					return nil, err
				}
				res, err := ph.Apply(ct, eq)
				if err != nil {
					return nil, err
				}
				// Eve identifies the query by its result size against the
				// public marginals.
				id := identifyQuery(len(res.Positions), patients)
				if id >= 0 {
					seen[id] = obs{positions: res.Positions}
				}
			}
			// Eve's estimates.
			fatal, haveFatal := seen[3]
			var trialErr float64
			covered := 0
			for h := 0; h < 3; h++ {
				truth, err := trueHospitalRate(table, int64(h+1))
				if err != nil {
					return nil, err
				}
				est := workload.OutcomeFatalRate // fallback: public marginal
				if inH, ok := seen[h]; ok && haveFatal && len(inH.positions) > 0 {
					est = float64(intersectCount(inH.positions, fatal.positions)) / float64(len(inH.positions))
					covered++
				}
				trialErr += math.Abs(est - truth)
				sumBlind += math.Abs(workload.OutcomeFatalRate - truth)
			}
			sumErr += trialErr / 3
			sumCov += float64(covered) / 3
		}
		reports = append(reports, AccumulationReport{
			Q:            q,
			MeanAbsError: sumErr / float64(trials),
			BlindError:   sumBlind / float64(3*trials),
			Coverage:     sumCov / float64(trials),
		})
	}
	return reports, nil
}

// identifyQuery maps an observed result size to the most plausible pool
// query using the public marginals; -1 if nothing is close (within 35%
// relative distance).
func identifyQuery(size, patients int) int {
	expected := []float64{
		workload.HospitalFlows[0] * float64(patients),
		workload.HospitalFlows[1] * float64(patients),
		workload.HospitalFlows[2] * float64(patients),
		workload.OutcomeFatalRate * float64(patients),
		(1 - workload.OutcomeFatalRate) * float64(patients),
	}
	best, bestDist := -1, math.Inf(1)
	for i, e := range expected {
		d := math.Abs(float64(size) - e)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	if bestDist > 0.35*expected[best] {
		return -1
	}
	return best
}
