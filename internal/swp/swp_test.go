package swp

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/crypto"
)

func testKey(b byte) crypto.Key {
	var k crypto.Key
	for i := range k {
		k[i] = b
	}
	return k
}

func newTestScheme(t *testing.T, p Params) *Scheme {
	t.Helper()
	s, err := New(testKey(9), p)
	if err != nil {
		t.Fatalf("New(%+v): %v", p, err)
	}
	return s
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{Params{WordLen: 8, ChecksumLen: 2}, true},
		{Params{WordLen: 2, ChecksumLen: 1}, true},
		{Params{WordLen: 1, ChecksumLen: 0}, false},
		{Params{WordLen: 8, ChecksumLen: 0}, false},
		{Params{WordLen: 8, ChecksumLen: 8}, false},
		{Params{WordLen: 8, ChecksumLen: 9}, false},
		{Params{WordLen: 0, ChecksumLen: 0}, false},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if c.ok && err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c.p, err)
		}
		if !c.ok && err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c.p)
		}
	}
}

func TestFalsePositiveRateFormula(t *testing.T) {
	p := Params{WordLen: 8, ChecksumLen: 1}
	if got := p.FalsePositiveRate(); got != 1.0/256 {
		t.Fatalf("FP rate for m=1: got %v want %v", got, 1.0/256)
	}
	p.ChecksumLen = 2
	if got := p.FalsePositiveRate(); got != 1.0/65536 {
		t.Fatalf("FP rate for m=2: got %v want %v", got, 1.0/65536)
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	s := newTestScheme(t, Params{WordLen: 11, ChecksumLen: 2})
	docID := []byte("doc-1")
	words := [][]byte{
		[]byte("MontgomeryN"),
		[]byte("HR########D"),
		[]byte("7500######S"),
	}
	cws, err := s.EncryptDocument(docID, words)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.DecryptDocument(docID, cws)
	if err != nil {
		t.Fatal(err)
	}
	for i := range words {
		if !bytes.Equal(got[i], words[i]) {
			t.Fatalf("word %d: got %q want %q", i, got[i], words[i])
		}
	}
}

func TestSingleWordRoundTrip(t *testing.T) {
	s := newTestScheme(t, Params{WordLen: 8, ChecksumLen: 2})
	w := []byte("word0001")
	cw, err := s.EncryptWord([]byte("d"), 5, w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.DecryptWord([]byte("d"), 5, cw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, w) {
		t.Fatalf("got %q want %q", got, w)
	}
}

func TestRoundTripProperty(t *testing.T) {
	s := newTestScheme(t, Params{WordLen: 10, ChecksumLen: 2})
	f := func(raw [10]byte, docID [8]byte, pos uint16) bool {
		cw, err := s.EncryptWord(docID[:], uint64(pos), raw[:])
		if err != nil {
			return false
		}
		pt, err := s.DecryptWord(docID[:], uint64(pos), cw)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, raw[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchFindsAllOccurrences(t *testing.T) {
	s := newTestScheme(t, Params{WordLen: 6, ChecksumLen: 2})
	target := []byte("target")
	words := [][]byte{
		[]byte("word01"), target, []byte("word02"), target, []byte("word03"),
	}
	cws, err := s.EncryptDocument([]byte("doc"), words)
	if err != nil {
		t.Fatal(err)
	}
	td, err := s.NewTrapdoor(target)
	if err != nil {
		t.Fatal(err)
	}
	hits := SearchDocument(s.Params(), cws, td)
	// No false negatives: positions 1 and 3 must be present.
	found := map[int]bool{}
	for _, h := range hits {
		found[h] = true
	}
	if !found[1] || !found[3] {
		t.Fatalf("search missed occurrences: hits=%v", hits)
	}
	// With m=2 false positives are ~2^-16; three non-matching slots
	// should essentially never all fire. Allow any single FP but not a
	// full sweep.
	if len(hits) >= 5 {
		t.Fatalf("search matched every slot: %v", hits)
	}
}

func TestSearchNoFalseNegativesProperty(t *testing.T) {
	s := newTestScheme(t, Params{WordLen: 8, ChecksumLen: 2})
	f := func(raw [8]byte, docID [4]byte, filler [8]byte) bool {
		words := [][]byte{filler[:], raw[:], filler[:]}
		cws, err := s.EncryptDocument(docID[:], words)
		if err != nil {
			return false
		}
		td, err := s.NewTrapdoor(raw[:])
		if err != nil {
			return false
		}
		for _, h := range SearchDocument(s.Params(), cws, td) {
			if h == 1 {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTrapdoorDoesNotMatchOtherWords(t *testing.T) {
	s := newTestScheme(t, Params{WordLen: 8, ChecksumLen: 4})
	words := make([][]byte, 64)
	for i := range words {
		words[i] = []byte{byte(i), 1, 2, 3, 4, 5, 6, 7}
	}
	cws, err := s.EncryptDocument([]byte("doc"), words)
	if err != nil {
		t.Fatal(err)
	}
	absent := []byte{0xFF, 0xFE, 0xFD, 0xFC, 0xFB, 0xFA, 0xF9, 0xF8}
	td, err := s.NewTrapdoor(absent)
	if err != nil {
		t.Fatal(err)
	}
	if hits := SearchDocument(s.Params(), cws, td); len(hits) != 0 {
		t.Fatalf("trapdoor for absent word matched positions %v (m=4 should make this ~impossible)", hits)
	}
}

func TestFalsePositiveRateRoughlyMatchesTheory(t *testing.T) {
	// m=1: FP rate 1/256 per slot. Probe ~20k slots and check the
	// measured rate is within a factor of 3 of theory.
	s := newTestScheme(t, Params{WordLen: 8, ChecksumLen: 1})
	absent := bytes.Repeat([]byte{0xFF}, 8)
	td, err := s.NewTrapdoor(absent)
	if err != nil {
		t.Fatal(err)
	}
	const docs, perDoc = 300, 64
	hits, slots := 0, 0
	for d := 0; d < docs; d++ {
		words := make([][]byte, perDoc)
		for i := range words {
			words[i] = []byte{byte(d), byte(d >> 8), byte(i), 3, 4, 5, 6, 7}
		}
		cws, err := s.EncryptDocument([]byte{byte(d), byte(d >> 8)}, words)
		if err != nil {
			t.Fatal(err)
		}
		hits += len(SearchDocument(s.Params(), cws, td))
		slots += perDoc
	}
	rate := float64(hits) / float64(slots)
	theo := 1.0 / 256
	if rate > 3*theo || rate < theo/3 {
		t.Fatalf("measured FP rate %v too far from theoretical %v (%d/%d)", rate, theo, hits, slots)
	}
}

func TestCipherwordsDifferAcrossPositions(t *testing.T) {
	// The same word at different positions must encrypt differently
	// (stream dependence), or equality patterns would leak.
	s := newTestScheme(t, Params{WordLen: 8, ChecksumLen: 2})
	w := []byte("samesame")
	cws, err := s.EncryptDocument([]byte("doc"), [][]byte{w, w, w})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(cws[0], cws[1]) || bytes.Equal(cws[1], cws[2]) {
		t.Fatal("identical words at different positions produced identical cipherwords")
	}
}

func TestCipherwordsDifferAcrossDocuments(t *testing.T) {
	s := newTestScheme(t, Params{WordLen: 8, ChecksumLen: 2})
	w := [][]byte{[]byte("samesame")}
	c1, err := s.EncryptDocument([]byte("doc-1"), w)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.EncryptDocument([]byte("doc-2"), w)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(c1[0], c2[0]) {
		t.Fatal("same word in different documents produced identical cipherwords")
	}
}

func TestTrapdoorMatchesAcrossDocuments(t *testing.T) {
	// One trapdoor must find the word in any document (that is the point
	// of the scheme).
	s := newTestScheme(t, Params{WordLen: 8, ChecksumLen: 2})
	w := []byte("findme00")
	td, err := s.NewTrapdoor(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, docID := range [][]byte{[]byte("a"), []byte("b"), []byte("c")} {
		cws, err := s.EncryptDocument(docID, [][]byte{[]byte("other000"), w})
		if err != nil {
			t.Fatal(err)
		}
		hit := false
		for _, h := range SearchDocument(s.Params(), cws, td) {
			if h == 1 {
				hit = true
			}
		}
		if !hit {
			t.Fatalf("trapdoor missed word in document %q", docID)
		}
	}
}

func TestKeySeparation(t *testing.T) {
	p := Params{WordLen: 8, ChecksumLen: 2}
	s1, _ := New(testKey(1), p)
	s2, _ := New(testKey(2), p)
	w := []byte("whatever")
	cws, err := s1.EncryptDocument([]byte("doc"), [][]byte{w})
	if err != nil {
		t.Fatal(err)
	}
	td, err := s2.NewTrapdoor(w)
	if err != nil {
		t.Fatal(err)
	}
	// A trapdoor under the wrong key must not (except with FP prob)
	// match.
	if hits := SearchDocument(p, cws, td); len(hits) != 0 {
		t.Fatalf("trapdoor under wrong key matched: %v", hits)
	}
	// And decryption under the wrong key must not return the plaintext.
	got, err := s2.DecryptDocument([]byte("doc"), cws)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got[0], w) {
		t.Fatal("wrong key decrypted to the original plaintext")
	}
}

func TestWordLengthValidation(t *testing.T) {
	s := newTestScheme(t, Params{WordLen: 8, ChecksumLen: 2})
	if _, err := s.EncryptWord([]byte("d"), 0, []byte("short")); err == nil {
		t.Fatal("EncryptWord accepted a short word")
	}
	if _, err := s.EncryptDocument([]byte("d"), [][]byte{[]byte("toolongword")}); err == nil {
		t.Fatal("EncryptDocument accepted an over-long word")
	}
	if _, err := s.DecryptWord([]byte("d"), 0, []byte("bad")); err == nil {
		t.Fatal("DecryptWord accepted a short cipherword")
	}
	if _, err := s.NewTrapdoor([]byte("no")); err == nil {
		t.Fatal("NewTrapdoor accepted a short word")
	}
}

func TestMatchRejectsMalformedInputs(t *testing.T) {
	p := Params{WordLen: 8, ChecksumLen: 2}
	if Match(p, make([]byte, 7), Trapdoor{X: make([]byte, 8), K: make([]byte, crypto.KeySize)}) {
		t.Fatal("Match accepted short cipherword")
	}
	if Match(p, make([]byte, 8), Trapdoor{X: make([]byte, 7), K: make([]byte, crypto.KeySize)}) {
		t.Fatal("Match accepted short trapdoor X")
	}
	if Match(p, make([]byte, 8), Trapdoor{X: make([]byte, 8), K: make([]byte, 3)}) {
		t.Fatal("Match accepted short trapdoor key")
	}
}
