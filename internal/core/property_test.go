package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
)

// randTable builds a random employee table from quick-generated material,
// avoiding the padding symbol.
func randTable(rng *rand.Rand, rows int) *relation.Table {
	t := relation.NewTable(empSchema())
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJ 0123456789.-_"
	randStr := func(maxLen int) string {
		n := rng.Intn(maxLen + 1)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(b)
	}
	for i := 0; i < rows; i++ {
		t.MustInsert(
			relation.String(randStr(10)),
			relation.String(randStr(5)),
			relation.Int(rng.Int63n(199999)-99999),
		)
	}
	return t
}

// TestPropertyRoundTripRandomTables: D(E(R)) = R for random relations, in
// both layout modes.
func TestPropertyRoundTripRandomTables(t *testing.T) {
	for _, perCol := range []bool{false, true} {
		key, err := crypto.RandomKey()
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(key, empSchema(), Options{PerColumnWidth: perCol})
		if err != nil {
			t.Fatal(err)
		}
		f := func(seed int64, rowsRaw uint8) bool {
			rng := rand.New(rand.NewSource(seed))
			tab := randTable(rng, int(rowsRaw%20))
			ct, err := p.EncryptTable(tab)
			if err != nil {
				return false
			}
			pt, err := p.DecryptTable(ct)
			if err != nil {
				return false
			}
			return pt.Equal(tab)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("perColumn=%v: %v", perCol, err)
		}
	}
}

// TestPropertyHomomorphismRandomQueries: for random tables and random
// values (present or absent), the filtered homomorphic select equals the
// plaintext select.
func TestPropertyHomomorphismRandomQueries(t *testing.T) {
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(key, empSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := randTable(rng, 1+rng.Intn(15))
		ct, err := p.EncryptTable(tab)
		if err != nil {
			return false
		}
		// Query a value from the table half the time, a random absent
		// value otherwise.
		var q relation.Eq
		if rng.Intn(2) == 0 && tab.Len() > 0 {
			tp := tab.Tuple(rng.Intn(tab.Len()))
			col := rng.Intn(3)
			q = relation.Eq{Column: tab.Schema().Columns[col].Name, Value: tp[col]}
		} else {
			q = relation.Eq{Column: "salary", Value: relation.Int(rng.Int63n(99999))}
		}
		want, err := relation.Select(tab, q)
		if err != nil {
			return false
		}
		eq, err := p.EncryptQuery(q)
		if err != nil {
			return false
		}
		res, err := ph.Apply(ct, eq)
		if err != nil {
			return false
		}
		got, err := p.DecryptResult(q, res)
		if err != nil {
			return false
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCiphertextsNeverRepeat: across random tables, no cipherword
// ever repeats — the structural fact that defeats the §1 adversary.
func TestPropertyCiphertextsNeverRepeat(t *testing.T) {
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(key, empSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := randTable(rng, 8)
		ct, err := p.EncryptTable(tab)
		if err != nil {
			return false
		}
		for _, etp := range ct.Tuples {
			for _, w := range etp.Words {
				if seen[string(w)] {
					return false
				}
				seen[string(w)] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
