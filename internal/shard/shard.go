// Package shard is the scatter-gather serving tier: it hash-partitions
// an encrypted table over N independent phserver backends and serves
// the whole read surface — point queries, batches, conjunctions,
// verified reads — by scattering every query to every shard and merging
// the per-shard answers in deterministic shard order.
//
// Two placements of the same machinery:
//
//   - Coordinator runs the scatter in-process over per-shard connection
//     pools (each pool is the replica-aware client.ReadPool, so every
//     shard keeps its own followers, quarantine backoff and failover).
//     It implements client.Cluster for a local client and server.Backend
//     so `phserver -coordinator -shards ...` can serve the same wire
//     protocol to remote clients.
//   - Remote implements client.Cluster over one connection to such a
//     coordinator process, using the shard-framed commands
//     (wire.CmdShardQuery / CmdShardInsert) that preserve per-shard
//     sub-answers instead of a pre-merged whole.
//
// The per-shard framing is what keeps the trust model intact: each
// shard maintains its own authenticated index, the client pins the
// *vector* of per-shard roots (the root-of-roots), and every sub-answer
// verifies against its own entry. A coordinator — in-process or remote
// — is pure routing: it can drop or garble answers (availability), but
// one mutated tuple on one shard fails that shard's verification and
// with it the whole read; it cannot poison the merge.
//
// Routing leaks nothing beyond the single-server baseline: search
// tokens are deliberately not routable (placement hashes ciphertext
// identity, not plaintext values), so every read is a broadcast and the
// coordinator learns only per-shard position counts — the same access
// pattern each shard's operator already sees.
package shard

import (
	"hash/fnv"

	"repro/internal/ph"
)

// Map is a versioned partition map: how many shards exist and which
// placement epoch the assignment belongs to. Placement is pure content
// hashing — deterministic from (Version, Count) and the tuple bytes —
// so a client and a coordinator that agree on the Map agree on where
// every tuple lives without any directory state.
type Map struct {
	// Version stamps the placement epoch. It is mixed into the
	// placement hash, so bumping it reshuffles tuples (a reshard), and
	// it is echoed on every shard-framed response so a stale client
	// fails loudly instead of merging mis-routed answers.
	Version uint64
	// Count is the number of shards. Must be at least 1.
	Count int
}

// Route returns the shard a tuple lives on. The hash covers the
// encrypted tuple's identity (ID, falling back to Blob for schemes
// without per-tuple IDs) — never plaintext — so placement is stable
// across re-encryptions of the searchable words and reveals nothing a
// ciphertext doesn't.
func (m Map) Route(tp ph.EncryptedTuple) int {
	if m.Count <= 1 {
		return 0
	}
	h := fnv.New64a()
	var v [8]byte
	for i := 0; i < 8; i++ {
		v[i] = byte(m.Version >> (8 * (7 - i)))
	}
	h.Write(v[:])
	if len(tp.ID) > 0 {
		h.Write(tp.ID)
	} else {
		h.Write(tp.Blob)
	}
	return int(h.Sum64() % uint64(m.Count))
}

// Split partitions tuples by Route. The result always has Count
// entries (possibly empty), indexed by shard, with each part preserving
// the input order — so a split of an append batch is exactly the
// per-shard append order, which is what lets a client advance per-shard
// Merkle frontiers from its own leaf hashes.
func (m Map) Split(tuples []ph.EncryptedTuple) [][]ph.EncryptedTuple {
	n := m.Count
	if n < 1 {
		n = 1
	}
	parts := make([][]ph.EncryptedTuple, n)
	for _, tp := range tuples {
		s := m.Route(tp)
		parts[s] = append(parts[s], tp)
	}
	return parts
}
