package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// The fixture exercises every suppression shape against a toy analyzer
// that flags functions named bad*: same-line and own-line suppressions
// silence, an unused suppression is reported, and a suppression missing
// its reason (or everything) is malformed AND does not silence.
const driverSrc = `package p

func bad1() {}

//phlint:ignore funcflag bad2 is intentional
func bad2() {}

func good() {}

func bad3() {} //phlint:ignore funcflag same-line exception

//phlint:ignore funcflag stale, nothing on the next line fires
func good2() {}

//phlint:ignore funcflag
func bad4() {}

//phlint:ignore
func bad5() {}
`

var funcflag = &analysis.Analyzer{
	Name: "funcflag",
	Doc:  "flags functions named bad*",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "bad") {
					pass.Reportf(fd.Pos(), "function %s is bad", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func TestDriverSuppressions(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", driverSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	target := &analysis.Target{Path: "p", Fset: fset, Files: []*ast.File{file}, Pkg: pkg, Info: info}

	findings, err := analysis.Run(target, []*analysis.Analyzer{funcflag})
	if err != nil {
		t.Fatal(err)
	}

	type expect struct {
		line     int
		analyzer string
		fragment string
	}
	expects := []expect{
		{3, "funcflag", "bad1 is bad"},
		{12, "phlint", "unused phlint:ignore"},
		{15, "phlint", "needs a reason"},
		{16, "funcflag", "bad4 is bad"}, // malformed suppression does not silence
		{18, "phlint", "needs an analyzer name"},
		{19, "funcflag", "bad5 is bad"},
	}
	if len(findings) != len(expects) {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want %d", len(findings), len(expects))
	}
	for i, e := range expects {
		f := findings[i]
		if f.Position.Line != e.line || f.Analyzer != e.analyzer || !strings.Contains(f.Message, e.fragment) {
			t.Errorf("finding %d = %s; want line %d analyzer %s containing %q", i, f, e.line, e.analyzer, e.fragment)
		}
	}
}
