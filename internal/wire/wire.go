// Package wire defines the binary protocol between Alex (the client
// library, internal/client) and Eve (the untrusted server,
// internal/server), plus serialisation of the ph ciphertext types shared
// with the storage log.
//
// Framing: every message is a frame
//
//	length:u32 | type:u8 | payload
//
// where length counts type+payload and is capped at MaxFrameSize. All
// integers are big-endian. Variable-length byte strings inside payloads are
// u32-length-prefixed.
//
// The protocol deliberately carries only ciphertext-domain objects —
// encrypted tables, encrypted queries, result position sets. The server
// could log every frame and hand the log to an adversary, and that
// adversary would hold exactly the view the paper's Definition 2.1 grants
// Eve.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// MaxFrameSize caps frame payloads (64 MiB) so a corrupt length prefix
// cannot trigger unbounded allocation.
const MaxFrameSize = 64 << 20

// Command and response type bytes.
const (
	// CmdStore uploads a complete encrypted table under a name,
	// replacing any previous table of that name.
	CmdStore byte = 0x01
	// CmdInsert appends encrypted tuples to an existing table.
	CmdInsert byte = 0x02
	// CmdQuery evaluates an encrypted query against a named table.
	CmdQuery byte = 0x03
	// CmdFetchAll downloads a complete encrypted table.
	CmdFetchAll byte = 0x04
	// CmdDrop removes a named table.
	CmdDrop byte = 0x05
	// CmdList enumerates stored tables.
	CmdList byte = 0x06
	// CmdRoot requests the authenticated-index root for a table
	// (extension; see internal/authindex).
	CmdRoot byte = 0x07
	// CmdProve requests inclusion proofs for result positions
	// (extension).
	CmdProve byte = 0x08
	// CmdQueryBatch evaluates several encrypted queries against one
	// table in a single round trip.
	CmdQueryBatch byte = 0x09
	// CmdQueryVerified evaluates an encrypted query and returns the
	// result together with inclusion proofs, root, leaf count and
	// version cut from the same table snapshot (extension; the race-free
	// replacement for the CmdRoot + CmdProve pair).
	CmdQueryVerified byte = 0x0A
	// CmdInsertStamped is CmdInsert answered with a RespInserted
	// placement ack instead of a bare RespOK (extension). It is a
	// separate command so pre-extension clients sending CmdInsert keep
	// receiving the RespOK they expect.
	CmdInsertStamped byte = 0x0B
	// CmdQueryConj evaluates a conjunction of encrypted queries
	// server-side through the selectivity-ordered planner
	// (internal/query) and returns only the tuples in the intersection.
	// Payload: name, flags (ConjFlag*), query count, queries. With
	// ConjFlagExplain the plan is built and returned without executing;
	// with ConjFlagVerified the intersection travels with inclusion
	// proofs, root, leaf count and version from the same snapshot.
	CmdQueryConj byte = 0x0C
	// CmdShipLog tails the server's write-ahead log (replication;
	// internal/replica). Payload: epoch:u64 | from:u64 | maxBytes:u32 —
	// the follower's cursor (log epoch and record sequence) plus a byte
	// budget for the answer. The server replies with RespLogChunk
	// starting at the cursor; a cursor from a rotated log (epoch
	// mismatch, or a sequence past the log's head) is answered from
	// (currentEpoch, 0) so the follower re-bootstraps instead of
	// silently diverging. The records shipped are ciphertext-domain
	// mutations the follower's client already sent — replication adds
	// nothing to Eve's view.
	CmdShipLog byte = 0x0D
	// CmdShipSnapshot fetches one chunk of an encoded storage snapshot
	// (replication bootstrap; internal/replica). Payload: epoch:u64 |
	// seq:u64 | offset:u64 | maxBytes:u32 — the identity (embedded
	// cursor) of the snapshot the follower is mid-transfer on (zero for
	// a fresh one), the byte offset to resume at, and a budget for the
	// answer. The server replies with RespSnapshotChunk; if it no longer
	// holds the identified snapshot it serves a fresh one from offset 0
	// under the new identity, and the follower restarts reassembly.
	CmdShipSnapshot byte = 0x0E
	// CmdShardQuery asks a shard coordinator (internal/shard) to scatter
	// a read to every shard and answer with the per-shard sub-results,
	// framed by shard id, instead of a merged whole. Payload: name |
	// flags:u8 (ShardFlag*) | count:u32 | queries. The per-shard framing
	// exists for the trust model: each shard keeps its own authenticated
	// index, so a verifying client needs each shard's (result, proofs,
	// root) separately to check it against its pinned root *vector* —
	// a merged answer would have no root to verify against.
	CmdShardQuery byte = 0x0F
	// CmdShardInsert appends encrypted tuples through a shard
	// coordinator, which hash-partitions them over its shards, and
	// answers with one placement ack per shard touched (RespInsertedShard)
	// so a verifying client can advance its per-shard pinned roots from
	// local leaf hashes. Payload: as CmdInsertStamped.
	CmdShardInsert byte = 0x10

	// RespOK acknowledges a command with no payload.
	RespOK byte = 0x81
	// RespError carries an error string.
	RespError byte = 0x82
	// RespResult carries a ph.Result.
	RespResult byte = 0x83
	// RespTable carries a ph.EncryptedTable.
	RespTable byte = 0x84
	// RespList carries the table directory.
	RespList byte = 0x85
	// RespRoot carries a Merkle root (extension).
	RespRoot byte = 0x86
	// RespProofs carries Merkle inclusion proofs (extension).
	RespProofs byte = 0x87
	// RespResults carries several ph.Results (answer to CmdQueryBatch).
	RespResults byte = 0x88
	// RespInserted acknowledges CmdInsertStamped with the append's
	// placement: base tuple index, appended count and the table version
	// installed — exactly what a client needs to advance an
	// authenticated root incrementally (extension).
	RespInserted byte = 0x89
	// RespResultVerified carries an authindex.VerifiedResult (answer to
	// CmdQueryVerified; extension).
	RespResultVerified byte = 0x8A
	// RespResultConj carries a query.Response — the executed plan's
	// summary plus the conjunction's result (plain or verified), or the
	// plan alone in explain mode (answer to CmdQueryConj).
	RespResultConj byte = 0x8B
	// RespLogChunk answers CmdShipLog with a slice of the log:
	// epoch:u64 | start:u64 | head:u64 | count:u32 | records, each
	// record op:u8 | payload (u32-length-prefixed). start is the
	// sequence of the first record shipped (0 instead of the requested
	// cursor when the cursor belongs to a rotated log), head is the
	// server's current record count — the follower is caught up when its
	// cursor reaches it.
	RespLogChunk byte = 0x8C
	// RespSnapshotChunk answers CmdShipSnapshot with one byte range of
	// an encoded snapshot: epoch:u64 | seq:u64 | total:u64 | offset:u64
	// | data (u32-length-prefixed). (epoch, seq) identify the snapshot
	// the bytes belong to — offsets from a different identity are void —
	// total is the full encoded length, and the follower has the whole
	// string once offset+len(data) == total. The reassembled bytes are
	// verified as a unit by the installer (storage.InstallSnapshot), so
	// transfer corruption can fail an install but never corrupt one.
	RespSnapshotChunk byte = 0x8D
	// RespResultShard answers CmdShardQuery with the partition-map
	// version and one sub-result per shard in strictly ascending shard
	// order: mapVersion:u64 | count:u32 | per shard shard:u32 | kind:u8 |
	// payload (u32-length-prefixed). kind selects the sub-payload codec:
	// a plain ph.Result, an authindex.VerifiedResult, or a
	// query.Response (conjunctive). See internal/shard for the codec.
	RespResultShard byte = 0x8E
	// RespInsertedShard answers CmdShardInsert with the partition-map
	// version and one placement ack per shard that received tuples, in
	// strictly ascending shard order: mapVersion:u64 | count:u32 | per
	// shard shard:u32 | base:u32 | tuples:u32 | version:u64.
	RespInsertedShard byte = 0x8F
)

// LogRecord is one replicated write-ahead-log record as it crosses the
// wire: the storage op code and the record payload exactly as the
// primary logged them. The follower applies records in sequence order,
// which reproduces the primary's state because the log is a total order
// of mutations.
type LogRecord struct {
	// Op is the storage log op code (store, insert, drop).
	Op byte
	// Payload is the record body, in the storage log's encoding.
	Payload []byte
}

// CmdShardQuery request flag bits.
const (
	// ShardFlagVerified asks each shard for a verified sub-result
	// (result, proofs, root, leaf count, version from one snapshot of
	// that shard's table) instead of a plain one.
	ShardFlagVerified byte = 1 << 0
	// ShardFlagConj treats the queries as one conjunction, scattered to
	// every shard's selectivity-ordered planner (a conjunction over a
	// disjoint partition is the union of the per-shard intersections).
	ShardFlagConj byte = 1 << 1
	// ShardFlagFetch downloads each shard's full partition (no queries
	// in the payload); sub-payloads carry EncryptedTables. Clients use
	// it to rebuild per-shard Merkle frontiers against a pinned root
	// vector, so partitions must come back whole and in shard order.
	ShardFlagFetch byte = 1 << 2
)

// CmdQueryConj request flag bits.
const (
	// ConjFlagVerified requests the verified variant: the intersection
	// is answered with proofs, root, leaf count and version cut from the
	// same snapshot (the conjunctive extension of CmdQueryVerified).
	ConjFlagVerified byte = 1 << 0
	// ConjFlagExplain requests the plan without executing it.
	ConjFlagExplain byte = 1 << 1
)

// Frame is one protocol message.
type Frame struct {
	// Type is the command or response byte.
	Type byte
	// Payload is the message body.
	Payload []byte
}

// WriteFrame writes a frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload)+1 > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds maximum %d", len(f.Payload)+1, MaxFrameSize)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(f.Payload)+1))
	hdr[4] = f.Type
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	// Skip the payload write for empty payloads: a zero-byte Write is a
	// no-op on most writers but blocks on rendezvous transports
	// (net.Pipe waits for a reader even for zero bytes), which can
	// deadlock two peers writing empty-payload frames at each other.
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return fmt.Errorf("wire: writing frame payload: %w", err)
		}
	}
	if bw, ok := w.(*bufio.Writer); ok {
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("wire: flushing frame: %w", err)
		}
	}
	return nil
}

// ReadFrame reads one frame from r, allocating a fresh payload.
func ReadFrame(r io.Reader) (Frame, error) {
	f, _, err := ReadFrameReuse(r, nil)
	return f, err
}

// ReadFrameReuse reads one frame from r, decoding the payload into buf
// (grown as needed) instead of a fresh allocation. It returns the frame
// and the possibly-grown buffer for the next call; the frame's payload
// aliases that buffer, so the caller must be done with the frame — and
// with anything that aliases its payload — before reusing the buffer.
// Decoders defend this discipline by copying what they keep
// (Buffer.Bytes copies out of the payload).
func ReadFrameReuse(r io.Reader, buf []byte) (Frame, []byte, error) {
	// The header is read through the reusable buffer too: a local array
	// would escape through the io.Reader interface call and cost one heap
	// allocation per frame.
	if cap(buf) < 5 {
		buf = make([]byte, 0, 512)
	}
	hdr := buf[:5]
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF {
			return Frame{}, buf, io.EOF
		}
		return Frame{}, buf, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	f := Frame{Type: hdr[4]}
	if n == 0 {
		return Frame{}, buf, fmt.Errorf("wire: zero-length frame")
	}
	if n > MaxFrameSize {
		return Frame{}, buf, fmt.Errorf("wire: frame of %d bytes exceeds maximum %d", n, MaxFrameSize)
	}
	if n > 1 {
		need := int(n - 1)
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		buf = buf[:need]
		if _, err := io.ReadFull(r, buf); err != nil {
			return Frame{}, buf, fmt.Errorf("wire: reading frame payload: %w", err)
		}
		f.Payload = buf
	}
	return f, buf, nil
}

// bufPool recycles payload and encode scratch buffers between frames so
// steady-state request handling stops allocating per frame.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// MaxPooledBuf caps what PutBuf will retain: one request with a huge
// frame must not pin tens of megabytes in the pool forever. Callers that
// hold a reusable buffer across requests (server connections) use the
// same threshold to decide whether a grown buffer is worth keeping.
const MaxPooledBuf = 1 << 20

// GetBuf returns a zero-length scratch buffer from the frame-buffer pool.
// Grow it with append (or hand it to ReadFrameReuse) and return the grown
// result via PutBuf when done.
func GetBuf() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// PutBuf returns a scratch buffer to the pool. Oversized buffers are
// dropped so the pool's footprint stays bounded.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > MaxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// Buffer is a cursor over a payload for decoding.
type Buffer struct {
	b   []byte
	off int
}

// NewBuffer wraps a payload for decoding.
func NewBuffer(b []byte) *Buffer { return &Buffer{b: b} }

// Remaining returns the number of unread bytes.
func (r *Buffer) Remaining() int { return len(r.b) - r.off }

// Err returns an error unless the buffer is fully consumed.
func (r *Buffer) Err() error {
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes in payload", len(r.b)-r.off)
	}
	return nil
}

// U8 reads one byte.
func (r *Buffer) U8() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("wire: truncated payload reading u8")
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

// U32 reads a big-endian uint32.
func (r *Buffer) U32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("wire: truncated payload reading u32")
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

// U64 reads a big-endian uint64.
func (r *Buffer) U64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, fmt.Errorf("wire: truncated payload reading u64")
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

// Bytes reads a u32-length-prefixed byte string.
func (r *Buffer) Bytes() ([]byte, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	if int(n) > r.Remaining() {
		return nil, fmt.Errorf("wire: byte string of %d exceeds remaining payload %d", n, r.Remaining())
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:])
	r.off += int(n)
	return out, nil
}

// String reads a u32-length-prefixed string.
func (r *Buffer) String() (string, error) {
	b, err := r.Bytes()
	return string(b), err
}

// AppendU8 appends one byte.
func AppendU8(dst []byte, v byte) []byte { return append(dst, v) }

// AppendU32 appends a big-endian uint32.
func AppendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

// AppendU64 appends a big-endian uint64.
func AppendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// AppendBytes appends a u32-length-prefixed byte string.
func AppendBytes(dst, v []byte) []byte {
	dst = AppendU32(dst, uint32(len(v)))
	return append(dst, v...)
}

// AppendString appends a u32-length-prefixed string.
func AppendString(dst []byte, v string) []byte {
	dst = AppendU32(dst, uint32(len(v)))
	return append(dst, v...)
}
