// Package suite is the phlint analyzer registry: the five checks that
// mechanically enforce the repo's security and durability invariants
// (see DESIGN.md, layer 12). cmd/phlint and the tests both consume it
// so the gate and the fixtures can never disagree about what runs.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/clampalloc"
	"repro/internal/analysis/cryptorand"
	"repro/internal/analysis/ctcompare"
	"repro/internal/analysis/lockio"
	"repro/internal/analysis/syncack"
)

// All lists every phlint analyzer, in the order findings are attributed.
var All = []*analysis.Analyzer{
	clampalloc.Analyzer,
	ctcompare.Analyzer,
	cryptorand.Analyzer,
	lockio.Analyzer,
	syncack.Analyzer,
}
