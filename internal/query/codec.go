package query

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/authindex"
	"repro/internal/ph"
	"repro/internal/wire"
)

// StepInfo is one plan step as it travels in a RespResultConj: which
// request conjunct ran, how it was served, and what it cost.
type StepInfo struct {
	// Index is the conjunct's position in the request.
	Index int
	// Source is how the conjunct was served (predicted, in explain mode).
	Source Source
	// Est is the planner's selectivity estimate.
	Est float64
	// EstKnown reports whether Est came from observations of this token.
	EstKnown bool
	// Tested counts positions actually tested (0 in explain mode).
	Tested int
	// Hits is the survivor count after this step (0 in explain mode).
	Hits int
}

// PlanInfo is the wire-facing plan summary.
type PlanInfo struct {
	// Tuples is the table snapshot's tuple count.
	Tuples int
	// Steps are the conjuncts in execution order.
	Steps []StepInfo
}

// Response is the payload of RespResultConj.
type Response struct {
	// Plan summarises the executed (or, in explain mode, planned)
	// conjunct order.
	Plan *PlanInfo
	// Result holds the intersection for a plain execution; nil in
	// explain mode and in verified responses.
	Result *ph.Result
	// Verified holds the intersection with proofs, root, leaf count and
	// version for a verified execution; nil otherwise.
	Verified *authindex.VerifiedResult
}

// respFlag bits in the encoded response.
const (
	respFlagVerified byte = 1 << 0
	respFlagExplain  byte = 1 << 1
)

// maxPlanSteps caps the decoded plan length; a conjunction is a handful
// of predicates, never thousands, and a hostile count must not force a
// large allocation.
const maxPlanSteps = 1 << 16

// EncodeResponse serialises a Response for the wire.
func EncodeResponse(dst []byte, resp *Response) []byte {
	var flags byte
	switch {
	case resp.Verified != nil:
		flags |= respFlagVerified
	case resp.Result == nil:
		flags |= respFlagExplain
	}
	dst = wire.AppendU8(dst, flags)
	dst = wire.AppendU32(dst, uint32(resp.Plan.Tuples))
	dst = wire.AppendU32(dst, uint32(len(resp.Plan.Steps)))
	for _, st := range resp.Plan.Steps {
		dst = wire.AppendU32(dst, uint32(st.Index))
		dst = wire.AppendU8(dst, byte(st.Source))
		dst = wire.AppendU64(dst, math.Float64bits(st.Est))
		known := byte(0)
		if st.EstKnown {
			known = 1
		}
		dst = wire.AppendU8(dst, known)
		dst = wire.AppendU32(dst, uint32(st.Tested))
		dst = wire.AppendU32(dst, uint32(st.Hits))
	}
	switch {
	case resp.Verified != nil:
		dst = authindex.EncodeVerifiedResult(dst, resp.Verified)
	case resp.Result != nil:
		dst = wire.EncodeResult(dst, resp.Result)
	}
	return dst
}

// DecodeResponse parses a Response from a wire buffer. Counts are
// clamped and validated like every other decoder in the protocol; a
// hostile frame can make decoding fail, never allocate unboundedly.
func DecodeResponse(r *wire.Buffer) (*Response, error) {
	flags, err := r.U8()
	if err != nil {
		return nil, fmt.Errorf("query: response flags: %w", err)
	}
	tuples, err := r.U32()
	if err != nil {
		return nil, fmt.Errorf("query: response tuple count: %w", err)
	}
	n, err := r.U32()
	if err != nil {
		return nil, fmt.Errorf("query: plan step count: %w", err)
	}
	if n > maxPlanSteps {
		return nil, fmt.Errorf("query: plan of %d steps exceeds the %d cap", n, maxPlanSteps)
	}
	// Each step encodes to 22 bytes; the declared count cannot exceed
	// what the remaining payload could hold.
	if int64(n)*22 > int64(r.Remaining()) {
		return nil, fmt.Errorf("query: plan step count %d exceeds remaining payload", n)
	}
	info := &PlanInfo{Tuples: int(tuples), Steps: make([]StepInfo, n)}
	for i := range info.Steps {
		idx, err := r.U32()
		if err != nil {
			return nil, fmt.Errorf("query: plan step %d index: %w", i, err)
		}
		src, err := r.U8()
		if err != nil {
			return nil, fmt.Errorf("query: plan step %d source: %w", i, err)
		}
		if Source(src) > SourceSkipped {
			return nil, fmt.Errorf("query: plan step %d has unknown source %d", i, src)
		}
		estBits, err := r.U64()
		if err != nil {
			return nil, fmt.Errorf("query: plan step %d estimate: %w", i, err)
		}
		est := math.Float64frombits(estBits)
		if math.IsNaN(est) || est < 0 || est > 1 {
			return nil, fmt.Errorf("query: plan step %d estimate %v outside [0, 1]", i, est)
		}
		known, err := r.U8()
		if err != nil {
			return nil, fmt.Errorf("query: plan step %d est flag: %w", i, err)
		}
		tested, err := r.U32()
		if err != nil {
			return nil, fmt.Errorf("query: plan step %d tested: %w", i, err)
		}
		hits, err := r.U32()
		if err != nil {
			return nil, fmt.Errorf("query: plan step %d hits: %w", i, err)
		}
		info.Steps[i] = StepInfo{
			Index:    int(idx),
			Source:   Source(src),
			Est:      est,
			EstKnown: known != 0,
			Tested:   int(tested),
			Hits:     int(hits),
		}
	}
	resp := &Response{Plan: info}
	switch {
	case flags&respFlagVerified != 0:
		if resp.Verified, err = authindex.DecodeVerifiedResult(r); err != nil {
			return nil, err
		}
	case flags&respFlagExplain != 0:
		// plan only
	default:
		if resp.Result, err = wire.DecodeResult(r); err != nil {
			return nil, err
		}
	}
	return resp, nil
}

// Render formats the plan for humans (phclient's -explain). labels, when
// non-nil, carries the plaintext predicate per *request index* — only
// the client holds plaintext, so the server-side summary is rendered
// against the client's own conditions.
func (p *PlanInfo) Render(table string, labels []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan for %s (%d tuples):\n", table, p.Tuples)
	for i, st := range p.Steps {
		label := fmt.Sprintf("conjunct #%d", st.Index)
		if st.Index >= 0 && st.Index < len(labels) {
			label = labels[st.Index]
		}
		origin := "prior"
		if st.EstKnown {
			origin = "observed"
		}
		fmt.Fprintf(&b, "  %d. %-28s est %.4f (%s, ~%d rows)  via %s",
			i+1, label, st.Est, origin, int(st.Est*float64(p.Tuples)+0.5), st.Source)
		if st.Tested > 0 || st.Hits > 0 {
			fmt.Fprintf(&b, "  [tested %d, survivors %d]", st.Tested, st.Hits)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// EncodeRequest serialises a CmdQueryConj payload: table name, flags
// (wire.ConjFlag*), query count, queries.
func EncodeRequest(dst []byte, name string, flags byte, qs []*ph.EncryptedQuery) []byte {
	dst = wire.AppendString(dst, name)
	dst = wire.AppendU8(dst, flags)
	dst = wire.AppendU32(dst, uint32(len(qs)))
	for _, q := range qs {
		dst = wire.EncodeQuery(dst, q)
	}
	return dst
}
