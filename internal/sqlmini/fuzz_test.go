package sqlmini

import "testing"

// FuzzParse checks that the parser never panics and that anything it
// accepts renders back to SQL it accepts again (idempotent rendering).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t WHERE a = 1",
		"SELECT a, b FROM t WHERE s = 'x' AND n = -5;",
		"select * from t",
		"SELECT * FROM t WHERE name = 'Ada Lovelace'",
		"SELECT COUNT FROM t",
		"SELECT * FROM t WHERE a < 1",
		"SELECT * FROM t, u",
		"'",
		"",
		"SELECT",
		"SELECT * FROM t WHERE x = 99999999999999999999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", input, rendered, err)
		}
		if q2.String() != rendered {
			t.Fatalf("rendering not idempotent: %q -> %q", rendered, q2.String())
		}
	})
}
