package storage

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"
)

// fuzzSnapshot encodes a valid snapshot of a small in-memory store.
func fuzzSnapshot(tables int) []byte {
	s := NewMemory()
	names := []string{"emp", "dept", "proj"}
	for i := 0; i < tables && i < len(names); i++ {
		if err := s.Put(names[i], fakeTable(i+1)); err != nil {
			panic(err)
		}
	}
	var buf bytes.Buffer
	if _, err := s.WriteSnapshot(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// resealSnapshot recomputes the header CRC and trailer CRC so that a
// hostile mutation to the header fields is actually reached by the
// decoder instead of bouncing off the checksums.
func resealSnapshot(b []byte) []byte {
	if len(b) < snapMinLen {
		return b
	}
	binary.BigEndian.PutUint32(b[snapHdrLen-4:], crc32.Checksum(b[:snapHdrLen-4], castagnoli))
	binary.BigEndian.PutUint32(b[len(b)-4:], crc32.Checksum(b[:len(b)-4], castagnoli))
	return b
}

// FuzzDecodeSnapshot feeds arbitrary bytes to the snapshot decoder and
// holds it to the install-soundness contract: it must never panic, and
// whenever it accepts an input, installing that input into a fresh
// store must succeed, reproduce exactly the decoded tables, and adopt
// exactly the embedded cursor — while a rejected input must leave an
// existing store untouched.
func FuzzDecodeSnapshot(f *testing.F) {
	valid := fuzzSnapshot(2)
	empty := fuzzSnapshot(0)

	f.Add([]byte{})
	f.Add(valid)
	f.Add(empty)

	// Truncated chunks: every structural boundary a torn transfer or a
	// lying server could leave behind.
	f.Add(valid[:4])                                   // mid-magic
	f.Add(valid[:snapHdrLen-1])                        // torn header
	f.Add(valid[:snapHdrLen])                          // header only, trailer missing
	f.Add(valid[:snapMinLen])                          // header + trailer-sized stub
	f.Add(valid[:len(valid)-1])                        // last trailer byte missing
	f.Add(valid[:len(valid)-5])                        // trailer gone, record torn
	f.Add(valid[:snapHdrLen+2])                        // mid record length field
	f.Add(append(append([]byte(nil), valid...), 0xEE)) // trailing junk

	// Mutated checksums: flip one byte in each guarded region.
	for _, i := range []int{0, 9, snapHdrLen - 2, snapHdrLen + 1, len(valid) / 2, len(valid) - 2} {
		bad := append([]byte(nil), valid...)
		bad[i] ^= 0x10
		f.Add(bad)
	}

	// Hostile counts behind valid checksums: the decoder must fail on
	// the missing records, not allocate what the header promises.
	huge := append([]byte(nil), empty...)
	binary.BigEndian.PutUint32(huge[24:], maxSnapTables)
	f.Add(resealSnapshot(huge))
	over := append([]byte(nil), empty...)
	binary.BigEndian.PutUint32(over[24:], maxSnapTables+1)
	f.Add(resealSnapshot(over))

	// A cursor from the future: structurally valid, epoch/seq maxed.
	future := append([]byte(nil), valid...)
	binary.BigEndian.PutUint64(future[8:], ^uint64(0))
	binary.BigEndian.PutUint64(future[16:], ^uint64(0))
	f.Add(resealSnapshot(future))

	// Hostile per-record length fields behind a resealed trailer.
	lenbomb := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(lenbomb[snapHdrLen:], 0xFFFFFF00)
	f.Add(resealSnapshot(lenbomb))

	// Duplicate table name: two copies of the same record body.
	if len(valid) > snapMinLen {
		body := valid[snapHdrLen : len(valid)-4]
		dup := append([]byte(nil), valid[:snapHdrLen]...)
		dup = append(dup, body...)
		dup = append(dup, body...)
		dup = append(dup, 0, 0, 0, 0)
		binary.BigEndian.PutUint32(dup[24:], 4)
		f.Add(resealSnapshot(dup))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, cur, err := decodeSnapshot(data)
		if err != nil {
			// Rejected input must leave a populated store untouched.
			s := NewMemory()
			if perr := s.Put("keep", fakeTable(2)); perr != nil {
				t.Fatal(perr)
			}
			if _, ierr := s.InstallSnapshot(data); ierr == nil {
				t.Fatal("decode rejected the input but install accepted it")
			}
			got, gerr := s.Get("keep")
			if gerr != nil || len(got.Tuples) != 2 {
				t.Fatalf("failed install disturbed the store: %v", gerr)
			}
			return
		}
		// Accepted input must install cleanly and reproduce itself.
		s := NewMemory()
		icur, ierr := s.InstallSnapshot(data)
		if ierr != nil {
			t.Fatalf("decode accepted but install failed: %v", ierr)
		}
		if icur != cur {
			t.Fatalf("install adopted cursor %+v, decode said %+v", icur, cur)
		}
		list := s.List()
		if len(list) != len(recs) {
			t.Fatalf("installed %d tables, decoded %d", len(list), len(recs))
		}
		for _, rec := range recs {
			got, gerr := s.Get(rec.name)
			if gerr != nil {
				t.Fatalf("decoded table %q missing after install: %v", rec.name, gerr)
			}
			if !reflect.DeepEqual(got, rec.table) {
				t.Fatalf("table %q differs between decode and install", rec.name)
			}
		}
		if e, q, ok := s.ResumeCursor(); !ok || e != cur.Epoch || q != cur.Seq {
			t.Fatalf("ResumeCursor = (%d,%d,%v) after install of cursor %+v", e, q, ok, cur)
		}
	})
}
