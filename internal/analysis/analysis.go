// Package analysis is the repo's static-analysis framework: a small,
// dependency-free mirror of the golang.org/x/tools/go/analysis API that
// the phlint analyzer suite (layer 12, see DESIGN.md) is written
// against. It exists because the repo's security and durability
// invariants — hostile-count allocation clamps in wire decoders, no
// blocking I/O under the storage catalogue mutex, constant-time
// comparison of PRF/HMAC-derived bytes, crypto/rand-only randomness in
// key-handling code, durability acks dominated by a checked fsync —
// were previously enforced by reviewer folklore; each one had already
// been hand-fixed at least once (PRs 3–7) and nothing stopped the next
// change from reintroducing them. The analyzers under
// internal/analysis/* turn those invariants into CI-gated checks,
// driven by cmd/phlint both standalone and as a `go vet -vettool`.
//
// The framework deliberately reimplements only the slice of go/analysis
// the suite needs (per-package syntax + types, diagnostics, no facts),
// because the build environment vendors no third-party modules. An
// Analyzer here is source-compatible in shape with an x/tools Analyzer,
// so porting the suite onto the real multichecker later is mechanical.
//
// # Suppressions
//
// A finding that is deliberate is silenced in place, with a reason:
//
//	//phlint:ignore <analyzer> <reason...>
//
// on the flagged line, or on its own line immediately above it. The
// reason is mandatory — a bare suppression is itself reported — and a
// suppression that matches no finding is reported as unused, so stale
// ignores cannot accumulate. There is no file- or package-wide opt-out:
// every exception to an invariant is visible at the line that takes it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// phlint:ignore suppression comments.
	Name string
	// Doc is the analyzer's one-paragraph description: the invariant it
	// encodes and what a finding means.
	Doc string
	// Match reports whether the analyzer applies to a package import
	// path. Analyzers that encode package-specific disciplines (the
	// storage lock discipline, the wire decode clamps) use it to scope
	// themselves; nil means every package.
	Match func(pkgPath string) bool
	// Run executes the check over one package.
	Run func(pass *Pass) error
}

// AppliesTo reports whether the analyzer should run on the package.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	return a.Match == nil || a.Match(pkgPath)
}

// A Pass carries one package's parsed and type-checked form to an
// analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// report receives diagnostics; the driver wires it.
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a resolved diagnostic as the driver hands it to callers:
// positioned, attributed, and already filtered through suppressions.
type Finding struct {
	// Analyzer is the reporting analyzer's name ("phlint" for findings
	// about the suppression mechanism itself).
	Analyzer string `json:"analyzer"`
	// Position is the finding's file:line:column.
	Position token.Position `json:"position"`
	// Message states the violated invariant at this site.
	Message string `json:"message"`
}

// String renders the finding in the conventional vet shape.
func (f Finding) String() string {
	return f.Position.String() + ": " + f.Message + " [" + f.Analyzer + "]"
}

// PathHasSegment reports whether any "/"-separated segment of the
// import path equals seg. Analyzer Match functions use it so that
// "repro/internal/wire" and an analysistest fixture path like "wire"
// or "a/wire" scope identically.
func PathHasSegment(path, seg string) bool {
	for _, head := range strings.Split(path, "/") {
		if head == seg {
			return true
		}
	}
	return false
}

// PathHasAnySegment reports whether any segment of path equals one of
// the given segments.
func PathHasAnySegment(path string, segs ...string) bool {
	for _, s := range segs {
		if PathHasSegment(path, s) {
			return true
		}
	}
	return false
}
