// Package server implements Eve: the untrusted database service provider.
// It accepts client connections, stores encrypted tables, and evaluates
// encrypted queries through the key-free evaluator registry (ph.Apply). It
// never holds keys and never sees plaintext — its entire view is the view
// the paper's security games grant the adversary.
//
// The server is intentionally honest-but-curious infrastructure: it follows
// the protocol (the trust model of §2's "Alex trusts Eve to behave
// according to protocol"), while everything it learns is available for
// offline analysis via the storage log.
//
// Beyond the paper, the server also serves the authenticated-index
// extension (internal/authindex) so clients need not extend that trust:
// CmdQueryVerified answers with (result, proofs, root, leaf count,
// version) cut from one read-locked store snapshot — the proofs always
// verify against the root they travel with, so a mutation racing the
// request can never make an honest answer look tampered. The legacy
// CmdRoot/CmdProve pair is kept working (now served from the store's
// incremental index instead of a per-request deep copy and rebuild), but
// it remains two round trips: a mutation landing between them yields
// proofs for a newer tree than the fetched root, which a verifying
// client must treat as a mismatch. New code should use CmdQueryVerified.
//
// Conjunctive queries (CmdQueryConj) run through the selectivity-ordered
// planner (internal/query) under one read-locked snapshot: the server
// intersects the scheme-opaque per-conjunct position sets and returns
// only the tuples in the intersection — optionally with proofs from the
// same snapshot, or just the plan (explain). This moves *where* the
// intersection happens, not what Eve learns: per-conjunct access
// patterns are her view either way.
//
// Operationally the server takes Options for robustness under hostile
// or flaky peers — per-connection idle and write deadlines, a
// connection cap, an inflight cap with a service-time floor (the
// capacity model experiment E18 leans on) — and for running as a read
// replica: ReadOnly rejects mutations, CmdShipLog serves the store's
// write-ahead log to followers (internal/replica) so read capacity
// scales out without adding trusted parties, CmdShipSnapshot serves
// them chunked state snapshots for O(state) bootstrap, and Ready lets
// a follower refuse every request while it is catching up rather than
// answer from a half-installed store.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/storage"
	"repro/internal/wire"
)

// Options configure a server's robustness limits and its role. The zero
// value preserves the historical behaviour: a writable server with no
// deadlines and no connection cap.
type Options struct {
	// ReadOnly rejects every mutating command (store, insert, drop) with
	// an error naming the primary as the write path. Replicas serve with
	// this set: their state is the shipped log, and a write accepted
	// locally would silently fork it.
	ReadOnly bool
	// IdleTimeout bounds how long ServeConn waits for the next request
	// frame (and for the rest of a half-received one). A peer that goes
	// quiet — a wedged client, a half-open TCP connection — is reaped
	// instead of pinning a goroutine and a connection slot forever.
	// Zero means wait forever.
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response frame. Zero means no limit.
	WriteTimeout time.Duration
	// MaxConns caps concurrently served connections; past it, Serve
	// closes new connections immediately (the client sees EOF and can
	// retry elsewhere — failing fast beats queueing behind a full house).
	// Zero means no cap.
	MaxConns int
	// MaxInflight caps requests executing concurrently across all
	// connections; excess requests queue at the semaphore in arrival
	// order. Zero means no cap.
	MaxInflight int
	// MinServiceTime, when positive, is a per-request service-time floor
	// applied inside the inflight slot. With MaxInflight it turns the
	// server into a fixed-capacity node — requests/sec is bounded by
	// MaxInflight/MinServiceTime regardless of how fast the host CPU is —
	// which is what lets capacity experiments (E18) measure scaling
	// deterministically on any machine. Not for production serving.
	MinServiceTime time.Duration
	// Ready, when set, gates every command: while it reports false the
	// server answers each request with an error instead of serving it.
	// Replicas set it to their follower's catch-up signal so a store
	// that is mid-reset or mid-snapshot-install refuses loudly — an
	// unverified read served from a half-empty store would otherwise
	// succeed with near-empty answers, which is worse than any error.
	// The client treats the refusal like any replica failure: quarantine
	// and fail over. Must be safe for concurrent use; nil means always
	// ready.
	Ready func() bool
}

// Backend executes one decoded command frame and builds the response
// frame. The canonical backend is the store-backed command set
// (storeBackend, what New installs); a shard coordinator
// (internal/shard) implements the same surface so phserver can serve a
// scatter-gather tier through the identical connection machinery —
// deadlines, caps, the Ready gate — without the transport knowing which
// it fronts. HandleFrame must be safe for concurrent use; scratch is a
// zero-length reusable buffer the response payload may build on.
type Backend interface {
	HandleFrame(f wire.Frame, scratch []byte) (wire.Frame, error)
	// Sync flushes whatever durable state the backend owns; Server.Close
	// calls it so a graceful shutdown is durable under every sync policy.
	Sync() error
}

// Server is one service-provider instance.
type Server struct {
	backend  Backend
	logger   *log.Logger
	opts     Options
	inflight chan struct{} // MaxInflight semaphore; nil when uncapped

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// New creates a server over the given store. logger may be nil to discard
// diagnostics.
func New(store *storage.Store, logger *log.Logger) *Server {
	return NewWithOptions(store, logger, Options{})
}

// NewWithOptions creates a server over the given store with explicit
// robustness options. logger may be nil to discard diagnostics.
func NewWithOptions(store *storage.Store, logger *log.Logger, opts Options) *Server {
	return NewProxy(&storeBackend{store: store}, logger, opts)
}

// NewProxy creates a server over an arbitrary backend — a shard
// coordinator, a test double — with explicit robustness options. logger
// may be nil to discard diagnostics.
func NewProxy(backend Backend, logger *log.Logger, opts Options) *Server {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	s := &Server{backend: backend, logger: logger, opts: opts, conns: make(map[net.Conn]struct{})}
	if opts.MaxInflight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInflight)
	}
	return s
}

// Serve accepts connections on l until Close is called. It blocks.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("server: already closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		if s.opts.MaxConns > 0 && len(s.conns) >= s.opts.MaxConns {
			s.mu.Unlock()
			s.logger.Printf("server: connection %s refused: at MaxConns=%d", conn.RemoteAddr(), s.opts.MaxConns)
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// Close stops accepting, closes all connections, waits for handlers and
// syncs the store's log: a graceful server shutdown is durable even
// under the interval/never sync policies and even if the owner never
// calls Store.Close (which also syncs).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	if serr := s.backend.Sync(); serr != nil && err == nil {
		err = serr
	}
	return err
}

// ServeConn handles one client connection until EOF. Exported so tests and
// in-memory transports (net.Pipe) can drive a connection without a
// listener.
func (s *Server) ServeConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	// Steady-state request handling reuses two pooled buffers per
	// connection — one for the inbound frame payload, one for encoding the
	// response — so the per-frame hot path stops allocating. Decoded
	// objects copy what they keep (wire.Buffer.Bytes copies), so recycling
	// the payload after the response is written is safe.
	readBuf := wire.GetBuf()
	encBuf := wire.GetBuf()
	defer func() {
		wire.PutBuf(readBuf)
		wire.PutBuf(encBuf)
	}()
	for {
		// The idle deadline covers the wait for the next frame AND the
		// frame's own bytes: a peer that wedges mid-frame is as stuck as
		// one that never speaks, and both must release this goroutine.
		if s.opts.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		f, buf, err := wire.ReadFrameReuse(r, readBuf)
		readBuf = buf
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logger.Printf("server: connection %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		resp := s.serveRequest(f, encBuf[:0])
		if s.opts.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		}
		if err := wire.WriteFrame(w, resp); err != nil {
			s.logger.Printf("server: connection %s: %v", conn.RemoteAddr(), err)
			return
		}
		// Keep a grown encode buffer for the next response, but never one
		// past the pool threshold: a single huge CmdFetchAll must not pin
		// tens of megabytes for the rest of the connection's life.
		if cap(resp.Payload) > cap(encBuf) && cap(resp.Payload) <= wire.MaxPooledBuf {
			encBuf = resp.Payload
		}
		if err := w.Flush(); err != nil {
			s.logger.Printf("server: connection %s: flush: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// serveRequest wraps dispatch with the capacity controls: the inflight
// semaphore (requests past MaxInflight queue here in arrival order) and
// the MinServiceTime floor, which is slept inside the slot so a node's
// throughput ceiling is MaxInflight/MinServiceTime by construction.
func (s *Server) serveRequest(f wire.Frame, scratch []byte) wire.Frame {
	if s.inflight != nil {
		s.inflight <- struct{}{}
		defer func() { <-s.inflight }()
	}
	if s.opts.MinServiceTime <= 0 {
		return s.dispatch(f, scratch)
	}
	start := time.Now()
	resp := s.dispatch(f, scratch)
	if d := time.Since(start); d < s.opts.MinServiceTime {
		time.Sleep(s.opts.MinServiceTime - d)
	}
	return resp
}

// dispatch applies the server-side policy gates — the Ready gate and
// the read-only mutation rejection — then delegates the command to the
// backend and turns its error, if any, into a RespError frame. scratch
// is a zero-length reusable buffer response payloads are appended onto;
// the returned frame's payload may alias it (or a grown successor).
func (s *Server) dispatch(f wire.Frame, scratch []byte) wire.Frame {
	resp, err := s.handle(f, scratch)
	if err != nil {
		return wire.Frame{Type: wire.RespError, Payload: wire.AppendString(scratch[:0], err.Error())}
	}
	return resp
}

// handle gates one command frame, then hands it to the backend.
func (s *Server) handle(f wire.Frame, scratch []byte) (wire.Frame, error) {
	if s.opts.Ready != nil && !s.opts.Ready() {
		return wire.Frame{}, fmt.Errorf("server: replica is catching up, not serving yet")
	}
	if s.opts.ReadOnly {
		switch f.Type {
		case wire.CmdStore, wire.CmdInsert, wire.CmdInsertStamped, wire.CmdDrop, wire.CmdShardInsert:
			return wire.Frame{}, fmt.Errorf("server: read-only replica: mutations go to the primary")
		}
	}
	return s.backend.HandleFrame(f, scratch)
}
