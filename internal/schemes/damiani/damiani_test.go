package damiani

import (
	"bytes"
	"testing"

	"repro/internal/crypto"
	"repro/internal/relation"
)

func schema() *relation.Schema {
	return relation.MustSchema("t",
		relation.Column{Name: "v", Type: relation.TypeInt, Width: 6},
	)
}

func TestBucketCountRespected(t *testing.T) {
	s, err := New(crypto.KeyFromBytes([]byte("k")), schema(), Options{Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	tab := relation.NewTable(schema())
	for i := int64(0); i < 256; i++ {
		tab.MustInsert(relation.Int(i))
	}
	ct, err := s.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, tp := range ct.Tuples {
		distinct[string(tp.Words[0])] = true
	}
	if len(distinct) > 4 {
		t.Fatalf("%d distinct labels with 4 buckets", len(distinct))
	}
	if len(distinct) < 2 {
		t.Fatalf("hash partition degenerate: %d distinct labels", len(distinct))
	}
}

func TestLabelStability(t *testing.T) {
	s, err := New(crypto.KeyFromBytes([]byte("k")), schema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tab := relation.NewTable(schema())
	tab.MustInsert(relation.Int(42))
	tab.MustInsert(relation.Int(42))
	ct, err := s.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ct.Tuples[0].Words[0], ct.Tuples[1].Words[0]) {
		t.Fatal("equal values hashed to different labels")
	}
}

func TestLabelsKeyDependent(t *testing.T) {
	tab := relation.NewTable(schema())
	tab.MustInsert(relation.Int(7))
	mk := func(key string) []byte {
		s, err := New(crypto.KeyFromBytes([]byte(key)), schema(), Options{Buckets: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		ct, err := s.EncryptTable(tab)
		if err != nil {
			t.Fatal(err)
		}
		return ct.Tuples[0].Words[0]
	}
	// With 2^16 buckets a cross-key collision is a ~1.5e-5 event.
	if bytes.Equal(mk("alpha"), mk("beta")) {
		t.Fatal("labels identical under different keys")
	}
}
