// Package games implements the paper's security definitions as executable
// Monte-Carlo games between a challenger (Alex) and an adversary (Eve).
//
// Definition 1.2 (classical indistinguishability) and Definition 2.1 (DBPH
// indistinguishability with q observed/chosen encrypted queries, passive or
// active) are both realised by the Def21 runner: Definition 1.2 is the
// special case q = 0 applied to table encryption. The runner repeats the
// game for a configured number of independent trials — fresh keys, fresh
// challenge bit each time — and reports the adversary's empirical success
// rate, from which the advantage 2·Pr[win] − 1 and confidence intervals
// follow (internal/stats).
//
// The paper's Theorem 2.1 states that *every* database PH loses this game
// for q > 0; internal/attacks provides the generic adversary realising the
// theorem, and experiment E4 plots its advantage over q.
package games

import (
	"fmt"
	"math/rand"

	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/stats"
)

// SchemeFactory creates a fresh scheme instance (fresh keys) over the given
// schema. The game calls it once per trial, modelling Alex choosing a new
// key for each game instance.
type SchemeFactory func(schema *relation.Schema) (ph.Scheme, error)

// IssuedQuery is one encrypted query the passive adversary observes,
// together with the server-side result she can compute herself thanks to
// the homomorphic property.
type IssuedQuery struct {
	// Encrypted is ψ = Eq_k(σ).
	Encrypted *ph.EncryptedQuery
	// Result is ψ applied to the challenge ciphertext.
	Result *ph.Result
}

// Oracle is the query-encryption oracle available to an active adversary:
// it returns the encryption of a chosen plaintext query. The runner
// enforces the budget of q calls.
type Oracle func(q relation.Eq) (*ph.EncryptedQuery, error)

// Transcript is everything Eve sees in one game instance.
type Transcript struct {
	// Ciphertext is E_k(T_i), the challenge.
	Ciphertext *ph.EncryptedTable
	// Issued holds the q queries Alex issued (passive mode; empty in
	// active mode or when q = 0).
	Issued []IssuedQuery
	// Oracle is the query-encryption oracle (active mode; nil otherwise).
	Oracle Oracle
	// Apply evaluates an encrypted query against the challenge
	// ciphertext — public computation Eve can always perform.
	Apply func(*ph.EncryptedQuery) (*ph.Result, error)
}

// Adversary plays the Definition 2.1 game.
type Adversary interface {
	// Name identifies the adversary in reports.
	Name() string
	// Choose produces the two challenge tables. They must have the same
	// schema and the same number of tuples; the runner enforces this
	// (step 1 of the definition).
	Choose(rng *rand.Rand) (t0, t1 *relation.Table, err error)
	// Guess inspects the transcript and returns Eve's guess, 0 or 1.
	Guess(rng *rand.Rand, tr *Transcript) (int, error)
}

// Mode selects the adversary model of Definition 2.1.
type Mode int

const (
	// Passive: Eve observes q queries issued by Alex.
	Passive Mode = iota
	// Active: Eve chooses up to q plaintext queries and receives their
	// encryptions from the oracle.
	Active
)

// String renders the mode.
func (m Mode) String() string {
	if m == Active {
		return "active"
	}
	return "passive"
}

// Def21 configures one instance of the Definition 2.1 game. With Q = 0 it
// degenerates to Definition 1.2 over table encryption.
type Def21 struct {
	// Factory creates the scheme under attack with fresh keys.
	Factory SchemeFactory
	// Q is the query budget q of the definition.
	Q int
	// Mode selects passive or active.
	Mode Mode
	// AlexQueries are the plaintext queries Alex issues in passive mode,
	// in order; at most Q of them are used. They model the application's
	// query stream, which the paper assumes Eve knows the distribution of.
	AlexQueries []relation.Eq
}

// Run plays the game for the given number of trials with a deterministic
// seed and returns the adversary's win statistics.
func (g Def21) Run(adv Adversary, trials int, seed int64) (stats.Binomial, error) {
	if g.Factory == nil {
		return stats.Binomial{}, fmt.Errorf("games: Def21 needs a scheme factory")
	}
	if trials <= 0 {
		return stats.Binomial{}, fmt.Errorf("games: trial count must be positive, got %d", trials)
	}
	rng := rand.New(rand.NewSource(seed))
	var wins int
	for trial := 0; trial < trials; trial++ {
		win, err := g.playOnce(adv, rng)
		if err != nil {
			return stats.Binomial{}, fmt.Errorf("games: trial %d: %w", trial, err)
		}
		if win {
			wins++
		}
	}
	return stats.Binomial{Wins: wins, Trials: trials}, nil
}

// playOnce runs a single game instance.
func (g Def21) playOnce(adv Adversary, rng *rand.Rand) (bool, error) {
	// Step 1: Eve chooses two tables of the same cardinality.
	t0, t1, err := adv.Choose(rng)
	if err != nil {
		return false, fmt.Errorf("adversary %s choosing tables: %w", adv.Name(), err)
	}
	if !t0.Schema().Equal(t1.Schema()) {
		return false, fmt.Errorf("adversary %s chose tables with different schemas", adv.Name())
	}
	if t0.Len() != t1.Len() {
		return false, fmt.Errorf("adversary %s chose tables with different cardinalities (%d vs %d)",
			adv.Name(), t0.Len(), t1.Len())
	}
	// Step 2: Alex draws a key, flips the challenge bit and encrypts.
	scheme, err := g.Factory(t0.Schema())
	if err != nil {
		return false, fmt.Errorf("creating scheme: %w", err)
	}
	challenge := rng.Intn(2)
	table := t0
	if challenge == 1 {
		table = t1
	}
	ct, err := scheme.EncryptTable(table)
	if err != nil {
		return false, fmt.Errorf("encrypting challenge table: %w", err)
	}
	// Step 3: queries, per the adversary model.
	tr := &Transcript{
		Ciphertext: ct,
		Apply: func(eq *ph.EncryptedQuery) (*ph.Result, error) {
			return ph.Apply(ct, eq)
		},
	}
	switch g.Mode {
	case Passive:
		n := len(g.AlexQueries)
		if n > g.Q {
			n = g.Q
		}
		for _, q := range g.AlexQueries[:n] {
			eq, err := scheme.EncryptQuery(q)
			if err != nil {
				return false, fmt.Errorf("encrypting Alex query %s: %w", q, err)
			}
			res, err := ph.Apply(ct, eq)
			if err != nil {
				return false, fmt.Errorf("applying Alex query %s: %w", q, err)
			}
			tr.Issued = append(tr.Issued, IssuedQuery{Encrypted: eq, Result: res})
		}
	case Active:
		// With q = 0 the oracle grants nothing; leaving it nil lets
		// adversaries distinguish "no oracle access" without relying on
		// call errors.
		if g.Q > 0 {
			budget := g.Q
			tr.Oracle = func(q relation.Eq) (*ph.EncryptedQuery, error) {
				if budget <= 0 {
					return nil, fmt.Errorf("games: oracle budget of %d queries exhausted", g.Q)
				}
				budget--
				return scheme.EncryptQuery(q)
			}
		}
	default:
		return false, fmt.Errorf("games: unknown mode %d", g.Mode)
	}
	// Step 4: Eve guesses.
	guess, err := adv.Guess(rng, tr)
	if err != nil {
		return false, fmt.Errorf("adversary %s guessing: %w", adv.Name(), err)
	}
	if guess != 0 && guess != 1 {
		return false, fmt.Errorf("adversary %s returned invalid guess %d", adv.Name(), guess)
	}
	return guess == challenge, nil
}
