package bench

import (
	"fmt"

	"repro/internal/attacks"
	"repro/internal/core"
	"repro/internal/games"
)

// RunE1 regenerates experiment E1: the §1 indistinguishability attack.
// The salary-pair adversary plays the Definition 1.2 game (Definition 2.1
// with q = 0) against every scheme. Expected shape: advantage ≈ 1 against
// all deterministic-index schemes, ≈ 0 against the paper's construction.
func RunE1(trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "§1 salary-pair distinguisher, Definition 1.2 game (q=0)",
		Header: []string{"scheme", "wins", "advantage", "95% CI (win rate)"},
		Notes: []string{
			"paper: 'Eve can determine with high probability to which table corresponds the received ciphertext' for Hacıgümüş-style schemes; our construction should reduce her to guessing",
			fmt.Sprintf("trials per scheme: %d, fresh keys per trial", trials),
		},
	}
	for _, name := range SchemeNames {
		g := games.Def21{Factory: MustFactory(name), Q: 0, Mode: games.Passive}
		res, err := g.Run(attacks.SalaryPair{}, trials, seed)
		if err != nil {
			return nil, fmt.Errorf("bench: E1 scheme %s: %w", name, err)
		}
		lo, hi := res.WilsonInterval(1.96)
		t.AddRow(name, res.String(), f3(res.Advantage()), fmt.Sprintf("[%s, %s]", f3(lo), f3(hi)))
	}
	// Padding ablation: the word-length adversary must also fail against
	// the (padded) construction.
	g := games.Def21{Factory: MustFactory(core.SchemeID), Q: 0, Mode: games.Passive}
	res, err := g.Run(attacks.WordLengthPair{}, trials, seed+1)
	if err != nil {
		return nil, fmt.Errorf("bench: E1 padding ablation: %w", err)
	}
	lo, hi := res.WilsonInterval(1.96)
	t.AddRow(core.SchemeID+" (padding ablation)", res.String(), f3(res.Advantage()),
		fmt.Sprintf("[%s, %s]", f3(lo), f3(hi)))
	return t, nil
}

// RunE2 regenerates experiment E2: the §2 passive hospital-inference
// attack against the paper's construction. Expected shape: Eve identifies
// the four queries from result sizes nearly always and estimates hospital
// 1's fatality ratio far better than the public marginal allows — despite
// the scheme being indistinguishability-secure at q = 0.
func RunE2(patients, trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "§2 hospital inference (passive adversary, q=4 observed queries)",
		Header: []string{"scheme", "query-id rate", "true rate", "estimate", "|err| attack", "|err| blind"},
		Notes: []string{
			"paper: 'by intersecting the answers to the first and the fourth query, Eve can infer the ratio of lethal to successful outcomes in hospital 1'",
			fmt.Sprintf("patients per table: %d, trials: %d; hidden per-hospital rates drawn in [0.02, 0.20]", patients, trials),
			"'|err| blind' is Eve's error when forced to guess the public marginal 0.08 — the attack must beat it",
		},
	}
	for _, name := range SchemeNames {
		rep, err := attacks.HospitalInference(MustFactory(name), patients, trials, seed)
		if err != nil {
			return nil, fmt.Errorf("bench: E2 scheme %s: %w", name, err)
		}
		t.AddRow(name, f3(rep.QueryIDRate), f3(rep.MeanTrueRate), f3(rep.MeanEstRate),
			f3(rep.MeanAbsError), f3(rep.BlindError))
	}
	return t, nil
}

// RunE3 regenerates experiment E3: the §2 active "John" attack. Expected
// shape: recovery probability ≈ 1 for every database PH, including the
// paper's construction — the impossibility that motivates q = 0.
func RunE3(patients, trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "§2 active attack: recover John's hospital and outcome via the query-encryption oracle",
		Header: []string{"scheme", "oracle calls", "hospital recovered", "outcome recovered"},
		Notes: []string{
			"paper: 'no matter how secure the table is encrypted, such an adversary is able to deduce a significant amount of information'",
			fmt.Sprintf("patients per table: %d, trials: %d", patients, trials),
		},
	}
	for _, name := range SchemeNames {
		rep, err := attacks.JohnAttack(MustFactory(name), patients, trials, seed)
		if err != nil {
			return nil, fmt.Errorf("bench: E3 scheme %s: %w", name, err)
		}
		t.AddRow(name, fmt.Sprintf("%d", rep.OracleCalls), f3(rep.HospitalRate), f3(rep.OutcomeRate))
	}
	return t, nil
}

// RunE4 regenerates experiment E4: Theorem 2.1 — the generic adversary's
// advantage against the paper's construction as a function of the query
// budget q, in both adversary models. Expected shape: advantage ≈ 0 at
// q = 0 (the construction's security claim) and ≈ 1 for every q ≥ 1 (the
// theorem).
func RunE4(trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "Theorem 2.1: generic adversary vs the paper's construction, advantage over query budget q",
		Header: []string{"q", "mode", "wins", "advantage"},
		Notes: []string{
			"paper: 'Any database PH (K, E, Eq, D) is insecure in the sense of Definition 2.1 if q > 0'; and with q = 0 'Theorem 2.1 does not apply' — the construction is secure",
			fmt.Sprintf("trials per cell: %d", trials),
		},
	}
	adv := attacks.Theorem21{Rows: 32}
	for _, q := range []int{0, 1, 2, 4, 8} {
		for _, mode := range []games.Mode{games.Passive, games.Active} {
			g := games.Def21{
				Factory: MustFactory(core.SchemeID),
				Q:       q,
				Mode:    mode,
			}
			if mode == games.Passive {
				for i := 0; i < q; i++ {
					g.AlexQueries = append(g.AlexQueries, attacks.Theorem21Query())
				}
			}
			res, err := g.Run(adv, trials, seed+16*int64(q)+int64(mode))
			if err != nil {
				return nil, fmt.Errorf("bench: E4 q=%d %s: %w", q, mode, err)
			}
			t.AddRow(fmt.Sprintf("%d", q), mode.String(), res.String(), f3(res.Advantage()))
		}
	}
	return t, nil
}
