package wire

import (
	"fmt"

	"repro/internal/ph"
)

// EncodeTuple serialises one encrypted tuple: id, blob, word count, words.
func EncodeTuple(dst []byte, t ph.EncryptedTuple) []byte {
	dst = AppendBytes(dst, t.ID)
	dst = AppendBytes(dst, t.Blob)
	dst = AppendU32(dst, uint32(len(t.Words)))
	for _, w := range t.Words {
		dst = AppendBytes(dst, w)
	}
	return dst
}

// DecodeTuple parses one encrypted tuple from the buffer.
func DecodeTuple(r *Buffer) (ph.EncryptedTuple, error) {
	var t ph.EncryptedTuple
	var err error
	if t.ID, err = r.Bytes(); err != nil {
		return t, fmt.Errorf("wire: tuple id: %w", err)
	}
	if t.Blob, err = r.Bytes(); err != nil {
		return t, fmt.Errorf("wire: tuple blob: %w", err)
	}
	n, err := r.U32()
	if err != nil {
		return t, fmt.Errorf("wire: tuple word count: %w", err)
	}
	if int(n) > r.Remaining() {
		return t, fmt.Errorf("wire: word count %d exceeds remaining payload", n)
	}
	t.Words = make([][]byte, n)
	for i := range t.Words {
		if t.Words[i], err = r.Bytes(); err != nil {
			return t, fmt.Errorf("wire: tuple word %d: %w", i, err)
		}
	}
	return t, nil
}

// EncodeTable serialises an encrypted table.
func EncodeTable(dst []byte, t *ph.EncryptedTable) []byte {
	dst = AppendString(dst, t.SchemeID)
	dst = AppendBytes(dst, t.Meta)
	dst = AppendU32(dst, uint32(len(t.Tuples)))
	for _, tp := range t.Tuples {
		dst = EncodeTuple(dst, tp)
	}
	return dst
}

// DecodeTable parses an encrypted table from the buffer.
func DecodeTable(r *Buffer) (*ph.EncryptedTable, error) {
	t := &ph.EncryptedTable{}
	var err error
	if t.SchemeID, err = r.String(); err != nil {
		return nil, fmt.Errorf("wire: table scheme id: %w", err)
	}
	if t.Meta, err = r.Bytes(); err != nil {
		return nil, fmt.Errorf("wire: table meta: %w", err)
	}
	n, err := r.U32()
	if err != nil {
		return nil, fmt.Errorf("wire: table tuple count: %w", err)
	}
	t.Tuples = make([]ph.EncryptedTuple, 0, ClampCount(n, 1024))
	for i := uint32(0); i < n; i++ {
		tp, err := DecodeTuple(r)
		if err != nil {
			return nil, fmt.Errorf("wire: table tuple %d: %w", i, err)
		}
		t.Tuples = append(t.Tuples, tp)
	}
	return t, nil
}

// EncodeQuery serialises an encrypted query.
func EncodeQuery(dst []byte, q *ph.EncryptedQuery) []byte {
	dst = AppendString(dst, q.SchemeID)
	return AppendBytes(dst, q.Token)
}

// DecodeQuery parses an encrypted query from the buffer.
func DecodeQuery(r *Buffer) (*ph.EncryptedQuery, error) {
	q := &ph.EncryptedQuery{}
	var err error
	if q.SchemeID, err = r.String(); err != nil {
		return nil, fmt.Errorf("wire: query scheme id: %w", err)
	}
	if q.Token, err = r.Bytes(); err != nil {
		return nil, fmt.Errorf("wire: query token: %w", err)
	}
	return q, nil
}

// EncodeResult serialises a query result.
func EncodeResult(dst []byte, res *ph.Result) []byte {
	dst = AppendU32(dst, uint32(len(res.Positions)))
	for _, p := range res.Positions {
		dst = AppendU32(dst, uint32(p))
	}
	dst = AppendU32(dst, uint32(len(res.Tuples)))
	for _, tp := range res.Tuples {
		dst = EncodeTuple(dst, tp)
	}
	return dst
}

// DecodeResult parses a query result from the buffer.
func DecodeResult(r *Buffer) (*ph.Result, error) {
	res := &ph.Result{}
	np, err := r.U32()
	if err != nil {
		return nil, fmt.Errorf("wire: result position count: %w", err)
	}
	if int(np) > r.Remaining()/4+1 {
		return nil, fmt.Errorf("wire: position count %d exceeds remaining payload", np)
	}
	res.Positions = make([]int, np)
	for i := range res.Positions {
		p, err := r.U32()
		if err != nil {
			return nil, fmt.Errorf("wire: result position %d: %w", i, err)
		}
		res.Positions[i] = int(p)
	}
	nt, err := r.U32()
	if err != nil {
		return nil, fmt.Errorf("wire: result tuple count: %w", err)
	}
	res.Tuples = make([]ph.EncryptedTuple, 0, ClampCount(nt, 1024))
	for i := uint32(0); i < nt; i++ {
		tp, err := DecodeTuple(r)
		if err != nil {
			return nil, fmt.Errorf("wire: result tuple %d: %w", i, err)
		}
		res.Tuples = append(res.Tuples, tp)
	}
	return res, nil
}

// TableInfo is one directory entry in a CmdList response.
type TableInfo struct {
	// Name is the table name.
	Name string
	// SchemeID is the scheme of the stored ciphertext.
	SchemeID string
	// Tuples is the stored tuple count.
	Tuples int
}

// EncodeList serialises a table directory.
func EncodeList(dst []byte, infos []TableInfo) []byte {
	dst = AppendU32(dst, uint32(len(infos)))
	for _, ti := range infos {
		dst = AppendString(dst, ti.Name)
		dst = AppendString(dst, ti.SchemeID)
		dst = AppendU32(dst, uint32(ti.Tuples))
	}
	return dst
}

// DecodeList parses a table directory.
func DecodeList(r *Buffer) ([]TableInfo, error) {
	n, err := r.U32()
	if err != nil {
		return nil, fmt.Errorf("wire: list length: %w", err)
	}
	infos := make([]TableInfo, 0, ClampCount(n, 1024))
	for i := uint32(0); i < n; i++ {
		var ti TableInfo
		if ti.Name, err = r.String(); err != nil {
			return nil, fmt.Errorf("wire: list entry %d name: %w", i, err)
		}
		if ti.SchemeID, err = r.String(); err != nil {
			return nil, fmt.Errorf("wire: list entry %d scheme: %w", i, err)
		}
		c, err := r.U32()
		if err != nil {
			return nil, fmt.Errorf("wire: list entry %d count: %w", i, err)
		}
		ti.Tuples = int(c)
		infos = append(infos, ti)
	}
	return infos, nil
}
