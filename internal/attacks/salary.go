// Package attacks implements the concrete adversaries from the paper: the
// §1 salary-pair distinguisher against deterministic-index schemes, the §2
// passive hospital-inference attack, the §2 active "John" attack, and the
// generic adversary realising Theorem 2.1 against any database PH.
package attacks

import (
	"bytes"
	"math/rand"

	"repro/internal/games"
	"repro/internal/relation"
)

// SalarySchema is the two-column schema of the paper's §1 example tables.
func SalarySchema() *relation.Schema {
	return relation.MustSchema("t",
		relation.Column{Name: "id", Type: relation.TypeInt, Width: 3},
		relation.Column{Name: "salary", Type: relation.TypeInt, Width: 4},
	)
}

// SalaryTables returns the paper's exact challenge pair:
//
//	table 1: (171,4900) (481,1200)   — distinct salaries
//	table 2: (171,4900) (481,4900)   — equal salaries
func SalaryTables() (*relation.Table, *relation.Table) {
	s := SalarySchema()
	t1 := relation.NewTable(s)
	t1.MustInsert(relation.Int(171), relation.Int(4900))
	t1.MustInsert(relation.Int(481), relation.Int(1200))
	t2 := relation.NewTable(s)
	t2.MustInsert(relation.Int(171), relation.Int(4900))
	t2.MustInsert(relation.Int(481), relation.Int(4900))
	return t1, t2
}

// SalaryPair is the paper's §1 adversary: it submits the two salary tables
// and decides by inspecting the equality pattern of the server-visible
// words. Against any scheme with deterministic index labels (bucketization,
// hash index, deterministic encryption) the second table produces a
// repeated label where the first does not; against the paper's SWP-based
// construction all cipherwords are pseudorandom and the adversary is
// reduced to guessing.
type SalaryPair struct{}

// Name implements games.Adversary.
func (SalaryPair) Name() string { return "salary-pair (§1)" }

// Choose implements games.Adversary.
func (SalaryPair) Choose(*rand.Rand) (*relation.Table, *relation.Table, error) {
	t1, t2 := SalaryTables()
	return t1, t2, nil
}

// Guess implements games.Adversary: "if there are two different weak
// encryptions of the salary attribute, Eve outputs 1; otherwise she
// outputs 2" — generalised to counting repeated words anywhere in the
// ciphertext, which needs no knowledge of the scheme's column order.
func (SalaryPair) Guess(_ *rand.Rand, tr *games.Transcript) (int, error) {
	if repeatedWords(tr) {
		return 1, nil // identical weak encryptions ⇒ table 2 (index 1)
	}
	return 0, nil
}

// repeatedWords reports whether any two word slots across different tuples
// of the ciphertext hold identical bytes.
func repeatedWords(tr *games.Transcript) bool {
	seen := make(map[string]struct{})
	for _, etp := range tr.Ciphertext.Tuples {
		for _, w := range etp.Words {
			k := string(w)
			if _, dup := seen[k]; dup {
				return true
			}
			seen[k] = struct{}{}
		}
	}
	return false
}

// WordLengthPair is the padding-ablation adversary: it submits two tables
// whose values differ only in *length* ("Jo" vs "Jonathan"). Against a
// correctly padded construction every word has the global fixed length and
// the adversary learns nothing; against a hypothetical unpadded variant the
// cipherword lengths differ and the tables are trivially distinguishable.
// It quantifies why the paper's layout pads every value to the width of the
// widest attribute.
type WordLengthPair struct{}

// Name implements games.Adversary.
func (WordLengthPair) Name() string { return "word-length (padding ablation)" }

// Choose implements games.Adversary.
func (WordLengthPair) Choose(*rand.Rand) (*relation.Table, *relation.Table, error) {
	s := relation.MustSchema("t",
		relation.Column{Name: "name", Type: relation.TypeString, Width: 8},
	)
	t0 := relation.NewTable(s)
	t0.MustInsert(relation.String("Jo"))
	t1 := relation.NewTable(s)
	t1.MustInsert(relation.String("Jonathan"))
	return t0, t1, nil
}

// Guess implements games.Adversary: it measures the observable total word
// length. Under the paper's padded layout both tables produce identical
// geometry, so this reduces to a coin flip.
func (WordLengthPair) Guess(rng *rand.Rand, tr *games.Transcript) (int, error) {
	short, long := 0, 0
	for _, etp := range tr.Ciphertext.Tuples {
		for _, w := range etp.Words {
			if len(w) <= 3 { // "Jo" + id, if unpadded
				short++
			} else {
				long++
			}
		}
	}
	if short > 0 && long == 0 {
		return 0, nil
	}
	if long > 0 && short == 0 && wordLen(tr) < 9 {
		return 1, nil
	}
	return rng.Intn(2), nil
}

// wordLen returns the (uniform) word length of the ciphertext, or 0.
func wordLen(tr *games.Transcript) int {
	for _, etp := range tr.Ciphertext.Tuples {
		for _, w := range etp.Words {
			return len(w)
		}
	}
	return 0
}

// FirstWordsEqual is a helper used in tests: it reports whether two
// encrypted tables share any identical word bytes (they never should, for
// probabilistic schemes under independent keys).
func FirstWordsEqual(a, b [][]byte) bool {
	for _, x := range a {
		for _, y := range b {
			if bytes.Equal(x, y) {
				return true
			}
		}
	}
	return false
}

// ensure interface compliance at compile time.
var (
	_ games.Adversary = SalaryPair{}
	_ games.Adversary = WordLengthPair{}
)
