package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/storage"
	"repro/internal/wire"
	"repro/internal/workload"
)

// RunE15 regenerates experiment E15 (extension): durable write-path
// throughput and tail latency per sync policy, single-writer and
// writers-writer, against the naive fsync-per-record baseline the
// group-commit WAL replaces. Each measurement appends batches of
// encrypted tuples to one table:
//
//   - "naive" holds one lock across write(2)+fsync per record — the
//     behaviour of a store that both serialises writers and syncs each
//     acknowledgement individually;
//   - "wal always" is the group-commit path: concurrent writers stage
//     records and share fsyncs, yet every acknowledgement is durable;
//   - "wal interval" and "wal never" acknowledge after write(2) and
//     defer syncing (bounded loss window / OS discretion).
//
// opsPerWriter appends are issued per writer; batch tuples per append.
func RunE15(writers, opsPerWriter int, seed int64) (*Table, error) {
	const batch = 8
	t := &Table{
		ID: "E15",
		Title: fmt.Sprintf("durable write path: group-commit WAL vs fsync-per-record (batch: %d tuples/append, %d appends/writer)",
			batch, opsPerWriter),
		Header: []string{"path", "writers", "appends/s", "p99 µs", "records/fsync"},
		Notes: []string{
			"'naive' serialises write(2)+fsync per acknowledged append under one lock (the pre-WAL shape: store-wide mutex across disk I/O)",
			"'wal always' group-commits: writers stage records under the table lock and share fsyncs, with no lock held across the sync; acknowledgements are only sent once durable",
			"'wal interval'/'wal never' acknowledge after write(2); fsync happens in the background / on close",
		},
	}

	key, err := crypto.RandomKey()
	if err != nil {
		return nil, err
	}
	table, err := workload.Employees(64, seed)
	if err != nil {
		return nil, err
	}
	scheme, err := core.New(key, table.Schema(), core.Options{})
	if err != nil {
		return nil, err
	}
	ct, err := scheme.EncryptTable(table)
	if err != nil {
		return nil, err
	}
	tuples, err := encryptFreshTuples(scheme, batch, seed+1)
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "e15-*")
	if err != nil {
		return nil, fmt.Errorf("bench: e15 scratch dir: %w", err)
	}
	defer os.RemoveAll(dir)

	type cell struct {
		opsPerSec float64
		p99       time.Duration
		perFsync  float64 // 0 = not applicable
	}
	addRow := func(path string, nWriters int, c cell) {
		perFsync := "-"
		if c.perFsync > 0 {
			perFsync = fmt.Sprintf("%.1f", c.perFsync)
		}
		t.AddRow(path, fmt.Sprintf("%d", nWriters), fmt.Sprintf("%.0f", c.opsPerSec),
			fmt.Sprintf("%d", c.p99.Microseconds()), perFsync)
	}

	// runWriters drives nWriters concurrent goroutines, each issuing
	// opsPerWriter calls of op, and returns throughput and p99 latency.
	runWriters := func(nWriters int, op func() error) (cell, error) {
		latencies := make([][]time.Duration, nWriters)
		errs := make([]error, nWriters)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < nWriters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lat := make([]time.Duration, 0, opsPerWriter)
				for i := 0; i < opsPerWriter; i++ {
					t0 := time.Now()
					if err := op(); err != nil {
						errs[w] = err
						return
					}
					lat = append(lat, time.Since(t0))
				}
				latencies[w] = lat
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return cell{}, err
			}
		}
		var all []time.Duration
		for _, lat := range latencies {
			all = append(all, lat...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		idx := (len(all)*99 + 99) / 100
		if idx > len(all) {
			idx = len(all)
		}
		total := nWriters * opsPerWriter
		return cell{
			opsPerSec: float64(total) / elapsed.Seconds(),
			p99:       all[idx-1],
		}, nil
	}

	// --- Naive baseline: one lock across write+fsync per record. ---
	naivePayload := wire.AppendString(nil, "emp")
	naivePayload = wire.AppendU32(naivePayload, uint32(len(tuples)))
	for _, tp := range tuples {
		naivePayload = wire.EncodeTuple(naivePayload, tp)
	}
	runNaive := func(nWriters int) (cell, error) {
		f, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("naive-%d.log", nWriters)),
			os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o600)
		if err != nil {
			return cell{}, err
		}
		defer f.Close()
		var mu sync.Mutex
		rec := make([]byte, 0, len(naivePayload)+10)
		rec = append(rec, 0xD1, 0x02, 0, 0, 0, 0, 0, 0, 0, 0)
		rec = append(rec, naivePayload...)
		return runWriters(nWriters, func() error {
			mu.Lock()
			defer mu.Unlock()
			if _, err := f.Write(rec); err != nil {
				return err
			}
			return f.Sync()
		})
	}

	// --- WAL policies through the real store. ---
	runWAL := func(policy storage.SyncPolicy, nWriters int) (cell, error) {
		s, err := storage.OpenOptions(filepath.Join(dir, fmt.Sprintf("wal-%s-%d.log", policy, nWriters)),
			storage.Options{Sync: policy})
		if err != nil {
			return cell{}, err
		}
		defer s.Close()
		if err := s.Put("emp", ct); err != nil {
			return cell{}, err
		}
		base := s.LogStats()
		c, err := runWriters(nWriters, func() error { return s.Append("emp", tuples) })
		if err != nil {
			return cell{}, err
		}
		st := s.LogStats()
		if syncs := st.Syncs - base.Syncs; syncs > 0 {
			c.perFsync = float64(st.Records-base.Records) / float64(syncs)
		}
		return c, nil
	}

	var naiveMulti, walMulti cell
	for _, nWriters := range []int{1, writers} {
		c, err := runNaive(nWriters)
		if err != nil {
			return nil, fmt.Errorf("bench: e15 naive baseline: %w", err)
		}
		addRow("naive fsync-per-record", nWriters, c)
		if nWriters == writers {
			naiveMulti = c
		}
	}
	for _, policy := range []storage.SyncPolicy{storage.SyncAlways, storage.SyncInterval, storage.SyncNever} {
		for _, nWriters := range []int{1, writers} {
			c, err := runWAL(policy, nWriters)
			if err != nil {
				return nil, fmt.Errorf("bench: e15 wal %s: %w", policy, err)
			}
			addRow("wal "+policy.String(), nWriters, c)
			if policy == storage.SyncAlways && nWriters == writers {
				walMulti = c
			}
		}
	}
	if naiveMulti.opsPerSec > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%d-writer group commit vs naive fsync-per-record on the same durability promise: %.1fx throughput (%.0f vs %.0f appends/s), p99 %dµs vs %dµs",
			writers, walMulti.opsPerSec/naiveMulti.opsPerSec, walMulti.opsPerSec, naiveMulti.opsPerSec,
			walMulti.p99.Microseconds(), naiveMulti.p99.Microseconds()))
	}
	if walMulti.perFsync > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"group commit shared each fsync across %.1f acknowledged records at %d writers",
			walMulti.perFsync, writers))
	}
	if err := durabilityCheck(dir, ct, tuples); err != nil {
		return nil, fmt.Errorf("bench: e15 durability gate: %w", err)
	}
	t.Notes = append(t.Notes, "durability gate: acknowledged appends under 'always' survived a simulated crash (reopen without Close) with zero loss")
	return t, nil
}

// durabilityCheck is E15's built-in correctness gate: after an
// acknowledged append under SyncAlways, abandoning the store without
// Close and replaying must reproduce every acknowledged record.
func durabilityCheck(dir string, ct *ph.EncryptedTable, tuples []ph.EncryptedTuple) error {
	path := filepath.Join(dir, "gate.log")
	s, err := storage.OpenOptions(path, storage.Options{Sync: storage.SyncAlways})
	if err != nil {
		return err
	}
	if err := s.Put("emp", ct); err != nil {
		return err
	}
	const acked = 5
	for i := 0; i < acked; i++ {
		if err := s.Append("emp", tuples); err != nil {
			return err
		}
	}
	// No Close: simulate the crash.
	s2, err := storage.Open(path)
	if err != nil {
		return fmt.Errorf("replay after simulated crash: %w", err)
	}
	defer s2.Close()
	got, err := s2.Get("emp")
	if err != nil {
		return err
	}
	if want := len(ct.Tuples) + acked*len(tuples); len(got.Tuples) != want {
		return fmt.Errorf("crash lost acknowledged appends: %d tuples, want %d", len(got.Tuples), want)
	}
	return nil
}
