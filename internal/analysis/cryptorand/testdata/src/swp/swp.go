// Fixture for the cryptorand analyzer's strict tier: a cryptographic
// package importing the seeded PRNG at all is a finding.
package swp

import (
	"crypto/rand"
	mrand "math/rand" // want `seeded PRNG`
)

func salt() []byte {
	b := make([]byte, 16)
	if _, err := rand.Read(b); err != nil {
		panic(err)
	}
	_ = mrand.Int()
	return b
}
