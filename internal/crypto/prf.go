// Package crypto provides the cryptographic substrate for the reproduction:
// pseudorandom functions (HMAC-SHA256), a pseudorandom generator (AES-CTR),
// a length-preserving pseudorandom permutation (a four-round Feistel network
// in the style of Luby–Rackoff), key derivation, and an AEAD wrapper for the
// strong tuple encryption used by the comparator schemes.
//
// Everything is built on the Go standard library. The constructions are the
// textbook ones the paper's building blocks assume: Song–Wagner–Perrig's
// searchable encryption (internal/swp) is specified in terms of a
// pseudorandom generator G, pseudorandom functions f and F, and a
// deterministic pre-encryption E; this package supplies all four.
package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// KeySize is the byte length of all symmetric keys in this repository.
const KeySize = 32

// Key is a fixed-size symmetric key.
type Key [KeySize]byte

// PRF is a keyed pseudorandom function based on HMAC-SHA256 with
// counter-mode output expansion: output block i is
// HMAC(key, uint32(i) || input). Under the standard PRF assumption on HMAC,
// outputs of any requested length are indistinguishable from random.
type PRF struct {
	key Key
}

// NewPRF constructs a PRF with the given key.
func NewPRF(key Key) *PRF { return &PRF{key: key} }

// Sum computes the PRF of input truncated or expanded to n bytes.
func (p *PRF) Sum(input []byte, n int) []byte {
	out := make([]byte, 0, n)
	var ctr [4]byte
	for block := uint32(0); len(out) < n; block++ {
		mac := hmac.New(sha256.New, p.key[:])
		binary.BigEndian.PutUint32(ctr[:], block)
		mac.Write(ctr[:])
		mac.Write(input)
		out = mac.Sum(out)
	}
	return out[:n]
}

// SumStrings is a convenience wrapper that evaluates the PRF on the
// length-prefixed concatenation of the given byte strings, making the input
// encoding injective.
func (p *PRF) SumStrings(n int, parts ...[]byte) []byte {
	var buf []byte
	var len4 [4]byte
	for _, part := range parts {
		binary.BigEndian.PutUint32(len4[:], uint32(len(part)))
		buf = append(buf, len4[:]...)
		buf = append(buf, part...)
	}
	return p.Sum(buf, n)
}

// DeriveKey derives a subkey from the PRF's key for the given label and
// context. It implements a simple HKDF-expand-style derivation: the label
// separates domains (e.g. "swp/f", "swp/seed"), the context binds instance
// data (e.g. a document identifier).
func (p *PRF) DeriveKey(label string, context []byte) Key {
	var k Key
	out := p.SumStrings(KeySize, []byte(label), context)
	copy(k[:], out)
	return k
}

// KeyFromBytes copies up to KeySize bytes into a Key; shorter inputs are
// hashed to fill the key so that all bits depend on all input bytes.
func KeyFromBytes(b []byte) Key {
	var k Key
	if len(b) >= KeySize {
		copy(k[:], b[:KeySize])
		return k
	}
	h := sha256.Sum256(b)
	copy(k[:], h[:])
	return k
}

// CheckKeyLen validates an externally supplied key slice.
func CheckKeyLen(b []byte) error {
	if len(b) != KeySize {
		return fmt.Errorf("crypto: key must be %d bytes, got %d", KeySize, len(b))
	}
	return nil
}
