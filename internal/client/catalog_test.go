package client

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/schemes/bucket"
	"repro/internal/storage"
	"repro/internal/workload"
)

func TestCatalogRoutesByTableName(t *testing.T) {
	conn := startPipe(t, storage.NewMemory())
	cat := NewCatalog(conn)

	empDB, err := cat.Attach("emp", newScheme(t))
	if err != nil {
		t.Fatal(err)
	}
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	patScheme, err := core.New(key, workload.HospitalSchema(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	patDB, err := cat.Attach("pat", patScheme)
	if err != nil {
		t.Fatal(err)
	}

	if err := empDB.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	patients, err := workload.Hospital(workload.HospitalConfig{Patients: 30}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := patDB.CreateTable(patients); err != nil {
		t.Fatal(err)
	}

	// Route by remote name.
	res, err := cat.Query("SELECT * FROM emp WHERE dept = 'HR'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("emp query returned %d tuples", res.Len())
	}
	// Route by schema name ("patients" is the schema of remote "pat").
	res, err = cat.Query("SELECT * FROM patients WHERE hospital = 2")
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range res.Tuples() {
		if tp[2].Integer() != 2 {
			t.Fatalf("wrong tuple from patients: %v", tp)
		}
	}
	// Unknown table.
	if _, err := cat.Query("SELECT * FROM nope WHERE x = 1"); err == nil {
		t.Fatal("query on unattached table accepted")
	}
	if len(cat.Names()) != 2 {
		t.Fatalf("names: %v", cat.Names())
	}
}

func TestCatalogAmbiguousSchemaName(t *testing.T) {
	conn := startPipe(t, storage.NewMemory())
	cat := NewCatalog(conn)
	if _, err := cat.Attach("a", newScheme(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Attach("b", newScheme(t)); err != nil {
		t.Fatal(err)
	}
	// Both remotes serve schema "emp": routing by schema name must
	// refuse rather than pick silently.
	if _, err := cat.Query("SELECT * FROM emp WHERE dept = 'HR'"); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("expected ambiguity error, got %v", err)
	}
}

func TestConfigRoundTripAndAttach(t *testing.T) {
	cfg := &Config{Tables: []TableConfig{
		{
			Remote: "emp",
			Scheme: core.SchemeID,
			Schema: SchemaConfigOf(empSchema()),
		},
		{
			Remote:  "pat",
			Scheme:  bucket.SchemeID,
			Schema:  SchemaConfigOf(workload.HospitalSchema()),
			Buckets: 8,
			IntDomains: map[string]bucket.Domain{
				"hospital": {Min: 1, Max: 3},
			},
		},
	}}
	path := filepath.Join(t.TempDir(), "client.json")
	if err := SaveConfig(path, cfg); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Tables) != 2 || loaded.Tables[1].Buckets != 8 {
		t.Fatalf("loaded config: %+v", loaded)
	}

	master := crypto.KeyFromBytes([]byte("catalog-passphrase"))
	conn := startPipe(t, storage.NewMemory())
	cat, err := loaded.AttachAll(conn, master)
	if err != nil {
		t.Fatal(err)
	}
	empDB, err := cat.DB("emp")
	if err != nil {
		t.Fatal(err)
	}
	if err := empDB.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	res, err := cat.Query("SELECT name FROM emp WHERE salary = 9100")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Tuple(0)[0].Str() != "Ada" {
		t.Fatalf("config-built catalog query: %v", res)
	}
}

func TestConfigKeysAreDeterministicAndSeparated(t *testing.T) {
	// The same passphrase must rebuild a scheme that can decrypt what a
	// previous instance encrypted; a different table name must not.
	master := crypto.KeyFromBytes([]byte("stable-pass"))
	tc := TableConfig{Remote: "emp", Scheme: core.SchemeID, Schema: SchemaConfigOf(empSchema())}
	s1, err := tc.BuildScheme(master)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := tc.BuildScheme(master)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := s1.EncryptTable(empTable())
	if err != nil {
		t.Fatal(err)
	}
	pt, err := s2.DecryptTable(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Equal(empTable()) {
		t.Fatal("rebuilt scheme could not decrypt")
	}
	other := tc
	other.Remote = "different"
	s3, err := other.BuildScheme(master)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s3.DecryptTable(ct); err == nil {
		// decryptTuple may error or produce garbage; garbage that
		// happens to parse must at least differ from the plaintext.
		got, err := s3.DecryptTable(ct)
		if err == nil && got.Equal(empTable()) {
			t.Fatal("different table name derived the same key")
		}
	}
}

func TestLoadConfigValidation(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		json string
	}{
		{"syntax", `{`},
		{"empty remote", `{"tables":[{"remote":"","scheme":"swp-ph","schema":{"name":"t","columns":[{"name":"a","type":"string","width":3}]}}]}`},
		{"duplicate", `{"tables":[
			{"remote":"x","scheme":"swp-ph","schema":{"name":"t","columns":[{"name":"a","type":"string","width":3}]}},
			{"remote":"x","scheme":"swp-ph","schema":{"name":"t","columns":[{"name":"a","type":"string","width":3}]}}]}`},
		{"bad type", `{"tables":[{"remote":"x","scheme":"swp-ph","schema":{"name":"t","columns":[{"name":"a","type":"float","width":3}]}}]}`},
		{"bad width", `{"tables":[{"remote":"x","scheme":"swp-ph","schema":{"name":"t","columns":[{"name":"a","type":"int","width":0}]}}]}`},
	}
	for _, c := range cases {
		path := filepath.Join(dir, c.name+".json")
		if err := writeFile(path, c.json); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadConfig(path); err == nil {
			t.Errorf("%s: invalid config loaded", c.name)
		}
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing config loaded")
	}
}

func TestBuildSchemeUnknown(t *testing.T) {
	tc := TableConfig{Remote: "x", Scheme: "nope", Schema: SchemaConfigOf(empSchema())}
	if _, err := tc.BuildScheme(crypto.Key{}); err == nil {
		t.Fatal("unknown scheme built")
	}
}

func TestCatalogAttachValidation(t *testing.T) {
	conn := startPipe(t, storage.NewMemory())
	cat := NewCatalog(conn)
	if _, err := cat.Attach("", newScheme(t)); err == nil {
		t.Fatal("empty table name attached")
	}
	if _, err := cat.DB("nope"); err == nil {
		t.Fatal("unknown table returned")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o600)
}
