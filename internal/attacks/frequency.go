package attacks

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/games"
	"repro/internal/relation"
	"repro/internal/workload"
)

// FrequencyReport aggregates the classical frequency-analysis attack
// against deterministic index labels. It needs *no queries at all* (q = 0,
// entirely within the paper's trust regime!): Eve ranks the label
// frequencies of a column and matches them against the publicly known
// plaintext distribution, recovering the plaintext value behind each label.
//
// This attack is the practical reading of the paper's §1 result: failing
// Definition 1.2 is not an academic defect — a ciphertext-only adversary
// decrypts the indexed column of every deterministic scheme, while the
// paper's construction leaks nothing to rank.
type FrequencyReport struct {
	// Trials is the number of independent runs.
	Trials int
	// TupleRecovery is the average fraction of tuples whose department
	// value Eve assigned correctly.
	TupleRecovery float64
	// Baseline is the recovery rate of always guessing the most common
	// value — the floor any attack must beat.
	Baseline float64
}

// FrequencyAnalysis runs the attack against the given scheme over the
// employee workload (Zipf-distributed departments, distribution known to
// Eve). Eve sees only E_k(R): for each tuple she looks at the dept-column
// label (for the paper's construction: any cipherword — all pseudorandom),
// groups equal labels, ranks groups by size, and assigns the i-th most
// common label to the i-th most common plaintext department.
func FrequencyAnalysis(factory games.SchemeFactory, tuples, trials int, seed int64) (*FrequencyReport, error) {
	if tuples <= 0 || trials <= 0 {
		return nil, fmt.Errorf("attacks: frequency analysis needs positive tuples (%d) and trials (%d)", tuples, trials)
	}
	rng := rand.New(rand.NewSource(seed))
	rep := &FrequencyReport{Trials: trials}
	var sumRec, sumBase float64
	for trial := 0; trial < trials; trial++ {
		table, err := workload.Employees(tuples, rng.Int63())
		if err != nil {
			return nil, err
		}
		schema := table.Schema()
		deptIdx := schema.ColumnIndex("dept")
		// Eve's public knowledge: the ranking of departments by
		// popularity. We give her the *true* ranking from the plaintext
		// (a generous but standard assumption — census-style data).
		trueRank := rankValues(table, deptIdx)

		scheme, err := factory(schema)
		if err != nil {
			return nil, err
		}
		ct, err := scheme.EncryptTable(table)
		if err != nil {
			return nil, err
		}
		// Eve ranks the observable labels of the dept column. For the
		// paper's construction Words are order-shuffled cipherwords, so
		// she conservatively uses the column position anyway — every
		// word is unique and grouping collapses to singletons.
		labelOf := func(i int) string {
			words := ct.Tuples[i].Words
			if deptIdx < len(words) {
				return string(words[deptIdx])
			}
			return ""
		}
		counts := map[string]int{}
		for i := range ct.Tuples {
			counts[labelOf(i)]++
		}
		labelRank := rankKeys(counts)
		// Assignment: i-th most common label -> i-th most common dept.
		guessFor := map[string]string{}
		for i, lbl := range labelRank {
			if i < len(trueRank) {
				guessFor[lbl] = trueRank[i]
			}
		}
		// Score: Eve's per-ciphertext-tuple guesses vs the decrypted
		// truth. The ciphertext order is a permutation of the plaintext,
		// so score against the scheme's own decryption.
		pt, err := scheme.DecryptTable(ct)
		if err != nil {
			return nil, err
		}
		correct := 0
		for i := 0; i < pt.Len(); i++ {
			if guessFor[labelOf(i)] == pt.Tuple(i)[deptIdx].Str() {
				correct++
			}
		}
		sumRec += float64(correct) / float64(pt.Len())
		// Baseline: guess the most common department for every tuple.
		base := 0
		for i := 0; i < pt.Len(); i++ {
			if pt.Tuple(i)[deptIdx].Str() == trueRank[0] {
				base++
			}
		}
		sumBase += float64(base) / float64(pt.Len())
	}
	rep.TupleRecovery = sumRec / float64(trials)
	rep.Baseline = sumBase / float64(trials)
	return rep, nil
}

// rankValues returns the column's values sorted by descending frequency.
func rankValues(t *relation.Table, col int) []string {
	counts := map[string]int{}
	for _, tp := range t.Tuples() {
		counts[tp[col].Str()]++
	}
	return rankKeys(counts)
}

// rankKeys sorts map keys by descending count, ties broken lexically for
// determinism.
func rankKeys(counts map[string]int) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}
