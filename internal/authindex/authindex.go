// Package authindex is the repository's extension beyond the paper: a
// Merkle hash tree over the encrypted tuples of a stored table, letting
// Alex verify that Eve's query answers consist of genuine, untampered
// ciphertext tuples.
//
// The paper's trust model assumes Eve follows the protocol; its
// construction protects *confidentiality* only. If Eve turns actively
// malicious she could substitute or corrupt ciphertexts. With an
// authenticated index Alex remembers only the 32-byte root of the table he
// uploaded; every returned tuple comes with an inclusion proof of
// O(log n) hashes that he checks against the root.
//
// The tree shape is RFC-6962-compatible: leaves in table order, each
// level pairing left-to-right with an odd trailing node promoted
// unchanged, which is exactly the recursive largest-power-of-two split of
// RFC 6962 §2.1. That equivalence is what makes the tree *incrementally
// maintainable*: appending k leaves to an n-leaf tree only touches the
// new leaves' ancestors and the old rightmost path — Tree.Extend repairs
// the level structure in O(k + log n) hashes instead of the O(n) rebuild
// Build performs — and the append-only root can equally be carried as a
// Frontier: the O(log n) stack of perfect-subtree roots (the binary
// decomposition of n) from which the root is a right-to-left fold. The
// server maintains a Tree per table (storage keeps it version-stamped
// under the table lock); the client carries only a Frontier and advances
// its pinned root from the leaf hashes of its own appends, with no
// re-download.
//
// Scope note (recorded in DESIGN.md): inclusion proofs authenticate
// *integrity* of returned tuples, not *completeness* of search results — a
// malicious server may still withhold matches. Completeness for
// searchable encryption requires different machinery (e.g. signed result
// digests per trapdoor) and is out of scope here, as it is for the paper.
package authindex

import (
	"bytes"
	"crypto/sha256"
	"fmt"

	"repro/internal/ph"
	"repro/internal/wire"
)

// HashSize is the node hash width.
const HashSize = sha256.Size

// domain-separation prefixes for leaf and interior hashes (second-preimage
// hardening, as in RFC 6962).
const (
	leafPrefix     = 0x00
	interiorPrefix = 0x01
)

// Tree is a Merkle tree over the tuples of one encrypted table, leaves in
// table order. Odd nodes are promoted unchanged to the next level, so the
// proof shape is fully determined by (position, leaf count) and proofs can
// consist of bare sibling hashes.
//
// A Tree is not safe for concurrent mutation: callers interleaving Extend
// with Root/Prove must serialise externally (internal/storage does, under
// the table lock). Hash values handed out by Root and Prove are never
// mutated in place by later Extends, so proofs taken before an Extend
// stay internally consistent.
type Tree struct {
	n      int        // real leaf count (0 for an empty table's sentinel tree)
	levels [][][]byte // levels[0] = leaf hashes, last level = [root]
}

// LeafHash hashes one encrypted tuple into its leaf. Every field is
// length-prefixed so the encoding is injective.
func LeafHash(t ph.EncryptedTuple) []byte {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	var buf []byte
	buf = wire.AppendBytes(buf, t.ID)
	buf = wire.AppendBytes(buf, t.Blob)
	buf = wire.AppendU32(buf, uint32(len(t.Words)))
	for _, w := range t.Words {
		buf = wire.AppendBytes(buf, w)
	}
	h.Write(buf)
	return h.Sum(nil)
}

// interiorHash combines two child hashes.
func interiorHash(left, right []byte) []byte {
	h := sha256.New()
	h.Write([]byte{interiorPrefix})
	h.Write(left)
	h.Write(right)
	return h.Sum(nil)
}

// Build constructs the tree for an encrypted table. An empty table yields a
// tree whose root is the hash of the empty string under the leaf prefix.
func Build(t *ph.EncryptedTable) *Tree {
	leaves := make([][]byte, len(t.Tuples))
	for i, tp := range t.Tuples {
		leaves[i] = LeafHash(tp)
	}
	return fromLeaves(leaves)
}

// emptyRoot is the root of a zero-leaf tree: the hash of the empty string
// under the leaf prefix.
func emptyRoot() []byte {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	return h.Sum(nil)
}

// fromLeaves builds the level structure bottom-up.
func fromLeaves(leaves [][]byte) *Tree {
	tr := &Tree{n: len(leaves)}
	if len(leaves) == 0 {
		leaves = [][]byte{emptyRoot()}
	}
	tr.levels = [][][]byte{leaves}
	cur := leaves
	for len(cur) > 1 {
		next := make([][]byte, 0, (len(cur)+1)/2)
		for i := 0; i < len(cur); i += 2 {
			if i+1 < len(cur) {
				next = append(next, interiorHash(cur[i], cur[i+1]))
			} else {
				next = append(next, cur[i]) // odd node promoted
			}
		}
		tr.levels = append(tr.levels, next)
		cur = next
	}
	return tr
}

// Extend appends leaf hashes (LeafHash of the appended tuples, in table
// order) to the tree and repairs the level structure incrementally. Only
// the new leaves' ancestors and the old rightmost path are recomputed:
// O(k + log n) hashes for k appended leaves, against the O(n) full
// rebuild of Build. Extending the sentinel tree of an empty table
// replaces it with a real tree over the new leaves.
func (t *Tree) Extend(leaves [][]byte) {
	if len(leaves) == 0 {
		return
	}
	if t.n == 0 {
		*t = *fromLeaves(leaves)
		return
	}
	first := t.n // leftmost changed index, per level
	t.levels[0] = append(t.levels[0], leaves...)
	t.n += len(leaves)
	for lvl := 0; len(t.levels[lvl]) > 1; lvl++ {
		cur := t.levels[lvl]
		parentW := (len(cur) + 1) / 2
		if lvl+1 == len(t.levels) {
			t.levels = append(t.levels, make([][]byte, parentW))
		}
		next := t.levels[lvl+1]
		if cap(next) < parentW {
			// Grow with slack so a run of small appends reallocates each
			// level O(log growth) times, not once per Extend.
			grown := make([][]byte, parentW, parentW+parentW/2+8)
			copy(grown, next)
			next = grown
		} else {
			next = next[:parentW]
		}
		// Repair from the parent of the leftmost changed node: when first
		// is odd this also re-hashes the pair whose left half was
		// previously a promoted odd node.
		for j := first / 2; j < parentW; j++ {
			if 2*j+1 < len(cur) {
				next[j] = interiorHash(cur[2*j], cur[2*j+1])
			} else {
				next[j] = cur[2*j] // odd node promoted
			}
		}
		t.levels[lvl+1] = next
		first /= 2
	}
}

// Root returns the 32-byte tree root.
func (t *Tree) Root() []byte {
	top := t.levels[len(t.levels)-1]
	return append([]byte(nil), top[0]...)
}

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int { return len(t.levels[0]) }

// Proof is the inclusion proof for one leaf: the sibling hashes from the
// leaf level upward. Levels where the node is promoted without sibling
// contribute no hash; the verifier reconstructs the shape from
// (Position, leaf count).
type Proof struct {
	// Position is the leaf index the proof speaks about.
	Position int
	// Siblings are the sibling hashes, bottom-up.
	Siblings [][]byte
}

// Prove produces inclusion proofs for the given leaf positions.
func (t *Tree) Prove(positions []int) ([]Proof, error) {
	out := make([]Proof, len(positions))
	height := len(t.levels) - 1
	for k, pos := range positions {
		if pos < 0 || pos >= t.LeafCount() {
			return nil, fmt.Errorf("authindex: position %d out of range [0, %d)", pos, t.LeafCount())
		}
		p := Proof{Position: pos, Siblings: make([][]byte, 0, height)}
		idx := pos
		for lvl := 0; lvl < len(t.levels)-1; lvl++ {
			width := len(t.levels[lvl])
			if idx == width-1 && width%2 == 1 {
				// promoted: no sibling at this level
			} else if idx%2 == 0 {
				p.Siblings = append(p.Siblings, t.levels[lvl][idx+1])
			} else {
				p.Siblings = append(p.Siblings, t.levels[lvl][idx-1])
			}
			idx /= 2
		}
		out[k] = p
	}
	return out, nil
}

// Verify checks that tuple is the leaf at proof.Position of the tree with
// the given root and leaf count.
func Verify(root []byte, leafCount int, tuple ph.EncryptedTuple, proof Proof) error {
	if proof.Position < 0 || proof.Position >= leafCount {
		return fmt.Errorf("authindex: proof position %d out of range [0, %d)", proof.Position, leafCount)
	}
	cur := LeafHash(tuple)
	idx := proof.Position
	width := leafCount
	s := 0
	for width > 1 {
		if idx == width-1 && width%2 == 1 {
			// promoted unchanged
		} else {
			if s >= len(proof.Siblings) {
				return fmt.Errorf("authindex: proof too short (%d siblings)", len(proof.Siblings))
			}
			sib := proof.Siblings[s]
			s++
			if len(sib) != HashSize {
				return fmt.Errorf("authindex: sibling hash has %d bytes, want %d", len(sib), HashSize)
			}
			if idx%2 == 0 {
				cur = interiorHash(cur, sib)
			} else {
				cur = interiorHash(sib, cur)
			}
		}
		idx /= 2
		width = (width + 1) / 2
	}
	if s != len(proof.Siblings) {
		return fmt.Errorf("authindex: proof has %d unused siblings", len(proof.Siblings)-s)
	}
	//phlint:ignore ctcompare Merkle roots are public commitments published to every client, not secrets
	if !bytes.Equal(cur, root) {
		return fmt.Errorf("authindex: root mismatch: computed %x, want %x", cur, root)
	}
	return nil
}

// EncodeProofs serialises proofs for the wire.
func EncodeProofs(dst []byte, proofs []Proof) []byte {
	dst = wire.AppendU32(dst, uint32(len(proofs)))
	for _, p := range proofs {
		dst = wire.AppendU32(dst, uint32(p.Position))
		dst = wire.AppendU32(dst, uint32(len(p.Siblings)))
		for _, s := range p.Siblings {
			dst = wire.AppendBytes(dst, s)
		}
	}
	return dst
}

// DecodeProofs parses proofs from a wire buffer.
func DecodeProofs(r *wire.Buffer) ([]Proof, error) {
	n, err := r.U32()
	if err != nil {
		return nil, fmt.Errorf("authindex: proof count: %w", err)
	}
	// The preallocation hint is clamped by what the remaining payload
	// could possibly encode (a proof is at least position + sibling
	// count), so a hostile declared count cannot force a huge allocation;
	// the loop still reads exactly the declared count and fails on a
	// short buffer.
	proofs := make([]Proof, 0, wire.ClampCount(n, r.Remaining()/8))
	for i := uint32(0); i < n; i++ {
		var p Proof
		pos, err := r.U32()
		if err != nil {
			return nil, fmt.Errorf("authindex: proof %d position: %w", i, err)
		}
		p.Position = int(pos)
		ns, err := r.U32()
		if err != nil {
			return nil, fmt.Errorf("authindex: proof %d sibling count: %w", i, err)
		}
		for j := uint32(0); j < ns; j++ {
			s, err := r.Bytes()
			if err != nil {
				return nil, fmt.Errorf("authindex: proof %d sibling %d: %w", i, j, err)
			}
			p.Siblings = append(p.Siblings, s)
		}
		proofs = append(proofs, p)
	}
	return proofs, nil
}
