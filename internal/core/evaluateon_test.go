package core

import (
	"reflect"
	"testing"

	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/workload"
)

// evalOnFixture encrypts an employee table and returns the ciphertext
// plus an encrypted query for the given department.
func evalOnFixture(t *testing.T, n int, dept string) (*ph.EncryptedTable, *ph.EncryptedQuery) {
	t.Helper()
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	table, err := workload.Employees(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := New(key, table.Schema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	et, err := scheme.EncryptTable(table)
	if err != nil {
		t.Fatal(err)
	}
	q, err := scheme.EncryptQuery(relation.Eq{Column: "dept", Value: relation.String(dept)})
	if err != nil {
		t.Fatal(err)
	}
	return et, q
}

// TestEvaluateOnMatchesEvaluate checks the narrowing invariant on tables
// both below and above the parallel threshold: for any candidate set,
// EvaluateOn(candidates) == Evaluate() ∩ candidates.
func TestEvaluateOnMatchesEvaluate(t *testing.T) {
	for _, n := range []int{64, 3000} {
		et, q := evalOnFixture(t, n, "HR")
		full, err := Evaluate(et, q)
		if err != nil {
			t.Fatal(err)
		}
		candidateSets := [][]int{
			nil,                                   // whole table (Narrower contract)
			[]int{},                               // no candidates at all
			ascendingRange(0, len(et.Tuples)),     // everything, explicitly
			ascendingRange(0, len(et.Tuples)/2),   // first half
			everyKth(len(et.Tuples), 3),           // strided
			append([]int(nil), full.Positions...), // exactly the matches
			ascendingRange(len(et.Tuples)-1, len(et.Tuples)),
		}
		for ci, cands := range candidateSets {
			got, err := EvaluateOn(et, q, cands)
			if err != nil {
				t.Fatalf("n=%d case %d: %v", n, ci, err)
			}
			// Nil selects the whole table; anything else intersects.
			want := full.Positions
			if cands != nil {
				want = ph.IntersectPositions(cands, full.Positions)
			}
			if !reflect.DeepEqual(normalize(got), normalize(want)) {
				t.Fatalf("n=%d case %d: EvaluateOn = %v, want %v", n, ci, got, want)
			}
		}
	}
}

// TestEvaluateOnViaRegistry checks ph.ApplyOn dispatches to the
// registered narrower for the paper's scheme.
func TestEvaluateOnViaRegistry(t *testing.T) {
	et, q := evalOnFixture(t, 200, "IT")
	full, err := Evaluate(et, q)
	if err != nil {
		t.Fatal(err)
	}
	cands := ascendingRange(0, len(et.Tuples))
	got, err := ph.ApplyOn(et, q, cands)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(got), normalize(full.Positions)) {
		t.Fatalf("ApplyOn via registry = %v, want %v", got, full.Positions)
	}
}

func TestEvaluateOnRejectsBadCandidates(t *testing.T) {
	et, q := evalOnFixture(t, 32, "HR")
	for _, cands := range [][]int{{-1}, {32}, {5, 5}, {7, 3}} {
		if _, err := EvaluateOn(et, q, cands); err == nil {
			t.Fatalf("candidates %v must be rejected", cands)
		}
	}
}

func ascendingRange(lo, hi int) []int {
	if hi <= lo {
		return nil
	}
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

func everyKth(n, k int) []int {
	var out []int
	for i := 0; i < n; i += k {
		out = append(out, i)
	}
	return out
}

func normalize(xs []int) []int {
	if len(xs) == 0 {
		return []int{}
	}
	return xs
}
