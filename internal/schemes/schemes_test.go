// Package schemes_test exercises the three comparator schemes through the
// shared ph.Scheme interface: round trips, homomorphic selects with
// client-side filtering, and the deterministic-label leakage the paper's §1
// attack exploits.
package schemes_test

import (
	"bytes"
	"testing"

	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/schemes/bucket"
	"repro/internal/schemes/damiani"
	"repro/internal/schemes/detph"
)

func empSchema() *relation.Schema {
	return relation.MustSchema("emp",
		relation.Column{Name: "name", Type: relation.TypeString, Width: 10},
		relation.Column{Name: "dept", Type: relation.TypeString, Width: 5},
		relation.Column{Name: "salary", Type: relation.TypeInt, Width: 5},
	)
}

func empTable() *relation.Table {
	t := relation.NewTable(empSchema())
	t.MustInsert(relation.String("Montgomery"), relation.String("HR"), relation.Int(7500))
	t.MustInsert(relation.String("Ada"), relation.String("IT"), relation.Int(9100))
	t.MustInsert(relation.String("Grace"), relation.String("HR"), relation.Int(8800))
	t.MustInsert(relation.String("Alan"), relation.String("R&D"), relation.Int(7500))
	return t
}

// allSchemes builds one instance of each comparator with a fresh key.
func allSchemes(t *testing.T) []ph.Scheme {
	t.Helper()
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	b, err := bucket.New(key, empSchema(), bucket.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := damiani.New(key, empSchema(), damiani.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := detph.New(key, empSchema())
	if err != nil {
		t.Fatal(err)
	}
	return []ph.Scheme{b, d, dp}
}

func TestSchemesRoundTrip(t *testing.T) {
	tab := empTable()
	for _, s := range allSchemes(t) {
		ct, err := s.EncryptTable(tab)
		if err != nil {
			t.Fatalf("%s: EncryptTable: %v", s.Name(), err)
		}
		pt, err := s.DecryptTable(ct)
		if err != nil {
			t.Fatalf("%s: DecryptTable: %v", s.Name(), err)
		}
		if !pt.Equal(tab) {
			t.Fatalf("%s: round trip changed the table", s.Name())
		}
	}
}

func TestSchemesHomomorphicSelect(t *testing.T) {
	tab := empTable()
	queries := []relation.Eq{
		{Column: "dept", Value: relation.String("HR")},
		{Column: "salary", Value: relation.Int(7500)},
		{Column: "name", Value: relation.String("Ada")},
		{Column: "dept", Value: relation.String("NONE")},
	}
	for _, s := range allSchemes(t) {
		ct, err := s.EncryptTable(tab)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			want, err := relation.Select(tab, q)
			if err != nil {
				t.Fatal(err)
			}
			eq, err := s.EncryptQuery(q)
			if err != nil {
				t.Fatalf("%s: EncryptQuery: %v", s.Name(), err)
			}
			res, err := ph.Apply(ct, eq)
			if err != nil {
				t.Fatalf("%s: Apply: %v", s.Name(), err)
			}
			got, err := s.DecryptResult(q, res)
			if err != nil {
				t.Fatalf("%s: DecryptResult: %v", s.Name(), err)
			}
			if !got.Equal(want) {
				t.Errorf("%s: query %s: wrong result after filtering", s.Name(), q)
			}
			// Server may return a superset (bucket collisions), never
			// a subset.
			if len(res.Tuples) < want.Len() {
				t.Errorf("%s: query %s: server returned %d < %d true matches",
					s.Name(), q, len(res.Tuples), want.Len())
			}
		}
	}
}

func TestDeterministicLabelsLeak(t *testing.T) {
	// The weakness the paper exploits: equal values get equal labels.
	tab := relation.NewTable(empSchema())
	tab.MustInsert(relation.String("A"), relation.String("HR"), relation.Int(4900))
	tab.MustInsert(relation.String("B"), relation.String("HR"), relation.Int(4900))
	for _, s := range allSchemes(t) {
		ct, err := s.EncryptTable(tab)
		if err != nil {
			t.Fatal(err)
		}
		// dept labels (col 1) and salary labels (col 2) must repeat.
		if !bytes.Equal(ct.Tuples[0].Words[1], ct.Tuples[1].Words[1]) {
			t.Errorf("%s: equal dept values got different labels — attack model broken", s.Name())
		}
		if !bytes.Equal(ct.Tuples[0].Words[2], ct.Tuples[1].Words[2]) {
			t.Errorf("%s: equal salary values got different labels", s.Name())
		}
	}
}

func TestBucketDistinctValuesDistinctIntervals(t *testing.T) {
	// The paper's §1 attack needs 1200 and 4900 to land in different
	// intervals. With the declared domain [0, 9999] and 16 buckets the
	// interval width is 624, so they always do.
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	s, err := bucket.New(key, empSchema(), bucket.Options{
		IntDomains: map[string]bucket.Domain{"salary": {Min: 0, Max: 9999}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := relation.NewTable(empSchema())
	tab.MustInsert(relation.String("A"), relation.String("HR"), relation.Int(4900))
	tab.MustInsert(relation.String("B"), relation.String("IT"), relation.Int(1200))
	ct, err := s.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct.Tuples[0].Words[2], ct.Tuples[1].Words[2]) {
		t.Fatal("1200 and 4900 share a bucket label in domain [0,9999] with 16 buckets")
	}
}

func TestBucketDomainEnforced(t *testing.T) {
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	s, err := bucket.New(key, empSchema(), bucket.Options{
		IntDomains: map[string]bucket.Domain{"salary": {Min: 0, Max: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := relation.NewTable(empSchema())
	tab.MustInsert(relation.String("A"), relation.String("HR"), relation.Int(4900))
	if _, err := s.EncryptTable(tab); err == nil {
		t.Fatal("out-of-domain value accepted")
	}
}

func TestBucketOptionValidation(t *testing.T) {
	key, _ := crypto.RandomKey()
	if _, err := bucket.New(key, empSchema(), bucket.Options{Buckets: 1}); err == nil {
		t.Fatal("single bucket accepted")
	}
	if _, err := bucket.New(key, empSchema(), bucket.Options{
		IntDomains: map[string]bucket.Domain{"salary": {Min: 5, Max: 1}},
	}); err == nil {
		t.Fatal("inverted domain accepted")
	}
	if _, err := damiani.New(key, empSchema(), damiani.Options{Buckets: 1}); err == nil {
		t.Fatal("single hash bucket accepted")
	}
}

func TestDamianiBucketsCollide(t *testing.T) {
	// With 2 hash buckets, many distinct values must share labels —
	// that's the scheme's confidentiality/efficiency dial.
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	s, err := damiani.New(key, empSchema(), damiani.Options{Buckets: 2})
	if err != nil {
		t.Fatal(err)
	}
	tab := relation.NewTable(empSchema())
	for i := 0; i < 16; i++ {
		tab.MustInsert(relation.String("P"), relation.String("HR"), relation.Int(int64(i*100)))
	}
	ct, err := s.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]int{}
	for _, tp := range ct.Tuples {
		labels[string(tp.Words[2])]++
	}
	if len(labels) > 2 {
		t.Fatalf("2-bucket hashing produced %d distinct labels", len(labels))
	}
	// Filtering must still make the select exact.
	q := relation.Eq{Column: "salary", Value: relation.Int(400)}
	eq, err := s.EncryptQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ph.Apply(ct, eq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.DecryptResult(q, res)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Tuple(0)[2].Integer() != 400 {
		t.Fatalf("filtered result wrong: %v", got)
	}
	if len(res.Tuples) <= 1 {
		t.Fatal("expected bucket collisions to inflate the raw result")
	}
}

func TestDetphNoFalsePositives(t *testing.T) {
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	s, err := detph.New(key, empSchema())
	if err != nil {
		t.Fatal(err)
	}
	tab := empTable()
	ct, err := s.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	q := relation.Eq{Column: "dept", Value: relation.String("HR")}
	eq, err := s.EncryptQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ph.Apply(ct, eq)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 {
		t.Fatalf("detph raw result has %d tuples, want exactly 2 (injective labels)", len(res.Tuples))
	}
}

func TestSchemesRejectForeignCiphertext(t *testing.T) {
	ss := allSchemes(t)
	tab := empTable()
	ct, err := ss[0].EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss[1].DecryptTable(ct); err == nil {
		t.Fatal("scheme decrypted another scheme's ciphertext without error")
	}
}

func TestSchemesRejectWrongSchema(t *testing.T) {
	other := relation.MustSchema("other",
		relation.Column{Name: "x", Type: relation.TypeInt, Width: 3},
	)
	tab := relation.NewTable(other)
	tab.MustInsert(relation.Int(1))
	for _, s := range allSchemes(t) {
		if _, err := s.EncryptTable(tab); err == nil {
			t.Fatalf("%s: encrypted a table of a foreign schema", s.Name())
		}
		if _, err := s.EncryptQuery(relation.Eq{Column: "x", Value: relation.Int(1)}); err == nil {
			t.Fatalf("%s: encrypted a query over a foreign schema", s.Name())
		}
	}
}

func TestTupleOrderIsShuffled(t *testing.T) {
	// Insertion order must not be observable: encrypt a 64-tuple table
	// with a strictly increasing key and check the blobs don't decrypt
	// in insertion order every time (probabilistic, 1/64! false-fail).
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	s, err := detph.New(key, empSchema())
	if err != nil {
		t.Fatal(err)
	}
	tab := relation.NewTable(empSchema())
	for i := 0; i < 64; i++ {
		tab.MustInsert(relation.String("P"), relation.String("HR"), relation.Int(int64(i)))
	}
	ct, err := s.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := s.DecryptTable(ct)
	if err != nil {
		t.Fatal(err)
	}
	inOrder := true
	for i := 0; i < pt.Len(); i++ {
		if pt.Tuple(i)[2].Integer() != int64(i) {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("ciphertext preserved insertion order exactly (shuffle missing?)")
	}
}
