package storage

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// fakeLogFile is an instrumented in-memory LogFile. It tracks how many
// bytes have been written and how many of those an fsync has covered, so
// tests can pin the sync-before-ack ordering and the fsync sharing of
// group commit without depending on disk timing.
type fakeLogFile struct {
	mu        sync.Mutex
	data      []byte
	synced    atomic.Int64 // bytes covered by the last Sync
	syncs     atomic.Int64
	syncDelay time.Duration
	failWrite error
	failSync  error
	closed    bool
}

func (f *fakeLogFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failWrite != nil {
		// Simulate a torn write: half the record reaches the file.
		n := len(p) / 2
		f.data = append(f.data, p[:n]...)
		return n, f.failWrite
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

func (f *fakeLogFile) Sync() error {
	if f.syncDelay > 0 {
		time.Sleep(f.syncDelay)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failSync != nil {
		return f.failSync
	}
	f.synced.Store(int64(len(f.data)))
	f.syncs.Add(1)
	return nil
}

func (f *fakeLogFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.data = f.data[:size]
	return nil
}

func (f *fakeLogFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

// TestWALSyncBeforeAck pins the SyncAlways contract at the writer level:
// waitDurable may not return before an fsync covering the record's bytes
// has completed. Records are fixed-size, so record seq's last byte sits
// at seq*recLen; comparing against the fake's synced watermark makes the
// ordering check exact even with concurrent writers.
func TestWALSyncBeforeAck(t *testing.T) {
	f := &fakeLogFile{syncDelay: time.Millisecond}
	w := newWALWriter(f, 0, 0, Options{Sync: SyncAlways})
	payload := make([]byte, 32)
	recLen := int64(walV1HdrLen + len(payload))

	const writers, perWriter = 8, 20
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq, err := w.write(opInsert, payload)
				if err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if err := w.waitDurable(seq); err != nil {
					t.Errorf("waitDurable: %v", err)
					return
				}
				if got := f.synced.Load(); got < int64(seq)*recLen {
					t.Errorf("record %d acknowledged with only %d bytes synced (record ends at %d)",
						seq, got, int64(seq)*recLen)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	total := int64(writers * perWriter)
	syncs := f.syncs.Load()
	if syncs == 0 || syncs > total {
		t.Fatalf("%d records took %d fsyncs", total, syncs)
	}
	// Group commit must share fsyncs among the 8 concurrent writers. The
	// sharing factor is scheduling-dependent, but with a slowed-down Sync
	// it cannot degenerate to one fsync per record.
	if syncs > total*3/4 {
		t.Errorf("group commit not sharing: %d fsyncs for %d records", syncs, total)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !f.closed {
		t.Error("Close did not close the file")
	}
}

// TestWALSingleWriterAlwaysSyncsEachRecord: with no concurrency there is
// nothing to share, so every acknowledged record pays its own fsync —
// the naive baseline E15 compares group commit against.
func TestWALSingleWriterAlwaysSyncsEachRecord(t *testing.T) {
	f := &fakeLogFile{}
	w := newWALWriter(f, 0, 0, Options{Sync: SyncAlways})
	for i := 0; i < 10; i++ {
		seq, err := w.write(opInsert, []byte{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.waitDurable(seq); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.syncs.Load(); got != 10 {
		t.Fatalf("single writer issued %d fsyncs for 10 records", got)
	}
}

// TestWALNeverPolicy: no fsync during operation, exactly one on Close,
// and the record still reaches the OS (the fake) before the ack.
func TestWALNeverPolicy(t *testing.T) {
	f := &fakeLogFile{}
	w := newWALWriter(f, 0, 0, Options{Sync: SyncNever})
	seq, err := w.write(opInsert, []byte{9})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.waitDurable(seq); err != nil {
		t.Fatal(err)
	}
	if len(f.data) == 0 {
		t.Fatal("record not written before ack under SyncNever")
	}
	if f.syncs.Load() != 0 {
		t.Fatalf("SyncNever fsynced %d times during operation", f.syncs.Load())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if f.syncs.Load() != 1 {
		t.Fatalf("Close under SyncNever issued %d fsyncs, want 1", f.syncs.Load())
	}
}

// TestWALIntervalPolicy: acks don't wait, and the background ticker
// eventually syncs what was written.
func TestWALIntervalPolicy(t *testing.T) {
	f := &fakeLogFile{}
	w := newWALWriter(f, 0, 0, Options{Sync: SyncInterval, SyncInterval: time.Millisecond})
	seq, err := w.write(opInsert, []byte{7})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.waitDurable(seq); err != nil { // must not block
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for f.syncs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background interval sync never ran")
		}
		time.Sleep(time.Millisecond)
	}
	if got := f.synced.Load(); got != int64(len(f.data)) {
		t.Fatalf("interval sync covered %d of %d bytes", got, len(f.data))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The ticker must be stopped: sync count stays put afterwards.
	after := f.syncs.Load()
	time.Sleep(5 * time.Millisecond)
	if got := f.syncs.Load(); got != after {
		t.Fatalf("ticker still running after Close: %d -> %d syncs", after, got)
	}
}

// TestWALWriteAfterCloseFails pins that a closed log refuses mutations
// instead of silently dropping them (the pre-WAL store no-op'd).
func TestWALWriteAfterCloseFails(t *testing.T) {
	w := newWALWriter(&fakeLogFile{}, 0, 0, Options{Sync: SyncNever})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.write(opInsert, []byte{1}); !errors.Is(err, errLogClosed) {
		t.Fatalf("write after close: %v, want errLogClosed", err)
	}
	if err := w.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}
}

// TestWALTornWriteRepaired: a failed partial write is truncated away so
// the log stays parseable, and the writer keeps accepting records.
func TestWALTornWriteRepaired(t *testing.T) {
	f := &fakeLogFile{}
	w := newWALWriter(f, 0, 0, Options{Sync: SyncNever})
	if _, err := w.write(opInsert, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	good := len(f.data)
	f.failWrite = errors.New("disk full")
	if _, err := w.write(opInsert, []byte{5, 6, 7, 8}); err == nil {
		t.Fatal("failed write reported success")
	}
	if len(f.data) != good {
		t.Fatalf("torn record not truncated: %d bytes, want %d", len(f.data), good)
	}
	f.failWrite = nil
	if _, err := w.write(opInsert, []byte{9}); err != nil {
		t.Fatalf("writer did not recover from a repaired torn write: %v", err)
	}
}

// TestWALIntervalSyncFailureSurfaces: under SyncInterval waitDurable
// never reports, so a failed background fsync must fail later writes —
// otherwise the bounded loss window silently becomes unbounded.
func TestWALIntervalSyncFailureSurfaces(t *testing.T) {
	f := &fakeLogFile{failSync: errors.New("enospc")}
	w := newWALWriter(f, 0, 0, Options{Sync: SyncInterval, SyncInterval: time.Millisecond})
	defer w.Close()
	if _, err := w.write(opInsert, []byte{1}); err != nil {
		t.Fatal(err) // nothing has failed yet
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := w.write(opInsert, []byte{2}); err != nil {
			return // background sync failure surfaced
		}
		if time.Now().After(deadline) {
			t.Fatal("writes kept succeeding after the background fsync started failing")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWALOversizedRecordRejected: a record replay would reject as
// corruption must be refused at write time, not acknowledged and then
// silently truncated away on the next open.
func TestWALOversizedRecordRejected(t *testing.T) {
	f := &fakeLogFile{}
	w := newWALWriter(f, 0, 0, Options{Sync: SyncNever})
	defer w.Close()
	if _, err := w.write(opInsert, make([]byte, wire.MaxFrameSize+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
	if len(f.data) != 0 {
		t.Fatal("oversized record partially written")
	}
	if _, err := w.write(opInsert, []byte{1}); err != nil {
		t.Fatalf("writer unusable after rejecting an oversized record: %v", err)
	}
}

// TestWALSyncErrorSticky: once an fsync fails under SyncAlways the
// writer reports the failure to every waiter, and refuses later records
// outright — before the caller applies them to memory — rather than
// staging them into a buffer no sync will ever drain.
func TestWALSyncErrorSticky(t *testing.T) {
	f := &fakeLogFile{failSync: errors.New("io error")}
	w := newWALWriter(f, 0, 0, Options{Sync: SyncAlways})
	seq, err := w.write(opInsert, []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.waitDurable(seq); err == nil {
		t.Fatal("fsync failure acknowledged as durable")
	}
	if _, err := w.write(opInsert, []byte{2}); err == nil {
		t.Fatal("writer accepted a record after an unresolved fsync failure")
	}
}
