package query

// MergePlans folds per-shard plan summaries into one coordinator-side
// view of a scattered conjunction. Each shard plans independently
// against its own sketch, so conjunct *order* may differ per shard —
// that is the point of per-shard planning, a conjunct that is selective
// on one partition's skew may not be on another's. The merged summary
// therefore reports per-conjunct totals, ordered by first appearance
// across the shards (shard 0's order first): Tuples and the observed
// Tested/Hits counters sum, and the selectivity estimate is the
// tuple-weighted mean of the shard estimates (a shard's estimate speaks
// for its share of the table). EstKnown only survives if every shard
// that planned the conjunct had observations for it; Source is taken
// from the first shard that planned it, since shards may legitimately
// serve the same conjunct differently.
func MergePlans(infos []*PlanInfo) *PlanInfo {
	merged := &PlanInfo{}
	type acc struct {
		step   StepInfo
		estSum float64
		weight float64
	}
	var order []int
	byIndex := map[int]*acc{}
	for _, pi := range infos {
		if pi == nil {
			continue
		}
		merged.Tuples += pi.Tuples
		w := float64(pi.Tuples)
		for _, st := range pi.Steps {
			a, ok := byIndex[st.Index]
			if !ok {
				a = &acc{step: StepInfo{Index: st.Index, Source: st.Source, EstKnown: true}}
				byIndex[st.Index] = a
				order = append(order, st.Index)
			}
			a.step.Tested += st.Tested
			a.step.Hits += st.Hits
			a.step.EstKnown = a.step.EstKnown && st.EstKnown
			a.estSum += st.Est * w
			a.weight += w
		}
	}
	for _, idx := range order {
		a := byIndex[idx]
		if a.weight > 0 {
			a.step.Est = a.estSum / a.weight
		}
		merged.Steps = append(merged.Steps, a.step)
	}
	return merged
}
