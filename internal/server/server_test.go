package server

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/authindex"
	"repro/internal/ph"
	"repro/internal/storage"
	"repro/internal/wire"
)

var registerOnce sync.Once

func testStore(t *testing.T) *storage.Store {
	t.Helper()
	registerOnce.Do(func() {
		ph.RegisterEvaluator("server-test", func(et *ph.EncryptedTable, q *ph.EncryptedQuery) (*ph.Result, error) {
			return ph.SelectPositions(et, []int{0}), nil
		})
	})
	return storage.NewMemory()
}

// dispatchTable builds a store-able table payload for CmdStore.
func encTable(n int) *ph.EncryptedTable {
	et := &ph.EncryptedTable{SchemeID: "server-test"}
	for i := 0; i < n; i++ {
		et.Tuples = append(et.Tuples, ph.EncryptedTuple{
			ID:    []byte{byte(i)},
			Words: [][]byte{{0xA0, byte(i)}},
		})
	}
	return et
}

func storeFrame(name string, et *ph.EncryptedTable) wire.Frame {
	payload := wire.AppendString(nil, name)
	payload = wire.EncodeTable(payload, et)
	return wire.Frame{Type: wire.CmdStore, Payload: payload}
}

func TestDispatchStoreAndFetch(t *testing.T) {
	s := New(testStore(t), nil)
	resp := s.dispatch(storeFrame("emp", encTable(3)), nil)
	if resp.Type != wire.RespOK {
		t.Fatalf("store response %#x: %s", resp.Type, resp.Payload)
	}
	resp = s.dispatch(wire.Frame{Type: wire.CmdFetchAll, Payload: wire.AppendString(nil, "emp")}, nil)
	if resp.Type != wire.RespTable {
		t.Fatalf("fetch response %#x", resp.Type)
	}
	et, err := wire.DecodeTable(wire.NewBuffer(resp.Payload))
	if err != nil {
		t.Fatal(err)
	}
	if len(et.Tuples) != 3 {
		t.Fatalf("fetched %d tuples", len(et.Tuples))
	}
}

func TestDispatchQuery(t *testing.T) {
	s := New(testStore(t), nil)
	if resp := s.dispatch(storeFrame("emp", encTable(2)), nil); resp.Type != wire.RespOK {
		t.Fatal("store failed")
	}
	payload := wire.AppendString(nil, "emp")
	payload = wire.EncodeQuery(payload, &ph.EncryptedQuery{SchemeID: "server-test", Token: []byte{1}})
	resp := s.dispatch(wire.Frame{Type: wire.CmdQuery, Payload: payload}, nil)
	if resp.Type != wire.RespResult {
		t.Fatalf("query response %#x: %s", resp.Type, resp.Payload)
	}
	res, err := wire.DecodeResult(wire.NewBuffer(resp.Payload))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != 1 || res.Positions[0] != 0 {
		t.Fatalf("result: %+v", res)
	}
}

func TestDispatchUnknownCommand(t *testing.T) {
	s := New(testStore(t), nil)
	resp := s.dispatch(wire.Frame{Type: 0x7F}, nil)
	if resp.Type != wire.RespError {
		t.Fatalf("unknown command response %#x", resp.Type)
	}
}

func TestDispatchMalformedPayload(t *testing.T) {
	s := New(testStore(t), nil)
	for _, cmd := range []byte{wire.CmdStore, wire.CmdInsert, wire.CmdQuery, wire.CmdFetchAll,
		wire.CmdDrop, wire.CmdRoot, wire.CmdProve} {
		resp := s.dispatch(wire.Frame{Type: cmd, Payload: []byte{0xFF}}, nil)
		if resp.Type != wire.RespError {
			t.Errorf("command %#x with garbage payload returned %#x, want error", cmd, resp.Type)
		}
	}
}

func TestDispatchRootAndProve(t *testing.T) {
	s := New(testStore(t), nil)
	et := encTable(5)
	if resp := s.dispatch(storeFrame("emp", et), nil); resp.Type != wire.RespOK {
		t.Fatal("store failed")
	}
	resp := s.dispatch(wire.Frame{Type: wire.CmdRoot, Payload: wire.AppendString(nil, "emp")}, nil)
	if resp.Type != wire.RespRoot {
		t.Fatalf("root response %#x", resp.Type)
	}
	r := wire.NewBuffer(resp.Payload)
	root, err := r.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	count, err := r.U32()
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 || len(root) != authindex.HashSize {
		t.Fatalf("root payload: %d leaves, %d-byte root", count, len(root))
	}

	payload := wire.AppendString(nil, "emp")
	payload = wire.AppendU32(payload, 1)
	payload = wire.AppendU32(payload, 2)
	resp = s.dispatch(wire.Frame{Type: wire.CmdProve, Payload: payload}, nil)
	if resp.Type != wire.RespProofs {
		t.Fatalf("prove response %#x: %s", resp.Type, resp.Payload)
	}
	proofs, err := authindex.DecodeProofs(wire.NewBuffer(resp.Payload))
	if err != nil {
		t.Fatal(err)
	}
	if len(proofs) != 1 {
		t.Fatalf("got %d proofs", len(proofs))
	}
	// The proof must verify against the served root. The server stores a
	// copy of what we sent, so hash our local tuple.
	if err := authindex.Verify(root, 5, et.Tuples[2], proofs[0]); err != nil {
		t.Fatalf("served proof rejected: %v", err)
	}
}

func TestServeConnClosesOnGarbage(t *testing.T) {
	s := New(testStore(t), nil)
	cli, srv := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeConn(srv)
	}()
	// A frame whose declared size exceeds the maximum must terminate the
	// connection, not hang or crash.
	cli.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("server did not close the connection on a malformed frame")
	}
	cli.Close()
}

func TestCloseIsIdempotentAndStopsServe(t *testing.T) {
	s := New(testStore(t), nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()
	time.Sleep(20 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v after close", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("serve did not return after close")
	}
	// Serving again on a closed server must fail fast.
	if err := s.Serve(l); err == nil {
		t.Fatal("serve on closed server succeeded")
	}
}

func TestConcurrentClients(t *testing.T) {
	s := New(testStore(t), nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer s.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			name := string(rune('a' + i))
			f := storeFrame(name, encTable(2))
			if err := wire.WriteFrame(conn, f); err != nil {
				errs <- err
				return
			}
			resp, err := wire.ReadFrame(conn)
			if err != nil {
				errs <- err
				return
			}
			if resp.Type != wire.RespOK {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func batchFrame(name string, qs []*ph.EncryptedQuery) wire.Frame {
	payload := wire.AppendString(nil, name)
	payload = wire.AppendU32(payload, uint32(len(qs)))
	for _, q := range qs {
		payload = wire.EncodeQuery(payload, q)
	}
	return wire.Frame{Type: wire.CmdQueryBatch, Payload: payload}
}

func TestQueryBatchParallelKeepsOrder(t *testing.T) {
	store := testStore(t)
	s := New(store, nil)
	if resp := s.dispatch(storeFrame("emp", encTable(3)), nil); resp.Type != wire.RespOK {
		t.Fatalf("store: %#x %s", resp.Type, resp.Payload)
	}
	// More queries than the scheduler budget's capacity so the dispatch
	// semaphore path is exercised.
	qs := make([]*ph.EncryptedQuery, 9)
	for i := range qs {
		qs[i] = &ph.EncryptedQuery{SchemeID: "server-test", Token: []byte{byte(i)}}
	}
	resp := s.dispatch(batchFrame("emp", qs), nil)
	if resp.Type != wire.RespResults {
		t.Fatalf("batch response %#x: %s", resp.Type, resp.Payload)
	}
	r := wire.NewBuffer(resp.Payload)
	n, err := r.U32()
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != len(qs) {
		t.Fatalf("batch returned %d results, want %d", n, len(qs))
	}
	for i := uint32(0); i < n; i++ {
		res, err := wire.DecodeResult(r)
		if err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if len(res.Positions) != 1 || res.Positions[0] != 0 {
			t.Fatalf("result %d positions %v, want [0]", i, res.Positions)
		}
	}
}

func TestQueryBatchUnknownTableFailsAsUnit(t *testing.T) {
	s := New(testStore(t), nil)
	qs := []*ph.EncryptedQuery{
		{SchemeID: "server-test", Token: []byte{1}},
		{SchemeID: "server-test", Token: []byte{2}},
	}
	resp := s.dispatch(batchFrame("nope", qs), nil)
	if resp.Type != wire.RespError {
		t.Fatalf("batch on unknown table: response %#x, want error", resp.Type)
	}
}

func TestHostileCountsDoNotAllocate(t *testing.T) {
	// A frame may declare a huge element count with a tiny payload; the
	// decode loop must fail on the short buffer instead of preallocating
	// count-proportional memory (a remote OOM otherwise).
	s := New(testStore(t), nil)
	if resp := s.dispatch(storeFrame("emp", encTable(1)), nil); resp.Type != wire.RespOK {
		t.Fatalf("store: %#x", resp.Type)
	}
	for _, cmd := range []byte{wire.CmdQueryBatch, wire.CmdInsert} {
		payload := wire.AppendString(nil, "emp")
		payload = wire.AppendU32(payload, 0xFFFFFFFF) // declared count
		resp := s.dispatch(wire.Frame{Type: cmd, Payload: payload}, nil)
		if resp.Type != wire.RespError {
			t.Fatalf("cmd %#x with hostile count: response %#x, want error", cmd, resp.Type)
		}
	}
}
