package shard

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/authindex"
	"repro/internal/client"
	"repro/internal/ph"
	"repro/internal/query"
	"repro/internal/wire"
)

// Coordinator scatters reads and writes over the shards of a partition
// map, one replica-aware connection pool per shard. It implements both
// client.Cluster — so a local client embeds it directly — and
// server.Backend — so `phserver -coordinator` serves the same scatter
// to remote clients over the wire protocol.
//
// Every scatter runs the shards concurrently; a shard's reads go
// through its pool's routing (round-robin over healthy followers,
// quarantine with backoff on any failure, fallback to the shard
// primary), so a Byzantine follower on one shard is detected by the
// verification callback *inside* the routing and handled exactly like a
// dead one: quarantined, read retried elsewhere, surviving shards
// unaffected. The coordinator holds no locks of its own across I/O —
// per-shard serialisation lives in the pools, which is the capacity
// model (one in-flight request per connection).
type Coordinator struct {
	m     Map
	pools []*client.ReadPool
}

// Compile-time checks: the coordinator serves both embeddings.
var (
	_ client.Cluster = (*Coordinator)(nil)
	_ client.Cluster = (*Remote)(nil)
)

// NewCoordinator builds a coordinator over pre-built per-shard pools
// (pool i serves shard i). The pools are owned by the coordinator from
// here on: Close closes them.
func NewCoordinator(m Map, pools []*client.ReadPool) (*Coordinator, error) {
	if m.Count < 1 {
		return nil, fmt.Errorf("shard: partition map must have at least 1 shard, got %d", m.Count)
	}
	if len(pools) != m.Count {
		return nil, fmt.Errorf("shard: %d pools for a %d-shard map", len(pools), m.Count)
	}
	return &Coordinator{m: m, pools: pools}, nil
}

// FromConfig builds a coordinator from a client shards config: one
// dialed pool per shard, with that shard's read replicas attached.
// Dials are lazy (first use) and redialed on transport failure.
func FromConfig(sc *client.ShardsConfig, cfg client.DialConfig) (*Coordinator, error) {
	if sc == nil || len(sc.Shards) == 0 {
		return nil, fmt.Errorf("shard: empty shards config")
	}
	pools := make([]*client.ReadPool, len(sc.Shards))
	for i, s := range sc.Shards {
		addr := s.Addr
		pool := client.NewReadPoolDial(func() (*client.Conn, error) {
			return client.DialWithConfig(addr, cfg)
		})
		pool.AddReplicas(cfg, s.Replicas...)
		pools[i] = pool
	}
	return NewCoordinator(Map{Version: sc.Version, Count: len(sc.Shards)}, pools)
}

// Close closes every shard pool.
func (co *Coordinator) Close() error {
	var first error
	for _, p := range co.pools {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ShardStats returns each shard pool's read-routing counters, indexed
// by shard (failovers, replica failures, quarantines — the observability
// surface the Byzantine-shard drill asserts on).
func (co *Coordinator) ShardStats() []client.ReadStats {
	stats := make([]client.ReadStats, len(co.pools))
	for i, p := range co.pools {
		stats[i] = p.Stats()
	}
	return stats
}

// AddShardReplicas attaches read replicas to one shard's pool.
func (co *Coordinator) AddShardReplicas(shard int, cfg client.DialConfig, addrs ...string) error {
	if shard < 0 || shard >= len(co.pools) {
		return fmt.Errorf("shard: no shard %d in a %d-shard map", shard, len(co.pools))
	}
	co.pools[shard].AddReplicas(cfg, addrs...)
	return nil
}

// scatter runs fn once per shard, concurrently, and waits for all of
// them. When several shards fail the lowest shard's error wins, so the
// reported failure is deterministic regardless of goroutine timing.
func (co *Coordinator) scatter(fn func(shard int, pool *client.ReadPool) error) error {
	errs := make([]error, len(co.pools))
	var wg sync.WaitGroup
	for i := range co.pools {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i, co.pools[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// NumShards returns the partition map's shard count.
func (co *Coordinator) NumShards() int { return co.m.Count }

// MapVersion returns the partition map's version stamp.
func (co *Coordinator) MapVersion() uint64 { return co.m.Version }

// Split partitions tuples with the coordinator's map.
func (co *Coordinator) Split(tuples []ph.EncryptedTuple) [][]ph.EncryptedTuple {
	return co.m.Split(tuples)
}

// Store partitions the table and installs each part on its shard (every
// shard gets the table, even an empty part — queries scatter to all of
// them and each needs the schema/meta to answer).
func (co *Coordinator) Store(name string, t *ph.EncryptedTable) error {
	parts := co.m.Split(t.Tuples)
	return co.scatter(func(i int, pool *client.ReadPool) error {
		part := &ph.EncryptedTable{SchemeID: t.SchemeID, Meta: t.Meta, Tuples: parts[i]}
		return pool.DoPrimary(func(c *client.Conn) error {
			return c.Store(name, part)
		})
	})
}

// Insert partitions the tuples and appends each non-empty part through
// its shard's stamped write path, returning one placement ack per shard
// (zero-valued for untouched shards).
func (co *Coordinator) Insert(name string, tuples []ph.EncryptedTuple) ([]client.InsertAck, error) {
	parts := co.m.Split(tuples)
	acks := make([]client.InsertAck, co.m.Count)
	err := co.scatter(func(i int, pool *client.ReadPool) error {
		if len(parts[i]) == 0 {
			return nil
		}
		return pool.DoPrimary(func(c *client.Conn) error {
			ack, err := c.InsertStamped(name, parts[i])
			if err != nil {
				return err
			}
			acks[i] = ack
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return acks, nil
}

// Query scatters one query to every shard.
func (co *Coordinator) Query(name string, q *ph.EncryptedQuery) ([]*ph.Result, error) {
	out := make([]*ph.Result, co.m.Count)
	err := co.scatter(func(i int, pool *client.ReadPool) error {
		return pool.Do(func(c *client.Conn) error {
			res, err := c.Query(name, q)
			if err != nil {
				return err
			}
			out[i] = res
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// QueryBatch scatters a query batch; answers are [shard][query].
func (co *Coordinator) QueryBatch(name string, qs []*ph.EncryptedQuery) ([][]*ph.Result, error) {
	out := make([][]*ph.Result, co.m.Count)
	err := co.scatter(func(i int, pool *client.ReadPool) error {
		return pool.Do(func(c *client.Conn) error {
			rs, err := c.QueryBatch(name, qs)
			if err != nil {
				return err
			}
			out[i] = rs
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// QueryVerified scatters one verified query. The check callback runs
// *inside* each shard's read routing: a sub-answer that fails
// verification is treated exactly like a transport failure — the
// answering follower is quarantined and the shard's read retried on
// another node — so one Byzantine follower degrades one shard's
// capacity, not the cluster's correctness.
func (co *Coordinator) QueryVerified(name string, q *ph.EncryptedQuery, check client.VerifyCheck) ([]*authindex.VerifiedResult, error) {
	out := make([]*authindex.VerifiedResult, co.m.Count)
	err := co.scatter(func(i int, pool *client.ReadPool) error {
		return pool.Do(func(c *client.Conn) error {
			vr, err := c.QueryVerified(name, q)
			if err != nil {
				return err
			}
			if check != nil {
				if err := check(i, vr); err != nil {
					return err
				}
			}
			out[i] = vr
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// QueryConj scatters one conjunction to every shard's planner; each
// shard plans against its own sketch. The check callback runs inside
// the routing like QueryVerified's.
func (co *Coordinator) QueryConj(name string, qs []*ph.EncryptedQuery, verified bool, check client.VerifyCheck) ([]*query.Response, error) {
	out := make([]*query.Response, co.m.Count)
	err := co.scatter(func(i int, pool *client.ReadPool) error {
		return pool.Do(func(c *client.Conn) error {
			resp, err := c.QueryConj(name, qs, verified)
			if err != nil {
				return err
			}
			if verified {
				if resp.Verified == nil {
					return fmt.Errorf("shard: verified conjunction answered without proofs")
				}
				if check != nil {
					if err := check(i, resp.Verified); err != nil {
						return err
					}
				}
			}
			out[i] = resp
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ExplainConj plans the conjunction on every shard and merges the
// per-shard summaries (see query.MergePlans).
func (co *Coordinator) ExplainConj(name string, qs []*ph.EncryptedQuery) (*query.PlanInfo, error) {
	plans := make([]*query.PlanInfo, co.m.Count)
	err := co.scatter(func(i int, pool *client.ReadPool) error {
		return pool.Do(func(c *client.Conn) error {
			pi, err := c.ExplainConj(name, qs)
			if err != nil {
				return err
			}
			plans[i] = pi
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return query.MergePlans(plans), nil
}

// Fetch downloads every shard's partition, in shard order.
func (co *Coordinator) Fetch(name string) ([]*ph.EncryptedTable, error) {
	out := make([]*ph.EncryptedTable, co.m.Count)
	err := co.scatter(func(i int, pool *client.ReadPool) error {
		return pool.Do(func(c *client.Conn) error {
			t, err := c.FetchAll(name)
			if err != nil {
				return err
			}
			out[i] = t
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Drop removes the table from every shard.
func (co *Coordinator) Drop(name string) error {
	return co.scatter(func(i int, pool *client.ReadPool) error {
		return pool.DoPrimary(func(c *client.Conn) error {
			return c.Drop(name)
		})
	})
}

// List scatters the directory listing and merges it by table name,
// summing per-shard tuple counts (every shard holds every table, so the
// names and schemes agree; the counts are the partition sizes).
func (co *Coordinator) List() ([]wire.TableInfo, error) {
	perShard := make([][]wire.TableInfo, co.m.Count)
	err := co.scatter(func(i int, pool *client.ReadPool) error {
		return pool.Do(func(c *client.Conn) error {
			infos, err := c.List()
			if err != nil {
				return err
			}
			perShard[i] = infos
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	merged := map[string]wire.TableInfo{}
	for _, infos := range perShard {
		for _, info := range infos {
			m, ok := merged[info.Name]
			if !ok {
				merged[info.Name] = info
				continue
			}
			m.Tuples += info.Tuples
			merged[info.Name] = m
		}
	}
	names := make([]string, 0, len(merged))
	for n := range merged {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]wire.TableInfo, len(names))
	for i, n := range names {
		out[i] = merged[n]
	}
	return out, nil
}
