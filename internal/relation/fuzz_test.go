package relation

import (
	"strings"
	"testing"
)

// FuzzDecodeTuple checks the binary tuple decoder on arbitrary input.
func FuzzDecodeTuple(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeTuple(Tuple{String("hello"), Int(-42)}))
	f.Add([]byte{0x00, 0x01, byte(TypeString), 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		tp, err := DecodeTuple(data)
		if err != nil {
			return
		}
		back, err := DecodeTuple(EncodeTuple(tp))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !back.Equal(tp) {
			t.Fatal("re-encoded tuple differs")
		}
	})
}

// FuzzReadCSV checks the CSV importer never panics and that accepted tables
// survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("a:string:3,b:int:4\nxy,42\n")
	f.Add("a:string\n\"quoted, field\"\n")
	f.Add("")
	f.Add("a:int:1\n9\n")
	f.Fuzz(func(t *testing.T, input string) {
		tab, err := ReadCSV(strings.NewReader(input), "t")
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteCSV(&sb, tab); err != nil {
			t.Fatalf("writing accepted table failed: %v", err)
		}
		back, err := ReadCSV(strings.NewReader(sb.String()), "t")
		if err != nil {
			t.Fatalf("re-reading own output failed: %v", err)
		}
		if !back.Equal(tab) {
			t.Fatal("csv round trip changed the table")
		}
	})
}
