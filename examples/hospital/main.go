// Hospital: the paper's §2 story, executed. Alex outsources a patient
// database encrypted with the (q = 0)-secure construction. The example then
// shows both attacks the paper uses to motivate its impossibility result:
//
//  1. Passive: Eve watches four queries, identifies them by result size,
//     and reconstructs hospital 1's fatality ratio by intersection.
//  2. Active: Eve uses the query-encryption oracle to find out where
//     patient John was treated and what happened to him.
//
// The lesson (the paper's): as soon as queries flow (q > 0), *no* database
// privacy homomorphism protects the data — the construction is only safe
// while Alex withholds queries.
package main

import (
	"fmt"
	"log"

	"repro/internal/attacks"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/workload"
)

func main() {
	factory := bench.MustFactory(core.SchemeID)

	fmt.Println("=== setting ===")
	fmt.Println("patients table (id, name, hospital, outcome); flows 0.2/0.3/0.5; fatal ratio 0.08")
	fmt.Println("encrypted with the paper's SWP-based construction (indistinguishable at q = 0)")
	fmt.Println()

	// --- Passive attack -------------------------------------------------
	fmt.Println("=== passive attack (q = 4 observed queries) ===")
	rep, err := attacks.HospitalInference(factory, 1000, 20, 2026)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query identification from result sizes alone: %.0f%% of trials\n", 100*rep.QueryIDRate)
	fmt.Printf("hospital 1 fatality ratio: true %.3f, Eve's estimate %.3f (mean abs error %.3f)\n",
		rep.MeanTrueRate, rep.MeanEstRate, rep.MeanAbsError)
	fmt.Printf("for comparison, guessing the public marginal 0.08 errs by %.3f\n", rep.BlindError)
	fmt.Println()

	// --- Active attack --------------------------------------------------
	fmt.Println("=== active attack (query-encryption oracle) ===")
	jrep, err := attacks.JohnAttack(factory, 1000, 20, 2027)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with %d oracle calls Eve recovers John's hospital in %.0f%%\n",
		jrep.OracleCalls, 100*jrep.HospitalRate)
	fmt.Printf("and John's outcome in %.0f%% of trials\n", 100*jrep.OutcomeRate)
	fmt.Println()

	// --- One concrete run, narrated -------------------------------------
	fmt.Println("=== one concrete active run ===")
	table, err := workload.Hospital(workload.HospitalConfig{Patients: 500, EnsureName: "John"}, 7)
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := factory(table.Schema())
	if err != nil {
		log.Fatal(err)
	}
	ct, err := scheme.EncryptTable(table)
	if err != nil {
		log.Fatal(err)
	}
	oracle := func(q relation.Eq) []int {
		eq, err := scheme.EncryptQuery(q)
		if err != nil {
			log.Fatal(err)
		}
		res, err := ph.Apply(ct, eq)
		if err != nil {
			log.Fatal(err)
		}
		return res.Positions
	}
	john := oracle(relation.Eq{Column: "name", Value: relation.String("John")})
	fmt.Printf("σ_name:John matches ciphertext positions %v\n", john)
	for h := int64(1); h <= 3; h++ {
		inH := oracle(relation.Eq{Column: "hospital", Value: relation.Int(h)})
		if contains(inH, john) {
			fmt.Printf("σ_hospital:%d intersects ⇒ John was treated in hospital %d\n", h, h)
		}
	}
	fatal := oracle(relation.Eq{Column: "outcome", Value: relation.String(workload.OutcomeFatal)})
	if contains(fatal, john) {
		fmt.Println("σ_outcome:fatal intersects ⇒ John's outcome was fatal")
	} else {
		fmt.Println("σ_outcome:fatal does not intersect ⇒ John left healthy")
	}
	fmt.Println()
	fmt.Println("conclusion: cancel the contract *before* Eve turns adversarial (q = 0), as §2 argues")
}

// contains reports whether any element of needles appears in haystack.
func contains(haystack, needles []int) bool {
	set := map[int]bool{}
	for _, h := range haystack {
		set[h] = true
	}
	for _, n := range needles {
		if set[n] {
			return true
		}
	}
	return false
}
