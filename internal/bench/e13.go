package bench

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/swp"
	"repro/internal/workload"
)

// RunE13 regenerates experiment E13 (extension): the search-engine
// before/after report. The paper's exact-select resolves to the server
// testing one SWP trapdoor against every cipherword of every tuple; this
// experiment measures that hot path at both layers — the per-cipherword
// match test (seed shape: fresh PRF state and scratch slices per call,
// versus the engine's reused swp.Matcher) and the whole-table evaluation
// (single-threaded versus the GOMAXPROCS worker pool) — reporting ns/op,
// B/op and allocs/op for each. The engine rows must show 0 allocs/op for
// the match test; the note rows record the measured speedups.
func RunE13(tuples int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E13",
		Title:  fmt.Sprintf("search engine: match/evaluate cost before vs after (table: %d tuples, GOMAXPROCS=%d)", tuples, runtime.GOMAXPROCS(0)),
		Header: []string{"path", "unit", "ns/op", "B/op", "allocs/op"},
		Notes: []string{
			"'seed' rows reproduce the pre-engine implementation shape: per-call PRF construction and scratch allocation, single-threaded scan",
			"'engine' rows are the swp.Matcher / parallel core.Evaluate hot path; the match engine row must report 0 allocs/op",
		},
	}

	// Layer 1: the per-cipherword match test over one long document.
	params := swp.Params{WordLen: 16, ChecksumLen: 2}
	key, err := crypto.RandomKey()
	if err != nil {
		return nil, err
	}
	scheme, err := swp.New(key, params)
	if err != nil {
		return nil, err
	}
	words := make([][]byte, 512)
	for i := range words {
		w := make([]byte, params.WordLen)
		for j := range w {
			w[j] = byte((i*31 + j*7) % 251)
		}
		words[i] = w
	}
	cws, err := scheme.EncryptDocument([]byte("e13"), words)
	if err != nil {
		return nil, err
	}
	td, err := scheme.NewTrapdoor(words[0])
	if err != nil {
		return nil, err
	}

	seedMatch := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			swp.Match(params, cws[i%len(cws)], td) // fresh matcher state per call
		}
	})
	addBenchRow(t, "swp match: seed", "per cipherword", seedMatch)

	matcher := swp.NewMatcher(params, td)
	engineMatch := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matcher.Match(cws[i%len(cws)])
		}
	})
	addBenchRow(t, "swp match: engine", "per cipherword", engineMatch)

	// Layer 2: whole-table evaluation, serial versus parallel, same query.
	table, err := workload.Employees(tuples, seed)
	if err != nil {
		return nil, err
	}
	phScheme, err := core.New(key, table.Schema(), core.Options{})
	if err != nil {
		return nil, err
	}
	ct, err := phScheme.EncryptTable(table)
	if err != nil {
		return nil, err
	}
	eq, err := phScheme.EncryptQuery(relation.Eq{Column: "name", Value: table.Tuple(tuples / 2)[0]})
	if err != nil {
		return nil, err
	}
	// Allocation profiles come from short testing.Benchmark runs; the
	// timing comparison interleaves serial and parallel evaluations in one
	// loop so machine noise hits both sides equally.
	serialAllocs := testing.Benchmark(func(b *testing.B) { benchEval(b, core.EvaluateSerial, ct, eq) })
	parallelAllocs := testing.Benchmark(func(b *testing.B) { benchEval(b, core.Evaluate, ct, eq) })
	var serNs, parNs time.Duration
	const reps = 16
	for rep := 0; rep < reps; rep++ {
		t0 := time.Now()
		if _, err := core.EvaluateSerial(ct, eq); err != nil {
			return nil, err
		}
		serNs += time.Since(t0)
		t1 := time.Now()
		if _, err := core.Evaluate(ct, eq); err != nil {
			return nil, err
		}
		parNs += time.Since(t1)
	}
	t.AddRow("core evaluate: serial engine", "per query",
		fmt.Sprintf("%d", serNs.Nanoseconds()/reps),
		fmt.Sprintf("%d", serialAllocs.AllocedBytesPerOp()),
		fmt.Sprintf("%d", serialAllocs.AllocsPerOp()))
	t.AddRow("core evaluate: parallel engine", "per query",
		fmt.Sprintf("%d", parNs.Nanoseconds()/reps),
		fmt.Sprintf("%d", parallelAllocs.AllocedBytesPerOp()),
		fmt.Sprintf("%d", parallelAllocs.AllocsPerOp()))
	if parNs > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("parallel evaluate speedup over serial engine: %.2fx at GOMAXPROCS=%d (interleaved timing, %d reps)",
			float64(serNs)/float64(parNs), runtime.GOMAXPROCS(0), reps))
	}
	if engineMatch.NsPerOp() > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("engine match test is %.2fx the seed path's throughput with %d fewer allocs/op",
			float64(seedMatch.NsPerOp())/float64(engineMatch.NsPerOp()), seedMatch.AllocsPerOp()-engineMatch.AllocsPerOp()))
	}
	// The seed evaluator was the seed match test applied single-threaded to
	// every cipherword; its whole-table cost is estimated from the measured
	// per-word seed cost times the table's word count (the direct
	// measurement lives in core's BenchmarkEvaluateSeedBaseline).
	totalWords := 0
	for _, tp := range ct.Tuples {
		totalWords += len(tp.Words)
	}
	if parNs > 0 {
		seedScan := seedMatch.NsPerOp() * int64(totalWords)
		t.Notes = append(t.Notes, fmt.Sprintf("seed-path whole-table scan estimate: %d ns/query (%d words); parallel engine speedup over seed: %.1fx",
			seedScan, totalWords, float64(seedScan)/float64(parNs.Nanoseconds()/reps)))
	}
	return t, nil
}

// benchEval times one evaluator for the allocation profile.
func benchEval(b *testing.B, eval func(*ph.EncryptedTable, *ph.EncryptedQuery) (*ph.Result, error), ct *ph.EncryptedTable, eq *ph.EncryptedQuery) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eval(ct, eq); err != nil {
			b.Fatal(err)
		}
	}
}

// addBenchRow formats one testing.Benchmark result as a table row.
func addBenchRow(t *Table, path, unit string, r testing.BenchmarkResult) {
	t.AddRow(path, unit,
		fmt.Sprintf("%d", r.NsPerOp()),
		fmt.Sprintf("%d", r.AllocedBytesPerOp()),
		fmt.Sprintf("%d", r.AllocsPerOp()))
}
