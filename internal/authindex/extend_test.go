package authindex

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/ph"
	"repro/internal/wire"
)

// leavesOf hashes a table's tuples.
func leavesOf(t *ph.EncryptedTable) [][]byte {
	out := make([][]byte, len(t.Tuples))
	for i, tp := range t.Tuples {
		out[i] = LeafHash(tp)
	}
	return out
}

// TestExtendMatchesBuild: extending an n-leaf tree by k leaves must yield
// a tree identical (root, proofs) to building from all n+k leaves, across
// the promoted-node boundary cases.
func TestExtendMatchesBuild(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33} {
		for _, k := range []int{1, 2, 3, 5, 8, 16, 17} {
			full := tableOf(n + k)
			ext := Build(&ph.EncryptedTable{Tuples: full.Tuples[:n]})
			ext.Extend(leavesOf(&ph.EncryptedTable{Tuples: full.Tuples[n:]}))
			want := Build(full)
			if !bytes.Equal(ext.Root(), want.Root()) {
				t.Fatalf("n=%d k=%d: extended root differs from rebuilt root", n, k)
			}
			if ext.LeafCount() != want.LeafCount() {
				t.Fatalf("n=%d k=%d: leaf count %d, want %d", n, k, ext.LeafCount(), want.LeafCount())
			}
			// Every position must prove and verify identically.
			positions := make([]int, n+k)
			for i := range positions {
				positions[i] = i
			}
			proofs, err := ext.Prove(positions)
			if err != nil {
				t.Fatalf("n=%d k=%d: Prove on extended tree: %v", n, k, err)
			}
			for i, p := range proofs {
				if err := Verify(want.Root(), n+k, full.Tuples[i], p); err != nil {
					t.Fatalf("n=%d k=%d pos=%d: extended-tree proof rejected by rebuilt root: %v", n, k, i, err)
				}
			}
		}
	}
}

// TestExtendRepeated grows a tree one irregular increment at a time and
// checks the root against a rebuild after every step.
func TestExtendRepeated(t *testing.T) {
	full := tableOf(64)
	tree := Build(&ph.EncryptedTable{})
	n := 0
	for _, k := range []int{1, 1, 2, 1, 3, 5, 1, 8, 13, 1, 7, 21} {
		tree.Extend(leavesOf(&ph.EncryptedTable{Tuples: full.Tuples[n : n+k]}))
		n += k
		want := Build(&ph.EncryptedTable{Tuples: full.Tuples[:n]})
		if !bytes.Equal(tree.Root(), want.Root()) {
			t.Fatalf("after growing to %d leaves: root differs from rebuild", n)
		}
	}
}

// TestExtendDoesNotInvalidateEarlierProofs: hashes handed out by Prove
// before an Extend must stay intact (storage hands proofs to the wire
// after releasing the table lock; a concurrent append to another snapshot
// must not scribble over them).
func TestExtendDoesNotInvalidateEarlierProofs(t *testing.T) {
	tab := tableOf(9)
	tree := Build(tab)
	root := tree.Root()
	proofs, err := tree.Prove([]int{0, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	tree.Extend(leavesOf(&ph.EncryptedTable{Tuples: tableOf(12).Tuples[9:]}))
	for i, pos := range []int{0, 4, 8} {
		if err := Verify(root, 9, tab.Tuples[pos], proofs[i]); err != nil {
			t.Fatalf("proof %d corrupted by later Extend: %v", i, err)
		}
	}
}

// TestExtendEmptyNoOp: extending by zero leaves changes nothing.
func TestExtendEmptyNoOp(t *testing.T) {
	tree := Build(tableOf(5))
	root := tree.Root()
	tree.Extend(nil)
	if !bytes.Equal(tree.Root(), root) {
		t.Fatal("Extend(nil) changed the root")
	}
}

// TestFrontierMatchesBuild: the frontier root must equal the tree root at
// every prefix length, including the empty tree.
func TestFrontierMatchesBuild(t *testing.T) {
	tab := tableOf(40)
	f := NewFrontier()
	if !bytes.Equal(f.Root(), Build(&ph.EncryptedTable{}).Root()) {
		t.Fatal("empty frontier root differs from empty tree root")
	}
	for i, tp := range tab.Tuples {
		f.AppendTuple(tp)
		want := Build(&ph.EncryptedTable{Tuples: tab.Tuples[:i+1]})
		if !bytes.Equal(f.Root(), want.Root()) {
			t.Fatalf("frontier root differs from tree root at %d leaves", i+1)
		}
		if f.Count() != i+1 {
			t.Fatalf("frontier count %d, want %d", f.Count(), i+1)
		}
	}
}

// TestFrontierOf matches the incremental frontier.
func TestFrontierOf(t *testing.T) {
	tab := tableOf(13)
	if !bytes.Equal(FrontierOf(tab).Root(), Build(tab).Root()) {
		t.Fatal("FrontierOf root differs from Build root")
	}
}

// TestVerifiedResultCodecRoundTrip round-trips the one-round verified
// answer.
func TestVerifiedResultCodecRoundTrip(t *testing.T) {
	tab := tableOf(9)
	tree := Build(tab)
	positions := []int{1, 5, 8}
	proofs, err := tree.Prove(positions)
	if err != nil {
		t.Fatal(err)
	}
	in := &VerifiedResult{
		Result:  ph.SelectPositions(tab, positions),
		Root:    tree.Root(),
		Leaves:  9,
		Version: 42,
		Proofs:  proofs,
	}
	out, err := DecodeVerifiedResult(wire.NewBuffer(EncodeVerifiedResult(nil, in)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Root, in.Root) || out.Leaves != 9 || out.Version != 42 {
		t.Fatalf("snapshot metadata mangled: %+v", out)
	}
	if len(out.Proofs) != len(positions) || len(out.Result.Tuples) != len(positions) {
		t.Fatalf("shape mangled: %d proofs, %d tuples", len(out.Proofs), len(out.Result.Tuples))
	}
	for i, p := range out.Proofs {
		if err := Verify(out.Root, out.Leaves, out.Result.Tuples[i], p); err != nil {
			t.Fatalf("decoded proof %d rejected: %v", i, err)
		}
	}
}

// BenchmarkRootAppend is the acceptance gate for the incremental index:
// serving a fresh root after a small append via Extend vs the seed's
// rebuild-the-whole-tree-per-request shape, at 100k tuples.
func BenchmarkRootAppend(b *testing.B) {
	const n = 100_000
	tab := tableOf(n)
	batch := leavesOf(&ph.EncryptedTable{Tuples: tableOf(8).Tuples})
	b.Run(fmt.Sprintf("extend-%d", n), func(b *testing.B) {
		tree := Build(tab)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree.Extend(batch)
			_ = tree.Root()
		}
	})
	b.Run(fmt.Sprintf("rebuild-%d", n), func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree := Build(tab)
			_ = tree.Root()
		}
	})
}
