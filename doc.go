// Package repro reproduces "Provable Security for Outsourcing Database
// Operations" (Evdokimov, Fischmann, Günther — ICDE 2006) as a complete Go
// system: the database-privacy-homomorphism framework (internal/ph), the
// paper's SWP-based construction preserving exact selects (internal/core),
// the searchable-encryption substrate (internal/swp), the comparator
// schemes it attacks (internal/schemes/...), the security games and
// adversaries of its definitions and theorem (internal/games,
// internal/attacks), and a full client/server outsourcing stack
// (internal/client, internal/server).
//
// The server-side hot path — testing one SWP trapdoor against every
// cipherword of every tuple — runs on a zero-allocation, multi-core search
// engine: crypto.PRF carries a reusable HMAC state with SumInto /
// ChecksumInto variants, swp.Matcher precomputes per-trapdoor state so
// each match test costs 0 allocs/op, core.Evaluate shards table scans
// across a GOMAXPROCS worker pool (one Matcher clone per worker, hits
// merged in table order), and storage.Store locks per table so concurrent
// clients' queries never serialise on unrelated tables. See DESIGN.md
// ("Search engine & performance architecture") for the design and for how
// to read the allocs/op numbers experiment E13 reports.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results. The
// root-level benchmarks (bench_test.go) regenerate every evaluation
// artifact; cmd/experiments prints them as tables.
package repro
