//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in. The
// throughput experiments emulate per-node capacity with slept service
// floors, which presumes the real CPU per request is small next to the
// floor; the race detector multiplies that real CPU several-fold while
// the floors stay fixed, so on small CI boxes the detector — not the
// disclosed capacity model — becomes the bottleneck. Gates that compare
// throughput across node counts relax under race and keep their full
// strength in the regular test and experiment runs.
const raceEnabled = true
