// Package cache implements the server-side query result cache: a bounded
// LRU mapping (table, trapdoor digest) to the hit positions of a previous
// scan, together with the table version and prefix length that scan
// covered.
//
// Why caching is sound: the paper's trapdoors (and every other scheme's
// search tokens in this repository) are deterministic per plaintext word,
// and the server-side evaluator ψ is a deterministic, tuple-local scan.
// Repeating a hot query is therefore pure recomputation, and the server
// may memoise it without learning anything it was not already shown — the
// result positions ARE the access pattern the scheme reveals per query by
// construction (ph.Result carries them on the wire). The cache key is a
// SHA-256 digest of the opaque token, so the cache stores no more of the
// token than the server already holds, and colliding keys would require
// colliding digests.
//
// Delta scans: entries record how many tuples of the table they scanned
// (Scanned) and at which table version (Version). Tables mutate in two
// ways only — destructive replacement (storage.Put/Drop, which invalidates
// the table's entries) and append (which bumps the version but leaves the
// scanned prefix intact). After appends, a cached entry's positions are
// still exact for the first Scanned tuples, so the caller re-scans only
// tuples[Scanned:] and merges — O(tail) instead of O(n). The lineage
// check entry.Version >= base (the version at which the current table
// object was installed) rejects entries that survived a racing
// replacement: an in-flight query on a replaced snapshot may still store
// its result after the invalidation, but it stores it with a pre-
// replacement version, which the base check discards.
package cache

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"repro/internal/ph"
)

// DefaultMaxBytes is the default cache capacity: roughly the memory the
// cached position slices may hold. Small by design — entries are position
// lists, not tuples, so even the default holds millions of hit positions.
const DefaultMaxBytes = 8 << 20

// Outcome classifies a Lookup.
type Outcome int

const (
	// Miss: no usable entry; the caller must scan the whole table.
	Miss Outcome = iota
	// Delta: the entry covers a prefix; the caller scans only the tail
	// tuples[entry.Scanned:] and merges.
	Delta
	// Hit: the entry covers the whole table as it stands; the positions
	// are exact.
	Hit
)

// Entry is one cached scan result.
type Entry struct {
	// Positions are the matching tuple indices, ascending, within the
	// scanned prefix.
	Positions []int
	// Scanned is the number of leading tuples the positions cover.
	Scanned int
	// Version is the table version at which the prefix was scanned.
	Version uint64
}

// Stats are the cache's monotonic counters.
type Stats struct {
	// Hits counts lookups answered entirely from the cache.
	Hits uint64
	// Deltas counts lookups answered by a prefix entry plus a tail scan.
	Deltas uint64
	// Misses counts lookups that found no usable entry.
	Misses uint64
	// Evictions counts entries dropped to respect the size bound.
	Evictions uint64
	// Invalidations counts entries dropped by InvalidateTable.
	Invalidations uint64
}

// key identifies one cached result.
type key struct {
	table  string
	digest [sha256.Size]byte
}

// item is the LRU list payload.
type item struct {
	k     key
	entry Entry
}

// Cache is a bounded, concurrency-safe LRU result cache.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	size     int64
	ll       *list.List // front = most recently used
	items    map[string]map[[sha256.Size]byte]*list.Element
	stats    Stats
}

// New creates a cache bounded at maxBytes of cached positions;
// maxBytes <= 0 selects DefaultMaxBytes.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]map[[sha256.Size]byte]*list.Element),
	}
}

// digest derives the cache key digest from a query: the scheme ID (the
// evaluator namespace) and the opaque token, length-separated.
func digest(q *ph.EncryptedQuery) [sha256.Size]byte {
	h := sha256.New()
	var n [4]byte
	n[0], n[1], n[2], n[3] = byte(len(q.SchemeID)>>24), byte(len(q.SchemeID)>>16), byte(len(q.SchemeID)>>8), byte(len(q.SchemeID))
	h.Write(n[:])
	h.Write([]byte(q.SchemeID))
	h.Write(q.Token)
	var d [sha256.Size]byte
	h.Sum(d[:0])
	return d
}

// entryBytes approximates an entry's memory footprint for the size bound.
func entryBytes(k key, e Entry) int64 {
	return int64(len(e.Positions)*8 + len(k.table) + sha256.Size + 64)
}

// Lookup returns the cached entry for q against the named table, given
// the table's current lineage base, version and tuple count. The returned
// positions are a private copy the caller may append to. Outcome Hit
// means the positions are exact for the whole table; Delta means they are
// exact for the first entry.Scanned tuples and the caller must scan the
// tail; Miss means no usable entry survived the lineage check.
func (c *Cache) Lookup(table string, q *ph.EncryptedQuery, base uint64, tupleCount int) (Entry, Outcome) {
	d := digest(q)
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[table][d]
	if !ok {
		c.stats.Misses++
		return Entry{}, Miss
	}
	e := el.Value.(*item).entry
	// Lineage check: an entry stored against a replaced table object (or a
	// snapshot that somehow claims more tuples than exist) is unusable.
	if e.Version < base || e.Scanned > tupleCount {
		c.stats.Misses++
		return Entry{}, Miss
	}
	c.ll.MoveToFront(el)
	out := Entry{
		Positions: append(make([]int, 0, len(e.Positions)+8), e.Positions...),
		Scanned:   e.Scanned,
		Version:   e.Version,
	}
	if e.Scanned == tupleCount {
		c.stats.Hits++
		return out, Hit
	}
	c.stats.Deltas++
	return out, Delta
}

// Store caches an entry for q against the named table, copying the
// positions. If an entry with a newer version is already present (a
// concurrent query got there first), the newer entry wins and Store is a
// no-op. Entries larger than the whole cache are not stored.
func (c *Cache) Store(table string, q *ph.EncryptedQuery, e Entry) {
	k := key{table: table, digest: digest(q)}
	e.Positions = append([]int(nil), e.Positions...)
	sz := entryBytes(k, e)
	if sz > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[table][k.digest]; ok {
		old := el.Value.(*item)
		if old.entry.Version > e.Version {
			return // a fresher result is already cached
		}
		c.size += sz - entryBytes(old.k, old.entry)
		old.entry = e
		c.ll.MoveToFront(el)
	} else {
		byDigest := c.items[table]
		if byDigest == nil {
			byDigest = make(map[[sha256.Size]byte]*list.Element)
			c.items[table] = byDigest
		}
		byDigest[k.digest] = c.ll.PushFront(&item{k: k, entry: e})
		c.size += sz
	}
	for c.size > c.maxBytes {
		c.evictOldest()
	}
}

// evictOldest drops the least recently used entry. Callers hold c.mu.
func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.removeLocked(el)
	c.stats.Evictions++
}

// removeLocked unlinks one element from the list, the index and the size
// accounting. Callers hold c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	it := el.Value.(*item)
	c.ll.Remove(el)
	byDigest := c.items[it.k.table]
	delete(byDigest, it.k.digest)
	if len(byDigest) == 0 {
		delete(c.items, it.k.table)
	}
	c.size -= entryBytes(it.k, it.entry)
}

// InvalidateTable drops every entry cached for the named table. Called on
// destructive mutations (replace, drop); compaction deliberately does
// not invalidate — it rewrites the durable log, not the tuples, so
// cached positions stay exact.
func (c *Cache) InvalidateTable(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, el := range c.items[table] {
		c.removeLocked(el)
		c.stats.Invalidations++
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// SizeBytes returns the approximate bytes held by cached entries.
func (c *Cache) SizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
