package shard

import (
	"log"
	"net"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/server"
)

// startProxy serves a coordinator behind server.NewProxy over a pipe —
// an in-memory `phserver -coordinator` — and returns a connection to it.
func startProxy(t *testing.T, co *Coordinator) *client.Conn {
	t.Helper()
	srv := server.NewProxy(co, log.New(shardTestWriter{t}, "", 0), server.Options{})
	cliSide, srvSide := net.Pipe()
	go srv.ServeConn(srvSide)
	conn := client.NewConn(cliSide)
	t.Cleanup(func() { conn.Close() })
	return conn
}

// TestRemoteEndToEnd drives the full remote stack — sharded DB over a
// Remote cluster over the wire to a proxied coordinator — through
// create, verified reads, conjunctions, inserts with per-shard acks,
// and the Byzantine rejection, so the shard framing is exercised
// end-to-end rather than in-process.
func TestRemoteEndToEnd(t *testing.T) {
	co, stores := newCluster(t, 4)
	conn := startProxy(t, co)
	remote, err := NewRemote(conn, Map{Version: 1, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	scheme := shardScheme(t)
	db := client.NewShardedDB(remote, scheme, "emp")
	if err := db.CreateTable(shardTable()); err != nil {
		t.Fatal(err)
	}

	// Verified point read and conjunction over the wire.
	got, err := db.Select(relation.Eq{Column: "dept", Value: relation.String("HR")})
	if err != nil {
		t.Fatalf("remote verified select: %v", err)
	}
	if got.Len() != 8 {
		t.Fatalf("remote select returned %d rows, want 8", got.Len())
	}
	got, err = db.Query("SELECT * FROM emp WHERE dept = 'IT' AND salary = 5100")
	if err != nil {
		t.Fatalf("remote verified conjunction: %v", err)
	}
	if got.Len() != 1 {
		t.Fatalf("remote conjunction returned %d rows, want 1", got.Len())
	}

	// Insert travels as CmdShardInsert; per-shard acks advance the
	// pinned vector, so the next verified read still passes.
	if err := db.Insert(relation.Tuple{relation.String("remote1"), relation.String("HR"), relation.Int(1)}); err != nil {
		t.Fatalf("remote insert: %v", err)
	}
	got, err = db.Select(relation.Eq{Column: "name", Value: relation.String("remote1")})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("inserted row not found over remote: %d rows", got.Len())
	}

	// SelectAll fetches per-shard partitions through the shard framing.
	all, err := db.SelectAll()
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 25 {
		t.Fatalf("remote select-all returned %d rows, want 25", all.Len())
	}

	// Byzantine shard: one flipped ciphertext byte fails the read
	// across the whole remote stack.
	for _, st := range stores {
		ct, err := st.Get("emp")
		if err != nil {
			t.Fatal(err)
		}
		if len(ct.Tuples) == 0 {
			continue
		}
		mutated := ct.Clone()
		mutated.Tuples[0].ID[0] ^= 0xFF
		if err := st.Put("emp", mutated); err != nil {
			t.Fatal(err)
		}
		break
	}
	if _, err := db.Select(relation.Eq{Column: "dept", Value: relation.String("HR")}); err == nil {
		t.Fatal("remote verified scatter accepted a mutated shard")
	}
}

// TestRemoteMapVersionMismatch: a client on a stale partition map fails
// loudly instead of merging mis-routed answers.
func TestRemoteMapVersionMismatch(t *testing.T) {
	co, _ := newCluster(t, 2)
	conn := startProxy(t, co)
	remote, err := NewRemote(conn, Map{Version: 99, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	scheme := shardScheme(t)
	db := client.NewShardedDB(remote, scheme, "emp")
	// The upload itself travels the legacy store path (no version echo);
	// the first shard-framed read detects the stale map.
	if err := db.CreateTable(shardTable()); err != nil {
		t.Fatal(err)
	}
	_, err = db.Select(relation.Eq{Column: "dept", Value: relation.String("HR")})
	if err == nil {
		t.Fatal("stale partition map accepted")
	}
	if !strings.Contains(err.Error(), "partition map") {
		t.Fatalf("mismatch error does not mention the map: %v", err)
	}
}

// TestProxyLegacyClient: an unverified legacy client talks to the
// coordinator proxy with the single-server command set and gets merged
// answers; the verified legacy commands are refused with errors naming
// the shard-aware path instead of unverifiable merged proofs.
func TestProxyLegacyClient(t *testing.T) {
	co, _ := newCluster(t, 3)
	conn := startProxy(t, co)
	scheme := shardScheme(t)
	db := client.NewDB(conn, scheme, "emp")
	if err := db.CreateTable(shardTable()); err != nil {
		t.Fatal(err)
	}
	// CreateTable pinned a single root the coordinator can never serve
	// proofs for; a legacy client must run unverified.
	db.PinRoot(nil, 0)

	got, err := db.Select(relation.Eq{Column: "dept", Value: relation.String("HR")})
	if err != nil {
		t.Fatalf("legacy select through proxy: %v", err)
	}
	if got.Len() != 8 {
		t.Fatalf("legacy select returned %d rows, want 8", got.Len())
	}
	got, err = db.Query("SELECT * FROM emp WHERE dept = 'IT' AND salary = 5100")
	if err != nil {
		t.Fatalf("legacy conjunction through proxy: %v", err)
	}
	if got.Len() != 1 {
		t.Fatalf("legacy conjunction returned %d rows, want 1", got.Len())
	}
	all, err := db.SelectAll()
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 24 {
		t.Fatalf("legacy select-all returned %d rows, want 24", all.Len())
	}
	infos, err := conn.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "emp" || infos[0].Tuples != 24 {
		t.Fatalf("merged directory wrong: %+v", infos)
	}

	// Verified legacy commands are refused, not faked.
	if _, _, _, err := conn.Root("emp"); err == nil || !strings.Contains(err.Error(), "CmdShardQuery") {
		t.Fatalf("legacy root fetch not refused with guidance: %v", err)
	}
	if _, err := conn.QueryVerified("emp", mustEncrypt(t, scheme, "dept", "HR")); err == nil {
		t.Fatal("legacy verified query not refused")
	}
}

func mustEncrypt(t *testing.T, s ph.Scheme, col, val string) *ph.EncryptedQuery {
	t.Helper()
	q, err := s.EncryptQuery(relation.Eq{Column: col, Value: relation.String(val)})
	if err != nil {
		t.Fatal(err)
	}
	return q
}
