package ph

import (
	"fmt"
	"testing"
)

func TestRegistryDispatch(t *testing.T) {
	RegisterEvaluator("test-dispatch", func(et *EncryptedTable, q *EncryptedQuery) (*Result, error) {
		return SelectPositions(et, []int{0}), nil
	})
	et := &EncryptedTable{
		SchemeID: "test-dispatch",
		Tuples:   []EncryptedTuple{{ID: []byte("a")}, {ID: []byte("b")}},
	}
	res, err := Apply(et, &EncryptedQuery{SchemeID: "test-dispatch"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != 1 || res.Positions[0] != 0 {
		t.Fatalf("dispatch returned %v", res.Positions)
	}
	if string(res.Tuples[0].ID) != "a" {
		t.Fatalf("wrong tuple selected: %q", res.Tuples[0].ID)
	}
}

func TestApplySchemeMismatch(t *testing.T) {
	et := &EncryptedTable{SchemeID: "scheme-a"}
	if _, err := Apply(et, &EncryptedQuery{SchemeID: "scheme-b"}); err == nil {
		t.Fatal("cross-scheme apply accepted")
	}
}

func TestApplyUnknownScheme(t *testing.T) {
	et := &EncryptedTable{SchemeID: "never-registered"}
	if _, err := Apply(et, &EncryptedQuery{SchemeID: "never-registered"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	RegisterEvaluator("test-dup", func(*EncryptedTable, *EncryptedQuery) (*Result, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterEvaluator("test-dup", func(*EncryptedTable, *EncryptedQuery) (*Result, error) { return nil, nil })
}

func TestRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil evaluator registration did not panic")
		}
	}()
	RegisterEvaluator("test-nil", nil)
}

func TestEvaluatorsSorted(t *testing.T) {
	RegisterEvaluator("test-zz", func(*EncryptedTable, *EncryptedQuery) (*Result, error) { return nil, nil })
	RegisterEvaluator("test-aa", func(*EncryptedTable, *EncryptedQuery) (*Result, error) { return nil, nil })
	ids := Evaluators()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] > ids[i] {
			t.Fatalf("Evaluators not sorted: %v", ids)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	et := &EncryptedTable{
		SchemeID: "x",
		Meta:     []byte{1, 2},
		Tuples: []EncryptedTuple{{
			ID:    []byte{3},
			Blob:  []byte{4},
			Words: [][]byte{{5, 6}},
		}},
	}
	cl := et.Clone()
	cl.Meta[0] = 9
	cl.Tuples[0].ID[0] = 9
	cl.Tuples[0].Words[0][0] = 9
	if et.Meta[0] != 1 || et.Tuples[0].ID[0] != 3 || et.Tuples[0].Words[0][0] != 5 {
		t.Fatal("Clone shares backing arrays with the original")
	}
}

func TestSelectPositionsCopies(t *testing.T) {
	et := &EncryptedTable{
		SchemeID: "x",
		Tuples:   []EncryptedTuple{{ID: []byte{1}}, {ID: []byte{2}}, {ID: []byte{3}}},
	}
	res := SelectPositions(et, []int{1, 2})
	res.Tuples[0].ID[0] = 99
	if et.Tuples[1].ID[0] != 2 {
		t.Fatal("SelectPositions shares tuple memory with the table")
	}
	if fmt.Sprint(res.Positions) != "[1 2]" {
		t.Fatalf("positions: %v", res.Positions)
	}
}
