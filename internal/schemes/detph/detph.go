// Package detph implements the deterministic-index comparator: each
// attribute value is labelled with a full-width PRF of the value, so labels
// are injective with overwhelming probability and the server sees the exact
// equality pattern of every column. It is the information-theoretic
// worst case of the indexed family — no false positives, maximal leakage —
// and serves as the lower bound in the E1/E6 experiments.
package detph

import (
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/schemes/indexed"
)

// SchemeID is the evaluator-registry name of the deterministic-index scheme.
const SchemeID = "detph"

// labelLen is the label width; 16 bytes make collisions negligible, so the
// label is effectively a deterministic encryption of the value.
const labelLen = 16

// labeler implements indexed.Labeler with injective deterministic labels.
type labeler struct {
	prf *crypto.PRF
}

// New constructs a deterministic-index instance over the schema.
func New(master crypto.Key, schema *relation.Schema) (*indexed.Scheme, error) {
	l := &labeler{prf: crypto.NewPRF(crypto.NewPRF(master).DeriveKey("detph/labels", nil))}
	return indexed.New(SchemeID, master, schema, l)
}

// Label implements indexed.Labeler: label = PRF(col, value).
func (l *labeler) Label(colIdx int, col relation.Column, v relation.Value) ([]byte, error) {
	return l.prf.SumStrings(labelLen, []byte(col.Name), []byte(v.Encode())), nil
}

func init() {
	ph.RegisterEvaluator(SchemeID, indexed.Evaluate)
}
