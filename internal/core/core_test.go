package core

import (
	"testing"

	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
)

// newTestPH builds a PH over the paper's employee schema with a fresh key.
func newTestPH(t *testing.T, opts Options) *PH {
	t.Helper()
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatalf("RandomKey: %v", err)
	}
	p, err := New(key, empSchema(), opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func empSchema() *relation.Schema {
	return relation.MustSchema("emp",
		relation.Column{Name: "name", Type: relation.TypeString, Width: 10},
		relation.Column{Name: "dept", Type: relation.TypeString, Width: 5},
		relation.Column{Name: "salary", Type: relation.TypeInt, Width: 5},
	)
}

func empTable(t *testing.T) *relation.Table {
	t.Helper()
	tab := relation.NewTable(empSchema())
	tab.MustInsert(relation.String("Montgomery"), relation.String("HR"), relation.Int(7500))
	tab.MustInsert(relation.String("Ada"), relation.String("IT"), relation.Int(9100))
	tab.MustInsert(relation.String("Grace"), relation.String("HR"), relation.Int(8800))
	tab.MustInsert(relation.String("Alan"), relation.String("R&D"), relation.Int(7500))
	return tab
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	p := newTestPH(t, Options{})
	tab := empTable(t)
	ct, err := p.EncryptTable(tab)
	if err != nil {
		t.Fatalf("EncryptTable: %v", err)
	}
	if len(ct.Tuples) != tab.Len() {
		t.Fatalf("ciphertext has %d tuples, want %d", len(ct.Tuples), tab.Len())
	}
	pt, err := p.DecryptTable(ct)
	if err != nil {
		t.Fatalf("DecryptTable: %v", err)
	}
	if !pt.Equal(tab) {
		t.Fatalf("decrypted table differs from original:\n%v\nvs\n%v", pt, tab)
	}
}

func TestHomomorphicExactSelect(t *testing.T) {
	p := newTestPH(t, Options{})
	tab := empTable(t)
	ct, err := p.EncryptTable(tab)
	if err != nil {
		t.Fatalf("EncryptTable: %v", err)
	}
	for _, q := range []relation.Eq{
		{Column: "name", Value: relation.String("Montgomery")},
		{Column: "dept", Value: relation.String("HR")},
		{Column: "salary", Value: relation.Int(7500)},
		{Column: "dept", Value: relation.String("NONE!")},
	} {
		want, err := relation.Select(tab, q)
		if err != nil {
			t.Fatalf("plaintext select %s: %v", q, err)
		}
		eq, err := p.EncryptQuery(q)
		if err != nil {
			t.Fatalf("EncryptQuery %s: %v", q, err)
		}
		res, err := ph.Apply(ct, eq)
		if err != nil {
			t.Fatalf("Apply %s: %v", q, err)
		}
		got, err := p.DecryptResult(q, res)
		if err != nil {
			t.Fatalf("DecryptResult %s: %v", q, err)
		}
		if !got.Equal(want) {
			t.Errorf("query %s: got\n%v\nwant\n%v", q, got, want)
		}
	}
}

func TestCipherwordsAreDistinct(t *testing.T) {
	p := newTestPH(t, Options{})
	tab := relation.NewTable(empSchema())
	// Identical tuples must still produce distinct cipherwords.
	for i := 0; i < 8; i++ {
		tab.MustInsert(relation.String("Montgomery"), relation.String("HR"), relation.Int(7500))
	}
	ct, err := p.EncryptTable(tab)
	if err != nil {
		t.Fatalf("EncryptTable: %v", err)
	}
	seen := make(map[string]bool)
	for _, etp := range ct.Tuples {
		for _, w := range etp.Words {
			if seen[string(w)] {
				t.Fatalf("repeated cipherword across identical tuples: %x", w)
			}
			seen[string(w)] = true
		}
	}
}

func TestPaddingSymbolRejected(t *testing.T) {
	p := newTestPH(t, Options{})
	tab := relation.NewTable(empSchema())
	tab.MustInsert(relation.String("bad#name"), relation.String("HR"), relation.Int(1))
	if _, err := p.EncryptTable(tab); err == nil {
		t.Fatal("EncryptTable accepted a value containing the padding symbol")
	}
}
