package bench

import (
	"fmt"

	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/wire"
	"repro/internal/workload"
)

// RunE12 regenerates experiment E12: communication costs. Outsourcing is a
// bandwidth contract as much as a compute one; this experiment measures,
// per scheme, the wire size of everything Alex and Eve exchange: the
// uploaded ciphertext (bytes per tuple, vs the plaintext encoding), the
// encrypted-query token, and the result stream per returned tuple
// (pre-filter, so coarse schemes pay for their false positives here too).
func RunE12(tuples, queries int, seed int64) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "communication: wire bytes per scheme (employee workload)",
		Header: []string{"scheme", "upload B/tuple", "expansion ×", "token B",
			"result B/true tuple"},
		Notes: []string{
			"upload = wire-encoded encrypted table; expansion is relative to the wire-encoded plaintext table",
			"result bytes counted pre-filter: false positives of coarse schemes are shipped and paid for",
			fmt.Sprintf("tuples: %d, queries: %d", tuples, queries),
		},
	}
	table, err := workload.Employees(tuples, seed)
	if err != nil {
		return nil, err
	}
	plainBytes := len(relation.EncodeTable(table))
	qs := workload.QueryMix(table, queries, seed+1)
	for _, name := range SchemeNames {
		scheme, err := MustFactory(name)(table.Schema())
		if err != nil {
			return nil, err
		}
		ct, err := scheme.EncryptTable(table)
		if err != nil {
			return nil, err
		}
		uploadBytes := len(wire.EncodeTable(nil, ct))
		tokenBytes, resultBytes, trueTuples := 0, 0, 0
		for _, q := range qs {
			eq, err := scheme.EncryptQuery(q)
			if err != nil {
				return nil, err
			}
			tokenBytes += len(wire.EncodeQuery(nil, eq))
			res, err := ph.Apply(ct, eq)
			if err != nil {
				return nil, err
			}
			resultBytes += len(wire.EncodeResult(nil, res))
			out, err := scheme.DecryptResult(q, res)
			if err != nil {
				return nil, err
			}
			trueTuples += out.Len()
		}
		resultPerTuple := 0.0
		if trueTuples > 0 {
			resultPerTuple = float64(resultBytes) / float64(trueTuples)
		}
		t.AddRow(name,
			fmt.Sprintf("%.1f", float64(uploadBytes)/float64(tuples)),
			fmt.Sprintf("%.2f", float64(uploadBytes)/float64(plainBytes)),
			fmt.Sprintf("%.1f", float64(tokenBytes)/float64(len(qs))),
			fmt.Sprintf("%.1f", resultPerTuple))
	}
	return t, nil
}
