// Command experiments regenerates every evaluation artifact of the
// reproduction (experiments E1–E21 of DESIGN.md) and prints the result
// tables, optionally as markdown for EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-exp e1,e2,...] [-trials N] [-patients N] [-markdown] [-quick]
//
// With no -exp flag all experiments run in order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment ids (e1..e21); empty = all")
		outPath  = flag.String("o", "", "also write the output to this file")
		trials   = flag.Int("trials", 200, "game trials per cell (E1, E4)")
		patients = flag.Int("patients", 400, "patients per hospital table (E2, E3)")
		infTr    = flag.Int("inference-trials", 50, "trials for the inference attacks (E2, E3)")
		slots    = flag.Int("slots", 200000, "word slots probed per checksum width (E5)")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavoured markdown")
		jsonOut  = flag.Bool("json", false, "emit JSON (one object per experiment)")
		quick    = flag.Bool("quick", false, "small parameters for a fast smoke run")
		seed     = flag.Int64("seed", 1, "deterministic experiment seed")
	)
	flag.Parse()

	if *quick {
		*trials = 40
		*patients = 200
		*infTr = 10
		*slots = 20000
	}
	sizes := []int{100, 1000, 10000}
	e8sizes := []int{100, 1000, 10000, 100000}
	e13Tuples := 10000
	e14Clients := 8
	e15Writers, e15Ops := 8, 60
	e18Tuples, e18Window := 2000, 400*time.Millisecond
	e19Tuples := 400
	e20Tuples, e20Window := 2000, 400*time.Millisecond
	e21Tuples, e21Riders := 10000, 64
	if *quick {
		sizes = []int{100, 1000}
		e8sizes = []int{100, 1000}
		e13Tuples = 2048
		e15Ops = 15
		e18Tuples, e18Window = 1000, 250*time.Millisecond
		e19Tuples = 200
		e20Tuples, e20Window = 1000, 250*time.Millisecond
		e21Tuples, e21Riders = 4096, 16
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToLower(strings.TrimSpace(id))] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[strings.ToLower(id)] }

	type runner struct {
		id  string
		run func() (*bench.Table, error)
	}
	runners := []runner{
		{"e1", func() (*bench.Table, error) { return bench.RunE1(*trials, *seed) }},
		{"e2", func() (*bench.Table, error) { return bench.RunE2(*patients, *infTr, *seed) }},
		{"e3", func() (*bench.Table, error) { return bench.RunE3(*patients, *infTr, *seed) }},
		{"e4", func() (*bench.Table, error) { return bench.RunE4(*trials, *seed) }},
		{"e5", func() (*bench.Table, error) { return bench.RunE5(*slots, *seed) }},
		{"e6", func() (*bench.Table, error) { return bench.RunE6(sizes, 20, *seed) }},
		{"e7", func() (*bench.Table, error) { return bench.RunE7(10, 10, *seed) }},
		{"e8", func() (*bench.Table, error) { return bench.RunE8(e8sizes, *seed) }},
		{"e9", func() (*bench.Table, error) { return bench.RunE9(*patients, *infTr, *seed) }},
		{"e10", func() (*bench.Table, error) { return bench.RunE10(*patients, *trials, *seed) }},
		{"e11", func() (*bench.Table, error) { return bench.RunE11(*patients, *infTr, *seed) }},
		{"e12", func() (*bench.Table, error) { return bench.RunE12(*patients, 20, *seed) }},
		{"e13", func() (*bench.Table, error) { return bench.RunE13(e13Tuples, *seed) }},
		{"e14", func() (*bench.Table, error) { return bench.RunE14(e13Tuples, e14Clients, *seed) }},
		{"e15", func() (*bench.Table, error) { return bench.RunE15(e15Writers, e15Ops, *seed) }},
		{"e16", func() (*bench.Table, error) { return bench.RunE16(e13Tuples, *seed) }},
		// E17 ignores -quick sizing: its ≥5x gate is specified at ≥10k
		// tuples and RunE17 clamps up to that floor anyway.
		{"e17", func() (*bench.Table, error) { return bench.RunE17(10000, *seed) }},
		{"e18", func() (*bench.Table, error) { return bench.RunE18(e18Tuples, 6, e18Window, *seed) }},
		{"e19", func() (*bench.Table, error) { return bench.RunE19(e19Tuples, *seed) }},
		{"e20", func() (*bench.Table, error) { return bench.RunE20(e20Tuples, 6, e20Window, *seed) }},
		{"e21", func() (*bench.Table, error) { return bench.RunE21(e21Tuples, e21Riders, *seed) }},
	}
	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}
	for _, r := range runners {
		if !selected(r.id) {
			continue
		}
		table, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.id, err)
			os.Exit(1)
		}
		switch {
		case *jsonOut:
			if err := table.JSON(out); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.id, err)
				os.Exit(1)
			}
		case *markdown:
			table.Markdown(out)
		default:
			table.Fprint(out)
		}
	}
}
