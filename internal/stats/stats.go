// Package stats provides the small statistical toolkit the evaluation
// harness needs: summary statistics, binomial confidence intervals for
// Monte-Carlo advantage estimates, and distribution-distance measures used
// to quantify leakage.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator), or
// 0 for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Binomial summarises wins out of trials, e.g. an adversary's performance in
// a security game.
type Binomial struct {
	// Wins is the number of successes.
	Wins int
	// Trials is the number of independent trials.
	Trials int
}

// Rate returns the empirical success probability.
func (b Binomial) Rate() float64 {
	if b.Trials == 0 {
		return 0
	}
	return float64(b.Wins) / float64(b.Trials)
}

// Advantage converts a guessing-game success rate into the standard
// cryptographic advantage 2·Pr[win] − 1 ∈ [−1, 1] (0 for a blind guesser,
// 1 for a perfect distinguisher).
func (b Binomial) Advantage() float64 {
	return 2*b.Rate() - 1
}

// WilsonInterval returns the Wilson score interval for the success
// probability at confidence level z standard normal deviates (z = 1.96 for
// 95%).
func (b Binomial) WilsonInterval(z float64) (lo, hi float64) {
	if b.Trials == 0 {
		return 0, 1
	}
	n := float64(b.Trials)
	p := b.Rate()
	z2 := z * z
	den := 1 + z2/n
	centre := (p + z2/(2*n)) / den
	half := z / den * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = math.Max(0, centre-half)
	hi = math.Min(1, centre+half)
	return lo, hi
}

// HoeffdingRadius returns the half-width of the two-sided Hoeffding bound on
// the deviation of the empirical rate from the true rate, at confidence
// 1-delta: radius = sqrt(ln(2/delta) / (2n)).
func (b Binomial) HoeffdingRadius(delta float64) float64 {
	if b.Trials == 0 || delta <= 0 || delta >= 1 {
		return 1
	}
	return math.Sqrt(math.Log(2/delta) / (2 * float64(b.Trials)))
}

// String renders the binomial as "wins/trials (rate)".
func (b Binomial) String() string {
	return fmt.Sprintf("%d/%d (%.3f)", b.Wins, b.Trials, b.Rate())
}

// Entropy returns the Shannon entropy (bits) of a discrete distribution
// given as unnormalised non-negative weights.
func Entropy(weights []float64) float64 {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, w := range weights {
		if w <= 0 {
			continue
		}
		p := w / total
		h -= p * math.Log2(p)
	}
	return h
}

// TotalVariation returns the total-variation distance between two discrete
// distributions over the same support, each given as unnormalised
// non-negative weights. The slices must have the same length.
func TotalVariation(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: TV distance over different supports (%d vs %d)", len(p), len(q))
	}
	var sp, sq float64
	for i := range p {
		sp += p[i]
		sq += q[i]
	}
	if sp == 0 || sq == 0 {
		return 0, fmt.Errorf("stats: TV distance of empty distribution")
	}
	var d float64
	for i := range p {
		d += math.Abs(p[i]/sp - q[i]/sq)
	}
	return d / 2, nil
}
