package bench

import (
	"fmt"

	"repro/internal/attacks"
)

// RunE9 regenerates experiment E9: ciphertext-only frequency analysis.
// This is the practical consequence of failing the §1 indistinguishability
// game: without observing a single query (q = 0), Eve matches label
// frequencies against the public value distribution and decrypts the
// indexed column of every deterministic scheme. Expected shape: recovery
// ≈ 1 for detph, high for the bucketed schemes (capped by bucket
// collisions), and below the guess-the-mode baseline for the paper's
// construction.
func RunE9(tuples, trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "ciphertext-only frequency analysis of the dept column (q=0)",
		Header: []string{"scheme", "tuple recovery", "guess-mode baseline"},
		Notes: []string{
			"the practical reading of §1: deterministic labels + public value distribution = plaintext recovery with zero queries",
			fmt.Sprintf("tuples per table: %d, trials: %d; Zipf-distributed departments, ranking known to Eve", tuples, trials),
			"recovery at or below the baseline means the ciphertext added nothing over guessing the mode: swp-ph exposes only unique cipherwords (grouping collapses), goh-ph exposes no per-column labels at all",
		},
	}
	for _, name := range SchemeNames {
		rep, err := attacks.FrequencyAnalysis(MustFactory(name), tuples, trials, seed)
		if err != nil {
			return nil, fmt.Errorf("bench: E9 scheme %s: %w", name, err)
		}
		t.AddRow(name, f3(rep.TupleRecovery), f3(rep.Baseline))
	}
	return t, nil
}
