package shard

import (
	"fmt"

	"repro/internal/authindex"
	"repro/internal/client"
	"repro/internal/ph"
	"repro/internal/query"
	"repro/internal/wire"
)

// Remote implements client.Cluster over one connection to a coordinator
// process (`phserver -coordinator`), speaking the shard-framed commands
// so per-shard sub-answers — and with them per-shard verifiability —
// survive the extra hop. The remote coordinator is exactly as untrusted
// as a single server: the client re-verifies every sub-answer against
// its pinned root vector, and Remote's own checks (map version echo,
// full shard coverage, ascending framing) only turn a lying coordinator
// into a loud failure instead of a wrong answer.
type Remote struct {
	conn *client.Conn
	m    Map
}

// NewRemote wraps a connection to a coordinator whose partition map the
// client knows (from its shards config). The map version is checked
// against every response's echo, so a stale client config fails loudly.
func NewRemote(conn *client.Conn, m Map) (*Remote, error) {
	if m.Count < 1 {
		return nil, fmt.Errorf("shard: partition map must have at least 1 shard, got %d", m.Count)
	}
	return &Remote{conn: conn, m: m}, nil
}

// NumShards returns the partition map's shard count.
func (rc *Remote) NumShards() int { return rc.m.Count }

// MapVersion returns the partition map's version stamp.
func (rc *Remote) MapVersion() uint64 { return rc.m.Version }

// Split partitions tuples with the client-side copy of the map.
func (rc *Remote) Split(tuples []ph.EncryptedTuple) [][]ph.EncryptedTuple {
	return rc.m.Split(tuples)
}

// Store uploads the table through the coordinator's legacy store path
// (the coordinator partitions it server-side with the same map).
func (rc *Remote) Store(name string, t *ph.EncryptedTable) error {
	return rc.conn.Store(name, t)
}

// Insert appends tuples through CmdShardInsert and expands the wire
// acks (touched shards only) into the full per-shard vector.
func (rc *Remote) Insert(name string, tuples []ph.EncryptedTuple) ([]client.InsertAck, error) {
	payload := wire.AppendString(nil, name)
	payload = wire.AppendU32(payload, uint32(len(tuples)))
	for _, tp := range tuples {
		payload = wire.EncodeTuple(payload, tp)
	}
	resp, err := rc.conn.RoundTrip(wire.Frame{Type: wire.CmdShardInsert, Payload: payload})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.RespInsertedShard {
		return nil, fmt.Errorf("shard: unexpected response %#x to sharded insert", resp.Type)
	}
	mapVersion, wireAcks, err := DecodeAcks(resp.Payload, rc.m.Count)
	if err != nil {
		return nil, err
	}
	if mapVersion != rc.m.Version {
		return nil, fmt.Errorf("shard: coordinator is on partition map %d, client config says %d — refresh the shards config", mapVersion, rc.m.Version)
	}
	acks := make([]client.InsertAck, rc.m.Count)
	for _, a := range wireAcks {
		acks[a.Shard] = client.InsertAck{Base: a.Base, Count: a.Count, Version: a.Version}
	}
	return acks, nil
}

// roundTripShard sends one shard-framed read and decodes the per-shard
// sub-answers, requiring the map version to match and — for query reads
// — every shard to answer (a verifying client cannot merge a partial
// scatter: a missing shard's matches would silently vanish).
func (rc *Remote) roundTripShard(name string, flags byte, qs []*ph.EncryptedQuery) ([]Sub, error) {
	resp, err := rc.conn.RoundTrip(wire.Frame{Type: wire.CmdShardQuery, Payload: EncodeQueryRequest(nil, name, flags, qs)})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.RespResultShard {
		return nil, fmt.Errorf("shard: unexpected response %#x to sharded query", resp.Type)
	}
	mapVersion, subs, err := DecodeResponse(resp.Payload, rc.m.Count)
	if err != nil {
		return nil, err
	}
	if mapVersion != rc.m.Version {
		return nil, fmt.Errorf("shard: coordinator is on partition map %d, client config says %d — refresh the shards config", mapVersion, rc.m.Version)
	}
	if len(subs) != rc.m.Count {
		return nil, fmt.Errorf("shard: %d of %d shards answered", len(subs), rc.m.Count)
	}
	for i, sub := range subs {
		if sub.Shard != i {
			return nil, fmt.Errorf("shard: sub-answer %d claims shard %d", i, sub.Shard)
		}
	}
	return subs, nil
}

// Query scatters one query through the coordinator.
func (rc *Remote) Query(name string, q *ph.EncryptedQuery) ([]*ph.Result, error) {
	subs, err := rc.roundTripShard(name, 0, []*ph.EncryptedQuery{q})
	if err != nil {
		return nil, err
	}
	out := make([]*ph.Result, len(subs))
	for i, sub := range subs {
		if sub.Kind != KindResults || len(sub.Results) != 1 {
			return nil, fmt.Errorf("shard %d answered kind %#x with %d results to a single query", i, sub.Kind, len(sub.Results))
		}
		out[i] = sub.Results[0]
	}
	return out, nil
}

// QueryBatch scatters a query batch through the coordinator.
func (rc *Remote) QueryBatch(name string, qs []*ph.EncryptedQuery) ([][]*ph.Result, error) {
	subs, err := rc.roundTripShard(name, 0, qs)
	if err != nil {
		return nil, err
	}
	out := make([][]*ph.Result, len(subs))
	for i, sub := range subs {
		if sub.Kind != KindResults || len(sub.Results) != len(qs) {
			return nil, fmt.Errorf("shard %d answered kind %#x with %d results to a %d-query batch", i, sub.Kind, len(sub.Results), len(qs))
		}
		out[i] = sub.Results
	}
	return out, nil
}

// QueryVerified scatters one verified query; each shard's sub-answer
// carries that shard's proofs and root for the caller to check.
func (rc *Remote) QueryVerified(name string, q *ph.EncryptedQuery, check client.VerifyCheck) ([]*authindex.VerifiedResult, error) {
	subs, err := rc.roundTripShard(name, wire.ShardFlagVerified, []*ph.EncryptedQuery{q})
	if err != nil {
		return nil, err
	}
	out := make([]*authindex.VerifiedResult, len(subs))
	for i, sub := range subs {
		if sub.Kind != KindVerified || len(sub.Verified) != 1 {
			return nil, fmt.Errorf("shard %d answered kind %#x with %d verified results to a single query", i, sub.Kind, len(sub.Verified))
		}
		if check != nil {
			if err := check(i, sub.Verified[0]); err != nil {
				return nil, err
			}
		}
		out[i] = sub.Verified[0]
	}
	return out, nil
}

// QueryConj scatters one conjunction through the coordinator.
func (rc *Remote) QueryConj(name string, qs []*ph.EncryptedQuery, verified bool, check client.VerifyCheck) ([]*query.Response, error) {
	flags := wire.ShardFlagConj
	if verified {
		flags |= wire.ShardFlagVerified
	}
	subs, err := rc.roundTripShard(name, flags, qs)
	if err != nil {
		return nil, err
	}
	out := make([]*query.Response, len(subs))
	for i, sub := range subs {
		if sub.Kind != KindConj || sub.Conj == nil {
			return nil, fmt.Errorf("shard %d answered kind %#x to a conjunction", i, sub.Kind)
		}
		if verified {
			if sub.Conj.Verified == nil {
				return nil, fmt.Errorf("shard %d answered a verified conjunction without proofs", i)
			}
			if check != nil {
				if err := check(i, sub.Conj.Verified); err != nil {
					return nil, err
				}
			}
		}
		out[i] = sub.Conj
	}
	return out, nil
}

// ExplainConj asks the coordinator for the merged per-shard plan (the
// legacy explain path; the coordinator scatters and merges).
func (rc *Remote) ExplainConj(name string, qs []*ph.EncryptedQuery) (*query.PlanInfo, error) {
	return rc.conn.ExplainConj(name, qs)
}

// Fetch downloads every shard's partition, framed per shard so the
// caller can rebuild per-shard Merkle frontiers.
func (rc *Remote) Fetch(name string) ([]*ph.EncryptedTable, error) {
	subs, err := rc.roundTripShard(name, wire.ShardFlagFetch, nil)
	if err != nil {
		return nil, err
	}
	out := make([]*ph.EncryptedTable, len(subs))
	for i, sub := range subs {
		if sub.Kind != KindTable || sub.Table == nil {
			return nil, fmt.Errorf("shard %d answered kind %#x to a fetch", i, sub.Kind)
		}
		out[i] = sub.Table
	}
	return out, nil
}

// Drop removes the table from every shard through the coordinator.
func (rc *Remote) Drop(name string) error {
	return rc.conn.Drop(name)
}
