package games

import (
	"fmt"
	"math/rand"

	"repro/internal/stats"
)

// This file implements Definition 1.2 verbatim — classical
// indistinguishability of a generic encryption scheme over byte strings:
//
//  1. Eve chooses two plaintexts m1, m2 of the same length and presents
//     them to Alex.
//  2. Alex chooses i ∈ {1,2} uniformly at random and presents E_k(m_i) to
//     Eve.
//  3. Eve must guess i.
//
// The table-level game (Def21) specialises this to database PHs; the
// byte-level game here is used to sanity-check the building blocks (SWP
// word encryption, the AEAD sealer) and to demonstrate that the game
// *does* catch schemes designed to fail it (deterministic encryption).

// Encryptor is a generic encryption function under a fresh key; the game
// calls the factory once per trial.
type Encryptor func(plaintext []byte) ([]byte, error)

// EncryptorFactory creates a fresh-keyed Encryptor per game trial.
type EncryptorFactory func() (Encryptor, error)

// INDAdversary plays the Definition 1.2 game. ChoosePlaintexts returns the
// two equal-length challenge messages; GuessFrom sees the challenge
// ciphertext. Samples holds encryptions of *both* plaintexts under the
// challenge key, modelling the chosen-plaintext capability of the standard
// game (Eve "can have plaintext encrypted").
type INDAdversary interface {
	// Name identifies the adversary in reports.
	Name() string
	// ChoosePlaintexts returns m1, m2 (equal length enforced by the
	// runner).
	ChoosePlaintexts(rng *rand.Rand) (m0, m1 []byte, err error)
	// GuessFrom returns 0 or 1 given the challenge ciphertext and the
	// adversary's own chosen-plaintext samples.
	GuessFrom(rng *rand.Rand, challenge []byte, samples [2][]byte) (int, error)
}

// IND configures the Definition 1.2 game.
type IND struct {
	// Factory creates the scheme under attack with a fresh key per
	// trial.
	Factory EncryptorFactory
	// ChosenPlaintext grants the adversary encryptions of both challenge
	// messages under the challenge key (the classical CPA flavour). When
	// false, samples are nil.
	ChosenPlaintext bool
}

// Run plays the game for the given number of trials and reports the win
// statistics.
func (g IND) Run(adv INDAdversary, trials int, seed int64) (stats.Binomial, error) {
	if g.Factory == nil {
		return stats.Binomial{}, fmt.Errorf("games: IND needs an encryptor factory")
	}
	if trials <= 0 {
		return stats.Binomial{}, fmt.Errorf("games: trial count must be positive, got %d", trials)
	}
	rng := rand.New(rand.NewSource(seed))
	wins := 0
	for trial := 0; trial < trials; trial++ {
		// Step 1: Eve chooses the messages.
		m0, m1, err := adv.ChoosePlaintexts(rng)
		if err != nil {
			return stats.Binomial{}, fmt.Errorf("games: trial %d: choosing plaintexts: %w", trial, err)
		}
		if len(m0) != len(m1) {
			return stats.Binomial{}, fmt.Errorf("games: trial %d: plaintexts of different lengths (%d vs %d)",
				trial, len(m0), len(m1))
		}
		// Step 2: Alex draws a key and encrypts one of them.
		enc, err := g.Factory()
		if err != nil {
			return stats.Binomial{}, fmt.Errorf("games: trial %d: creating encryptor: %w", trial, err)
		}
		challenge := rng.Intn(2)
		msg := m0
		if challenge == 1 {
			msg = m1
		}
		ct, err := enc(msg)
		if err != nil {
			return stats.Binomial{}, fmt.Errorf("games: trial %d: encrypting challenge: %w", trial, err)
		}
		var samples [2][]byte
		if g.ChosenPlaintext {
			if samples[0], err = enc(m0); err != nil {
				return stats.Binomial{}, fmt.Errorf("games: trial %d: sample 0: %w", trial, err)
			}
			if samples[1], err = enc(m1); err != nil {
				return stats.Binomial{}, fmt.Errorf("games: trial %d: sample 1: %w", trial, err)
			}
		}
		// Step 3: Eve guesses.
		guess, err := adv.GuessFrom(rng, ct, samples)
		if err != nil {
			return stats.Binomial{}, fmt.Errorf("games: trial %d: guessing: %w", trial, err)
		}
		if guess != 0 && guess != 1 {
			return stats.Binomial{}, fmt.Errorf("games: trial %d: invalid guess %d", trial, guess)
		}
		if guess == challenge {
			wins++
		}
	}
	return stats.Binomial{Wins: wins, Trials: trials}, nil
}

// CiphertextMatcher is the canonical Definition 1.2 adversary against
// deterministic encryption: it picks two fixed messages and, given
// chosen-plaintext samples, guesses the one whose sample equals the
// challenge ciphertext byte-for-byte. Against any deterministic scheme it
// wins always; against a probabilistic scheme the samples never match and
// it is reduced to guessing.
type CiphertextMatcher struct {
	// M0 and M1 are the challenge plaintexts (equal length).
	M0, M1 []byte
}

// Name implements INDAdversary.
func (a CiphertextMatcher) Name() string { return "ciphertext-matcher" }

// ChoosePlaintexts implements INDAdversary.
func (a CiphertextMatcher) ChoosePlaintexts(*rand.Rand) ([]byte, []byte, error) {
	if len(a.M0) != len(a.M1) {
		return nil, nil, fmt.Errorf("games: matcher messages must have equal length")
	}
	return a.M0, a.M1, nil
}

// GuessFrom implements INDAdversary.
func (a CiphertextMatcher) GuessFrom(rng *rand.Rand, challenge []byte, samples [2][]byte) (int, error) {
	for i, s := range samples {
		if len(s) == len(challenge) && bytesEqual(s, challenge) {
			return i, nil
		}
	}
	return rng.Intn(2), nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var diff byte
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return diff == 0
}
