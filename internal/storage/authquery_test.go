package storage

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/authindex"
	"repro/internal/ph"
)

// authRegisterOnce registers an evaluator with real selection semantics:
// it matches every tuple whose first ID byte equals the token byte.
var authRegisterOnce sync.Once

func authTable(n int) *ph.EncryptedTable {
	authRegisterOnce.Do(func() {
		ph.RegisterEvaluator("authq-test", func(et *ph.EncryptedTable, q *ph.EncryptedQuery) (*ph.Result, error) {
			var positions []int
			for i, tp := range et.Tuples {
				if len(tp.ID) > 0 && len(q.Token) > 0 && tp.ID[0] == q.Token[0] {
					positions = append(positions, i)
				}
			}
			return ph.SelectPositions(et, positions), nil
		})
	})
	t := &ph.EncryptedTable{SchemeID: "authq-test", Meta: []byte{1}}
	for i := 0; i < n; i++ {
		t.Tuples = append(t.Tuples, ph.EncryptedTuple{
			ID:    []byte{byte(i % 3), byte(i), byte(i >> 8)},
			Blob:  []byte{0xB0, byte(i)},
			Words: [][]byte{{0xA0, byte(i)}},
		})
	}
	return t
}

func authQuery(b byte) *ph.EncryptedQuery {
	return &ph.EncryptedQuery{SchemeID: "authq-test", Token: []byte{b}}
}

// TestRootIncrementalMatchesRebuild: the store-maintained root must equal
// a from-scratch rebuild of the current table after every append.
func TestRootIncrementalMatchesRebuild(t *testing.T) {
	s := NewMemory()
	if err := s.Put("emp", authTable(5)); err != nil {
		t.Fatal(err)
	}
	var lastVer uint64
	for step := 0; step < 6; step++ {
		root, n, ver, err := s.Root("emp")
		if err != nil {
			t.Fatal(err)
		}
		full, err := s.Get("emp")
		if err != nil {
			t.Fatal(err)
		}
		if n != len(full.Tuples) {
			t.Fatalf("step %d: Root reports %d tuples, table has %d", step, n, len(full.Tuples))
		}
		if want := authindex.Build(full).Root(); !bytes.Equal(root, want) {
			t.Fatalf("step %d: incremental root differs from rebuild", step)
		}
		if ver <= lastVer && step > 0 {
			t.Fatalf("step %d: version did not advance (%d -> %d)", step, lastVer, ver)
		}
		lastVer = ver
		if err := s.Append("emp", authTable(step+1).Tuples); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAppendStampedPlacement: base must be the pre-append tuple count and
// the version must match the table's.
func TestAppendStampedPlacement(t *testing.T) {
	s := NewMemory()
	if err := s.Put("emp", authTable(4)); err != nil {
		t.Fatal(err)
	}
	base, v1, err := s.AppendStamped("emp", authTable(3).Tuples)
	if err != nil {
		t.Fatal(err)
	}
	if base != 4 {
		t.Fatalf("first append base %d, want 4", base)
	}
	base, v2, err := s.AppendStamped("emp", authTable(2).Tuples)
	if err != nil {
		t.Fatal(err)
	}
	if base != 7 {
		t.Fatalf("second append base %d, want 7", base)
	}
	if v2 <= v1 {
		t.Fatalf("versions not monotonic: %d then %d", v1, v2)
	}
	if _, _, _, err := s.Root("emp"); err != nil {
		t.Fatal(err)
	}
	_, _, ver, err := s.Root("emp")
	if err != nil {
		t.Fatal(err)
	}
	if ver != v2 {
		t.Fatalf("Root version %d, want last append's %d", ver, v2)
	}
}

// TestQueryVerifiedConsistentSnapshot: every component of a verified
// answer must be internally consistent — proofs verify the returned
// tuples against the returned root at the returned leaf count.
func TestQueryVerifiedConsistentSnapshot(t *testing.T) {
	s := NewMemory()
	if err := s.Put("emp", authTable(50)); err != nil {
		t.Fatal(err)
	}
	vr, err := s.QueryVerified("emp", authQuery(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(vr.Result.Positions) == 0 {
		t.Fatal("query matched nothing; test table broken")
	}
	if len(vr.Proofs) != len(vr.Result.Tuples) {
		t.Fatalf("%d proofs for %d tuples", len(vr.Proofs), len(vr.Result.Tuples))
	}
	for i, p := range vr.Proofs {
		if p.Position != vr.Result.Positions[i] {
			t.Fatalf("proof %d speaks about %d, want %d", i, p.Position, vr.Result.Positions[i])
		}
		if err := authindex.Verify(vr.Root, vr.Leaves, vr.Result.Tuples[i], p); err != nil {
			t.Fatalf("proof %d rejected: %v", i, err)
		}
	}
}

// TestQueryVerifiedUsesCache: the verified path must go through the same
// result cache as the plain query path.
func TestQueryVerifiedUsesCache(t *testing.T) {
	s := NewMemory()
	if err := s.Put("emp", authTable(2048)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.QueryVerified("emp", authQuery(2)); err != nil {
		t.Fatal(err)
	}
	before := s.CacheStats()
	if _, err := s.QueryVerified("emp", authQuery(2)); err != nil {
		t.Fatal(err)
	}
	after := s.CacheStats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("second verified query was not a cache hit (hits %d -> %d)", before.Hits, after.Hits)
	}
}

// TestPutReplacesTree: replacing a table must retire its tree — the next
// root must describe the new tuples, not the old tree.
func TestPutReplacesTree(t *testing.T) {
	s := NewMemory()
	if err := s.Put("emp", authTable(8)); err != nil {
		t.Fatal(err)
	}
	r1, _, _, err := s.Root("emp")
	if err != nil {
		t.Fatal(err)
	}
	repl := authTable(8)
	repl.Tuples[3].Blob[1] ^= 0xFF
	if err := s.Put("emp", repl); err != nil {
		t.Fatal(err)
	}
	r2, n, _, err := s.Root("emp")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(r1, r2) {
		t.Fatal("root unchanged after table replacement")
	}
	full, _ := s.Get("emp")
	if want := authindex.Build(full).Root(); !bytes.Equal(r2, want) || n != 8 {
		t.Fatal("root after replacement does not match the new tuples")
	}
}

// TestConcurrentAppendVerifiedQuery is the -race gate for the versioned
// index: writers append while readers run verified queries; every answer
// must be internally consistent (proofs verify against the root cut from
// the same snapshot), whatever interleaving the scheduler picks.
func TestConcurrentAppendVerifiedQuery(t *testing.T) {
	s := NewMemory()
	if err := s.Put("emp", authTable(64)); err != nil {
		t.Fatal(err)
	}
	const (
		writers = 3
		readers = 4
		appends = 40
		queries = 60
	)
	errs := make(chan error, writers+readers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tail := authTable(2).Tuples
			for i := 0; i < appends; i++ {
				if err := s.Append("emp", tail); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < queries; i++ {
				vr, err := s.QueryVerified("emp", authQuery(byte(i%3)))
				if err != nil {
					errs <- err
					return
				}
				for j, p := range vr.Proofs {
					if err := authindex.Verify(vr.Root, vr.Leaves, vr.Result.Tuples[j], p); err != nil {
						errs <- err
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The settled tree must equal a rebuild over the final table.
	root, _, _, err := s.Root("emp")
	if err != nil {
		t.Fatal(err)
	}
	full, _ := s.Get("emp")
	if want := authindex.Build(full).Root(); !bytes.Equal(root, want) {
		t.Fatal("settled incremental root differs from rebuild")
	}
}

// TestRootSurvivesReplay: a replayed durable store serves the same root
// as the store that wrote the log.
func TestRootSurvivesReplay(t *testing.T) {
	path := t.TempDir() + "/auth.log"
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("emp", authTable(10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("emp", authTable(5).Tuples); err != nil {
		t.Fatal(err)
	}
	r1, n1, _, err := s.Root("emp")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	r2, n2, _, err := s2.Root("emp")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1, r2) || n1 != n2 {
		t.Fatalf("replayed root differs: %d/%d tuples", n1, n2)
	}
}
