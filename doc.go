// Package repro reproduces "Provable Security for Outsourcing Database
// Operations" (Evdokimov, Fischmann, Günther — ICDE 2006) as a complete Go
// system: the database-privacy-homomorphism framework (internal/ph), the
// paper's SWP-based construction preserving exact selects (internal/core),
// the searchable-encryption substrate (internal/swp), the comparator
// schemes it attacks (internal/schemes/...), the security games and
// adversaries of its definitions and theorem (internal/games,
// internal/attacks), and a full client/server outsourcing stack
// (internal/client, internal/server).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results. The
// root-level benchmarks (bench_test.go) regenerate every evaluation
// artifact; cmd/experiments prints them as tables.
package repro
