package detph

import (
	"testing"

	"repro/internal/crypto"
	"repro/internal/relation"
)

func schema() *relation.Schema {
	return relation.MustSchema("t",
		relation.Column{Name: "v", Type: relation.TypeInt, Width: 6},
	)
}

func TestLabelsInjective(t *testing.T) {
	s, err := New(crypto.KeyFromBytes([]byte("k")), schema())
	if err != nil {
		t.Fatal(err)
	}
	tab := relation.NewTable(schema())
	for i := int64(0); i < 1000; i++ {
		tab.MustInsert(relation.Int(i))
	}
	ct, err := s.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, tp := range ct.Tuples {
		k := string(tp.Words[0])
		if seen[k] {
			t.Fatal("distinct values collided — detph labels should be injective whp")
		}
		seen[k] = true
	}
}

func TestColumnSeparation(t *testing.T) {
	// The same value in different columns must get different labels, or
	// cross-column equality would leak.
	two := relation.MustSchema("t",
		relation.Column{Name: "a", Type: relation.TypeInt, Width: 6},
		relation.Column{Name: "b", Type: relation.TypeInt, Width: 6},
	)
	s, err := New(crypto.KeyFromBytes([]byte("k")), two)
	if err != nil {
		t.Fatal(err)
	}
	tab := relation.NewTable(two)
	tab.MustInsert(relation.Int(5), relation.Int(5))
	ct, err := s.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	if string(ct.Tuples[0].Words[0]) == string(ct.Tuples[0].Words[1]) {
		t.Fatal("same value in different columns produced the same label")
	}
}
