package storage

// Snapshot shipping: the O(state) bootstrap path for followers (the
// O(log) alternative is replaying the shipped WAL from record 0, see
// ship.go). A snapshot is a self-verifying byte string — every field
// that steers decoding is checksummed before it is believed — that
// captures the catalogue at one shipping cursor and embeds that cursor,
// so the installer knows exactly where to resume tailing.
//
// Format (all integers big-endian):
//
//	header:   magic "PHSNAP1\x00" | epoch:u64 | seq:u64 | count:u32 | hdrCRC:u32
//	records:  count × ( len:u32 | payload | payCRC:u32 )
//	trailer:  totalCRC:u32
//
// hdrCRC (Castagnoli, like the WAL's) covers the header bytes before
// it; payCRC covers one record's payload; totalCRC covers every byte
// before itself, sealing the whole string. A record payload is exactly
// an opStore WAL payload — name then encoded table — which is what lets
// a durable installer write the snapshot's tables straight back out as
// its own fresh log.
//
// Transfer is chunked and resumable: ReadSnapshot serves byte ranges of
// one immutable encoded snapshot, identified by its embedded cursor. A
// fetcher that presents the identity it is mid-transfer on keeps
// getting bytes of that same string across torn connections and
// reconnects; when the server no longer holds that snapshot it answers
// with a fresh one from offset 0 and the fetcher restarts — offsets are
// meaningless across identities. Verification happens only over the
// fully reassembled string, so a chunk lost or mangled in flight can at
// worst fail the install, never corrupt it.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"repro/internal/cache"
	"repro/internal/ph"
	"repro/internal/wire"
)

// ShipCursor names a position in a primary's shipping stream: seq
// indexes records of the log file the epoch names (see ship.go).
type ShipCursor struct {
	Epoch uint64
	Seq   uint64
}

const (
	snapMagic  = "PHSNAP1\x00"
	snapHdrLen = 8 + 8 + 8 + 4 + 4 // magic, epoch, seq, count, hdrCRC
	// snapMinLen is the smallest well-formed snapshot: empty catalogue,
	// header plus trailer CRC.
	snapMinLen = snapHdrLen + 4

	// maxSnapTables caps the declared table count before any allocation
	// trusts it. The real bound is maxSnapshotBytes / bytes-per-record;
	// this just keeps a hostile count from sizing slices.
	maxSnapTables = 1 << 20
	// maxSnapChunk caps the bytes one ReadSnapshot answer carries,
	// whatever budget the (possibly hostile) peer asked for.
	maxSnapChunk = 4 << 20
	// maxSnapshotBytes caps the encoded snapshot an installer will
	// accept or a fetcher will reassemble.
	maxSnapshotBytes = 1 << 30
)

// snapRecord is one decoded snapshot record: the table, its name, and
// the raw payload bytes (reused verbatim as an opStore WAL payload by
// the durable install path).
type snapRecord struct {
	name    string
	table   *ph.EncryptedTable
	payload []byte
}

// buildSnapshot encodes the current catalogue under the store's read
// lock plus every table's read lock (sorted): Put/Drop/Compact are held
// off by the store lock, appends by the table locks, so the state
// captured and the cursor stamped into the header are one consistent
// cut. Queries proceed throughout.
func (s *Store) buildSnapshot() ([]byte, ShipCursor, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := s.tables[name]
		e.mu.RLock()
		defer e.mu.RUnlock()
	}
	cur := ShipCursor{Epoch: s.epoch}
	if s.wal != nil {
		cur.Seq = s.wal.records()
	}
	buf := make([]byte, 0, snapMinLen)
	buf = append(buf, snapMagic...)
	buf = binary.BigEndian.AppendUint64(buf, cur.Epoch)
	buf = binary.BigEndian.AppendUint64(buf, cur.Seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(names)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	for _, name := range names {
		e := s.tables[name]
		payload := wire.AppendString(nil, name)
		payload = wire.EncodeTable(payload, e.t)
		// The same cap Compact enforces: a record above the frame cap
		// would be rejected on decode, so refuse to emit it.
		if len(payload) > wire.MaxFrameSize {
			return nil, ShipCursor{}, fmt.Errorf("storage: table %q snapshots to %d bytes, above the %d-byte record cap", name, len(payload), wire.MaxFrameSize)
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
		buf = append(buf, payload...)
		buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	if len(buf) > maxSnapshotBytes {
		return nil, ShipCursor{}, fmt.Errorf("storage: snapshot of %d bytes exceeds maximum %d", len(buf), maxSnapshotBytes)
	}
	return buf, cur, nil
}

// WriteSnapshot encodes a consistent snapshot of the catalogue to w and
// returns the shipping cursor it corresponds to. The write happens
// outside all store locks.
func (s *Store) WriteSnapshot(w io.Writer) (ShipCursor, error) {
	buf, cur, err := s.buildSnapshot()
	if err != nil {
		return ShipCursor{}, err
	}
	if _, err := w.Write(buf); err != nil {
		return ShipCursor{}, fmt.Errorf("storage: writing snapshot: %w", err)
	}
	return cur, nil
}

// ReadSnapshot serves one chunk of an encoded snapshot for a
// bootstrapping follower. The identity (reqEpoch, reqSeq) names the
// snapshot the fetcher is mid-transfer on; the zero identity asks for a
// fresh snapshot. When the identified snapshot is still held, bytes
// [offset, offset+budget) of it are returned; otherwise a fresh
// snapshot is built and its first chunk returned under its own identity
// — the fetcher sees the identity change and restarts reassembly.
// maxBytes is clamped to maxSnapChunk and offsets past the end return
// an empty chunk, so no request shape extracts an oversized answer.
func (s *Store) ReadSnapshot(reqEpoch, reqSeq, offset uint64, maxBytes uint32) (data []byte, epoch, seq, total, off uint64, err error) {
	if s.wal == nil {
		return nil, 0, 0, 0, 0, fmt.Errorf("storage: in-memory store has no log to ship")
	}
	s.snapMu.Lock()
	buf, e, q := s.snapBuf, s.snapEpoch, s.snapSeq
	s.snapMu.Unlock()
	fresh := reqEpoch == 0 && reqSeq == 0
	if buf == nil || (fresh && offset == 0) || (!fresh && (reqEpoch != e || reqSeq != q)) {
		// Build outside snapMu: building takes the store and table
		// locks, and snapMu is ordered after them.
		var cur ShipCursor
		buf, cur, err = s.buildSnapshot()
		if err != nil {
			return nil, 0, 0, 0, 0, err
		}
		e, q = cur.Epoch, cur.Seq
		s.snapMu.Lock()
		s.snapBuf, s.snapEpoch, s.snapSeq = buf, e, q
		s.snapMu.Unlock()
		if !fresh && (reqEpoch != e || reqSeq != q) {
			// A genuinely different snapshot: the fetcher's offset is
			// void. A rebuild under the *same* identity — a restarted
			// primary whose replayed log pins the same (epoch, seq) —
			// reproduces the same bytes (the encoding is deterministic),
			// so a mid-transfer offset stays valid and resume holds.
			offset = 0
		}
	}
	total = uint64(len(buf))
	if offset > total {
		offset = total
	}
	budget := uint64(maxBytes)
	if budget == 0 || budget > maxSnapChunk {
		budget = maxSnapChunk
	}
	if budget > total-offset {
		budget = total - offset
	}
	return buf[offset : offset+budget], e, q, total, offset, nil
}

// decodeSnapshot verifies and decodes a fully reassembled snapshot.
// Everything is checked before anything is returned — magic, header
// CRC, declared count against hard caps, every record's length and
// payload CRC, the sealing total CRC, exact end-of-input, and that
// every payload decodes to a well-formed named table with no trailing
// bytes — so an installer can swap state on success knowing no field
// was believed unchecked. Install soundness beyond well-formedness
// (a cursor from the future) is the caller's to judge: the cursor is
// data here.
func decodeSnapshot(b []byte) ([]snapRecord, ShipCursor, error) {
	if len(b) > maxSnapshotBytes {
		return nil, ShipCursor{}, fmt.Errorf("storage: snapshot of %d bytes exceeds maximum %d", len(b), maxSnapshotBytes)
	}
	if len(b) < snapMinLen {
		return nil, ShipCursor{}, fmt.Errorf("storage: snapshot truncated: %d bytes", len(b))
	}
	if string(b[:8]) != snapMagic {
		return nil, ShipCursor{}, fmt.Errorf("storage: bad snapshot magic")
	}
	if crc32.Checksum(b[:snapHdrLen-4], castagnoli) != binary.BigEndian.Uint32(b[snapHdrLen-4:]) {
		return nil, ShipCursor{}, fmt.Errorf("storage: snapshot header checksum mismatch")
	}
	cur := ShipCursor{Epoch: binary.BigEndian.Uint64(b[8:]), Seq: binary.BigEndian.Uint64(b[16:])}
	count := binary.BigEndian.Uint32(b[24:])
	if count > maxSnapTables {
		return nil, ShipCursor{}, fmt.Errorf("storage: snapshot declares %d tables, above the %d cap", count, maxSnapTables)
	}
	if crc32.Checksum(b[:len(b)-4], castagnoli) != binary.BigEndian.Uint32(b[len(b)-4:]) {
		return nil, ShipCursor{}, fmt.Errorf("storage: snapshot total checksum mismatch")
	}
	body := b[snapHdrLen : len(b)-4]
	recs := make([]snapRecord, 0, wire.ClampCount(count, 1024))
	seen := make(map[string]bool, wire.ClampCount(count, 1024))
	for i := uint32(0); i < count; i++ {
		if len(body) < 4 {
			return nil, ShipCursor{}, fmt.Errorf("storage: snapshot record %d: truncated length", i)
		}
		n := binary.BigEndian.Uint32(body)
		if n > wire.MaxFrameSize {
			return nil, ShipCursor{}, fmt.Errorf("storage: snapshot record %d: %d bytes exceeds the %d-byte record cap", i, n, wire.MaxFrameSize)
		}
		if uint64(len(body)) < 4+uint64(n)+4 {
			return nil, ShipCursor{}, fmt.Errorf("storage: snapshot record %d: truncated payload", i)
		}
		payload := body[4 : 4+n]
		if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(body[4+n:]) {
			return nil, ShipCursor{}, fmt.Errorf("storage: snapshot record %d: payload checksum mismatch", i)
		}
		body = body[4+n+4:]
		r := wire.NewBuffer(payload)
		name, err := r.String()
		if err != nil {
			return nil, ShipCursor{}, fmt.Errorf("storage: snapshot record %d: %w", i, err)
		}
		if name == "" {
			return nil, ShipCursor{}, fmt.Errorf("storage: snapshot record %d: empty table name", i)
		}
		if seen[name] {
			return nil, ShipCursor{}, fmt.Errorf("storage: snapshot repeats table %q", name)
		}
		seen[name] = true
		t, err := wire.DecodeTable(r)
		if err != nil {
			return nil, ShipCursor{}, fmt.Errorf("storage: snapshot record %d (%q): %w", i, name, err)
		}
		if r.Remaining() != 0 {
			return nil, ShipCursor{}, fmt.Errorf("storage: snapshot record %d (%q): %d trailing payload bytes", i, name, r.Remaining())
		}
		recs = append(recs, snapRecord{name: name, table: t, payload: payload})
	}
	if len(body) != 0 {
		return nil, ShipCursor{}, fmt.Errorf("storage: %d snapshot bytes past the declared %d records", len(body), count)
	}
	return recs, cur, nil
}

// InstallSnapshot verifies data as a complete encoded snapshot and, on
// success, atomically replaces the store's entire contents with it,
// returning the embedded cursor the caller resumes tailing from. On ANY
// failure — a byte the checksums disown, a table that will not decode,
// a log rewrite that cannot complete — the store keeps its previous
// state and log, exactly as Compact does.
//
// For a durable store the snapshot's tables are first written out as a
// fresh log (one store record each) and swapped in under the rotate
// discipline of Compact: temp file, fsync, epoch rotation, rename. Only
// after the swap is the in-memory catalogue replaced and the shipping
// base recorded, so a crash at any point leaves either the old durable
// state or the new one — never a blend.
func (s *Store) InstallSnapshot(data []byte) (ShipCursor, error) {
	recs, cur, err := decodeSnapshot(data)
	if err != nil {
		return ShipCursor{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.lockAllEntries()
	if s.wal != nil {
		tmpPath := s.path + ".snapinstall"
		tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o600)
		if err != nil {
			unlockEntries(entries, false)
			return ShipCursor{}, fmt.Errorf("storage: creating snapshot-install log: %w", err)
		}
		var buf []byte
		var size int64
		for _, rec := range recs {
			buf = appendWALRecord(buf[:0], opStore, rec.payload)
			if _, err := tmp.Write(buf); err != nil {
				_ = tmp.Close()
				os.Remove(tmpPath)
				unlockEntries(entries, false)
				return ShipCursor{}, fmt.Errorf("storage: writing snapshot-install log: %w", err)
			}
			size += int64(len(buf))
		}
		//phlint:ignore lockio log rotation is stop-the-world by design: every table is quiesced and the swap must be atomic with the catalogue
		if err := s.rotateLog(tmp, tmpPath, size, uint64(len(recs))); err != nil {
			unlockEntries(entries, false)
			return ShipCursor{}, err
		}
	}
	unlockEntries(entries, true)
	m := make(map[string]*tableEntry, len(recs))
	for _, rec := range recs {
		m[rec.name] = newTableEntry(rec.table, s.clock.Add(1))
	}
	s.tables = m
	if s.cache != nil {
		s.cache = cache.New(0)
	}
	if s.wal == nil {
		// The durable path's rotateLog already dropped the serving cache.
		s.snapMu.Lock()
		s.snapBuf = nil
		s.snapMu.Unlock()
	}
	//phlint:ignore lockio the sidecar fsync must run while s.mu freezes the base/log state it records
	if err := s.setShipBaseLocked(cur.Epoch, cur.Seq); err != nil {
		// A failed sidecar write only costs a re-bootstrap after the next
		// restart; the in-memory base is sound for this process.
		b := shipBase{primaryEpoch: cur.Epoch, primarySeq: cur.Seq}
		if s.wal != nil {
			b.localRecs = s.wal.records()
		}
		s.base, s.baseValid = b, true
	}
	return cur, nil
}
