package crypto

import "fmt"

// PRP is a length-preserving pseudorandom permutation over byte strings of a
// fixed length, built as a four-round Feistel network with HMAC-SHA256 round
// functions (the Luby–Rackoff construction; four rounds give strong PRP
// security under the PRF assumption).
//
// The Song–Wagner–Perrig scheme needs a deterministic, invertible
// pre-encryption E_{k”} on n-byte words where n is the scheme's word length
// — typically not a cipher block size — so a block cipher alone does not
// fit; a Feistel network over an arbitrary split does.
type PRP struct {
	rounds [4]*PRF
	n      int // permuted string length in bytes
	lsize  int // left half size; right half is n-lsize
}

// NewPRP builds a PRP over strings of length n >= 2 bytes, deriving the four
// round keys from the given key.
func NewPRP(key Key, n int) (*PRP, error) {
	if n < 2 {
		return nil, fmt.Errorf("crypto: prp: length must be >= 2 bytes, got %d", n)
	}
	p := &PRP{n: n, lsize: n / 2}
	master := NewPRF(key)
	for i := range p.rounds {
		p.rounds[i] = NewPRF(master.DeriveKey(fmt.Sprintf("prp/round/%d", i), nil))
	}
	return p, nil
}

// Length returns the byte length of the permuted strings.
func (p *PRP) Length() int { return p.n }

// Encrypt applies the permutation to src and returns the result. src must
// have length Length().
func (p *PRP) Encrypt(src []byte) ([]byte, error) {
	if len(src) != p.n {
		return nil, fmt.Errorf("crypto: prp: encrypt expects %d bytes, got %d", p.n, len(src))
	}
	l := append([]byte(nil), src[:p.lsize]...)
	r := append([]byte(nil), src[p.lsize:]...)
	for i := 0; i < 4; i++ {
		l, r = p.round(i, l, r)
	}
	return append(l, r...), nil
}

// Decrypt inverts the permutation. src must have length Length().
func (p *PRP) Decrypt(src []byte) ([]byte, error) {
	if len(src) != p.n {
		return nil, fmt.Errorf("crypto: prp: decrypt expects %d bytes, got %d", p.n, len(src))
	}
	l := append([]byte(nil), src[:p.lsize]...)
	r := append([]byte(nil), src[p.lsize:]...)
	for i := 3; i >= 0; i-- {
		l, r = p.unround(i, l, r)
	}
	return append(l, r...), nil
}

// round computes one forward Feistel round: (l, r) -> (r', l xor F_i(r))
// generalised to unbalanced halves: the round function output always matches
// the half it is XORed into.
func (p *PRP) round(i int, l, r []byte) (nl, nr []byte) {
	f := p.rounds[i].Sum(r, len(l))
	nr = make([]byte, len(l))
	for j := range nr {
		nr[j] = l[j] ^ f[j]
	}
	return r, nr
}

// unround inverts round i: given (r, l xor F_i(r)) recover (l, r).
func (p *PRP) unround(i int, nl, nr []byte) (l, r []byte) {
	f := p.rounds[i].Sum(nl, len(nr))
	l = make([]byte, len(nr))
	for j := range l {
		l[j] = nr[j] ^ f[j]
	}
	return l, nl
}
