package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/games"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/schemes/bucket"
	"repro/internal/schemes/damiani"
	"repro/internal/schemes/detph"
	"repro/internal/schemes/gohph"
)

// SchemeNames lists the schemes the experiments compare, in report order:
// the paper's construction and its second instantiation ("others can be
// used instead" — Goh's secure indexes) first, then the three
// deterministic-index comparators.
var SchemeNames = []string{core.SchemeID, gohph.SchemeID, bucket.SchemeID, damiani.SchemeID, detph.SchemeID}

// Factory returns a games.SchemeFactory for the named scheme, drawing a
// fresh random key on every call (one per game trial).
func Factory(name string) (games.SchemeFactory, error) {
	switch name {
	case core.SchemeID:
		return func(s *relation.Schema) (ph.Scheme, error) {
			key, err := crypto.RandomKey()
			if err != nil {
				return nil, err
			}
			return core.New(key, s, core.Options{})
		}, nil
	case bucket.SchemeID:
		return func(s *relation.Schema) (ph.Scheme, error) {
			key, err := crypto.RandomKey()
			if err != nil {
				return nil, err
			}
			return bucket.New(key, s, bucket.Options{})
		}, nil
	case damiani.SchemeID:
		return func(s *relation.Schema) (ph.Scheme, error) {
			key, err := crypto.RandomKey()
			if err != nil {
				return nil, err
			}
			return damiani.New(key, s, damiani.Options{})
		}, nil
	case detph.SchemeID:
		return func(s *relation.Schema) (ph.Scheme, error) {
			key, err := crypto.RandomKey()
			if err != nil {
				return nil, err
			}
			return detph.New(key, s)
		}, nil
	case gohph.SchemeID:
		return func(s *relation.Schema) (ph.Scheme, error) {
			key, err := crypto.RandomKey()
			if err != nil {
				return nil, err
			}
			return gohph.New(key, s, gohph.Options{})
		}, nil
	default:
		return nil, fmt.Errorf("bench: unknown scheme %q", name)
	}
}

// MustFactory is Factory for statically known names.
func MustFactory(name string) games.SchemeFactory {
	f, err := Factory(name)
	if err != nil {
		panic(err)
	}
	return f
}
