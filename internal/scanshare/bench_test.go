package scanshare

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ph"
)

// benchRiders measures R simultaneous cold queries against one table,
// either riding a shared pass or each running its own core.Evaluate —
// the per-query baseline the batch fanout used to force.
func benchRiders(b *testing.B, riders int, shared bool) {
	f := newFixture(b, 4096, 42)
	queries := make([]*ph.EncryptedQuery, riders)
	for i := range queries {
		queries[i] = f.nameQuery(b, fmt.Sprintf("Bench%03d", i))
	}
	snap := Snapshot{SchemeID: f.et.SchemeID, Meta: f.et.Meta, Tuples: f.et.Tuples}
	key := new(int)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(0)
		var wg sync.WaitGroup
		for _, q := range queries {
			wg.Add(1)
			go func(q *ph.EncryptedQuery) {
				defer wg.Done()
				if shared {
					if _, ok, err := s.Scan(key, snap, q); err != nil || !ok {
						b.Errorf("shared scan: ok=%v err=%v", ok, err)
					}
				} else {
					if _, err := core.Evaluate(f.et, q); err != nil {
						b.Error(err)
					}
				}
			}(q)
		}
		wg.Wait()
	}
}

func BenchmarkSharedScan2Riders(b *testing.B)  { benchRiders(b, 2, true) }
func BenchmarkSharedScan16Riders(b *testing.B) { benchRiders(b, 16, true) }
func BenchmarkSharedScan64Riders(b *testing.B) { benchRiders(b, 64, true) }

func BenchmarkPerQueryScan2Riders(b *testing.B)  { benchRiders(b, 2, false) }
func BenchmarkPerQueryScan16Riders(b *testing.B) { benchRiders(b, 16, false) }
func BenchmarkPerQueryScan64Riders(b *testing.B) { benchRiders(b, 64, false) }
