package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/scanshare"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/workload"
)

// RunE21 regenerates experiment E21 (extension): shared-scan multi-query
// batching under a cold-query storm. A thundering herd of `clients`
// simultaneous cold queries for the same hot trapdoor lands on one
// table; before scan sharing each query paid its own full ψ pass, after
// it the herd rides a single pass.
//
// Three arms, result cache disabled throughout so the measurement
// isolates scan sharing from result caching:
//
//  1. baseline: one cold query alone — the floor any storm arm is
//     compared against;
//  2. shared: the herd through the scan-sharing layer (dedup-attach
//     collapses identical trapdoors onto one rider, late arrivals ride
//     the in-flight pass);
//  3. per-query: the same herd with the sharer removed — every query
//     runs its own full scan, the pre-sharing behaviour.
//
// Gates (the run errors if any fails):
//
//   - the shared storm completes within 2x the single cold scan;
//   - the per-query storm takes at least 4x the shared storm (the
//     theoretical gap is ~clients-fold; 4x is the conservative floor
//     that stays robust on loaded CI machines);
//   - every rider's answer is byte-identical to core.EvaluateSerial
//     AND decrypts to exactly the plaintext selection;
//   - the shared storm draws exactly one scheduler-budget allotment per
//     pass, regardless of rider count.
//
// Capacity model (disclosed): everything runs in-process; scan
// parallelism in every arm is bounded by the same GOMAXPROCS-sized
// scheduler budget, so the arms differ only in how many full scans the
// herd costs, not in per-scan parallelism.
func RunE21(tuples, clients int, seed int64) (*Table, error) {
	t := &Table{
		ID: "E21",
		Title: fmt.Sprintf("shared-scan batching under a cold-query storm (table: %d tuples, %d riders, GOMAXPROCS=%d)",
			tuples, clients, runtime.GOMAXPROCS(0)),
		Header: []string{"arm", "unit", "wall ns"},
		Notes: []string{
			"result cache disabled in all arms: the measurement isolates scan sharing from result caching",
			"capacity model: in-process; scan workers in every arm are bounded by the same GOMAXPROCS-sized scheduler budget, so arms differ in scan count, not per-scan parallelism",
		},
	}

	key, err := crypto.RandomKey()
	if err != nil {
		return nil, err
	}
	table, err := workload.Employees(tuples, seed)
	if err != nil {
		return nil, err
	}
	scheme, err := core.New(key, table.Schema(), core.Options{})
	if err != nil {
		return nil, err
	}
	ct, err := scheme.EncryptTable(table)
	if err != nil {
		return nil, err
	}
	// The hot trapdoor is a selective point query (one employee's name):
	// the storm's interesting cost is the shared scan, and a narrow
	// result keeps the per-rider answer materialisation — which scales
	// with riders x hits in EVERY arm — from drowning the scan on small
	// machines.
	hotEq := relation.Eq{Column: "name", Value: table.Tuple(0)[0]}
	hotQ, err := scheme.EncryptQuery(hotEq)
	if err != nil {
		return nil, err
	}
	want, err := core.EvaluateSerial(ct, hotQ)
	if err != nil {
		return nil, err
	}

	// --- Arm 1: one cold query alone (median of trials). ---
	single, err := storm(ct, hotQ, want, 1, true)
	if err != nil {
		return nil, err
	}
	t.AddRow("single cold scan", "per scan", fmt.Sprintf("%d", single.Nanoseconds()))

	// --- Arm 2: shared herd, with the budget-allotment gate wired in. ---
	budget := sched.NewBudget(runtime.GOMAXPROCS(0))
	prev := sched.SetProcess(budget)
	shared, sharedStats, err := stormStats(ct, hotQ, want, clients, true)
	sched.SetProcess(prev)
	if err != nil {
		return nil, err
	}
	t.AddRow(fmt.Sprintf("%d-rider storm: shared pass", clients), "per storm", fmt.Sprintf("%d", shared.Nanoseconds()))
	if got := budget.Stats().Acquires; got != sharedStats.Passes {
		return nil, fmt.Errorf("bench: shared storm drew %d budget allotments over %d passes; want exactly one per pass",
			got, sharedStats.Passes)
	}
	if sharedStats.Riders+sharedStats.Attached == 0 {
		return nil, fmt.Errorf("bench: shared storm never reached the sharer (stats %+v)", sharedStats)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("shared arm sharer counters (summed over trials): %d passes, %d riders, %d attached, %d late joins — identical trapdoors collapse onto one rider per pass",
		sharedStats.Passes, sharedStats.Riders, sharedStats.Attached, sharedStats.LateJoins))

	// --- Arm 3: the same herd, sharer removed. ---
	perQuery, err := storm(ct, hotQ, want, clients, false)
	if err != nil {
		return nil, err
	}
	t.AddRow(fmt.Sprintf("%d-rider storm: per-query scans", clients), "per storm", fmt.Sprintf("%d", perQuery.Nanoseconds()))

	// --- Gates. ---
	if shared > 2*single {
		return nil, fmt.Errorf("bench: shared %d-rider storm took %v, more than 2x the single cold scan %v",
			clients, shared, single)
	}
	if perQuery < 4*shared {
		return nil, fmt.Errorf("bench: per-query storm %v is under 4x the shared storm %v; sharing gained too little",
			perQuery, shared)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("gates passed: shared storm at %.2fx the single cold scan (<= 2x), per-query storm at %.1fx the shared storm (>= 4x, theoretical ~%dx)",
		float64(shared)/float64(single), float64(perQuery)/float64(shared), clients))
	t.Notes = append(t.Notes, "correctness gate: every rider's answer in every arm verified byte-identical to core.EvaluateSerial and decrypted to exactly the plaintext selection")

	// Plaintext equivalence, once against the shared ground truth: the
	// decrypted answer (false positives dropped client-side) must equal
	// the plaintext selection as a multiset — EncryptTable deliberately
	// emits tuples in random order, so row order is not comparable.
	dec, err := scheme.DecryptResult(hotEq, want)
	if err != nil {
		return nil, err
	}
	rows := map[string]int{}
	for i := 0; i < table.Len(); i++ {
		tp := table.Tuple(i)
		ok, err := hotEq.Eval(table.Schema(), tp)
		if err != nil {
			return nil, err
		}
		if ok {
			rows[fmt.Sprintf("%v", tp)]++
		}
	}
	for i := 0; i < dec.Len(); i++ {
		k := fmt.Sprintf("%v", dec.Tuple(i))
		if rows[k] == 0 {
			return nil, fmt.Errorf("bench: decrypted row %v is not in the plaintext selection", k)
		}
		rows[k]--
	}
	for k, c := range rows {
		if c != 0 {
			return nil, fmt.Errorf("bench: plaintext selection row %v missing from the decrypted answer", k)
		}
	}

	// --- Informational: a skewed multi-key storm spread over time, the
	// open-loop shape the serving tier actually sees. ---
	if err := skewedStorm(t, scheme, ct, clients, seed, single); err != nil {
		return nil, err
	}
	return t, nil
}

// storm replays a thundering herd of identical cold queries (all at t=0,
// per workload.Storm with Rate 0) and returns the median wall time over
// a few trials, checking every answer against the serial ground truth.
func storm(ct *ph.EncryptedTable, q *ph.EncryptedQuery, want *ph.Result, clients int, share bool) (time.Duration, error) {
	d, _, err := stormStats(ct, q, want, clients, share)
	return d, err
}

func stormStats(ct *ph.EncryptedTable, q *ph.EncryptedQuery, want *ph.Result, clients int, share bool) (time.Duration, scanshare.Stats, error) {
	const trials = 3
	var stats scanshare.Stats
	walls := make([]time.Duration, 0, trials)
	for trial := 0; trial < trials; trial++ {
		s := storage.NewMemory()
		s.SetResultCache(nil)
		if !share {
			s.SetSharer(nil)
		}
		if err := s.Put("emp", ct); err != nil {
			return 0, stats, err
		}
		arrivals, err := workload.Storm(workload.StormConfig{Arrivals: clients, Rate: 0, Keys: 1}, int64(trial))
		if err != nil {
			return 0, stats, err
		}
		errs := make([]error, len(arrivals))
		results := make([]*ph.Result, len(arrivals))
		var wg sync.WaitGroup
		start := time.Now()
		for i := range arrivals {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = s.Query("emp", q)
			}(i)
		}
		wg.Wait()
		wall := time.Since(start)
		// Verification runs outside the timed region: it is the gate's
		// concern, not the serving path's.
		for i := range arrivals {
			if errs[i] == nil {
				errs[i] = sameResult(results[i], want)
			}
			if errs[i] != nil {
				return 0, stats, fmt.Errorf("bench: storm rider %d (share=%v): %w", i, share, errs[i])
			}
		}
		walls = append(walls, wall)
		// Aggregate sharer counters across trials so the caller's
		// one-allotment-per-pass check covers every pass that ran.
		st := s.ShareStats()
		stats.Passes += st.Passes
		stats.Riders += st.Riders
		stats.Attached += st.Attached
		stats.LateJoins += st.LateJoins
		stats.Shards += st.Shards
		stats.Inline += st.Inline
		stats.Declined += st.Declined
	}
	// Median of trials.
	for i := 1; i < len(walls); i++ {
		for j := i; j > 0 && walls[j] < walls[j-1]; j-- {
			walls[j], walls[j-1] = walls[j-1], walls[j]
		}
	}
	return walls[len(walls)/2], stats, nil
}

// skewedStorm runs the informational open-loop arm: arrivals spread over
// roughly two scan durations on a Zipf-skewed key set, the shape the
// batch fanout path sees in practice. No gate — the row documents how
// sharing behaves when the herd is neither perfectly aligned nor
// single-key.
func skewedStorm(t *Table, scheme *core.PH, ct *ph.EncryptedTable, clients int, seed int64, scan time.Duration) error {
	keys := 4
	queries := make([]*ph.EncryptedQuery, keys)
	wants := make([]*ph.Result, keys)
	for k := 0; k < keys; k++ {
		q, err := scheme.EncryptQuery(relation.Eq{Column: "dept", Value: relation.String(workload.Departments[k])})
		if err != nil {
			return err
		}
		queries[k] = q
		if wants[k], err = core.EvaluateSerial(ct, q); err != nil {
			return err
		}
	}
	rate := float64(clients) / (2 * scan.Seconds())
	arrivals, err := workload.Storm(workload.StormConfig{Arrivals: clients, Rate: rate, Keys: keys, Skew: 1.3}, seed)
	if err != nil {
		return err
	}
	s := storage.NewMemory()
	s.SetResultCache(nil)
	if err := s.Put("emp", ct); err != nil {
		return err
	}
	errs := make([]error, len(arrivals))
	var wg sync.WaitGroup
	start := time.Now()
	for i, a := range arrivals {
		wg.Add(1)
		go func(i int, a workload.Arrival) {
			defer wg.Done()
			time.Sleep(time.Until(start.Add(a.At)))
			got, err := s.Query("emp", queries[a.Key])
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = sameResult(got, wants[a.Key])
		}(i, a)
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("bench: skewed storm rider %d: %w", i, err)
		}
	}
	st := s.ShareStats()
	t.AddRow(fmt.Sprintf("%d-rider open-loop skewed storm (%d keys, Zipf 1.3): shared", clients, keys),
		"per storm", fmt.Sprintf("%d", wall.Nanoseconds()))
	t.Notes = append(t.Notes, fmt.Sprintf("open-loop skewed arm (informational): arrivals Poisson-spread over ~2 scan durations; sharer counters: %d passes, %d riders, %d attached, %d late joins",
		st.Passes, st.Riders, st.Attached, st.LateJoins))
	return nil
}
