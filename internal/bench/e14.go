package bench

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/workload"
)

// RunE14 regenerates experiment E14 (extension): the multi-client server
// before/after report for the scheduler budget and the trapdoor-keyed
// result cache. Four measurements, each contrasting the PR 1 path (full
// scan per query, GOMAXPROCS workers per query, no cache) with the
// engine path:
//
//  1. repeated hot-word query, uncached vs answered from the cache;
//  2. append-then-requery, full rescan vs delta scan of just the tail;
//  3. p99 latency across `clients` concurrent clients, oversubscribed
//     uncached vs budget + cache;
//  4. a correctness gate: every cached answer produced while measuring is
//     verified byte-identical to core.EvaluateSerial ground truth.
func RunE14(tuples, clients int, seed int64) (*Table, error) {
	t := &Table{
		ID: "E14",
		Title: fmt.Sprintf("result cache & scheduler budget: before vs after (table: %d tuples, %d clients, GOMAXPROCS=%d)",
			tuples, clients, runtime.GOMAXPROCS(0)),
		Header: []string{"path", "unit", "ns/op", "B/op", "allocs/op"},
		Notes: []string{
			"'PR 1' rows reproduce the pre-cache behaviour: full table scan per query; the concurrent row additionally inflates the scheduler budget so every query fans out GOMAXPROCS workers (the old oversubscription)",
			"'engine' rows use the storage result cache (trapdoor-keyed, versioned) and the process-wide scheduler budget",
		},
	}

	key, err := crypto.RandomKey()
	if err != nil {
		return nil, err
	}
	table, err := workload.Employees(tuples, seed)
	if err != nil {
		return nil, err
	}
	scheme, err := core.New(key, table.Schema(), core.Options{})
	if err != nil {
		return nil, err
	}
	ct, err := scheme.EncryptTable(table)
	if err != nil {
		return nil, err
	}
	// The hot word is a rare department: the interesting cost is the scan,
	// not the result-size-proportional cost of materialising matches.
	hotQ, err := scheme.EncryptQuery(relation.Eq{Column: "dept", Value: relation.String("FIN")})
	if err != nil {
		return nil, err
	}

	// --- 1. Repeated hot-word query: uncached vs cached. ---
	uncachedStore := storage.NewMemory()
	uncachedStore.SetResultCache(nil)
	if err := uncachedStore.Put("emp", ct); err != nil {
		return nil, err
	}
	uncached := testing.Benchmark(func(b *testing.B) { benchStoreQuery(b, uncachedStore, hotQ) })
	addBenchRow(t, "hot query: PR 1 (uncached full scan)", "per query", uncached)

	cachedStore := storage.NewMemory()
	if err := cachedStore.Put("emp", ct); err != nil {
		return nil, err
	}
	if _, err := cachedStore.Query("emp", hotQ); err != nil { // warm the cache
		return nil, err
	}
	cached := testing.Benchmark(func(b *testing.B) { benchStoreQuery(b, cachedStore, hotQ) })
	addBenchRow(t, "hot query: engine (cached)", "per query", cached)
	if cached.NsPerOp() > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("repeated hot-word query speedup from the cache: %.1fx",
			float64(uncached.NsPerOp())/float64(cached.NsPerOp())))
	}

	// --- 4 (interleaved with 1). Correctness gate: cached answers are
	// byte-identical to the serial reference evaluation. ---
	snapshot, err := cachedStore.Get("emp")
	if err != nil {
		return nil, err
	}
	want, err := core.EvaluateSerial(snapshot, hotQ)
	if err != nil {
		return nil, err
	}
	got, err := cachedStore.Query("emp", hotQ)
	if err != nil {
		return nil, err
	}
	if err := sameResult(got, want); err != nil {
		return nil, fmt.Errorf("bench: cached result diverges from EvaluateSerial: %w", err)
	}
	t.Notes = append(t.Notes, "correctness gate: cached hot-word answer verified byte-identical to core.EvaluateSerial")

	// --- 2. Append-then-requery: full rescan vs delta scan. Fresh stores,
	// so the appended tuples don't skew the later measurements. ---
	oneTuple, err := encryptFreshTuples(scheme, 1, seed+1)
	if err != nil {
		return nil, err
	}
	fullStore := storage.NewMemory()
	fullStore.SetResultCache(nil)
	if err := fullStore.Put("emp", ct); err != nil {
		return nil, err
	}
	full := testing.Benchmark(func(b *testing.B) { benchAppendRequery(b, fullStore, oneTuple, hotQ) })
	addBenchRow(t, "append+requery: PR 1 (full rescan)", "per append+query", full)
	deltaStore := storage.NewMemory()
	if err := deltaStore.Put("emp", ct); err != nil {
		return nil, err
	}
	if _, err := deltaStore.Query("emp", hotQ); err != nil { // warm
		return nil, err
	}
	delta := testing.Benchmark(func(b *testing.B) { benchAppendRequery(b, deltaStore, oneTuple, hotQ) })
	addBenchRow(t, "append+requery: engine (delta scan)", "per append+query", delta)
	deltaStats := deltaStore.CacheStats()
	if deltaStats.Deltas == 0 {
		return nil, fmt.Errorf("bench: append+requery did not take the delta path (stats %+v)", deltaStats)
	}
	if delta.NsPerOp() > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("append-then-requery rescans only the 1-tuple tail: %.1fx faster than the full %d-tuple rescan (%d delta scans recorded)",
			float64(full.NsPerOp())/float64(delta.NsPerOp()), tuples, deltaStats.Deltas))
	}

	// --- 3. Concurrent clients: p99 before vs after. Each client replays
	// a hot-word working set, so the engine side is answered mostly from
	// cache while the PR 1 side full-scans with an oversubscribed budget. ---
	working := make([]*ph.EncryptedQuery, 0, 4)
	for _, dept := range []string{"FIN", "LEGAL", "OPS", "R&D"} {
		q, err := scheme.EncryptQuery(relation.Eq{Column: "dept", Value: relation.String(dept)})
		if err != nil {
			return nil, err
		}
		working = append(working, q)
	}
	const perClient = 16
	// The engine side serves the steady state: every working-set word is
	// warmed first, so the p99 reflects hot-word serving, which is the
	// cache's claim. PR 1 has no warm state to give — every query pays a
	// full scan regardless.
	for _, q := range working {
		if _, err := cachedStore.Query("emp", q); err != nil {
			return nil, err
		}
	}
	// Before: no cache, and a budget so large every query can fan out
	// GOMAXPROCS workers — the PR 1 oversubscription, reproduced.
	prev := sched.SetProcess(sched.NewBudget(clients * runtime.GOMAXPROCS(0)))
	p99Before, err := concurrentP99(uncachedStore, working, clients, perClient)
	sched.SetProcess(prev)
	if err != nil {
		return nil, err
	}
	t.AddRow(fmt.Sprintf("%d-client p99: PR 1 (uncached, oversubscribed)", clients), "per query", fmt.Sprintf("%d", p99Before.Nanoseconds()), "-", "-")
	p99After, err := concurrentP99(cachedStore, working, clients, perClient)
	if err != nil {
		return nil, err
	}
	t.AddRow(fmt.Sprintf("%d-client p99: engine (cache + budget)", clients), "per query", fmt.Sprintf("%d", p99After.Nanoseconds()), "-", "-")
	if p99After > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("%d-client p99 improvement at GOMAXPROCS=%d: %.1fx (engine side measured at steady state: working set warmed once, then %d queries per client)",
			clients, runtime.GOMAXPROCS(0), float64(p99Before)/float64(p99After), perClient))
	}
	st := cachedStore.CacheStats()
	t.Notes = append(t.Notes, fmt.Sprintf("engine cache counters over the whole run: %d hits, %d delta scans, %d misses, %d evictions",
		st.Hits, st.Deltas, st.Misses, st.Evictions))
	return t, nil
}

// benchStoreQuery times repeated evaluation of one query via the store.
func benchStoreQuery(b *testing.B, s *storage.Store, q *ph.EncryptedQuery) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query("emp", q); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAppendRequery times the append-one-tuple-then-requery cycle.
func benchAppendRequery(b *testing.B, s *storage.Store, tuples []ph.EncryptedTuple, q *ph.EncryptedQuery) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Append("emp", tuples); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Query("emp", q); err != nil {
			b.Fatal(err)
		}
	}
}

// encryptFreshTuples encrypts n new employee tuples under the scheme.
func encryptFreshTuples(scheme *core.PH, n int, seed int64) ([]ph.EncryptedTuple, error) {
	t, err := workload.Employees(n, seed)
	if err != nil {
		return nil, err
	}
	ct, err := scheme.EncryptTable(t)
	if err != nil {
		return nil, err
	}
	return ct.Tuples, nil
}

// concurrentP99 runs clients goroutines, each issuing perClient queries
// round-robin over the working set, and returns the 99th-percentile
// per-query latency.
func concurrentP99(s *storage.Store, working []*ph.EncryptedQuery, clients, perClient int) (time.Duration, error) {
	latencies := make([][]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				q := working[(c+i)%len(working)]
				t0 := time.Now()
				if _, err := s.Query("emp", q); err != nil {
					errs[c] = err
					return
				}
				lat = append(lat, time.Since(t0))
			}
			latencies[c] = lat
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	var all []time.Duration
	for _, lat := range latencies {
		all = append(all, lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	idx := (len(all)*99 + 99) / 100
	if idx > len(all) {
		idx = len(all)
	}
	return all[idx-1], nil
}

// sameResult reports whether two results are byte-identical.
func sameResult(a, b *ph.Result) error {
	if len(a.Positions) != len(b.Positions) || len(a.Tuples) != len(b.Tuples) {
		return fmt.Errorf("size mismatch: %d/%d positions, %d/%d tuples",
			len(a.Positions), len(b.Positions), len(a.Tuples), len(b.Tuples))
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			return fmt.Errorf("position %d: %d != %d", i, a.Positions[i], b.Positions[i])
		}
	}
	for i := range a.Tuples {
		at, bt := a.Tuples[i], b.Tuples[i]
		if !bytes.Equal(at.ID, bt.ID) || !bytes.Equal(at.Blob, bt.Blob) || len(at.Words) != len(bt.Words) {
			return fmt.Errorf("tuple %d differs", i)
		}
		for j := range at.Words {
			if !bytes.Equal(at.Words[j], bt.Words[j]) {
				return fmt.Errorf("tuple %d word %d differs", i, j)
			}
		}
	}
	return nil
}
