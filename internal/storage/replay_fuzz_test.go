package storage

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/wire"
)

// fuzzStorePayload builds a valid opStore payload for a tiny table.
func fuzzStorePayload(name string, tuples int) []byte {
	p := wire.AppendString(nil, name)
	return wire.EncodeTable(p, fakeTable(tuples))
}

// fuzzInsertPayload builds a valid opInsert payload.
func fuzzInsertPayload(name string, tuples int) []byte {
	p := wire.AppendString(nil, name)
	p = wire.AppendU32(p, uint32(tuples))
	for _, tp := range fakeTable(tuples).Tuples {
		p = wire.EncodeTuple(p, tp)
	}
	return p
}

// v0Record frames a legacy (no-CRC) record: len:u32 | op:u8 | payload.
func v0Record(op byte, payload []byte) []byte {
	rec := binary.BigEndian.AppendUint32(nil, uint32(len(payload)))
	rec = append(rec, op)
	return append(rec, payload...)
}

// FuzzReplay feeds arbitrary bytes to the WAL replay path. Whatever the
// file holds — torn headers, corrupt CRCs, hostile length fields, mixed
// v0/v1 generations, pure junk — replay must never panic, and must
// stop-and-truncate at the first record it cannot vouch for: after a
// successful open, a reopen must reproduce exactly the same state, and
// the on-disk tail it truncated must stay truncated.
func FuzzReplay(f *testing.F) {
	store := fuzzStorePayload("emp", 3)
	insert := fuzzInsertPayload("emp", 2)
	drop := wire.AppendString(nil, "emp")

	valid := appendWALRecord(nil, opStore, store)
	valid = appendWALRecord(valid, opInsert, insert)

	// Clean logs, both generations and mixed.
	f.Add([]byte{})
	f.Add(valid)
	f.Add(append(appendWALRecord(nil, opStore, store), appendWALRecord(nil, opDrop, drop)...))
	f.Add(v0Record(opStore, store))
	f.Add(append(v0Record(opStore, store), appendWALRecord(nil, opInsert, insert)...))
	f.Add(append(appendWALRecord(nil, opStore, store), v0Record(opInsert, insert)...))

	// Torn tails: a prefix of a valid record at every interesting cut.
	f.Add(valid[:3])                                // mid v1 header
	f.Add(valid[:walV1HdrLen])                      // header only, payload missing
	f.Add(valid[:len(valid)-1])                     // last payload byte missing
	f.Add(v0Record(opStore, store)[:walV0HdrLen-2]) // torn v0 header

	// Corrupt CRC: flip a payload byte under a valid header.
	corrupt := append([]byte(nil), valid...)
	corrupt[walV1HdrLen+4] ^= 0xFF
	f.Add(corrupt)

	// Hostile lengths: v1 and v0 headers claiming absurd sizes.
	huge := []byte{walMagic, opStore, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}
	f.Add(huge)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, opStore})
	// Length just past the cap (MaxFrameSize + 1).
	past := []byte{walMagic, opStore}
	past = binary.BigEndian.AppendUint32(past, uint32(wire.MaxFrameSize+1))
	past = binary.BigEndian.AppendUint32(past, 0)
	f.Add(past)

	// Valid record followed by garbage: replay must keep the record and
	// truncate the garbage.
	f.Add(append(append([]byte(nil), valid...), 0xDE, 0xAD, 0xBE, 0xEF))

	// An unknown op behind a valid CRC (v1 apply failure is a hard error,
	// not corruption) and behind a v0 frame (treated as corruption).
	f.Add(appendWALRecord(nil, 0x7F, []byte("junk")))
	f.Add(v0Record(0x7F, []byte("junk")))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		s, err := OpenOptions(path, Options{Sync: SyncNever})
		if err != nil {
			return // refused loudly: acceptable, as long as nothing panicked
		}
		list1 := s.List()
		_, head1 := s.LogHead()
		if err := s.Close(); err != nil {
			t.Fatalf("close after replay: %v", err)
		}
		// The truncated log must reopen to the identical state.
		s2, err := OpenOptions(path, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("reopen after truncating replay: %v", err)
		}
		defer s2.Close()
		list2 := s2.List()
		_, head2 := s2.LogHead()
		if !reflect.DeepEqual(list1, list2) {
			t.Fatalf("reopen changed state:\nfirst:  %v\nsecond: %v", list1, list2)
		}
		if head1 != head2 {
			t.Fatalf("reopen changed record head: %d -> %d", head1, head2)
		}
	})
}
