package swp

import (
	"fmt"

	"repro/internal/crypto"
)

// This file implements the three precursor schemes from Song, Wagner and
// Perrig's paper, whose documented shortcomings motivate the final scheme
// (the Scheme type in swp.go) that the ICDE'06 construction builds on:
//
//	Scheme I   (basic)               — searching reveals the word *and* the
//	                                   global checksum key, enabling
//	                                   dictionary tests everywhere.
//	Scheme II  (controlled search)   — per-word keys k_W = f_{k'}(W) stop
//	                                   the dictionary attack, but the query
//	                                   still reveals the plaintext word.
//	Scheme III (hidden search)       — searching on the pre-encryption
//	                                   X = E_{k''}(W) hides the word, but
//	                                   ciphertexts are no longer decryptable:
//	                                   the client can recover only the part
//	                                   of X masked by the stream.
//	Final      (scheme IV, swp.go)   — splits X into ⟨L, R⟩ and keys the
//	                                   checksum by L, restoring decryption.
//
// The variants share the final scheme's geometry (Params) so their
// behaviour is directly comparable in tests and ablations. They exist for
// study and ablation only — the construction in internal/core always uses
// the final scheme.

// BasicScheme is SWP Scheme I. Encryption XORs the word with
// ⟨S_i, F_k(S_i)⟩ under a single global checksum key; a search hands the
// server the plaintext word and that key.
type BasicScheme struct {
	params Params
	fKey   crypto.Key  // the single global checksum key
	seed   *crypto.PRF // derives per-document streams
}

// NewBasic derives a Scheme I instance.
func NewBasic(master crypto.Key, p Params) (*BasicScheme, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	root := crypto.NewPRF(master)
	return &BasicScheme{
		params: p,
		fKey:   root.DeriveKey("swp1/f", nil),
		seed:   crypto.NewPRF(root.DeriveKey("swp1/seed", nil)),
	}, nil
}

// Params returns the public parameters.
func (s *BasicScheme) Params() Params { return s.params }

// EncryptDocument encrypts the words of one document.
func (s *BasicScheme) EncryptDocument(docID []byte, words [][]byte) ([][]byte, error) {
	prg, err := crypto.NewPRG(s.seed.DeriveKey("swp1/stream", docID))
	if err != nil {
		return nil, err
	}
	nm := s.params.streamLen()
	out := make([][]byte, len(words))
	for i, w := range words {
		if len(w) != s.params.WordLen {
			return nil, fmt.Errorf("swp: basic: word %d must be %d bytes, got %d", i, s.params.WordLen, len(w))
		}
		stream := prg.Block(uint64(i), nm)
		f := checksum(s.fKey, stream, s.params.ChecksumLen)
		cw := make([]byte, s.params.WordLen)
		for j := 0; j < nm; j++ {
			cw[j] = w[j] ^ stream[j]
		}
		for j := 0; j < s.params.ChecksumLen; j++ {
			cw[nm+j] = w[nm+j] ^ f[j]
		}
		out[i] = cw
	}
	return out, nil
}

// BasicTrapdoor is what a Scheme I search discloses: the plaintext word
// itself and the global checksum key — the two leaks the later schemes
// remove.
type BasicTrapdoor struct {
	// Word is the plaintext search word, visible to the server.
	Word []byte
	// FKey is the global checksum key; with it the server can run
	// dictionary tests for any candidate word at any position.
	FKey []byte
}

// NewTrapdoor builds the Scheme I search token.
func (s *BasicScheme) NewTrapdoor(word []byte) (BasicTrapdoor, error) {
	if len(word) != s.params.WordLen {
		return BasicTrapdoor{}, fmt.Errorf("swp: basic: trapdoor word must be %d bytes", s.params.WordLen)
	}
	return BasicTrapdoor{Word: append([]byte(nil), word...), FKey: s.fKey[:]}, nil
}

// BasicMatch is the server-side test for Scheme I: it works for *any*
// candidate word once it holds the key — which is exactly the dictionary
// attack the trapdoor enables (see TestBasicSchemeDictionaryAttack). The
// test is algebraically the final scheme's with ⟨candidate, key⟩ in the
// trapdoor slots, so all variant match tests ride the same Matcher engine.
func BasicMatch(p Params, cipherword, candidate, fKey []byte) bool {
	return NewMatcher(p, Trapdoor{X: candidate, K: fKey}).Match(cipherword)
}

// ControlledScheme is SWP Scheme II: the checksum key is derived per word,
// k_W = f_{k'}(W), so a trapdoor authorises searching for exactly one word
// and nothing else. The query still reveals the plaintext word.
type ControlledScheme struct {
	params Params
	fPRF   *crypto.PRF // k' — derives per-word keys from the plaintext word
	seed   *crypto.PRF
}

// NewControlled derives a Scheme II instance.
func NewControlled(master crypto.Key, p Params) (*ControlledScheme, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	root := crypto.NewPRF(master)
	return &ControlledScheme{
		params: p,
		fPRF:   crypto.NewPRF(root.DeriveKey("swp2/f", nil)),
		seed:   crypto.NewPRF(root.DeriveKey("swp2/seed", nil)),
	}, nil
}

// Params returns the public parameters.
func (s *ControlledScheme) Params() Params { return s.params }

// wordKey derives k_W = f_{k'}(W).
func (s *ControlledScheme) wordKey(word []byte) crypto.Key {
	return crypto.KeyFromBytes(s.fPRF.Sum(word, crypto.KeySize))
}

// EncryptDocument encrypts the words of one document.
func (s *ControlledScheme) EncryptDocument(docID []byte, words [][]byte) ([][]byte, error) {
	prg, err := crypto.NewPRG(s.seed.DeriveKey("swp2/stream", docID))
	if err != nil {
		return nil, err
	}
	nm := s.params.streamLen()
	out := make([][]byte, len(words))
	for i, w := range words {
		if len(w) != s.params.WordLen {
			return nil, fmt.Errorf("swp: controlled: word %d must be %d bytes, got %d", i, s.params.WordLen, len(w))
		}
		stream := prg.Block(uint64(i), nm)
		f := checksum(s.wordKey(w), stream, s.params.ChecksumLen)
		cw := make([]byte, s.params.WordLen)
		for j := 0; j < nm; j++ {
			cw[j] = w[j] ^ stream[j]
		}
		for j := 0; j < s.params.ChecksumLen; j++ {
			cw[nm+j] = w[nm+j] ^ f[j]
		}
		out[i] = cw
	}
	return out, nil
}

// ControlledTrapdoor reveals the plaintext word (Scheme II's residual
// leak) plus that word's key — and only that word's.
type ControlledTrapdoor struct {
	// Word is the plaintext search word, still visible to the server.
	Word []byte
	// WordKey is k_W; it is useless for testing any other word.
	WordKey []byte
}

// NewTrapdoor builds the Scheme II search token.
func (s *ControlledScheme) NewTrapdoor(word []byte) (ControlledTrapdoor, error) {
	if len(word) != s.params.WordLen {
		return ControlledTrapdoor{}, fmt.Errorf("swp: controlled: trapdoor word must be %d bytes", s.params.WordLen)
	}
	k := s.wordKey(word)
	return ControlledTrapdoor{Word: append([]byte(nil), word...), WordKey: k[:]}, nil
}

// ControlledMatch is the server-side test for Scheme II.
func ControlledMatch(p Params, cipherword []byte, td ControlledTrapdoor) bool {
	return BasicMatch(p, cipherword, td.Word, td.WordKey)
}

// HiddenScheme is SWP Scheme III: like Scheme II but the server only ever
// sees the deterministic pre-encryption X = E_{k”}(W); queries no longer
// reveal plaintext. The price is decryptability: to strip the checksum
// mask the client would need k_X = f'(X), but X is exactly what it no
// longer knows for a stored ciphertext. RecoverStreamPart shows how far
// the client gets — the first n−m bytes of X — which is the gap the final
// scheme's ⟨L, R⟩ split closes.
type HiddenScheme struct {
	params Params
	pre    *crypto.PRP
	fPRF   *crypto.PRF
	seed   *crypto.PRF
}

// NewHidden derives a Scheme III instance.
func NewHidden(master crypto.Key, p Params) (*HiddenScheme, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	root := crypto.NewPRF(master)
	pre, err := crypto.NewPRP(root.DeriveKey("swp3/pre", nil), p.WordLen)
	if err != nil {
		return nil, err
	}
	return &HiddenScheme{
		params: p,
		pre:    pre,
		fPRF:   crypto.NewPRF(root.DeriveKey("swp3/f", nil)),
		seed:   crypto.NewPRF(root.DeriveKey("swp3/seed", nil)),
	}, nil
}

// Params returns the public parameters.
func (s *HiddenScheme) Params() Params { return s.params }

// xKey derives k_X = f'(X) from the whole pre-encrypted word.
func (s *HiddenScheme) xKey(x []byte) crypto.Key {
	return crypto.KeyFromBytes(s.fPRF.Sum(x, crypto.KeySize))
}

// EncryptDocument encrypts the words of one document.
func (s *HiddenScheme) EncryptDocument(docID []byte, words [][]byte) ([][]byte, error) {
	prg, err := crypto.NewPRG(s.seed.DeriveKey("swp3/stream", docID))
	if err != nil {
		return nil, err
	}
	nm := s.params.streamLen()
	out := make([][]byte, len(words))
	for i, w := range words {
		if len(w) != s.params.WordLen {
			return nil, fmt.Errorf("swp: hidden: word %d must be %d bytes, got %d", i, s.params.WordLen, len(w))
		}
		x, err := s.pre.Encrypt(w)
		if err != nil {
			return nil, err
		}
		stream := prg.Block(uint64(i), nm)
		f := checksum(s.xKey(x), stream, s.params.ChecksumLen)
		cw := make([]byte, s.params.WordLen)
		for j := 0; j < nm; j++ {
			cw[j] = x[j] ^ stream[j]
		}
		for j := 0; j < s.params.ChecksumLen; j++ {
			cw[nm+j] = x[nm+j] ^ f[j]
		}
		out[i] = cw
	}
	return out, nil
}

// NewTrapdoor builds the Scheme III token ⟨X, k_X⟩ — no plaintext inside.
func (s *HiddenScheme) NewTrapdoor(word []byte) (Trapdoor, error) {
	if len(word) != s.params.WordLen {
		return Trapdoor{}, fmt.Errorf("swp: hidden: trapdoor word must be %d bytes", s.params.WordLen)
	}
	x, err := s.pre.Encrypt(word)
	if err != nil {
		return Trapdoor{}, err
	}
	k := s.xKey(x)
	return Trapdoor{X: x, K: k[:]}, nil
}

// HiddenMatch is the server-side test for Scheme III.
func HiddenMatch(p Params, cipherword []byte, td Trapdoor) bool {
	return BasicMatch(p, cipherword, td.X, td.K)
}

// RecoverStreamPart is the best the Scheme III client can do towards
// decryption: XOR off the stream and recover the first n−m bytes of the
// pre-encrypted word. The remaining m bytes stay masked by F_{k_X}(S_i),
// and k_X depends on all of X — circularly including those masked bytes.
// The final scheme breaks this circle by keying the checksum on the
// unmasked left part only.
func (s *HiddenScheme) RecoverStreamPart(docID []byte, pos uint64, cipherword []byte) ([]byte, error) {
	if len(cipherword) != s.params.WordLen {
		return nil, fmt.Errorf("swp: hidden: cipherword must be %d bytes", s.params.WordLen)
	}
	prg, err := crypto.NewPRG(s.seed.DeriveKey("swp3/stream", docID))
	if err != nil {
		return nil, err
	}
	nm := s.params.streamLen()
	stream := prg.Block(pos, nm)
	left := make([]byte, nm)
	for i := range left {
		left[i] = cipherword[i] ^ stream[i]
	}
	return left, nil
}
