// Package swp implements the searchable symmetric encryption scheme of
// Song, Wagner and Perrig ("Practical Techniques for Searches on Encrypted
// Data", IEEE S&P 2000) — the building block reference [7] of the paper.
//
// The final ("hidden search") variant is implemented. A document is a
// sequence of fixed-length words W_1 … W_l of n bytes each. For position i:
//
//	X_i = E_{k''}(W_i)            deterministic pre-encryption (PRP)
//	X_i = ⟨L_i, R_i⟩              split: |L_i| = n−m, |R_i| = m
//	S_i = G(seed_doc)_i           pseudorandom stream chunk, n−m bytes
//	k_i = f_{k'}(L_i)             per-word PRF key
//	T_i = ⟨S_i, F_{k_i}(S_i)⟩     m-byte checksum F
//	C_i = X_i ⊕ T_i
//
// To search for word W the client hands the server the trapdoor
// ⟨X, k⟩ = ⟨E_{k”}(W), f_{k'}(L)⟩; the server tests, for every ciphertext
// word, whether C_i ⊕ X has the form ⟨s, F_k(s)⟩. A non-matching word passes
// the test with probability 2^(−8m), which is the scheme's false-positive
// rate per word slot; the paper's construction (internal/core) filters these
// client-side, exactly as §3 of the paper prescribes.
//
// Decryption needs no search: the client regenerates S_i from the document
// seed, recovers L_i = C_i^L ⊕ S_i, recomputes k_i and the checksum, recovers
// R_i, and inverts the pre-encryption.
package swp

import (
	"fmt"
	"math"

	"repro/internal/crypto"
)

// Params fixes the public geometry of a scheme instance. Both parties (and
// the adversary) know these.
type Params struct {
	// WordLen is the word length n in bytes. Every plaintext word must be
	// exactly this long; internal/core pads with '#'.
	WordLen int
	// ChecksumLen is the checksum width m in bytes, 1 <= m < n. The
	// false-positive probability per word slot is 2^(-8m).
	ChecksumLen int
}

// Validate checks the parameter constraints.
func (p Params) Validate() error {
	if p.WordLen < 2 {
		return fmt.Errorf("swp: word length must be >= 2 bytes, got %d", p.WordLen)
	}
	if p.ChecksumLen < 1 || p.ChecksumLen >= p.WordLen {
		return fmt.Errorf("swp: checksum length must be in [1, %d), got %d", p.WordLen, p.ChecksumLen)
	}
	return nil
}

// streamLen returns n-m, the width of the stream chunk S_i.
func (p Params) streamLen() int { return p.WordLen - p.ChecksumLen }

// FalsePositiveRate returns the theoretical per-slot false positive
// probability 2^(-8m).
func (p Params) FalsePositiveRate() float64 {
	return math.Ldexp(1, -8*p.ChecksumLen)
}

// Scheme holds the secret keys and parameters of one SWP instance.
type Scheme struct {
	params Params
	pre    *crypto.PRP // E_{k''}: deterministic pre-encryption
	fPRF   *crypto.PRF // f_{k'}: derives per-word keys from L_i
	seed   *crypto.PRF // derives per-document stream seeds
}

// New derives an SWP instance from a master key. The three internal keys
// (pre-encryption, word-key PRF, stream-seed PRF) are domain-separated
// subkeys of the master.
func New(master crypto.Key, p Params) (*Scheme, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	root := crypto.NewPRF(master)
	pre, err := crypto.NewPRP(root.DeriveKey("swp/pre-encryption", nil), p.WordLen)
	if err != nil {
		return nil, fmt.Errorf("swp: %w", err)
	}
	return &Scheme{
		params: p,
		pre:    pre,
		fPRF:   crypto.NewPRF(root.DeriveKey("swp/f", nil)),
		seed:   crypto.NewPRF(root.DeriveKey("swp/seed", nil)),
	}, nil
}

// Params returns the public parameters.
func (s *Scheme) Params() Params { return s.params }

// docPRG builds the per-document stream generator.
func (s *Scheme) docPRG(docID []byte) (*crypto.PRG, error) {
	return crypto.NewPRG(s.seed.DeriveKey("swp/stream", docID))
}

// wordKey computes k_i = f_{k'}(L_i).
func (s *Scheme) wordKey(left []byte) crypto.Key {
	return crypto.KeyFromBytes(s.fPRF.Sum(left, crypto.KeySize))
}

// checksum computes F_{k}(s) of m bytes.
func checksum(k crypto.Key, stream []byte, m int) []byte {
	return crypto.NewPRF(k).Sum(stream, m)
}

// EncryptWord encrypts the word at position pos of the document identified
// by docID. The word must be exactly WordLen bytes.
func (s *Scheme) EncryptWord(docID []byte, pos uint64, word []byte) ([]byte, error) {
	if len(word) != s.params.WordLen {
		return nil, fmt.Errorf("swp: word must be %d bytes, got %d", s.params.WordLen, len(word))
	}
	x, err := s.pre.Encrypt(word)
	if err != nil {
		return nil, fmt.Errorf("swp: pre-encrypting word: %w", err)
	}
	prg, err := s.docPRG(docID)
	if err != nil {
		return nil, err
	}
	return s.encryptPre(prg, pos, x), nil
}

// encryptPre finishes encryption of a pre-encrypted word X at position pos
// using the given per-document stream.
func (s *Scheme) encryptPre(prg *crypto.PRG, pos uint64, x []byte) []byte {
	nm := s.params.streamLen()
	left, right := x[:nm], x[nm:]
	stream := prg.Block(pos, nm)
	ki := s.wordKey(left)
	f := checksum(ki, stream, s.params.ChecksumLen)
	out := make([]byte, s.params.WordLen)
	for i := 0; i < nm; i++ {
		out[i] = left[i] ^ stream[i]
	}
	for i := 0; i < s.params.ChecksumLen; i++ {
		out[nm+i] = right[i] ^ f[i]
	}
	return out
}

// EncryptDocument encrypts all words of a document. Positions are the slice
// indices; all words must be exactly WordLen bytes.
func (s *Scheme) EncryptDocument(docID []byte, words [][]byte) ([][]byte, error) {
	prg, err := s.docPRG(docID)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(words))
	for i, w := range words {
		if len(w) != s.params.WordLen {
			return nil, fmt.Errorf("swp: document %x word %d: must be %d bytes, got %d",
				docID, i, s.params.WordLen, len(w))
		}
		x, err := s.pre.Encrypt(w)
		if err != nil {
			return nil, fmt.Errorf("swp: pre-encrypting word %d: %w", i, err)
		}
		out[i] = s.encryptPre(prg, uint64(i), x)
	}
	return out, nil
}

// DecryptWord decrypts the ciphertext word at position pos of document
// docID.
func (s *Scheme) DecryptWord(docID []byte, pos uint64, cipherword []byte) ([]byte, error) {
	if len(cipherword) != s.params.WordLen {
		return nil, fmt.Errorf("swp: cipherword must be %d bytes, got %d", s.params.WordLen, len(cipherword))
	}
	prg, err := s.docPRG(docID)
	if err != nil {
		return nil, err
	}
	return s.decryptWith(prg, pos, cipherword)
}

// decryptWith decrypts one word given the per-document stream generator.
func (s *Scheme) decryptWith(prg *crypto.PRG, pos uint64, cipherword []byte) ([]byte, error) {
	nm := s.params.streamLen()
	stream := prg.Block(pos, nm)
	left := make([]byte, nm)
	for i := range left {
		left[i] = cipherword[i] ^ stream[i]
	}
	ki := s.wordKey(left)
	f := checksum(ki, stream, s.params.ChecksumLen)
	x := make([]byte, s.params.WordLen)
	copy(x, left)
	for i := 0; i < s.params.ChecksumLen; i++ {
		x[nm+i] = cipherword[nm+i] ^ f[i]
	}
	w, err := s.pre.Decrypt(x)
	if err != nil {
		return nil, fmt.Errorf("swp: inverting pre-encryption: %w", err)
	}
	return w, nil
}

// DecryptDocument decrypts all words of a document.
func (s *Scheme) DecryptDocument(docID []byte, cipherwords [][]byte) ([][]byte, error) {
	prg, err := s.docPRG(docID)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(cipherwords))
	for i, cw := range cipherwords {
		if len(cw) != s.params.WordLen {
			return nil, fmt.Errorf("swp: document %x cipherword %d: must be %d bytes, got %d",
				docID, i, s.params.WordLen, len(cw))
		}
		w, err := s.decryptWith(prg, uint64(i), cw)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

// Trapdoor is the search token for one word: the deterministic
// pre-encryption X = E_{k”}(W) and the word key k = f_{k'}(L). Handing
// ⟨X, k⟩ to the server lets it locate (probable) occurrences of W without
// learning W, and nothing else about other words.
type Trapdoor struct {
	// X is the pre-encrypted word, WordLen bytes.
	X []byte
	// K is the word PRF key, crypto.KeySize bytes.
	K []byte
}

// NewTrapdoor computes the trapdoor for a word. The word must be exactly
// WordLen bytes.
func (s *Scheme) NewTrapdoor(word []byte) (Trapdoor, error) {
	if len(word) != s.params.WordLen {
		return Trapdoor{}, fmt.Errorf("swp: trapdoor word must be %d bytes, got %d", s.params.WordLen, len(word))
	}
	x, err := s.pre.Encrypt(word)
	if err != nil {
		return Trapdoor{}, fmt.Errorf("swp: pre-encrypting trapdoor word: %w", err)
	}
	k := s.wordKey(x[:s.params.streamLen()])
	return Trapdoor{X: x, K: k[:]}, nil
}

// Match is the server-side test: it reports whether the ciphertext word
// matches the trapdoor. It uses no secret keys — only the trapdoor and the
// public parameters — which is what makes the scheme outsourceable. A
// non-matching word passes with probability 2^(-8m) (a false positive).
//
// Match constructs a fresh Matcher per call; callers testing one trapdoor
// against many words should build a Matcher once instead.
func Match(p Params, cipherword []byte, td Trapdoor) bool {
	return NewMatcher(p, td).Match(cipherword)
}

// SearchDocument returns the positions of all cipherwords in the document
// that match the trapdoor. Server-side, key-free.
func SearchDocument(p Params, cipherwords [][]byte, td Trapdoor) []int {
	return NewMatcher(p, td).Search(cipherwords, nil)
}
