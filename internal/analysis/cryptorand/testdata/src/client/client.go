// Fixture for the cryptorand analyzer's client tier: math/rand is
// legitimate for jitter, forbidden in key-handling functions.
package client

import (
	"crypto/rand"
	mrand "math/rand"
	"time"
)

// jitter is clean: backoff spread is not a secret.
func jitter(d time.Duration) time.Duration {
	return d + time.Duration(mrand.Int63n(int64(d)))
}

// deriveSessionKey misuses the seeded PRNG for key material.
func deriveSessionKey() []byte {
	k := make([]byte, 32)
	mrand.Read(k) // want `key material needs crypto/rand`
	return k
}

// freshNonce is clean: key material from crypto/rand.
func freshNonce() []byte {
	n := make([]byte, 12)
	if _, err := rand.Read(n); err != nil {
		panic(err)
	}
	return n
}

// seedTrapdoorCache takes a documented exception: the name trips the
// key-handling heuristic but the value is an eviction tiebreak.
func seedTrapdoorCache() int {
	//phlint:ignore cryptorand cache eviction tiebreak, not key material
	return mrand.Intn(8)
}
