// Package syncack enforces the storage layer's durability honesty: a
// durability signal — advancing the synced-sequence watermark, closing
// an ack/waiter channel — must be dominated by a checked fsync, and
// errors from Sync/Truncate/Close must not be silently discarded. This
// is the class PR7's fault-injection harness caught dynamically
// (acknowledging a commit whose bytes never reached the platter turns a
// crash into silent data loss); the analyzer catches it at build time.
//
// Two checks:
//
//  1. Discarded errors. A call to a method named Sync or Truncate that
//     returns an error must have that error consumed: bare expression
//     statements, defers, and `_ =` discards are all findings — an
//     unchecked fsync is indistinguishable from a failed one. Close is
//     slightly softer: `defer f.Close()` and explicit `_ = f.Close()`
//     are idiomatic cleanup, but a bare `f.Close()` statement silently
//     drops the last chance to see a write-back error.
//
//  2. Signal domination. Within a function, an assignment to a
//     durability watermark (sseq, durableSeq, durable, acked) or a
//     close() of an ack/waiter/commit channel must be preceded — in
//     source order — by sync evidence: a checked call to a Sync method
//     or to a same-package function that is itself sync-certified
//     (its body checks or returns a Sync error, transitively).
//
// Signals that are genuinely covered elsewhere (the caller fsynced the
// file before handing it over) take a //phlint:ignore with the reason.
package syncack

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"

	"repro/internal/analysis"
)

// Analyzer is the syncack analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "syncack",
	Doc: "durability signals must be dominated by a checked Sync/flush, and " +
		"Sync/Truncate/Close errors must not be discarded",
	Match: func(path string) bool {
		return analysis.PathHasSegment(path, "storage")
	},
	Run: run,
}

// signalLHS matches field/variable names that act as durability
// watermarks when assigned.
var signalLHS = regexp.MustCompile(`(?i)^(sseq|durableseq|durable|acked)$`)

// signalChan matches channel names whose close() tells a waiter its
// write is durable.
var signalChan = regexp.MustCompile(`(?i)(ack|waiter|durable|commit)`)

func run(pass *analysis.Pass) error {
	st := &state{pass: pass, certified: map[*types.Func]bool{}}
	st.certify()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				st.checkDiscards(fd)
				st.checkSignals(fd)
			}
		}
	}
	return nil
}

type state struct {
	pass      *analysis.Pass
	decls     map[*types.Func]*ast.FuncDecl
	certified map[*types.Func]bool
}

// certify computes, to fixpoint, the same-package functions whose call
// counts as sync evidence: their bodies check or return a Sync error,
// directly or through another certified function.
func (st *state) certify() {
	st.decls = map[*types.Func]*ast.FuncDecl{}
	for _, f := range st.pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := st.pass.Info.Defs[fd.Name].(*types.Func); ok {
					st.decls[fn] = fd
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range st.decls {
			if st.certified[fn] {
				continue
			}
			if len(st.evidence(fd.Body)) > 0 {
				st.certified[fn] = true
				changed = true
			}
		}
	}
}

// evidence returns the source positions in the body where a Sync error
// is visibly consumed: assigned to a non-blank variable, tested in an
// if condition, or returned. Calls to certified same-package functions
// qualify the same way.
func (st *state) evidence(body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if st.anyQualifying(n.Rhs) && hasNonBlank(n.Lhs) {
				out = append(out, n.Pos())
			}
		case *ast.IfStmt:
			if st.anyQualifying([]ast.Expr{n.Cond}) {
				out = append(out, n.Pos())
			}
		case *ast.ReturnStmt:
			if st.anyQualifying(n.Results) {
				out = append(out, n.Pos())
			}
		}
		return true
	})
	return out
}

// anyQualifying reports whether any expression contains a call that
// produces sync evidence.
func (st *state) anyQualifying(exprs []ast.Expr) bool {
	found := false
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if st.isSyncMethod(call) {
				found = true
				return false
			}
			if callee := st.calleeInPackage(call); callee != nil && st.certified[callee] {
				found = true
				return false
			}
			return true
		})
	}
	return found
}

// isSyncMethod recognises a zero-argument Sync() method call.
func (st *state) isSyncMethod(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sync" || len(call.Args) != 0 {
		return false
	}
	obj, ok := st.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// calleeInPackage resolves a call to a function declared in this package.
func (st *state) calleeInPackage(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := st.pass.Info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if _, declared := st.decls[fn]; !declared {
		return nil
	}
	return fn
}

// checkSignals flags durability signals not preceded by sync evidence.
func (st *state) checkSignals(fd *ast.FuncDecl) {
	ev := st.evidence(fd.Body)
	sort.Slice(ev, func(i, j int) bool { return ev[i] < ev[j] })
	dominated := func(pos token.Pos) bool {
		return len(ev) > 0 && ev[0] < pos
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				name := finalName(lhs)
				if name != "" && signalLHS.MatchString(name) && !dominated(lhs.Pos()) {
					st.pass.Reportf(lhs.Pos(),
						"durability signal (%s assignment) is not dominated by a checked Sync/flush in this function", name)
				}
			}
		case *ast.CallExpr:
			id, ok := n.Fun.(*ast.Ident)
			if !ok || id.Name != "close" || len(n.Args) != 1 {
				return true
			}
			if _, isBuiltin := st.pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			name := finalName(n.Args[0])
			if name != "" && signalChan.MatchString(name) && !dominated(n.Pos()) {
				st.pass.Reportf(n.Pos(),
					"durability signal (close(%s)) is not dominated by a checked Sync/flush in this function", name)
			}
		}
		return true
	})
}

// checkDiscards flags dropped Sync/Truncate/Close errors.
func (st *state) checkDiscards(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if name := st.errMethodName(n.X); name != "" {
				st.pass.Reportf(n.Pos(),
					"error from %s is discarded; an unchecked %s is indistinguishable from a failed one", name, name)
			}
		case *ast.DeferStmt:
			if name := st.errMethodName(n.Call); name == "Sync" || name == "Truncate" {
				st.pass.Reportf(n.Pos(),
					"error from deferred %s is discarded; check it in a named-return defer or call it inline", name)
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 || hasNonBlank(n.Lhs) {
				return true
			}
			if name := st.errMethodName(n.Rhs[0]); name == "Sync" || name == "Truncate" {
				st.pass.Reportf(n.Pos(),
					"error from %s is blank-discarded; durability depends on this call succeeding", name)
			}
		}
		return true
	})
}

// errMethodName reports the method name when the expression is a call
// to a Sync/Truncate/Close method returning exactly one error.
func (st *state) errMethodName(e ast.Expr) string {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if name != "Sync" && name != "Truncate" && name != "Close" {
		return ""
	}
	obj, ok := st.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 {
		return ""
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	if !ok || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
		return ""
	}
	return name
}

// finalName extracts the rightmost identifier of an lvalue/operand.
func finalName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// hasNonBlank reports whether any LHS is a non-blank identifier (or a
// selector, which always consumes the value).
func hasNonBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		if id, ok := e.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		return true
	}
	return false
}
