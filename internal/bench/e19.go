package bench

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/fault"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/storage"
)

// e19StartReplicaNode fronts a follower's store with a read-only server
// whose Ready gate is the follower's catch-up signal — the deployment
// shape the reset-window fix prescribes.
func e19StartReplicaNode(st *storage.Store, ready func() bool) (*e18Node, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.NewWithOptions(st, nil, server.Options{ReadOnly: true, Ready: ready})
	go srv.Serve(l)
	return &e18Node{addr: l.Addr().String(), srv: srv}, nil
}

// e19SameRoots fails unless both stores hold identical table sets with
// bit-identical authenticated roots — the drill-ending correctness bar.
func e19SameRoots(a, b *storage.Store) error {
	la, lb := a.List(), b.List()
	if len(la) != len(lb) {
		return fmt.Errorf("table counts differ: %d vs %d", len(la), len(lb))
	}
	for _, info := range la {
		ra, na, _, err := a.Root(info.Name)
		if err != nil {
			return err
		}
		rb, nb, _, err := b.Root(info.Name)
		if err != nil {
			return err
		}
		if na != nb || !bytes.Equal(ra, rb) {
			return fmt.Errorf("roots of %q diverge: %d tuples %x vs %d tuples %x", info.Name, na, ra, nb, rb)
		}
	}
	return nil
}

// RunE19 regenerates experiment E19: snapshot-shipped replica bootstrap
// under faults. Two measurements:
//
// Catch-up cost vs log length. A churn workload re-stores a
// constant-size table W times, so the WAL grows linearly in W while
// the state stays put. A record-0 replay follower pays the whole log
// (RecordsApplied tracks it exactly); a snapshot follower pays the
// state (SnapshotBytes). The gate demands the snapshot cost stay flat
// (sublinear) while the log grows ≥8x.
//
// Three chaos drills, each ending in bit-identical primary/follower
// Merkle roots with zero accepted-but-wrong reads along the way:
//
//   - crash-during-install: the primary is killed and restarted while a
//     follower is mid-way through fetching its bootstrap snapshot; the
//     transfer resumes and converges.
//   - disk-full: the primary's log hits ENOSPC mid-append (injected via
//     the fault harness); the store degrades to refusing mutations,
//     reads stay correct, and a reopened primary replays exactly its
//     durable prefix, from which a follower converges.
//   - partition mid-bootstrap: the follower's link is partitioned in
//     the middle of the snapshot transfer and later healed; the
//     transfer resumes from its offset.
//
// All counters are deterministic (no timing in the gate).
func RunE19(tuples int, seed int64) (*Table, error) {
	if tuples <= 0 {
		tuples = 400
	}
	t := &Table{
		ID: "E19",
		Title: fmt.Sprintf("snapshot-shipped replica bootstrap: catch-up cost vs log length, plus chaos drills (state: %d tuples)",
			tuples),
		Header: []string{"churn rounds", "log records", "replay records", "snapshot records", "snapshot bytes"},
		Notes: []string{
			"churn re-stores a constant-size table, so the log grows linearly while the state does not",
			"a record-0 replay follower applies the whole log; a snapshot follower fetches the state and applies ~0 records",
			"all gate counters are deterministic follower-side tallies, not wall-clock times",
		},
	}

	key, err := crypto.RandomKey()
	if err != nil {
		return nil, err
	}
	table, err := e17Table(tuples, seed)
	if err != nil {
		return nil, err
	}
	scheme, err := core.New(key, table.Schema(), core.Options{})
	if err != nil {
		return nil, err
	}
	ct, err := scheme.EncryptTable(table)
	if err != nil {
		return nil, err
	}

	// --- Part 1: catch-up cost vs log length.
	rounds := []int{1, 4, 16}
	type meas struct{ logRecs, replayRecs, snapRecs, snapBytes uint64 }
	var ms []meas
	for _, w := range rounds {
		m, err := e19CatchUp(ct, w)
		if err != nil {
			return nil, fmt.Errorf("bench: e19 churn %d: %w", w, err)
		}
		ms = append(ms, m)
		t.AddRow(fmt.Sprintf("%d", w), fmt.Sprintf("%d", m.logRecs),
			fmt.Sprintf("%d", m.replayRecs), fmt.Sprintf("%d", m.snapRecs),
			fmt.Sprintf("%d", m.snapBytes))
	}
	for i, m := range ms {
		if m.replayRecs != m.logRecs {
			return nil, fmt.Errorf("bench: e19: replay follower applied %d of %d log records at %d rounds", m.replayRecs, m.logRecs, rounds[i])
		}
		if m.snapRecs != 0 {
			return nil, fmt.Errorf("bench: e19: snapshot follower applied %d log records at %d rounds, want 0", m.snapRecs, rounds[i])
		}
	}
	if ms[2].logRecs < 8*ms[0].logRecs {
		return nil, fmt.Errorf("bench: e19: churn produced only %dx log growth, want >= 8x", ms[2].logRecs/ms[0].logRecs)
	}
	if 2*ms[2].snapBytes > 3*ms[0].snapBytes {
		return nil, fmt.Errorf("bench: e19 gate: snapshot bootstrap cost grew %d -> %d bytes over a %dx longer log — not sublinear",
			ms[0].snapBytes, ms[2].snapBytes, ms[2].logRecs/ms[0].logRecs)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"sublinearity gate passed: the log grew %dx (%d -> %d records) while the snapshot bootstrap stayed at %d bytes (replay pays %d records)",
		ms[2].logRecs/ms[0].logRecs, ms[0].logRecs, ms[2].logRecs, ms[2].snapBytes, ms[2].replayRecs))

	// --- Part 2: chaos drills.
	if err := e19DrillCrash(scheme, table, t); err != nil {
		return nil, fmt.Errorf("bench: e19 crash drill: %w", err)
	}
	if err := e19DrillDiskFull(scheme, table, t); err != nil {
		return nil, fmt.Errorf("bench: e19 disk-full drill: %w", err)
	}
	if err := e19DrillPartition(scheme, table, t); err != nil {
		return nil, fmt.Errorf("bench: e19 partition drill: %w", err)
	}
	return t, nil
}

// e19CatchUp measures one churn configuration: w rounds of re-storing
// the same table, then one replay follower and one snapshot follower
// bootstrapping from scratch.
func e19CatchUp(ct *ph.EncryptedTable, w int) (m struct{ logRecs, replayRecs, snapRecs, snapBytes uint64 }, err error) {
	dir, err := os.MkdirTemp("", "e19-*")
	if err != nil {
		return m, err
	}
	defer os.RemoveAll(dir)
	pst, err := storage.OpenOptions(filepath.Join(dir, "wal.log"), storage.Options{Sync: storage.SyncNever})
	if err != nil {
		return m, err
	}
	defer pst.Close()
	for i := 0; i < 2*w; i++ {
		if err := pst.Put("pairs", ct); err != nil {
			return m, err
		}
	}
	_, m.logRecs = pst.LogHead()
	node, err := startNode(pst, false)
	if err != nil {
		return m, err
	}
	defer node.kill()
	dial := func() (*client.Conn, error) { return client.DialWithConfig(node.addr, e18Dial()) }

	replay := replica.New(dial, replica.Options{PollInterval: time.Millisecond, DisableSnapshot: true})
	err = replay.WaitCaughtUp(20 * time.Second)
	if err == nil {
		err = e19SameRoots(pst, replay.Store())
	}
	m.replayRecs = replay.Status().RecordsApplied
	replay.Close()
	if err != nil {
		return m, fmt.Errorf("replay follower: %w", err)
	}

	snap := replica.New(dial, replica.Options{PollInterval: time.Millisecond})
	err = snap.WaitCaughtUp(20 * time.Second)
	if err == nil {
		err = e19SameRoots(pst, snap.Store())
	}
	st := snap.Status()
	m.snapRecs, m.snapBytes = st.RecordsApplied, st.SnapshotBytes
	snap.Close()
	if err != nil {
		return m, fmt.Errorf("snapshot follower: %w", err)
	}
	if st.Snapshots != 1 {
		return m, fmt.Errorf("snapshot follower installed %d snapshots, want 1", st.Snapshots)
	}
	return m, nil
}

// e19Fixture stands up a durable primary with the dataset uploaded
// through a real client (pinning the trust root), and returns the
// pieces the drills share. Callers own the returned cleanups.
type e19Fixture struct {
	dir   string
	pst   *storage.Store
	node  *e18Node
	root  []byte
	rootN int
	q     relation.Eq
	want  string
}

func e19Setup(scheme ph.Scheme, table *relation.Table, opts storage.Options) (*e19Fixture, error) {
	fx := &e19Fixture{}
	dir, err := os.MkdirTemp("", "e19-*")
	if err != nil {
		return nil, err
	}
	fx.dir = dir
	fx.pst, err = storage.OpenOptions(filepath.Join(dir, "wal.log"), opts)
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	fx.node, err = startNode(fx.pst, false)
	if err != nil {
		fx.close()
		return nil, err
	}
	setup, err := client.DialWithConfig(fx.node.addr, e18Dial())
	if err != nil {
		fx.close()
		return nil, err
	}
	defer setup.Close()
	db := client.NewDB(setup, scheme, "pairs")
	if err := db.CreateTable(table); err != nil {
		fx.close()
		return nil, err
	}
	fx.root, fx.rootN = db.Root()

	// Query a value guaranteed present: the first row's code.
	fx.q = relation.Eq{Column: "code", Value: table.Tuple(0)[1]}
	want, err := relation.Select(table, fx.q)
	if err != nil {
		fx.close()
		return nil, err
	}
	fx.want = want.Sorted().String()
	return fx, nil
}

func (fx *e19Fixture) close() {
	if fx.node != nil {
		fx.node.kill()
	}
	if fx.pst != nil {
		fx.pst.Close()
	}
	os.RemoveAll(fx.dir)
}

// readCheck runs one verified read with the follower as the preferred
// replica and the primary as fallback. A wrong answer — served from
// anywhere — is the drill-failing event; refusal-and-failover is fine.
func (fx *e19Fixture) readCheck(scheme ph.Scheme, primaryAddr string, follower *e18Node, label string) error {
	conn, err := client.DialWithConfig(primaryAddr, e18Dial())
	if err != nil {
		return fmt.Errorf("%s: dialing primary: %w", label, err)
	}
	defer conn.Close()
	db := client.NewDB(conn, scheme, "pairs")
	db.PinRoot(fx.root, fx.rootN)
	db.AddReplicas(e18Dial(), follower.addr)
	got, err := db.Select(fx.q)
	if err != nil {
		return fmt.Errorf("%s: %w", label, err)
	}
	if got.Sorted().String() != fx.want {
		return fmt.Errorf("%s: accepted-but-wrong read", label)
	}
	return nil
}

// e19WaitMidTransfer polls until the follower is strictly mid-way
// through its snapshot transfer.
func e19WaitMidTransfer(f *replica.Follower, total uint64) error {
	deadline := time.Now().Add(20 * time.Second)
	for {
		st := f.Status()
		if st.Snapshots != 0 {
			return fmt.Errorf("snapshot completed before the fault could land mid-transfer")
		}
		if st.SnapshotBytes > total/4 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transfer never reached the fault point (status %+v)", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// e19SnapshotTotal measures the primary's snapshot size.
func e19SnapshotTotal(st *storage.Store) (uint64, error) {
	var buf bytes.Buffer
	if _, err := st.WriteSnapshot(&buf); err != nil {
		return 0, err
	}
	return uint64(buf.Len()), nil
}

// e19DrillCrash kill-crashes the primary mid-snapshot-transfer and
// recovers it; the follower's transfer must resume and converge to
// bit-identical roots.
func e19DrillCrash(scheme ph.Scheme, table *relation.Table, t *Table) error {
	fx, err := e19Setup(scheme, table, storage.Options{Sync: storage.SyncNever})
	if err != nil {
		return err
	}
	defer fx.close()
	total, err := e19SnapshotTotal(fx.pst)
	if err != nil {
		return err
	}

	// The primary's address moves across the restart; the follower's
	// dial chases it. The conn-level delay paces the transfer so the
	// crash lands mid-flight deterministically.
	var mu sync.Mutex
	addr := fx.node.addr
	slow := e18Dial()
	slow.DialFunc = func(a string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", a, 2*time.Second)
		if err != nil {
			return nil, err
		}
		return fault.NewConn(c, fault.ConnPlan{Delay: 2 * time.Millisecond}), nil
	}
	f := replica.New(func() (*client.Conn, error) {
		mu.Lock()
		a := addr
		mu.Unlock()
		return client.DialWithConfig(a, slow)
	}, replica.Options{PollInterval: time.Millisecond, MaxBytes: 1024})
	defer f.Close()
	fnode, err := e19StartReplicaNode(f.Store(), f.Ready)
	if err != nil {
		return err
	}
	defer fnode.kill()

	if err := e19WaitMidTransfer(f, total); err != nil {
		return err
	}
	// Kill-crash and recover: listener down, connections severed, store
	// reopened from disk at a fresh address.
	atKill := f.Status()
	if atKill.Snapshots != 0 || atKill.SnapshotBytes >= total {
		return fmt.Errorf("transfer finished (%d of %d bytes, %d installs) before the crash landed", atKill.SnapshotBytes, total, atKill.Snapshots)
	}
	fx.node.kill()
	if err := fx.pst.Close(); err != nil {
		return err
	}
	pst2, err := storage.Open(filepath.Join(fx.dir, "wal.log"))
	if err != nil {
		return fmt.Errorf("recovering primary: %w", err)
	}
	fx.pst = pst2
	node2, err := startNode(pst2, false)
	if err != nil {
		return err
	}
	fx.node = node2
	mu.Lock()
	addr = node2.addr
	mu.Unlock()

	// A read during the recovery window: the not-ready follower must
	// refuse, so the recovered primary answers correctly.
	if err := fx.readCheck(scheme, node2.addr, fnode, "mid-recovery read"); err != nil {
		return err
	}
	if err := f.WaitCaughtUp(20 * time.Second); err != nil {
		return err
	}
	if err := e19SameRoots(pst2, f.Store()); err != nil {
		return fmt.Errorf("post-recovery roots: %w", err)
	}
	st := f.Status()
	if st.Snapshots != 1 {
		return fmt.Errorf("follower installed %d snapshots, want 1 (the crashed transfer must resume, not restart)", st.Snapshots)
	}
	if err := fx.readCheck(scheme, node2.addr, fnode, "post-recovery read"); err != nil {
		return err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"crash drill passed: primary killed at %d of %d snapshot bytes, recovered, transfer resumed; roots bit-identical, every read correct",
		atKill.SnapshotBytes, total))
	return nil
}

// e19DrillDiskFull fills the primary's disk mid-WAL-append via the
// fault harness: mutations must degrade to refusals (not corruption),
// reads stay correct, and the reopened log replays exactly its durable
// prefix, from which a follower converges to identical roots.
func e19DrillDiskFull(scheme ph.Scheme, table *relation.Table, t *Table) error {
	var ff *fault.File
	var limit int64 = 1 << 20
	fx, err := e19Setup(scheme, table, storage.Options{WrapLog: func(lf storage.LogFile) storage.LogFile {
		ff = fault.NewFile(lf, fault.FilePlan{FailWriteAfterBytes: limit})
		return ff
	}})
	if err != nil {
		return err
	}
	defer fx.close()

	// Churn appends until the disk fills.
	extra := relation.NewTable(table.Schema())
	for i := 0; i < 8; i++ {
		extra.MustInsert(relation.String("Z"), relation.String(fmt.Sprintf("x%03d", i)))
	}
	ect, err := scheme.EncryptTable(extra)
	if err != nil {
		return err
	}
	if err := fx.pst.Put("churn", ect); err != nil {
		return err
	}
	var full error
	for i := 0; i < 100000; i++ {
		if full = fx.pst.Append("churn", ect.Tuples); full != nil {
			break
		}
	}
	if full == nil {
		return fmt.Errorf("never hit the %d-byte disk limit", limit)
	}
	// Degradation contract: refusal, not corruption — and reads still
	// serve the pinned table correctly.
	if err := fx.pst.Put("more", ect); err == nil {
		return fmt.Errorf("mutation accepted on a full disk")
	}
	dummy, err := e19StartReplicaNode(storage.NewMemory(), func() bool { return false })
	if err != nil {
		return err
	}
	defer dummy.kill()
	if err := fx.readCheck(scheme, fx.node.addr, dummy, "degraded-mode read"); err != nil {
		return err
	}

	// Recover: reopen without the fault (space freed) and bootstrap a
	// follower from the replayed durable prefix.
	fx.node.kill()
	// Close flushes, which a full disk is allowed to fail; recovery
	// replays the durable prefix either way.
	fx.pst.Close()
	pst2, err := storage.Open(filepath.Join(fx.dir, "wal.log"))
	if err != nil {
		return fmt.Errorf("recovering primary after disk-full: %w", err)
	}
	fx.pst = pst2
	node2, err := startNode(pst2, false)
	if err != nil {
		return err
	}
	fx.node = node2

	f := replica.New(func() (*client.Conn, error) {
		return client.DialWithConfig(node2.addr, e18Dial())
	}, replica.Options{PollInterval: time.Millisecond})
	defer f.Close()
	if err := f.WaitCaughtUp(20 * time.Second); err != nil {
		return err
	}
	if err := e19SameRoots(pst2, f.Store()); err != nil {
		return fmt.Errorf("post-recovery roots: %w", err)
	}
	fnode, err := e19StartReplicaNode(f.Store(), f.Ready)
	if err != nil {
		return err
	}
	defer fnode.kill()
	if err := fx.readCheck(scheme, node2.addr, fnode, "post-recovery read"); err != nil {
		return err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"disk-full drill passed: ENOSPC at %d log bytes degraded the store to refusing mutations; reads stayed correct, the durable prefix replayed, and follower roots match bit for bit", limit))
	return nil
}

// e19DrillPartition partitions the follower's link mid-snapshot and
// heals it: the transfer must stall, resume from its offset, and end
// in identical roots.
func e19DrillPartition(scheme ph.Scheme, table *relation.Table, t *Table) error {
	fx, err := e19Setup(scheme, table, storage.Options{Sync: storage.SyncNever})
	if err != nil {
		return err
	}
	defer fx.close()
	total, err := e19SnapshotTotal(fx.pst)
	if err != nil {
		return err
	}

	var sw fault.Switch
	cfg := e18Dial()
	cfg.DialFunc = func(a string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", a, 2*time.Second)
		if err != nil {
			return nil, err
		}
		return fault.NewConn(c, fault.ConnPlan{Delay: 2 * time.Millisecond, Partition: &sw}), nil
	}
	f := replica.New(func() (*client.Conn, error) {
		return client.DialWithConfig(fx.node.addr, cfg)
	}, replica.Options{PollInterval: time.Millisecond, MaxBytes: 1024})
	defer f.Close()
	fnode, err := e19StartReplicaNode(f.Store(), f.Ready)
	if err != nil {
		return err
	}
	defer fnode.kill()

	if err := e19WaitMidTransfer(f, total); err != nil {
		return err
	}
	sw.Set(true)
	time.Sleep(10 * time.Millisecond) // drain in-flight rounds
	b0 := f.Status().SnapshotBytes
	// Reads during the partition: the unready follower refuses (its own
	// serving link is fine; only its upstream is cut), so the client
	// fails over and stays correct.
	if err := fx.readCheck(scheme, fx.node.addr, fnode, "mid-partition read"); err != nil {
		return err
	}
	if st := f.Status(); st.SnapshotBytes != b0 || st.Snapshots != 0 {
		return fmt.Errorf("transfer progressed under the partition: %d -> %d bytes", b0, st.SnapshotBytes)
	}
	sw.Set(false)

	if err := f.WaitCaughtUp(20 * time.Second); err != nil {
		return err
	}
	if err := e19SameRoots(fx.pst, f.Store()); err != nil {
		return fmt.Errorf("post-heal roots: %w", err)
	}
	st := f.Status()
	if st.Snapshots != 1 || st.Resets != 0 {
		return fmt.Errorf("partition voided the transfer (%d snapshots, %d resets), want resume", st.Snapshots, st.Resets)
	}
	if st.SnapshotBytes != total {
		return fmt.Errorf("follower fetched %d bytes for a %d-byte snapshot: the transfer restarted instead of resuming", st.SnapshotBytes, total)
	}
	if err := fx.readCheck(scheme, fx.node.addr, fnode, "post-heal read"); err != nil {
		return err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"partition drill passed: link cut at %d of %d snapshot bytes and healed; transfer resumed byte-exact, roots bit-identical, every read correct", b0, total))
	return nil
}
