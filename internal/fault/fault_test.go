package fault

import (
	"bytes"
	"errors"
	"net"
	"syscall"
	"testing"
)

// memFile is an in-memory WritableFile recording what reached "disk".
type memFile struct {
	buf    bytes.Buffer
	syncs  int
	closed bool
}

func (m *memFile) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memFile) Sync() error                 { m.syncs++; return nil }
func (m *memFile) Truncate(size int64) error {
	m.buf.Truncate(int(size))
	return nil
}
func (m *memFile) Close() error { m.closed = true; return nil }

func TestFileENOSPCWholeWrite(t *testing.T) {
	m := &memFile{}
	f := NewFile(m, FilePlan{FailWriteAfterBytes: 10})
	if _, err := f.Write(make([]byte, 10)); err != nil {
		t.Fatalf("write inside budget: %v", err)
	}
	n, err := f.Write([]byte{1})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write past budget: err = %v, want ENOSPC", err)
	}
	if n != 0 || m.buf.Len() != 10 {
		t.Fatalf("non-short failure leaked %d bytes (disk holds %d)", n, m.buf.Len())
	}
}

func TestFileENOSPCShortWrite(t *testing.T) {
	m := &memFile{}
	f := NewFile(m, FilePlan{FailWriteAfterBytes: 10, ShortWrite: true})
	n, err := f.Write(make([]byte, 25))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if n != 10 || m.buf.Len() != 10 {
		t.Fatalf("short write landed %d bytes (disk holds %d), want 10", n, m.buf.Len())
	}
	// The harness must let repair through: storage truncates torn tails.
	if err := f.Truncate(0); err != nil {
		t.Fatalf("truncate after short write: %v", err)
	}
	if got := f.Written(); got != 0 {
		t.Fatalf("Written() = %d after truncate to 0", got)
	}
}

func TestFileSyncFailure(t *testing.T) {
	m := &memFile{}
	f := NewFile(m, FilePlan{FailSyncAfter: 3})
	for i := 1; i <= 2; i++ {
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	if err := f.Sync(); err == nil {
		t.Fatal("third sync succeeded, plan said fail")
	}
	if err := f.Sync(); err == nil {
		t.Fatal("sync failure did not persist")
	}
	if m.syncs != 2 {
		t.Fatalf("underlying file saw %d syncs, want 2", m.syncs)
	}
}

func TestFileCrashAtByte(t *testing.T) {
	m := &memFile{}
	f := NewFile(m, FilePlan{CrashAtByte: 7})
	if _, err := f.Write([]byte("1234")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("567890"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crossing write: err = %v, want ErrCrashed", err)
	}
	if n != 3 || m.buf.String() != "1234567" {
		t.Fatalf("crash landed %d bytes, disk %q; want the 7-byte prefix", n, m.buf.String())
	}
	if !f.Crashed() {
		t.Fatal("Crashed() = false after the crash point")
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	if err := f.Truncate(0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash truncate: %v", err)
	}
	if m.buf.String() != "1234567" {
		t.Fatal("post-crash operation mutated the disk")
	}
}

func TestConnCutMidStream(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := NewConn(a, ConnPlan{CutAfterBytes: 5})
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := b.Read(buf)
		got <- buf[:n]
	}()
	n, err := c.Write([]byte("12345678"))
	if !errors.Is(err, ErrCut) {
		t.Fatalf("err = %v, want ErrCut", err)
	}
	if n != 5 {
		t.Fatalf("cut landed %d bytes, want the 5-byte prefix", n)
	}
	if string(<-got) != "12345" {
		t.Fatal("peer saw different bytes than the cut admitted")
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrCut) {
		t.Fatalf("post-cut write: %v", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrCut) {
		t.Fatalf("post-cut read: %v", err)
	}
}

func TestConnPartition(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	var sw Switch
	c := NewConn(a, ConnPlan{Partition: &sw})
	go func() {
		buf := make([]byte, 2)
		b.Read(buf)
		b.Write([]byte("ok"))
	}()
	if _, err := c.Write([]byte("hi")); err != nil {
		t.Fatalf("write before partition: %v", err)
	}
	if _, err := c.Read(make([]byte, 2)); err != nil {
		t.Fatalf("read before partition: %v", err)
	}
	sw.Set(true)
	if _, err := c.Write([]byte("hi")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("write under partition: %v", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("read under partition: %v", err)
	}
	sw.Set(false)
	go func() {
		buf := make([]byte, 2)
		b.Read(buf)
	}()
	if _, err := c.Write([]byte("yo")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	c.Close()
}

func TestPointDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 64; seed++ {
		p := Point(seed, 1000)
		if p < 1 || p > 1000 {
			t.Fatalf("Point(%d, 1000) = %d, out of [1, 1000]", seed, p)
		}
		if q := Point(seed, 1000); q != p {
			t.Fatalf("Point(%d) unstable: %d then %d", seed, p, q)
		}
	}
	if Point(1, 1) != 1 || Point(1, 0) != 1 {
		t.Fatal("degenerate spans must pin to 1")
	}
}
