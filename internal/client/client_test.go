package client

import (
	"log"
	"net"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/storage"
)

// startPipe wires a client Conn to a server over an in-memory pipe.
func startPipe(t *testing.T, store *storage.Store) *Conn {
	t.Helper()
	srv := server.New(store, log.New(testWriter{t}, "", 0))
	cliSide, srvSide := net.Pipe()
	go srv.ServeConn(srvSide)
	conn := NewConn(cliSide)
	t.Cleanup(func() { conn.Close() })
	return conn
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("server: %s", strings.TrimSpace(string(p)))
	return len(p), nil
}

func empSchema() *relation.Schema {
	return relation.MustSchema("emp",
		relation.Column{Name: "name", Type: relation.TypeString, Width: 10},
		relation.Column{Name: "dept", Type: relation.TypeString, Width: 5},
		relation.Column{Name: "salary", Type: relation.TypeInt, Width: 5},
	)
}

func empTable() *relation.Table {
	t := relation.NewTable(empSchema())
	t.MustInsert(relation.String("Montgomery"), relation.String("HR"), relation.Int(7500))
	t.MustInsert(relation.String("Ada"), relation.String("IT"), relation.Int(9100))
	t.MustInsert(relation.String("Grace"), relation.String("HR"), relation.Int(8800))
	return t
}

func newScheme(t *testing.T) ph.Scheme {
	t.Helper()
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.New(key, empSchema(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEndToEndSelect(t *testing.T) {
	conn := startPipe(t, storage.NewMemory())
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	got, err := db.Select(relation.Eq{Column: "dept", Value: relation.String("HR")})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := relation.Select(empTable(), relation.Eq{Column: "dept", Value: relation.String("HR")})
	if !got.Equal(want) {
		t.Fatalf("select result wrong:\n%v\nvs\n%v", got, want)
	}
}

func TestEndToEndSQL(t *testing.T) {
	conn := startPipe(t, storage.NewMemory())
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	got, err := db.Query("SELECT name FROM emp WHERE dept = 'HR' AND salary = 8800")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Tuple(0)[0].Str() != "Grace" {
		t.Fatalf("SQL result: %v", got)
	}
	// Full-table query.
	all, err := db.Query("SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if !all.Equal(empTable()) {
		t.Fatal("SELECT * did not return the full table")
	}
	// Wrong table name is rejected client-side.
	if _, err := db.Query("SELECT * FROM other WHERE x = 1"); err == nil {
		t.Fatal("query against wrong table accepted")
	}
}

func TestEndToEndInsert(t *testing.T) {
	conn := startPipe(t, storage.NewMemory())
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(relation.Tuple{
		relation.String("Alan"), relation.String("R&D"), relation.Int(7500),
	}); err != nil {
		t.Fatal(err)
	}
	got, err := db.Select(relation.Eq{Column: "name", Value: relation.String("Alan")})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("inserted tuple not found: %v", got)
	}
	all, err := db.SelectAll()
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 4 {
		t.Fatalf("table has %d tuples after insert, want 4", all.Len())
	}
}

func TestServerSeesOnlyCiphertext(t *testing.T) {
	store := storage.NewMemory()
	conn := startPipe(t, store)
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	ct, err := store.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range ct.Tuples {
		for _, w := range tp.Words {
			for _, plain := range []string{"Montgomery", "HR", "7500", "Ada", "Grace"} {
				if strings.Contains(string(w), plain) {
					t.Fatalf("server-side word contains plaintext %q", plain)
				}
			}
		}
	}
}

func TestTamperedServerDetected(t *testing.T) {
	store := storage.NewMemory()
	conn := startPipe(t, store)
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	// Eve rewrites the stored ciphertext behind Alex's back.
	ct, err := store.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	ct.Tuples[0].Words[0][0] ^= 1
	if err := store.Put("emp", ct); err != nil {
		t.Fatal(err)
	}
	// Any select touching the tampered tuple must now fail verification
	// (the root no longer matches what Alex pinned). Queries that match
	// nothing cannot be caught — integrity, not completeness.
	sawVerificationFailure := false
	for _, q := range []relation.Eq{
		{Column: "dept", Value: relation.String("HR")},
		{Column: "dept", Value: relation.String("IT")},
		{Column: "salary", Value: relation.Int(7500)},
		{Column: "salary", Value: relation.Int(9100)},
		{Column: "name", Value: relation.String("Montgomery")},
		{Column: "name", Value: relation.String("Ada")},
	} {
		if _, err := db.Select(q); err != nil && strings.Contains(err.Error(), "verification") {
			sawVerificationFailure = true
		}
	}
	if !sawVerificationFailure {
		t.Fatal("no query detected the tampering")
	}
}

func TestSelectManyBatch(t *testing.T) {
	conn := startPipe(t, storage.NewMemory())
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	qs := []relation.Eq{
		{Column: "dept", Value: relation.String("HR")},
		{Column: "salary", Value: relation.Int(9100)},
		{Column: "name", Value: relation.String("Nobody")},
	}
	parts, err := db.SelectMany(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("got %d results", len(parts))
	}
	if parts[0].Len() != 2 || parts[1].Len() != 1 || parts[2].Len() != 0 {
		t.Fatalf("batch sizes: %d %d %d", parts[0].Len(), parts[1].Len(), parts[2].Len())
	}
	if parts[1].Tuple(0)[0].Str() != "Ada" {
		t.Fatalf("batch result 1: %v", parts[1].Tuple(0))
	}
	// Empty batch is a no-op.
	none, err := db.SelectMany(nil)
	if err != nil || none != nil {
		t.Fatalf("empty batch: %v %v", none, err)
	}
}

func TestBatchVerifiesEachResult(t *testing.T) {
	store := storage.NewMemory()
	conn := startPipe(t, store)
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	ct, err := store.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	// Tampering the tuple IDs leaves the search untouched (matching only
	// reads the cipherwords) but deterministically breaks every leaf
	// hash, so any non-empty result must fail verification.
	for i := range ct.Tuples {
		ct.Tuples[i].ID[0] ^= 1
	}
	if err := store.Put("emp", ct); err != nil {
		t.Fatal(err)
	}
	_, err = db.SelectMany([]relation.Eq{
		{Column: "dept", Value: relation.String("HR")},
		{Column: "dept", Value: relation.String("IT")},
	})
	if err == nil || !strings.Contains(err.Error(), "verification") {
		t.Fatalf("batched select did not verify: %v", err)
	}
}

func TestListAndDrop(t *testing.T) {
	conn := startPipe(t, storage.NewMemory())
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	infos, err := conn.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "emp" || infos[0].SchemeID != core.SchemeID || infos[0].Tuples != 3 {
		t.Fatalf("list: %+v", infos)
	}
	if err := conn.Drop("emp"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SelectAll(); err == nil {
		t.Fatal("select on dropped table succeeded")
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	conn := startPipe(t, storage.NewMemory())
	if _, err := conn.FetchAll("nope"); err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("expected unknown-table error, got %v", err)
	}
	// The connection must survive an error response.
	if _, err := conn.List(); err != nil {
		t.Fatalf("connection unusable after error: %v", err)
	}
}

func TestOverTCP(t *testing.T) {
	store := storage.NewMemory()
	srv := server.New(store, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})

	conn, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	got, err := db.Query("SELECT * FROM emp WHERE salary = 9100")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Tuple(0)[0].Str() != "Ada" {
		t.Fatalf("TCP round trip result: %v", got)
	}

	// A second concurrent client sees the same table.
	conn2, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	infos, err := conn2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Tuples != 3 {
		t.Fatalf("second client list: %+v", infos)
	}
}
