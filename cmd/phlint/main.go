// Command phlint runs the repo's analyzer suite (internal/analysis) in
// two modes:
//
// Standalone, for CI gates and local runs:
//
//	phlint [-o findings.json] [packages ...]
//
// loads the packages (default ./...), prints surviving findings
// vet-style, optionally writes them as a JSON artifact, and exits 1 if
// there are any.
//
// As a vettool, speaking cmd/go's unitchecker protocol:
//
//	go vet -vettool=$(which phlint) ./...
//
// cmd/go probes the tool with -V=full (identity/version handshake) and
// -flags (supported flag listing), then invokes it once per package
// with a JSON .cfg describing the files, import map, and export data.
// Dependency-only invocations (VetxOnly) and test variants write their
// facts file and exit; real packages are type-checked from the config's
// export data and analyzed, with diagnostics on stderr and exit status
// 2 — the unitchecker convention cmd/go maps to a failed vet run.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
)

func main() {
	versionFlag := flag.String("V", "", "print version and exit (-V=full for the go vet handshake)")
	flagsFlag := flag.Bool("flags", false, "print the JSON flag description go vet expects and exit")
	outFlag := flag.String("o", "", "standalone mode: also write findings to this file as JSON")
	flag.Parse()

	if *versionFlag != "" {
		printVersion()
		return
	}
	if *flagsFlag {
		// No tool-specific flags are forwarded through go vet.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args, *outFlag))
}

// printVersion answers cmd/go's -V=full identity probe: the line must
// start with "<name> version" and the remainder keys the build cache,
// so it hashes the tool's own binary.
func printVersion() {
	name := filepath.Base(os.Args[0])
	data, err := os.ReadFile(os.Args[0])
	if err != nil {
		fmt.Printf("%s version devel\n", name)
		return
	}
	h := sha256.Sum256(data)
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, string(h[:12]))
}

// standalone loads the patterns itself and reports findings.
func standalone(patterns []string, outFile string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := load.Packages("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 3
	}
	findings := []analysis.Finding{}
	for _, t := range targets {
		fs, err := analysis.Run(t, suite.All)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 3
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if outFile != "" {
		data, err := json.MarshalIndent(findings, "", "  ")
		if err == nil {
			err = os.WriteFile(outFile, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "phlint: writing %s: %v\n", outFile, err)
			return 3
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the slice of cmd/go's unitchecker config the tool needs.
type vetConfig struct {
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// unitcheck handles one go vet package invocation.
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phlint: %v\n", err)
		return 3
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "phlint: parsing %s: %v\n", cfgFile, err)
		return 3
	}
	// The facts file must exist for cmd/go's cache bookkeeping even
	// though this suite computes no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "phlint: %v\n", err)
			return 3
		}
	}
	// Dependency-only passes exist to produce facts; test variants —
	// recognisable by _test.go files in the compilation — are exempt
	// from the invariants (benchmarks sleep, fixtures compare with
	// bytes.Equal) and their base packages are analyzed anyway.
	if cfg.VetxOnly {
		return 0
	}
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			return 0
		}
	}

	fset := token.NewFileSet()
	imp := load.ExportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	target, err := load.Check(cfg.ImportPath, fset, cfg.GoFiles, imp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phlint: %v\n", err)
		return 3
	}
	findings, err := analysis.Run(target, suite.All)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phlint: %v\n", err)
		return 3
	}
	var code int
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", f.Position, f.Message, f.Analyzer)
		code = 2
	}
	return code
}
