package replica

import (
	"bytes"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/fault"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/storage"
)

// dialFaulty is primary.dial with the client side of every pipe wrapped
// in a fault.Conn, so the chaos tests can partition, delay, or cut the
// follower's link without touching the primary.
func dialFaulty(p *primary, plan fault.ConnPlan) func() (*client.Conn, error) {
	return func() (*client.Conn, error) {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.srv == nil {
			return nil, fmt.Errorf("primary is down")
		}
		cliSide, srvSide := net.Pipe()
		go p.srv.ServeConn(srvSide)
		p.conns = append(p.conns, cliSide, srvSide)
		return client.NewConn(fault.NewConn(cliSide, plan)), nil
	}
}

// srvDial hands out pipes served by a fixed server.
func srvDial(srv *server.Server) func() (*client.Conn, error) {
	return func() (*client.Conn, error) {
		cliSide, srvSide := net.Pipe()
		go srv.ServeConn(srvSide)
		return client.NewConn(cliSide), nil
	}
}

// snapshotTotal measures the primary's current snapshot size, for
// mid-transfer assertions.
func snapshotTotal(t *testing.T, p *primary) uint64 {
	t.Helper()
	var buf bytes.Buffer
	if _, err := p.store.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return uint64(buf.Len())
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosPrimaryCrashMidSnapshotTransfer kill-crashes the primary
// while a follower is mid-way through fetching its bootstrap snapshot.
// The restarted primary replays the same log, so the snapshot identity
// is unchanged and the transfer must resume at its offset — every byte
// fetched exactly once — and end in bit-identical roots.
func TestChaosPrimaryCrashMidSnapshotTransfer(t *testing.T) {
	p := newPrimary(t)
	s := newScheme(t)
	seed(t, p, s, "emp", 600)
	total := snapshotTotal(t, p)

	f := New(dialFaulty(p, fault.ConnPlan{Delay: time.Millisecond}),
		Options{PollInterval: time.Millisecond, MaxBytes: 256})
	defer f.Close()

	waitFor(t, "mid-transfer", func() bool {
		st := f.Status()
		if st.Snapshots != 0 {
			t.Fatal("snapshot completed before the crash could land mid-transfer")
		}
		return st.SnapshotBytes > total/4
	})
	p.restart()

	waitConverged(t, p, f)
	st := f.Status()
	if st.Snapshots != 1 {
		t.Fatalf("follower installed %d snapshots, want exactly 1", st.Snapshots)
	}
	if st.SnapshotBytes != total {
		t.Fatalf("follower fetched %d snapshot bytes for a %d-byte snapshot: the transfer restarted instead of resuming", st.SnapshotBytes, total)
	}
	if !f.Ready() {
		t.Fatal("converged follower reports not ready")
	}
}

// TestChaosPartitionMidBootstrap partitions the follower's link in the
// middle of the snapshot transfer. Progress must stop dead under the
// partition, resume from the same offset when it heals, and converge —
// with the accumulated buffer surviving (no reset, no refetch).
func TestChaosPartitionMidBootstrap(t *testing.T) {
	p := newPrimary(t)
	s := newScheme(t)
	seed(t, p, s, "emp", 600)
	total := snapshotTotal(t, p)

	var sw fault.Switch
	f := New(dialFaulty(p, fault.ConnPlan{Delay: time.Millisecond, Partition: &sw}),
		Options{PollInterval: time.Millisecond, MaxBytes: 256})
	defer f.Close()

	waitFor(t, "mid-transfer", func() bool {
		st := f.Status()
		if st.Snapshots != 0 {
			t.Fatal("snapshot completed before the partition could land mid-transfer")
		}
		return st.SnapshotBytes > total/4
	})
	sw.Set(true)
	time.Sleep(10 * time.Millisecond) // let any in-flight round drain
	b0 := f.Status().SnapshotBytes
	time.Sleep(30 * time.Millisecond)
	if st := f.Status(); st.SnapshotBytes != b0 || st.Snapshots != 0 {
		t.Fatalf("transfer progressed under a partition: %d -> %d bytes, %d installs", b0, st.SnapshotBytes, st.Snapshots)
	}
	sw.Set(false)

	waitConverged(t, p, f)
	st := f.Status()
	if st.Snapshots != 1 {
		t.Fatalf("follower installed %d snapshots, want exactly 1", st.Snapshots)
	}
	if st.SnapshotBytes != total {
		t.Fatalf("follower fetched %d bytes for a %d-byte snapshot: the partition voided the buffer", st.SnapshotBytes, total)
	}
	if st.Resets != 0 {
		t.Fatalf("partition caused %d resets; the transfer should have resumed", st.Resets)
	}
}

// TestChaosResetWindowUnverifiedReads is the resetting-follower read
// window, repro and fix. Repro: an unverified Select routed to a
// replica whose store holds a partially replayed prefix returns a
// near-empty answer with no error. Fix: the follower's Ready signal,
// wired into the replica server, turns that window into refusals the
// client fails over from — zero accepted-but-wrong reads.
func TestChaosResetWindowUnverifiedReads(t *testing.T) {
	s := newScheme(t)
	full := relation.NewTable(empSchema())
	full.MustInsert(relation.String("Ada"), relation.String("HR"))
	full.MustInsert(relation.String("Grace"), relation.String("HR"))
	full.MustInsert(relation.String("Lin"), relation.String("HR"))
	ctFull, err := s.EncryptTable(full)
	if err != nil {
		t.Fatal(err)
	}
	prefix := relation.NewTable(empSchema())
	prefix.MustInsert(relation.String("Ada"), relation.String("HR"))
	ctPrefix, err := s.EncryptTable(prefix)
	if err != nil {
		t.Fatal(err)
	}

	pstore := storage.NewMemory()
	if err := pstore.Put("emp", ctFull); err != nil {
		t.Fatal(err)
	}
	// The replica mid-replay: same table name, only a prefix of the rows
	// — exactly what sits in a follower's store between Reset and
	// catch-up.
	rstore := storage.NewMemory()
	if err := rstore.Put("emp", ctPrefix); err != nil {
		t.Fatal(err)
	}
	psrv := server.New(pstore, nil)
	hr := relation.Eq{Column: "dept", Value: relation.String("HR")}

	// --- Repro: ungated replica server, unverified client (no pinned
	// root). The wrong answer comes back with no error at all.
	conn, err := srvDial(psrv)()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	db := client.NewDB(conn, s, "emp")
	db.AddReplica(srvDial(server.NewWithOptions(rstore, nil, server.Options{ReadOnly: true})))
	got, err := db.Select(hr)
	if err != nil {
		t.Fatalf("repro select: %v", err)
	}
	if got.Len() != 1 {
		t.Fatalf("repro expected the silently-wrong 1-row answer, got %d rows", got.Len())
	}
	if st := db.ReadStats(); st.ReplicaReads != 1 {
		t.Fatalf("repro read was not served by the replica: %+v", st)
	}

	// --- Fix: the same mid-reset store behind a Ready-gated server. The
	// replica refuses, the client quarantines it and fails over, and the
	// answer is the full correct one.
	conn2, err := srvDial(psrv)()
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	db2 := client.NewDB(conn2, s, "emp")
	db2.AddReplica(srvDial(server.NewWithOptions(rstore, nil, server.Options{
		ReadOnly: true,
		Ready:    func() bool { return false },
	})))
	got, err = db2.Select(hr)
	if err != nil {
		t.Fatalf("gated select: %v", err)
	}
	if got.Len() != 3 {
		t.Fatalf("gated select returned %d rows, want the primary's 3", got.Len())
	}
	if st := db2.ReadStats(); st.ReplicaFailures != 1 || st.Failovers != 1 || st.PrimaryReads != 1 {
		t.Fatalf("gated read did not refuse-and-fail-over: %+v", st)
	}
}

// TestChaosResetWindowLive drives the same window end to end: a live
// follower on the record-0 replay path is forced to reset by a primary
// compaction, and while it is mid-replay an unverified Select must
// come back correct — served by the primary via failover, never from
// the half-replayed store.
func TestChaosResetWindowLive(t *testing.T) {
	p := newPrimary(t)
	s := newScheme(t)
	seed(t, p, s, "emp", 40)
	// Many small tables so the compacted log is long and the replay
	// window wide (compaction collapses each table to one record).
	for i := 0; i < 60; i++ {
		seed(t, p, s, fmt.Sprintf("t%02d", i), 2)
	}

	f := New(dialFaulty(p, fault.ConnPlan{Delay: time.Millisecond}),
		Options{PollInterval: time.Millisecond, MaxBytes: 1, DisableSnapshot: true})
	defer f.Close()
	waitConverged(t, p, f)

	fsrv := server.NewWithOptions(f.Store(), nil, server.Options{ReadOnly: true, Ready: f.Ready})
	conn, err := p.dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	db := client.NewDB(conn, s, "emp")
	db.AddReplica(srvDial(fsrv))
	hr := relation.Eq{Column: "dept", Value: relation.String("HR")}

	// Healthy read first: served by the ready follower.
	got, err := db.Select(hr)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 40 {
		t.Fatalf("healthy replica read returned %d rows, want 40", got.Len())
	}
	if st := db.ReadStats(); st.ReplicaReads != 1 {
		t.Fatalf("healthy read was not served by the follower: %+v", st)
	}

	// Rotate the epoch out from under the follower and catch it mid-reset.
	if err := p.store.Compact(); err != nil {
		t.Fatal(err)
	}
	appendOne(t, p, s, "emp", 0)
	waitFor(t, "the reset window", func() bool {
		return f.Status().Resets >= 1 && !f.Ready()
	})
	got, err = db.Select(hr)
	if err != nil {
		t.Fatalf("mid-reset select: %v", err)
	}
	if got.Len() != 40 {
		t.Fatalf("mid-reset select returned %d rows, want 40: an accepted-but-wrong read", got.Len())
	}
	if st := db.ReadStats(); st.ReplicaFailures == 0 || st.PrimaryReads == 0 {
		t.Fatalf("mid-reset read was not refused-and-failed-over: %+v", st)
	}

	waitConverged(t, p, f)
	if !f.Ready() {
		t.Fatal("caught-up follower reports not ready")
	}
}

// TestChaosDurableFollowerResume: a durable follower survives its own
// restart. The ship-base sidecar makes the reopened store a consistent
// cut with a known cursor, so the new follower is Ready immediately
// and resumes tailing — no snapshot, no reset, no record-0 replay.
func TestChaosDurableFollowerResume(t *testing.T) {
	p := newPrimary(t)
	s := newScheme(t)
	seed(t, p, s, "emp", 30)

	fpath := filepath.Join(t.TempDir(), "follower.log")
	fst, err := storage.Open(fpath)
	if err != nil {
		t.Fatal(err)
	}
	f := New(p.dial, Options{PollInterval: 2 * time.Millisecond, Store: fst})
	waitConverged(t, p, f)
	if got := f.Status().Snapshots; got != 1 {
		t.Fatalf("fresh durable follower installed %d snapshots, want 1", got)
	}
	// A few records past the snapshot, so the resume cursor is strictly
	// beyond the installed base.
	for i := 0; i < 3; i++ {
		appendOne(t, p, s, "emp", i)
	}
	waitConverged(t, p, f)
	f.Close()
	if err := fst.Close(); err != nil {
		t.Fatal(err)
	}

	appendOne(t, p, s, "emp", 99)

	fst2, err := storage.Open(fpath)
	if err != nil {
		t.Fatal(err)
	}
	defer fst2.Close()
	f2 := New(p.dial, Options{PollInterval: 2 * time.Millisecond, Store: fst2})
	defer f2.Close()
	if !f2.Ready() {
		t.Fatal("restarted durable follower is not immediately ready")
	}
	waitConverged(t, p, f2)
	st := f2.Status()
	if st.Snapshots != 0 || st.Resets != 0 {
		t.Fatalf("restarted follower re-bootstrapped (%d snapshots, %d resets) instead of resuming its cursor", st.Snapshots, st.Resets)
	}
}
