package wire

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/ph"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{Type: CmdQuery, Payload: []byte("payload")}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip: %+v vs %+v", out, in)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: CmdList}); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != CmdList || len(out.Payload) != 0 {
		t.Fatalf("empty frame round trip: %+v", out)
	}
}

func TestFrameStreamsMultiple(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := WriteFrame(&buf, Frame{Type: byte(i + 1), Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != byte(i+1) || f.Payload[0] != byte(i) {
			t.Fatalf("frame %d: %+v", i, f)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	if err := WriteFrame(io.Discard, Frame{Payload: make([]byte, MaxFrameSize)}); err == nil {
		t.Fatal("oversized frame written")
	}
	// A forged header declaring a huge length must be rejected without
	// allocation.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01}
	if _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized frame header accepted")
	}
}

func TestFrameRejectsZeroLength(t *testing.T) {
	hdr := []byte{0, 0, 0, 0, 0}
	if _, err := ReadFrame(bytes.NewReader(hdr[:4])); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: 1, Payload: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadFrame(bytes.NewReader(b[:len(b)-2])); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestBufferPrimitives(t *testing.T) {
	var b []byte
	b = AppendU8(b, 7)
	b = AppendU32(b, 1<<20)
	b = AppendU64(b, 1<<40)
	b = AppendBytes(b, []byte("raw"))
	b = AppendString(b, "str")
	r := NewBuffer(b)
	if v, err := r.U8(); err != nil || v != 7 {
		t.Fatalf("U8: %v %v", v, err)
	}
	if v, err := r.U32(); err != nil || v != 1<<20 {
		t.Fatalf("U32: %v %v", v, err)
	}
	if v, err := r.U64(); err != nil || v != 1<<40 {
		t.Fatalf("U64: %v %v", v, err)
	}
	if v, err := r.Bytes(); err != nil || string(v) != "raw" {
		t.Fatalf("Bytes: %q %v", v, err)
	}
	if v, err := r.String(); err != nil || v != "str" {
		t.Fatalf("String: %q %v", v, err)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err on consumed buffer: %v", err)
	}
}

func TestBufferUnderflow(t *testing.T) {
	r := NewBuffer([]byte{1})
	if _, err := r.U32(); err == nil {
		t.Fatal("U32 underflow accepted")
	}
	r2 := NewBuffer(AppendU32(nil, 100))
	if _, err := r2.Bytes(); err == nil {
		t.Fatal("Bytes with oversized length accepted")
	}
	r3 := NewBuffer([]byte{1, 2})
	if _, err := r3.U8(); err != nil {
		t.Fatal(err)
	}
	if err := r3.Err(); err == nil {
		t.Fatal("trailing bytes not reported")
	}
}

func sampleTable() *ph.EncryptedTable {
	return &ph.EncryptedTable{
		SchemeID: "swp-ph",
		Meta:     []byte{0, 11, 0, 2},
		Tuples: []ph.EncryptedTuple{
			{ID: []byte("id-1"), Words: [][]byte{[]byte("w11"), []byte("w12")}},
			{ID: []byte("id-2"), Blob: []byte("blob"), Words: [][]byte{[]byte("w21")}},
			{ID: []byte{}, Words: nil},
		},
	}
}

func TestTableCodecRoundTrip(t *testing.T) {
	in := sampleTable()
	out, err := DecodeTable(NewBuffer(EncodeTable(nil, in)))
	if err != nil {
		t.Fatal(err)
	}
	if out.SchemeID != in.SchemeID || !bytes.Equal(out.Meta, in.Meta) || len(out.Tuples) != len(in.Tuples) {
		t.Fatalf("table header mismatch: %+v", out)
	}
	for i := range in.Tuples {
		if !bytes.Equal(out.Tuples[i].ID, in.Tuples[i].ID) ||
			!bytes.Equal(out.Tuples[i].Blob, in.Tuples[i].Blob) ||
			len(out.Tuples[i].Words) != len(in.Tuples[i].Words) {
			t.Fatalf("tuple %d mismatch", i)
		}
		for j := range in.Tuples[i].Words {
			if !bytes.Equal(out.Tuples[i].Words[j], in.Tuples[i].Words[j]) {
				t.Fatalf("tuple %d word %d mismatch", i, j)
			}
		}
	}
}

func TestQueryCodecRoundTrip(t *testing.T) {
	in := &ph.EncryptedQuery{SchemeID: "bucket", Token: []byte{0, 2, 9, 9}}
	out, err := DecodeQuery(NewBuffer(EncodeQuery(nil, in)))
	if err != nil {
		t.Fatal(err)
	}
	if out.SchemeID != in.SchemeID || !bytes.Equal(out.Token, in.Token) {
		t.Fatalf("query mismatch: %+v", out)
	}
}

func TestResultCodecRoundTrip(t *testing.T) {
	in := &ph.Result{
		Positions: []int{0, 2, 7},
		Tuples: []ph.EncryptedTuple{
			{ID: []byte("a"), Words: [][]byte{[]byte("w")}},
			{ID: []byte("b")},
			{ID: []byte("c"), Blob: []byte("x")},
		},
	}
	out, err := DecodeResult(NewBuffer(EncodeResult(nil, in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Positions) != 3 || out.Positions[1] != 2 || len(out.Tuples) != 3 {
		t.Fatalf("result mismatch: %+v", out)
	}
}

func TestListCodecRoundTrip(t *testing.T) {
	in := []TableInfo{
		{Name: "emp", SchemeID: "swp-ph", Tuples: 42},
		{Name: "patients", SchemeID: "bucket", Tuples: 0},
	}
	out, err := DecodeList(NewBuffer(EncodeList(nil, in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("list mismatch: %+v", out)
	}
}

func TestTupleCodecProperty(t *testing.T) {
	f := func(id, blob []byte, w1, w2 []byte) bool {
		in := ph.EncryptedTuple{ID: id, Blob: blob, Words: [][]byte{w1, w2}}
		out, err := DecodeTuple(NewBuffer(EncodeTuple(nil, in)))
		if err != nil {
			return false
		}
		return bytes.Equal(out.ID, id) && bytes.Equal(out.Blob, blob) &&
			bytes.Equal(out.Words[0], w1) && bytes.Equal(out.Words[1], w2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruptCounts(t *testing.T) {
	// A tuple declaring 2^32-1 words must fail fast.
	b := AppendBytes(nil, []byte("id"))
	b = AppendBytes(b, nil)
	b = AppendU32(b, 0xFFFFFFFF)
	if _, err := DecodeTuple(NewBuffer(b)); err == nil {
		t.Fatal("absurd word count accepted")
	}
}
