package crypto

import (
	"bytes"
	"testing"
)

func TestPRGDeterministic(t *testing.T) {
	g1, err := NewPRG(testKey(1))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewPRG(testKey(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g1.Block(7, 20), g2.Block(7, 20)) {
		t.Fatal("PRG not deterministic across instances with the same seed")
	}
}

func TestPRGSeedSeparation(t *testing.T) {
	g1, _ := NewPRG(testKey(1))
	g2, _ := NewPRG(testKey(2))
	if bytes.Equal(g1.Block(0, 32), g2.Block(0, 32)) {
		t.Fatal("PRG blocks identical under different seeds")
	}
}

func TestPRGBlocksDisjoint(t *testing.T) {
	g, _ := NewPRG(testKey(3))
	seen := make(map[string]uint64)
	for i := uint64(0); i < 1000; i++ {
		b := g.Block(i, 9)
		if j, dup := seen[string(b)]; dup {
			t.Fatalf("PRG blocks %d and %d identical", i, j)
		}
		seen[string(b)] = i
	}
}

func TestPRGRandomAccess(t *testing.T) {
	// Block(i, n) must not depend on previously generated blocks.
	g1, _ := NewPRG(testKey(4))
	g2, _ := NewPRG(testKey(4))
	_ = g1.Block(0, 16)
	_ = g1.Block(1, 16)
	want := g1.Block(42, 16)
	got := g2.Block(42, 16)
	if !bytes.Equal(want, got) {
		t.Fatal("PRG block depends on generation history")
	}
}

func TestPRGLengths(t *testing.T) {
	g, _ := NewPRG(testKey(5))
	for _, n := range []int{1, 15, 16, 17, 32, 100} {
		if got := len(g.Block(3, n)); got != n {
			t.Fatalf("Block(_, %d) returned %d bytes", n, got)
		}
	}
}

func TestRandomKeyDistinct(t *testing.T) {
	a, err := RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("two random keys are identical")
	}
}

func TestRandomBytes(t *testing.T) {
	b, err := RandomBytes(24)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 24 {
		t.Fatalf("RandomBytes(24) returned %d bytes", len(b))
	}
}
