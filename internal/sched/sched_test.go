package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestAcquireMinimumOne(t *testing.T) {
	b := NewBudget(2)
	// Drain the budget entirely.
	got := b.Acquire(8)
	if got != 3 { // caller + 2 extras
		t.Fatalf("Acquire(8) on fresh budget of 2 = %d, want 3", got)
	}
	if idle := b.Idle(); idle != 0 {
		t.Fatalf("Idle after drain = %d, want 0", idle)
	}
	// A saturated budget still grants the guaranteed minimum, immediately.
	for i := 0; i < 4; i++ {
		if g := b.Acquire(8); g != 1 {
			t.Fatalf("Acquire on saturated budget = %d, want 1", g)
		}
		b.Release(1)
	}
	b.Release(got)
	if idle := b.Idle(); idle != 2 {
		t.Fatalf("Idle after release = %d, want 2", idle)
	}
}

func TestAcquireClampsToWant(t *testing.T) {
	b := NewBudget(16)
	if got := b.Acquire(3); got != 3 {
		t.Fatalf("Acquire(3) = %d, want 3", got)
	}
	if idle := b.Idle(); idle != 14 {
		t.Fatalf("Idle = %d, want 14", idle)
	}
	if got := b.Acquire(0); got != 1 {
		t.Fatalf("Acquire(0) = %d, want 1 (clamped)", got)
	}
}

func TestNewBudgetClamps(t *testing.T) {
	if c := NewBudget(0).Capacity(); c != 1 {
		t.Fatalf("NewBudget(0).Capacity() = %d, want 1", c)
	}
	if c := NewBudget(-5).Capacity(); c != 1 {
		t.Fatalf("NewBudget(-5).Capacity() = %d, want 1", c)
	}
}

// TestConcurrentExtrasNeverExceedCapacity hammers the budget from many
// goroutines and asserts the invariant the whole design rests on: the sum
// of extra workers in flight never exceeds the capacity.
func TestConcurrentExtrasNeverExceedCapacity(t *testing.T) {
	const capacity = 4
	b := NewBudget(capacity)
	var extras atomic.Int64
	var peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				got := b.Acquire(capacity)
				if got < 1 || got > capacity+1 {
					t.Errorf("Acquire = %d outside [1, %d]", got, capacity+1)
				}
				cur := extras.Add(int64(got - 1))
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				extras.Add(int64(-(got - 1)))
				b.Release(got)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > capacity {
		t.Fatalf("peak extra workers %d exceeds capacity %d", p, capacity)
	}
	if idle := b.Idle(); idle != capacity {
		t.Fatalf("Idle after all releases = %d, want %d", idle, capacity)
	}
}

func TestProcessBudgetSwap(t *testing.T) {
	orig := Process()
	if orig.Capacity() != runtime.GOMAXPROCS(0) {
		t.Fatalf("process budget capacity %d, want GOMAXPROCS %d", orig.Capacity(), runtime.GOMAXPROCS(0))
	}
	big := NewBudget(64)
	prev := SetProcess(big)
	if prev != orig {
		t.Fatal("SetProcess did not return the previous budget")
	}
	if Process() != big {
		t.Fatal("Process() did not observe the swapped budget")
	}
	// Restore; nil resets to a GOMAXPROCS-sized default.
	SetProcess(prev)
	if got := SetProcess(nil); got != prev {
		t.Fatal("restore lost the original budget")
	}
	if c := Process().Capacity(); c != runtime.GOMAXPROCS(0) {
		t.Fatalf("nil reset capacity %d, want GOMAXPROCS", c)
	}
	SetProcess(orig)
}

func TestStatsCountAllotments(t *testing.T) {
	b := NewBudget(4)
	if s := b.Stats(); s != (Stats{}) {
		t.Fatalf("fresh budget stats = %+v, want zero", s)
	}
	g1 := b.Acquire(8) // caller + all 4 extras
	g2 := b.Acquire(8) // saturated: caller only
	if g1 != 5 || g2 != 1 {
		t.Fatalf("grants = %d, %d, want 5, 1", g1, g2)
	}
	s := b.Stats()
	if s.Acquires != 2 {
		t.Fatalf("Acquires = %d, want 2", s.Acquires)
	}
	if s.Extras != 4 {
		t.Fatalf("Extras = %d, want 4", s.Extras)
	}
	if s.Releases != 0 {
		t.Fatalf("Releases = %d, want 0", s.Releases)
	}
	b.Release(g2) // minimum grant: not counted
	b.Release(g1)
	s = b.Stats()
	if s.Releases != 1 {
		t.Fatalf("Releases after returning extras = %d, want 1", s.Releases)
	}
	if idle := b.Idle(); idle != 4 {
		t.Fatalf("Idle = %d, want 4", idle)
	}
}
