package server

import (
	"fmt"
	"sync"

	"repro/internal/authindex"
	"repro/internal/ph"
	"repro/internal/query"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/wire"
)

// storeBackend is the canonical Backend: the full command set evaluated
// against one local storage.Store. It carries no policy — Ready gating,
// read-only rejection, deadlines and caps all live in Server — so the
// same command implementations serve primaries, replicas, and the
// per-shard stores behind a coordinator.
type storeBackend struct {
	store *storage.Store
}

func (b *storeBackend) Sync() error { return b.store.Sync() }

// maxBatchFanout caps the goroutines one CmdQueryBatch frame may put in
// flight. The cap bounds per-frame goroutine count against hostile
// frames; it deliberately exceeds the scheduler budget's capacity — see
// queryBatch.
const maxBatchFanout = 64

// queryBatch evaluates a batch of queries against one table. The fanout
// is sized well above the scheduler budget's capacity on purpose: with
// the scan-sharing layer (internal/scanshare) in the store, cold queries
// on the same table coalesce into one shared ψ pass, so most of these
// goroutines just ride a pass (blocked on its completion) rather than
// scanning — capping fanout at CPU count would *serialise* riders that
// could have shared one pass. Actual scan parallelism stays bounded by
// the sched budget, which the shared pass (and every solo scan) draws
// its workers from. The workers pull query indices from a channel, so
// one stalled evaluation occupies only its own worker and never wedges
// dispatch of later queries behind it; pulling also bounds live
// goroutines per frame at the fanout, so a hostile frame declaring
// millions of queries cannot spawn millions of goroutines. Results keep
// the request order; on failure the lowest-index error wins and the
// batch fails as a unit, exactly as the serial loop behaved.
func (b *storeBackend) queryBatch(name string, queries []*ph.EncryptedQuery) ([]*ph.Result, error) {
	results := make([]*ph.Result, len(queries))
	if len(queries) <= 1 {
		for i, q := range queries {
			res, err := b.store.Query(name, q)
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		return results, nil
	}
	errs := make([]error, len(queries))
	workers := min(len(queries), max(maxBatchFanout, sched.Process().Capacity()))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i], errs[i] = b.store.Query(name, queries[i])
			}
		}()
	}
	for i := range queries {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// HandleFrame implements the command set. Response payloads build on
// scratch.
func (b *storeBackend) HandleFrame(f wire.Frame, scratch []byte) (wire.Frame, error) {
	r := wire.NewBuffer(f.Payload)
	switch f.Type {
	case wire.CmdStore:
		name, err := r.String()
		if err != nil {
			return wire.Frame{}, err
		}
		t, err := wire.DecodeTable(r)
		if err != nil {
			return wire.Frame{}, err
		}
		if err := b.store.Put(name, t); err != nil {
			return wire.Frame{}, err
		}
		return wire.Frame{Type: wire.RespOK}, nil

	case wire.CmdInsert, wire.CmdInsertStamped:
		name, err := r.String()
		if err != nil {
			return wire.Frame{}, err
		}
		n, err := r.U32()
		if err != nil {
			return wire.Frame{}, err
		}
		tuples := make([]ph.EncryptedTuple, 0, wire.ClampCount(n, r.Remaining()/8))
		for i := uint32(0); i < n; i++ {
			tp, err := wire.DecodeTuple(r)
			if err != nil {
				return wire.Frame{}, err
			}
			tuples = append(tuples, tp)
		}
		base, version, err := b.store.AppendStamped(name, tuples)
		if err != nil {
			return wire.Frame{}, err
		}
		if f.Type == wire.CmdInsert {
			// Legacy ack, so pre-extension clients keep working.
			return wire.Frame{Type: wire.RespOK}, nil
		}
		// The placement ack lets a verifying client advance its pinned
		// root from its own leaf hashes instead of re-downloading.
		payload := wire.AppendU32(scratch, uint32(base))
		payload = wire.AppendU32(payload, uint32(len(tuples)))
		payload = wire.AppendU64(payload, version)
		return wire.Frame{Type: wire.RespInserted, Payload: payload}, nil

	case wire.CmdQuery:
		name, err := r.String()
		if err != nil {
			return wire.Frame{}, err
		}
		q, err := wire.DecodeQuery(r)
		if err != nil {
			return wire.Frame{}, err
		}
		res, err := b.store.Query(name, q)
		if err != nil {
			return wire.Frame{}, err
		}
		return wire.Frame{Type: wire.RespResult, Payload: wire.EncodeResult(scratch, res)}, nil

	case wire.CmdQueryBatch:
		name, err := r.String()
		if err != nil {
			return wire.Frame{}, err
		}
		n, err := r.U32()
		if err != nil {
			return wire.Frame{}, err
		}
		// Capacity is clamped by what the payload could possibly encode
		// (a query is at least two length-prefixed fields), so a declared
		// count in a hostile frame cannot force a huge allocation.
		queries := make([]*ph.EncryptedQuery, 0, wire.ClampCount(n, r.Remaining()/8))
		for i := uint32(0); i < n; i++ {
			q, err := wire.DecodeQuery(r)
			if err != nil {
				return wire.Frame{}, err
			}
			queries = append(queries, q)
		}
		results, err := b.queryBatch(name, queries)
		if err != nil {
			return wire.Frame{}, err
		}
		payload := wire.AppendU32(scratch, n)
		for _, res := range results {
			payload = wire.EncodeResult(payload, res)
		}
		return wire.Frame{Type: wire.RespResults, Payload: payload}, nil

	case wire.CmdFetchAll:
		name, err := r.String()
		if err != nil {
			return wire.Frame{}, err
		}
		t, err := b.store.Get(name)
		if err != nil {
			return wire.Frame{}, err
		}
		return wire.Frame{Type: wire.RespTable, Payload: wire.EncodeTable(scratch, t)}, nil

	case wire.CmdDrop:
		name, err := r.String()
		if err != nil {
			return wire.Frame{}, err
		}
		if err := b.store.Drop(name); err != nil {
			return wire.Frame{}, err
		}
		return wire.Frame{Type: wire.RespOK}, nil

	case wire.CmdList:
		return wire.Frame{Type: wire.RespList, Payload: wire.EncodeList(scratch, b.store.List())}, nil

	case wire.CmdRoot:
		// Legacy command, kept working: the root now comes from the
		// store's incremental index (no per-request deep copy or tree
		// rebuild) and is version-stamped. Caveat: a root fetched here
		// and proofs fetched by a later CmdProve may straddle a mutation;
		// CmdQueryVerified is the race-free path.
		name, err := r.String()
		if err != nil {
			return wire.Frame{}, err
		}
		root, tuples, version, err := b.store.Root(name)
		if err != nil {
			return wire.Frame{}, err
		}
		payload := wire.AppendBytes(scratch, root)
		payload = wire.AppendU32(payload, uint32(tuples))
		payload = wire.AppendU64(payload, version)
		return wire.Frame{Type: wire.RespRoot, Payload: payload}, nil

	case wire.CmdProve:
		// Legacy command, kept working; same caveat as CmdRoot. Proofs
		// are cut from the incremental index under one lock acquisition.
		name, err := r.String()
		if err != nil {
			return wire.Frame{}, err
		}
		n, err := r.U32()
		if err != nil {
			return wire.Frame{}, err
		}
		// The preallocation is clamped by what the payload could
		// possibly hold (4 bytes per position) — a hostile count in a
		// small frame must not force a count-proportional allocation.
		positions := make([]int, 0, wire.ClampCount(n, r.Remaining()/4))
		for i := uint32(0); i < n; i++ {
			p, err := r.U32()
			if err != nil {
				return wire.Frame{}, err
			}
			positions = append(positions, int(p))
		}
		proofs, _, _, _, err := b.store.Prove(name, positions)
		if err != nil {
			return wire.Frame{}, err
		}
		return wire.Frame{Type: wire.RespProofs, Payload: authindex.EncodeProofs(scratch, proofs)}, nil

	case wire.CmdQueryVerified:
		name, err := r.String()
		if err != nil {
			return wire.Frame{}, err
		}
		q, err := wire.DecodeQuery(r)
		if err != nil {
			return wire.Frame{}, err
		}
		vr, err := b.store.QueryVerified(name, q)
		if err != nil {
			return wire.Frame{}, err
		}
		return wire.Frame{Type: wire.RespResultVerified, Payload: authindex.EncodeVerifiedResult(scratch, vr)}, nil

	case wire.CmdQueryConj:
		// The conjunctive pushdown: plan by estimated selectivity, narrow
		// survivors, answer with only the intersection. Executed (and, for
		// the verified flag, proof-cut) under one read-locked store
		// snapshot; the explain flag returns the plan without running it.
		name, err := r.String()
		if err != nil {
			return wire.Frame{}, err
		}
		flags, err := r.U8()
		if err != nil {
			return wire.Frame{}, err
		}
		n, err := r.U32()
		if err != nil {
			return wire.Frame{}, err
		}
		// Clamped like CmdQueryBatch: a declared count in a hostile frame
		// cannot force a huge allocation.
		queries := make([]*ph.EncryptedQuery, 0, wire.ClampCount(n, r.Remaining()/8))
		for i := uint32(0); i < n; i++ {
			q, err := wire.DecodeQuery(r)
			if err != nil {
				return wire.Frame{}, err
			}
			queries = append(queries, q)
		}
		resp := &query.Response{}
		switch {
		case flags&wire.ConjFlagExplain != 0:
			if resp.Plan, err = b.store.ExplainConj(name, queries); err != nil {
				return wire.Frame{}, err
			}
		case flags&wire.ConjFlagVerified != 0:
			if resp.Verified, resp.Plan, err = b.store.QueryConjVerified(name, queries); err != nil {
				return wire.Frame{}, err
			}
		default:
			if resp.Result, resp.Plan, err = b.store.QueryConj(name, queries); err != nil {
				return wire.Frame{}, err
			}
		}
		return wire.Frame{Type: wire.RespResultConj, Payload: query.EncodeResponse(scratch, resp)}, nil

	case wire.CmdShipLog:
		// Log shipping for read replicas: answer with records of the
		// current log file from the follower's cursor. The store clamps
		// everything hostile — an unknown epoch or a sequence past the
		// head serves the bootstrap stream, and the byte budget caps the
		// answer regardless of what the peer asked for.
		reqEpoch, err := r.U64()
		if err != nil {
			return wire.Frame{}, err
		}
		from, err := r.U64()
		if err != nil {
			return wire.Frame{}, err
		}
		maxBytes, err := r.U32()
		if err != nil {
			return wire.Frame{}, err
		}
		recs, epoch, start, head, err := b.store.ReadLog(reqEpoch, from, maxBytes)
		if err != nil {
			return wire.Frame{}, err
		}
		payload := wire.AppendU64(scratch, epoch)
		payload = wire.AppendU64(payload, start)
		payload = wire.AppendU64(payload, head)
		payload = wire.AppendU32(payload, uint32(len(recs)))
		for _, rec := range recs {
			payload = wire.AppendU8(payload, rec.Op)
			payload = wire.AppendBytes(payload, rec.Payload)
		}
		return wire.Frame{Type: wire.RespLogChunk, Payload: payload}, nil

	case wire.CmdShipSnapshot:
		// Snapshot shipping for replica bootstrap: one byte range of an
		// encoded snapshot. The store clamps everything hostile — the
		// budget is capped server-side, offsets past the end are empty,
		// and an identity it no longer holds is answered with a fresh
		// snapshot from offset 0.
		reqEpoch, err := r.U64()
		if err != nil {
			return wire.Frame{}, err
		}
		reqSeq, err := r.U64()
		if err != nil {
			return wire.Frame{}, err
		}
		offset, err := r.U64()
		if err != nil {
			return wire.Frame{}, err
		}
		maxBytes, err := r.U32()
		if err != nil {
			return wire.Frame{}, err
		}
		data, epoch, seq, total, off, err := b.store.ReadSnapshot(reqEpoch, reqSeq, offset, maxBytes)
		if err != nil {
			return wire.Frame{}, err
		}
		payload := wire.AppendU64(scratch, epoch)
		payload = wire.AppendU64(payload, seq)
		payload = wire.AppendU64(payload, total)
		payload = wire.AppendU64(payload, off)
		payload = wire.AppendBytes(payload, data)
		return wire.Frame{Type: wire.RespSnapshotChunk, Payload: payload}, nil

	default:
		return wire.Frame{}, fmt.Errorf("server: unknown command %#x", f.Type)
	}
}
