// Package clampalloc flags allocations sized by wire-decoded integers
// that reach make() without a clamp — the hostile-count allocation-bomb
// class fixed by hand in PRs 4, 5 and 7 (CmdProve counts, CmdQueryConj
// counts, snapshot table counts). A count field read off the wire is
// attacker-controlled: a 10-byte frame declaring 2^32 elements must not
// force a multi-gigabyte allocation before the decode loop notices the
// payload is short.
//
// A decoded count is cleared for allocation by flowing through one of
// the blessed clamps before reaching make():
//
//   - wire.ClampCount(n, possible) — the repo's single blessed sink
//   - the min() builtin
//   - a validated guard: if <comparison involving n> { return ... }
//
// The analysis is an intra-function forward taint pass: values produced
// by wire.Buffer integer accessors (U8/U16/U32/U64) and encoding/binary
// decoders are tainted; taint propagates through conversions,
// arithmetic and assignment; clamp calls and terminating guards
// sanitize. It runs over the repo's protocol-decoding packages (wire,
// query, authindex, storage, server, client, replica).
package clampalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the clampalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "clampalloc",
	Doc: "make() sized by a wire-decoded count must flow through wire.ClampCount, " +
		"min(), or a validated guard before allocating (hostile-count allocation bombs)",
	Match: func(path string) bool {
		return analysis.PathHasAnySegment(path, "wire", "query", "authindex", "storage", "server", "client", "replica", "shard", "scanshare")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn := &funcPass{pass: pass, tainted: map[types.Object]bool{}}
				fn.stmts(fd.Body.List)
			}
		}
	}
	return nil
}

// funcPass is the per-function taint state. The pass is deliberately
// flow-insensitive across branches (one mutable set, statements in
// source order): decode paths are straight-line loops, and the fixture
// suite pins that the idioms the repo actually uses resolve correctly.
type funcPass struct {
	pass    *analysis.Pass
	tainted map[types.Object]bool
}

// stmts processes a statement list in source order.
func (fn *funcPass) stmts(list []ast.Stmt) {
	for _, s := range list {
		fn.stmt(s)
	}
}

func (fn *funcPass) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		fn.exprs(s.Rhs)
		fn.assign(s.Lhs, s.Rhs)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					fn.exprs(vs.Values)
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					fn.assign(lhs, vs.Values)
				}
			}
		}
	case *ast.ExprStmt:
		fn.expr(s.X)
	case *ast.ReturnStmt:
		fn.exprs(s.Results)
	case *ast.IfStmt:
		if s.Init != nil {
			fn.stmt(s.Init)
		}
		fn.expr(s.Cond)
		fn.stmts(s.Body.List)
		if s.Else != nil {
			fn.stmt(s.Else)
		}
		// A terminating guard sanitizes every tainted variable its
		// condition compares: `if int(n) > r.Remaining() { return err }`
		// means n is payload-bounded from here on.
		if isComparison(s.Cond) && terminates(s.Body) {
			for _, id := range identsIn(s.Cond) {
				if obj := fn.pass.Info.Uses[id]; obj != nil {
					delete(fn.tainted, obj)
				}
			}
		}
	case *ast.BlockStmt:
		fn.stmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			fn.stmt(s.Init)
		}
		if s.Cond != nil {
			fn.expr(s.Cond)
		}
		fn.stmts(s.Body.List)
		if s.Post != nil {
			fn.stmt(s.Post)
		}
	case *ast.RangeStmt:
		fn.expr(s.X)
		fn.stmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			fn.stmt(s.Init)
		}
		if s.Tag != nil {
			fn.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				fn.exprs(cc.List)
				fn.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				fn.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				fn.stmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		fn.stmt(s.Stmt)
	case *ast.DeferStmt:
		fn.expr(s.Call)
	case *ast.GoStmt:
		fn.expr(s.Call)
	case *ast.SendStmt:
		fn.expr(s.Value)
	case *ast.IncDecStmt:
		// ++/-- preserves taint.
	}
}

// assign updates taint for one assignment.
func (fn *funcPass) assign(lhs, rhs []ast.Expr) {
	set := func(e ast.Expr, taint bool) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := fn.pass.Info.Defs[id]
		if obj == nil {
			obj = fn.pass.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if taint {
			fn.tainted[obj] = true
		} else {
			delete(fn.tainted, obj)
		}
	}
	if len(rhs) == 1 && len(lhs) > 1 {
		// n, err := r.U32(): the value result carries the taint.
		if call, ok := rhs[0].(*ast.CallExpr); ok && fn.isSource(call) {
			set(lhs[0], true)
			for _, l := range lhs[1:] {
				set(l, false)
			}
			return
		}
		for _, l := range lhs {
			set(l, false)
		}
		return
	}
	for i, l := range lhs {
		if i < len(rhs) {
			set(l, fn.exprTainted(rhs[i]))
		}
	}
}

// exprs walks expressions looking for unclamped make() sizes.
func (fn *funcPass) exprs(list []ast.Expr) {
	for _, e := range list {
		fn.expr(e)
	}
}

func (fn *funcPass) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate scope; decode paths do not allocate in closures
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := fn.pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
			return true
		}
		for _, size := range call.Args[1:] {
			if fn.exprTainted(size) {
				fn.pass.Reportf(size.Pos(),
					"allocation size derives from a wire-decoded count without a clamp; bound it with wire.ClampCount(n, possible), min(), or a validated guard before make()")
			}
		}
		return true
	})
}

// exprTainted reports whether the expression's value derives from an
// unclamped wire-decoded integer.
func (fn *funcPass) exprTainted(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := fn.pass.Info.Uses[e]
		if obj == nil {
			obj = fn.pass.Info.Defs[e]
		}
		return obj != nil && fn.tainted[obj]
	case *ast.ParenExpr:
		return fn.exprTainted(e.X)
	case *ast.UnaryExpr:
		return fn.exprTainted(e.X)
	case *ast.BinaryExpr:
		return fn.exprTainted(e.X) || fn.exprTainted(e.Y)
	case *ast.CallExpr:
		// A conversion propagates taint; any real call is a boundary:
		// sources taint, everything else (min, ClampCount, len, cap,
		// Remaining) yields a clean value.
		if tv, ok := fn.pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return fn.exprTainted(e.Args[0])
		}
		return fn.isSource(e)
	}
	return false
}

// isSource reports whether the call produces an attacker-controlled
// integer: a wire.Buffer integer accessor or an encoding/binary decode.
func (fn *funcPass) isSource(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	// (*Buffer).U8/U16/U32/U64/Uvarint — by receiver type name, so
	// fixtures and the real wire.Buffer are treated alike.
	switch name {
	case "U8", "U16", "U32", "U64", "Uvarint":
		if tv, ok := fn.pass.Info.Types[sel.X]; ok {
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Buffer" {
				return true
			}
		}
	}
	// encoding/binary: LittleEndian.Uint32(...), Uvarint, ReadUvarint...
	if obj, ok := fn.pass.Info.Uses[sel.Sel].(*types.Func); ok {
		if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "encoding/binary" {
			switch {
			case name == "Uvarint", name == "Varint",
				name == "ReadUvarint", name == "ReadVarint",
				len(name) > 4 && name[:4] == "Uint":
				return true
			}
		}
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			if recv := sig.Recv().Type(); recv != nil {
				if named, ok := deref(recv).(*types.Named); ok {
					if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "encoding/binary" && len(name) > 4 && name[:4] == "Uint" {
						return true
					}
				}
			}
		}
	}
	return false
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isComparison reports whether the condition contains a comparison —
// the shape of a count-validation guard.
func isComparison(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.GTR, token.GEQ, token.LSS, token.LEQ, token.EQL, token.NEQ:
				found = true
			}
		}
		return !found
	})
	return found
}

// terminates reports whether the block always leaves the enclosing
// flow: ends in return, break, continue, goto or panic.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// identsIn returns every identifier in the expression.
func identsIn(e ast.Expr) []*ast.Ident {
	var ids []*ast.Ident
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			ids = append(ids, id)
		}
		return true
	})
	return ids
}
