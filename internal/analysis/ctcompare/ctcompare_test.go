package ctcompare_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctcompare"
)

func TestCtcompare(t *testing.T) {
	analysistest.Run(t, "testdata", ctcompare.Analyzer, "swp")
}
