package bench

import (
	"fmt"
	"net"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/storage"
)

// E20 capacity model, disclosed in the table notes: the service floor is
// proportional to the partition a node serves. The single-process oracle
// holds the whole table and gets the full floor; each of the four shards
// holds ~a quarter of it and gets a quarter of the floor. As in E18 the
// floor is slept, not burned (MaxInflight=1 enforces one request at a
// time per node), so the measured scaling is pure protocol routing: it
// shows up only if the coordinator actually scatters to all shards
// concurrently.
const (
	e20Shards      = 4
	e20ShardFloor  = 2 * time.Millisecond
	e20OracleFloor = e20Shards * e20ShardFloor
)

// startFloorNode is startNode with an explicit service floor.
func startFloorNode(st *storage.Store, floor time.Duration, readOnly bool) (*e18Node, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.NewWithOptions(st, nil, server.Options{
		ReadOnly:       readOnly,
		MaxInflight:    1,
		MinServiceTime: floor,
	})
	go srv.Serve(l)
	return &e18Node{addr: l.Addr().String(), srv: srv}, nil
}

// RunE20 regenerates experiment E20: the scatter-gather sharded serving
// tier. The same encrypted table is served two ways — by one
// single-process oracle node, and hash-partitioned over four shard
// nodes behind a shard.Coordinator — and a fleet of verified-read
// clients measures aggregate cold-query throughput against both (every
// iteration queries a different code, so no node answers from a warm
// result). The built-in gates require:
//
//   - every sharded answer bit-identical to the oracle's (and to a
//     plaintext evaluation) across a sweep of codes;
//   - ≥2.5x aggregate throughput for 4 shards vs the oracle under the
//     disclosed capacity model;
//   - the Byzantine-shard drill: a follower serving a tampered copy of
//     one shard's partition is detected by the pinned root vector
//     *inside* that shard's read routing and quarantined while every
//     read keeps succeeding with oracle-identical answers; then a
//     tampered shard *primary* (no honest node left for that shard)
//     must fail the whole read — one mutated tuple on one shard cannot
//     poison the merge.
func RunE20(tuples, clients int, window time.Duration, seed int64) (*Table, error) {
	if tuples <= 0 {
		tuples = 2000
	}
	if clients <= 0 {
		clients = 6
	}
	if window <= 0 {
		window = 400 * time.Millisecond
	}
	t := &Table{
		ID: "E20",
		Title: fmt.Sprintf("sharded scatter-gather: cold-query throughput vs a single-process oracle (table: %d tuples, %d clients, %s window)",
			tuples, clients, window),
		Header: []string{"config", "nodes", "reads", "reads/s", "speedup"},
		Notes: []string{
			fmt.Sprintf("per-node capacity is EMULATED as in E18: MaxInflight=1 with a slept service floor proportional to partition size — %s for the oracle (whole table), %s per shard (~1/%d of it) — so speedup measures scatter routing, not host parallelism",
				e20OracleFloor, e20ShardFloor, e20Shards),
			"every read is verified: the oracle client pins one root, the sharded client pins a per-shard root vector (root-of-roots) and checks each sub-answer",
			"cold queries: every iteration selects a different code, so neither side answers from a warm result",
		},
	}

	// Dataset, scheme, plaintext truth for every code.
	table, err := e17Table(tuples, seed)
	if err != nil {
		return nil, err
	}
	key, err := crypto.RandomKey()
	if err != nil {
		return nil, err
	}
	scheme, err := core.New(key, table.Schema(), core.Options{})
	if err != nil {
		return nil, err
	}
	codes := make([]string, 200)
	want := make(map[string]string, len(codes))
	for i := range codes {
		codes[i] = fmt.Sprintf("c%03d", i)
		plain, err := relation.Select(table, relation.Eq{Column: "code", Value: relation.String(codes[i])})
		if err != nil {
			return nil, err
		}
		want[codes[i]] = plain.Sorted().String()
	}

	// The oracle: one node, full table, full floor.
	onode, err := startFloorNode(storage.NewMemory(), e20OracleFloor, false)
	if err != nil {
		return nil, err
	}
	defer onode.kill()
	oconn, err := client.DialWithConfig(onode.addr, e18Dial())
	if err != nil {
		return nil, err
	}
	defer oconn.Close()
	odb := client.NewDB(oconn, scheme, "pairs")
	if err := odb.CreateTable(table); err != nil {
		return nil, err
	}
	oroot, orootTuples := odb.Root()

	// The sharded tier: four nodes, a quarter floor each, one
	// coordinator scattering over them.
	stores := make([]*storage.Store, e20Shards)
	shardsCfg := &client.ShardsConfig{Version: 1}
	for i := range stores {
		stores[i] = storage.NewMemory()
		n, err := startFloorNode(stores[i], e20ShardFloor, false)
		if err != nil {
			return nil, err
		}
		defer n.kill()
		shardsCfg.Shards = append(shardsCfg.Shards, client.ShardConfig{Addr: n.addr})
	}
	seedCo, err := shard.FromConfig(shardsCfg, e18Dial())
	if err != nil {
		return nil, err
	}
	defer seedCo.Close()
	sdb := client.NewShardedDB(seedCo, scheme, "pairs")
	if err := sdb.CreateTable(table); err != nil {
		return nil, err
	}
	sroots, srootTuples := sdb.ShardRoots()

	// Bit-identical equivalence sweep: oracle vs sharded vs plaintext.
	oracleAnswer := func(code string) (string, error) {
		got, err := odb.Select(relation.Eq{Column: "code", Value: relation.String(code)})
		if err != nil {
			return "", err
		}
		return got.Sorted().String(), nil
	}
	for _, code := range codes[:20] {
		ostr, err := oracleAnswer(code)
		if err != nil {
			return nil, fmt.Errorf("bench: e20 oracle %s: %w", code, err)
		}
		got, err := sdb.Select(relation.Eq{Column: "code", Value: relation.String(code)})
		if err != nil {
			return nil, fmt.Errorf("bench: e20 sharded %s: %w", code, err)
		}
		if got.Sorted().String() != ostr || ostr != want[code] {
			return nil, fmt.Errorf("bench: e20: sharded answer for %s differs from the oracle's", code)
		}
	}
	t.Notes = append(t.Notes, "equivalence sweep passed: 20 codes, sharded == oracle == plaintext, bit-identical")

	// measure runs `clients` goroutines of back-to-back verified cold
	// reads for one window; mkDB builds one independent client per
	// goroutine (its own connections, its own pinned trust anchor).
	measure := func(mkDB func() (*client.DB, func(), error)) (ops int64, err error) {
		results := make(chan error, clients)
		counts := make(chan int64, clients)
		deadline := time.Now().Add(window)
		for c := 0; c < clients; c++ {
			go func(c int) {
				db, done, err := mkDB()
				if err != nil {
					counts <- 0
					results <- err
					return
				}
				defer done()
				var n int64
				for time.Now().Before(deadline) {
					code := codes[(c*37+int(n))%len(codes)]
					got, err := db.Select(relation.Eq{Column: "code", Value: relation.String(code)})
					if err != nil {
						counts <- n
						results <- err
						return
					}
					if got.Sorted().String() != want[code] {
						counts <- n
						results <- fmt.Errorf("bench: e20: verified read returned a wrong answer for %s", code)
						return
					}
					n++
				}
				counts <- n
				results <- nil
			}(c)
		}
		for c := 0; c < clients; c++ {
			ops += <-counts
			if rerr := <-results; rerr != nil && err == nil {
				err = rerr
			}
		}
		return ops, err
	}

	oracleDB := func() (*client.DB, func(), error) {
		conn, err := client.DialWithConfig(onode.addr, e18Dial())
		if err != nil {
			return nil, nil, err
		}
		db := client.NewDB(conn, scheme, "pairs")
		db.PinRoot(oroot, orootTuples)
		return db, func() { conn.Close() }, nil
	}
	shardedDB := func() (*client.DB, func(), error) {
		co, err := shard.FromConfig(shardsCfg, e18Dial())
		if err != nil {
			return nil, nil, err
		}
		db := client.NewShardedDB(co, scheme, "pairs")
		if err := db.PinShardRoots(sroots, srootTuples); err != nil {
			co.Close()
			return nil, nil, err
		}
		return db, func() { co.Close() }, nil
	}

	oops, err := measure(oracleDB)
	if err != nil {
		return nil, fmt.Errorf("bench: e20 oracle: %w", err)
	}
	orate := float64(oops) / window.Seconds()
	t.AddRow("single-process oracle", "1", fmt.Sprintf("%d", oops), fmt.Sprintf("%.0f", orate), "1.00x")

	sops, err := measure(shardedDB)
	if err != nil {
		return nil, fmt.Errorf("bench: e20 sharded: %w", err)
	}
	srate := float64(sops) / window.Seconds()
	speedup := srate / orate
	t.AddRow(fmt.Sprintf("%d-shard scatter-gather", e20Shards), fmt.Sprintf("%d", e20Shards),
		fmt.Sprintf("%d", sops), fmt.Sprintf("%.0f", srate), fmt.Sprintf("%.2fx", speedup))
	// The scaling gate presumes the slept floors dominate the real CPU
	// per read; the race detector multiplies that real CPU (a sharded
	// read does 4x the client-side proof verification of an oracle read)
	// several-fold while the floors stay fixed, so under race on a small
	// box the detector becomes the bottleneck. The full gate holds for
	// the regular test and experiment runs; under race we only require
	// the sharded tier not be slower than the oracle.
	gate := 2.5
	if raceEnabled {
		gate = 1.0
		t.Notes = append(t.Notes, "race detector enabled: scaling gate relaxed to 1.0x (detector overhead on the 4x-verification sharded path swamps the emulated floors)")
	}
	if speedup < gate {
		return nil, fmt.Errorf("bench: e20 gate: %d-shard speedup %.2fx, want >= %.1fx", e20Shards, speedup, gate)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("scaling gate passed: %.2fx aggregate cold-query throughput at %d shards (>= %.1fx required)", speedup, e20Shards, gate))

	// Byzantine-shard drill, part 1: a follower on one shard serves a
	// tampered copy of that shard's partition. The pinned root vector
	// fails it inside the shard's read routing; the pool quarantines the
	// follower and retries the shard primary, so every read still
	// succeeds and still matches the oracle.
	evilShard := -1
	for i, st := range stores {
		ct, err := st.Get("pairs")
		if err != nil {
			return nil, err
		}
		if len(ct.Tuples) == 0 {
			continue
		}
		mutated := ct.Clone()
		mutated.Tuples[0].ID[0] ^= 0xFF
		evil := storage.NewMemory()
		if err := evil.Put("pairs", mutated); err != nil {
			return nil, err
		}
		enode, err := startFloorNode(evil, e20ShardFloor, true)
		if err != nil {
			return nil, err
		}
		defer enode.kill()
		if err := seedCo.AddShardReplicas(i, e18Dial(), enode.addr); err != nil {
			return nil, err
		}
		evilShard = i
		break
	}
	if evilShard < 0 {
		return nil, fmt.Errorf("bench: e20: every shard partition is empty")
	}
	for i := 0; i < 4; i++ {
		code := codes[i]
		ostr, err := oracleAnswer(code)
		if err != nil {
			return nil, err
		}
		got, err := sdb.Select(relation.Eq{Column: "code", Value: relation.String(code)})
		if err != nil {
			return nil, fmt.Errorf("bench: e20 byzantine-follower drill: %w", err)
		}
		if got.Sorted().String() != ostr {
			return nil, fmt.Errorf("bench: e20 byzantine-follower drill: answer differs from the oracle's")
		}
	}
	stats := seedCo.ShardStats()
	if stats[evilShard].ReplicaFailures == 0 {
		return nil, fmt.Errorf("bench: e20: tampered follower on shard %d was never rejected (stats %+v)", evilShard, stats[evilShard])
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"Byzantine-follower drill passed: a tampered replica on shard %d failed root-vector verification %d time(s), was quarantined, and every read stayed bit-identical to the oracle",
		evilShard, stats[evilShard].ReplicaFailures))

	// Part 2: the shard *primary* itself turns Byzantine — no honest
	// node is left for that shard, so the read must fail outright
	// rather than merge three honest partitions with one forged one.
	honest, err := stores[evilShard].Get("pairs")
	if err != nil {
		return nil, err
	}
	mutated := honest.Clone()
	mutated.Tuples[0].ID[0] ^= 0xFF
	if err := stores[evilShard].Put("pairs", mutated); err != nil {
		return nil, err
	}
	if _, err := sdb.Select(relation.Eq{Column: "code", Value: relation.String(codes[0])}); err == nil {
		return nil, fmt.Errorf("bench: e20: a read over a tampered shard primary succeeded")
	}
	// Restore the partition: the surviving tier serves again.
	if err := stores[evilShard].Put("pairs", honest); err != nil {
		return nil, err
	}
	ostr, err := oracleAnswer(codes[0])
	if err != nil {
		return nil, err
	}
	got, err := sdb.Select(relation.Eq{Column: "code", Value: relation.String(codes[0])})
	if err != nil {
		return nil, fmt.Errorf("bench: e20 post-restore read: %w", err)
	}
	if got.Sorted().String() != ostr {
		return nil, fmt.Errorf("bench: e20 post-restore read: answer differs from the oracle's")
	}
	t.Notes = append(t.Notes,
		"Byzantine-primary drill passed: one flipped ciphertext byte on one shard failed the whole read (no silent partial merge); restoring the partition restored bit-identical service")
	return t, nil
}
