package bench

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/relation"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/storage"
)

// e18ServiceFloor is the emulated per-request service time on every
// node. The CI box is a single core, so real CPU parallelism across
// "machines" in one process is impossible; instead each node gets a
// strict capacity model — MaxInflight=1 and this floor, slept rather
// than burned — making a node's ceiling 1/floor reads/s regardless of
// host speed. Scaling measured under the model is pure protocol
// routing: it shows up only if the client actually spreads reads over
// the fleet.
const e18ServiceFloor = 2 * time.Millisecond

// e18Node is one serving process: a TCP listener in front of a store.
type e18Node struct {
	addr string
	srv  *server.Server
}

func startNode(st *storage.Store, readOnly bool) (*e18Node, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.NewWithOptions(st, nil, server.Options{
		ReadOnly:       readOnly,
		MaxInflight:    1,
		MinServiceTime: e18ServiceFloor,
	})
	go srv.Serve(l)
	return &e18Node{addr: l.Addr().String(), srv: srv}, nil
}

func (n *e18Node) kill() { n.srv.Close() }

// e18Dial is the client dial policy for the experiment: one attempt,
// short timeout, so a killed node costs a bounded detour instead of a
// retry stall (the DB quarantines it after the first failure anyway).
func e18Dial() client.DialConfig {
	return client.DialConfig{Timeout: 2 * time.Second, Attempts: 1}
}

// RunE18 regenerates experiment E18: WAL-shipping read replicas. A
// durable primary and two followers (replica.Follower tailing the
// primary's log over CmdShipLog, each behind a read-only server) serve
// a fleet of verified-read clients; the experiment measures read
// throughput as the client spreads over 1, 2 and 3 nodes, then runs
// two live drills:
//
//   - kill-a-replica: a follower dies mid-stream; every subsequent read
//     must still succeed (failover to the remaining nodes) and the
//     answers must be bit-for-bit the primary's.
//   - Byzantine replica: a node serving a tampered copy of the table;
//     the client's pinned-root verification must reject it, quarantine
//     it, and return the primary's answer — again bit-for-bit.
//
// The built-in gate requires ≥1.7x read throughput at 2 followers vs
// primary-only, and both drills to end with answers identical to the
// primary's.
func RunE18(tuples, clients int, window time.Duration, seed int64) (*Table, error) {
	if tuples <= 0 {
		tuples = 2000
	}
	if clients <= 0 {
		clients = 6
	}
	if window <= 0 {
		window = 300 * time.Millisecond
	}
	t := &Table{
		ID: "E18",
		Title: fmt.Sprintf("WAL-shipping read replicas: verified-read throughput and failover (table: %d tuples, %d clients, %s window)",
			tuples, clients, window),
		Header: []string{"config", "read nodes", "reads", "reads/s", "speedup"},
		Notes: []string{
			fmt.Sprintf("per-node capacity is EMULATED: MaxInflight=1 with a %s service floor (slept, not burned) — required on single-core CI, so speedup measures protocol routing, not host parallelism", e18ServiceFloor),
			"every read is verified against the client's pinned root; replicas are untrusted and add capacity, never trust",
			"followers replicate by tailing the primary's WAL over CmdShipLog into in-memory stores",
		},
	}

	dir, err := os.MkdirTemp("", "e18-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Primary: durable store on its own TCP listener.
	pst, err := storage.OpenOptions(filepath.Join(dir, "wal.log"), storage.Options{Sync: storage.SyncNever})
	if err != nil {
		return nil, err
	}
	defer pst.Close()
	pnode, err := startNode(pst, false)
	if err != nil {
		return nil, err
	}
	defer pnode.kill()

	// Dataset and trust anchor, uploaded through a regular client.
	key, err := crypto.RandomKey()
	if err != nil {
		return nil, err
	}
	table, err := e17Table(tuples, seed)
	if err != nil {
		return nil, err
	}
	scheme, err := core.New(key, table.Schema(), core.Options{})
	if err != nil {
		return nil, err
	}
	setup, err := client.DialWithConfig(pnode.addr, e18Dial())
	if err != nil {
		return nil, err
	}
	defer setup.Close()
	seedDB := client.NewDB(setup, scheme, "pairs")
	if err := seedDB.CreateTable(table); err != nil {
		return nil, err
	}
	root, rootTuples := seedDB.Root()

	// Followers: tail the primary's WAL, serve read-only.
	var followers []*e18Node
	for i := 0; i < 2; i++ {
		f := replica.New(func() (*client.Conn, error) {
			return client.DialWithConfig(pnode.addr, e18Dial())
		}, replica.Options{PollInterval: 20 * time.Millisecond})
		defer f.Close()
		if err := f.WaitCaughtUp(10 * time.Second); err != nil {
			return nil, err
		}
		fn, err := startNode(f.Store(), true)
		if err != nil {
			return nil, err
		}
		defer fn.kill()
		followers = append(followers, fn)
	}

	q := relation.Eq{Column: "code", Value: relation.String("c007")}
	want, err := relation.Select(table, q)
	if err != nil {
		return nil, err
	}
	wantStr := want.Sorted().String()

	newDB := func(readAddrs ...string) (*client.DB, error) {
		conn, err := client.DialWithConfig(pnode.addr, e18Dial())
		if err != nil {
			return nil, err
		}
		db := client.NewDB(conn, scheme, "pairs")
		db.PinRoot(root, rootTuples)
		db.AddReplicas(e18Dial(), readAddrs...)
		return db, nil
	}

	// measure runs `clients` goroutines of back-to-back verified reads
	// against the given read nodes for one window.
	measure := func(readAddrs ...string) (ops int64, err error) {
		results := make(chan error, clients)
		counts := make(chan int64, clients)
		deadline := time.Now().Add(window)
		for c := 0; c < clients; c++ {
			go func() {
				db, err := newDB(readAddrs...)
				if err != nil {
					counts <- 0
					results <- err
					return
				}
				var n int64
				for time.Now().Before(deadline) {
					got, err := db.Select(q)
					if err != nil {
						counts <- n
						results <- err
						return
					}
					if got.Sorted().String() != wantStr {
						counts <- n
						results <- fmt.Errorf("bench: e18: verified read returned a wrong answer")
						return
					}
					n++
				}
				counts <- n
				results <- nil
			}()
		}
		for c := 0; c < clients; c++ {
			ops += <-counts
			if rerr := <-results; rerr != nil && err == nil {
				err = rerr
			}
		}
		return ops, err
	}

	configs := []struct {
		label string
		addrs []string
	}{
		{"primary only", []string{pnode.addr}},
		{"primary + 1 follower", []string{pnode.addr, followers[0].addr}},
		{"primary + 2 followers", []string{pnode.addr, followers[0].addr, followers[1].addr}},
	}
	var base, last float64
	for i, cfg := range configs {
		ops, err := measure(cfg.addrs...)
		if err != nil {
			return nil, fmt.Errorf("bench: e18 %s: %w", cfg.label, err)
		}
		rate := float64(ops) / window.Seconds()
		if i == 0 {
			base = rate
		}
		last = rate
		t.AddRow(cfg.label, fmt.Sprintf("%d", len(cfg.addrs)),
			fmt.Sprintf("%d", ops), fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.2fx", rate/base))
	}
	speedup := last / base
	if speedup < 1.7 {
		return nil, fmt.Errorf("bench: e18 gate: 2-follower speedup %.2fx, want >= 1.7x", speedup)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("scaling gate passed: %.2fx at primary + 2 followers (>= 1.7x required)", speedup))

	// Drill 1: kill a follower mid-stream. Reads route through the dead
	// node's slot, fail over, and keep answering the primary's truth.
	drill, err := newDB(followers[1].addr)
	if err != nil {
		return nil, err
	}
	readOK := func(label string) error {
		got, err := drill.Select(q)
		if err != nil {
			return fmt.Errorf("bench: e18 %s: %w", label, err)
		}
		if got.Sorted().String() != wantStr {
			return fmt.Errorf("bench: e18 %s: answer differs from the primary's", label)
		}
		return nil
	}
	for i := 0; i < 3; i++ {
		if err := readOK("pre-kill read"); err != nil {
			return nil, err
		}
	}
	followers[1].kill()
	for i := 0; i < 3; i++ {
		if err := readOK("post-kill read"); err != nil {
			return nil, err
		}
	}
	st := drill.ReadStats()
	if st.Failovers == 0 {
		return nil, fmt.Errorf("bench: e18: follower killed but no read failed over (stats %+v)", st)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"failover drill passed: follower killed live; %d replica reads before, %d failovers after, every answer bit-identical to the primary's",
		st.ReplicaReads, st.Failovers))

	// Drill 2: a Byzantine replica serving a tampered table. The pinned
	// root rejects it; the read still succeeds — from the primary.
	ct, err := setup.FetchAll("pairs")
	if err != nil {
		return nil, err
	}
	ct.Tuples[0].ID[0] ^= 0xFF
	evil := storage.NewMemory()
	if err := evil.Put("pairs", ct); err != nil {
		return nil, err
	}
	enode, err := startNode(evil, true)
	if err != nil {
		return nil, err
	}
	defer enode.kill()
	bdb, err := newDB(enode.addr)
	if err != nil {
		return nil, err
	}
	if err := func() error {
		got, err := bdb.Select(q)
		if err != nil {
			return fmt.Errorf("bench: e18 byzantine drill: %w", err)
		}
		if got.Sorted().String() != wantStr {
			return fmt.Errorf("bench: e18 byzantine drill: answer differs from the primary's")
		}
		return nil
	}(); err != nil {
		return nil, err
	}
	bst := bdb.ReadStats()
	if bst.ReplicaFailures == 0 || bst.ReplicaReads != 0 {
		return nil, fmt.Errorf("bench: e18: tampered replica was not rejected (stats %+v)", bst)
	}
	t.Notes = append(t.Notes, "Byzantine drill passed: a replica serving one flipped byte failed pinned-root verification, was quarantined, and the primary's bit-identical answer was returned")
	return t, nil
}
