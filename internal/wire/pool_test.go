package wire

import (
	"bytes"
	"testing"
)

func TestReadFrameReuse(t *testing.T) {
	var net bytes.Buffer
	frames := []Frame{
		{Type: CmdQuery, Payload: []byte("first payload")},
		{Type: CmdList},
		{Type: CmdStore, Payload: bytes.Repeat([]byte("x"), 9000)}, // forces growth
		{Type: CmdDrop, Payload: []byte("tiny")},
	}
	for _, f := range frames {
		if err := WriteFrame(&net, f); err != nil {
			t.Fatal(err)
		}
	}
	buf := GetBuf()
	var grew int
	for i, want := range frames {
		f, next, err := ReadFrameReuse(&net, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if cap(next) > cap(buf) {
			grew++
		}
		buf = next
		if f.Type != want.Type || !bytes.Equal(f.Payload, want.Payload) {
			t.Fatalf("frame %d: got type %#x payload %d bytes, want %#x %d bytes",
				i, f.Type, len(f.Payload), want.Type, len(want.Payload))
		}
	}
	if grew == 0 {
		t.Fatal("buffer never grew; the growth path went untested")
	}
	PutBuf(buf)
}

func TestReadFrameReuseSteadyStateZeroAlloc(t *testing.T) {
	var one bytes.Buffer
	if err := WriteFrame(&one, Frame{Type: CmdQuery, Payload: bytes.Repeat([]byte("p"), 512)}); err != nil {
		t.Fatal(err)
	}
	raw := one.Bytes()
	buf := make([]byte, 0, 1024)
	r := bytes.NewReader(nil)
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(raw)
		f, next, err := ReadFrameReuse(r, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = next
		if len(f.Payload) != 512 {
			t.Fatalf("payload %d bytes", len(f.Payload))
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ReadFrameReuse allocates %.0f times per frame, want 0", allocs)
	}
}

func TestPutBufDropsOversized(t *testing.T) {
	PutBuf(make([]byte, 0, MaxPooledBuf*2)) // must not panic, silently dropped
	PutBuf(nil)                             // zero-cap: dropped
	b := GetBuf()
	if len(b) != 0 {
		t.Fatalf("GetBuf returned non-empty buffer of len %d", len(b))
	}
}
