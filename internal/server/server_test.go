package server

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/authindex"
	"repro/internal/ph"
	"repro/internal/storage"
	"repro/internal/wire"
)

var registerOnce sync.Once

func testStore(t *testing.T) *storage.Store {
	t.Helper()
	registerOnce.Do(func() {
		ph.RegisterEvaluator("server-test", func(et *ph.EncryptedTable, q *ph.EncryptedQuery) (*ph.Result, error) {
			return ph.SelectPositions(et, []int{0}), nil
		})
	})
	return storage.NewMemory()
}

// dispatchTable builds a store-able table payload for CmdStore.
func encTable(n int) *ph.EncryptedTable {
	et := &ph.EncryptedTable{SchemeID: "server-test"}
	for i := 0; i < n; i++ {
		et.Tuples = append(et.Tuples, ph.EncryptedTuple{
			ID:    []byte{byte(i)},
			Words: [][]byte{{0xA0, byte(i)}},
		})
	}
	return et
}

func storeFrame(name string, et *ph.EncryptedTable) wire.Frame {
	payload := wire.AppendString(nil, name)
	payload = wire.EncodeTable(payload, et)
	return wire.Frame{Type: wire.CmdStore, Payload: payload}
}

func TestDispatchStoreAndFetch(t *testing.T) {
	s := New(testStore(t), nil)
	resp := s.dispatch(storeFrame("emp", encTable(3)), nil)
	if resp.Type != wire.RespOK {
		t.Fatalf("store response %#x: %s", resp.Type, resp.Payload)
	}
	resp = s.dispatch(wire.Frame{Type: wire.CmdFetchAll, Payload: wire.AppendString(nil, "emp")}, nil)
	if resp.Type != wire.RespTable {
		t.Fatalf("fetch response %#x", resp.Type)
	}
	et, err := wire.DecodeTable(wire.NewBuffer(resp.Payload))
	if err != nil {
		t.Fatal(err)
	}
	if len(et.Tuples) != 3 {
		t.Fatalf("fetched %d tuples", len(et.Tuples))
	}
}

func TestDispatchQuery(t *testing.T) {
	s := New(testStore(t), nil)
	if resp := s.dispatch(storeFrame("emp", encTable(2)), nil); resp.Type != wire.RespOK {
		t.Fatal("store failed")
	}
	payload := wire.AppendString(nil, "emp")
	payload = wire.EncodeQuery(payload, &ph.EncryptedQuery{SchemeID: "server-test", Token: []byte{1}})
	resp := s.dispatch(wire.Frame{Type: wire.CmdQuery, Payload: payload}, nil)
	if resp.Type != wire.RespResult {
		t.Fatalf("query response %#x: %s", resp.Type, resp.Payload)
	}
	res, err := wire.DecodeResult(wire.NewBuffer(resp.Payload))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != 1 || res.Positions[0] != 0 {
		t.Fatalf("result: %+v", res)
	}
}

func TestDispatchUnknownCommand(t *testing.T) {
	s := New(testStore(t), nil)
	resp := s.dispatch(wire.Frame{Type: 0x7F}, nil)
	if resp.Type != wire.RespError {
		t.Fatalf("unknown command response %#x", resp.Type)
	}
}

func TestDispatchMalformedPayload(t *testing.T) {
	s := New(testStore(t), nil)
	for _, cmd := range []byte{wire.CmdStore, wire.CmdInsert, wire.CmdQuery, wire.CmdFetchAll,
		wire.CmdDrop, wire.CmdRoot, wire.CmdProve} {
		resp := s.dispatch(wire.Frame{Type: cmd, Payload: []byte{0xFF}}, nil)
		if resp.Type != wire.RespError {
			t.Errorf("command %#x with garbage payload returned %#x, want error", cmd, resp.Type)
		}
	}
}

func TestDispatchRootAndProve(t *testing.T) {
	s := New(testStore(t), nil)
	et := encTable(5)
	if resp := s.dispatch(storeFrame("emp", et), nil); resp.Type != wire.RespOK {
		t.Fatal("store failed")
	}
	resp := s.dispatch(wire.Frame{Type: wire.CmdRoot, Payload: wire.AppendString(nil, "emp")}, nil)
	if resp.Type != wire.RespRoot {
		t.Fatalf("root response %#x", resp.Type)
	}
	r := wire.NewBuffer(resp.Payload)
	root, err := r.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	count, err := r.U32()
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 || len(root) != authindex.HashSize {
		t.Fatalf("root payload: %d leaves, %d-byte root", count, len(root))
	}
	if _, err := r.U64(); err != nil {
		t.Fatalf("root payload missing version stamp: %v", err)
	}

	payload := wire.AppendString(nil, "emp")
	payload = wire.AppendU32(payload, 1)
	payload = wire.AppendU32(payload, 2)
	resp = s.dispatch(wire.Frame{Type: wire.CmdProve, Payload: payload}, nil)
	if resp.Type != wire.RespProofs {
		t.Fatalf("prove response %#x: %s", resp.Type, resp.Payload)
	}
	proofs, err := authindex.DecodeProofs(wire.NewBuffer(resp.Payload))
	if err != nil {
		t.Fatal(err)
	}
	if len(proofs) != 1 {
		t.Fatalf("got %d proofs", len(proofs))
	}
	// The proof must verify against the served root. The server stores a
	// copy of what we sent, so hash our local tuple.
	if err := authindex.Verify(root, 5, et.Tuples[2], proofs[0]); err != nil {
		t.Fatalf("served proof rejected: %v", err)
	}
}

func TestServeConnClosesOnGarbage(t *testing.T) {
	s := New(testStore(t), nil)
	cli, srv := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeConn(srv)
	}()
	// A frame whose declared size exceeds the maximum must terminate the
	// connection, not hang or crash.
	cli.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("server did not close the connection on a malformed frame")
	}
	cli.Close()
}

func TestCloseIsIdempotentAndStopsServe(t *testing.T) {
	s := New(testStore(t), nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()
	time.Sleep(20 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v after close", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("serve did not return after close")
	}
	// Serving again on a closed server must fail fast.
	if err := s.Serve(l); err == nil {
		t.Fatal("serve on closed server succeeded")
	}
}

func TestConcurrentClients(t *testing.T) {
	s := New(testStore(t), nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer s.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			name := string(rune('a' + i))
			f := storeFrame(name, encTable(2))
			if err := wire.WriteFrame(conn, f); err != nil {
				errs <- err
				return
			}
			resp, err := wire.ReadFrame(conn)
			if err != nil {
				errs <- err
				return
			}
			if resp.Type != wire.RespOK {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func batchFrame(name string, qs []*ph.EncryptedQuery) wire.Frame {
	payload := wire.AppendString(nil, name)
	payload = wire.AppendU32(payload, uint32(len(qs)))
	for _, q := range qs {
		payload = wire.EncodeQuery(payload, q)
	}
	return wire.Frame{Type: wire.CmdQueryBatch, Payload: payload}
}

func TestQueryBatchParallelKeepsOrder(t *testing.T) {
	store := testStore(t)
	s := New(store, nil)
	if resp := s.dispatch(storeFrame("emp", encTable(3)), nil); resp.Type != wire.RespOK {
		t.Fatalf("store: %#x %s", resp.Type, resp.Payload)
	}
	// More queries than the scheduler budget's capacity so the dispatch
	// semaphore path is exercised.
	qs := make([]*ph.EncryptedQuery, 9)
	for i := range qs {
		qs[i] = &ph.EncryptedQuery{SchemeID: "server-test", Token: []byte{byte(i)}}
	}
	resp := s.dispatch(batchFrame("emp", qs), nil)
	if resp.Type != wire.RespResults {
		t.Fatalf("batch response %#x: %s", resp.Type, resp.Payload)
	}
	r := wire.NewBuffer(resp.Payload)
	n, err := r.U32()
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != len(qs) {
		t.Fatalf("batch returned %d results, want %d", n, len(qs))
	}
	for i := uint32(0); i < n; i++ {
		res, err := wire.DecodeResult(r)
		if err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if len(res.Positions) != 1 || res.Positions[0] != 0 {
			t.Fatalf("result %d positions %v, want [0]", i, res.Positions)
		}
	}
}

func TestQueryBatchUnknownTableFailsAsUnit(t *testing.T) {
	s := New(testStore(t), nil)
	qs := []*ph.EncryptedQuery{
		{SchemeID: "server-test", Token: []byte{1}},
		{SchemeID: "server-test", Token: []byte{2}},
	}
	resp := s.dispatch(batchFrame("nope", qs), nil)
	if resp.Type != wire.RespError {
		t.Fatalf("batch on unknown table: response %#x, want error", resp.Type)
	}
}

func TestHostileCountsDoNotAllocate(t *testing.T) {
	// A frame may declare a huge element count with a tiny payload; the
	// decode loop must fail on the short buffer instead of preallocating
	// count-proportional memory (a remote OOM otherwise).
	s := New(testStore(t), nil)
	if resp := s.dispatch(storeFrame("emp", encTable(1)), nil); resp.Type != wire.RespOK {
		t.Fatalf("store: %#x", resp.Type)
	}
	// CmdProve was the one handler that skipped the clamp (make([]int, n)
	// from the wire-declared count): a 10-byte frame could force a
	// multi-GB allocation. Regression: it must behave like the others.
	for _, cmd := range []byte{wire.CmdQueryBatch, wire.CmdInsert, wire.CmdProve} {
		payload := wire.AppendString(nil, "emp")
		payload = wire.AppendU32(payload, 0xFFFFFFFF) // declared count
		resp := s.dispatch(wire.Frame{Type: cmd, Payload: payload}, nil)
		if resp.Type != wire.RespError {
			t.Fatalf("cmd %#x with hostile count: response %#x, want error", cmd, resp.Type)
		}
	}
}

// TestHostileProveCountAllocation pins the CmdProve fix quantitatively: a
// hostile frame declaring 2^32-1 positions over a 4-byte body must not
// allocate count-proportional memory (the seed preallocated a ~32 GiB
// []int for it).
func TestHostileProveCountAllocation(t *testing.T) {
	s := New(testStore(t), nil)
	if resp := s.dispatch(storeFrame("emp", encTable(1)), nil); resp.Type != wire.RespOK {
		t.Fatalf("store: %#x", resp.Type)
	}
	payload := wire.AppendString(nil, "emp")
	payload = wire.AppendU32(payload, 0xFFFFFFFF)
	payload = wire.AppendU32(payload, 0) // one real position, 2^32-1 declared
	allocs := testing.AllocsPerRun(20, func() {
		if resp := s.dispatch(wire.Frame{Type: wire.CmdProve, Payload: payload}, nil); resp.Type != wire.RespError {
			t.Fatalf("hostile prove count answered %#x, want error", resp.Type)
		}
	})
	// The whole dispatch costs a handful of allocations; a
	// count-proportional preallocation would show up as one huge one.
	if allocs > 64 {
		t.Fatalf("hostile prove frame cost %.0f allocs — count-proportional preallocation suspected", allocs)
	}
}

// verifiedQueryFrame builds a CmdQueryVerified frame.
func verifiedQueryFrame(name string, q *ph.EncryptedQuery) wire.Frame {
	payload := wire.AppendString(nil, name)
	payload = wire.EncodeQuery(payload, q)
	return wire.Frame{Type: wire.CmdQueryVerified, Payload: payload}
}

// TestDispatchQueryVerified: the one-round verified answer must be
// internally consistent — proofs verify the returned tuples against the
// returned root and leaf count.
func TestDispatchQueryVerified(t *testing.T) {
	s := New(testStore(t), nil)
	et := encTable(7)
	if resp := s.dispatch(storeFrame("emp", et), nil); resp.Type != wire.RespOK {
		t.Fatal("store failed")
	}
	resp := s.dispatch(verifiedQueryFrame("emp", &ph.EncryptedQuery{SchemeID: "server-test", Token: []byte{1}}), nil)
	if resp.Type != wire.RespResultVerified {
		t.Fatalf("verified query response %#x: %s", resp.Type, resp.Payload)
	}
	vr, err := authindex.DecodeVerifiedResult(wire.NewBuffer(resp.Payload))
	if err != nil {
		t.Fatal(err)
	}
	if vr.Leaves != 7 || len(vr.Root) != authindex.HashSize || vr.Version == 0 {
		t.Fatalf("snapshot metadata: %d leaves, %d-byte root, version %d", vr.Leaves, len(vr.Root), vr.Version)
	}
	if len(vr.Proofs) != len(vr.Result.Tuples) {
		t.Fatalf("%d proofs for %d tuples", len(vr.Proofs), len(vr.Result.Tuples))
	}
	for i, p := range vr.Proofs {
		if err := authindex.Verify(vr.Root, vr.Leaves, vr.Result.Tuples[i], p); err != nil {
			t.Fatalf("proof %d rejected: %v", i, err)
		}
	}
}

// insertFrame builds a CmdInsertStamped frame.
func insertFrame(name string, tuples []ph.EncryptedTuple) wire.Frame {
	payload := wire.AppendString(nil, name)
	payload = wire.AppendU32(payload, uint32(len(tuples)))
	for _, tp := range tuples {
		payload = wire.EncodeTuple(payload, tp)
	}
	return wire.Frame{Type: wire.CmdInsertStamped, Payload: payload}
}

// TestInsertAckCompat: legacy CmdInsert must keep answering bare RespOK
// (pre-extension clients reject anything else), while CmdInsertStamped
// carries the placement ack.
func TestInsertAckCompat(t *testing.T) {
	s := New(testStore(t), nil)
	if resp := s.dispatch(storeFrame("emp", encTable(2)), nil); resp.Type != wire.RespOK {
		t.Fatal("store failed")
	}
	legacy := insertFrame("emp", encTable(1).Tuples)
	legacy.Type = wire.CmdInsert
	if resp := s.dispatch(legacy, nil); resp.Type != wire.RespOK {
		t.Fatalf("legacy CmdInsert answered %#x, want bare RespOK", resp.Type)
	}
	resp := s.dispatch(insertFrame("emp", encTable(1).Tuples), nil)
	if resp.Type != wire.RespInserted {
		t.Fatalf("CmdInsertStamped answered %#x, want RespInserted", resp.Type)
	}
	r := wire.NewBuffer(resp.Payload)
	base, err := r.U32()
	if err != nil {
		t.Fatal(err)
	}
	if base != 3 {
		t.Fatalf("stamped insert base %d, want 3 (2 stored + 1 legacy insert)", base)
	}
}

// TestRootProveTOCTOURegression is the regression test for the
// verification race the one-round protocol closes. Legacy sequence: the
// client fetches the root, a mutation lands, the client asks for proofs
// — the proofs describe a tree the fetched root does not, so an honest
// answer fails verification (the documented caveat on CmdRoot/CmdProve,
// asserted here so the failure mode stays understood). New sequence: the
// same interleaved mutation, but the verified query returns proofs and
// root from one snapshot — verification must succeed.
func TestRootProveTOCTOURegression(t *testing.T) {
	s := New(testStore(t), nil)
	et := encTable(6)
	if resp := s.dispatch(storeFrame("emp", et), nil); resp.Type != wire.RespOK {
		t.Fatal("store failed")
	}

	// --- Legacy two-round path: fetch root, then mutate, then prove. ---
	resp := s.dispatch(wire.Frame{Type: wire.CmdRoot, Payload: wire.AppendString(nil, "emp")}, nil)
	if resp.Type != wire.RespRoot {
		t.Fatalf("root response %#x", resp.Type)
	}
	r := wire.NewBuffer(resp.Payload)
	pinnedRoot, _ := r.Bytes()
	pinnedCount, _ := r.U32()

	// The interleaved mutation.
	if resp := s.dispatch(insertFrame("emp", encTable(3).Tuples), nil); resp.Type != wire.RespInserted {
		t.Fatalf("insert response %#x", resp.Type)
	}

	provePayload := wire.AppendString(nil, "emp")
	provePayload = wire.AppendU32(provePayload, 1)
	provePayload = wire.AppendU32(provePayload, 0)
	resp = s.dispatch(wire.Frame{Type: wire.CmdProve, Payload: provePayload}, nil)
	if resp.Type != wire.RespProofs {
		t.Fatalf("prove response %#x", resp.Type)
	}
	proofs, err := authindex.DecodeProofs(wire.NewBuffer(resp.Payload))
	if err != nil {
		t.Fatal(err)
	}
	if err := authindex.Verify(pinnedRoot, int(pinnedCount), et.Tuples[0], proofs[0]); err == nil {
		t.Fatal("legacy two-round path verified across a mutation — the TOCTOU this PR documents should have made it fail")
	}

	// --- One-round path: mutate again, then query verified. ---
	if resp := s.dispatch(insertFrame("emp", encTable(2).Tuples), nil); resp.Type != wire.RespInserted {
		t.Fatalf("insert response %#x", resp.Type)
	}
	resp = s.dispatch(verifiedQueryFrame("emp", &ph.EncryptedQuery{SchemeID: "server-test", Token: []byte{1}}), nil)
	if resp.Type != wire.RespResultVerified {
		t.Fatalf("verified query response %#x: %s", resp.Type, resp.Payload)
	}
	vr, err := authindex.DecodeVerifiedResult(wire.NewBuffer(resp.Payload))
	if err != nil {
		t.Fatal(err)
	}
	if len(vr.Proofs) == 0 {
		t.Fatal("verified query returned no proofs to check")
	}
	for i, p := range vr.Proofs {
		if err := authindex.Verify(vr.Root, vr.Leaves, vr.Result.Tuples[i], p); err != nil {
			t.Fatalf("one-round answer failed verification after interleaved mutations: %v", err)
		}
	}
}
