// Command phserver runs Eve: the untrusted database service provider. It
// stores encrypted tables and evaluates encrypted queries without ever
// holding keys.
//
// Usage:
//
//	phserver [-addr :7632] [-log /path/to/store.log] [-sync always|interval|never] [-sync-interval 100ms]
//	phserver [-addr :7633] -replica-of primary:7632 [-poll 100ms] [-log /path/to/replica.log]
//	phserver [-addr :7640] -coordinator -shards host1:7632,host2:7632 [-shard-map-version 1]
//
// With -log the store is durable: mutations are appended to a
// checksummed write-ahead log and replayed on restart (torn or corrupt
// tails from crashes are truncated). -sync selects when acknowledged
// writes are fsynced: "always" (the default) fsyncs before every
// acknowledgement, with concurrent writers sharing one fsync through
// group commit; "interval" fsyncs in the background every
// -sync-interval; "never" leaves flushing to the OS. Without -log the
// store is in-memory and the sync flags are ignored.
//
// With -replica-of the server runs as a read replica: it bootstraps
// from the primary's state snapshot (falling back to full log replay
// against primaries that predate CmdShipSnapshot), tails the primary's
// write-ahead log over the wire, and serves reads from the replayed
// store; mutations are rejected with a message naming the primary.
// Until the replica has a consistent cut to serve it refuses reads too
// (clients quarantine it and fail over). Replicas hold no trusted
// state — clients verify replica answers against their pinned root
// exactly as they verify the primary's. -replica-of composes with
// -log: a durable replica persists what it replays and resumes tailing
// from its recorded cursor after a restart instead of re-bootstrapping.
//
// With -coordinator the server holds no store at all: it is the
// scatter-gather tier over the -shards backends (comma-separated
// addresses, whose *order is the partition map* — it must match the
// clients' shards config, as must -shard-map-version). Reads scatter to
// every shard and come back framed per shard, so verifying clients
// check each sub-answer against their pinned per-shard root vector; a
// coordinator remains exactly as untrusted as any single server.
// -shard-replicas attaches read replicas per shard index, e.g.
// "0=r1:7633,r2:7633;2=r3:7633" (followers attach per shard — the
// coordinator itself cannot be tailed).
//
// -idle-timeout, -write-timeout and -max-conns bound per-connection
// I/O and the connection count on any server (0 = unlimited).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/storage"

	// Register the key-free evaluators for every scheme this server can
	// evaluate queries for (database/sql-driver style).
	_ "repro/internal/core"
	_ "repro/internal/schemes/bucket"
	_ "repro/internal/schemes/damiani"
	_ "repro/internal/schemes/detph"
	_ "repro/internal/schemes/gohph"
)

func main() {
	var (
		addr      = flag.String("addr", ":7632", "listen address")
		logPath   = flag.String("log", "", "write-ahead persistence log (empty = in-memory)")
		syncMode  = flag.String("sync", "always", "log sync policy: always (group-commit fsync per ack), interval (background fsync), never")
		syncIvl   = flag.Duration("sync-interval", storage.DefaultSyncInterval, "background fsync period under -sync interval")
		replicaOf = flag.String("replica-of", "", "run as a read replica tailing this primary address")
		poll      = flag.Duration("poll", 100*time.Millisecond, "replica poll interval once caught up")
		coord     = flag.Bool("coordinator", false, "run as a scatter-gather coordinator over -shards (no local store)")
		shards    = flag.String("shards", "", "comma-separated shard backend addresses, in partition-map order")
		shardVer  = flag.Uint64("shard-map-version", 1, "partition map version (must match client configs)")
		shardReps = flag.String("shard-replicas", "", "per-shard read replicas, e.g. \"0=r1:7633,r2:7633;2=r3:7633\"")
		idleTO    = flag.Duration("idle-timeout", 0, "per-connection idle deadline between frames (0 = none)")
		writeTO   = flag.Duration("write-timeout", 0, "per-response write deadline (0 = none)")
		maxConns  = flag.Int("max-conns", 0, "maximum concurrent connections (0 = unlimited)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "phserver: ", log.LstdFlags)

	opts := server.Options{
		IdleTimeout:  *idleTO,
		WriteTimeout: *writeTO,
		MaxConns:     *maxConns,
	}

	if *coord {
		cfg, err := parseShardsFlags(*shards, *shardVer, *shardReps)
		if err != nil {
			logger.Fatalf("bad shard flags: %v", err)
		}
		co, err := shard.FromConfig(cfg, client.DialConfig{})
		if err != nil {
			logger.Fatalf("building coordinator: %v", err)
		}
		defer co.Close()
		srv := server.NewProxy(co, logger, opts)
		logger.Printf("coordinator over %d shards (partition map v%d); no local store", co.NumShards(), co.MapVersion())
		serve(srv, *addr, logger)
		return
	}

	var store *storage.Store
	var follower *replica.Follower
	switch {
	case *replicaOf != "":
		ropts := replica.Options{PollInterval: *poll, Logf: logger.Printf}
		if *logPath != "" {
			// A durable follower: replayed records land in its own WAL
			// and the ship-base sidecar lets a restart resume tailing
			// instead of re-bootstrapping.
			policy, err := storage.ParseSyncPolicy(*syncMode)
			if err != nil {
				logger.Fatalf("bad -sync flag: %v", err)
			}
			rst, err := storage.OpenOptions(*logPath, storage.Options{Sync: policy, SyncInterval: *syncIvl})
			if err != nil {
				logger.Fatalf("opening replica store: %v", err)
			}
			defer rst.Close()
			ropts.Store = rst
			logger.Printf("durable replica store at %s (sync policy %s)", *logPath, policy)
		}
		follower = replica.New(func() (*client.Conn, error) {
			return client.DialWithConfig(*replicaOf, client.DialConfig{})
		}, ropts)
		defer follower.Close()
		store = follower.Store()
		opts.ReadOnly = true
		opts.Ready = follower.Ready
		logger.Printf("read replica of %s (poll %s); mutations rejected, reads refused until caught up", *replicaOf, *poll)
	case *logPath != "":
		policy, err := storage.ParseSyncPolicy(*syncMode)
		if err != nil {
			logger.Fatalf("bad -sync flag: %v", err)
		}
		store, err = storage.OpenOptions(*logPath, storage.Options{Sync: policy, SyncInterval: *syncIvl})
		if err != nil {
			logger.Fatalf("opening store: %v", err)
		}
		defer store.Close()
		logger.Printf("durable store at %s (sync policy %s)", *logPath, policy)
	default:
		store = storage.NewMemory()
		logger.Print("in-memory store (no -log given)")
	}

	srv := server.NewWithOptions(store, logger, opts)
	for _, info := range store.List() {
		logger.Printf("replayed table %q (%s, %d tuples)", info.Name, info.SchemeID, info.Tuples)
	}
	serve(srv, *addr, logger)
}

// serve listens on addr and runs srv until a termination signal.
func serve(srv *server.Server, addr string, logger *log.Logger) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	logger.Printf("listening on %s", l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintln(os.Stderr)
		logger.Printf("received %s, shutting down", s)
		srv.Close()
	}()

	if err := srv.Serve(l); err != nil {
		logger.Fatalf("serve: %v", err)
	}
	logger.Print("bye")
}

// parseShardsFlags assembles a client.ShardsConfig from the coordinator
// flags: the ordered backend list (the order IS the partition map), the
// map version, and the optional per-shard replica spec
// ("idx=addr,addr;idx=addr").
func parseShardsFlags(shards string, version uint64, replicaSpec string) (*client.ShardsConfig, error) {
	if shards == "" {
		return nil, fmt.Errorf("-coordinator requires -shards")
	}
	cfg := &client.ShardsConfig{Version: version}
	for _, addr := range strings.Split(shards, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			return nil, fmt.Errorf("empty shard address in -shards")
		}
		cfg.Shards = append(cfg.Shards, client.ShardConfig{Addr: addr})
	}
	if replicaSpec != "" {
		for _, entry := range strings.Split(replicaSpec, ";") {
			idxStr, addrs, ok := strings.Cut(entry, "=")
			if !ok {
				return nil, fmt.Errorf("bad -shard-replicas entry %q (want idx=addr,addr)", entry)
			}
			idx, err := strconv.Atoi(strings.TrimSpace(idxStr))
			if err != nil || idx < 0 || idx >= len(cfg.Shards) {
				return nil, fmt.Errorf("bad shard index %q in -shard-replicas (have %d shards)", idxStr, len(cfg.Shards))
			}
			for _, a := range strings.Split(addrs, ",") {
				a = strings.TrimSpace(a)
				if a == "" {
					return nil, fmt.Errorf("empty replica address for shard %d", idx)
				}
				cfg.Shards[idx].Replicas = append(cfg.Shards[idx].Replicas, a)
			}
		}
	}
	return cfg, nil
}
