package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"fmt"
	"io"
)

// Sealer wraps AES-256-GCM for the "strong cipher" the comparator schemes
// (Hacıgümüş et al., Damiani et al.) apply to whole tuples before attaching
// weak index attributes. Nonces are random and prepended to the ciphertext.
type Sealer struct {
	aead cipher.AEAD
}

// NewSealer constructs a Sealer with the given key.
func NewSealer(key Key) (*Sealer, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("crypto: sealer: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("crypto: sealer: %w", err)
	}
	return &Sealer{aead: aead}, nil
}

// Seal encrypts and authenticates plaintext, returning nonce||ciphertext.
func (s *Sealer) Seal(plaintext []byte) ([]byte, error) {
	nonce := make([]byte, s.aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("crypto: sealing: %w", err)
	}
	return s.aead.Seal(nonce, nonce, plaintext, nil), nil
}

// Open decrypts nonce||ciphertext produced by Seal.
func (s *Sealer) Open(sealed []byte) ([]byte, error) {
	ns := s.aead.NonceSize()
	if len(sealed) < ns {
		return nil, fmt.Errorf("crypto: opening: ciphertext shorter than nonce (%d < %d)", len(sealed), ns)
	}
	pt, err := s.aead.Open(nil, sealed[:ns], sealed[ns:], nil)
	if err != nil {
		return nil, fmt.Errorf("crypto: opening: %w", err)
	}
	return pt, nil
}
