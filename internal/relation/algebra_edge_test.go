package relation

import "testing"

// These cases are the regression net under the client's legacy
// conjunctive fallback (SelectConjLegacy): the pushdown path bypasses
// Intersect entirely, so its edge behaviour must stay pinned for the
// servers that still need it.

func TestIntersectDuplicateTuplesBothSides(t *testing.T) {
	s := MustSchema("t", Column{Name: "a", Type: TypeInt, Width: 3})
	mk := func(vals ...int64) *Table {
		tab := NewTable(s)
		for _, v := range vals {
			tab.MustInsert(Int(v))
		}
		return tab
	}
	// Multiset semantics: min of the two multiplicities, per value.
	res, err := Intersect(mk(5, 5, 5, 7), mk(5, 5, 9))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(mk(5, 5)) {
		t.Fatalf("duplicate handling wrong: got %v", res)
	}
	// Symmetric multiplicities.
	res, err = Intersect(mk(5, 5), mk(5, 5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(mk(5, 5)) {
		t.Fatalf("duplicate handling wrong (short left): got %v", res)
	}
}

func TestIntersectEmptyOperands(t *testing.T) {
	s := MustSchema("t", Column{Name: "a", Type: TypeInt, Width: 3})
	empty := NewTable(s)
	full := NewTable(s)
	full.MustInsert(Int(1))
	for _, c := range []struct {
		name string
		a, b *Table
	}{
		{"empty-left", empty, full},
		{"empty-right", full, empty},
		{"empty-both", empty, empty},
	} {
		res, err := Intersect(c.a, c.b)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if res.Len() != 0 {
			t.Fatalf("%s: got %d tuples, want 0", c.name, res.Len())
		}
	}
}

// TestIntersectDifferingColumnOrder: the same columns in a different
// order are a *different* schema — Intersect must refuse rather than
// match positionally and silently compare name against dept.
func TestIntersectDifferingColumnOrder(t *testing.T) {
	a := NewTable(MustSchema("t",
		Column{Name: "a", Type: TypeInt, Width: 3},
		Column{Name: "b", Type: TypeInt, Width: 3},
	))
	b := NewTable(MustSchema("t",
		Column{Name: "b", Type: TypeInt, Width: 3},
		Column{Name: "a", Type: TypeInt, Width: 3},
	))
	a.MustInsert(Int(1), Int(2))
	b.MustInsert(Int(2), Int(1))
	if _, err := Intersect(a, b); err == nil {
		t.Fatal("differing column order accepted — positional comparison would be wrong")
	}
}

func TestIntersectPreservesLeftOrder(t *testing.T) {
	s := MustSchema("t", Column{Name: "a", Type: TypeInt, Width: 3})
	mk := func(vals ...int64) *Table {
		tab := NewTable(s)
		for _, v := range vals {
			tab.MustInsert(Int(v))
		}
		return tab
	}
	res, err := Intersect(mk(9, 3, 5, 1), mk(1, 3, 9))
	if err != nil {
		t.Fatal(err)
	}
	want := mk(9, 3, 1)
	if res.Len() != want.Len() {
		t.Fatalf("got %d tuples, want %d", res.Len(), want.Len())
	}
	for i, tp := range res.Tuples() {
		if !tp[0].Equal(want.Tuples()[i][0]) {
			t.Fatalf("order not preserved: got %v, want %v", res, want)
		}
	}
}

func TestProjectMissingColumn(t *testing.T) {
	tab := empTestTable()
	if _, err := Project(tab, "name", "ghost"); err == nil {
		t.Fatal("projection of a missing column accepted")
	}
	if _, err := Project(tab); err == nil {
		t.Fatal("empty projection accepted")
	}
}

func TestProjectKeepsDuplicates(t *testing.T) {
	tab := empTestTable() // two HR rows, two salary-7500 rows
	res, err := Project(tab, "dept")
	if err != nil {
		t.Fatal(err)
	}
	// SELECT dept (no DISTINCT): one row per input tuple.
	if res.Len() != tab.Len() {
		t.Fatalf("projection dropped duplicates: %d rows, want %d", res.Len(), tab.Len())
	}
}

func TestProjectOnEmptyTable(t *testing.T) {
	empty := NewTable(empTestSchema())
	res, err := Project(empty, "name")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("projection of empty table has %d rows", res.Len())
	}
}
