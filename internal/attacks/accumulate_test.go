package attacks

import (
	"testing"

	"repro/internal/core"
)

func TestLeakageAccumulationMonotoneInExpectation(t *testing.T) {
	reports, err := LeakageAccumulation(factory(core.SchemeID), 600, 8, []int{0, 8, 32}, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	q0, q8, q32 := reports[0], reports[1], reports[2]
	if q0.Coverage != 0 {
		t.Fatalf("q=0 coverage %v, want 0", q0.Coverage)
	}
	if q0.MeanAbsError != q0.BlindError {
		t.Fatalf("q=0 error %v should equal blind %v", q0.MeanAbsError, q0.BlindError)
	}
	if q8.Coverage <= q0.Coverage {
		t.Fatalf("coverage did not grow: q0=%v q8=%v", q0.Coverage, q8.Coverage)
	}
	if q32.MeanAbsError >= q0.MeanAbsError {
		t.Fatalf("error did not shrink with budget: q0=%v q32=%v", q0.MeanAbsError, q32.MeanAbsError)
	}
}

func TestLeakageAccumulationValidation(t *testing.T) {
	if _, err := LeakageAccumulation(factory(core.SchemeID), 0, 5, []int{1}, 1); err == nil {
		t.Fatal("zero patients accepted")
	}
	if _, err := LeakageAccumulation(factory(core.SchemeID), 100, 0, []int{1}, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestIdentifyQuery(t *testing.T) {
	const n = 1000
	cases := []struct {
		size int
		want int
	}{
		{200, 0},  // hospital 1: 0.2n
		{300, 1},  // hospital 2: 0.3n
		{500, 2},  // hospital 3: 0.5n
		{80, 3},   // fatal: 0.08n
		{920, 4},  // healthy: 0.92n
		{700, -1}, // nothing plausible nearby
	}
	for _, c := range cases {
		if got := identifyQuery(c.size, n); got != c.want {
			t.Errorf("identifyQuery(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}
