package bucket

import (
	"bytes"
	"testing"

	"repro/internal/crypto"
	"repro/internal/relation"
)

func schema() *relation.Schema {
	return relation.MustSchema("t",
		relation.Column{Name: "s", Type: relation.TypeString, Width: 8},
		relation.Column{Name: "n", Type: relation.TypeInt, Width: 5},
	)
}

// labelsOf encrypts single-value tables and extracts the n-column label.
func labelsOf(t *testing.T, opts Options, values ...int64) [][]byte {
	t.Helper()
	s, err := New(crypto.KeyFromBytes([]byte("fixed-test-key")), schema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, len(values))
	for i, v := range values {
		tab := relation.NewTable(schema())
		tab.MustInsert(relation.String("x"), relation.Int(v))
		ct, err := s.EncryptTable(tab)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = ct.Tuples[0].Words[1]
	}
	return out
}

func TestIntervalBoundaries(t *testing.T) {
	opts := Options{Buckets: 4, IntDomains: map[string]Domain{"n": {Min: 0, Max: 99}}}
	// Buckets of width 25: [0,24] [25,49] [50,74] [75,99].
	lbl := labelsOf(t, opts, 0, 24, 25, 74, 75, 99)
	if !bytes.Equal(lbl[0], lbl[1]) {
		t.Fatal("0 and 24 should share the first interval")
	}
	if bytes.Equal(lbl[1], lbl[2]) {
		t.Fatal("24 and 25 should be in different intervals")
	}
	if bytes.Equal(lbl[3], lbl[4]) {
		t.Fatal("74 and 75 should be in different intervals")
	}
	if !bytes.Equal(lbl[4], lbl[5]) {
		t.Fatal("75 and 99 should share the last interval")
	}
}

func TestLabelsDeterministicPerKey(t *testing.T) {
	opts := Options{Buckets: 8, IntDomains: map[string]Domain{"n": {Min: 0, Max: 999}}}
	a := labelsOf(t, opts, 123)
	b := labelsOf(t, opts, 123)
	if !bytes.Equal(a[0], b[0]) {
		t.Fatal("same key, same value, different labels — the server could not match queries")
	}
}

func TestLabelsDifferAcrossKeys(t *testing.T) {
	tab := relation.NewTable(schema())
	tab.MustInsert(relation.String("x"), relation.Int(5))
	mk := func(key byte) []byte {
		k := crypto.KeyFromBytes([]byte{key})
		s, err := New(k, schema(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		ct, err := s.EncryptTable(tab)
		if err != nil {
			t.Fatal(err)
		}
		return ct.Tuples[0].Words[1]
	}
	if bytes.Equal(mk(1), mk(2)) {
		t.Fatal("interval labels identical under different keys (secret permutation missing)")
	}
}

func TestDefaultDomainFromWidth(t *testing.T) {
	// Width-5 int column defaults to [-99999, 99999]; extremes encrypt
	// fine, overflow is rejected by the relation layer first.
	s, err := New(crypto.KeyFromBytes([]byte("k")), schema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tab := relation.NewTable(schema())
	tab.MustInsert(relation.String("x"), relation.Int(99999))
	tab.MustInsert(relation.String("x"), relation.Int(-99999))
	if _, err := s.EncryptTable(tab); err != nil {
		t.Fatalf("extreme in-domain values rejected: %v", err)
	}
}

func TestStringBucketing(t *testing.T) {
	// Same string, same bucket; the partition is a function.
	s, err := New(crypto.KeyFromBytes([]byte("k")), schema(), Options{Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	tab := relation.NewTable(schema())
	tab.MustInsert(relation.String("hello"), relation.Int(1))
	tab.MustInsert(relation.String("hello"), relation.Int(2))
	ct, err := s.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ct.Tuples[0].Words[0], ct.Tuples[1].Words[0]) {
		t.Fatal("equal strings landed in different buckets")
	}
}
