// Package storage implements Eve's ciphertext store: a concurrency-safe
// in-memory catalogue of encrypted tables with optional durability through
// an append-only log. The server never sees plaintext; everything stored
// here is exactly what the wire protocol delivered.
//
// Durability model: each mutation (store, insert, drop) is appended to the
// log as a length-prefixed record and the log is replayed on open. A
// partially written trailing record (crash mid-append) is detected and
// truncated away, mirroring the recovery discipline of write-ahead logs.
//
// Locking model: the store-level RWMutex guards only the catalogue map and
// the log; each table carries its own RWMutex guarding its tuple data.
// Query therefore holds no store-wide lock while evaluating — possibly a
// long multi-core table scan — so concurrent clients' queries proceed in
// parallel, and queries against one table never serialise behind
// mutations of an unrelated one. Lock order is strictly store before
// table for writers and readers alike (List and Compact nest a table
// lock inside the store lock); nothing may take the store lock while
// holding a table lock.
//
// Versioning and the result cache: every table carries a monotonic
// version drawn from a store-wide clock, bumped on Put, Append, Drop and
// Compact, plus the lineage base — the version at which the current table
// object was installed. Query consults a bounded LRU result cache
// (internal/cache) keyed by (table, trapdoor digest) under the table's
// read lock: a current entry answers without scanning; an entry that
// covers a prefix (the table has only been appended to since) triggers a
// delta scan of just the appended tail; anything else is a miss and a
// full scan. Destructive mutations invalidate the table's entries, and
// the lineage base rejects entries a racing in-flight query stored
// against a replaced snapshot. Caching leaks nothing: positions returned
// per trapdoor are exactly the access pattern every query already reveals
// to the server by construction.
package storage

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/ph"
	"repro/internal/wire"
)

// log record op codes.
const (
	opStore  byte = 0x01
	opInsert byte = 0x02
	opDrop   byte = 0x03
)

// tableEntry is one catalogued table with its own reader/writer lock.
type tableEntry struct {
	mu sync.RWMutex
	t  *ph.EncryptedTable
	// base is the store-clock version at which this table object was
	// installed (Put or replayed store record). Cache entries from before
	// base belong to a replaced snapshot and are unusable.
	base uint64
	// version is bumped from the store clock on every mutation touching
	// this table. Between base and version the only mutations are appends
	// (destructive ones install a fresh entry), which is what makes cached
	// prefixes delta-scannable.
	version uint64
}

// Store is the server-side catalogue of encrypted tables.
type Store struct {
	mu     sync.RWMutex // guards tables (the map itself), log and cache ptr
	tables map[string]*tableEntry
	log    *os.File // nil for pure in-memory stores
	path   string
	clock  atomic.Uint64 // monotonic version source for all tables
	cache  *cache.Cache  // nil disables result caching
}

// NewMemory creates a volatile in-memory store with result caching
// enabled at the default size.
func NewMemory() *Store {
	return &Store{tables: make(map[string]*tableEntry), cache: cache.New(0)}
}

// Open creates a durable store backed by the append-only log at path,
// replaying any existing log. Result caching is enabled at the default
// size.
func Open(path string) (*Store, error) {
	s := &Store{tables: make(map[string]*tableEntry), path: path, cache: cache.New(0)}
	if err := s.replay(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("storage: opening log %s: %w", path, err)
	}
	s.log = f
	return s, nil
}

// Close releases the log file, if any.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Close()
	s.log = nil
	return err
}

// entry looks up a table's entry under the store read lock. The returned
// entry stays valid after the store lock is released: a concurrent Drop or
// Put only unlinks it from the map, and readers still holding it finish
// against the snapshot they found. The result cache pointer is read under
// the same lock so Query sees a consistent pair.
func (s *Store) entry(name string) (*tableEntry, *cache.Cache, error) {
	s.mu.RLock()
	e, ok := s.tables[name]
	c := s.cache
	s.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("storage: unknown table %q", name)
	}
	return e, c, nil
}

// SetResultCache installs (or, with nil, disables) the query result
// cache. Intended for tests and benchmarks that need the uncached path;
// stores come with a default-sized cache out of the box.
func (s *Store) SetResultCache(c *cache.Cache) {
	s.mu.Lock()
	s.cache = c
	s.mu.Unlock()
}

// CacheStats returns the result cache's counters (zero if caching is
// disabled).
func (s *Store) CacheStats() cache.Stats {
	s.mu.RLock()
	c := s.cache
	s.mu.RUnlock()
	if c == nil {
		return cache.Stats{}
	}
	return c.Stats()
}

// replay loads the log at path into memory, truncating a torn trailing
// record if one is found.
func (s *Store) replay(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: opening log %s for replay: %w", path, err)
	}
	defer f.Close()
	var validOffset int64
	for {
		var hdr [5]byte
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			break // torn header: truncate from validOffset
		}
		n := uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3])
		if n > wire.MaxFrameSize {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			break // torn payload
		}
		if err := s.applyRecord(hdr[4], payload); err != nil {
			return fmt.Errorf("storage: replaying log %s at offset %d: %w", path, validOffset, err)
		}
		validOffset += int64(5 + n)
	}
	// Truncate any torn tail so the next append starts at a clean
	// boundary.
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("storage: stat log %s: %w", path, err)
	}
	if info.Size() > validOffset {
		if err := os.Truncate(path, validOffset); err != nil {
			return fmt.Errorf("storage: truncating torn log tail of %s: %w", path, err)
		}
	}
	return nil
}

// applyRecord applies one replayed record to the in-memory state. Replay
// runs before the store is shared, so no table locks are needed.
func (s *Store) applyRecord(op byte, payload []byte) error {
	r := wire.NewBuffer(payload)
	switch op {
	case opStore:
		name, err := r.String()
		if err != nil {
			return err
		}
		t, err := wire.DecodeTable(r)
		if err != nil {
			return err
		}
		v := s.clock.Add(1)
		s.tables[name] = &tableEntry{t: t, base: v, version: v}
	case opInsert:
		name, err := r.String()
		if err != nil {
			return err
		}
		e, ok := s.tables[name]
		if !ok {
			return fmt.Errorf("storage: insert into unknown table %q", name)
		}
		n, err := r.U32()
		if err != nil {
			return err
		}
		for i := uint32(0); i < n; i++ {
			tp, err := wire.DecodeTuple(r)
			if err != nil {
				return err
			}
			e.t.Tuples = append(e.t.Tuples, tp)
		}
		e.version = s.clock.Add(1)
	case opDrop:
		name, err := r.String()
		if err != nil {
			return err
		}
		delete(s.tables, name)
	default:
		return fmt.Errorf("storage: unknown log op %#x", op)
	}
	return nil
}

// appendRecord durably appends a mutation record. Callers hold s.mu.
func (s *Store) appendRecord(op byte, payload []byte) error {
	if s.log == nil {
		return nil
	}
	hdr := []byte{
		byte(len(payload) >> 24), byte(len(payload) >> 16),
		byte(len(payload) >> 8), byte(len(payload)), op,
	}
	if _, err := s.log.Write(append(hdr, payload...)); err != nil {
		return fmt.Errorf("storage: appending log record: %w", err)
	}
	return nil
}

// Put stores (or replaces) the encrypted table under name. Replacement
// installs a fresh entry at a fresh lineage base and invalidates the
// table's cached results; queries still running against a replaced table
// finish on the snapshot they started with, and any result they cache
// afterwards carries a pre-replacement version the lineage check rejects.
func (s *Store) Put(name string, t *ph.EncryptedTable) error {
	if name == "" {
		return fmt.Errorf("storage: empty table name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	payload := wire.AppendString(nil, name)
	payload = wire.EncodeTable(payload, t)
	if err := s.appendRecord(opStore, payload); err != nil {
		return err
	}
	v := s.clock.Add(1)
	s.tables[name] = &tableEntry{t: t.Clone(), base: v, version: v}
	if s.cache != nil {
		s.cache.InvalidateTable(name)
	}
	return nil
}

// Append adds encrypted tuples to an existing table. The tuples must carry
// the same scheme as the stored table (enforced by the caller protocol:
// they're opaque here). The store lock covers the log write; the table's
// own write lock covers the tuple mutation, excluding only that table's
// readers.
func (s *Store) Append(name string, tuples []ph.EncryptedTuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.tables[name]
	if !ok {
		return fmt.Errorf("storage: unknown table %q", name)
	}
	payload := wire.AppendString(nil, name)
	payload = wire.AppendU32(payload, uint32(len(tuples)))
	for _, tp := range tuples {
		payload = wire.EncodeTuple(payload, tp)
	}
	if err := s.appendRecord(opInsert, payload); err != nil {
		return err
	}
	e.mu.Lock()
	e.t.Tuples = append(e.t.Tuples, tuples...)
	e.version = s.clock.Add(1)
	e.mu.Unlock()
	return nil
}

// Get returns a deep copy of the named table. Only the slice header (and
// the immutable scheme/meta fields) are snapshotted under the table's
// read lock; the deep copy runs outside it, so exporting a large table no
// longer stalls writers for the whole copy. This is safe because stored
// tuples are immutable once appended: Append only grows the slice beyond
// the snapshotted length (or reallocates), Put installs a fresh entry,
// and nothing ever mutates Tuples[0:len] in place.
func (s *Store) Get(name string) (*ph.EncryptedTable, error) {
	e, _, err := s.entry(name)
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	snap := ph.EncryptedTable{SchemeID: e.t.SchemeID, Meta: e.t.Meta, Tuples: e.t.Tuples}
	e.mu.RUnlock()
	return snap.Clone(), nil
}

// Query evaluates the encrypted query against the named table via the
// key-free evaluator registry. It holds only the table's read lock for the
// duration of the evaluation, so queries on distinct tables — and multiple
// queries on the same table — run fully in parallel, and none of them
// block the catalogue.
//
// With caching enabled, the cache is consulted under that same read lock.
// A Hit answers from the cached positions without touching the tuples. A
// Delta — the table has only been appended to since the entry was stored —
// evaluates just the appended tail through the scheme's own evaluator
// (every registered evaluator is a tuple-local scan, so evaluating
// Tuples[scanned:] and offsetting the positions is exact) and merges. A
// Miss runs the full scan. Hot and delta results are written back so the
// next query starts warm.
func (s *Store) Query(name string, q *ph.EncryptedQuery) (*ph.Result, error) {
	e, c, err := s.entry(name)
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if c == nil {
		return ph.Apply(e.t, q)
	}
	ent, outcome := c.Lookup(name, q, e.base, len(e.t.Tuples))
	switch outcome {
	case cache.Hit:
		return ph.SelectPositions(e.t, ent.Positions), nil
	case cache.Delta:
		tail := &ph.EncryptedTable{SchemeID: e.t.SchemeID, Meta: e.t.Meta, Tuples: e.t.Tuples[ent.Scanned:]}
		res, err := ph.Apply(tail, q)
		if err != nil {
			return nil, err
		}
		positions := ent.Positions // Lookup returned a private copy
		for _, p := range res.Positions {
			positions = append(positions, p+ent.Scanned)
		}
		c.Store(name, q, cache.Entry{Positions: positions, Scanned: len(e.t.Tuples), Version: e.version})
		return ph.SelectPositions(e.t, positions), nil
	default:
		res, err := ph.Apply(e.t, q)
		if err != nil {
			return nil, err
		}
		c.Store(name, q, cache.Entry{Positions: res.Positions, Scanned: len(e.t.Tuples), Version: e.version})
		return res, nil
	}
}

// Drop removes the named table.
func (s *Store) Drop(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; !ok {
		return fmt.Errorf("storage: unknown table %q", name)
	}
	if err := s.appendRecord(opDrop, wire.AppendString(nil, name)); err != nil {
		return err
	}
	s.clock.Add(1)
	delete(s.tables, name)
	if s.cache != nil {
		s.cache.InvalidateTable(name)
	}
	return nil
}

// Compact rewrites the log so it holds exactly one store record per live
// table, discarding superseded stores, appended-tuple records and dropped
// tables. It is a no-op for in-memory stores. The rewrite goes through a
// temporary file and an atomic rename, so a crash mid-compaction leaves
// either the old or the new log intact.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	tmpPath := s.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return fmt.Errorf("storage: creating compaction file: %w", err)
	}
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := s.tables[name]
		// Compaction counts as a mutation for versioning purposes (the
		// durable representation changed), so bump under the write lock.
		// Cached results stay valid and keep hitting: the tuples are
		// untouched, and cache validity is keyed on lineage base and
		// scanned prefix, not on version equality.
		e.mu.Lock()
		e.version = s.clock.Add(1)
		payload := wire.AppendString(nil, name)
		payload = wire.EncodeTable(payload, e.t)
		e.mu.Unlock()
		hdr := []byte{
			byte(len(payload) >> 24), byte(len(payload) >> 16),
			byte(len(payload) >> 8), byte(len(payload)), opStore,
		}
		if _, err := tmp.Write(append(hdr, payload...)); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("storage: writing compacted record: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("storage: syncing compacted log: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("storage: closing compacted log: %w", err)
	}
	if err := s.log.Close(); err != nil {
		return fmt.Errorf("storage: closing old log: %w", err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		return fmt.Errorf("storage: swapping compacted log: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return fmt.Errorf("storage: reopening compacted log: %w", err)
	}
	s.log = f
	return nil
}

// LogSize returns the byte size of the persistence log, or 0 for in-memory
// stores.
func (s *Store) LogSize() (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.log == nil {
		return 0, nil
	}
	info, err := os.Stat(s.path)
	if err != nil {
		return 0, fmt.Errorf("storage: stat log: %w", err)
	}
	return info.Size(), nil
}

// List returns the directory of stored tables, sorted by name.
func (s *Store) List() []wire.TableInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	infos := make([]wire.TableInfo, 0, len(s.tables))
	for name, e := range s.tables {
		e.mu.RLock()
		infos = append(infos, wire.TableInfo{Name: name, SchemeID: e.t.SchemeID, Tuples: len(e.t.Tuples)})
		e.mu.RUnlock()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}
