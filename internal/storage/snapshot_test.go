package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/ph"
)

// buildPrimary opens a durable store at a fresh path and loads it with
// a couple of tables plus appends, returning the store and its path.
func buildPrimary(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if err := p.Put("emp", fakeTable(5)); err != nil {
		t.Fatal(err)
	}
	if err := p.Put("dept", fakeTable(3)); err != nil {
		t.Fatal(err)
	}
	if err := p.Append("emp", fakeTable(2).Tuples); err != nil {
		t.Fatal(err)
	}
	return p, path
}

// assertSameRoots fails unless both stores serve identical table sets
// with identical authenticated roots.
func assertSameRoots(t *testing.T, a, b *Store) {
	t.Helper()
	la, lb := a.List(), b.List()
	if len(la) != len(lb) {
		t.Fatalf("table counts differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("table %d differs: %+v vs %+v", i, la[i], lb[i])
		}
		ra, na, _, err := a.Root(la[i].Name)
		if err != nil {
			t.Fatal(err)
		}
		rb, nb, _, err := b.Root(lb[i].Name)
		if err != nil {
			t.Fatal(err)
		}
		if na != nb || !bytes.Equal(ra, rb) {
			t.Fatalf("roots of %q diverge: %d tuples %x vs %d tuples %x", la[i].Name, na, ra, nb, rb)
		}
	}
}

func TestSnapshotRoundTripMemory(t *testing.T) {
	p, _ := buildPrimary(t)
	var buf bytes.Buffer
	cur, err := p.WriteSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantEpoch, wantHead := p.LogHead()
	if cur.Epoch != wantEpoch || cur.Seq != wantHead {
		t.Fatalf("snapshot cursor (%d,%d), want the log head (%d,%d)", cur.Epoch, cur.Seq, wantEpoch, wantHead)
	}
	f := NewMemory()
	got, err := f.InstallSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got != cur {
		t.Fatalf("install returned cursor %+v, snapshot embeds %+v", got, cur)
	}
	assertSameRoots(t, p, f)
	if e, s, ok := f.ResumeCursor(); !ok || e != cur.Epoch || s != cur.Seq {
		t.Fatalf("ResumeCursor = (%d,%d,%v), want (%d,%d,true)", e, s, ok, cur.Epoch, cur.Seq)
	}
}

// TestSnapshotInstallDurable pins the durable follower path: the
// snapshot's contents survive the follower's own restart, and so does
// the resume cursor — advanced by the records applied after install.
func TestSnapshotInstallDurable(t *testing.T) {
	p, _ := buildPrimary(t)
	var buf bytes.Buffer
	cur, err := p.WriteSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fpath := filepath.Join(t.TempDir(), "follower.log")
	f, err := Open(fpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Put("stale", fakeTable(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.InstallSnapshot(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Get("stale"); err == nil {
		t.Fatal("install kept a table the snapshot does not contain")
	}
	assertSameRoots(t, p, f)

	// Tail one more record past the snapshot, then restart.
	if err := p.Append("dept", fakeTable(1).Tuples); err != nil {
		t.Fatal(err)
	}
	recs, _, _, _, err := p.ReadLog(cur.Epoch, cur.Seq, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("shipped %d records from the snapshot cursor, want 1", len(recs))
	}
	if err := f.ApplyShipped(recs[0]); err != nil {
		t.Fatal(err)
	}
	assertSameRoots(t, p, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := Open(fpath)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	assertSameRoots(t, p, f2)
	if e, s, ok := f2.ResumeCursor(); !ok || e != cur.Epoch || s != cur.Seq+1 {
		t.Fatalf("restarted ResumeCursor = (%d,%d,%v), want (%d,%d,true)", e, s, ok, cur.Epoch, cur.Seq+1)
	}
}

// TestSnapshotInstallAtomic pins the old-state-on-any-failure contract:
// a corrupted snapshot must not disturb the store, in memory or on disk.
func TestSnapshotInstallAtomic(t *testing.T) {
	p, _ := buildPrimary(t)
	var buf bytes.Buffer
	if _, err := p.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	fpath := filepath.Join(t.TempDir(), "follower.log")
	f, err := Open(fpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Put("keep", fakeTable(4)); err != nil {
		t.Fatal(err)
	}
	wantRoot, wantN, _, err := f.Root("keep")
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string][]byte{
		"truncated header": good[:snapHdrLen-1],
		"truncated body":   good[:len(good)-5],
		"flipped byte":     flipByte(good, len(good)/2),
		"flipped trailer":  flipByte(good, len(good)-1),
		"bad magic":        flipByte(good, 0),
		"empty":            {},
	}
	for name, bad := range mutations {
		if _, err := f.InstallSnapshot(bad); err == nil {
			t.Fatalf("%s: install of corrupt snapshot succeeded", name)
		}
		root, n, _, err := f.Root("keep")
		if err != nil || n != wantN || !bytes.Equal(root, wantRoot) {
			t.Fatalf("%s: failed install disturbed the store (root err %v)", name, err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := Open(fpath)
	if err != nil {
		t.Fatalf("reopen after failed installs: %v", err)
	}
	defer f2.Close()
	root, n, _, err := f2.Root("keep")
	if err != nil || n != wantN || !bytes.Equal(root, wantRoot) {
		t.Fatalf("failed installs disturbed the durable log (root err %v)", err)
	}
}

func flipByte(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0x40
	return c
}

// TestSnapshotChunkedTransfer drives the resumable chunk protocol the
// way a follower does — tiny budget, identity echo, reassemble — and
// checks the hostile-request clamps on the way.
func TestSnapshotChunkedTransfer(t *testing.T) {
	p, _ := buildPrimary(t)
	var assembled []byte
	var e, q uint64
	for i := 0; ; i++ {
		if i > 10000 {
			t.Fatal("transfer never completed")
		}
		data, ce, cq, total, off, err := p.ReadSnapshot(e, q, uint64(len(assembled)), 16)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 16 {
			t.Fatalf("chunk of %d bytes exceeds the requested budget", len(data))
		}
		if ce != e || cq != q {
			if off != 0 {
				t.Fatalf("new identity (%d,%d) served from offset %d", ce, cq, off)
			}
			assembled, e, q = nil, ce, cq
		}
		assembled = append(assembled, data...)
		if uint64(len(assembled)) == total {
			break
		}
	}
	f := NewMemory()
	cur, err := f.InstallSnapshot(assembled)
	if err != nil {
		t.Fatalf("installing reassembled snapshot: %v", err)
	}
	if cur.Epoch != e || cur.Seq != q {
		t.Fatalf("embedded cursor (%d,%d) != served identity (%d,%d)", cur.Epoch, cur.Seq, e, q)
	}
	assertSameRoots(t, p, f)

	// Hostile shapes: offset past the end is empty, huge budgets clamp,
	// a voided identity restarts from 0 under the server's identity.
	data, _, _, total, off, err := p.ReadSnapshot(e, q, 1<<40, 16)
	if err != nil || len(data) != 0 || off != total {
		t.Fatalf("offset past end: data %d, off %d, err %v", len(data), off, err)
	}
	data, _, _, _, _, err = p.ReadSnapshot(e, q, 0, ^uint32(0))
	if err != nil || len(data) > maxSnapChunk {
		t.Fatalf("budget clamp failed: %d bytes, err %v", len(data), err)
	}
	data, ne, nq, _, off, err := p.ReadSnapshot(e+1, q+7, 9999, 16)
	if err != nil || off != 0 {
		t.Fatalf("unknown identity: off %d, err %v", off, err)
	}
	if ne == e+1 && nq == q+7 {
		t.Fatal("server adopted the client's fictional snapshot identity")
	}
	_ = data

	// In-memory stores have nothing to ship.
	if _, _, _, _, _, err := NewMemory().ReadSnapshot(0, 0, 0, 16); err == nil {
		t.Fatal("in-memory store served a snapshot")
	}
}

// TestSnapshotServesFreshAfterWrites: a zero-identity request must not
// be answered from a stale cached snapshot.
func TestSnapshotServesFreshAfterWrites(t *testing.T) {
	p, _ := buildPrimary(t)
	_, _, s1, _, _, err := p.ReadSnapshot(0, 0, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Append("emp", fakeTable(1).Tuples); err != nil {
		t.Fatal(err)
	}
	_, _, s2, _, _, err := p.ReadSnapshot(0, 0, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if s2 <= s1 {
		t.Fatalf("fresh bootstrap served the stale snapshot (seq %d then %d)", s1, s2)
	}
}

// TestEpochSidecarTruncated (satellite): a half-written epoch sidecar
// must mint a fresh epoch — never resume shipping under it.
func TestEpochSidecarTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Put("emp", fakeTable(2)); err != nil {
		t.Fatal(err)
	}
	oldEpoch := p.LogEpoch()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{0, 3, epochV2Len - 1} {
		b, err := os.ReadFile(path + epochSuffix)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path+epochSuffix, b[:keep], 0o600); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path)
		if err != nil {
			t.Fatalf("truncated-to-%d sidecar refused to open: %v", keep, err)
		}
		got := r.LogEpoch()
		r.Close()
		if got == 0 {
			t.Fatalf("truncated-to-%d sidecar: epoch 0", keep)
		}
		if got == oldEpoch {
			t.Fatalf("truncated-to-%d sidecar: store resumed epoch %d it cannot vouch for", keep, oldEpoch)
		}
		oldEpoch = got
	}
}

// TestEpochSidecarBitFlip (satellite): a bit-flipped sidecar fails its
// checksum and mints a fresh epoch — shipping never resumes under an
// epoch the disk merely resembles.
func TestEpochSidecarBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	oldEpoch := p.LogEpoch()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < epochV2Len; i++ {
		b, err := os.ReadFile(path + epochSuffix)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != epochV2Len {
			t.Fatalf("sidecar is %d bytes, want %d", len(b), epochV2Len)
		}
		b[i] ^= 0x01
		if err := os.WriteFile(path+epochSuffix, b, 0o600); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path)
		if err != nil {
			t.Fatalf("bit-flipped sidecar (byte %d) refused to open: %v", i, err)
		}
		got := r.LogEpoch()
		r.Close()
		if got == oldEpoch {
			t.Fatalf("byte %d flip: store resumed epoch %d from a checksum-failing sidecar", i, oldEpoch)
		}
		oldEpoch = got
	}
}

// TestEpochSidecarLegacy pins v1 acceptance: an 8-byte unchecksummed
// sidecar from a pre-v2 deployment keeps its epoch.
func TestEpochSidecarLegacy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	legacy := []byte{0, 0, 0, 0, 0, 0, 0xBE, 0xEF}
	if err := os.WriteFile(path+epochSuffix, legacy, 0o600); err != nil {
		t.Fatal(err)
	}
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got := p.LogEpoch(); got != 0xBEEF {
		t.Fatalf("legacy sidecar epoch = %#x, want 0xbeef", got)
	}
}

// TestShipBaseSidecarCorruption: a torn or flipped ship-base sidecar
// yields no resume cursor — the follower re-bootstraps instead of
// resuming a cursor the disk cannot vouch for.
func TestShipBaseSidecarCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetShipBase(42, 7); err != nil {
		t.Fatal(err)
	}
	if e, s, ok := p.ResumeCursor(); !ok || e != 42 || s != 7 {
		t.Fatalf("ResumeCursor = (%d,%d,%v), want (42,7,true)", e, s, ok)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path + shipBaseSuffix)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, contents []byte) {
		t.Helper()
		if err := os.WriteFile(path+shipBaseSuffix, contents, 0o600); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path)
		if err != nil {
			t.Fatalf("%s: refused to open: %v", name, err)
		}
		defer r.Close()
		if _, _, ok := r.ResumeCursor(); ok {
			t.Fatalf("%s: store resumed a cursor from an unverifiable sidecar", name)
		}
	}
	check("truncated", good[:len(good)-3])
	check("flipped", flipByte(good, 20))
	check("empty", nil)

	// And the intact sidecar must survive a clean reopen.
	if err := os.WriteFile(path+shipBaseSuffix, good, 0o600); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if e, s, ok := r.ResumeCursor(); !ok || e != 42 || s != 7 {
		t.Fatalf("intact sidecar: ResumeCursor = (%d,%d,%v), want (42,7,true)", e, s, ok)
	}
}

// TestDiskFullDegradation is the chaos drill for the disk-full
// contract: when the log cannot grow, the store degrades to refusing
// mutations — it must not corrupt, and what was durable must replay.
func TestDiskFullDegradation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	var ff *fault.File
	opts := Options{WrapLog: func(f LogFile) LogFile {
		ff = fault.NewFile(f, fault.FilePlan{FailWriteAfterBytes: 1024})
		return ff
	}}
	p, err := OpenOptions(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Put("emp", fakeTable(3)); err != nil {
		t.Fatalf("put within space: %v", err)
	}
	wantRoot, wantN, _, err := p.Root("emp")
	if err != nil {
		t.Fatal(err)
	}
	// Blow the budget: a batch far larger than the remaining space.
	if err := p.Append("emp", fakeTable(200).Tuples); err == nil {
		t.Fatal("append past the disk accepted")
	}
	// Every further mutation must be refused BEFORE touching memory.
	before, err := p.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Append("emp", fakeTable(1).Tuples); err == nil {
		t.Fatal("mutation accepted on a full disk")
	}
	if err := p.Put("dept", fakeTable(1)); err == nil {
		t.Fatal("put accepted on a full disk")
	}
	after, err := p.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Tuples) != len(before.Tuples) {
		t.Fatalf("refused mutation leaked into memory: %d tuples then %d", len(before.Tuples), len(after.Tuples))
	}
	if _, err := p.Query("emp", &ph.EncryptedQuery{SchemeID: "storage-test"}); err != nil {
		t.Fatalf("read refused on a full disk: %v", err)
	}
	p.Close()

	// Recovery: reopen (space "freed": no fault). Only what the log's
	// checksums vouch for comes back — bit-identical to pre-overflow.
	r, err := Open(path)
	if err != nil {
		t.Fatalf("reopening after disk-full: %v", err)
	}
	defer r.Close()
	root, n, _, err := r.Root("emp")
	if err != nil {
		t.Fatal(err)
	}
	if n != wantN || !bytes.Equal(root, wantRoot) {
		t.Fatalf("recovered root diverges: %d tuples %x, want %d tuples %x", n, root, wantN, wantRoot)
	}
	if err := r.Append("emp", fakeTable(1).Tuples); err != nil {
		t.Fatalf("store did not recover after reopen: %v", err)
	}
}

// TestWALCrashMidAppend: a crash-at-offset mid-record leaves a torn
// tail that replay truncates; the reopened store is exactly the durable
// prefix.
func TestWALCrashMidAppend(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		path := filepath.Join(t.TempDir(), "wal.log")
		// First pass un-faulted, to learn the full log size.
		p, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Put("emp", fakeTable(3)); err != nil {
			t.Fatal(err)
		}
		if err := p.Append("emp", fakeTable(4).Tuples); err != nil {
			t.Fatal(err)
		}
		full, err := p.LogSize()
		if err != nil {
			t.Fatal(err)
		}
		p.Close()
		os.Remove(path)
		os.Remove(path + epochSuffix)

		// Second pass: crash at a seeded offset inside the log.
		crashAt := fault.Point(seed, full-1)
		p, err = OpenOptions(path, Options{WrapLog: func(f LogFile) LogFile {
			return fault.NewFile(f, fault.FilePlan{CrashAtByte: crashAt})
		}})
		if err != nil {
			t.Fatal(err)
		}
		perr := p.Put("emp", fakeTable(3))
		var aerr error
		if perr == nil {
			aerr = p.Append("emp", fakeTable(4).Tuples)
		}
		if perr == nil && aerr == nil {
			t.Fatalf("seed %d: crash at byte %d of %d never surfaced", seed, crashAt, full)
		}
		p.Close()

		r, err := Open(path)
		if err != nil {
			t.Fatalf("seed %d: reopen after crash at %d: %v", seed, crashAt, err)
		}
		// Whatever survived must be a clean record prefix: either no
		// table, the bare put, or put+append — and the log must end at
		// a record boundary (replay truncated the torn tail).
		if tbl, err := r.Get("emp"); err == nil {
			if n := len(tbl.Tuples); n != 3 && n != 7 {
				t.Fatalf("seed %d: recovered %d tuples, want a record-aligned 3 or 7", seed, n)
			}
		}
		if err := r.Append("emp", fakeTable(1).Tuples); err != nil {
			// Acceptable only if the table itself did not survive.
			if _, gerr := r.Get("emp"); gerr == nil {
				t.Fatalf("seed %d: recovered store refuses appends: %v", seed, err)
			}
		}
		r.Close()
	}
}
