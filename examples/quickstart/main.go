// Quickstart: encrypt a relation with the paper's database privacy
// homomorphism, run an exact select on the ciphertext (as the untrusted
// server would), and decrypt the result. Everything happens in-process; see
// examples/payroll for the networked version.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
)

func main() {
	// The paper's running example: Emp(name, dept, salary).
	schema := relation.MustSchema("emp",
		relation.Column{Name: "name", Type: relation.TypeString, Width: 10},
		relation.Column{Name: "dept", Type: relation.TypeString, Width: 5},
		relation.Column{Name: "salary", Type: relation.TypeInt, Width: 5},
	)
	table := relation.NewTable(schema)
	table.MustInsert(relation.String("Montgomery"), relation.String("HR"), relation.Int(7500))
	table.MustInsert(relation.String("Ada"), relation.String("IT"), relation.Int(9100))
	table.MustInsert(relation.String("Grace"), relation.String("HR"), relation.Int(8800))

	// Alex's side: a key and the privacy homomorphism (K, E, Eq, D).
	key, err := crypto.RandomKey()
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := core.New(key, schema, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// E: encrypt the table. This is everything Eve will ever see.
	ct, err := scheme.EncryptTable(table)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encrypted %d tuples; first cipherword: %x…\n",
		len(ct.Tuples), ct.Tuples[0].Words[0][:8])

	// Eq: encrypt the query σ_dept:HR into a trapdoor.
	q := relation.Eq{Column: "dept", Value: relation.String("HR")}
	eq, err := scheme.EncryptQuery(q)
	if err != nil {
		log.Fatal(err)
	}

	// ψ: the server evaluates the encrypted query on the encrypted table
	// — no keys involved (ph.Apply dispatches to the key-free evaluator).
	res, err := ph.Apply(ct, eq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server matched %d encrypted tuples (positions %v)\n", len(res.Tuples), res.Positions)

	// D: decrypt and filter false positives client-side.
	out, err := scheme.DecryptResult(q, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decrypted result of %s:\n%s", q, out.Sorted())
}
