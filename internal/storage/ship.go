package storage

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"repro/internal/cache"
	"repro/internal/ph"
	"repro/internal/wire"
)

// Log shipping: the surface a read replica tails a primary through
// (internal/replica drives it over wire.CmdShipLog).
//
// The write-ahead log is a total order of mutations starting from the
// empty store, and a follower stays current by polling for records past
// its cursor. A cursor is the pair (epoch, seq): seq indexes records of
// the current log file, and the epoch — a random identifier persisted
// in a sidecar next to the log — names which file that sequence space
// belongs to. Compact rewrites the file, making old sequence numbers
// meaningless, so it rotates the epoch; a follower presenting a cursor
// from a rotated (or otherwise unknown) epoch is answered from
// (currentEpoch, 0), telling it to re-bootstrap instead of silently
// diverging. Bootstrapping itself has two paths: replaying the shipped
// stream from record 0, or — O(state) instead of O(log) — installing a
// checksummed snapshot that embeds the cursor it corresponds to (see
// snapshot.go). A durable follower additionally persists its cursor's
// provenance in a ship-base sidecar (SetShipBase) so a restart resumes
// tailing where it left off.
//
// Trust model: replication adds nothing for Eve to learn — shipped
// records are the ciphertext mutations the client already sent — and a
// follower needs no integrity protocol of its own, because a replica
// that replays the same records through the same mutation paths builds
// the same Merkle roots, and the client verifies every replica answer
// against its pinned root exactly as it does the primary's.

// epochSuffix names the sidecar file holding the log's shipping epoch.
const epochSuffix = ".epoch"

// shipBaseSuffix names the sidecar recording where a follower's local
// log sits in its primary's shipping stream (see SetShipBase).
const shipBaseSuffix = ".shipbase"

// maxShipRecords bounds the records one ReadLog answer carries,
// whatever byte budget the (untrusted, possibly hostile) peer asked
// for.
const maxShipRecords = 4096

// randomEpoch draws a fresh nonzero epoch identifier.
func randomEpoch() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("storage: drawing log epoch: %w", err)
	}
	e := binary.BigEndian.Uint64(b[:])
	if e == 0 {
		e = 1 // 0 is reserved for in-memory stores (no log to ship)
	}
	return e, nil
}

// Epoch sidecar format v2: magic "EPC2" | epoch:u64 | crc32c:u32, the
// CRC covering magic+epoch. The checksum is what distinguishes a
// half-written or bit-flipped sidecar from a legitimate rotation: a
// corrupt sidecar mints a FRESH epoch (below), so no follower cursor
// ever resumes against an epoch the disk merely resembles. The v1
// format (8 raw epoch bytes) is still accepted on read for logs
// written before the checksum existed.
const (
	epochMagic   = "EPC2"
	epochV2Len   = 4 + 8 + 4
	epochV1Len   = 8
	epochTmpName = ".tmp"
)

// writeSidecar persists small sidecar contents through a temp file,
// fsync and rename so the sidecar is never half-written in place (a
// crash leaves either the old sidecar or the new one, or a stray .tmp
// that is simply overwritten next time).
func writeSidecar(path string, contents []byte, what string) error {
	tmp := path + epochTmpName
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return fmt.Errorf("storage: creating %s sidecar: %w", what, err)
	}
	if _, err := f.Write(contents); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: writing %s sidecar: %w", what, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: syncing %s sidecar: %w", what, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: closing %s sidecar: %w", what, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: installing %s sidecar: %w", what, err)
	}
	return nil
}

// writeEpoch persists the epoch sidecar for the log at path.
func writeEpoch(path string, epoch uint64) error {
	b := make([]byte, 0, epochV2Len)
	b = append(b, epochMagic...)
	b = binary.BigEndian.AppendUint64(b, epoch)
	crc := crc32.Checksum(b, castagnoli)
	b = binary.BigEndian.AppendUint32(b, crc)
	return writeSidecar(path+epochSuffix, b, "epoch")
}

// loadEpoch reads the log's epoch sidecar, minting (and persisting) a
// fresh epoch when there is none or its contents are unusable — a
// missing file, a truncated (half-written) one, or one whose checksum
// disowns its bytes. A lost or corrupt sidecar therefore just looks
// like a rotation: followers re-bootstrap, and shipping never resumes
// under an epoch the store cannot vouch for.
func loadEpoch(path string) (uint64, error) {
	b, err := os.ReadFile(path + epochSuffix)
	if err == nil {
		switch {
		case len(b) == epochV2Len && string(b[:4]) == epochMagic:
			if crc32.Checksum(b[:12], castagnoli) == binary.BigEndian.Uint32(b[12:]) {
				if e := binary.BigEndian.Uint64(b[4:12]); e != 0 {
					return e, nil
				}
			}
		case len(b) == epochV1Len:
			// Legacy unchecksummed sidecar: accept nonzero values so
			// pre-v2 deployments keep their followers' cursors.
			if e := binary.BigEndian.Uint64(b); e != 0 {
				return e, nil
			}
		}
	}
	if err != nil && !os.IsNotExist(err) {
		return 0, fmt.Errorf("storage: reading epoch sidecar: %w", err)
	}
	e, err := randomEpoch()
	if err != nil {
		return 0, err
	}
	if err := writeEpoch(path, e); err != nil {
		return 0, err
	}
	return e, nil
}

// Ship-base sidecar format: magic "SBC1" | ownEpoch:u64 |
// primaryEpoch:u64 | primarySeq:u64 | localRecs:u64 | crc32c:u32.
//
// It records where a follower's own durable log sits in its primary's
// shipping stream: when the local log held localRecs records, the
// follower's cursor was (primaryEpoch, primarySeq). Every locally
// logged record past localRecs is exactly one applied shipped record,
// so after a restart the cursor resumes at primarySeq + (recs -
// localRecs). ownEpoch binds the sidecar to the local log file it
// describes: any swap of the local log (Reset, InstallSnapshot,
// Compact) rotates the local epoch, so a sidecar from a crashed,
// half-finished swap fails the binding check and the follower
// re-bootstraps instead of resuming a cursor that matches neither file.
const (
	shipBaseMagic = "SBC1"
	shipBaseLen   = 4 + 4*8 + 4
)

// shipBase is the in-memory form of the ship-base sidecar.
type shipBase struct {
	primaryEpoch uint64
	primarySeq   uint64
	localRecs    uint64
}

func writeShipBase(path string, ownEpoch uint64, b shipBase) error {
	buf := make([]byte, 0, shipBaseLen)
	buf = append(buf, shipBaseMagic...)
	buf = binary.BigEndian.AppendUint64(buf, ownEpoch)
	buf = binary.BigEndian.AppendUint64(buf, b.primaryEpoch)
	buf = binary.BigEndian.AppendUint64(buf, b.primarySeq)
	buf = binary.BigEndian.AppendUint64(buf, b.localRecs)
	crc := crc32.Checksum(buf, castagnoli)
	buf = binary.BigEndian.AppendUint32(buf, crc)
	return writeSidecar(path+shipBaseSuffix, buf, "ship-base")
}

// loadShipBase reads the ship-base sidecar, returning ok=false for a
// missing, torn, checksum-failing or wrong-epoch sidecar — all of which
// just mean the follower re-bootstraps.
func loadShipBase(path string, ownEpoch uint64) (shipBase, bool) {
	b, err := os.ReadFile(path + shipBaseSuffix)
	if err != nil || len(b) != shipBaseLen || string(b[:4]) != shipBaseMagic {
		return shipBase{}, false
	}
	if crc32.Checksum(b[:shipBaseLen-4], castagnoli) != binary.BigEndian.Uint32(b[shipBaseLen-4:]) {
		return shipBase{}, false
	}
	if binary.BigEndian.Uint64(b[4:12]) != ownEpoch {
		return shipBase{}, false
	}
	return shipBase{
		primaryEpoch: binary.BigEndian.Uint64(b[12:20]),
		primarySeq:   binary.BigEndian.Uint64(b[20:28]),
		localRecs:    binary.BigEndian.Uint64(b[28:36]),
	}, true
}

// SetShipBase records that this store's current contents correspond to
// the primary cursor (primaryEpoch, primarySeq). Followers call it when
// they adopt an epoch at sequence 0; InstallSnapshot records the
// snapshot's embedded cursor itself. For durable stores the base is
// persisted in a checksummed sidecar bound to the local log's epoch, so
// a restarted follower resumes tailing instead of re-bootstrapping.
func (s *Store) SetShipBase(primaryEpoch, primarySeq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//phlint:ignore lockio the sidecar fsync must run while s.mu freezes the base/log state it records
	return s.setShipBaseLocked(primaryEpoch, primarySeq)
}

// setShipBaseLocked is SetShipBase under a held store lock.
func (s *Store) setShipBaseLocked(primaryEpoch, primarySeq uint64) error {
	b := shipBase{primaryEpoch: primaryEpoch, primarySeq: primarySeq}
	if s.wal != nil {
		b.localRecs = s.wal.records()
		if err := writeShipBase(s.path, s.epoch, b); err != nil {
			return err
		}
	}
	s.base, s.baseValid = b, true
	return nil
}

// ResumeCursor returns the shipping cursor this store's contents are
// known to correspond to, for a follower deciding where to resume
// tailing after a restart: (primaryEpoch, primarySeq + records applied
// since the base was recorded). ok is false when no valid base exists —
// a fresh store, a torn or stale sidecar, or a local log shorter than
// the base claims (a torn tail truncated into the snapshot region) —
// and the follower must re-bootstrap.
func (s *Store) ResumeCursor() (epoch, seq uint64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.baseValid {
		return 0, 0, false
	}
	var recs uint64
	if s.wal != nil {
		recs = s.wal.records()
	} else {
		recs = s.base.localRecs
	}
	if recs < s.base.localRecs {
		return 0, 0, false
	}
	return s.base.primaryEpoch, s.base.primarySeq + (recs - s.base.localRecs), true
}

// LogEpoch returns the current log-shipping epoch (0 for in-memory
// stores, which have no log to ship).
func (s *Store) LogEpoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// LogHead returns the current epoch and the log's record count — the
// cursor at which a follower is caught up. Zero values for in-memory
// stores.
func (s *Store) LogHead() (epoch, head uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.wal == nil {
		return 0, 0
	}
	return s.epoch, s.wal.records()
}

// ReadLog serves one log-shipping poll: records of the current log file
// starting at the cursor (reqEpoch, from), at most maxBytes of payload
// (clamped; at least one record is shipped when any is available, so a
// single huge record cannot stall a follower forever). It returns the
// epoch and start sequence actually served, plus the log's record head.
// A cursor ReadLog cannot honour — a rotated epoch, or a sequence past
// the head — is answered from (currentEpoch, 0), telling the follower
// to re-bootstrap; a follower therefore resets whenever the reply's
// epoch or start differs from its cursor.
//
// Concurrency: the epoch is read under the store's read lock before and
// after the file scan. Compact holds the store lock exclusively across
// its file swap and epoch bump, so equal epochs either side of the scan
// prove the bytes scanned all belong to the file the cursor names; on a
// mismatch the scan is discarded and the follower told to reset. The
// scan itself runs on a private read handle with no store lock held, so
// shipping never blocks queries or mutations. Racing appends are safe:
// the scanner stops at the first torn or CRC-failing record, and the
// head it reports never exceeds what the writer had accepted at lock
// time.
func (s *Store) ReadLog(reqEpoch, from uint64, maxBytes uint32) (recs []wire.LogRecord, epoch, start, head uint64, err error) {
	s.mu.RLock()
	if s.wal == nil {
		s.mu.RUnlock()
		return nil, 0, 0, 0, fmt.Errorf("storage: in-memory store has no log to ship")
	}
	e1 := s.epoch
	head = s.wal.records()
	if reqEpoch != e1 || from > head {
		from = 0 // rotated or bogus cursor: serve the bootstrap stream
	}
	start = from
	f, err := os.Open(s.path)
	s.mu.RUnlock()
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("storage: opening log for shipping: %w", err)
	}
	defer f.Close()

	// Resume at the cached byte offset when the cursor matches; offsets
	// are only valid within one epoch, and a stale one past a torn-tail
	// truncation just reads EOF and ships nothing this round.
	off, skip := int64(0), from
	s.shipMu.Lock()
	if s.shipEpoch == e1 && s.shipSeq == from {
		off, skip = s.shipOff, 0
	}
	s.shipMu.Unlock()

	want := head - from
	if want > maxShipRecords {
		want = maxShipRecords
	}
	recs, nextOff := scanShipRecords(f, off, skip, want, maxBytes)

	// Re-check the epoch: if Compact swapped the file mid-scan, the bytes
	// read may straddle two files. Discard and tell the follower to
	// re-bootstrap against the new epoch.
	s.mu.RLock()
	e2 := s.epoch
	head2 := s.wal.records()
	s.mu.RUnlock()
	if e2 != e1 {
		return nil, e2, 0, head2, nil
	}
	if len(recs) > 0 {
		s.shipMu.Lock()
		s.shipEpoch, s.shipSeq, s.shipOff = e1, from+uint64(len(recs)), nextOff
		s.shipMu.Unlock()
	}
	return recs, e1, start, head, nil
}

// scanShipRecords parses up to want records from the log file starting
// at byte offset off, first skipping skip records, stopping early once
// maxBytes of payload are exceeded (but never before the first record).
// Anything unparsable — a torn header, a CRC mismatch, a concurrent
// append's half-written tail — ends the scan; the follower just gets a
// shorter chunk and polls again. nextOff is the byte offset one past
// the last record returned.
func scanShipRecords(f *os.File, off int64, skip, want uint64, maxBytes uint32) (recs []wire.LogRecord, nextOff int64) {
	if want == 0 {
		return nil, off
	}
	budget := int64(maxBytes)
	if budget <= 0 {
		budget = 1
	}
	br := bufio.NewReaderSize(io.NewSectionReader(f, off, 1<<62), 1<<16)
	nextOff = off
	var spent int64
	for uint64(len(recs)) < want {
		first, err := br.ReadByte()
		if err != nil {
			return recs, nextOff
		}
		var op byte
		var payload []byte
		var recLen int64
		if first == walMagic {
			var hdr [walV1HdrLen - 1]byte // op, len, crc
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return recs, nextOff
			}
			n := binary.BigEndian.Uint32(hdr[1:5])
			if n > wire.MaxFrameSize {
				return recs, nextOff
			}
			payload = make([]byte, n)
			if _, err := io.ReadFull(br, payload); err != nil {
				return recs, nextOff
			}
			crc := crc32.Update(0, castagnoli, hdr[:5])
			crc = crc32.Update(crc, castagnoli, payload)
			if crc != binary.BigEndian.Uint32(hdr[5:9]) {
				return recs, nextOff
			}
			op = hdr[0]
			recLen = walV1HdrLen + int64(n)
		} else {
			// Legacy v0: first is the leading byte of the length.
			var rest [walV0HdrLen - 1]byte // len[1:4], op
			if _, err := io.ReadFull(br, rest[:]); err != nil {
				return recs, nextOff
			}
			n := uint32(first)<<24 | uint32(rest[0])<<16 | uint32(rest[1])<<8 | uint32(rest[2])
			if n > wire.MaxFrameSize {
				return recs, nextOff
			}
			op = rest[3]
			payload = make([]byte, n)
			if _, err := io.ReadFull(br, payload); err != nil {
				return recs, nextOff
			}
			recLen = walV0HdrLen + int64(n)
		}
		if skip > 0 {
			skip--
			nextOff += recLen
			continue
		}
		if len(recs) > 0 && spent+recLen > budget {
			return recs, nextOff
		}
		recs = append(recs, wire.LogRecord{Op: op, Payload: payload})
		spent += recLen
		nextOff += recLen
	}
	return recs, nextOff
}

// ApplyShipped applies one shipped log record through the store's
// normal mutation paths — Put, Append, Drop — so locking, versioning,
// cache invalidation and incremental authenticated-index maintenance
// all behave exactly as if the mutation arrived from a client. That is
// what makes a follower's Merkle roots bit-identical to the primary's:
// same tuple bytes, same leaf hashes, same tree. Any error (malformed
// payload, insert into a table the follower does not have) means the
// follower's view has diverged and it must re-bootstrap.
func (s *Store) ApplyShipped(rec wire.LogRecord) error {
	r := wire.NewBuffer(rec.Payload)
	switch rec.Op {
	case opStore:
		name, err := r.String()
		if err != nil {
			return fmt.Errorf("storage: shipped store record: %w", err)
		}
		t, err := wire.DecodeTable(r)
		if err != nil {
			return fmt.Errorf("storage: shipped store record: %w", err)
		}
		return s.Put(name, t)
	case opInsert:
		name, err := r.String()
		if err != nil {
			return fmt.Errorf("storage: shipped insert record: %w", err)
		}
		n, err := r.U32()
		if err != nil {
			return fmt.Errorf("storage: shipped insert record: %w", err)
		}
		if int(n) > r.Remaining() {
			return fmt.Errorf("storage: shipped insert record: tuple count %d exceeds payload", n)
		}
		tuples := make([]ph.EncryptedTuple, 0, wire.ClampCount(n, r.Remaining()/8))
		for i := uint32(0); i < n; i++ {
			tp, err := wire.DecodeTuple(r)
			if err != nil {
				return fmt.Errorf("storage: shipped insert record tuple %d: %w", i, err)
			}
			tuples = append(tuples, tp)
		}
		return s.Append(name, tuples)
	case opDrop:
		name, err := r.String()
		if err != nil {
			return fmt.Errorf("storage: shipped drop record: %w", err)
		}
		return s.Drop(name)
	default:
		return fmt.Errorf("storage: shipped record has unknown op %#x", rec.Op)
	}
}

// Reset drops every table and cached result, returning the store to
// empty. It exists for replica stores that must re-bootstrap after a
// primary log rotation. For a durable store the log is reset with it —
// an empty replacement file is fsynced and renamed over the old log
// under Compact's crash discipline (the local epoch rotates, so a stale
// ship-base sidecar fails its binding check) — because resetting memory
// without the log would fork the two.
func (s *Store) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Quiesce and retire every entry: write-locking an entry excludes
	// in-flight appends past their catalogue lookup, so no log write is
	// in flight when the file is swapped, and marking it stale sends
	// those appends back to the (new, empty) catalogue.
	entries := s.lockAllEntries()
	if s.wal != nil {
		tmpPath := s.path + ".reset"
		tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o600)
		if err != nil {
			unlockEntries(entries, false)
			return fmt.Errorf("storage: creating reset log: %w", err)
		}
		//phlint:ignore lockio log rotation is stop-the-world by design: every table is quiesced and the swap must be atomic with the catalogue
		if err := s.rotateLog(tmp, tmpPath, 0, 0); err != nil {
			unlockEntries(entries, false)
			return err
		}
	}
	unlockEntries(entries, true)
	s.tables = make(map[string]*tableEntry)
	if s.cache != nil {
		s.cache = cache.New(0)
	}
	s.baseValid = false
	if s.wal != nil {
		os.Remove(s.path + shipBaseSuffix)
	}
	return nil
}

// lockAllEntries write-locks every catalogued entry in sorted name
// order (the store lock is held exclusively, so the set is stable).
func (s *Store) lockAllEntries() []*tableEntry {
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	entries := make([]*tableEntry, 0, len(names))
	for _, name := range names {
		e := s.tables[name]
		e.mu.Lock()
		entries = append(entries, e)
	}
	return entries
}

// unlockEntries releases lockAllEntries, marking the entries stale when
// the catalogue is about to replace them (retire=true). On an aborted
// swap the entries stay live — leaving them marked stale while still
// catalogued would send retrying appenders into a spin.
func unlockEntries(entries []*tableEntry, retire bool) {
	for _, e := range entries {
		if retire {
			e.stale = true
		}
		e.mu.Unlock()
	}
}
