package core

import (
	"bytes"
	"testing"

	"repro/internal/relation"
)

func TestLayoutPaperExample(t *testing.T) {
	// The paper's running example: Emp(name:string[9], dept:string[5],
	// salary:int) maps ⟨"Montgomery","HR",7500⟩ to
	// {"MontgomeryN", "HR########D", "7500######S"}. (The paper's own
	// instance "Montgomery" is 10 characters, so we declare width 10.)
	l, err := newLayout(empSchema(), false)
	if err != nil {
		t.Fatal(err)
	}
	for col := 0; col < 3; col++ {
		if n := l.wordLenFor(col); n != 11 {
			t.Fatalf("word length for column %d = %d, want 11 (widest value 10 + id byte)", col, n)
		}
	}
	cases := []struct {
		col  int
		v    relation.Value
		want string
	}{
		{0, relation.String("Montgomery"), "MontgomeryN"},
		{1, relation.String("HR"), "HR########D"},
		{2, relation.Int(7500), "7500######S"},
	}
	for _, c := range cases {
		w, err := l.makeWord(c.col, c.v)
		if err != nil {
			t.Fatalf("makeWord(%d, %v): %v", c.col, c.v, err)
		}
		if string(w) != c.want {
			t.Errorf("makeWord(%d, %v) = %q, want %q", c.col, c.v, w, c.want)
		}
	}
}

func TestLayoutParseWordInverts(t *testing.T) {
	l, err := newLayout(empSchema(), false)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		col int
		v   relation.Value
	}{
		{0, relation.String("Montgomery")},
		{0, relation.String("")},
		{1, relation.String("HR")},
		{2, relation.Int(7500)},
		{2, relation.Int(-42)},
		{2, relation.Int(0)},
	}
	for _, c := range cases {
		w, err := l.makeWord(c.col, c.v)
		if err != nil {
			t.Fatalf("makeWord: %v", err)
		}
		col, v, err := l.parseWord(w)
		if err != nil {
			t.Fatalf("parseWord(%q): %v", w, err)
		}
		if col != c.col || !v.Equal(c.v) {
			t.Errorf("parseWord(%q) = (%d, %v), want (%d, %v)", w, col, v, c.col, c.v)
		}
	}
}

func TestLayoutIDsAreFirstLetters(t *testing.T) {
	l, err := newLayout(empSchema(), false)
	if err != nil {
		t.Fatal(err)
	}
	// name -> 'N', dept -> 'D', salary -> 'S' as in the paper.
	want := []byte{'N', 'D', 'S'}
	if !bytes.Equal(l.ids, want) {
		t.Fatalf("ids = %q, want %q", l.ids, want)
	}
}

func TestLayoutIDCollisionFallback(t *testing.T) {
	s := relation.MustSchema("t",
		relation.Column{Name: "salary", Type: relation.TypeInt, Width: 5},
		relation.Column{Name: "status", Type: relation.TypeString, Width: 5},
		relation.Column{Name: "state", Type: relation.TypeString, Width: 5},
	)
	l, err := newLayout(s, false)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[byte]bool{}
	for _, id := range l.ids {
		if seen[id] {
			t.Fatalf("duplicate identifier byte %q in %q", id, l.ids)
		}
		if id == PadByte {
			t.Fatal("identifier collides with the padding symbol")
		}
		seen[id] = true
	}
}

func TestLayoutRejectsWideValues(t *testing.T) {
	l, err := newLayout(empSchema(), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.makeWord(0, relation.String("ElevenChars")); err == nil {
		t.Fatal("over-wide value accepted")
	}
}

func TestLayoutParseErrors(t *testing.T) {
	l, err := newLayout(empSchema(), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.parseWord([]byte("short")); err == nil {
		t.Fatal("short word parsed")
	}
	bad := bytes.Repeat([]byte{'x'}, l.wordLenFor(0))
	bad[len(bad)-1] = 0x00 // unknown id
	if _, _, err := l.parseWord(bad); err == nil {
		t.Fatal("unknown identifier parsed")
	}
	// Garbage in an int column.
	w, err := l.makeWord(2, relation.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	w[0] = 'x'
	if _, _, err := l.parseWord(w); err == nil {
		t.Fatal("non-numeric int word parsed")
	}
}

func TestWordLenExported(t *testing.T) {
	n, err := WordLen(empSchema())
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Fatalf("WordLen = %d, want 11", n)
	}
}

func TestLayoutManyColumns(t *testing.T) {
	// 40 columns exercise the identifier-fallback path heavily.
	cols := make([]relation.Column, 40)
	for i := range cols {
		cols[i] = relation.Column{Name: string(rune('a')) + string(rune('a'+i%26)) + string(rune('a'+i/26)), Type: relation.TypeString, Width: 3}
	}
	s, err := relation.NewSchema("wide", cols...)
	if err != nil {
		t.Fatal(err)
	}
	l, err := newLayout(s, false)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[byte]bool{}
	for _, id := range l.ids {
		if seen[id] {
			t.Fatalf("duplicate id byte across 40 columns")
		}
		seen[id] = true
	}
}
