package client

import (
	"bytes"
	"encoding/binary"
	"log"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/authindex"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wire"
)

// frameCounter wraps the client side of a pipe and tallies outbound
// frames by command byte, reassembling the stream so buffering and write
// chunking cannot hide a frame.
type frameCounter struct {
	net.Conn
	mu     sync.Mutex
	buf    []byte
	counts map[byte]int
}

func (f *frameCounter) Write(p []byte) (int, error) {
	f.mu.Lock()
	f.buf = append(f.buf, p...)
	for {
		if len(f.buf) < 5 {
			break
		}
		n := binary.BigEndian.Uint32(f.buf[:4])
		if len(f.buf) < 4+int(n) {
			break
		}
		f.counts[f.buf[4]]++
		f.buf = f.buf[4+int(n):]
	}
	f.mu.Unlock()
	return f.Conn.Write(p)
}

func (f *frameCounter) count(cmd byte) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[cmd]
}

// startCountingPipe is startPipe with a frame counter on the client side.
func startCountingPipe(t *testing.T, store *storage.Store) (*Conn, *frameCounter) {
	t.Helper()
	srv := server.New(store, log.New(testWriter{t}, "", 0))
	cliSide, srvSide := net.Pipe()
	go srv.ServeConn(srvSide)
	fc := &frameCounter{Conn: cliSide, counts: make(map[byte]int)}
	conn := NewConn(fc)
	t.Cleanup(func() { conn.Close() })
	return conn, fc
}

// serverRoot rebuilds the authoritative root from the server's stored
// table, for comparing against the client's incrementally advanced pin.
func serverRoot(t *testing.T, st *storage.Store, name string) ([]byte, int) {
	t.Helper()
	full, err := st.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return authindex.Build(full).Root(), len(full.Tuples)
}

// TestInsertAdvancesRootIncrementally: with a pinned root, inserts must
// advance the pin from local leaf hashes and the placement ack — zero
// CmdFetchAll round trips — and the advanced root must equal the
// authoritative rebuild of the server table after every step.
func TestInsertAdvancesRootIncrementally(t *testing.T) {
	st := storage.NewMemory()
	conn, fc := startCountingPipe(t, st)
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := db.Insert(relation.Tuple{
			relation.String("extra"), relation.String("OPS"), relation.Int(int64(1000 + i)),
		}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		root, tuples := db.Root()
		wantRoot, wantTuples := serverRoot(t, st, "emp")
		if !bytes.Equal(root, wantRoot) || tuples != wantTuples {
			t.Fatalf("after insert %d: client root diverged from server rebuild (%d vs %d tuples)", i, tuples, wantTuples)
		}
	}
	if n := fc.count(wire.CmdFetchAll); n != 0 {
		t.Fatalf("incremental root advance still downloaded the table %d times", n)
	}
	// And the advanced pin actually verifies answers.
	got, err := db.Select(relation.Eq{Column: "dept", Value: relation.String("OPS")})
	if err != nil {
		t.Fatalf("verified select under advanced root: %v", err)
	}
	if got.Len() != 5 {
		t.Fatalf("select returned %d rows, want 5", got.Len())
	}
}

// TestSelectUsesOneRoundVerifiedQuery: a verified select must be a
// single CmdQueryVerified round trip — no separate CmdRoot/CmdProve.
func TestSelectUsesOneRoundVerifiedQuery(t *testing.T) {
	st := storage.NewMemory()
	conn, fc := startCountingPipe(t, st)
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Select(relation.Eq{Column: "dept", Value: relation.String("HR")}); err != nil {
		t.Fatal(err)
	}
	if n := fc.count(wire.CmdQueryVerified); n != 1 {
		t.Fatalf("verified select sent %d CmdQueryVerified frames, want 1", n)
	}
	for _, cmd := range []byte{wire.CmdRoot, wire.CmdProve, wire.CmdQuery} {
		if n := fc.count(cmd); n != 0 {
			t.Fatalf("verified select also sent legacy command %#x (%d times)", cmd, n)
		}
	}
}

// TestVerifiedQueryRequiresRoot: the explicit verified entry point must
// refuse to run unpinned rather than silently skip verification.
func TestVerifiedQueryRequiresRoot(t *testing.T) {
	conn := startPipe(t, storage.NewMemory())
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	db.PinRoot(nil, 0)
	if _, err := db.VerifiedQuery(relation.Eq{Column: "dept", Value: relation.String("HR")}); err == nil {
		t.Fatal("VerifiedQuery without a pinned root succeeded")
	}
}

// TestVerifiedQueryDetectsTampering: a server-side substitution of the
// ciphertext must be refused by the one-round path.
func TestVerifiedQueryDetectsTampering(t *testing.T) {
	st := storage.NewMemory()
	conn := startPipe(t, st)
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	// Flip the tuple IDs: the trapdoor search still matches (so there is
	// something to verify) while every leaf hash breaks.
	ct, err := st.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	for i := range ct.Tuples {
		ct.Tuples[i].ID[0] ^= 1
	}
	if err := st.Put("emp", ct); err != nil {
		t.Fatal(err)
	}
	_, err = db.VerifiedQuery(relation.Eq{Column: "dept", Value: relation.String("HR")})
	if err == nil || !strings.Contains(err.Error(), "verification failed") {
		t.Fatalf("tampered table not refused: %v", err)
	}
}

// TestPinRootInsertRebuildsFrontierVerified: after a restart-style
// PinRoot (anchor only), the first insert rebuilds the frontier from one
// fetch verified against the pin; later inserts are fetch-free.
func TestPinRootInsertRebuildsFrontierVerified(t *testing.T) {
	st := storage.NewMemory()
	scheme := newScheme(t)
	{
		conn := startPipe(t, st)
		db := NewDB(conn, scheme, "emp")
		if err := db.CreateTable(empTable()); err != nil {
			t.Fatal(err)
		}
	}
	// "Restart": fresh client, anchor only.
	conn, fc := startCountingPipe(t, st)
	db2 := NewDB(conn, scheme, "emp")
	{
		prev := NewDB(startPipe(t, st), scheme, "emp")
		if err := prev.RepinRoot(); err != nil {
			t.Fatal(err)
		}
		root, tuples := prev.Root()
		db2.PinRoot(root, tuples)
	}
	for i := 0; i < 3; i++ {
		if err := db2.Insert(relation.Tuple{
			relation.String("late"), relation.String("IT"), relation.Int(int64(i)),
		}); err != nil {
			t.Fatalf("insert %d after PinRoot: %v", i, err)
		}
	}
	if n := fc.count(wire.CmdFetchAll); n != 1 {
		t.Fatalf("frontier rebuild fetched the table %d times, want exactly 1", n)
	}
	root, tuples := db2.Root()
	wantRoot, wantTuples := serverRoot(t, st, "emp")
	if !bytes.Equal(root, wantRoot) || tuples != wantTuples {
		t.Fatal("root diverged after PinRoot + incremental inserts")
	}
}

// TestPinRootMismatchRefusesFrontierRebuild: the frontier rebuild is
// verified — a table that does not hash to the pinned root must not be
// silently adopted.
func TestPinRootMismatchRefusesFrontierRebuild(t *testing.T) {
	st := storage.NewMemory()
	conn := startPipe(t, st)
	scheme := newScheme(t)
	db := NewDB(conn, scheme, "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	bogus := make([]byte, authindex.HashSize)
	db.PinRoot(bogus, 3)
	err := db.Insert(relation.Tuple{
		relation.String("x"), relation.String("IT"), relation.Int(1),
	})
	if err == nil || !strings.Contains(err.Error(), "verification failed") {
		t.Fatalf("frontier rebuild against a mismatched pin not refused: %v", err)
	}
}

// TestInsertDetectsForeignWriter: an append from another client moves
// the table under the pin; the next insert must surface that instead of
// silently adopting leaves it cannot hash, and RepinRoot must recover.
func TestInsertDetectsForeignWriter(t *testing.T) {
	st := storage.NewMemory()
	conn := startPipe(t, st)
	scheme := newScheme(t)
	db := NewDB(conn, scheme, "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	// Foreign writer: raw inserts over a second connection.
	other := startPipe(t, st)
	foreign, err := NewDB(other, scheme, "emp").encryptTuples([]relation.Tuple{
		{relation.String("evil"), relation.String("OPS"), relation.Int(666)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Insert("emp", foreign.Tuples); err != nil {
		t.Fatal(err)
	}
	err = db.Insert(relation.Tuple{
		relation.String("mine"), relation.String("HR"), relation.Int(1),
	})
	if err == nil || !strings.Contains(err.Error(), "RepinRoot") {
		t.Fatalf("foreign write not detected on insert: %v", err)
	}
	if err := db.RepinRoot(); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(relation.Tuple{
		relation.String("mine"), relation.String("HR"), relation.Int(2),
	}); err != nil {
		t.Fatalf("insert after RepinRoot: %v", err)
	}
	if _, err := db.Select(relation.Eq{Column: "dept", Value: relation.String("HR")}); err != nil {
		t.Fatalf("verified select after recovery: %v", err)
	}
}

// TestInsertBatchForeignWriterNoSilentRepin: when the batch's acks
// cannot contiguously extend the frontier (a foreign writer moved the
// table), InsertBatch must keep the old pin and return an error naming
// RepinRoot — never silently adopt the server's current table as the
// new trust anchor.
func TestInsertBatchForeignWriterNoSilentRepin(t *testing.T) {
	st := storage.NewMemory()
	srv := server.New(st, nil)
	conn := startPipe(t, st)
	scheme := newScheme(t)
	db := NewDB(conn, scheme, "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	pinnedRoot, _ := db.Root()
	// Foreign writer sneaks in between the frontier check and the batch:
	// a dialer that appends a foreign tuple before handing out the first
	// worker connection.
	var once sync.Once
	dial := func() (*Conn, error) {
		var ferr error
		once.Do(func() {
			other := startPipe(t, st)
			foreign, err := NewDB(other, scheme, "emp").encryptTuples([]relation.Tuple{
				{relation.String("evil"), relation.String("OPS"), relation.Int(666)},
			})
			if err != nil {
				ferr = err
				return
			}
			ferr = other.Insert("emp", foreign.Tuples)
		})
		if ferr != nil {
			return nil, ferr
		}
		c, s := net.Pipe()
		go srv.ServeConn(s)
		return NewConn(c), nil
	}
	err := db.InsertBatch(dial, 2, 5, bigEmpTuples(20)...)
	if err == nil || !strings.Contains(err.Error(), "RepinRoot") {
		t.Fatalf("foreign writer during batch not surfaced: %v", err)
	}
	root, _ := db.Root()
	if !bytes.Equal(root, pinnedRoot) {
		t.Fatal("InsertBatch replaced the pinned root despite failing to advance it")
	}
	if err := db.RepinRoot(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Select(relation.Eq{Column: "dept", Value: relation.String("HR")}); err != nil {
		t.Fatalf("verified select after explicit RepinRoot: %v", err)
	}
}

// TestInsertBatchAdvancesRootWithoutFetch: the parallel batch path must
// reconstruct the server-side leaf order from the per-chunk placement
// acks — no full fetch — and end with a pin matching the rebuild.
func TestInsertBatchAdvancesRootWithoutFetch(t *testing.T) {
	st := storage.NewMemory()
	srv := server.New(st, nil)
	cliSide, srvSide := net.Pipe()
	go srv.ServeConn(srvSide)
	fc := &frameCounter{Conn: cliSide, counts: make(map[byte]int)}
	conn := NewConn(fc)
	t.Cleanup(func() { conn.Close() })

	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	// Every worker connection gets its own counting wrapper so no
	// CmdFetchAll can hide on a side channel. Dial runs on concurrent
	// workers, so the counter list is mutex-guarded.
	var countersMu sync.Mutex
	counters := []*frameCounter{fc}
	dialCounting := func() (*Conn, error) {
		c, s := net.Pipe()
		go srv.ServeConn(s)
		w := &frameCounter{Conn: c, counts: make(map[byte]int)}
		countersMu.Lock()
		counters = append(counters, w)
		countersMu.Unlock()
		return NewConn(w), nil
	}
	if err := db.InsertBatch(dialCounting, 3, 7, bigEmpTuples(40)...); err != nil {
		t.Fatal(err)
	}
	fetches := 0
	for _, c := range counters {
		fetches += c.count(wire.CmdFetchAll)
	}
	if fetches != 0 {
		t.Fatalf("batch insert with placement acks still fetched the table %d times", fetches)
	}
	root, tuples := db.Root()
	wantRoot, wantTuples := serverRoot(t, st, "emp")
	if !bytes.Equal(root, wantRoot) || tuples != wantTuples {
		t.Fatalf("batch-advanced root diverged from rebuild (%d vs %d tuples)", tuples, wantTuples)
	}
	if _, err := db.Select(relation.Eq{Column: "dept", Value: relation.String("HR")}); err != nil {
		t.Fatalf("verified select after batch: %v", err)
	}
}
