// Package ph defines the paper's central abstraction — Definition 1.1, the
// database privacy homomorphism (K, E, Eq, D) — as a Go interface, together
// with the ciphertext container types every scheme in this repository
// produces and the key-free server-side evaluator registry.
//
// A database PH consists of
//
//	E  : K × R → C        table encryption        (Scheme.EncryptTable)
//	Eq : K × {σ} → {ψ}    query encryption        (Scheme.EncryptQuery)
//	D  : K × C → R        decryption              (Scheme.DecryptTable / DecryptResult)
//
// with the homomorphic property E_k(σ_i(R)) = ψ_i(E_k(R)): the encrypted
// query ψ can be evaluated by the untrusted server on the encrypted table
// alone, yielding the encryption of the plaintext result (up to false
// positives, which D filters — §3 of the paper).
//
// The server side ψ is exposed as an Evaluator: a function that needs no
// secret keys, only the encrypted table's public metadata and the encrypted
// query token. Schemes register their evaluator under their scheme ID
// (database/sql-driver style), so a server binary can evaluate queries for
// any scheme it links in without ever holding keys.
package ph

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/relation"
)

// EncryptedTuple is the server-visible encryption of one tuple. Which fields
// are populated depends on the scheme:
//
//   - internal/core (the paper's construction): Words holds the SWP
//     cipherwords, one per attribute; Blob is empty.
//   - bucketization / hash-index / deterministic baselines: Blob holds the
//     strongly encrypted tuple, Words holds the weak index labels.
//
// Everything in this struct is, by definition, known to the adversary: it is
// exactly what Alex uploads to Eve.
type EncryptedTuple struct {
	// ID identifies the tuple ciphertext (random, carries no plaintext
	// information). It doubles as the SWP document identifier.
	ID []byte
	// Blob is an opaque strong ciphertext of the whole tuple, if the
	// scheme uses one.
	Blob []byte
	// Words holds the searchable cipherwords or weak index labels.
	Words [][]byte
}

// clone returns a deep copy.
func (t EncryptedTuple) clone() EncryptedTuple {
	out := EncryptedTuple{
		ID:    append([]byte(nil), t.ID...),
		Blob:  append([]byte(nil), t.Blob...),
		Words: make([][]byte, len(t.Words)),
	}
	for i, w := range t.Words {
		out.Words[i] = append([]byte(nil), w...)
	}
	return out
}

// EncryptedTable is E_k(R): the complete server-side representation of an
// encrypted relation.
type EncryptedTable struct {
	// SchemeID names the scheme whose evaluator applies (e.g. "swp-ph").
	SchemeID string
	// Meta carries the public scheme parameters the evaluator needs
	// (e.g. SWP word geometry). It must not depend on the plaintext.
	Meta []byte
	// Tuples are the encrypted tuples, in an order independent of the
	// plaintext insertion order (schemes shuffle on encryption).
	Tuples []EncryptedTuple
}

// Clone returns a deep copy of the encrypted table.
func (t *EncryptedTable) Clone() *EncryptedTable {
	out := &EncryptedTable{
		SchemeID: t.SchemeID,
		Meta:     append([]byte(nil), t.Meta...),
		Tuples:   make([]EncryptedTuple, len(t.Tuples)),
	}
	for i, tp := range t.Tuples {
		out.Tuples[i] = tp.clone()
	}
	return out
}

// EncryptedQuery is ψ = Eq_k(σ): the encrypted form of an exact select that
// the server can evaluate without keys.
type EncryptedQuery struct {
	// SchemeID names the scheme that produced the token.
	SchemeID string
	// Token is the scheme-specific search token (SWP trapdoor, bucket
	// label, ...).
	Token []byte
}

// Result is the server's answer to an encrypted query: the sub-multiset of
// encrypted tuples that matched. Positions (indices into the encrypted
// table) are included because, by the structure of any database PH, the
// adversary observes which ciphertext tuples each query returns — this
// observable is precisely what the paper's §2 attacks exploit.
type Result struct {
	// Positions are indices into EncryptedTable.Tuples, ascending.
	Positions []int
	// Tuples are the matching encrypted tuples, aligned with Positions.
	Tuples []EncryptedTuple
}

// Scheme is the client-side (key-holding) half of a database PH over a fixed
// relation schema.
type Scheme interface {
	// Name returns the scheme ID used for evaluator dispatch.
	Name() string
	// Schema returns the plaintext relation schema the instance encrypts.
	Schema() *relation.Schema
	// EncryptTable is E: it encrypts a relation tuple-by-tuple.
	EncryptTable(t *relation.Table) (*EncryptedTable, error)
	// EncryptQuery is Eq: it encrypts an exact select.
	EncryptQuery(q relation.Eq) (*EncryptedQuery, error)
	// DecryptTable is D on whole tables.
	DecryptTable(ct *EncryptedTable) (*relation.Table, error)
	// DecryptResult decrypts a server result for the (plaintext) query q
	// and filters false positives by re-evaluating q, as §3 prescribes.
	DecryptResult(q relation.Eq, r *Result) (*relation.Table, error)
}

// Evaluator is ψ's implementation: the key-free server-side computation that
// maps an encrypted table and an encrypted query to the matching tuples.
type Evaluator func(et *EncryptedTable, q *EncryptedQuery) (*Result, error)

// Narrower is the restricted form of ψ the conjunctive planner uses: it
// evaluates the query only at the candidate positions (ascending indices
// into et.Tuples) and returns the ascending subsequence that matched.
// A nil candidates slice means the WHOLE table — a positions-only full
// scan with no candidate list materialised (an empty, non-nil slice
// still means no candidates). Like Evaluator it needs no keys. Schemes
// register one when they can test a single tuple cheaper than scanning
// the table; schemes without one still work through ApplyOn's full-scan
// fallback.
type Narrower func(et *EncryptedTable, q *EncryptedQuery, candidates []int) ([]int, error)

var (
	evalMu     sync.RWMutex
	evaluators = make(map[string]Evaluator)
	narrowers  = make(map[string]Narrower)
)

// RegisterEvaluator installs the evaluator for a scheme ID. It is intended
// to be called from scheme package init functions and panics on duplicate
// registration, mirroring database/sql.Register.
func RegisterEvaluator(id string, ev Evaluator) {
	evalMu.Lock()
	defer evalMu.Unlock()
	if ev == nil {
		panic("ph: RegisterEvaluator with nil evaluator")
	}
	if _, dup := evaluators[id]; dup {
		panic("ph: RegisterEvaluator called twice for scheme " + id)
	}
	evaluators[id] = ev
}

// Evaluators returns the sorted IDs of all registered schemes.
func Evaluators() []string {
	evalMu.RLock()
	defer evalMu.RUnlock()
	ids := make([]string, 0, len(evaluators))
	for id := range evaluators {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RegisterNarrower installs the candidate-restricted evaluator for a
// scheme ID. Like RegisterEvaluator it is called from scheme package init
// functions and panics on duplicate registration.
func RegisterNarrower(id string, nr Narrower) {
	evalMu.Lock()
	defer evalMu.Unlock()
	if nr == nil {
		panic("ph: RegisterNarrower with nil narrower")
	}
	if _, dup := narrowers[id]; dup {
		panic("ph: RegisterNarrower called twice for scheme " + id)
	}
	narrowers[id] = nr
}

// ApplyOn narrows candidates by q: it returns the ascending subsequence
// of candidates whose tuples match. Nil candidates request a
// positions-only full scan of the whole table (see Narrower). Schemes
// with a registered Narrower pay O(len(candidates)) match tests; for
// the rest ApplyOn falls back to a full Apply and intersects the
// positions, so every scheme that can serve single selects can serve
// pushed-down conjunctions.
func ApplyOn(et *EncryptedTable, q *EncryptedQuery, candidates []int) ([]int, error) {
	if et.SchemeID != q.SchemeID {
		return nil, fmt.Errorf("ph: query for scheme %q applied to table of scheme %q", q.SchemeID, et.SchemeID)
	}
	evalMu.RLock()
	nr := narrowers[et.SchemeID]
	evalMu.RUnlock()
	if nr != nil {
		return nr(et, q, candidates)
	}
	res, err := Apply(et, q)
	if err != nil {
		return nil, err
	}
	if candidates == nil {
		return res.Positions, nil
	}
	return IntersectPositions(candidates, res.Positions), nil
}

// IntersectPositions returns the intersection of two ascending position
// lists, ascending. It is the planner's merge primitive.
func IntersectPositions(a, b []int) []int {
	out := make([]int, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Apply evaluates ψ: it dispatches to the registered evaluator for the
// table's scheme. This is the only query path the server has — it never
// holds keys.
func Apply(et *EncryptedTable, q *EncryptedQuery) (*Result, error) {
	if et.SchemeID != q.SchemeID {
		return nil, fmt.Errorf("ph: query for scheme %q applied to table of scheme %q", q.SchemeID, et.SchemeID)
	}
	evalMu.RLock()
	ev, ok := evaluators[et.SchemeID]
	evalMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ph: no evaluator registered for scheme %q (forgotten import?)", et.SchemeID)
	}
	return ev(et, q)
}

// SelectPositions is a helper for evaluators: it builds a Result from the
// encrypted table and the sorted list of matching positions.
func SelectPositions(et *EncryptedTable, positions []int) *Result {
	r := &Result{Positions: positions, Tuples: make([]EncryptedTuple, len(positions))}
	for i, p := range positions {
		r.Tuples[i] = et.Tuples[p].clone()
	}
	return r
}
