package crypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPRPRoundTrip(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 11, 16, 32, 64} {
		p, err := NewPRP(testKey(1), n)
		if err != nil {
			t.Fatalf("NewPRP(%d): %v", n, err)
		}
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(i * 7)
		}
		ct, err := p.Encrypt(src)
		if err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		if len(ct) != n {
			t.Fatalf("ciphertext length %d, want %d (length-preserving)", len(ct), n)
		}
		pt, err := p.Decrypt(ct)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if !bytes.Equal(pt, src) {
			t.Fatalf("n=%d: round trip failed: %x -> %x -> %x", n, src, ct, pt)
		}
	}
}

func TestPRPRoundTripProperty(t *testing.T) {
	p, err := NewPRP(testKey(2), 12)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw [12]byte) bool {
		ct, err := p.Encrypt(raw[:])
		if err != nil {
			return false
		}
		pt, err := p.Decrypt(ct)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, raw[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPRPIsPermutationOnSmallDomain(t *testing.T) {
	// Over the full 2-byte domain the map must be a bijection.
	p, err := NewPRP(testKey(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[2]byte]bool, 65536)
	for x := 0; x < 65536; x++ {
		src := []byte{byte(x >> 8), byte(x)}
		ct, err := p.Encrypt(src)
		if err != nil {
			t.Fatal(err)
		}
		var k [2]byte
		copy(k[:], ct)
		if seen[k] {
			t.Fatalf("PRP not injective: collision at output %x", ct)
		}
		seen[k] = true
	}
}

func TestPRPDeterministic(t *testing.T) {
	p, _ := NewPRP(testKey(4), 8)
	src := []byte("abcdefgh")
	a, _ := p.Encrypt(src)
	b, _ := p.Encrypt(src)
	if !bytes.Equal(a, b) {
		t.Fatal("PRP not deterministic")
	}
}

func TestPRPKeySeparation(t *testing.T) {
	p1, _ := NewPRP(testKey(5), 8)
	p2, _ := NewPRP(testKey(6), 8)
	src := []byte("abcdefgh")
	a, _ := p1.Encrypt(src)
	b, _ := p2.Encrypt(src)
	if bytes.Equal(a, b) {
		t.Fatal("PRP identical under different keys")
	}
}

func TestPRPRejectsBadLengths(t *testing.T) {
	if _, err := NewPRP(testKey(7), 1); err == nil {
		t.Fatal("NewPRP accepted length 1")
	}
	p, _ := NewPRP(testKey(7), 8)
	if _, err := p.Encrypt(make([]byte, 7)); err == nil {
		t.Fatal("Encrypt accepted wrong length")
	}
	if _, err := p.Decrypt(make([]byte, 9)); err == nil {
		t.Fatal("Decrypt accepted wrong length")
	}
}

func TestPRPAvalanche(t *testing.T) {
	// Flipping one input bit should change roughly half the output; we
	// only assert it changes more than one byte (sanity, not a proof).
	p, _ := NewPRP(testKey(8), 16)
	a := make([]byte, 16)
	b := make([]byte, 16)
	b[0] ^= 1
	ca, _ := p.Encrypt(a)
	cb, _ := p.Encrypt(b)
	diff := 0
	for i := range ca {
		if ca[i] != cb[i] {
			diff++
		}
	}
	if diff < 4 {
		t.Fatalf("PRP avalanche too weak: only %d/16 bytes differ", diff)
	}
}
