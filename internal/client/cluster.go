package client

import (
	"bytes"
	"fmt"

	"repro/internal/authindex"
	"repro/internal/ph"
	"repro/internal/query"
	"repro/internal/relation"
)

// Sharded serving: a DB can replace its single connection with a
// Cluster — a scatter-gather tier that hash-partitions tuples over N
// independent phserver backends (internal/shard implements it, both as
// an in-process coordinator over per-shard connection pools and as a
// thin client of a remote `phserver -coordinator`). Nothing in the
// trust model changes: every shard is as untrusted as the single server
// was, the coordinator is just routing, and the client's anchor becomes
// a *vector* of per-shard Merkle roots — the root-of-roots: trusting
// the vector is trusting every shard's tree, each sub-answer verifies
// against its own entry, and one mutated tuple on one shard fails that
// entry (and with it the whole read) instead of poisoning the merge.

// VerifyCheck is the per-shard verification callback a cluster runs
// *inside* its read routing, so an in-process coordinator can treat a
// Byzantine answer exactly like a dead replica: quarantine the
// follower that produced it and retry the shard's read elsewhere. It
// is an optimisation hook, not the trust boundary — the DB re-verifies
// every sub-answer against its pinned vector after the scatter returns,
// so a cluster that skips the callback can hide nothing.
type VerifyCheck func(shard int, vr *authindex.VerifiedResult) error

// Cluster is the client-facing surface of a sharded serving tier. All
// reads scatter to every shard (search tokens are deliberately not
// routable — routing one would leak which partition a value hashes to
// beyond what result positions already reveal); answers come back one
// per shard, in shard order, for the caller to merge and verify.
// Implementations must be safe for the DB's single-threaded use;
// internal/shard's coordinator is additionally safe for concurrent use.
type Cluster interface {
	// NumShards returns the partition map's shard count.
	NumShards() int
	// MapVersion returns the partition map's version stamp.
	MapVersion() uint64
	// Split partitions tuples with the cluster's deterministic
	// content-hash map; the result always has NumShards() entries. The
	// client uses it to know which leaves advance which shard's pinned
	// frontier — it must agree with how Store/Insert place tuples.
	Split(tuples []ph.EncryptedTuple) [][]ph.EncryptedTuple
	// Store partitions the table and installs each part on its shard.
	Store(name string, t *ph.EncryptedTable) error
	// Insert partitions the tuples and appends each part through its
	// shard's group-commit write path, returning one placement ack per
	// shard (zero-valued, Count 0, for shards that received nothing).
	Insert(name string, tuples []ph.EncryptedTuple) ([]InsertAck, error)
	// Query scatters one query; answers are per shard, in shard order.
	Query(name string, q *ph.EncryptedQuery) ([]*ph.Result, error)
	// QueryBatch scatters a query batch; answers are [shard][query].
	QueryBatch(name string, qs []*ph.EncryptedQuery) ([][]*ph.Result, error)
	// QueryVerified scatters one verified query; check, when non-nil,
	// runs inside each shard's read routing (see VerifyCheck).
	QueryVerified(name string, q *ph.EncryptedQuery, check VerifyCheck) ([]*authindex.VerifiedResult, error)
	// QueryConj scatters one conjunction to every shard's
	// selectivity-ordered planner. A conjunction distributes over a
	// disjoint partition: the answer is the union of the per-shard
	// intersections.
	QueryConj(name string, qs []*ph.EncryptedQuery, verified bool, check VerifyCheck) ([]*query.Response, error)
	// ExplainConj plans the conjunction on every shard (each against
	// its own sketch) and returns the merged summary.
	ExplainConj(name string, qs []*ph.EncryptedQuery) (*query.PlanInfo, error)
	// Fetch downloads every shard's partition, in shard order.
	Fetch(name string) ([]*ph.EncryptedTable, error)
	// Drop removes the table from every shard.
	Drop(name string) error
}

// shardPin is one entry of the pinned root vector: shard i's
// authenticated-index anchor, and (when available) the Merkle frontier
// behind it so the client's own inserts advance it locally.
type shardPin struct {
	root     []byte
	tuples   int
	version  uint64
	frontier *authindex.Frontier
}

// NewShardedDB binds a scheme to a sharded serving tier and a remote
// table name. The DB behaves exactly like a single-server one — same
// queries, same verification discipline — with reads scattered to every
// shard and the trust anchor kept per shard.
func NewShardedDB(cl Cluster, scheme ph.Scheme, table string) *DB {
	return &DB{cluster: cl, scheme: scheme, table: table}
}

// Cluster returns the sharded serving tier behind the DB (nil for a
// single-server DB).
func (db *DB) Cluster() Cluster { return db.cluster }

// pinned reports whether verification is enabled: a single pinned root,
// or (sharded) a pinned root vector.
func (db *DB) pinned() bool { return db.root != nil || len(db.pins) > 0 }

// ShardRoots returns the pinned per-shard roots and tuple counts — the
// root-of-roots vector an application persists across restarts (nil if
// none is pinned). Reinstall it with PinShardRoots.
func (db *DB) ShardRoots() (roots [][]byte, tuples []int) {
	for _, p := range db.pins {
		roots = append(roots, append([]byte(nil), p.root...))
		tuples = append(tuples, p.tuples)
	}
	return roots, tuples
}

// PinShardRoots installs a previously persisted root vector (one root
// and leaf count per shard). Only the anchors are installed: the
// frontiers behind them are rebuilt lazily — verified against these
// roots — by the first insert that needs them. Passing nil roots
// disables verification.
func (db *DB) PinShardRoots(roots [][]byte, tuples []int) error {
	if db.cluster == nil {
		return fmt.Errorf("client: PinShardRoots on a non-sharded DB (use PinRoot)")
	}
	if roots == nil {
		db.pins = nil
		return nil
	}
	if len(roots) != db.cluster.NumShards() || len(tuples) != len(roots) {
		return fmt.Errorf("client: pinning %d roots / %d counts for %d shards", len(roots), len(tuples), db.cluster.NumShards())
	}
	pins := make([]shardPin, len(roots))
	for i := range roots {
		pins[i] = shardPin{root: append([]byte(nil), roots[i]...), tuples: tuples[i]}
	}
	db.pins = pins
	return nil
}

// checkShard is the VerifyCheck bound to the DB's pinned vector.
func (db *DB) checkShard(shard int, vr *authindex.VerifiedResult) error {
	if shard < 0 || shard >= len(db.pins) {
		return fmt.Errorf("client: verified answer from shard %d, pinned vector covers %d", shard, len(db.pins))
	}
	if err := checkVerifiedAgainst(db.pins[shard].root, db.pins[shard].tuples, vr); err != nil {
		return fmt.Errorf("shard %d: %w", shard, err)
	}
	return nil
}

// createTableSharded uploads the encrypted table through the cluster
// and pins one root per shard, computed locally from the same
// deterministic partition the cluster stores by.
func (db *DB) createTableSharded(ct *ph.EncryptedTable) error {
	if err := db.cluster.Store(db.table, ct); err != nil {
		return err
	}
	parts := db.cluster.Split(ct.Tuples)
	pins := make([]shardPin, len(parts))
	for i, part := range parts {
		f := authindex.NewFrontier()
		for _, tp := range part {
			f.AppendTuple(tp)
		}
		pins[i] = shardPin{root: f.Root(), tuples: f.Count(), frontier: f}
	}
	db.pins = pins
	db.root, db.rootTuples, db.rootVersion, db.frontier = nil, 0, 0, nil
	return nil
}

// ensureShardFrontiers makes the frontier behind every pinned shard
// root available, rebuilding missing ones from a fetch that is verified
// against the pinned vector (the sharded ensureFrontier).
func (db *DB) ensureShardFrontiers() error {
	missing := false
	for i := range db.pins {
		if db.pins[i].frontier == nil {
			missing = true
			break
		}
	}
	if !missing {
		return nil
	}
	parts, err := db.cluster.Fetch(db.table)
	if err != nil {
		return err
	}
	if len(parts) != len(db.pins) {
		return fmt.Errorf("client: fetched %d shard partitions, pinned vector covers %d", len(parts), len(db.pins))
	}
	fs := make([]*authindex.Frontier, len(parts))
	for i, part := range parts {
		f := authindex.FrontierOf(part)
		if !bytes.Equal(f.Root(), db.pins[i].root) || f.Count() != db.pins[i].tuples {
			return fmt.Errorf("client: shard %d does not match its pinned root (%d tuples fetched, %d pinned) — verification failed; RepinRoot only if the mismatch is expected", i, f.Count(), db.pins[i].tuples)
		}
		fs[i] = f
	}
	for i := range db.pins {
		db.pins[i].frontier = fs[i]
	}
	return nil
}

// repinShardRoots re-pins the whole root vector from a full fetch,
// trusting the fetched ciphertext exactly as RepinRoot does on a single
// server — the explicit recovery path after acknowledged external
// writes.
func (db *DB) repinShardRoots() error {
	parts, err := db.cluster.Fetch(db.table)
	if err != nil {
		return err
	}
	pins := make([]shardPin, len(parts))
	for i, part := range parts {
		f := authindex.FrontierOf(part)
		pins[i] = shardPin{root: f.Root(), tuples: f.Count(), frontier: f}
	}
	db.pins = pins
	return nil
}

// insertSharded appends encrypted tuples through the cluster. With a
// pinned vector, each shard's placement ack advances that shard's
// frontier from the client's own leaf hashes — the per-shard analogue
// of advanceRoot, validated across all shards before any pin moves so a
// partial mismatch never leaves the vector half-advanced.
func (db *DB) insertSharded(tuples []ph.EncryptedTuple) error {
	if len(db.pins) == 0 {
		_, err := db.cluster.Insert(db.table, tuples)
		return err
	}
	if err := db.ensureShardFrontiers(); err != nil {
		return err
	}
	acks, err := db.cluster.Insert(db.table, tuples)
	if err != nil {
		return err
	}
	parts := db.cluster.Split(tuples)
	if len(acks) != len(db.pins) || len(parts) != len(db.pins) {
		return fmt.Errorf("client: insert acked by %d shards over %d parts, pinned vector covers %d — call RepinRoot to resync", len(acks), len(parts), len(db.pins))
	}
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		if acks[i].Count != len(part) {
			return fmt.Errorf("client: shard %d acked %d tuples for a %d-tuple part — call RepinRoot to resync", i, acks[i].Count, len(part))
		}
		if acks[i].Base != db.pins[i].frontier.Count() {
			return fmt.Errorf("client: shard %d insert landed at tuple %d but its pinned root covers %d — concurrent external writes; call RepinRoot to resync", i, acks[i].Base, db.pins[i].frontier.Count())
		}
	}
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		for _, tp := range part {
			db.pins[i].frontier.AppendTuple(tp)
		}
		db.pins[i].root = db.pins[i].frontier.Root()
		db.pins[i].tuples = db.pins[i].frontier.Count()
		db.pins[i].version = acks[i].Version
	}
	return nil
}

// union appends every tuple of src to dst.
func union(dst, src *relation.Table) error {
	for _, tp := range src.Tuples() {
		if err := dst.Insert(tp); err != nil {
			return err
		}
	}
	return nil
}

// selectSharded serves one unverified select: scatter, decrypt each
// shard's matches, union.
func (db *DB) selectSharded(q relation.Eq, eq *ph.EncryptedQuery) (*relation.Table, error) {
	results, err := db.cluster.Query(db.table, eq)
	if err != nil {
		return nil, err
	}
	out := relation.NewTable(db.scheme.Schema())
	for i, res := range results {
		if res == nil {
			return nil, fmt.Errorf("client: shard %d answered no result", i)
		}
		t, err := db.scheme.DecryptResult(q, res)
		if err != nil {
			return nil, err
		}
		if err := union(out, t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// verifiedQuerySharded serves one verified select: scatter, verify each
// shard's sub-answer against its entry in the pinned vector, decrypt,
// union. Verification here is authoritative regardless of what the
// cluster ran through the VerifyCheck callback.
func (db *DB) verifiedQuerySharded(q relation.Eq, eq *ph.EncryptedQuery) (*relation.Table, error) {
	if len(db.pins) == 0 {
		return nil, fmt.Errorf("client: sharded verified read without a pinned root vector (CreateTable or PinShardRoots first)")
	}
	vrs, err := db.cluster.QueryVerified(db.table, eq, db.checkShard)
	if err != nil {
		return nil, err
	}
	if len(vrs) != len(db.pins) {
		return nil, fmt.Errorf("client: verified scatter answered by %d shards, pinned vector covers %d", len(vrs), len(db.pins))
	}
	out := relation.NewTable(db.scheme.Schema())
	for i, vr := range vrs {
		if vr == nil {
			return nil, fmt.Errorf("client: shard %d answered no verified result", i)
		}
		if err := db.checkShard(i, vr); err != nil {
			return nil, fmt.Errorf("client: %w", err)
		}
		db.pins[i].version = vr.Version
		t, err := db.scheme.DecryptResult(q, vr.Result)
		if err != nil {
			return nil, err
		}
		if err := union(out, t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// selectConjSharded serves one conjunction: every shard's planner runs
// it against that shard's own sketch (conjunct order adapts to
// per-shard skew), and because the partition is disjoint the answer is
// the union of the per-shard intersections — verified per shard when
// the vector is pinned.
func (db *DB) selectConjSharded(eqs []relation.Eq, qs []*ph.EncryptedQuery) (*relation.Table, error) {
	verified := len(db.pins) > 0
	var check VerifyCheck
	if verified {
		check = db.checkShard
	}
	resps, err := db.cluster.QueryConj(db.table, qs, verified, check)
	if err != nil {
		return nil, err
	}
	if n := db.cluster.NumShards(); len(resps) != n {
		return nil, fmt.Errorf("client: conjunctive scatter answered by %d shards, map has %d", len(resps), n)
	}
	out := relation.NewTable(db.scheme.Schema())
	for i, resp := range resps {
		if resp == nil {
			return nil, fmt.Errorf("client: shard %d answered no conjunctive response", i)
		}
		r := resp.Result
		if verified {
			vr := resp.Verified
			if vr == nil {
				return nil, fmt.Errorf("client: shard %d answered a verified conjunction without proofs", i)
			}
			if err := db.checkShard(i, vr); err != nil {
				return nil, fmt.Errorf("client: %w", err)
			}
			db.pins[i].version = vr.Version
			r = vr.Result
		}
		if r == nil {
			return nil, fmt.Errorf("client: shard %d answered a conjunction without a result", i)
		}
		t, err := db.decryptConj(eqs, r)
		if err != nil {
			return nil, err
		}
		if err := union(out, t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// selectAllSharded downloads every shard's partition and decrypts the
// concatenation.
func (db *DB) selectAllSharded() (*relation.Table, error) {
	parts, err := db.cluster.Fetch(db.table)
	if err != nil {
		return nil, err
	}
	out := relation.NewTable(db.scheme.Schema())
	for _, part := range parts {
		t, err := db.scheme.DecryptTable(part)
		if err != nil {
			return nil, err
		}
		if err := union(out, t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// queryBatchSharded scatters a query batch and merges each query's
// per-shard answers into one result. Merged positions are synthetic
// (renumbered in merge order): the partition's real coordinates are
// (shard, offset) pairs, which only the per-shard framing preserves —
// decryption never reads positions, verified reads never take this
// path.
func (db *DB) queryBatchSharded(eqs []*ph.EncryptedQuery) ([]*ph.Result, error) {
	perShard, err := db.cluster.QueryBatch(db.table, eqs)
	if err != nil {
		return nil, err
	}
	out := make([]*ph.Result, len(eqs))
	for j := range eqs {
		merged := &ph.Result{}
		for i, rs := range perShard {
			if rs == nil || len(rs) != len(eqs) || rs[j] == nil {
				return nil, fmt.Errorf("client: shard %d answered %d batch results for %d queries", i, len(rs), len(eqs))
			}
			for _, tp := range rs[j].Tuples {
				merged.Positions = append(merged.Positions, len(merged.Positions))
				merged.Tuples = append(merged.Tuples, tp)
			}
		}
		out[j] = merged
	}
	return out, nil
}
