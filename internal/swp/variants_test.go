package swp

import (
	"bytes"
	"testing"
)

// The variant tests follow the narrative of the SWP paper: each scheme
// fixes its predecessor's documented flaw, and the final scheme (swp.go)
// is the only one that both hides queries and decrypts.

var variantParams = Params{WordLen: 8, ChecksumLen: 2}

func variantWords() [][]byte {
	return [][]byte{
		[]byte("aaaaaaaa"), []byte("secret00"), []byte("bbbbbbbb"),
	}
}

func TestBasicSchemeSearchWorks(t *testing.T) {
	s, err := NewBasic(testKey(1), variantParams)
	if err != nil {
		t.Fatal(err)
	}
	cws, err := s.EncryptDocument([]byte("doc"), variantWords())
	if err != nil {
		t.Fatal(err)
	}
	td, err := s.NewTrapdoor([]byte("secret00"))
	if err != nil {
		t.Fatal(err)
	}
	if !BasicMatch(s.Params(), cws[1], td.Word, td.FKey) {
		t.Fatal("basic search missed the word")
	}
	if BasicMatch(s.Params(), cws[0], td.Word, td.FKey) {
		t.Fatal("basic search matched a different word (beyond FP odds)")
	}
}

func TestBasicSchemeLeaksQueryPlaintext(t *testing.T) {
	// Scheme I's first documented flaw: the trapdoor *is* the plaintext.
	s, err := NewBasic(testKey(1), variantParams)
	if err != nil {
		t.Fatal(err)
	}
	td, err := s.NewTrapdoor([]byte("secret00"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(td.Word, []byte("secret00")) {
		t.Fatal("scheme I trapdoor should carry the plaintext word — that is its documented flaw")
	}
}

func TestBasicSchemeDictionaryAttack(t *testing.T) {
	// Scheme I's second flaw: one search reveals the global key, after
	// which the server can dictionary-test ANY candidate word at any
	// position of any document.
	s, err := NewBasic(testKey(2), variantParams)
	if err != nil {
		t.Fatal(err)
	}
	cws, err := s.EncryptDocument([]byte("doc"), variantWords())
	if err != nil {
		t.Fatal(err)
	}
	// The server observed one innocent query...
	td, err := s.NewTrapdoor([]byte("aaaaaaaa"))
	if err != nil {
		t.Fatal(err)
	}
	// ...and now confirms a word that was never queried.
	if !BasicMatch(s.Params(), cws[1], []byte("secret00"), td.FKey) {
		t.Fatal("dictionary attack failed — scheme I should be this broken")
	}
}

func TestControlledSchemeStopsDictionaryAttack(t *testing.T) {
	s, err := NewControlled(testKey(3), variantParams)
	if err != nil {
		t.Fatal(err)
	}
	cws, err := s.EncryptDocument([]byte("doc"), variantWords())
	if err != nil {
		t.Fatal(err)
	}
	td, err := s.NewTrapdoor([]byte("aaaaaaaa"))
	if err != nil {
		t.Fatal(err)
	}
	// The authorised search works...
	if !ControlledMatch(s.Params(), cws[0], td) {
		t.Fatal("controlled search missed its word")
	}
	// ...but the revealed key is useless for any other word: the scheme
	// II fix.
	if BasicMatch(s.Params(), cws[1], []byte("secret00"), td.WordKey) {
		t.Fatal("scheme II key authorised a dictionary test for another word")
	}
}

func TestControlledSchemeStillLeaksQuery(t *testing.T) {
	s, err := NewControlled(testKey(3), variantParams)
	if err != nil {
		t.Fatal(err)
	}
	td, err := s.NewTrapdoor([]byte("secret00"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(td.Word, []byte("secret00")) {
		t.Fatal("scheme II trapdoor should still carry the plaintext — its residual flaw")
	}
}

func TestHiddenSchemeHidesQuery(t *testing.T) {
	s, err := NewHidden(testKey(4), variantParams)
	if err != nil {
		t.Fatal(err)
	}
	cws, err := s.EncryptDocument([]byte("doc"), variantWords())
	if err != nil {
		t.Fatal(err)
	}
	td, err := s.NewTrapdoor([]byte("secret00"))
	if err != nil {
		t.Fatal(err)
	}
	// The search works...
	if !HiddenMatch(s.Params(), cws[1], td) {
		t.Fatal("hidden search missed its word")
	}
	if HiddenMatch(s.Params(), cws[0], td) {
		t.Fatal("hidden search matched a different word")
	}
	// ...and the token no longer contains the plaintext anywhere.
	if bytes.Contains(td.X, []byte("secret")) || bytes.Contains(td.K, []byte("secret")) {
		t.Fatal("scheme III trapdoor leaks plaintext")
	}
}

func TestHiddenSchemeCannotDecrypt(t *testing.T) {
	// Scheme III's flaw: the client recovers only the stream-masked part
	// of X — never the full pre-encryption, so never the word. This is
	// precisely why the final scheme splits X into ⟨L, R⟩.
	s, err := NewHidden(testKey(5), variantParams)
	if err != nil {
		t.Fatal(err)
	}
	word := []byte("secret00")
	cws, err := s.EncryptDocument([]byte("doc"), [][]byte{word})
	if err != nil {
		t.Fatal(err)
	}
	left, err := s.RecoverStreamPart([]byte("doc"), 0, cws[0])
	if err != nil {
		t.Fatal(err)
	}
	nm := variantParams.WordLen - variantParams.ChecksumLen
	if len(left) != nm {
		t.Fatalf("recovered %d bytes, expected the %d unmasked ones", len(left), nm)
	}
	// Sanity: what it recovered really is the left part of X…
	x, err := s.pre.Encrypt(word)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(left, x[:nm]) {
		t.Fatal("recovered bytes are not the left part of the pre-encryption")
	}
	// …and the left part alone does not invert the PRP: the full X is
	// needed, whose right part stays masked by a key derived from X
	// itself.
	if bytes.Contains(left, []byte("secret")) {
		t.Fatal("partial pre-encryption leaked plaintext")
	}
}

func TestFinalSchemeClosesTheLoop(t *testing.T) {
	// The final scheme both hides queries (like III) and decrypts (unlike
	// III) — the property the ICDE'06 construction depends on.
	s, err := New(testKey(6), variantParams)
	if err != nil {
		t.Fatal(err)
	}
	word := []byte("secret00")
	cws, err := s.EncryptDocument([]byte("doc"), [][]byte{word})
	if err != nil {
		t.Fatal(err)
	}
	td, err := s.NewTrapdoor(word)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(td.X, []byte("secret")) {
		t.Fatal("final trapdoor leaks plaintext")
	}
	if !Match(s.Params(), cws[0], td) {
		t.Fatal("final search missed its word")
	}
	got, err := s.DecryptDocument([]byte("doc"), cws)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], word) {
		t.Fatal("final scheme failed to decrypt")
	}
}

func TestVariantParamsValidated(t *testing.T) {
	bad := Params{WordLen: 4, ChecksumLen: 4}
	if _, err := NewBasic(testKey(7), bad); err == nil {
		t.Fatal("basic accepted invalid params")
	}
	if _, err := NewControlled(testKey(7), bad); err == nil {
		t.Fatal("controlled accepted invalid params")
	}
	if _, err := NewHidden(testKey(7), bad); err == nil {
		t.Fatal("hidden accepted invalid params")
	}
}

func TestVariantWordLengthChecks(t *testing.T) {
	b, _ := NewBasic(testKey(8), variantParams)
	if _, err := b.EncryptDocument([]byte("d"), [][]byte{[]byte("short")}); err == nil {
		t.Fatal("basic accepted short word")
	}
	if _, err := b.NewTrapdoor([]byte("x")); err == nil {
		t.Fatal("basic trapdoor accepted short word")
	}
	c, _ := NewControlled(testKey(8), variantParams)
	if _, err := c.EncryptDocument([]byte("d"), [][]byte{[]byte("toolongtoolong")}); err == nil {
		t.Fatal("controlled accepted long word")
	}
	h, _ := NewHidden(testKey(8), variantParams)
	if _, err := h.NewTrapdoor([]byte("x")); err == nil {
		t.Fatal("hidden trapdoor accepted short word")
	}
	if _, err := h.RecoverStreamPart([]byte("d"), 0, []byte("xx")); err == nil {
		t.Fatal("hidden recover accepted short cipherword")
	}
}
