package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DriverName attributes findings produced by the framework itself
// (malformed or unused suppressions) rather than by an analyzer.
const DriverName = "phlint"

// ignorePrefix introduces a suppression comment. The full shape is
// //phlint:ignore <analyzer> <reason...> — see the package doc.
const ignorePrefix = "phlint:ignore"

// A Target is one package as the driver consumes it: parsed syntax plus
// type information. The load and analysistest packages both produce it.
type Target struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// suppression is one parsed //phlint:ignore comment.
type suppression struct {
	analyzer string
	reason   string
	file     string
	// lines are the source lines the suppression covers: its own line,
	// and — when the comment stands alone — the next line.
	lines [2]int
	pos   token.Pos
	used  bool
}

// Run executes every applicable analyzer over the target and returns
// the findings that survive suppression filtering, in file/line order.
// Findings about the suppression mechanism itself (missing reason,
// unused ignore) are attributed to DriverName.
func Run(t *Target, analyzers []*Analyzer) ([]Finding, error) {
	sups, supFindings := collectSuppressions(t)

	var findings []Finding
	for _, a := range analyzers {
		if !a.AppliesTo(t.Path) {
			continue
		}
		var diags []Diagnostic
		pass := &Pass{
			Analyzer: a,
			Fset:     t.Fset,
			Files:    t.Files,
			Pkg:      t.Pkg,
			Info:     t.Info,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, t.Path, err)
		}
		for _, d := range diags {
			pos := t.Fset.Position(d.Pos)
			if suppressed(sups, a.Name, pos) {
				continue
			}
			findings = append(findings, Finding{Analyzer: a.Name, Position: pos, Message: d.Message})
		}
	}

	// A suppression that silenced nothing is a stale exception: either
	// the underlying code was fixed (delete the comment) or the comment
	// is in the wrong place (it is silently not protecting anything).
	for _, s := range sups {
		if !s.used {
			supFindings = append(supFindings, Finding{
				Analyzer: DriverName,
				Position: t.Fset.Position(s.pos),
				Message:  fmt.Sprintf("unused %s for %q: no %s finding on this line", ignorePrefix, s.analyzer, s.analyzer),
			})
		}
	}
	findings = append(findings, supFindings...)

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}

// collectSuppressions parses every //phlint:ignore comment in the
// target, returning the usable suppressions and immediate findings for
// malformed ones (no analyzer name, or no reason).
func collectSuppressions(t *Target) ([]*suppression, []Finding) {
	var sups []*suppression
	var bad []Finding
	for _, f := range t.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
				if !ok {
					continue
				}
				pos := t.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					bad = append(bad, Finding{
						Analyzer: DriverName,
						Position: pos,
						Message:  fmt.Sprintf("%s needs an analyzer name and a reason: //%s <analyzer> <reason>", ignorePrefix, ignorePrefix),
					})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: DriverName,
						Position: pos,
						Message:  fmt.Sprintf("%s %s needs a reason: every suppressed finding documents why the invariant does not apply", ignorePrefix, fields[0]),
					})
					continue
				}
				s := &suppression{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					file:     pos.Filename,
					pos:      c.Pos(),
				}
				s.lines[0] = pos.Line
				s.lines[1] = pos.Line
				if ownLine(t.Fset, f, c) {
					s.lines[1] = pos.Line + 1
				}
				sups = append(sups, s)
			}
		}
	}
	return sups, bad
}

// ownLine reports whether the comment is the only thing on its source
// line (in which case it covers the following line too).
func ownLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	onlyComment := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !onlyComment {
			return false
		}
		if _, isFile := n.(*ast.File); isFile {
			return true
		}
		if fset.Position(n.Pos()).Line <= line && fset.Position(n.End()).Line >= line {
			switch n.(type) {
			case *ast.Comment, *ast.CommentGroup:
				return false
			}
			// A declaration or statement whose extent covers the line is
			// fine (a comment inside a block); code that STARTS or ENDS on
			// the comment's line shares it.
			if fset.Position(n.Pos()).Line == line || fset.Position(n.End()).Line == line {
				switch n.(type) {
				case *ast.BlockStmt, *ast.File, *ast.GenDecl, *ast.FuncDecl,
					*ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
					*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.CaseClause, *ast.CommClause:
					return true
				}
				onlyComment = false
				return false
			}
			return true
		}
		return true
	})
	return onlyComment
}

// suppressed consumes a matching suppression for the diagnostic, if any.
func suppressed(sups []*suppression, analyzer string, pos token.Position) bool {
	hit := false
	for _, s := range sups {
		if s.analyzer != analyzer || s.file != pos.Filename {
			continue
		}
		if pos.Line == s.lines[0] || pos.Line == s.lines[1] {
			s.used = true
			hit = true
		}
	}
	return hit
}
