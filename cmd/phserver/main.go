// Command phserver runs Eve: the untrusted database service provider. It
// stores encrypted tables and evaluates encrypted queries without ever
// holding keys.
//
// Usage:
//
//	phserver [-addr :7632] [-log /path/to/store.log] [-sync always|interval|never] [-sync-interval 100ms]
//
// With -log the store is durable: mutations are appended to a
// checksummed write-ahead log and replayed on restart (torn or corrupt
// tails from crashes are truncated). -sync selects when acknowledged
// writes are fsynced: "always" (the default) fsyncs before every
// acknowledgement, with concurrent writers sharing one fsync through
// group commit; "interval" fsyncs in the background every
// -sync-interval; "never" leaves flushing to the OS. Without -log the
// store is in-memory and the sync flags are ignored.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/server"
	"repro/internal/storage"

	// Register the key-free evaluators for every scheme this server can
	// evaluate queries for (database/sql-driver style).
	_ "repro/internal/core"
	_ "repro/internal/schemes/bucket"
	_ "repro/internal/schemes/damiani"
	_ "repro/internal/schemes/detph"
	_ "repro/internal/schemes/gohph"
)

func main() {
	var (
		addr     = flag.String("addr", ":7632", "listen address")
		logPath  = flag.String("log", "", "write-ahead persistence log (empty = in-memory)")
		syncMode = flag.String("sync", "always", "log sync policy: always (group-commit fsync per ack), interval (background fsync), never")
		syncIvl  = flag.Duration("sync-interval", storage.DefaultSyncInterval, "background fsync period under -sync interval")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "phserver: ", log.LstdFlags)

	var store *storage.Store
	if *logPath != "" {
		policy, err := storage.ParseSyncPolicy(*syncMode)
		if err != nil {
			logger.Fatalf("bad -sync flag: %v", err)
		}
		store, err = storage.OpenOptions(*logPath, storage.Options{Sync: policy, SyncInterval: *syncIvl})
		if err != nil {
			logger.Fatalf("opening store: %v", err)
		}
		defer store.Close()
		logger.Printf("durable store at %s (sync policy %s)", *logPath, policy)
	} else {
		store = storage.NewMemory()
		logger.Print("in-memory store (no -log given)")
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	srv := server.New(store, logger)
	logger.Printf("listening on %s", l.Addr())
	for _, info := range store.List() {
		logger.Printf("replayed table %q (%s, %d tuples)", info.Name, info.SchemeID, info.Tuples)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintln(os.Stderr)
		logger.Printf("received %s, shutting down", s)
		srv.Close()
	}()

	if err := srv.Serve(l); err != nil {
		logger.Fatalf("serve: %v", err)
	}
	logger.Print("bye")
}
