// Package query implements the server-side conjunctive query planner
// and executor (layer 9 of DESIGN.md). The paper's construction only
// preserves single-attribute exact selects, so a conjunction
// `a = x AND b = y` used to ship every conjunct's full match set to the
// client, which intersected after decryption — bandwidth and client CPU
// proportional to the *least* selective predicate. Position sets,
// however, are scheme-opaque server-side metadata: intersecting them on
// the server leaks nothing beyond the per-conjunct access pattern every
// batched query already reveals. This package therefore plans and runs
// the intersection where the data lives:
//
//   - a Plan orders the conjuncts by estimated selectivity — cached
//     position sets first (they cost nothing), then ascending estimate,
//     with estimates fed by the per-table stats.QuerySketch and by the
//     layer-6 result cache;
//   - execution evaluates the cheapest conjunct first (one full scan at
//     most, and none when a conjunct is cached) and *narrows*: every
//     later conjunct is tested only at the surviving positions through
//     ph.ApplyOn, so a k-conjunct query costs O(n + Σ|survivors|) match
//     tests instead of k·O(n) scans plus k result transfers;
//   - the executed plan reports, per conjunct, where its positions came
//     from and how many tests it ran, which is what CmdQueryConj returns
//     to the client and what phclient's -explain renders.
//
// The storage layer owns the locks, the cache and the sketch; it
// gathers the per-conjunct cache state into Conjunct values, calls
// Build, runs the plan under its read-locked snapshot, and feeds the
// fresh full-table position sets back into cache and sketch.
package query

import (
	"fmt"
	"sort"

	"repro/internal/ph"
)

// CachedState describes what the result cache held for a conjunct when
// the plan was built.
type CachedState int

const (
	// CachedNone: no usable cache entry; the conjunct must be evaluated.
	CachedNone CachedState = iota
	// CachedPrefix: Positions are exact for the first Scanned tuples
	// only (the table has been appended to since the entry was stored).
	CachedPrefix
	// CachedFull: Positions are exact for the whole table.
	CachedFull
)

// Source records how a conjunct was (or would be) served.
type Source int

const (
	// SourceScan: full table scan through the scheme's evaluator.
	SourceScan Source = iota
	// SourceHit: answered entirely from the result cache.
	SourceHit
	// SourceDelta: cached prefix positions plus a scan of the appended
	// tail (as driver) or of the surviving tail candidates.
	SourceDelta
	// SourceNarrow: evaluated only at the surviving candidate positions.
	SourceNarrow
	// SourceSkipped: never evaluated — the survivor set was already
	// empty when this conjunct's turn came.
	SourceSkipped
)

// String names the source for explain output.
func (s Source) String() string {
	switch s {
	case SourceScan:
		return "full-scan"
	case SourceHit:
		return "cache-hit"
	case SourceDelta:
		return "cache-delta"
	case SourceNarrow:
		return "narrow"
	case SourceSkipped:
		return "skipped"
	}
	return fmt.Sprintf("source(%d)", int(s))
}

// Conjunct is one predicate of the conjunction, annotated with the cache
// and sketch state the planner decides on. The storage layer fills the
// input fields; Run fills the execution fields.
type Conjunct struct {
	// Index is the conjunct's position in the client's request.
	Index int
	// Q is the encrypted query token.
	Q *ph.EncryptedQuery

	// Cached classifies the result-cache entry found at plan time.
	Cached CachedState
	// Positions holds the cached hit positions (whole table for
	// CachedFull, the first Scanned tuples for CachedPrefix).
	Positions []int
	// Scanned is the prefix length Positions covers.
	Scanned int
	// Est is the estimated selectivity in [0, 1] used for ordering.
	Est float64
	// EstKnown reports whether Est comes from observations of this very
	// token (cache entry or sketch) rather than from a prior.
	EstKnown bool

	// Source records how the conjunct was served (filled by Run, or by
	// Annotate with the predicted source in explain mode).
	Source Source
	// Tested counts the positions the evaluator actually tested.
	Tested int
	// Hits is the survivor count after applying this conjunct.
	Hits int
	// NarrowHits counts the hits among the Tested positions. It differs
	// from Hits on delta narrows, where Hits also includes
	// cached-prefix survivors that were never tested; this is the
	// numerator of the conditional-selectivity observation the storage
	// layer feeds back to the sketch.
	NarrowHits int
	// FullPositions, when non-nil, is a freshly computed full-table
	// position set for this conjunct — exactly what the storage layer
	// writes back to the result cache and the selectivity sketch.
	FullPositions []int
}

// Plan is an ordered conjunctive execution plan over one table snapshot.
type Plan struct {
	// Table is the table name (for rendering only).
	Table string
	// Tuples is the snapshot's tuple count.
	Tuples int
	// Conjuncts are the predicates in execution order.
	Conjuncts []*Conjunct
	// FullScan, when non-nil, serves the driver conjunct's uncached
	// full-table positions-only scan — the storage layer points it at
	// the scan-sharing layer, so a cold driver rides a shared pass
	// instead of starting its own. ok=false means the hook cannot serve
	// the query's scheme and Run falls back to ph.ApplyOn.
	FullScan func(q *ph.EncryptedQuery) (positions []int, ok bool, err error)
}

// scanCost approximates the positions this conjunct must test to
// produce its full position set: the whole table for an uncached
// conjunct, only the appended tail for a cached prefix, nothing for a
// full cache entry.
func (c *Conjunct) scanCost(tuples int) int {
	switch c.Cached {
	case CachedFull:
		return 0
	case CachedPrefix:
		return tuples - c.Scanned
	default:
		return tuples
	}
}

// Build orders the conjuncts into a plan: fully cached conjuncts first
// (their positions are free — intersecting them costs no cryptography),
// smallest cached set leading; the rest ascend by estimated cost
// scanCost + Est·tuples — the positions a conjunct would test as driver
// plus the survivors it would hand to the next step. For equally cached
// conjuncts this reduces to ordering by selectivity; a cached prefix
// needing only a small tail scan beats a marginally more selective
// uncached conjunct that would full-scan. The sort is stable, so ties
// keep request order and plans are deterministic.
func Build(table string, tuples int, conjs []*Conjunct) (*Plan, error) {
	if len(conjs) == 0 {
		return nil, fmt.Errorf("query: empty conjunction")
	}
	cost := func(c *Conjunct) float64 {
		return float64(c.scanCost(tuples)) + c.Est*float64(tuples)
	}
	ordered := append([]*Conjunct(nil), conjs...)
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if (a.Cached == CachedFull) != (b.Cached == CachedFull) {
			return a.Cached == CachedFull
		}
		if a.Cached == CachedFull { // both cached: smallest set first
			return len(a.Positions) < len(b.Positions)
		}
		return cost(a) < cost(b)
	})
	return &Plan{Table: table, Tuples: tuples, Conjuncts: ordered}, nil
}

// Run executes the plan against the snapshot it was built for. The
// returned positions are the conjunction's intersection, ascending. The
// caller holds whatever lock makes et stable; Run itself takes none.
func (p *Plan) Run(et *ph.EncryptedTable) ([]int, error) {
	if len(et.Tuples) != p.Tuples {
		return nil, fmt.Errorf("query: plan built for %d tuples run against %d", p.Tuples, len(et.Tuples))
	}
	n := p.Tuples
	var surv []int
	for step, cj := range p.Conjuncts {
		if step > 0 && len(surv) == 0 {
			cj.Source = SourceSkipped
			continue
		}
		switch {
		case cj.Cached == CachedFull:
			cj.Source = SourceHit
			if step == 0 {
				surv = append([]int(nil), cj.Positions...)
			} else {
				surv = ph.IntersectPositions(surv, cj.Positions)
			}
		case step == 0:
			// Driver: this conjunct must produce a full-table position
			// set. A cached prefix means only the appended tail needs
			// scanning; the completed set is cacheable either way. Both
			// shapes go through ApplyOn rather than Apply: only the
			// positions are needed here, and Apply would deep-clone every
			// matching tuple just for them to be discarded.
			var full []int
			if cj.Cached == CachedPrefix {
				tail, err := ph.ApplyOn(et, cj.Q, ascending(cj.Scanned, n))
				if err != nil {
					return nil, err
				}
				full = make([]int, 0, len(cj.Positions)+len(tail))
				full = append(full, cj.Positions...)
				full = append(full, tail...)
				cj.Source = SourceDelta
				cj.Tested = n - cj.Scanned
			} else {
				// Nil candidates = whole table (the Narrower contract):
				// a positions-only full scan, no candidate list built.
				// Prefer the shared-scan hook when the storage layer
				// installed one — same positions, one coalesced pass.
				positions, served, err := p.fullScan(cj.Q)
				if err != nil {
					return nil, err
				}
				if !served {
					if positions, err = ph.ApplyOn(et, cj.Q, nil); err != nil {
						return nil, err
					}
				}
				full = positions
				cj.Source = SourceScan
				cj.Tested = n
			}
			cj.FullPositions = full
			surv = append([]int(nil), full...)
		default:
			// Narrow: test this conjunct only at the survivors. A cached
			// prefix splits the work — survivors inside the prefix
			// intersect the cached positions for free, only survivors in
			// the appended tail are actually tested.
			if cj.Cached == CachedPrefix {
				cut := sort.SearchInts(surv, cj.Scanned)
				pre := ph.IntersectPositions(surv[:cut], cj.Positions)
				tail, err := ph.ApplyOn(et, cj.Q, surv[cut:])
				if err != nil {
					return nil, err
				}
				cj.Source = SourceDelta
				cj.Tested = len(surv) - cut
				cj.NarrowHits = len(tail)
				surv = append(pre, tail...)
			} else {
				narrowed, err := ph.ApplyOn(et, cj.Q, surv)
				if err != nil {
					return nil, err
				}
				cj.Source = SourceNarrow
				cj.Tested = len(surv)
				cj.NarrowHits = len(narrowed)
				surv = narrowed
			}
		}
		cj.Hits = len(surv)
	}
	if surv == nil {
		surv = []int{}
	}
	return surv, nil
}

// Annotate fills each conjunct's Source with the *predicted* serving
// path without evaluating anything — the explain-mode counterpart of
// Run. Tested and Hits stay zero: estimates, not measurements.
func (p *Plan) Annotate() {
	for step, cj := range p.Conjuncts {
		switch {
		case cj.Cached == CachedFull:
			cj.Source = SourceHit
		case step == 0:
			if cj.Cached == CachedPrefix {
				cj.Source = SourceDelta
			} else {
				cj.Source = SourceScan
			}
		default:
			if cj.Cached == CachedPrefix {
				cj.Source = SourceDelta
			} else {
				cj.Source = SourceNarrow
			}
		}
	}
}

// fullScan consults the plan's shared-scan hook, if any.
func (p *Plan) fullScan(q *ph.EncryptedQuery) ([]int, bool, error) {
	if p.FullScan == nil {
		return nil, false, nil
	}
	return p.FullScan(q)
}

// ascending returns the positions [lo, hi) as an ascending slice. The
// result is never nil — in the Narrower contract nil means "the whole
// table", which an empty range must not accidentally request.
func ascending(lo, hi int) []int {
	if hi <= lo {
		return []int{}
	}
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// Info summarises the plan for the wire: one step per conjunct, in
// execution order.
func (p *Plan) Info() *PlanInfo {
	info := &PlanInfo{Tuples: p.Tuples, Steps: make([]StepInfo, len(p.Conjuncts))}
	for i, cj := range p.Conjuncts {
		info.Steps[i] = StepInfo{
			Index:    cj.Index,
			Source:   cj.Source,
			Est:      cj.Est,
			EstKnown: cj.EstKnown,
			Tested:   cj.Tested,
			Hits:     cj.Hits,
		}
	}
	return info
}
