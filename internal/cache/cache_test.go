package cache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ph"
)

func q(token string) *ph.EncryptedQuery {
	return &ph.EncryptedQuery{SchemeID: "test", Token: []byte(token)}
}

func TestLookupOutcomes(t *testing.T) {
	c := New(0)
	if _, out := c.Lookup("t", q("a"), 1, 10); out != Miss {
		t.Fatalf("empty cache lookup = %v, want Miss", out)
	}
	c.Store("t", q("a"), Entry{Positions: []int{1, 4}, Scanned: 10, Version: 3})

	// Exact coverage: hit.
	e, out := c.Lookup("t", q("a"), 1, 10)
	if out != Hit || len(e.Positions) != 2 || e.Positions[0] != 1 || e.Positions[1] != 4 {
		t.Fatalf("lookup = %v %v, want Hit [1 4]", out, e.Positions)
	}
	// Table grew (appends): delta.
	if e, out = c.Lookup("t", q("a"), 1, 15); out != Delta || e.Scanned != 10 {
		t.Fatalf("grown-table lookup = %v scanned %d, want Delta 10", out, e.Scanned)
	}
	// Lineage base beyond the entry's version (table was replaced): miss.
	if _, out = c.Lookup("t", q("a"), 5, 10); out != Miss {
		t.Fatalf("replaced-table lookup = %v, want Miss", out)
	}
	// Different token, different table: misses.
	if _, out = c.Lookup("t", q("b"), 1, 10); out != Miss {
		t.Fatalf("other-token lookup = %v, want Miss", out)
	}
	if _, out = c.Lookup("u", q("a"), 1, 10); out != Miss {
		t.Fatalf("other-table lookup = %v, want Miss", out)
	}

	s := c.Stats()
	if s.Hits != 1 || s.Deltas != 1 || s.Misses != 4 {
		t.Fatalf("stats = %+v, want 1 hit, 1 delta, 4 misses", s)
	}
}

func TestLookupReturnsPrivateCopy(t *testing.T) {
	c := New(0)
	c.Store("t", q("a"), Entry{Positions: []int{7}, Scanned: 3, Version: 1})
	e, _ := c.Lookup("t", q("a"), 1, 3)
	e.Positions[0] = 99
	e.Positions = append(e.Positions, 100)
	if e2, _ := c.Lookup("t", q("a"), 1, 3); e2.Positions[0] != 7 || len(e2.Positions) != 1 {
		t.Fatalf("cache entry mutated through a lookup result: %v", e2.Positions)
	}
}

func TestStoreNewerVersionWins(t *testing.T) {
	c := New(0)
	c.Store("t", q("a"), Entry{Positions: []int{1, 2}, Scanned: 20, Version: 9})
	// A straggler from an older snapshot must not clobber the newer entry.
	c.Store("t", q("a"), Entry{Positions: []int{1}, Scanned: 10, Version: 4})
	e, out := c.Lookup("t", q("a"), 1, 20)
	if out != Hit || e.Version != 9 || len(e.Positions) != 2 {
		t.Fatalf("lookup after stale store = %v %+v, want the version-9 entry", out, e)
	}
	// Same or newer version replaces.
	c.Store("t", q("a"), Entry{Positions: []int{1, 2, 3}, Scanned: 30, Version: 12})
	if e, _ := c.Lookup("t", q("a"), 1, 30); e.Version != 12 || len(e.Positions) != 3 {
		t.Fatalf("newer store did not replace: %+v", e)
	}
}

func TestInvalidateTable(t *testing.T) {
	c := New(0)
	c.Store("t", q("a"), Entry{Positions: []int{1}, Scanned: 5, Version: 1})
	c.Store("t", q("b"), Entry{Positions: []int{2}, Scanned: 5, Version: 1})
	c.Store("u", q("a"), Entry{Positions: []int{3}, Scanned: 5, Version: 1})
	c.InvalidateTable("t")
	if _, out := c.Lookup("t", q("a"), 1, 5); out != Miss {
		t.Fatal("invalidated entry still served")
	}
	if _, out := c.Lookup("u", q("a"), 1, 5); out != Hit {
		t.Fatal("unrelated table's entry was invalidated")
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	if s := c.Stats(); s.Invalidations != 2 {
		t.Fatalf("Invalidations = %d, want 2", s.Invalidations)
	}
}

func TestEvictionBound(t *testing.T) {
	// Each entry: 100 positions ≈ 800 B + overhead. Bound at ~3 entries.
	c := New(3 * 900)
	for i := 0; i < 10; i++ {
		positions := make([]int, 100)
		c.Store("t", q(fmt.Sprintf("tok%d", i)), Entry{Positions: positions, Scanned: 100, Version: uint64(i)})
	}
	if sz := c.SizeBytes(); sz > 3*900 {
		t.Fatalf("SizeBytes %d exceeds bound", sz)
	}
	if n := c.Len(); n == 0 || n > 3 {
		t.Fatalf("Len = %d, want 1..3", n)
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Fatal("no evictions counted despite overflow")
	}
	// The most recently stored entry must have survived; the oldest gone.
	if _, out := c.Lookup("t", q("tok9"), 1, 100); out != Hit {
		t.Fatal("most recent entry was evicted")
	}
	if _, out := c.Lookup("t", q("tok0"), 1, 100); out != Miss {
		t.Fatal("oldest entry survived past the bound")
	}
}

func TestLRUOrderRespectsLookups(t *testing.T) {
	c := New(3 * 900)
	for i := 0; i < 3; i++ {
		c.Store("t", q(fmt.Sprintf("tok%d", i)), Entry{Positions: make([]int, 100), Scanned: 100, Version: 1})
	}
	// Touch tok0 so tok1 becomes the LRU victim.
	if _, out := c.Lookup("t", q("tok0"), 1, 100); out != Hit {
		t.Fatal("warm entry missing")
	}
	c.Store("t", q("tok3"), Entry{Positions: make([]int, 100), Scanned: 100, Version: 1})
	if _, out := c.Lookup("t", q("tok0"), 1, 100); out != Hit {
		t.Fatal("recently used entry evicted before the LRU one")
	}
	if _, out := c.Lookup("t", q("tok1"), 1, 100); out != Miss {
		t.Fatal("LRU entry survived")
	}
}

func TestOversizedEntryNotStored(t *testing.T) {
	c := New(100)
	c.Store("t", q("big"), Entry{Positions: make([]int, 1000), Scanned: 1000, Version: 1})
	if n := c.Len(); n != 0 {
		t.Fatalf("oversized entry stored, Len = %d", n)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tok := q(fmt.Sprintf("tok%d", i%16))
				table := fmt.Sprintf("t%d", g%4)
				switch i % 4 {
				case 0:
					c.Store(table, tok, Entry{Positions: []int{i}, Scanned: i + 1, Version: uint64(i)})
				case 3:
					c.InvalidateTable(table)
				default:
					c.Lookup(table, tok, 0, i+1)
				}
			}
		}(g)
	}
	wg.Wait()
}
