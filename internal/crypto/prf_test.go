package crypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testKey(b byte) Key {
	var k Key
	for i := range k {
		k[i] = b
	}
	return k
}

func TestPRFDeterministic(t *testing.T) {
	p := NewPRF(testKey(1))
	a := p.Sum([]byte("hello"), 32)
	b := p.Sum([]byte("hello"), 32)
	if !bytes.Equal(a, b) {
		t.Fatal("PRF is not deterministic")
	}
}

func TestPRFInputSeparation(t *testing.T) {
	p := NewPRF(testKey(1))
	if bytes.Equal(p.Sum([]byte("a"), 16), p.Sum([]byte("b"), 16)) {
		t.Fatal("PRF collides on distinct inputs")
	}
}

func TestPRFKeySeparation(t *testing.T) {
	a := NewPRF(testKey(1)).Sum([]byte("x"), 16)
	b := NewPRF(testKey(2)).Sum([]byte("x"), 16)
	if bytes.Equal(a, b) {
		t.Fatal("PRF output identical under different keys")
	}
}

func TestPRFOutputLengths(t *testing.T) {
	p := NewPRF(testKey(3))
	for _, n := range []int{0, 1, 16, 31, 32, 33, 64, 100, 1000} {
		out := p.Sum([]byte("len"), n)
		if len(out) != n {
			t.Fatalf("Sum(_, %d) returned %d bytes", n, len(out))
		}
	}
}

func TestPRFExpansionIsPrefixConsistent(t *testing.T) {
	// Counter-mode expansion: a longer output must extend the shorter one.
	p := NewPRF(testKey(4))
	short := p.Sum([]byte("pfx"), 16)
	long := p.Sum([]byte("pfx"), 64)
	if !bytes.Equal(short, long[:16]) {
		t.Fatal("expanded output does not extend shorter output")
	}
}

func TestSumStringsInjective(t *testing.T) {
	// Length prefixing must distinguish ("ab","c") from ("a","bc").
	p := NewPRF(testKey(5))
	x := p.SumStrings(32, []byte("ab"), []byte("c"))
	y := p.SumStrings(32, []byte("a"), []byte("bc"))
	if bytes.Equal(x, y) {
		t.Fatal("SumStrings not injective over part boundaries")
	}
}

func TestDeriveKeyDomainSeparation(t *testing.T) {
	p := NewPRF(testKey(6))
	k1 := p.DeriveKey("label-a", []byte("ctx"))
	k2 := p.DeriveKey("label-b", []byte("ctx"))
	k3 := p.DeriveKey("label-a", []byte("other"))
	if k1 == k2 || k1 == k3 || k2 == k3 {
		t.Fatal("derived keys collide across labels/contexts")
	}
}

func TestKeyFromBytes(t *testing.T) {
	long := make([]byte, 40)
	for i := range long {
		long[i] = byte(i)
	}
	k := KeyFromBytes(long)
	if !bytes.Equal(k[:], long[:KeySize]) {
		t.Fatal("KeyFromBytes should truncate long inputs")
	}
	short := KeyFromBytes([]byte("short"))
	var zero Key
	if short == zero {
		t.Fatal("KeyFromBytes of short input should not be all-zero")
	}
	if short != KeyFromBytes([]byte("short")) {
		t.Fatal("KeyFromBytes not deterministic")
	}
}

func TestCheckKeyLen(t *testing.T) {
	if err := CheckKeyLen(make([]byte, KeySize)); err != nil {
		t.Fatalf("CheckKeyLen rejected a valid key: %v", err)
	}
	if err := CheckKeyLen(make([]byte, KeySize-1)); err == nil {
		t.Fatal("CheckKeyLen accepted a short key")
	}
}

func TestPRFDistinctInputsProperty(t *testing.T) {
	p := NewPRF(testKey(7))
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		return !bytes.Equal(p.Sum(a, 32), p.Sum(b, 32))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
