package attacks

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/games"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/workload"
)

// HospitalReport aggregates the passive hospital-inference attack of §2 over
// many independent trials. The attack is not a distinguishing game but a
// direct privacy breach: from q = 4 observed encrypted queries and their
// result sets, Eve — knowing only the schema, the number of hospitals, the
// patient-flow distribution and the overall outcome ratio — reconstructs
// the *per-hospital* fatality ratio of hospital 1, a statistic the
// encryption was supposed to hide.
type HospitalReport struct {
	// Trials is the number of independent runs.
	Trials int
	// QueryIDRate is the fraction of trials in which Eve correctly
	// identified all four queries from result sizes alone.
	QueryIDRate float64
	// MeanTrueRate is the average true fatality ratio of hospital 1.
	MeanTrueRate float64
	// MeanEstRate is the average of Eve's estimates.
	MeanEstRate float64
	// MeanAbsError is the average |estimate − truth|.
	MeanAbsError float64
	// BlindError is the error Eve would make without the attack, i.e.
	// using the public overall ratio as her estimate — the baseline the
	// attack must beat to demonstrate leakage.
	BlindError float64
}

// HospitalQueries returns the four queries of the paper's example, in the
// fixed order hospital=1, hospital=2, hospital=3, outcome='fatal'.
func HospitalQueries() []relation.Eq {
	return []relation.Eq{
		{Column: "hospital", Value: relation.Int(1)},
		{Column: "hospital", Value: relation.Int(2)},
		{Column: "hospital", Value: relation.Int(3)},
		{Column: "outcome", Value: relation.String(workload.OutcomeFatal)},
	}
}

// HospitalInference runs the passive attack: per trial it generates a
// patient table with hidden per-hospital fatality rates, encrypts it with a
// fresh scheme instance, lets Alex issue the four queries in a random
// order, and gives Eve only the encrypted queries and their result-position
// sets. Eve identifies the queries by comparing result sizes with the
// public marginals and estimates hospital 1's fatality ratio by
// intersecting result sets.
func HospitalInference(factory games.SchemeFactory, patients, trials int, seed int64) (*HospitalReport, error) {
	if patients <= 0 || trials <= 0 {
		return nil, fmt.Errorf("attacks: hospital inference needs positive patients (%d) and trials (%d)", patients, trials)
	}
	rng := rand.New(rand.NewSource(seed))
	rep := &HospitalReport{Trials: trials}
	var idHits int
	var sumTrue, sumEst, sumErr, sumBlind float64
	for trial := 0; trial < trials; trial++ {
		// Hidden per-hospital rates: distinct enough to be interesting,
		// averaging near the public 0.08 marginal.
		rates := []float64{
			0.02 + 0.18*rng.Float64(),
			0.02 + 0.18*rng.Float64(),
			0.02 + 0.18*rng.Float64(),
		}
		table, err := workload.Hospital(workload.HospitalConfig{
			Patients:            patients,
			FatalRateByHospital: rates,
		}, rng.Int63())
		if err != nil {
			return nil, err
		}
		truth, err := trueHospitalRate(table, 1)
		if err != nil {
			return nil, err
		}
		scheme, err := factory(table.Schema())
		if err != nil {
			return nil, err
		}
		ct, err := scheme.EncryptTable(table)
		if err != nil {
			return nil, err
		}
		// Alex issues the four queries in random order; Eve sees only
		// position sets.
		queries := HospitalQueries()
		order := rng.Perm(len(queries))
		observed := make([][]int, len(queries)) // observed[i] = positions of i-th issued query
		for i, qi := range order {
			eq, err := scheme.EncryptQuery(queries[qi])
			if err != nil {
				return nil, err
			}
			res, err := ph.Apply(ct, eq)
			if err != nil {
				return nil, err
			}
			observed[i] = res.Positions
		}
		// Eve: match observed result sizes to expected sizes.
		expected := []float64{
			workload.HospitalFlows[0] * float64(patients),
			workload.HospitalFlows[1] * float64(patients),
			workload.HospitalFlows[2] * float64(patients),
			workload.OutcomeFatalRate * float64(patients),
		}
		assign := matchBySize(observed, expected)
		correct := true
		for i, qi := range order {
			if assign[i] != qi {
				correct = false
				break
			}
		}
		if correct {
			idHits++
		}
		// Eve's estimate: |Q_h1 ∩ Q_fatal| / |Q_h1| using her assignment.
		var h1, fatal []int
		for i := range observed {
			switch assign[i] {
			case 0:
				h1 = observed[i]
			case 3:
				fatal = observed[i]
			}
		}
		est := 0.0
		if len(h1) > 0 {
			est = float64(intersectCount(h1, fatal)) / float64(len(h1))
		}
		sumTrue += truth
		sumEst += est
		sumErr += math.Abs(est - truth)
		sumBlind += math.Abs(workload.OutcomeFatalRate - truth)
	}
	rep.QueryIDRate = float64(idHits) / float64(trials)
	rep.MeanTrueRate = sumTrue / float64(trials)
	rep.MeanEstRate = sumEst / float64(trials)
	rep.MeanAbsError = sumErr / float64(trials)
	rep.BlindError = sumBlind / float64(trials)
	return rep, nil
}

// trueHospitalRate computes the actual fatality ratio of the given hospital
// from the plaintext table.
func trueHospitalRate(t *relation.Table, hospital int64) (float64, error) {
	inH, err := relation.Select(t, relation.Eq{Column: "hospital", Value: relation.Int(hospital)})
	if err != nil {
		return 0, err
	}
	if inH.Len() == 0 {
		return 0, nil
	}
	fatal, err := relation.Select(inH, relation.Eq{Column: "outcome", Value: relation.String(workload.OutcomeFatal)})
	if err != nil {
		return 0, err
	}
	return float64(fatal.Len()) / float64(inH.Len()), nil
}

// matchBySize assigns each observed result to the expected query whose size
// it best matches, greedily by ascending size mismatch, without reusing a
// query. It returns assign[i] = index into expected for observation i.
func matchBySize(observed [][]int, expected []float64) []int {
	n := len(observed)
	assign := make([]int, n)
	usedObs := make([]bool, n)
	usedExp := make([]bool, len(expected))
	for step := 0; step < n; step++ {
		bestObs, bestExp, bestCost := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if usedObs[i] {
				continue
			}
			for j := range expected {
				if usedExp[j] {
					continue
				}
				cost := math.Abs(float64(len(observed[i])) - expected[j])
				if cost < bestCost {
					bestObs, bestExp, bestCost = i, j, cost
				}
			}
		}
		assign[bestObs] = bestExp
		usedObs[bestObs] = true
		usedExp[bestExp] = true
	}
	return assign
}

// intersectCount counts the common elements of two ascending position
// slices.
func intersectCount(a, b []int) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
