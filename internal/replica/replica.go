// Package replica implements the follower side of WAL shipping: a read
// replica that tails a primary's write-ahead log over the wire
// (CmdShipLog), replays the records into its own store, and serves
// reads from it — typically behind a read-only server
// (server.Options.ReadOnly), with mutations rejected locally.
//
// The follower's position is a cursor (epoch, seq): epoch names the
// primary's current log file, seq counts records applied from it. The
// primary answers every poll with (epoch, start, head) bookkeeping;
// whenever epoch or start disagrees with the cursor — the primary
// compacted its log, restarted into a fresh one, or never saw this
// follower — the follower's history is gone and it must re-bootstrap.
//
// Bootstrap has two paths. The preferred one fetches a checksummed
// state snapshot in resumable chunks (CmdShipSnapshot) and installs it
// atomically: O(state) work however long the primary's log is, and the
// follower keeps serving its previous consistent state until the
// install swaps — there is no window of emptiness. Against primaries
// that predate the snapshot command (or with Options.DisableSnapshot)
// the follower falls back to the original discipline: discard
// everything and replay the shipped log from record 0. The log is a
// total order from the empty store, so that replay is always sound —
// just O(log) — and while it runs the follower reports itself not
// Ready, which a fronting server surfaces as refusals so no client
// reads a half-empty store.
//
// Followers may run durable (Options.Store over a WAL-backed store):
// applied records land in the local log, and the store's ship-base
// sidecar records which primary cursor that log corresponds to, so a
// restarted follower resumes tailing from where it stopped instead of
// re-bootstrapping.
//
// Trust is the interesting part, and there is deliberately nothing
// here: the follower applies whatever the primary ships, and makes no
// claim of integrity. The client's pinned authenticated root does not
// care which machine answered — replayed records produce bit-identical
// tuple bytes, hence identical Merkle leaves, hence the primary's root;
// a snapshot-installed table is those same bytes arriving in bulk. A
// follower that is stale, corrupted, or lying produces a root mismatch
// at the client, which quarantines it and fails over (see
// internal/client's withRead). Replication adds read capacity, never
// trusted parties.
package replica

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/storage"
)

// maxSnapshotBytes caps the encoded snapshot a follower will reassemble
// from chunks (mirrors storage's installer-side cap).
const maxSnapshotBytes = 1 << 30

// Options tunes a Follower. The zero value gets sane defaults.
type Options struct {
	// PollInterval is the pause between polls once caught up (and after
	// errors). <=0 selects 100ms. While behind, the follower polls
	// continuously.
	PollInterval time.Duration
	// MaxBytes bounds one shipped chunk (log records or snapshot
	// bytes). <=0 selects 1MiB; the primary clamps hostile values
	// regardless.
	MaxBytes uint32
	// Store, when set, is the store the follower replays into — pass a
	// WAL-backed store (storage.OpenOptions) for a durable follower
	// that resumes its cursor across restarts. Nil selects a fresh
	// in-memory store. The store must not be mutated by anyone but the
	// follower.
	Store *storage.Store
	// DisableSnapshot forces the record-0 replay bootstrap path even
	// against primaries that can ship snapshots. For tests and
	// experiments (E19 measures the two paths against each other).
	DisableSnapshot bool
	// Logf, when set, receives progress and error lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.PollInterval <= 0 {
		o.PollInterval = 100 * time.Millisecond
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 1 << 20
	}
	return o
}

// Status is a snapshot of a follower's replication position.
type Status struct {
	// Epoch and Applied are the cursor: which primary log file the
	// follower is on and how many of its records it has applied.
	Epoch   uint64
	Applied uint64
	// Head is the primary's record count as of the last successful poll.
	Head uint64
	// CaughtUp reports whether the last poll found nothing to ship.
	CaughtUp bool
	// Ready reports whether the follower's store is a consistent cut of
	// the primary's history, safe to serve reads from (possibly stale).
	// It is false from a reset or apply failure until the follower
	// catches back up; a snapshot bootstrap keeps the previous state
	// serving, so Ready stays true across it.
	Ready bool
	// Resets counts re-bootstraps (primary compactions/restarts, apply
	// failures). A busy primary makes this grow occasionally; growth on
	// every poll means the follower cannot hold a cursor.
	Resets uint64
	// Snapshots counts snapshot installs (the O(state) bootstrap path).
	Snapshots uint64
	// RecordsApplied counts log records applied through shipping since
	// this follower started (not counting snapshot contents).
	RecordsApplied uint64
	// SnapshotBytes counts snapshot bytes fetched since this follower
	// started, including transfers that were later voided.
	SnapshotBytes uint64
	// LastErr is the most recent poll error, nil when the last poll
	// succeeded.
	LastErr error
}

// Follower tails a primary and keeps a store in sync with its log.
// Create with New, serve reads from Store(), stop with Close.
type Follower struct {
	store *storage.Store
	dial  func() (*client.Conn, error)
	opts  Options

	mu       sync.Mutex
	epoch    uint64
	seq      uint64
	head     uint64
	caughtUp bool
	ready    bool
	resets   uint64
	lastErr  error

	// Bootstrap state. bootstrapping is set when the cursor was
	// invalidated and a snapshot fetch is in progress (or pending);
	// snapEpoch/snapSeq identify the snapshot mid-transfer and snapBuf
	// accumulates its bytes — kept across redials, voided when the
	// primary answers under a different identity. snapUnsupported
	// latches when the primary rejects CmdShipSnapshot, switching this
	// follower to the record-0 replay path for its lifetime.
	bootstrapping   bool
	snapEpoch       uint64
	snapSeq         uint64
	snapBuf         []byte
	snapUnsupported bool

	snapshots   uint64
	appliedRecs uint64
	snapBytes   uint64

	closeOnce sync.Once
	closed    chan struct{}
	done      chan struct{}
}

// New starts a follower polling the primary reached by dial. The dial
// function is invoked whenever the follower needs a (re)connection —
// pair it with client.DialWithConfig for bounded retry.
//
// With Options.Store set to a durable store whose ship-base sidecar
// survived (see storage.ResumeCursor), the follower adopts the resumed
// cursor and is Ready immediately: its state is a consistent cut, just
// possibly stale. Otherwise it starts at the zero cursor and bootstraps.
func New(dial func() (*client.Conn, error), opts Options) *Follower {
	opts = opts.withDefaults()
	st := opts.Store
	if st == nil {
		st = storage.NewMemory()
	}
	f := &Follower{
		store:  st,
		dial:   dial,
		opts:   opts,
		closed: make(chan struct{}),
		done:   make(chan struct{}),
	}
	if epoch, seq, ok := st.ResumeCursor(); ok {
		f.epoch, f.seq = epoch, seq
		f.ready = true
	}
	go f.run()
	return f
}

// Store exposes the follower's replayed store, for serving reads (wrap
// it in a read-only server; the follower itself never writes except by
// replay).
func (f *Follower) Store() *storage.Store { return f.store }

// Ready reports whether the follower is serving a consistent cut of the
// primary's history. Wire it into server.Options.Ready so a fronting
// read-only server refuses requests — and the client quarantines and
// fails over — instead of answering from a store that is mid-reset.
func (f *Follower) Ready() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ready
}

// Status returns the follower's current replication position.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Status{
		Epoch: f.epoch, Applied: f.seq, Head: f.head,
		CaughtUp: f.caughtUp, Ready: f.ready, Resets: f.resets,
		Snapshots: f.snapshots, RecordsApplied: f.appliedRecs, SnapshotBytes: f.snapBytes,
		LastErr: f.lastErr,
	}
}

// WaitCaughtUp blocks until a poll finds the follower level with the
// primary's head, or the timeout expires.
func (f *Follower) WaitCaughtUp(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		st := f.Status()
		if st.CaughtUp && st.LastErr == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica: not caught up after %v (applied %d/%d, last error: %v)",
				timeout, st.Applied, st.Head, st.LastErr)
		}
		select {
		case <-f.closed:
			return fmt.Errorf("replica: follower closed while waiting")
		case <-time.After(time.Millisecond):
		}
	}
}

// Close stops the poll loop and waits for it to exit.
func (f *Follower) Close() {
	f.closeOnce.Do(func() { close(f.closed) })
	<-f.done
}

func (f *Follower) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

// sleep pauses for the poll interval, returning false when the follower
// was closed meanwhile.
func (f *Follower) sleep() bool {
	select {
	case <-f.closed:
		return false
	case <-time.After(f.opts.PollInterval):
		return true
	}
}

func (f *Follower) setErr(err error) {
	f.mu.Lock()
	f.lastErr = err
	f.caughtUp = false
	f.mu.Unlock()
}

// run is the poll loop: connect, ship from the cursor (or fetch the
// next snapshot chunk while bootstrapping), apply, repeat —
// continuously while behind, at PollInterval once level or after any
// error. Transport errors drop the connection and redial; the cursor
// and any partial snapshot transfer survive, so a restarted primary
// (same log) resumes where shipping stopped, a mid-transfer partition
// resumes the transfer, and a rotated primary resets the follower
// through the epoch check.
func (f *Follower) run() {
	defer close(f.done)
	var conn *client.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		select {
		case <-f.closed:
			return
		default:
		}
		if conn == nil {
			c, err := f.dial()
			if err != nil {
				f.setErr(fmt.Errorf("replica: dialing primary: %w", err))
				if !f.sleep() {
					return
				}
				continue
			}
			conn = c
		}
		var behind bool
		var err error
		if f.needsBootstrap() {
			behind, err = f.bootstrap(conn)
		} else {
			behind, err = f.poll(conn)
		}
		if err != nil {
			f.setErr(err)
			f.logf("replica: %v", err)
			if !isProtocolError(err) {
				conn.Close()
				conn = nil
			}
		}
		if err != nil || !behind {
			if !f.sleep() {
				return
			}
		}
	}
}

// isProtocolError reports whether the primary answered (with an error)
// rather than the transport failing: the connection is fine, redialing
// would change nothing.
func isProtocolError(err error) bool {
	return client.IsRemote(err)
}

// needsBootstrap reports whether the next round should fetch a snapshot
// chunk instead of polling the log: an explicit bootstrap is pending,
// or the cursor is virgin — and the snapshot path is available at all.
func (f *Follower) needsBootstrap() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.opts.DisableSnapshot || f.snapUnsupported {
		return false
	}
	return f.bootstrapping || (f.epoch == 0 && f.seq == 0)
}

// poll runs one ShipLog round and folds the answer into the store.
func (f *Follower) poll(conn *client.Conn) (behind bool, err error) {
	f.mu.Lock()
	epoch, seq := f.epoch, f.seq
	f.mu.Unlock()
	ch, err := conn.ShipLog(epoch, seq, f.opts.MaxBytes)
	if err != nil {
		return false, fmt.Errorf("replica: shipping from (%d,%d): %w", epoch, seq, err)
	}
	return f.apply(epoch, seq, ch)
}

// bootstrap runs one CmdShipSnapshot round: fetch the next chunk of the
// snapshot mid-transfer (or the first chunk of a fresh one), and when
// the transfer completes, verify and install it and resume tailing from
// its embedded cursor. The store keeps serving its previous state until
// the install atomically swaps, so Ready is untouched here.
func (f *Follower) bootstrap(conn *client.Conn) (behind bool, err error) {
	f.mu.Lock()
	f.bootstrapping = true
	e, q, off := f.snapEpoch, f.snapSeq, uint64(len(f.snapBuf))
	f.mu.Unlock()
	ch, err := conn.ShipSnapshot(e, q, off, f.opts.MaxBytes)
	if err != nil {
		if client.IsUnsupported(err) {
			// Pre-snapshot primary: latch the fallback and re-bootstrap
			// by record-0 replay on the next round.
			f.logf("replica: primary does not ship snapshots, falling back to record-0 replay")
			f.mu.Lock()
			f.snapUnsupported = true
			f.bootstrapping = false
			f.snapBuf = nil
			f.epoch, f.seq = 0, 0
			f.mu.Unlock()
			return true, nil
		}
		return false, fmt.Errorf("replica: fetching snapshot chunk at %d: %w", off, err)
	}
	f.mu.Lock()
	f.snapBytes += uint64(len(ch.Data))
	if ch.Total > maxSnapshotBytes {
		f.snapBuf = nil
		f.mu.Unlock()
		return false, fmt.Errorf("replica: primary offers a %d-byte snapshot, above the %d cap", ch.Total, maxSnapshotBytes)
	}
	if ch.Epoch != e || ch.Seq != q || ch.Offset != off {
		// A different snapshot (or an offset the primary would not
		// serve): everything accumulated is void. Adopt the new identity
		// only from its origin; otherwise retry from scratch.
		f.snapBuf = nil
		f.snapEpoch, f.snapSeq = ch.Epoch, ch.Seq
		if ch.Offset != 0 {
			f.mu.Unlock()
			return true, nil
		}
		if e != 0 || q != 0 {
			f.logf("replica: snapshot (%d,%d) superseded by (%d,%d), restarting transfer", e, q, ch.Epoch, ch.Seq)
		}
	}
	f.snapBuf = append(f.snapBuf, ch.Data...)
	done := uint64(len(f.snapBuf)) == ch.Total
	var buf []byte
	if done {
		buf, f.snapBuf = f.snapBuf, nil
	}
	f.mu.Unlock()
	if !done {
		return true, nil
	}
	cur, ierr := f.store.InstallSnapshot(buf)
	if ierr != nil {
		// The store kept its previous state; void the transfer and
		// fetch a fresh snapshot next round.
		f.mu.Lock()
		f.snapEpoch, f.snapSeq = 0, 0
		f.mu.Unlock()
		return true, fmt.Errorf("replica: installing %d-byte snapshot (%d,%d): %w", len(buf), ch.Epoch, ch.Seq, ierr)
	}
	f.logf("replica: installed snapshot (%d,%d), %d bytes", cur.Epoch, cur.Seq, len(buf))
	f.mu.Lock()
	f.bootstrapping = false
	f.snapEpoch, f.snapSeq = 0, 0
	f.epoch, f.seq = cur.Epoch, cur.Seq
	f.snapshots++
	f.caughtUp = false
	f.lastErr = nil
	f.mu.Unlock()
	return true, nil
}

// apply folds one shipped chunk into the store. It returns whether the
// follower is still behind (poll again immediately). A chunk whose
// epoch or start disagrees with the cursor means the follower's history
// is gone on the primary: with snapshots available the follower flags a
// bootstrap (keeping its consistent state serving until the install);
// otherwise the store is reset and the chunk applied from the stream's
// start. A record that fails to apply re-bootstraps too — a partially
// applied log is the one state shipping must never hold.
func (f *Follower) apply(epoch, seq uint64, ch *client.LogChunk) (behind bool, err error) {
	if ch.Epoch != epoch || ch.Start != seq {
		if ch.Start != 0 {
			// The primary answered from a cursor this follower never held;
			// force a clean bootstrap on the next poll.
			f.invalidate(0)
			return true, fmt.Errorf("replica: primary answered from (%d,%d) to cursor (%d,%d); re-bootstrapping",
				ch.Epoch, ch.Start, epoch, seq)
		}
		if f.snapshotsAvailable() {
			// Never apply a record-0 stream over existing state: flag a
			// snapshot bootstrap and keep serving the old consistent cut.
			f.logf("replica: cursor (%d,%d) rotated away (primary at epoch %d); snapshot bootstrap", epoch, seq, ch.Epoch)
			f.invalidate(0)
			return true, nil
		}
		if epoch == 0 && seq == 0 && !f.dirty() {
			// Virgin cursor adopting the primary's epoch: the first poll
			// of a fresh follower, not a discard of applied state.
			f.mu.Lock()
			f.epoch = ch.Epoch
			f.mu.Unlock()
			f.setBase(ch.Epoch, 0)
		} else {
			f.logf("replica: cursor (%d,%d) rotated away (primary at epoch %d); re-bootstrapping", epoch, seq, ch.Epoch)
			f.reset(ch.Epoch, 0)
		}
		epoch, seq = ch.Epoch, 0
	}
	for i, rec := range ch.Records {
		if aerr := f.store.ApplyShipped(rec); aerr != nil {
			if f.snapshotsAvailable() {
				f.invalidate(0)
			} else {
				f.reset(0, 0)
			}
			return true, fmt.Errorf("replica: applying record %d of (%d,%d): %w", i, ch.Epoch, ch.Start, aerr)
		}
		seq++
		f.mu.Lock()
		f.appliedRecs++
		f.mu.Unlock()
	}
	f.mu.Lock()
	f.epoch, f.seq, f.head = epoch, seq, ch.Head
	f.caughtUp = seq >= ch.Head
	if f.caughtUp {
		f.ready = true
	}
	f.lastErr = nil
	behind = !f.caughtUp
	f.mu.Unlock()
	return behind, nil
}

// snapshotsAvailable reports whether the snapshot bootstrap path is
// open (enabled and not rejected by this primary).
func (f *Follower) snapshotsAvailable() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.opts.DisableSnapshot && !f.snapUnsupported
}

// dirty reports whether the store holds any state — a record-0 replay
// onto it would diverge. A durable follower restarting without a valid
// ship base lands here.
func (f *Follower) dirty() bool {
	return len(f.store.List()) > 0
}

// invalidate voids the cursor and flags a snapshot bootstrap; the store
// is untouched (it keeps serving the old consistent cut until the
// install swaps it). A reset for accounting purposes.
func (f *Follower) invalidate(epoch uint64) {
	f.mu.Lock()
	f.epoch, f.seq, f.head = epoch, 0, 0
	f.caughtUp = false
	f.bootstrapping = true
	f.snapEpoch, f.snapSeq, f.snapBuf = 0, 0, nil
	f.resets++
	f.mu.Unlock()
}

// reset discards the replayed state and moves the cursor: the record-0
// replay bootstrap. Until the follower catches back up it is not Ready
// — its store is empty, and serving unverified reads from it would
// return confidently wrong (near-empty) answers.
func (f *Follower) reset(epoch, seq uint64) {
	f.mu.Lock()
	f.ready = false
	f.mu.Unlock()
	if err := f.store.Reset(); err != nil {
		f.logf("replica: resetting store: %v", err)
	}
	f.mu.Lock()
	f.epoch, f.seq, f.head = epoch, seq, 0
	f.caughtUp = false
	f.resets++
	f.mu.Unlock()
	if epoch != 0 {
		f.setBase(epoch, seq)
	}
}

// setBase records the store's correspondence to a primary cursor (for
// durable followers, persistently). Failure only costs a re-bootstrap
// after the next restart.
func (f *Follower) setBase(epoch, seq uint64) {
	if err := f.store.SetShipBase(epoch, seq); err != nil {
		f.logf("replica: recording ship base (%d,%d): %v", epoch, seq, err)
	}
}
