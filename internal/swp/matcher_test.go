package swp

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/crypto"
)

func matcherFixture(t testing.TB, p Params) (*Scheme, [][]byte, Trapdoor) {
	t.Helper()
	var key crypto.Key
	for i := range key {
		key[i] = byte(i * 7)
	}
	s, err := New(key, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	words := make([][]byte, 256)
	for i := range words {
		w := make([]byte, p.WordLen)
		for j := range w {
			w[j] = byte(rng.Intn(200))
		}
		words[i] = w
	}
	// Plant a known word at a few positions.
	needle := bytes.Repeat([]byte{0xAB}, p.WordLen)
	for _, pos := range []int{3, 77, 200} {
		words[pos] = needle
	}
	cws, err := s.EncryptDocument([]byte("doc"), words)
	if err != nil {
		t.Fatal(err)
	}
	td, err := s.NewTrapdoor(needle)
	if err != nil {
		t.Fatal(err)
	}
	return s, cws, td
}

func TestMatcherAgreesWithMatch(t *testing.T) {
	p := Params{WordLen: 16, ChecksumLen: 2}
	s, cws, td := matcherFixture(t, p)
	m := NewMatcher(s.Params(), td)
	for i, cw := range cws {
		if m.Match(cw) != Match(s.Params(), cw, td) {
			t.Fatalf("Matcher and Match disagree at position %d", i)
		}
	}
	hits := m.Search(cws, nil)
	want := SearchDocument(s.Params(), cws, td)
	if len(hits) != len(want) {
		t.Fatalf("Search found %v, SearchDocument %v", hits, want)
	}
	for i := range hits {
		if hits[i] != want[i] {
			t.Fatalf("Search found %v, SearchDocument %v", hits, want)
		}
	}
	if len(hits) < 3 {
		t.Fatalf("planted word found only at %v, want ≥ 3 positions", hits)
	}
}

func TestMatcherRejectsBadGeometry(t *testing.T) {
	p := Params{WordLen: 16, ChecksumLen: 2}
	_, cws, td := matcherFixture(t, p)

	// Wrong cipherword length.
	if NewMatcher(p, td).Match(cws[0][:10]) {
		t.Fatal("matched a short cipherword")
	}
	// Truncated trapdoor X.
	if NewMatcher(p, Trapdoor{X: td.X[:10], K: td.K}).Match(cws[3]) {
		t.Fatal("matched with a short trapdoor X")
	}
	// Truncated key.
	if NewMatcher(p, Trapdoor{X: td.X, K: td.K[:16]}).Match(cws[3]) {
		t.Fatal("matched with a short trapdoor key")
	}
	// Invalid parameters.
	if NewMatcher(Params{WordLen: 1, ChecksumLen: 1}, td).Match(cws[3]) {
		t.Fatal("matched under invalid parameters")
	}
	// An invalid Matcher must clone safely and stay invalid.
	c := NewMatcher(p, Trapdoor{}).Clone()
	if c.Match(cws[3]) {
		t.Fatal("clone of invalid matcher matched")
	}
}

func TestMatcherCloneConcurrent(t *testing.T) {
	p := Params{WordLen: 12, ChecksumLen: 3}
	_, cws, td := matcherFixture(t, p)
	base := NewMatcher(p, td)
	want := base.Search(cws, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := base.Clone()
			for rep := 0; rep < 20; rep++ {
				got := m.Search(cws, nil)
				if len(got) != len(want) {
					t.Errorf("concurrent clone found %v, want %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestMatchZeroAllocs(t *testing.T) {
	p := Params{WordLen: 16, ChecksumLen: 2}
	_, cws, td := matcherFixture(t, p)
	m := NewMatcher(p, td)
	m.Match(cws[0]) // warm up
	allocs := testing.AllocsPerRun(500, func() {
		for _, cw := range cws[:32] {
			m.Match(cw)
		}
	})
	if allocs != 0 {
		t.Fatalf("Matcher.Match allocates %v objects per 32-word scan, want 0", allocs)
	}
}

func TestFalsePositiveRatePinned(t *testing.T) {
	// Satellite: 2^(-8m) via math.Ldexp, pinned for m = 1..4.
	want := map[int]float64{
		1: 1.0 / 256,
		2: 1.0 / 65536,
		3: 1.0 / 16777216,
		4: 1.0 / 4294967296,
	}
	for m, w := range want {
		p := Params{WordLen: 8, ChecksumLen: m}
		if got := p.FalsePositiveRate(); got != w {
			t.Errorf("FalsePositiveRate(m=%d) = %g, want %g", m, got, w)
		}
		if got := p.FalsePositiveRate(); got != math.Ldexp(1, -8*m) {
			t.Errorf("FalsePositiveRate(m=%d) disagrees with Ldexp", m)
		}
	}
}

// BenchmarkMatch measures the per-cipherword cost of the server-side test
// through a reused Matcher — the unit the table-scan engine multiplies by
// (tuples × words). The headline figure is 0 allocs/op.
func BenchmarkMatch(b *testing.B) {
	p := Params{WordLen: 16, ChecksumLen: 2}
	_, cws, td := matcherFixture(b, p)
	m := NewMatcher(p, td)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(cws[i%len(cws)])
	}
}

// BenchmarkMatchLegacy is the pre-Matcher path (fresh trapdoor state per
// call) kept as the before-side of the allocs/op comparison.
func BenchmarkMatchLegacy(b *testing.B) {
	p := Params{WordLen: 16, ChecksumLen: 2}
	_, cws, td := matcherFixture(b, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Match(p, cws[i%len(cws)], td)
	}
}
