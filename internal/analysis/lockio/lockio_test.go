package lockio_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockio"
)

func TestLockio(t *testing.T) {
	analysistest.Run(t, "testdata", lockio.Analyzer, "storage")
}
