package relation

import (
	"strings"
	"testing"
)

func TestNewSchemaValidation(t *testing.T) {
	cases := []struct {
		name string
		sn   string
		cols []Column
		ok   bool
	}{
		{"valid", "t", []Column{{Name: "a", Type: TypeString, Width: 4}}, true},
		{"empty name", "", []Column{{Name: "a", Type: TypeString, Width: 4}}, false},
		{"no columns", "t", nil, false},
		{"empty column name", "t", []Column{{Name: "", Type: TypeInt, Width: 4}}, false},
		{"bad type", "t", []Column{{Name: "a", Type: TypeInvalid, Width: 4}}, false},
		{"zero width", "t", []Column{{Name: "a", Type: TypeString, Width: 0}}, false},
		{"negative width", "t", []Column{{Name: "a", Type: TypeString, Width: -1}}, false},
		{"duplicate column", "t", []Column{
			{Name: "a", Type: TypeString, Width: 4},
			{Name: "a", Type: TypeInt, Width: 4},
		}, false},
	}
	for _, c := range cases {
		_, err := NewSchema(c.sn, c.cols...)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
		}
	}
}

func TestSchemaLookup(t *testing.T) {
	s := MustSchema("t",
		Column{Name: "a", Type: TypeString, Width: 4},
		Column{Name: "b", Type: TypeInt, Width: 6},
	)
	if i := s.ColumnIndex("b"); i != 1 {
		t.Fatalf("ColumnIndex(b) = %d, want 1", i)
	}
	if i := s.ColumnIndex("zzz"); i != -1 {
		t.Fatalf("ColumnIndex(zzz) = %d, want -1", i)
	}
	c, ok := s.Column("a")
	if !ok || c.Type != TypeString {
		t.Fatalf("Column(a) = %+v, %v", c, ok)
	}
	if s.NumColumns() != 2 {
		t.Fatalf("NumColumns = %d", s.NumColumns())
	}
}

func TestSchemaEqual(t *testing.T) {
	a := MustSchema("t", Column{Name: "a", Type: TypeString, Width: 4})
	b := MustSchema("t", Column{Name: "a", Type: TypeString, Width: 4})
	c := MustSchema("t", Column{Name: "a", Type: TypeString, Width: 5})
	d := MustSchema("u", Column{Name: "a", Type: TypeString, Width: 4})
	if !a.Equal(b) {
		t.Fatal("identical schemas not equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Fatal("different schemas reported equal")
	}
	if a.Equal(nil) {
		t.Fatal("schema equal to nil")
	}
}

func TestValueBasics(t *testing.T) {
	s := String("hi")
	i := Int(-42)
	if s.Type() != TypeString || i.Type() != TypeInt {
		t.Fatal("wrong types")
	}
	if s.Encode() != "hi" || i.Encode() != "-42" {
		t.Fatalf("Encode: %q %q", s.Encode(), i.Encode())
	}
	if !s.Equal(String("hi")) || s.Equal(String("ho")) || s.Equal(Int(0)) {
		t.Fatal("Equal misbehaves")
	}
	if !Int(1).Less(Int(2)) || Int(2).Less(Int(1)) {
		t.Fatal("Less misbehaves on ints")
	}
	if !String("a").Less(String("b")) {
		t.Fatal("Less misbehaves on strings")
	}
}

func TestValueCheckAgainst(t *testing.T) {
	col := Column{Name: "a", Type: TypeString, Width: 3}
	if err := String("abc").CheckAgainst(col); err != nil {
		t.Fatalf("fitting value rejected: %v", err)
	}
	if err := String("abcd").CheckAgainst(col); err == nil {
		t.Fatal("overflowing value accepted")
	}
	if err := Int(1).CheckAgainst(col); err == nil {
		t.Fatal("type mismatch accepted")
	}
	icol := Column{Name: "n", Type: TypeInt, Width: 2}
	if err := Int(-99).CheckAgainst(icol); err != nil {
		t.Fatalf("signed value within width rejected: %v", err)
	}
	// EncodedWidth is Width+1 (sign allowance), so the byte budget is 3.
	if err := Int(1000).CheckAgainst(icol); err == nil {
		t.Fatal("4-byte value accepted in width-2 (3-byte budget) column")
	}
}

func TestTupleKeyInjective(t *testing.T) {
	a := Tuple{String("ab"), String("c")}
	b := Tuple{String("a"), String("bc")}
	if a.Key() == b.Key() {
		t.Fatal("Tuple.Key not injective across field boundaries")
	}
	c := Tuple{String("x"), Int(1)}
	d := Tuple{String("x"), String("1")}
	if c.Key() == d.Key() {
		t.Fatal("Tuple.Key not type-aware")
	}
}

func TestTableInsertValidation(t *testing.T) {
	s := MustSchema("t",
		Column{Name: "a", Type: TypeString, Width: 2},
		Column{Name: "n", Type: TypeInt, Width: 3},
	)
	tab := NewTable(s)
	if err := tab.Insert(Tuple{String("ok"), Int(5)}); err != nil {
		t.Fatalf("valid insert failed: %v", err)
	}
	if err := tab.Insert(Tuple{String("ok")}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := tab.Insert(Tuple{String("too long"), Int(5)}); err == nil {
		t.Fatal("overflow accepted")
	}
	if err := tab.Insert(Tuple{Int(5), Int(5)}); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if tab.Len() != 1 {
		t.Fatalf("failed inserts mutated the table: len=%d", tab.Len())
	}
}

func TestTableInsertCopies(t *testing.T) {
	s := MustSchema("t", Column{Name: "a", Type: TypeString, Width: 4})
	tab := NewTable(s)
	tp := Tuple{String("orig")}
	if err := tab.Insert(tp); err != nil {
		t.Fatal(err)
	}
	tp[0] = String("mut")
	if tab.Tuple(0)[0].Str() != "orig" {
		t.Fatal("Insert did not copy the tuple")
	}
}

func TestTableEqualMultiset(t *testing.T) {
	s := MustSchema("t", Column{Name: "a", Type: TypeInt, Width: 3})
	mk := func(vals ...int64) *Table {
		tab := NewTable(s)
		for _, v := range vals {
			tab.MustInsert(Int(v))
		}
		return tab
	}
	if !mk(1, 2, 2, 3).Equal(mk(3, 2, 1, 2)) {
		t.Fatal("order should not matter")
	}
	if mk(1, 2, 2).Equal(mk(1, 2, 3)) {
		t.Fatal("different multisets equal")
	}
	if mk(1, 2).Equal(mk(1, 2, 2)) {
		t.Fatal("different cardinalities equal")
	}
	if mk(1, 1, 2).Equal(mk(1, 2, 2)) {
		t.Fatal("different multiplicities equal")
	}
}

func TestTableCloneIndependent(t *testing.T) {
	s := MustSchema("t", Column{Name: "a", Type: TypeInt, Width: 3})
	tab := NewTable(s)
	tab.MustInsert(Int(1))
	cl := tab.Clone()
	cl.MustInsert(Int(2))
	if tab.Len() != 1 || cl.Len() != 2 {
		t.Fatal("Clone shares state with original")
	}
}

func TestTableSortedDeterministic(t *testing.T) {
	s := MustSchema("t",
		Column{Name: "a", Type: TypeString, Width: 2},
		Column{Name: "n", Type: TypeInt, Width: 3},
	)
	tab := NewTable(s)
	tab.MustInsert(String("b"), Int(2))
	tab.MustInsert(String("a"), Int(9))
	tab.MustInsert(String("a"), Int(1))
	got := tab.Sorted()
	want := [][2]string{{"a", "1"}, {"a", "9"}, {"b", "2"}}
	for i, w := range want {
		if got.Tuple(i)[0].Encode() != w[0] || got.Tuple(i)[1].Encode() != w[1] {
			t.Fatalf("sorted row %d = %v, want %v", i, got.Tuple(i), w)
		}
	}
}

func TestTableString(t *testing.T) {
	s := MustSchema("t", Column{Name: "a", Type: TypeString, Width: 4})
	tab := NewTable(s)
	tab.MustInsert(String("x"))
	out := tab.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "x") {
		t.Fatalf("String output missing content: %q", out)
	}
}
