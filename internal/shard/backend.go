package shard

import (
	"fmt"

	"repro/internal/authindex"
	"repro/internal/ph"
	"repro/internal/query"
	"repro/internal/wire"
)

// server.Backend implementation: a Coordinator behind server.NewProxy is
// `phserver -coordinator` — one listener speaking the ordinary wire
// protocol, scattering every command over its shards.
//
// Two tiers of service:
//
//   - The shard-framed commands (CmdShardQuery / CmdShardInsert) are the
//     native surface: per-shard sub-answers framed by shard id, which is
//     what a verifying client needs to check each against its pinned
//     root vector.
//   - The legacy single-server commands keep working unchanged for
//     unverified clients: the coordinator scatters them and merges the
//     answers into the single-server shape. Merged results renumber
//     positions synthetically (merge order) — real coordinates are
//     (shard, offset) pairs that the merged shape cannot carry — which
//     is sound only because nothing verifies against them; the verified
//     legacy commands (CmdRoot / CmdProve / CmdQueryVerified, verified
//     conjunctions) are therefore *refused* with an error naming the
//     shard-framed alternative, rather than answered with proofs that
//     could never verify.
func (co *Coordinator) Sync() error { return nil }

// HandleFrame serves one command frame against the sharded cluster.
func (co *Coordinator) HandleFrame(f wire.Frame, scratch []byte) (wire.Frame, error) {
	r := wire.NewBuffer(f.Payload)
	switch f.Type {
	case wire.CmdShardQuery:
		name, flags, qs, err := DecodeQueryRequest(f.Payload)
		if err != nil {
			return wire.Frame{}, err
		}
		subs, err := co.serveShardQuery(name, flags, qs)
		if err != nil {
			return wire.Frame{}, err
		}
		return wire.Frame{Type: wire.RespResultShard, Payload: EncodeResponse(scratch, co.m.Version, subs)}, nil

	case wire.CmdShardInsert:
		name, tuples, err := decodeInsert(r)
		if err != nil {
			return wire.Frame{}, err
		}
		acks, err := co.Insert(name, tuples)
		if err != nil {
			return wire.Frame{}, err
		}
		wireAcks := make([]Ack, 0, len(acks))
		for i, a := range acks {
			if a.Count == 0 {
				continue
			}
			wireAcks = append(wireAcks, Ack{Shard: i, Base: a.Base, Count: a.Count, Version: a.Version})
		}
		return wire.Frame{Type: wire.RespInsertedShard, Payload: EncodeAcks(scratch, co.m.Version, wireAcks)}, nil

	case wire.CmdStore:
		name, err := r.String()
		if err != nil {
			return wire.Frame{}, err
		}
		t, err := wire.DecodeTable(r)
		if err != nil {
			return wire.Frame{}, err
		}
		if err := co.Store(name, t); err != nil {
			return wire.Frame{}, err
		}
		return wire.Frame{Type: wire.RespOK}, nil

	case wire.CmdInsert:
		name, tuples, err := decodeInsert(r)
		if err != nil {
			return wire.Frame{}, err
		}
		if _, err := co.Insert(name, tuples); err != nil {
			return wire.Frame{}, err
		}
		return wire.Frame{Type: wire.RespOK}, nil

	case wire.CmdQuery:
		name, err := r.String()
		if err != nil {
			return wire.Frame{}, err
		}
		q, err := wire.DecodeQuery(r)
		if err != nil {
			return wire.Frame{}, err
		}
		results, err := co.Query(name, q)
		if err != nil {
			return wire.Frame{}, err
		}
		return wire.Frame{Type: wire.RespResult, Payload: wire.EncodeResult(scratch, mergeResults(results))}, nil

	case wire.CmdQueryBatch:
		name, _, qs, err := DecodeQueryRequest(padBatchFlags(f.Payload))
		if err != nil {
			return wire.Frame{}, err
		}
		perShard, err := co.QueryBatch(name, qs)
		if err != nil {
			return wire.Frame{}, err
		}
		payload := wire.AppendU32(scratch, uint32(len(qs)))
		for j := range qs {
			column := make([]*ph.Result, 0, len(perShard))
			for i, rs := range perShard {
				if len(rs) != len(qs) {
					return wire.Frame{}, fmt.Errorf("shard %d answered %d batch results for %d queries", i, len(rs), len(qs))
				}
				column = append(column, rs[j])
			}
			payload = wire.EncodeResult(payload, mergeResults(column))
		}
		return wire.Frame{Type: wire.RespResults, Payload: payload}, nil

	case wire.CmdQueryConj:
		name, flags, qs, err := DecodeQueryRequest(f.Payload)
		if err != nil {
			return wire.Frame{}, err
		}
		if flags&wire.ConjFlagVerified != 0 {
			return wire.Frame{}, fmt.Errorf("coordinator: merged verified conjunctions cannot carry per-shard proofs; use CmdShardQuery with ShardFlagConj|ShardFlagVerified")
		}
		if flags&wire.ConjFlagExplain != 0 {
			plan, err := co.ExplainConj(name, qs)
			if err != nil {
				return wire.Frame{}, err
			}
			return wire.Frame{Type: wire.RespResultConj, Payload: query.EncodeResponse(scratch, &query.Response{Plan: plan})}, nil
		}
		resps, err := co.QueryConj(name, qs, false, nil)
		if err != nil {
			return wire.Frame{}, err
		}
		plans := make([]*query.PlanInfo, len(resps))
		results := make([]*ph.Result, len(resps))
		for i, resp := range resps {
			if resp == nil || resp.Result == nil {
				return wire.Frame{}, fmt.Errorf("shard %d answered a conjunction without a result", i)
			}
			plans[i], results[i] = resp.Plan, resp.Result
		}
		merged := &query.Response{Plan: query.MergePlans(plans), Result: mergeResults(results)}
		return wire.Frame{Type: wire.RespResultConj, Payload: query.EncodeResponse(scratch, merged)}, nil

	case wire.CmdFetchAll:
		name, err := r.String()
		if err != nil {
			return wire.Frame{}, err
		}
		parts, err := co.Fetch(name)
		if err != nil {
			return wire.Frame{}, err
		}
		return wire.Frame{Type: wire.RespTable, Payload: wire.EncodeTable(scratch, mergeTables(parts))}, nil

	case wire.CmdDrop:
		name, err := r.String()
		if err != nil {
			return wire.Frame{}, err
		}
		if err := co.Drop(name); err != nil {
			return wire.Frame{}, err
		}
		return wire.Frame{Type: wire.RespOK}, nil

	case wire.CmdList:
		infos, err := co.List()
		if err != nil {
			return wire.Frame{}, err
		}
		return wire.Frame{Type: wire.RespList, Payload: wire.EncodeList(scratch, infos)}, nil

	case wire.CmdInsertStamped:
		return wire.Frame{}, fmt.Errorf("coordinator: a single placement ack cannot describe a sharded append; use CmdShardInsert for per-shard acks")

	case wire.CmdRoot, wire.CmdProve, wire.CmdQueryVerified:
		return wire.Frame{}, fmt.Errorf("coordinator: each shard keeps its own authenticated index; use CmdShardQuery with ShardFlagVerified and verify against the per-shard root vector")

	case wire.CmdShipLog, wire.CmdShipSnapshot:
		return wire.Frame{}, fmt.Errorf("coordinator: replication is per shard; point followers at the shard primaries, not the coordinator")

	default:
		return wire.Frame{}, fmt.Errorf("coordinator: unknown command %#x", f.Type)
	}
}

// serveShardQuery evaluates one shard-framed read and returns every
// shard's sub-answer, in shard order.
func (co *Coordinator) serveShardQuery(name string, flags byte, qs []*ph.EncryptedQuery) ([]Sub, error) {
	switch {
	case flags&wire.ShardFlagFetch != 0:
		if len(qs) != 0 {
			return nil, fmt.Errorf("coordinator: fetch request carries %d queries", len(qs))
		}
		parts, err := co.Fetch(name)
		if err != nil {
			return nil, err
		}
		subs := make([]Sub, len(parts))
		for i, t := range parts {
			subs[i] = Sub{Shard: i, Kind: KindTable, Table: t}
		}
		return subs, nil

	case flags&wire.ShardFlagConj != 0:
		// The coordinator cannot verify (it holds no roots); it relays
		// proofs for the client to check, so no VerifyCheck is passed.
		resps, err := co.QueryConj(name, qs, flags&wire.ShardFlagVerified != 0, nil)
		if err != nil {
			return nil, err
		}
		subs := make([]Sub, len(resps))
		for i, resp := range resps {
			subs[i] = Sub{Shard: i, Kind: KindConj, Conj: resp}
		}
		return subs, nil

	case flags&wire.ShardFlagVerified != 0:
		subs := make([]Sub, co.m.Count)
		for i := range subs {
			subs[i] = Sub{Shard: i, Kind: KindVerified, Verified: make([]*authindex.VerifiedResult, len(qs))}
		}
		// One scatter per query keeps each query's per-shard answers
		// aligned; queries in a batch are few (a statement's predicates).
		for j, q := range qs {
			vrs, err := co.QueryVerified(name, q, nil)
			if err != nil {
				return nil, err
			}
			for i, vr := range vrs {
				subs[i].Verified[j] = vr
			}
		}
		return subs, nil

	default:
		perShard, err := co.QueryBatch(name, qs)
		if err != nil {
			return nil, err
		}
		subs := make([]Sub, len(perShard))
		for i, rs := range perShard {
			if len(rs) != len(qs) {
				return nil, fmt.Errorf("shard %d answered %d batch results for %d queries", i, len(rs), len(qs))
			}
			subs[i] = Sub{Shard: i, Kind: KindResults, Results: rs}
		}
		return subs, nil
	}
}

// decodeInsert parses the shared insert payload shape (CmdInsert /
// CmdInsertStamped / CmdShardInsert): name | count:u32 | tuples.
func decodeInsert(r *wire.Buffer) (string, []ph.EncryptedTuple, error) {
	name, err := r.String()
	if err != nil {
		return "", nil, err
	}
	n, err := r.U32()
	if err != nil {
		return "", nil, err
	}
	tuples := make([]ph.EncryptedTuple, 0, wire.ClampCount(n, r.Remaining()/8))
	for i := uint32(0); i < n; i++ {
		tp, err := wire.DecodeTuple(r)
		if err != nil {
			return "", nil, err
		}
		tuples = append(tuples, tp)
	}
	return name, tuples, nil
}

// padBatchFlags rewrites a CmdQueryBatch payload (name | count |
// queries) into the flagged request shape (name | flags | count |
// queries) so both decode through DecodeQueryRequest. The name is a
// length-prefixed string, so splicing a zero flag byte after it is
// well-defined.
func padBatchFlags(payload []byte) []byte {
	r := wire.NewBuffer(payload)
	if _, err := r.String(); err != nil {
		// Malformed name: return as-is and let the decoder report it.
		return payload
	}
	nameLen := len(payload) - r.Remaining()
	out := make([]byte, 0, len(payload)+1)
	out = append(out, payload[:nameLen]...)
	out = append(out, 0)
	out = append(out, payload[nameLen:]...)
	return out
}

// mergeResults folds per-shard results into one single-server-shaped
// result: tuples concatenated in shard order, positions renumbered in
// merge order. Synthetic positions are deliberate — the real
// coordinates are (shard, offset) pairs, which only the shard-framed
// response preserves — and safe only on the unverified path, where
// decryption reads tuples, never positions.
func mergeResults(results []*ph.Result) *ph.Result {
	merged := &ph.Result{}
	for _, res := range results {
		if res == nil {
			continue
		}
		for _, tp := range res.Tuples {
			merged.Positions = append(merged.Positions, len(merged.Positions))
			merged.Tuples = append(merged.Tuples, tp)
		}
	}
	return merged
}

// mergeTables concatenates per-shard partitions, in shard order, into
// one table.
func mergeTables(parts []*ph.EncryptedTable) *ph.EncryptedTable {
	merged := &ph.EncryptedTable{}
	for _, part := range parts {
		if part == nil {
			continue
		}
		if merged.SchemeID == "" {
			merged.SchemeID = part.SchemeID
			merged.Meta = part.Meta
		}
		merged.Tuples = append(merged.Tuples, part.Tuples...)
	}
	return merged
}
