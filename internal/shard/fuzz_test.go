package shard

import (
	"testing"

	"repro/internal/ph"
	"repro/internal/wire"
)

// FuzzDecodeShardResponse drives the hostile-response decoder with a
// seed corpus of the attacks the codec must survive: truncations,
// flipped and duplicated shard ids, duplicate merge positions, and
// declared-count length bombs. The invariant is total: any byte string
// either decodes into well-formed subs (ascending shard ids inside the
// map, strictly ascending positions) or errors — never panics, never
// over-allocates on a declared count the payload cannot back.
func FuzzDecodeShardResponse(f *testing.F) {
	version, subs := uint64(7), []Sub(nil)
	{
		_, s := sampleResponse()
		subs = s
	}
	valid := EncodeResponse(nil, version, subs)
	f.Add(append([]byte(nil), valid...))
	// Truncations at every structural boundary.
	for _, cut := range []int{0, 4, 8, 12, 16, 17, 21, len(valid) / 2, len(valid) - 1} {
		if cut <= len(valid) {
			f.Add(append([]byte(nil), valid[:cut]...))
		}
	}
	// Flipped (descending) and duplicated shard ids.
	f.Add(EncodeResponse(nil, version, []Sub{subs[1], subs[0]}))
	f.Add(EncodeResponse(nil, version, []Sub{subs[0], subs[0]}))
	// Duplicate and descending positions inside one shard's result.
	for _, positions := range [][]int{{2, 2}, {3, 1}} {
		bad := Sub{Shard: 0, Kind: KindResults, Results: []*ph.Result{{
			Positions: positions,
			Tuples:    []ph.EncryptedTuple{sampleTuple(1), sampleTuple(2)},
		}}}
		f.Add(EncodeResponse(nil, version, []Sub{bad}))
	}
	// Length bombs: hostile declared counts over tiny payloads.
	bomb := wire.AppendU64(nil, version)
	bomb = wire.AppendU32(bomb, 0xFFFFFFFF)
	f.Add(bomb)
	inner := wire.AppendU64(nil, version)
	inner = wire.AppendU32(inner, 1)
	inner = wire.AppendU32(inner, 0)
	inner = wire.AppendU8(inner, KindResults)
	inner = wire.AppendBytes(inner, wire.AppendU32(nil, 0xFFFFFFFF))
	f.Add(inner)
	// Unknown kind byte and trailing garbage.
	unknown := wire.AppendU64(nil, version)
	unknown = wire.AppendU32(unknown, 1)
	unknown = wire.AppendU32(unknown, 0)
	unknown = wire.AppendU8(unknown, 0x7F)
	unknown = wire.AppendBytes(unknown, nil)
	f.Add(unknown)
	f.Add(append(append([]byte(nil), valid...), 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		_, subs, err := DecodeResponse(data, 8)
		if err != nil {
			return
		}
		prev := -1
		for _, sub := range subs {
			if sub.Shard <= prev || sub.Shard >= 8 {
				t.Fatalf("decoder admitted out-of-order shard id %d", sub.Shard)
			}
			prev = sub.Shard
			for _, res := range sub.Results {
				for i, p := range res.Positions {
					if p < 0 || (i > 0 && p <= res.Positions[i-1]) {
						t.Fatalf("decoder admitted malformed positions %v", res.Positions)
					}
				}
			}
		}
	})
}
