package swp

import (
	"crypto/hmac"

	"repro/internal/crypto"
)

// Matcher is the allocation-free form of the server-side match test. It
// precomputes everything derivable from a (Params, Trapdoor) pair once —
// geometry checks, the checksum PRF keyed by the trapdoor's word key — and
// carries the per-evaluation scratch buffers, so Match performs zero heap
// allocations per call. One Matcher amortises that setup over an entire
// table scan, which is exactly the server's hot path: every exact-select
// tests one trapdoor against every cipherword of every tuple.
//
// A Matcher is NOT safe for concurrent use (the scratch buffers and the
// PRF state are reused across calls); hand each worker goroutine its own
// instance via Clone.
type Matcher struct {
	p     Params
	x     []byte      // trapdoor pre-encryption, WordLen bytes
	kprf  *crypto.PRF // checksum PRF keyed by the trapdoor word key
	valid bool        // geometry checks passed at construction

	stream []byte // scratch: candidate stream chunk, n-m bytes
	want   []byte // scratch: checksum implied by the cipherword, m bytes
	got    []byte // scratch: recomputed checksum, m bytes
}

// NewMatcher builds a Matcher for the trapdoor. An ill-formed pair (bad
// trapdoor lengths, bad parameters) yields a Matcher whose Match always
// reports false, mirroring the behaviour of the package-level Match.
func NewMatcher(p Params, td Trapdoor) *Matcher {
	m := &Matcher{p: p}
	if p.Validate() != nil || len(td.X) != p.WordLen || len(td.K) != crypto.KeySize {
		return m
	}
	m.valid = true
	m.x = td.X
	m.kprf = crypto.NewPRF(crypto.KeyFromBytes(td.K))
	nm := p.streamLen()
	m.stream = make([]byte, nm)
	m.want = make([]byte, p.ChecksumLen)
	m.got = make([]byte, p.ChecksumLen)
	return m
}

// Clone returns an independent Matcher for the same trapdoor, with its own
// scratch buffers and PRF state. Use it to run one table scan per worker
// goroutine.
func (m *Matcher) Clone() *Matcher {
	c := &Matcher{p: m.p, x: m.x, valid: m.valid}
	if !m.valid {
		return c
	}
	c.kprf = m.kprf.Clone()
	c.stream = make([]byte, len(m.stream))
	c.want = make([]byte, len(m.want))
	c.got = make([]byte, len(m.got))
	return c
}

// Match reports whether the ciphertext word matches the trapdoor: whether
// C ⊕ X has the form ⟨s, F_k(s)⟩. It uses no secret keys — only trapdoor
// material — and performs no heap allocations. A non-matching word passes
// with probability 2^(-8m) (a false positive).
func (m *Matcher) Match(cipherword []byte) bool {
	if !m.valid || len(cipherword) != m.p.WordLen {
		return false
	}
	nm := len(m.stream)
	for i := 0; i < nm; i++ {
		m.stream[i] = cipherword[i] ^ m.x[i]
	}
	for i := range m.want {
		m.want[i] = cipherword[nm+i] ^ m.x[nm+i]
	}
	m.kprf.ChecksumInto(m.got, m.stream)
	// The checksum comparison must be constant-time: got is PRF output
	// derived from trapdoor key material, and an early-exit bytes.Equal
	// would leak how many leading checksum bytes a crafted cipherword
	// matched, giving an adaptive adversary a byte-at-a-time oracle
	// against F_k. hmac.Equal (crypto/subtle underneath) examines every
	// byte regardless of where the first mismatch falls, and allocates
	// nothing, preserving Match's 0 allocs/op contract.
	return hmac.Equal(m.got, m.want)
}

// Search appends the positions of all cipherwords matching the trapdoor to
// hits and returns the extended slice. Passing a reused hits[:0] keeps a
// whole scan allocation-free once the slice has grown to its working size.
func (m *Matcher) Search(cipherwords [][]byte, hits []int) []int {
	for i, cw := range cipherwords {
		if m.Match(cw) {
			hits = append(hits, i)
		}
	}
	return hits
}
