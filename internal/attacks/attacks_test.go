package attacks

import (
	"testing"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/games"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/schemes/bucket"
	"repro/internal/schemes/damiani"
	"repro/internal/schemes/detph"
)

func factory(name string) games.SchemeFactory {
	return func(s *relation.Schema) (ph.Scheme, error) {
		key, err := crypto.RandomKey()
		if err != nil {
			return nil, err
		}
		switch name {
		case core.SchemeID:
			return core.New(key, s, core.Options{})
		case bucket.SchemeID:
			return bucket.New(key, s, bucket.Options{})
		case damiani.SchemeID:
			return damiani.New(key, s, damiani.Options{})
		default:
			return detph.New(key, s)
		}
	}
}

func TestSalaryTablesMatchPaper(t *testing.T) {
	t1, t2 := SalaryTables()
	if t1.Len() != 2 || t2.Len() != 2 {
		t.Fatal("paper tables have two tuples each")
	}
	if t1.Tuple(0)[0].Integer() != 171 || t1.Tuple(1)[1].Integer() != 1200 {
		t.Fatalf("table 1 content wrong: %v", t1)
	}
	if t2.Tuple(1)[1].Integer() != 4900 {
		t.Fatalf("table 2 content wrong: %v", t2)
	}
}

func TestSalaryPairBreaksDeterministicSchemes(t *testing.T) {
	for _, name := range []string{bucket.SchemeID, damiani.SchemeID, detph.SchemeID} {
		g := games.Def21{Factory: factory(name), Q: 0, Mode: games.Passive}
		res, err := g.Run(SalaryPair{}, 60, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Advantage() < 0.8 {
			t.Errorf("%s: salary-pair advantage %v, expected near 1 (paper §1)", name, res.Advantage())
		}
	}
}

func TestSalaryPairFailsAgainstCore(t *testing.T) {
	g := games.Def21{Factory: factory(core.SchemeID), Q: 0, Mode: games.Passive}
	res, err := g.Run(SalaryPair{}, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Advantage() > 0.25 || res.Advantage() < -0.25 {
		t.Fatalf("salary-pair advantage %v against the paper's construction; expected ≈ 0", res.Advantage())
	}
}

func TestWordLengthPairFailsAgainstPaddedCore(t *testing.T) {
	g := games.Def21{Factory: factory(core.SchemeID), Q: 0, Mode: games.Passive}
	res, err := g.Run(WordLengthPair{}, 300, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Advantage() > 0.25 || res.Advantage() < -0.25 {
		t.Fatalf("word-length advantage %v; padding should hide value lengths", res.Advantage())
	}
}

func TestTheorem21ActiveBreaksCore(t *testing.T) {
	g := games.Def21{Factory: factory(core.SchemeID), Q: 1, Mode: games.Active}
	res, err := g.Run(Theorem21{Rows: 16}, 60, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate() < 0.99 {
		t.Fatalf("Theorem 2.1 adversary should always win with q=1: rate %v", res.Rate())
	}
}

func TestTheorem21PassiveBreaksCore(t *testing.T) {
	g := games.Def21{
		Factory:     factory(core.SchemeID),
		Q:           1,
		Mode:        games.Passive,
		AlexQueries: []relation.Eq{Theorem21Query()},
	}
	res, err := g.Run(Theorem21{Rows: 16}, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate() < 0.99 {
		t.Fatalf("passive Theorem 2.1 adversary should always win with q=1: rate %v", res.Rate())
	}
}

func TestTheorem21HarmlessAtQZero(t *testing.T) {
	// q = 0 is the paper's security claim: the generic adversary must be
	// reduced to guessing in both modes.
	for _, mode := range []games.Mode{games.Passive, games.Active} {
		g := games.Def21{Factory: factory(core.SchemeID), Q: 0, Mode: mode}
		res, err := g.Run(Theorem21{Rows: 16}, 300, 11)
		if err != nil {
			t.Fatal(err)
		}
		if res.Advantage() > 0.25 || res.Advantage() < -0.25 {
			t.Fatalf("%s q=0: advantage %v, expected ≈ 0", mode, res.Advantage())
		}
	}
}

func TestTheorem21BreaksEverySchemeWithOracle(t *testing.T) {
	// The theorem is universal: it must break the comparators too.
	for _, name := range []string{bucket.SchemeID, damiani.SchemeID, detph.SchemeID} {
		g := games.Def21{Factory: factory(name), Q: 1, Mode: games.Active}
		res, err := g.Run(Theorem21{Rows: 16}, 40, 12)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Rate() < 0.9 {
			t.Errorf("%s: Theorem 2.1 adversary rate %v with q=1", name, res.Rate())
		}
	}
}

func TestHospitalInferenceBeatsBlindGuess(t *testing.T) {
	rep, err := HospitalInference(factory(core.SchemeID), 600, 12, 21)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QueryIDRate < 0.5 {
		t.Fatalf("query identification rate %v; size fingerprinting should mostly work", rep.QueryIDRate)
	}
	if rep.MeanAbsError >= rep.BlindError {
		t.Fatalf("attack error %v not better than blind %v — no leakage demonstrated",
			rep.MeanAbsError, rep.BlindError)
	}
	if rep.MeanAbsError > 0.05 {
		t.Fatalf("attack error %v too large; intersection should estimate the rate closely", rep.MeanAbsError)
	}
}

func TestHospitalInferenceValidation(t *testing.T) {
	if _, err := HospitalInference(factory(core.SchemeID), 0, 5, 1); err == nil {
		t.Fatal("zero patients accepted")
	}
	if _, err := HospitalInference(factory(core.SchemeID), 100, 0, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestJohnAttackRecoversEverything(t *testing.T) {
	rep, err := JohnAttack(factory(core.SchemeID), 300, 12, 31)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HospitalRate < 0.9 {
		t.Fatalf("hospital recovery rate %v; active attack should almost always succeed", rep.HospitalRate)
	}
	if rep.OutcomeRate < 0.9 {
		t.Fatalf("outcome recovery rate %v", rep.OutcomeRate)
	}
	if rep.OracleCalls != 5 {
		t.Fatalf("oracle calls = %d, want 5 (name + 3 hospitals + outcome)", rep.OracleCalls)
	}
}

func TestJohnAttackValidation(t *testing.T) {
	if _, err := JohnAttack(factory(core.SchemeID), -1, 5, 1); err == nil {
		t.Fatal("negative patients accepted")
	}
}

func TestMatchBySizeAssignsGreedily(t *testing.T) {
	observed := [][]int{make([]int, 40), make([]int, 8), make([]int, 20), make([]int, 30)}
	expected := []float64{20, 30, 50, 8} // h1, h2, h3, fatal of n=100
	assign := matchBySize(observed, expected)
	want := []int{2, 3, 0, 1}
	for i := range want {
		if assign[i] != want[i] {
			t.Fatalf("assign = %v, want %v", assign, want)
		}
	}
}

func TestIntersectCount(t *testing.T) {
	if n := intersectCount([]int{1, 3, 5, 7}, []int{3, 4, 5, 6, 7}); n != 3 {
		t.Fatalf("intersectCount = %d, want 3", n)
	}
	if n := intersectCount(nil, []int{1}); n != 0 {
		t.Fatalf("intersectCount with empty = %d", n)
	}
}
