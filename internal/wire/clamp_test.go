package wire

import (
	"math"
	"testing"
)

func TestClampCount(t *testing.T) {
	cases := []struct {
		declared uint32
		possible int
		want     int
	}{
		{0, 1024, 0},
		{5, 1024, 5},
		{1024, 1024, 1024},
		{1025, 1024, 1024},
		{math.MaxUint32, 1024, 1024},
		// A hostile count must never win against a small payload bound.
		{math.MaxUint32, 3, 3},
		// A negative bound (e.g. Remaining()/8 after an underflowing
		// subtraction upstream) clamps to zero, never panics make().
		{7, -1, 0},
		{7, 0, 0},
		// Counts above MaxInt32 must not wrap negative via int().
		{math.MaxInt32 + 1, math.MaxInt32, math.MaxInt32},
	}
	for _, c := range cases {
		if got := ClampCount(c.declared, c.possible); got != c.want {
			t.Errorf("ClampCount(%d, %d) = %d, want %d", c.declared, c.possible, got, c.want)
		}
	}
}

// TestClampCountIsAllocationSafe pins the property the clampalloc
// analyzer assumes: whatever the declared count, the hint is bounded by
// the caller-supplied possible value, so make() with the result cannot
// be a hostile allocation bomb.
func TestClampCountIsAllocationSafe(t *testing.T) {
	for _, declared := range []uint32{0, 1, 1 << 10, 1 << 20, math.MaxUint32} {
		for _, possible := range []int{-5, 0, 1, 64, 1024} {
			got := ClampCount(declared, possible)
			if got < 0 {
				t.Fatalf("ClampCount(%d, %d) = %d is negative", declared, possible, got)
			}
			if possible >= 0 && got > possible {
				t.Fatalf("ClampCount(%d, %d) = %d exceeds possible", declared, possible, got)
			}
		}
	}
}
