// Package scanshare implements cooperative scan sharing (layer 14 of
// DESIGN.md): one ψ pass over a table serves every trapdoor that is
// waiting on it. The paper's server-side search is inherently a full
// pass per query token, so N concurrent cold queries on one table pay
// N scans of the same tuples — the last super-linear cost under heavy
// traffic once the result cache absorbs repeats. This layer coalesces
// them: the first cold query on a table starts a pass; every further
// cold query that arrives while the pass runs is admitted as a *rider*
// at the next shard boundary.
//
// Admission protocol: a pass walks the table in fixed-size shards with
// a cyclic cursor. A rider admitted at cursor c is scanned over shards
// c, c+1, …, then wraps to 0, …, c−1 — a classic cooperative-scan
// late join — so every rider sees each of its tuples exactly once, in
// two ascending runs that reassemble into one ascending position list
// byte-identical to core.EvaluateSerial's. Riders carrying the *same*
// trapdoor bytes over the same snapshot don't even ride twice: the
// second query attaches to the first rider's group and shares its
// result (trapdoors are deterministic per plaintext word, so this is
// pure recomputation avoidance, same argument as the result cache).
//
// Budget accounting: the pass goroutine draws ONE allotment from the
// process-wide scheduler budget (internal/sched) for its whole
// lifetime, however many riders it serves — where the per-query path
// drew one per query. Within a shard, the pass fans each chunk out via
// core.ShardWindow with one matcher clone per (rider, worker slot), so
// a single-rider pass is exactly as parallel as core.Evaluate.
//
// Snapshot discipline: a rider hands the pass an immutable snapshot
// (slice header + meta). Stored tuples are append-only — storage never
// mutates Tuples[0:len] in place — so the pass scans without locks.
// Riders of different snapshot lengths of the same table may share a
// pass: each rider's coverage is clipped to its own n, and the cursor
// domain is the maximum over active riders.
//
// Leakage: sharing reveals nothing to the server it could not already
// see. Which trapdoors are in flight at once — co-arrival timing — is
// observable from the request stream by construction; the per-rider
// position sets a pass produces are exactly the access pattern each
// query reveals on its own.
package scanshare

import (
	"crypto/sha256"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/ph"
	"repro/internal/sched"
	"repro/internal/swp"
)

// DefaultShardSize is the pass's admission granularity in tuples: small
// enough that a late joiner waits at most one shard scan before riding,
// large enough that the per-boundary bookkeeping (one mutex acquisition)
// is noise. It matches core's parallelThreshold, which is also the
// inline-scan cutoff below which sharing a pass cannot pay for itself.
const DefaultShardSize = 1024

// Snapshot is the immutable view of a table a rider scans: the slice
// header and metadata cut under whatever lock makes them stable. The
// tuples must not be mutated in place for the life of the scan (storage
// guarantees this: appends only grow or reallocate the slice).
type Snapshot struct {
	SchemeID string
	Meta     []byte
	Tuples   []ph.EncryptedTuple
}

// Stats are the sharer's monotonic counters.
type Stats struct {
	// Passes counts scan passes started (one goroutine, one budget
	// allotment each).
	Passes uint64
	// Riders counts rider groups registered — distinct (trapdoor,
	// snapshot-length) admissions, whether the group started its own
	// pass or joined a running one.
	Riders uint64
	// Attached counts queries answered by attaching to an existing
	// rider group carrying the same trapdoor (no extra scan work).
	Attached uint64
	// LateJoins counts rider groups admitted after their pass had
	// already scanned at least one shard (they wrap around).
	LateJoins uint64
	// Shards counts shard scans performed (each tests one shard of
	// tuples against all active matchers).
	Shards uint64
	// Inline counts queries served by a direct inline scan because the
	// snapshot was below the sharing threshold.
	Inline uint64
	// Declined counts queries the sharer could not serve (scheme not
	// shareable); the caller falls back to the per-query path.
	Declined uint64
}

// Sharer coalesces concurrent full-table scans per table. One Sharer
// serves a whole store; passes are keyed by an opaque per-table key
// (pointer identity of the store's table entry).
type Sharer struct {
	shardSize int

	mu     sync.Mutex
	passes map[any]*pass
	stats  Stats

	// boundary, when non-nil, runs on the pass goroutine at every shard
	// boundary before admission, outside the sharer lock — a test seam
	// for choreographing late joins. Immutable after construction.
	boundary func(key any, visited int)
}

// New creates a Sharer with the given shard size; sizes below 1 select
// DefaultShardSize.
func New(shardSize int) *Sharer {
	if shardSize < 1 {
		shardSize = DefaultShardSize
	}
	return &Sharer{shardSize: shardSize, passes: make(map[any]*pass)}
}

// Stats returns a snapshot of the sharer's counters.
func (s *Sharer) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// rider is one trapdoor riding a pass: a matcher per worker slot, its
// own coverage bookkeeping, and the waiters sharing its result. All
// fields except done/result are touched only by the pass goroutine
// after admission; registration fields are written before the rider is
// published under the sharer lock.
type rider struct {
	digest [sha256.Size]byte
	tuples []ph.EncryptedTuple
	n      int
	base   *swp.Matcher

	// shards is ceil(n/shardSize): the number of in-domain shards this
	// rider must cover. seen guards against double-scanning a shard.
	shards  int
	seen    []bool
	covered int
	// joined is the cursor at admission; hits from shards below it land
	// in hitsLow (they are scanned after the wrap), the rest in
	// hitsHigh. The final result is hitsLow ++ hitsHigh — ascending.
	joined   int
	hitsLow  []int
	hitsHigh []int
	// matchers[slot] scans worker slot's chunks (slot 0 is base);
	// slotHits[slot] is that slot's reusable per-shard hit buffer.
	matchers []*swp.Matcher
	slotHits [][]int

	result []int
	done   chan struct{}
}

// pass is one table's running shared scan. pending and the group map are
// guarded by the Sharer's mutex; active and all rider scan state belong
// to the pass goroutine alone.
type pass struct {
	sh  *Sharer
	key any

	pending []*rider
	// groups indexes incomplete riders by trapdoor digest for dedup
	// attach; entries are removed (under the sharer lock) when the
	// rider's result is ready.
	groups map[[sha256.Size]byte]*rider

	active []*rider
}

// Scan evaluates q against the snapshot through the table's shared pass,
// returning the ascending match positions. ok=false means the sharer
// cannot serve this scheme and the caller must fall back to the
// per-query evaluator; err is definitive (the per-query path would fail
// the same way). Scan blocks until the rider's coverage completes; the
// returned slice is shared between attached queries and must not be
// mutated by callers.
func (s *Sharer) Scan(key any, snap Snapshot, q *ph.EncryptedQuery) ([]int, bool, error) {
	if key == nil || q == nil || snap.SchemeID != core.SchemeID || q.SchemeID != snap.SchemeID {
		s.mu.Lock()
		s.stats.Declined++
		s.mu.Unlock()
		return nil, false, nil
	}
	base, err := core.TokenMatcher(snap.Meta, q.Token)
	if err != nil {
		return nil, true, err
	}
	n := len(snap.Tuples)
	if n < s.shardSize {
		// Below the sharing threshold a pass cannot pay for itself (core
		// would not even parallelise a scan this small): serve inline on
		// the caller's goroutine, like core's small-table path.
		hits := core.MatchTuples(snap.Tuples, 0, base, make([]int, 0, core.PositionsCap(n)))
		s.mu.Lock()
		s.stats.Inline++
		s.mu.Unlock()
		return hits, true, nil
	}
	d := sha256.Sum256(q.Token)

	s.mu.Lock()
	p := s.passes[key]
	if p != nil {
		if g := p.groups[d]; g != nil && g.n == n {
			s.stats.Attached++
			s.mu.Unlock()
			<-g.done
			return g.result, true, nil
		}
	}
	r := &rider{
		digest: d,
		tuples: snap.Tuples,
		n:      n,
		base:   base,
		shards: (n + s.shardSize - 1) / s.shardSize,
		done:   make(chan struct{}),
	}
	r.seen = make([]bool, r.shards)
	s.stats.Riders++
	start := false
	if p == nil {
		p = &pass{sh: s, key: key, groups: make(map[[sha256.Size]byte]*rider)}
		s.passes[key] = p
		s.stats.Passes++
		start = true
	}
	p.pending = append(p.pending, r)
	p.groups[d] = r
	s.mu.Unlock()

	if start {
		go p.run()
	}
	<-r.done
	return r.result, true, nil
}

// run is the pass goroutine: admit at boundaries, scan one shard for
// all active riders, retire covered riders, exit when idle. It draws
// one scheduler-budget allotment for its whole lifetime — THE property
// that makes N coalesced queries cost one query's worth of workers.
func (p *pass) run() {
	budget := sched.Process()
	workers := budget.Acquire(runtime.GOMAXPROCS(0))
	defer budget.Release(workers)

	cursor, visited := 0, 0
	var finished []*rider
	var shardsDone uint64
	for {
		if p.sh.boundary != nil {
			p.sh.boundary(p.key, visited)
		}
		// Yield once per boundary, while every worker slot is parked: a
		// shard scan monopolises the Ps with short-lived chunk goroutines
		// (each lives in a P's runnext slot), which can starve queued
		// queries out of ever reaching registration — serialising the
		// very herd this layer exists to coalesce. One Gosched here hands
		// the free Ps to whoever went runnable during the last shard, so
		// co-arrived queries register (and attach or late-join) instead
		// of waiting for the whole pass to retire.
		runtime.Gosched()
		p.sh.mu.Lock()
		p.sh.stats.Shards += shardsDone
		shardsDone = 0
		// Publish results of riders that completed during the last
		// shard: unlink their groups so a same-trapdoor query arriving
		// from now on starts fresh against the current snapshot.
		for _, r := range finished {
			if p.groups[r.digest] == r {
				delete(p.groups, r.digest)
			}
			close(r.done)
		}
		finished = finished[:0]
		// Admit pending riders at this shard boundary.
		for _, r := range p.pending {
			r.joined = cursor
			if visited > 0 {
				p.sh.stats.LateJoins++
			}
			r.admit(workers)
			p.active = append(p.active, r)
		}
		p.pending = p.pending[:0]
		if len(p.active) == 0 {
			// Idle: no active riders and (checked under the same lock)
			// no pending ones — the pass retires. A query racing this
			// either found the pass in the map and appended to pending
			// before we took the lock, or finds the map empty and
			// starts a fresh pass; it can never enqueue on a retired
			// pass.
			delete(p.sh.passes, p.key)
			p.sh.mu.Unlock()
			return
		}
		// The cursor cycles over the widest active rider's shard count;
		// narrower riders simply skip out-of-domain boundaries.
		domain := 0
		for _, r := range p.active {
			domain = max(domain, r.shards)
		}
		p.sh.mu.Unlock()

		if cursor >= domain {
			cursor = 0
		}
		if p.scanShard(cursor, workers) {
			shardsDone++
		}
		visited++

		rest := p.active[:0]
		for _, r := range p.active {
			if r.covered == r.shards {
				r.finish()
				finished = append(finished, r)
			} else {
				rest = append(rest, r)
			}
		}
		p.active = rest
		cursor++
	}
}

// admit provisions a rider's per-slot scan state for a pass running
// with the given worker count. Called by the pass goroutine (under the
// sharer lock, but the state is pass-private).
func (r *rider) admit(workers int) {
	r.matchers = make([]*swp.Matcher, workers)
	r.matchers[0] = r.base
	for w := 1; w < workers; w++ {
		r.matchers[w] = r.base.Clone()
	}
	r.slotHits = make([][]int, workers)
	for w := range r.slotHits {
		r.slotHits[w] = make([]int, 0, 8)
	}
	r.hitsHigh = make([]int, 0, core.PositionsCap(r.n))
}

// scanShard tests shard `cursor` of every active rider that still needs
// it against all that rider's matchers, fanning chunks across the
// pass's worker slots. Chunk hits are collected per (rider, slot) and
// appended in slot order, so each rider's per-shard hits are ascending.
// It reports whether any rider was actually scanned.
func (p *pass) scanShard(cursor, workers int) bool {
	size := p.sh.shardSize
	lo := cursor * size
	var elig []*rider
	hi := lo
	for _, r := range p.active {
		if cursor < r.shards && !r.seen[cursor] {
			elig = append(elig, r)
			hi = max(hi, min(r.n, lo+size))
		}
	}
	if len(elig) == 0 {
		return false
	}
	if workers < 2 {
		for _, r := range elig {
			rhi := min(hi, r.n)
			r.appendShard(cursor, core.MatchTuples(r.tuples[lo:rhi], lo, r.matchers[0], r.slotHits[0][:0]))
		}
	} else {
		// A short final shard may use fewer slots than workers; clear
		// every buffer first so unvisited slots contribute nothing.
		for _, r := range elig {
			for slot := range r.slotHits {
				r.slotHits[slot] = r.slotHits[slot][:0]
			}
		}
		core.ShardWindow(workers, lo, hi, func(clo, chi, slot int) {
			for _, r := range elig {
				rhi := min(chi, r.n)
				if clo >= rhi {
					continue
				}
				r.slotHits[slot] = core.MatchTuples(r.tuples[clo:rhi], clo, r.matchers[slot], r.slotHits[slot][:0])
			}
		})
		for _, r := range elig {
			for slot := 0; slot < workers; slot++ {
				r.appendShard(cursor, r.slotHits[slot])
			}
		}
	}
	for _, r := range elig {
		r.seen[cursor] = true
		r.covered++
	}
	return true
}

// appendShard files one shard's (or chunk's) ascending hits into the
// rider's pre- or post-wrap run.
func (r *rider) appendShard(cursor int, hits []int) {
	if cursor < r.joined {
		r.hitsLow = append(r.hitsLow, hits...)
	} else {
		r.hitsHigh = append(r.hitsHigh, hits...)
	}
}

// finish assembles the rider's final ascending position list. The low
// run (shards before the admission cursor, scanned after the wrap) goes
// first; never-nil so callers and caches see the same shape
// EvaluateSerial produces.
func (r *rider) finish() {
	out := make([]int, 0, len(r.hitsLow)+len(r.hitsHigh))
	out = append(out, r.hitsLow...)
	out = append(out, r.hitsHigh...)
	r.result = out
}
