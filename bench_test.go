package repro

import (
	"testing"

	"repro/internal/attacks"
	"repro/internal/authindex"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/games"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/swp"
	"repro/internal/workload"
)

// One benchmark per experiment of DESIGN.md §3. Each iteration regenerates
// the experiment at reduced size; run cmd/experiments for the full tables.

func BenchmarkE1SalaryDistinguisher(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE1(40, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2HospitalInference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE2(200, 4, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3JohnAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE3(200, 4, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4Theorem21(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE4(30, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5FalsePositives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE5(20000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6Performance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE6([]int{500}, 10, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7Homomorphism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE7(2, 5, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8AuthIndex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE8([]int{1000}, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9FrequencyAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE9(300, 3, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10VarlenAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE10(200, 30, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11LeakageAccumulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE11(300, 4, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12Communication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE12(300, 10, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks for the hot paths underlying the experiments.

func benchScheme(b *testing.B) *core.PH {
	b.Helper()
	key, err := crypto.RandomKey()
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.New(key, workload.EmployeeSchema(), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchTable(b *testing.B, n int) *relation.Table {
	b.Helper()
	t, err := workload.Employees(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	return t
}

func BenchmarkEncryptTable1k(b *testing.B) {
	s := benchScheme(b)
	t := benchTable(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.EncryptTable(t); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(t.Len()), "tuples/op")
}

func BenchmarkTrapdoor(b *testing.B) {
	s := benchScheme(b)
	q := relation.Eq{Column: "dept", Value: relation.String("HR")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.EncryptQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerSearch1k(b *testing.B) {
	s := benchScheme(b)
	t := benchTable(b, 1000)
	ct, err := s.EncryptTable(t)
	if err != nil {
		b.Fatal(err)
	}
	eq, err := s.EncryptQuery(relation.Eq{Column: "dept", Value: relation.String("HR")})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ph.Apply(ct, eq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptResult(b *testing.B) {
	s := benchScheme(b)
	t := benchTable(b, 1000)
	ct, err := s.EncryptTable(t)
	if err != nil {
		b.Fatal(err)
	}
	q := relation.Eq{Column: "dept", Value: relation.String("HR")}
	eq, err := s.EncryptQuery(q)
	if err != nil {
		b.Fatal(err)
	}
	res, err := ph.Apply(ct, eq)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.DecryptResult(q, res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSWPEncryptWord(b *testing.B) {
	key, _ := crypto.RandomKey()
	s, err := swp.New(key, swp.Params{WordLen: 11, ChecksumLen: 2})
	if err != nil {
		b.Fatal(err)
	}
	word := []byte("MontgomeryN")
	docID := []byte("doc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.EncryptWord(docID, uint64(i), word); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSWPMatch(b *testing.B) {
	key, _ := crypto.RandomKey()
	p := swp.Params{WordLen: 11, ChecksumLen: 2}
	s, err := swp.New(key, p)
	if err != nil {
		b.Fatal(err)
	}
	word := []byte("MontgomeryN")
	cw, err := s.EncryptWord([]byte("doc"), 0, word)
	if err != nil {
		b.Fatal(err)
	}
	td, err := s.NewTrapdoor(word)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !swp.Match(p, cw, td) {
			b.Fatal("match failed")
		}
	}
}

func BenchmarkMerkleBuild1k(b *testing.B) {
	s := benchScheme(b)
	ct, err := s.EncryptTable(benchTable(b, 1000))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		authindex.Build(ct)
	}
}

func BenchmarkMerkleVerify(b *testing.B) {
	s := benchScheme(b)
	ct, err := s.EncryptTable(benchTable(b, 1000))
	if err != nil {
		b.Fatal(err)
	}
	tree := authindex.Build(ct)
	root := tree.Root()
	proofs, err := tree.Prove([]int{500})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := authindex.Verify(root, 1000, ct.Tuples[500], proofs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDef21GameTrial(b *testing.B) {
	g := games.Def21{Factory: bench.MustFactory(core.SchemeID), Q: 0, Mode: games.Passive}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Run(attacks.SalaryPair{}, 1, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
