package stats

import (
	"hash/fnv"
	"sync"
)

// QuerySketch is the planner's per-table selectivity sketch: a cheap,
// bounded record of how selective each observed search token was, plus a
// running prior for tokens never seen before. The server cannot inspect
// plaintext columns — trapdoors are opaque — so the sketch keys on a
// 64-bit token digest and buckets its priors by token word length, which
// is the per-column signal ciphertext actually carries (in PerColumnWidth
// layouts the word length identifies the column group; in the fixed
// layout there is a single bucket). Everything recorded is a function of
// the access pattern the scheme already reveals per query (ph.Result
// carries hit positions on the wire), so the sketch learns nothing Eve
// does not hold by construction.
//
// Feeding: storage observes every scan it runs — full scans record a
// token's marginal selectivity, narrowed scans (conjunct evaluated only
// on surviving candidates) record its selectivity conditioned on the
// conjuncts before it, which is exactly the quantity a planner ordering
// conjuncts wants. Appends need no sketch update: estimates are
// fractions of the positions scanned, and the table cardinality they
// scale against belongs to the table entry, not the sketch.
type QuerySketch struct {
	mu sync.Mutex
	// byToken maps token digest -> aggregate observations.
	byToken map[uint64]tokenStat
	// ring holds insertion order for bounded eviction.
	ring []uint64
	next int
	// byLen aggregates per word-length totals for the prior.
	byLen map[int]lenStat
}

// tokenStat aggregates the observations for one token digest.
type tokenStat struct {
	hits    uint64
	scanned uint64
}

// lenStat aggregates observations per token word length.
type lenStat struct {
	hits    uint64
	scanned uint64
}

// maxTrackedTokens bounds the sketch's footprint per table. When full,
// the oldest tracked token is evicted ring-buffer style; a workload's hot
// tokens re-enter on their next scan.
const maxTrackedTokens = 4096

// defaultPrior is the selectivity assumed for a token with no
// observations at all (no token seen, not even for its word length).
// Exact selects usually return a small fraction of the table, but the
// prior is deliberately pessimistic so an unknown conjunct is never
// ordered ahead of one the sketch has actually measured as selective.
const defaultPrior = 0.5

// NewQuerySketch creates an empty sketch.
func NewQuerySketch() *QuerySketch {
	return &QuerySketch{
		byToken: make(map[uint64]tokenStat),
		byLen:   make(map[int]lenStat),
	}
}

// TokenDigest derives the sketch key for a search token: FNV-1a over the
// scheme ID and the opaque token bytes. It is a grouping key, not a
// security boundary — the server already holds the full token.
func TokenDigest(schemeID string, token []byte) uint64 {
	h := fnv.New64a()
	h.Write([]byte(schemeID))
	h.Write([]byte{0})
	h.Write(token)
	return h.Sum64()
}

// Observe records one scan of a token: it tested scanned positions and
// hit hits of them. wordLen buckets the observation for the per-length
// prior. Zero-scan observations are ignored.
func (s *QuerySketch) Observe(digest uint64, wordLen, hits, scanned int) {
	if scanned <= 0 || hits < 0 || hits > scanned {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, known := s.byToken[digest]
	st.hits += uint64(hits)
	st.scanned += uint64(scanned)
	if !known {
		if len(s.ring) < maxTrackedTokens {
			s.ring = append(s.ring, digest)
		} else {
			delete(s.byToken, s.ring[s.next])
			s.ring[s.next] = digest
			s.next = (s.next + 1) % maxTrackedTokens
		}
	}
	s.byToken[digest] = st
	ls := s.byLen[wordLen]
	ls.hits += uint64(hits)
	ls.scanned += uint64(scanned)
	s.byLen[wordLen] = ls
}

// Estimate returns the estimated selectivity of a token in [0, 1] and
// whether the estimate comes from direct observations of this token
// (known) rather than from the per-length prior.
func (s *QuerySketch) Estimate(digest uint64, wordLen int) (sel float64, known bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.byToken[digest]; ok && st.scanned > 0 {
		return float64(st.hits) / float64(st.scanned), true
	}
	return s.priorLocked(wordLen), false
}

// Prior returns the selectivity assumed for an unobserved token of the
// given word length: the mean observed selectivity of that length bucket,
// or defaultPrior when the bucket is empty.
func (s *QuerySketch) Prior(wordLen int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.priorLocked(wordLen)
}

// priorLocked computes Prior under s.mu.
func (s *QuerySketch) priorLocked(wordLen int) float64 {
	if ls, ok := s.byLen[wordLen]; ok && ls.scanned > 0 {
		return float64(ls.hits) / float64(ls.scanned)
	}
	return defaultPrior
}
