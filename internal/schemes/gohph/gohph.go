// Package gohph is the second instantiation of the paper's §3 construction,
// exercising its generality claim: "One such scheme has been proposed by
// Song et al. [...] **but others can be used instead**." Here the
// searchable-encryption building block is Goh's Z-IDX (Eu-Jin Goh, "Secure
// Indexes", ePrint 2003/216): every tuple is sealed with a strong cipher
// and accompanied by a per-document Bloom filter of PRF-tagged words.
//
// For word W the client derives the codeword x = PRF_code(W); the trapdoor
// *is* x. Per document the k filter positions of W are PRF_x(docID ‖ i),
// so the server — holding x — recomputes them and tests the filter, while
// filters of documents not containing W reveal nothing about W (positions
// are salted by the document ID). Like SWP, membership tests admit false
// positives (the classic Bloom rate (1 − e^(−kn/m))^k); the client filters
// them, exactly as the paper prescribes for SWP.
//
// Word layout reuses the construction's convention: encoded value followed
// by the one-byte attribute identifier. No padding is needed — Bloom tags
// hash words of any length — which makes gohph also an interesting
// geometry contrast to internal/core.
package gohph

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"math/big"

	"repro/internal/bloom"
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
)

// SchemeID is the evaluator-registry name of the Goh instantiation.
const SchemeID = "goh-ph"

// Options tunes the scheme.
type Options struct {
	// FPRate is the target per-document false-positive rate of the Bloom
	// filter. Zero selects DefaultFPRate.
	FPRate float64
}

// DefaultFPRate dimensions the per-tuple filters for one false tuple per
// ~65k membership tests, matching the SWP default m=2 checksum.
const DefaultFPRate = 1.0 / 65536

// docIDLen is the per-tuple document identifier length.
const docIDLen = 16

// codewordLen is the byte length of word codewords (= trapdoors).
const codewordLen = crypto.KeySize

// Scheme implements ph.Scheme with Goh's secure indexes.
type Scheme struct {
	schema *relation.Schema
	ids    []byte // column -> identifier byte (appended to words)
	sealer *crypto.Sealer
	code   *crypto.PRF // codeword PRF over words
	m      uint32      // filter bits
	k      int         // hash functions
}

// New derives an instance for the schema from a master key.
func New(master crypto.Key, schema *relation.Schema, opts Options) (*Scheme, error) {
	fp := opts.FPRate
	if fp == 0 {
		fp = DefaultFPRate
	}
	m, k, err := bloom.OptimalParams(schema.NumColumns(), fp)
	if err != nil {
		return nil, fmt.Errorf("gohph: %w", err)
	}
	if schema.NumColumns() > 255 {
		return nil, fmt.Errorf("gohph: schema %q has %d columns; at most 255 supported", schema.Name, schema.NumColumns())
	}
	root := crypto.NewPRF(master)
	sealer, err := crypto.NewSealer(root.DeriveKey("gohph/seal", nil))
	if err != nil {
		return nil, err
	}
	s := &Scheme{
		schema: schema,
		ids:    make([]byte, schema.NumColumns()),
		sealer: sealer,
		code:   crypto.NewPRF(root.DeriveKey("gohph/code", nil)),
		m:      m,
		k:      k,
	}
	for i := range schema.Columns {
		s.ids[i] = byte(i)
	}
	return s, nil
}

// Name implements ph.Scheme.
func (s *Scheme) Name() string { return SchemeID }

// Schema implements ph.Scheme.
func (s *Scheme) Schema() *relation.Schema { return s.schema }

// FilterParams returns the public Bloom geometry (bits, hash functions).
func (s *Scheme) FilterParams() (m uint32, k int) { return s.m, s.k }

// codeword derives x = PRF_code(value ‖ attr-id) for a column value.
func (s *Scheme) codeword(col int, v relation.Value) []byte {
	return s.code.SumStrings(codewordLen, []byte(v.Encode()), s.ids[col:col+1])
}

// positions computes the k filter positions of a codeword in a document.
// It is a package-level function of (codeword, docID) only, because the
// server must recompute it from a trapdoor.
func positions(codeword, docID []byte, m uint32, k int) []uint32 {
	prf := crypto.NewPRF(crypto.KeyFromBytes(codeword))
	out := make([]uint32, k)
	var idx [4]byte
	for i := 0; i < k; i++ {
		binary.BigEndian.PutUint32(idx[:], uint32(i))
		h := prf.SumStrings(4, docID, idx[:])
		out[i] = binary.BigEndian.Uint32(h) % m
	}
	return out
}

// EncryptTable implements E: seal each tuple, build its salted Bloom index,
// emit in random order.
func (s *Scheme) EncryptTable(t *relation.Table) (*ph.EncryptedTable, error) {
	if !t.Schema().Equal(s.schema) {
		return nil, fmt.Errorf("gohph: table schema %q does not match instance schema %q",
			t.Schema().Name, s.schema.Name)
	}
	et := &ph.EncryptedTable{
		SchemeID: SchemeID,
		Meta:     encodeMeta(s.m, s.k),
		Tuples:   make([]ph.EncryptedTuple, 0, t.Len()),
	}
	order, err := randomPerm(t.Len())
	if err != nil {
		return nil, err
	}
	for _, ti := range order {
		etp, err := s.encryptTuple(t.Tuple(ti))
		if err != nil {
			return nil, err
		}
		et.Tuples = append(et.Tuples, etp)
	}
	return et, nil
}

// encryptTuple seals one tuple and builds its index filter.
func (s *Scheme) encryptTuple(tp relation.Tuple) (ph.EncryptedTuple, error) {
	docID := make([]byte, docIDLen)
	if _, err := rand.Read(docID); err != nil {
		return ph.EncryptedTuple{}, fmt.Errorf("gohph: drawing document id: %w", err)
	}
	blob, err := s.sealer.Seal(relation.EncodeTuple(tp))
	if err != nil {
		return ph.EncryptedTuple{}, fmt.Errorf("gohph: sealing tuple: %w", err)
	}
	filter, err := bloom.New(s.m)
	if err != nil {
		return ph.EncryptedTuple{}, err
	}
	for col, v := range tp {
		x := s.codeword(col, v)
		for _, pos := range positions(x, docID, s.m, s.k) {
			filter.Set(pos)
		}
	}
	return ph.EncryptedTuple{ID: docID, Blob: blob, Words: [][]byte{filter.Bytes()}}, nil
}

// EncryptQuery implements Eq: the token is the codeword of the queried
// value.
func (s *Scheme) EncryptQuery(q relation.Eq) (*ph.EncryptedQuery, error) {
	if err := q.Validate(s.schema); err != nil {
		return nil, err
	}
	col := s.schema.ColumnIndex(q.Column)
	return &ph.EncryptedQuery{SchemeID: SchemeID, Token: s.codeword(col, q.Value)}, nil
}

// DecryptTable implements D on whole tables.
func (s *Scheme) DecryptTable(ct *ph.EncryptedTable) (*relation.Table, error) {
	if ct.SchemeID != SchemeID {
		return nil, fmt.Errorf("gohph: cannot decrypt table of scheme %q", ct.SchemeID)
	}
	t := relation.NewTable(s.schema)
	for i, etp := range ct.Tuples {
		tp, err := s.openTuple(etp)
		if err != nil {
			return nil, fmt.Errorf("gohph: decrypting tuple %d: %w", i, err)
		}
		if err := t.Insert(tp); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// DecryptResult opens the returned tuples and filters Bloom false
// positives.
func (s *Scheme) DecryptResult(q relation.Eq, r *ph.Result) (*relation.Table, error) {
	t := relation.NewTable(s.schema)
	for i, etp := range r.Tuples {
		tp, err := s.openTuple(etp)
		if err != nil {
			return nil, fmt.Errorf("gohph: decrypting result tuple %d: %w", i, err)
		}
		ok, err := q.Eval(s.schema, tp)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // Bloom false positive; drop
		}
		if err := t.Insert(tp); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// openTuple unseals one tuple.
func (s *Scheme) openTuple(etp ph.EncryptedTuple) (relation.Tuple, error) {
	pt, err := s.sealer.Open(etp.Blob)
	if err != nil {
		return nil, err
	}
	return relation.DecodeTuple(pt)
}

// Evaluate is ψ: key-free Bloom membership tests per tuple.
func Evaluate(et *ph.EncryptedTable, q *ph.EncryptedQuery) (*ph.Result, error) {
	m, k, err := decodeMeta(et.Meta)
	if err != nil {
		return nil, err
	}
	if len(q.Token) != codewordLen {
		return nil, fmt.Errorf("gohph: trapdoor must be %d bytes, got %d", codewordLen, len(q.Token))
	}
	var matched []int
	for i, etp := range et.Tuples {
		if len(etp.Words) != 1 {
			return nil, fmt.Errorf("gohph: tuple %d carries %d index blobs, want 1", i, len(etp.Words))
		}
		filter, err := bloom.FromBytes(etp.Words[0], m)
		if err != nil {
			return nil, fmt.Errorf("gohph: tuple %d: %w", i, err)
		}
		hit := true
		for _, pos := range positions(q.Token, etp.ID, m, k) {
			if !filter.Test(pos) {
				hit = false
				break
			}
		}
		if hit {
			matched = append(matched, i)
		}
	}
	return ph.SelectPositions(et, matched), nil
}

func init() {
	ph.RegisterEvaluator(SchemeID, Evaluate)
}

// encodeMeta serialises the public filter geometry.
func encodeMeta(m uint32, k int) []byte {
	meta := make([]byte, 6)
	binary.BigEndian.PutUint32(meta[0:], m)
	binary.BigEndian.PutUint16(meta[4:], uint16(k))
	return meta
}

// decodeMeta parses the filter geometry.
func decodeMeta(meta []byte) (m uint32, k int, err error) {
	if len(meta) != 6 {
		return 0, 0, fmt.Errorf("gohph: table meta must be 6 bytes, got %d", len(meta))
	}
	m = binary.BigEndian.Uint32(meta[0:])
	k = int(binary.BigEndian.Uint16(meta[4:]))
	if m == 0 || k == 0 {
		return 0, 0, fmt.Errorf("gohph: table meta declares empty filter geometry (m=%d, k=%d)", m, k)
	}
	return m, k, nil
}

// randomPerm draws a uniformly random permutation of [0, n) from
// crypto/rand.
func randomPerm(n int) ([]int, error) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		jBig, err := rand.Int(rand.Reader, big.NewInt(int64(i+1)))
		if err != nil {
			return nil, fmt.Errorf("gohph: drawing permutation: %w", err)
		}
		j := int(jBig.Int64())
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm, nil
}
