// Package damiani reimplements the hash-based indexing scheme of Damiani,
// De Capitani di Vimercati, Jajodia, Paraboschi and Samarati, "Balancing
// Confidentiality and Efficiency in Untrusted Relational DBMSs" (CCS 2003)
// — reference [3] of the paper. The paper notes that "similar attacks work
// on the scheme of Damiani et al.": its index labels are a deterministic
// keyed hash of the attribute value reduced to B buckets, so the equality
// pattern of values (up to hash collisions) is visible to the server.
package damiani

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/schemes/indexed"
)

// SchemeID is the evaluator-registry name of the hash-index scheme.
const SchemeID = "damiani"

// Options configures the scheme.
type Options struct {
	// Buckets is the number of hash buckets B per column. Zero selects
	// DefaultBuckets. Collisions (false positives) are intentional: they
	// are the scheme's confidentiality knob.
	Buckets int
}

// DefaultBuckets is the default hash-bucket count.
const DefaultBuckets = 64

// labeler implements indexed.Labeler with keyed-hash bucket labels.
type labeler struct {
	buckets uint64
	prf     *crypto.PRF
}

// New constructs a hash-index instance over the schema.
func New(master crypto.Key, schema *relation.Schema, opts Options) (*indexed.Scheme, error) {
	b := opts.Buckets
	if b == 0 {
		b = DefaultBuckets
	}
	if b < 2 {
		return nil, fmt.Errorf("damiani: need at least 2 buckets, got %d", b)
	}
	l := &labeler{
		buckets: uint64(b),
		prf:     crypto.NewPRF(crypto.NewPRF(master).DeriveKey("damiani/labels", nil)),
	}
	return indexed.New(SchemeID, master, schema, l)
}

// Label implements indexed.Labeler: label = PRF(col, value) mod B.
func (l *labeler) Label(colIdx int, col relation.Column, v relation.Value) ([]byte, error) {
	h := l.prf.SumStrings(8, []byte(col.Name), []byte(v.Encode()))
	bucket := be64(h) % l.buckets
	out := make([]byte, 4)
	out[0] = byte(bucket >> 24)
	out[1] = byte(bucket >> 16)
	out[2] = byte(bucket >> 8)
	out[3] = byte(bucket)
	return out, nil
}

func be64(b []byte) uint64 {
	var x uint64
	for _, c := range b[:8] {
		x = x<<8 | uint64(c)
	}
	return x
}

func init() {
	ph.RegisterEvaluator(SchemeID, indexed.Evaluate)
}
