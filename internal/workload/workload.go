// Package workload generates the synthetic relations and query workloads
// used by the experiments: the paper's hospital database (§2) with its exact
// marginal distributions, the running employee example (§3), and generic
// Zipf-distributed tables for the performance sweeps.
//
// Generators are driven by a seedable deterministic source (math/rand) so
// experiments are reproducible; cryptographic randomness is only used for
// keys and ciphertexts, never for data.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/relation"
)

// HospitalSchema returns the schema of the paper's §2 example:
// (id, name, hospital, outcome).
func HospitalSchema() *relation.Schema {
	return relation.MustSchema("patients",
		relation.Column{Name: "id", Type: relation.TypeInt, Width: 8},
		relation.Column{Name: "name", Type: relation.TypeString, Width: 16},
		relation.Column{Name: "hospital", Type: relation.TypeInt, Width: 1},
		relation.Column{Name: "outcome", Type: relation.TypeString, Width: 7},
	)
}

// Paper §2 marginals: patient flows over the three hospitals and the
// fatal/healthy outcome ratio.
var (
	// HospitalFlows is the distribution of patients over hospitals 1-3.
	HospitalFlows = []float64{0.2, 0.3, 0.5}
	// OutcomeFatalRate is the marginal probability of outcome 'fatal'.
	OutcomeFatalRate = 0.08
)

// Outcome attribute values.
const (
	OutcomeFatal   = "fatal"
	OutcomeHealthy = "healthy"
)

// HospitalConfig tunes the hospital generator. The zero value uses the
// paper's marginals.
type HospitalConfig struct {
	// Patients is the table size.
	Patients int
	// Flows overrides HospitalFlows if non-nil (must sum to ~1).
	Flows []float64
	// FatalRate overrides OutcomeFatalRate if positive.
	FatalRate float64
	// FatalRateByHospital optionally gives each hospital its own fatality
	// rate (overrides FatalRate per hospital); this is the hidden
	// per-hospital statistic the paper's passive adversary reconstructs.
	FatalRateByHospital []float64
	// EnsureName, when non-empty, guarantees a patient with this name
	// exists (the "John" of the active attack).
	EnsureName string
}

// Hospital generates a patient table from the config using the given seed.
func Hospital(cfg HospitalConfig, seed int64) (*relation.Table, error) {
	if cfg.Patients <= 0 {
		return nil, fmt.Errorf("workload: hospital table needs a positive patient count, got %d", cfg.Patients)
	}
	flows := cfg.Flows
	if flows == nil {
		flows = HospitalFlows
	}
	rng := rand.New(rand.NewSource(seed))
	s := HospitalSchema()
	t := relation.NewTable(s)
	for i := 0; i < cfg.Patients; i++ {
		h := sample(rng, flows) + 1
		rate := OutcomeFatalRate
		if cfg.FatalRate > 0 {
			rate = cfg.FatalRate
		}
		if cfg.FatalRateByHospital != nil && h-1 < len(cfg.FatalRateByHospital) {
			rate = cfg.FatalRateByHospital[h-1]
		}
		outcome := OutcomeHealthy
		if rng.Float64() < rate {
			outcome = OutcomeFatal
		}
		name := PersonName(rng)
		if cfg.EnsureName != "" && i == 0 {
			name = cfg.EnsureName
		}
		err := t.Insert(relation.Tuple{
			relation.Int(int64(i + 1)),
			relation.String(name),
			relation.Int(int64(h)),
			relation.String(outcome),
		})
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// EmployeeSchema returns the paper's §3 running example
// Emp(name, dept, salary). Widths accommodate the paper's own instance
// ("Montgomery" is 10 characters).
func EmployeeSchema() *relation.Schema {
	return relation.MustSchema("emp",
		relation.Column{Name: "name", Type: relation.TypeString, Width: 10},
		relation.Column{Name: "dept", Type: relation.TypeString, Width: 5},
		relation.Column{Name: "salary", Type: relation.TypeInt, Width: 5},
	)
}

// Departments are the department values used by the employee generator.
var Departments = []string{"HR", "IT", "SALES", "R&D", "OPS", "LEGAL", "FIN"}

// Employees generates n employee tuples with Zipf-distributed departments
// and salaries drawn uniformly from salary bands per department.
func Employees(n int, seed int64) (*relation.Table, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: employee count must be non-negative, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(Departments)-1))
	t := relation.NewTable(EmployeeSchema())
	for i := 0; i < n; i++ {
		dept := Departments[zipf.Uint64()]
		salary := 1000 + rng.Int63n(99000)
		err := t.Insert(relation.Tuple{
			relation.String(PersonName(rng)),
			relation.String(dept),
			relation.Int(salary),
		})
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// firstNames seeds the name generator; combined with a numeric suffix the
// namespace is large enough for the experiment table sizes.
var firstNames = []string{
	"Ada", "Alan", "Barbara", "Claude", "Donald", "Edsger", "Frances",
	"Grace", "John", "Ken", "Leslie", "Niklaus", "Robin", "Tony", "Whit",
}

// PersonName draws a synthetic person name of at most 10 bytes that never
// contains the core padding symbol '#'.
func PersonName(rng *rand.Rand) string {
	base := firstNames[rng.Intn(len(firstNames))]
	// Suffix keeps names distinct-ish without exceeding 10 bytes.
	return fmt.Sprintf("%s%03d", base, rng.Intn(1000))[:min(10, len(base)+3)]
}

// sample draws an index from the discrete distribution given by weights
// (assumed to sum to approximately 1; the final bucket absorbs rounding).
func sample(rng *rand.Rand, weights []float64) int {
	x := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1
}

// UniformInts generates a single-column table of n integers drawn uniformly
// from [0, domain), for microbenchmarks and false-positive measurements.
func UniformInts(n int, domain int64, seed int64) (*relation.Table, error) {
	s := relation.MustSchema("ints",
		relation.Column{Name: "k", Type: relation.TypeInt, Width: 19},
	)
	rng := rand.New(rand.NewSource(seed))
	t := relation.NewTable(s)
	for i := 0; i < n; i++ {
		if err := t.Insert(relation.Tuple{relation.Int(rng.Int63n(domain))}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// StormConfig tunes the open-loop cold-query storm generator: queries
// arrive on a Poisson schedule at a fixed rate regardless of how fast
// the server answers (open-loop — the arrival process never backs off,
// which is what exposes coordinated-omission-free tail behaviour),
// with a hot-key skew knob concentrating arrivals on few keys.
type StormConfig struct {
	// Arrivals is the total number of query arrivals.
	Arrivals int
	// Rate is the mean arrival rate in queries per second. Zero or
	// negative collapses the schedule: every arrival lands at t=0 (a
	// pure thundering herd).
	Rate float64
	// Keys is the number of distinct hot keys arrivals are spread over;
	// values below 1 select a single key.
	Keys int
	// Skew is the Zipf exponent over the keys: 0 (or anything <= 1,
	// the math/rand Zipf domain bound) means uniform; larger values
	// concentrate the storm on the lowest-numbered keys.
	Skew float64
}

// Arrival is one scheduled query of a storm.
type Arrival struct {
	// At is the arrival's offset from the storm's start.
	At time.Duration
	// Key is the hot-key index in [0, Keys).
	Key int
}

// Storm generates a deterministic open-loop arrival schedule from the
// config and seed: interarrival gaps are exponential (a Poisson process
// at cfg.Rate), keys are Zipf- or uniform-distributed, and the returned
// schedule is ascending in At. Drivers replay it by sleeping until each
// At and firing the query for Key, whether or not earlier queries have
// completed.
func Storm(cfg StormConfig, seed int64) ([]Arrival, error) {
	if cfg.Arrivals < 0 {
		return nil, fmt.Errorf("workload: storm arrival count must be non-negative, got %d", cfg.Arrivals)
	}
	keys := cfg.Keys
	if keys < 1 {
		keys = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var zipf *rand.Zipf
	if cfg.Skew > 1 && keys > 1 {
		zipf = rand.NewZipf(rng, cfg.Skew, 1, uint64(keys-1))
	}
	out := make([]Arrival, cfg.Arrivals)
	var at time.Duration
	for i := range out {
		if cfg.Rate > 0 {
			at += time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		}
		k := 0
		switch {
		case zipf != nil:
			k = int(zipf.Uint64())
		case keys > 1:
			k = rng.Intn(keys)
		}
		out[i] = Arrival{At: at, Key: k}
	}
	return out, nil
}

// QueryMix generates a workload of exact selects against a table: each
// query picks a random tuple and a random column and selects on that
// tuple's value, so every query has at least one hit.
func QueryMix(t *relation.Table, n int, seed int64) []relation.Eq {
	rng := rand.New(rand.NewSource(seed))
	out := make([]relation.Eq, n)
	for i := range out {
		tp := t.Tuple(rng.Intn(t.Len()))
		col := rng.Intn(t.Schema().NumColumns())
		out[i] = relation.Eq{Column: t.Schema().Columns[col].Name, Value: tp[col]}
	}
	return out
}
