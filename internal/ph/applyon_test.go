package ph

import (
	"bytes"
	"reflect"
	"testing"
)

// fakeEval matches a tuple when any word equals the token. Registered
// without a narrower, so ApplyOn must take the full-scan fallback.
func fakeEval(et *EncryptedTable, q *EncryptedQuery) (*Result, error) {
	var pos []int
	for i, tp := range et.Tuples {
		for _, w := range tp.Words {
			if bytes.Equal(w, q.Token) {
				pos = append(pos, i)
				break
			}
		}
	}
	return SelectPositions(et, pos), nil
}

func init() {
	RegisterEvaluator("fallback-test", fakeEval)
}

func fakeTable(words ...string) *EncryptedTable {
	et := &EncryptedTable{SchemeID: "fallback-test"}
	for i, w := range words {
		et.Tuples = append(et.Tuples, EncryptedTuple{ID: []byte{byte(i)}, Words: [][]byte{[]byte(w)}})
	}
	return et
}

func TestApplyOnFallback(t *testing.T) {
	et := fakeTable("a", "b", "a", "c", "a")
	q := &EncryptedQuery{SchemeID: "fallback-test", Token: []byte("a")}
	got, err := ApplyOn(et, q, []int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{2, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ApplyOn fallback: got %v, want %v", got, want)
	}
}

func TestApplyOnSchemeMismatch(t *testing.T) {
	et := fakeTable("a")
	q := &EncryptedQuery{SchemeID: "other", Token: []byte("a")}
	if _, err := ApplyOn(et, q, []int{0}); err == nil {
		t.Fatal("scheme mismatch must error")
	}
}

func TestIntersectPositions(t *testing.T) {
	cases := []struct{ a, b, want []int }{
		{[]int{1, 3, 5}, []int{2, 3, 5, 7}, []int{3, 5}},
		{nil, []int{1}, []int{}},
		{[]int{1}, nil, []int{}},
		{[]int{1, 2, 3}, []int{1, 2, 3}, []int{1, 2, 3}},
		{[]int{1, 2}, []int{3, 4}, []int{}},
	}
	for _, c := range cases {
		if got := IntersectPositions(c.a, c.b); !reflect.DeepEqual(got, c.want) {
			t.Fatalf("IntersectPositions(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
