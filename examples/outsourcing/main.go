// Outsourcing: what Eve sees, scheme by scheme. The same two-tuple salary
// table — the paper's §1 counterexample pair — is encrypted under the
// bucketization comparator and under the paper's construction, and the
// server-visible bytes are printed side by side. The deterministic index
// labels repeat exactly where the plaintext repeats; the SWP cipherwords
// never do. The §1 distinguishing game is then played live against both.
package main

import (
	"fmt"
	"log"

	"repro/internal/attacks"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/games"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/schemes/bucket"
	"repro/internal/schemes/gohph"
)

func main() {
	_, t2 := attacks.SalaryTables() // table 2: both salaries 4900
	fmt.Println("plaintext (the paper's table 2 — identical salaries):")
	fmt.Print(t2)
	fmt.Println()

	key, err := crypto.RandomKey()
	if err != nil {
		log.Fatal(err)
	}

	// Bucketization (Hacıgümüş et al.): weak labels attached to strong
	// ciphertext.
	bsch, err := bucket.New(key, t2.Schema(), bucket.Options{
		IntDomains: map[string]bucket.Domain{"id": {Min: 0, Max: 999}, "salary": {Min: 0, Max: 9999}},
	})
	if err != nil {
		log.Fatal(err)
	}
	show("bucketization (weak index labels)", bsch, t2)

	// The paper's construction: SWP cipherwords only.
	csch, err := core.New(key, t2.Schema(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	show("swp-ph (the paper's construction)", csch, t2)

	// The second instantiation: Goh secure indexes — one salted Bloom
	// filter per tuple instead of cipherwords.
	gsch, err := gohph.New(key, t2.Schema(), gohph.Options{})
	if err != nil {
		log.Fatal(err)
	}
	show("goh-ph (same construction over Goh's secure indexes)", gsch, t2)

	// Play the game.
	fmt.Println("=== Definition 1.2 game, salary-pair adversary, 200 trials each ===")
	for _, name := range []string{bucket.SchemeID, core.SchemeID, gohph.SchemeID} {
		g := games.Def21{Factory: bench.MustFactory(name), Q: 0, Mode: games.Passive}
		res, err := g.Run(attacks.SalaryPair{}, 200, 99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s wins %s  advantage %.3f\n", name, res, res.Advantage())
	}
	fmt.Println("\nthe deterministic index is broken exactly as §1 predicts; the construction is not")
}

// show prints the server-visible representation of an encrypted table.
func show(title string, scheme ph.Scheme, t *relation.Table) {
	ct, err := scheme.EncryptTable(t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Eve's view under %s:\n", title)
	for i, tp := range ct.Tuples {
		fmt.Printf("  tuple %d:", i)
		for _, w := range tp.Words {
			fmt.Printf(" %x", w)
		}
		fmt.Println()
	}
	fmt.Println()
}
