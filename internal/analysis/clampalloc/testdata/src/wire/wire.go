// Fixture for the clampalloc analyzer. The package is named wire so the
// analyzer's path filter picks it up, and it defines a local Buffer type
// because the analyzer recognises decode sources by receiver type name.
package wire

import (
	"encoding/binary"
	"errors"
)

var errShort = errors.New("short buffer")

// Buffer mimics the repo's wire.Buffer integer accessors.
type Buffer struct {
	rest []byte
}

func (b *Buffer) U32() (uint32, error) {
	if len(b.rest) < 4 {
		return 0, errShort
	}
	v := binary.BigEndian.Uint32(b.rest)
	b.rest = b.rest[4:]
	return v, nil
}

func (b *Buffer) Remaining() int { return len(b.rest) }

// ClampCount mimics the repo's blessed clamp helper.
func ClampCount(declared uint32, possible int) int {
	if possible < 0 {
		possible = 0
	}
	if uint64(declared) < uint64(possible) {
		return int(declared)
	}
	return possible
}

// decodeHostile is the PR4 regression shape: a CmdProve-style decoder
// pre-allocating from the declared count before reading any payload.
func decodeHostile(r *Buffer) ([][]byte, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	out := make([][]byte, 0, n) // want `wire-decoded count`
	for i := uint32(0); i < n; i++ {
		out = append(out, nil)
	}
	return out, nil
}

// decodeDerived shows taint surviving conversion and arithmetic.
func decodeDerived(r *Buffer) []byte {
	n, _ := r.U32()
	need := int(n) * 8
	return make([]byte, need) // want `wire-decoded count`
}

// decodeHeader shows the encoding/binary source.
func decodeHeader(b []byte) []uint64 {
	count := binary.BigEndian.Uint32(b)
	return make([]uint64, count) // want `wire-decoded count`
}

// decodeClamped is clean: the count flows through ClampCount.
func decodeClamped(r *Buffer) []int {
	n, _ := r.U32()
	return make([]int, 0, ClampCount(n, r.Remaining()/8))
}

// decodeMin is clean: the count flows through the min builtin.
func decodeMin(r *Buffer) []int {
	n, _ := r.U32()
	return make([]int, 0, min(int(n), 1024))
}

// decodeGuarded is clean: a terminating guard validates the count
// against the bytes actually present.
func decodeGuarded(r *Buffer) ([]byte, error) {
	n, _ := r.U32()
	if int(n) > r.Remaining() {
		return nil, errShort
	}
	return make([]byte, n), nil
}

// decodeReassigned is clean: the tainted value is overwritten with a
// bounded one before allocation.
func decodeReassigned(r *Buffer) []int {
	n, _ := r.U32()
	m := int(n)
	if m > 64 {
		m = 64
	}
	return make([]int, m)
}

// decodeSuppressed takes a documented exception.
func decodeSuppressed(r *Buffer) []int {
	n, _ := r.U32()
	//phlint:ignore clampalloc count is bounded by session negotiation upstream
	return make([]int, n)
}

// decodeStaleSuppression carries an ignore that silences nothing: the
// driver reports it so stale exceptions cannot accumulate.
func decodeStaleSuppression(r *Buffer) []int {
	n, _ := r.U32()
	//phlint:ignore clampalloc stale exception // want `unused phlint:ignore`
	return make([]int, ClampCount(n, 64))
}
