package storage

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// benchStore opens a durable store seeded with one table per writer.
func benchStore(b *testing.B, opts Options, tables int) *Store {
	b.Helper()
	s, err := OpenOptions(filepath.Join(b.TempDir(), "bench.log"), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	for i := 0; i < tables; i++ {
		if err := s.Put(fmt.Sprintf("t%d", i), fakeTable(4)); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkAppendAlways is the single-writer fsync-per-ack baseline: no
// concurrency, so group commit has nothing to share.
func BenchmarkAppendAlways(b *testing.B) {
	s := benchStore(b, Options{Sync: SyncAlways}, 1)
	tuples := fakeTable(1).Tuples
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append("t0", tuples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendAlwaysParallel measures group commit: GOMAXPROCS
// writers appending to one table under SyncAlways share fsyncs, so the
// per-append cost drops well below BenchmarkAppendAlways.
func BenchmarkAppendAlwaysParallel(b *testing.B) {
	s := benchStore(b, Options{Sync: SyncAlways}, 1)
	tuples := fakeTable(1).Tuples
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := s.Append("t0", tuples); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	st := s.LogStats()
	b.ReportMetric(float64(st.Records)/float64(max(st.Syncs, 1)), "records/fsync")
}

// BenchmarkAppendDistinctTablesParallel pins the lock narrowing:
// parallel writers append to distinct tables and pay only for the
// shared commit, never for each other's table locks.
func BenchmarkAppendDistinctTablesParallel(b *testing.B) {
	const tables = 8
	s := benchStore(b, Options{Sync: SyncAlways}, tables)
	tuples := fakeTable(1).Tuples
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		name := fmt.Sprintf("t%d", next.Add(1)%tables)
		for pb.Next() {
			if err := s.Append(name, tuples); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAppendInterval acknowledges after write(2); the fsync happens
// on the background ticker.
func BenchmarkAppendInterval(b *testing.B) {
	s := benchStore(b, Options{Sync: SyncInterval}, 1)
	tuples := fakeTable(1).Tuples
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append("t0", tuples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendNever is the OS-buffered floor of the durable path.
func BenchmarkAppendNever(b *testing.B) {
	s := benchStore(b, Options{Sync: SyncNever}, 1)
	tuples := fakeTable(1).Tuples
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append("t0", tuples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendMemory isolates the in-memory append (no log at all).
func BenchmarkAppendMemory(b *testing.B) {
	s := NewMemory()
	if err := s.Put("t0", fakeTable(4)); err != nil {
		b.Fatal(err)
	}
	tuples := fakeTable(1).Tuples
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append("t0", tuples); err != nil {
			b.Fatal(err)
		}
	}
}
