package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
)

// PRG is a seekable pseudorandom generator built from AES-256 in counter
// mode. It plays the role of the stream generator G in the Song–Wagner–
// Perrig scheme: Block(i, n) returns the i-th n-byte chunk of the keystream,
// and chunks for different indices can be generated independently (needed
// because decryption must regenerate the stream value S_i for arbitrary
// word positions).
type PRG struct {
	block cipher.Block
}

// NewPRG constructs a PRG seeded with the given key.
func NewPRG(seed Key) (*PRG, error) {
	b, err := aes.NewCipher(seed[:])
	if err != nil {
		return nil, fmt.Errorf("crypto: prg: %w", err)
	}
	return &PRG{block: b}, nil
}

// Block returns the chunk of n pseudorandom bytes at logical index i.
// Chunks at distinct indices are computed from disjoint counter ranges, so
// Block(i, n) never overlaps Block(j, n) for i != j as long as n is the same
// across calls for a given PRG, which is how internal/swp uses it (n is the
// per-scheme stream width).
func (g *PRG) Block(i uint64, n int) []byte {
	out := make([]byte, n)
	var ctr [aes.BlockSize]byte
	nBlocks := uint64((n + aes.BlockSize - 1) / aes.BlockSize)
	base := i * nBlocks
	var tmp [aes.BlockSize]byte
	for b := uint64(0); b < nBlocks; b++ {
		binary.BigEndian.PutUint64(ctr[8:], base+b)
		g.block.Encrypt(tmp[:], ctr[:])
		copy(out[b*aes.BlockSize:], tmp[:])
	}
	return out
}

// RandomKey draws a fresh uniformly random key from crypto/rand.
func RandomKey() (Key, error) {
	var k Key
	if _, err := io.ReadFull(rand.Reader, k[:]); err != nil {
		return Key{}, fmt.Errorf("crypto: drawing random key: %w", err)
	}
	return k, nil
}

// RandomBytes draws n uniformly random bytes from crypto/rand.
func RandomBytes(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		return nil, fmt.Errorf("crypto: drawing random bytes: %w", err)
	}
	return b, nil
}
