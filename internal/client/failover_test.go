package client

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/storage"
)

// pipeDialer returns a dial function that serves each accepted pipe from
// srv, plus a kill switch that severs every connection it handed out and
// makes further dials fail.
func replicaDialer(t *testing.T, srv *server.Server) (dial func() (*Conn, error), kill func()) {
	t.Helper()
	var handed []net.Conn
	dead := false
	dial = func() (*Conn, error) {
		if dead {
			return nil, fmt.Errorf("replica is down")
		}
		cliSide, srvSide := net.Pipe()
		go srv.ServeConn(srvSide)
		handed = append(handed, cliSide, srvSide)
		return NewConn(cliSide), nil
	}
	kill = func() {
		dead = true
		for _, c := range handed {
			c.Close()
		}
	}
	t.Cleanup(kill)
	return dial, kill
}

func hrQuery() relation.Eq {
	return relation.Eq{Column: "dept", Value: relation.String("HR")}
}

// TestDialRetrySucceedsAfterFlakyDials: a transport that fails the first
// attempts is retried within the configured budget, and the connection
// that finally lands works.
func TestDialRetrySucceedsAfterFlakyDials(t *testing.T) {
	srv := server.New(storage.NewMemory(), nil)
	tries := 0
	conn, err := DialWithConfig("flaky", DialConfig{
		Attempts:   3,
		BackoffMin: time.Millisecond,
		BackoffMax: 2 * time.Millisecond,
		DialFunc: func(addr string) (net.Conn, error) {
			tries++
			if tries < 3 {
				return nil, fmt.Errorf("connection refused")
			}
			cliSide, srvSide := net.Pipe()
			go srv.ServeConn(srvSide)
			return cliSide, nil
		},
	})
	if err != nil {
		t.Fatalf("dial with 2 transient failures: %v", err)
	}
	defer conn.Close()
	if tries != 3 {
		t.Fatalf("dialed %d times, want 3", tries)
	}
	if _, err := conn.List(); err != nil {
		t.Fatalf("round trip on retried connection: %v", err)
	}
}

// TestDialRetryGivesUp: a permanently dead address exhausts the attempt
// budget and reports it.
func TestDialRetryGivesUp(t *testing.T) {
	tries := 0
	_, err := DialWithConfig("dead", DialConfig{
		Attempts:   4,
		BackoffMin: time.Millisecond,
		BackoffMax: 2 * time.Millisecond,
		DialFunc: func(addr string) (net.Conn, error) {
			tries++
			return nil, fmt.Errorf("connection refused")
		},
	})
	if err == nil {
		t.Fatal("dial to a dead address succeeded")
	}
	if tries != 4 {
		t.Fatalf("dialed %d times, want 4", tries)
	}
}

// TestIOTimeoutUnwedgesClient: a server that accepts the dial but never
// answers must not pin the client past the I/O deadline.
func TestIOTimeoutUnwedgesClient(t *testing.T) {
	cliSide, srvSide := net.Pipe()
	defer srvSide.Close()
	conn := NewConn(cliSide)
	defer conn.Close()
	conn.SetIOTimeout(50 * time.Millisecond)
	// Drain the request so the write succeeds, then never answer.
	go func() {
		buf := make([]byte, 1024)
		for {
			if _, err := srvSide.Read(buf); err != nil {
				return
			}
		}
	}()
	done := make(chan error, 1)
	go func() {
		_, err := conn.List()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("wedged server answered?")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("I/O deadline never released the client")
	}
}

// TestReadsSpreadOverReplicas: with healthy replicas, verified reads are
// served by them — round-robin — and never touch the primary.
func TestReadsSpreadOverReplicas(t *testing.T) {
	store := storage.NewMemory()
	db := NewDB(startPipe(t, store), newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	// Replicas serve the same store through separate server instances —
	// the perfectly-synced case.
	for i := 0; i < 2; i++ {
		dial, _ := replicaDialer(t, server.NewWithOptions(store, nil, server.Options{ReadOnly: true}))
		db.AddReplica(dial)
	}
	want, _ := relation.Select(empTable(), hrQuery())
	for i := 0; i < 4; i++ {
		got, err := db.Select(hrQuery())
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("read %d wrong result:\n%v", i, got)
		}
	}
	stats := db.ReadStats()
	if stats.ReplicaReads != 4 || stats.PrimaryReads != 0 || stats.Failovers != 0 {
		t.Fatalf("stats %+v: want 4 replica reads, 0 primary", stats)
	}
}

// TestFailoverToPrimaryOnReplicaDeath: killing every replica mid-stream
// must not fail a single read — they fail over to the primary.
func TestFailoverToPrimaryOnReplicaDeath(t *testing.T) {
	store := storage.NewMemory()
	db := NewDB(startPipe(t, store), newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	dial, kill := replicaDialer(t, server.NewWithOptions(store, nil, server.Options{ReadOnly: true}))
	db.AddReplica(dial)

	want, _ := relation.Select(empTable(), hrQuery())
	read := func(label string) {
		t.Helper()
		got, err := db.Select(hrQuery())
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: wrong result:\n%v", label, got)
		}
	}
	read("before kill")
	if s := db.ReadStats(); s.ReplicaReads != 1 {
		t.Fatalf("warm-up read not served by the replica: %+v", s)
	}
	kill()
	read("after kill")
	stats := db.ReadStats()
	if stats.PrimaryReads != 1 || stats.Failovers != 1 || stats.ReplicaFailures == 0 {
		t.Fatalf("stats %+v: want the post-kill read failed over to the primary", stats)
	}
	// The dead replica is quarantined: the next read goes straight to the
	// primary without burning another attempt on it.
	failures := stats.ReplicaFailures
	read("while quarantined")
	if s := db.ReadStats(); s.ReplicaFailures != failures {
		t.Fatalf("quarantined replica was dialed again immediately: %+v", s)
	}
}

// TestByzantineReplicaQuarantined is the trust drill: a replica serving a
// tampered table passes the transport but fails the pinned-root check, so
// the client quarantines it and gets the true answer from the primary —
// the read succeeds and stays verified.
func TestByzantineReplicaQuarantined(t *testing.T) {
	store := storage.NewMemory()
	primary := startPipe(t, store)
	db := NewDB(primary, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	// Build the evil twin: same ciphertext with one flipped tuple-ID
	// byte, served read-only from its own store.
	ct, err := primary.FetchAll("emp")
	if err != nil {
		t.Fatal(err)
	}
	ct.Tuples[0].ID[0] ^= 0xFF
	evil := storage.NewMemory()
	if err := evil.Put("emp", ct); err != nil {
		t.Fatal(err)
	}
	dial, _ := replicaDialer(t, server.NewWithOptions(evil, nil, server.Options{ReadOnly: true}))
	db.AddReplica(dial)

	got, err := db.Select(hrQuery())
	if err != nil {
		t.Fatalf("read with a Byzantine replica present: %v", err)
	}
	want, _ := relation.Select(empTable(), hrQuery())
	if !got.Equal(want) {
		t.Fatalf("wrong result:\n%v\nvs\n%v", got, want)
	}
	stats := db.ReadStats()
	if stats.ReplicaFailures == 0 || stats.PrimaryReads != 1 || stats.ReplicaReads != 0 {
		t.Fatalf("stats %+v: want the lying replica rejected and the primary serving", stats)
	}
}

// TestReplicaServesConjunctiveReads: the pushed-down conjunction path
// routes through replicas with the same verification.
func TestReplicaServesConjunctiveReads(t *testing.T) {
	store := storage.NewMemory()
	db := NewDB(startPipe(t, store), newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	dial, _ := replicaDialer(t, server.NewWithOptions(store, nil, server.Options{ReadOnly: true}))
	db.AddReplica(dial)
	got, err := db.Query("SELECT name FROM emp WHERE dept = 'HR' AND salary = 8800")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Tuple(0)[0].Str() != "Grace" {
		t.Fatalf("conjunctive result: %v", got)
	}
	if s := db.ReadStats(); s.ReplicaReads != 1 {
		t.Fatalf("conjunction not served by the replica: %+v", s)
	}
}
