package client

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// Transport robustness: everything in this file is about the network
// being allowed to fail. DialConfig turns the old one-shot net.Dial into
// a bounded, jittered retry loop with per-attempt timeouts; Conn gains a
// per-round-trip I/O deadline so a wedged server releases the client;
// and DB gains read replicas with failover — reads spread round-robin
// over healthy followers, any failure (transport, protocol, or a
// verification mismatch from a stale or lying replica) quarantines the
// follower with doubling jittered backoff and the read falls back to
// the primary. None of this weakens the trust model: a replica's answer
// is checked against the pinned root exactly like the primary's, so the
// worst a bad follower can do is cost one failover.

// Dial retry and quarantine defaults.
const (
	defaultDialTimeout = 5 * time.Second
	defaultDialTries   = 3
	defaultBackoffMin  = 50 * time.Millisecond
	defaultBackoffMax  = 2 * time.Second

	replicaBackoffMin = 100 * time.Millisecond
	replicaBackoffMax = 5 * time.Second
)

// DialConfig configures how the client reaches a server. The zero value
// gets sane defaults: 5s per attempt, 3 attempts, 50ms–2s jittered
// backoff between them, no I/O deadline on the resulting connection.
type DialConfig struct {
	// Timeout bounds one dial attempt. <=0 selects the default.
	Timeout time.Duration
	// Attempts is the total number of dial attempts before giving up.
	// <=0 selects the default; transient connection errors are retried,
	// which is the difference between "the replica was restarting" and a
	// failed query.
	Attempts int
	// BackoffMin/BackoffMax bound the jittered, doubling wait between
	// attempts. <=0 selects the defaults.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// IOTimeout, when positive, bounds every round trip on the resulting
	// connection (request write + response read): a server that accepts
	// the dial and then wedges cannot pin the caller forever.
	IOTimeout time.Duration
	// DialFunc replaces the underlying dial, for tests that want to
	// inject flaky transports. nil uses net.DialTimeout("tcp", ...).
	DialFunc func(addr string) (net.Conn, error)
}

func (cfg DialConfig) withDefaults() DialConfig {
	if cfg.Timeout <= 0 {
		cfg.Timeout = defaultDialTimeout
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = defaultDialTries
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = defaultBackoffMin
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = defaultBackoffMax
	}
	return cfg
}

// jitter spreads d over [d/2, 3d/2) so a fleet of clients retrying the
// same dead server does not reconverge in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// DialWithConfig connects to a server address with bounded retry: each
// attempt gets cfg.Timeout, failed attempts back off with doubling
// jittered waits, and the last attempt's error is reported with the
// attempt count.
func DialWithConfig(addr string, cfg DialConfig) (*Conn, error) {
	cfg = cfg.withDefaults()
	dial := cfg.DialFunc
	if dial == nil {
		dial = func(a string) (net.Conn, error) { return net.DialTimeout("tcp", a, cfg.Timeout) }
	}
	backoff := cfg.BackoffMin
	var lastErr error
	for attempt := 0; attempt < cfg.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(jitter(backoff))
			if backoff *= 2; backoff > cfg.BackoffMax {
				backoff = cfg.BackoffMax
			}
		}
		nc, err := dial(addr)
		if err != nil {
			lastErr = err
			continue
		}
		c := NewConn(nc)
		c.ioTimeout = cfg.IOTimeout
		return c, nil
	}
	return nil, fmt.Errorf("client: dialing %s: %d attempts failed: %w", addr, cfg.Attempts, lastErr)
}

// SetIOTimeout bounds every subsequent round trip on the connection
// (request write + response read). Zero removes the bound.
func (c *Conn) SetIOTimeout(d time.Duration) { c.ioTimeout = d }

// LogChunk is one CmdShipLog answer: a slice of the primary's
// write-ahead log plus the cursor bookkeeping a follower tails by.
type LogChunk struct {
	// Epoch names the log file the records belong to; it changes when
	// the primary compacts.
	Epoch uint64
	// Start is the sequence of the first record in Records. When it (or
	// Epoch) differs from the cursor the follower asked with, the
	// follower's history is gone and it must reset and re-apply from
	// Start.
	Start uint64
	// Head is the primary's record count; the follower is caught up when
	// its cursor reaches it.
	Head uint64
	// Records are the shipped records, in log order.
	Records []wire.LogRecord
}

// ShipLog requests log records from the follower's cursor (epoch, from),
// with maxBytes bounding the answer (the server clamps it regardless).
func (c *Conn) ShipLog(epoch, from uint64, maxBytes uint32) (*LogChunk, error) {
	payload := wire.AppendU64(nil, epoch)
	payload = wire.AppendU64(payload, from)
	payload = wire.AppendU32(payload, maxBytes)
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdShipLog, Payload: payload})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.RespLogChunk {
		return nil, fmt.Errorf("client: unexpected response %#x to ship-log", resp.Type)
	}
	r := wire.NewBuffer(resp.Payload)
	ch := &LogChunk{}
	if ch.Epoch, err = r.U64(); err != nil {
		return nil, fmt.Errorf("client: log chunk epoch: %w", err)
	}
	if ch.Start, err = r.U64(); err != nil {
		return nil, fmt.Errorf("client: log chunk start: %w", err)
	}
	if ch.Head, err = r.U64(); err != nil {
		return nil, fmt.Errorf("client: log chunk head: %w", err)
	}
	n, err := r.U32()
	if err != nil {
		return nil, fmt.Errorf("client: log chunk count: %w", err)
	}
	if int(n) > r.Remaining() {
		return nil, fmt.Errorf("client: log chunk count %d exceeds remaining payload", n)
	}
	ch.Records = make([]wire.LogRecord, 0, wire.ClampCount(n, r.Remaining()/5))
	for i := uint32(0); i < n; i++ {
		op, err := r.U8()
		if err != nil {
			return nil, fmt.Errorf("client: log record %d op: %w", i, err)
		}
		p, err := r.Bytes()
		if err != nil {
			return nil, fmt.Errorf("client: log record %d payload: %w", i, err)
		}
		ch.Records = append(ch.Records, wire.LogRecord{Op: op, Payload: p})
	}
	return ch, nil
}

// SnapshotChunk is one CmdShipSnapshot answer: a byte range of an
// encoded storage snapshot (storage.InstallSnapshot's input, once
// reassembled).
type SnapshotChunk struct {
	// Epoch and Seq identify the snapshot the bytes belong to (the
	// shipping cursor embedded in it). When they differ from the
	// identity the fetcher asked with, its partial transfer is void and
	// reassembly restarts at this chunk.
	Epoch uint64
	Seq   uint64
	// Total is the snapshot's full encoded length; the transfer is
	// complete when Offset+len(Data) == Total.
	Total uint64
	// Offset is the byte position Data starts at.
	Offset uint64
	// Data is the chunk.
	Data []byte
}

// ShipSnapshot requests bytes [offset, offset+maxBytes) of the snapshot
// identified by (epoch, seq) — zero identity for a fresh snapshot. The
// server clamps the budget regardless; the reply is validated for
// internal consistency here, and the reassembled snapshot is verified
// end to end by storage.InstallSnapshot.
func (c *Conn) ShipSnapshot(epoch, seq, offset uint64, maxBytes uint32) (*SnapshotChunk, error) {
	payload := wire.AppendU64(nil, epoch)
	payload = wire.AppendU64(payload, seq)
	payload = wire.AppendU64(payload, offset)
	payload = wire.AppendU32(payload, maxBytes)
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdShipSnapshot, Payload: payload})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.RespSnapshotChunk {
		return nil, fmt.Errorf("client: unexpected response %#x to ship-snapshot", resp.Type)
	}
	r := wire.NewBuffer(resp.Payload)
	ch := &SnapshotChunk{}
	if ch.Epoch, err = r.U64(); err != nil {
		return nil, fmt.Errorf("client: snapshot chunk epoch: %w", err)
	}
	if ch.Seq, err = r.U64(); err != nil {
		return nil, fmt.Errorf("client: snapshot chunk seq: %w", err)
	}
	if ch.Total, err = r.U64(); err != nil {
		return nil, fmt.Errorf("client: snapshot chunk total: %w", err)
	}
	if ch.Offset, err = r.U64(); err != nil {
		return nil, fmt.Errorf("client: snapshot chunk offset: %w", err)
	}
	if ch.Data, err = r.Bytes(); err != nil {
		return nil, fmt.Errorf("client: snapshot chunk data: %w", err)
	}
	if ch.Offset > ch.Total || uint64(len(ch.Data)) > ch.Total-ch.Offset {
		return nil, fmt.Errorf("client: snapshot chunk [%d, %d+%d) exceeds declared total %d", ch.Offset, ch.Offset, len(ch.Data), ch.Total)
	}
	return ch, nil
}

// ReadStats counts where a DB's reads were served and how often replicas
// failed, for observability and for the E18 failover drill.
type ReadStats struct {
	// ReplicaReads is the number of reads answered by a replica.
	ReplicaReads uint64
	// PrimaryReads is the number of reads answered by the primary.
	PrimaryReads uint64
	// Failovers is the number of reads that fell back to the primary
	// despite configured replicas (all dead, quarantined, or failing).
	Failovers uint64
	// ReplicaFailures counts individual replica attempts that failed —
	// transport errors, protocol errors, and verification mismatches
	// (stale or Byzantine followers) alike.
	ReplicaFailures uint64
}

// replicaState tracks one read replica's connection and health. A
// failure closes the cached connection and quarantines the replica with
// doubling jittered backoff; a success resets the backoff.
type replicaState struct {
	dial             func() (*Conn, error)
	conn             *Conn
	backoff          time.Duration
	quarantinedUntil time.Time
}

func (r *replicaState) get() (*Conn, error) {
	if r.conn != nil {
		return r.conn, nil
	}
	c, err := r.dial()
	if err != nil {
		return nil, err
	}
	r.conn = c
	return c, nil
}

func (r *replicaState) fail() {
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	if r.backoff <= 0 {
		r.backoff = replicaBackoffMin
	} else if r.backoff *= 2; r.backoff > replicaBackoffMax {
		r.backoff = replicaBackoffMax
	}
	r.quarantinedUntil = time.Now().Add(jitter(r.backoff))
}

func (r *replicaState) ok() {
	r.backoff = 0
	r.quarantinedUntil = time.Time{}
}

// ReadPool routes self-contained requests over one primary endpoint and
// any number of read replicas: round-robin over healthy replicas with
// quarantine backoff, failover to the primary when none answers. It is
// the routing machinery DB always had, extracted and made safe for
// concurrent use so a shard coordinator (internal/shard) can keep one
// pool per shard and scatter to them from concurrently served requests.
//
// The pool's mutex is held for the whole attempt, round trip included:
// a Conn is not safe for concurrent use, so one pool serves exactly one
// request at a time and concurrent callers queue. That is deliberate —
// a pool models one node's serving capacity, and per-node queueing is
// exactly the capacity model the scaling experiments (E18/E20) measure.
// Independent pools (different shards) proceed in parallel.
type ReadPool struct {
	mu sync.Mutex
	// fixed is a caller-owned primary connection (DB mode); the pool
	// never closes it. Exactly one of fixed/primary is set.
	fixed *Conn
	// primary is a pool-owned dialed primary (coordinator mode): cached,
	// closed and redialed after transport failures.
	primary  *replicaState
	replicas []*replicaState
	rrNext   int
	stats    ReadStats
}

// NewReadPool builds a pool over a caller-owned primary connection. The
// pool never closes it; Close only releases replica connections.
func NewReadPool(primary *Conn) *ReadPool {
	return &ReadPool{fixed: primary}
}

// NewReadPoolDial builds a pool that owns its primary: dialed on first
// use, closed and redialed after transport failures, closed by Close.
func NewReadPoolDial(dial func() (*Conn, error)) *ReadPool {
	return &ReadPool{primary: &replicaState{dial: dial}}
}

// AddReplica registers a read replica by dial function (the seam tests
// and in-memory transports use).
func (p *ReadPool) AddReplica(dial func() (*Conn, error)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.replicas = append(p.replicas, &replicaState{dial: dial})
}

// AddReplicas registers TCP read replicas dialed with cfg.
func (p *ReadPool) AddReplicas(cfg DialConfig, addrs ...string) {
	for _, addr := range addrs {
		addr := addr
		p.AddReplica(func() (*Conn, error) { return DialWithConfig(addr, cfg) })
	}
}

// Stats returns a snapshot of the pool's read-routing counters.
func (p *ReadPool) Stats() ReadStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close releases every connection the pool owns: cached replica
// connections, and the dialed primary if the pool owns one. A fixed
// primary (NewReadPool) belongs to the caller and is left open.
func (p *ReadPool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var err error
	if p.primary != nil && p.primary.conn != nil {
		err = p.primary.conn.Close()
		p.primary.conn = nil
	}
	for _, r := range p.replicas {
		if r.conn != nil {
			if cerr := r.conn.Close(); cerr != nil && err == nil {
				err = cerr
			}
			r.conn = nil
		}
	}
	return err
}

// primaryConn returns the primary connection, dialing if the pool owns
// its primary and has none cached. Must be called with p.mu held.
func (p *ReadPool) primaryConn() (*Conn, error) {
	if p.fixed != nil {
		return p.fixed, nil
	}
	return p.primary.get()
}

// Do runs one self-contained read: round-robin over healthy replicas
// first, falling back to the primary when none answers. fn must be a
// complete read — request, decode, AND verification — with side effects
// only on success, so a failed replica attempt (including a Byzantine
// answer caught by the pinned-root check) can be retried elsewhere
// cleanly. The primary attempt's error is returned as-is: the primary
// is the source of truth, and its verification failure is a real alarm,
// not a routing event.
func (p *ReadPool) Do(fn func(c *Conn) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.replicas)
	if n > 0 {
		now := time.Now()
		for i := 0; i < n; i++ {
			r := p.replicas[(p.rrNext+i)%n]
			if now.Before(r.quarantinedUntil) {
				continue
			}
			c, err := r.get()
			if err != nil {
				p.stats.ReplicaFailures++
				r.fail()
				continue
			}
			if err := fn(c); err != nil {
				p.stats.ReplicaFailures++
				r.fail()
				continue
			}
			r.ok()
			p.rrNext = (p.rrNext + i + 1) % n
			p.stats.ReplicaReads++
			return nil
		}
		p.stats.Failovers++
	}
	p.stats.PrimaryReads++
	c, err := p.primaryConn()
	if err != nil {
		return err
	}
	if err := fn(c); err != nil {
		// A transport failure on an owned primary voids the cached
		// connection so the next attempt redials; a remote error means
		// the connection is healthy and the server answered.
		if p.primary != nil && !IsRemote(err) {
			p.primary.fail()
		}
		return err
	}
	if p.primary != nil {
		p.primary.ok()
	}
	return nil
}

// DoPrimary runs fn against the primary only — the write path. Errors
// are returned as-is; a transport failure on an owned primary voids the
// cached connection so the next call redials.
func (p *ReadPool) DoPrimary(fn func(c *Conn) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, err := p.primaryConn()
	if err != nil {
		return err
	}
	if err := fn(c); err != nil {
		if p.primary != nil && !IsRemote(err) {
			p.primary.fail()
		}
		return err
	}
	return nil
}

// AddReplica registers a read replica by dial function (the seam tests
// and in-memory transports use). Like the rest of DB, not safe for
// concurrent use.
func (db *DB) AddReplica(dial func() (*Conn, error)) {
	db.pool.AddReplica(dial)
}

// AddReplicas registers TCP read replicas dialed with cfg.
func (db *DB) AddReplicas(cfg DialConfig, addrs ...string) {
	db.pool.AddReplicas(cfg, addrs...)
}

// ReadStats returns the DB's read-routing counters. For a sharded DB
// the per-shard counters live with the cluster (e.g. the coordinator's
// ShardStats); this reports only reads routed through the DB's own
// primary pool.
func (db *DB) ReadStats() ReadStats {
	if db.pool == nil {
		return ReadStats{}
	}
	return db.pool.Stats()
}

// withRead routes one self-contained read through the DB's pool; see
// ReadPool.Do for the discipline fn must follow.
func (db *DB) withRead(fn func(c *Conn) error) error {
	return db.pool.Do(fn)
}
