package wire

// ClampCount bounds a wire-declared element count for use as a slice or
// map preallocation hint. It is the single blessed sink for the
// hostile-count discipline every decoder in the protocol follows: a
// count field read off the wire is attacker-controlled, so it must
// never reach make() unbounded — a 10-byte frame declaring 2^32
// elements would otherwise force a multi-gigabyte allocation before
// the decode loop notices the payload is short.
//
// possible is the largest element count the caller considers plausible:
// either a fixed cap, or the remaining payload length divided by the
// minimum encoded size of one element (so the hint can never exceed
// what the payload could actually hold). The decode loop must still
// read exactly the declared count and fail on a short buffer; ClampCount
// only bounds the allocation, it does not validate the count.
//
// The static analyzer cmd/phlint (clampalloc) enforces that decode-path
// allocations flow through this helper, the min() builtin, or an
// explicit validated guard.
func ClampCount(declared uint32, possible int) int {
	if possible < 0 {
		possible = 0
	}
	// Compare in uint64: int(declared) would go negative on 32-bit
	// platforms for counts above MaxInt32 and panic make().
	if uint64(declared) < uint64(possible) {
		return int(declared)
	}
	return possible
}
