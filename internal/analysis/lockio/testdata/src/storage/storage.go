// Fixture for the lockio analyzer: write-lock regions around fsync,
// network I/O, sleeps, and transitive same-package calls.
package storage

import (
	"net"
	"os"
	"sync"
	"time"
)

type tableEntry struct {
	mu   sync.RWMutex
	rows []string
}

type Store struct {
	mu   sync.Mutex
	f    *os.File
	conn net.Conn
}

// appendHostile is the PR3 regression shape: fsync while holding the
// catalogue mutex stalls every other table in the process.
func (s *Store) appendHostile(rec []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(rec); err != nil {
		return err
	}
	return s.f.Sync() // want `fsync while s.mu is write-locked`
}

func (s *Store) sleepHostile() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while s.mu is write-locked`
	s.mu.Unlock()
}

func (s *Store) netHostile(buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn.Write(buf) // want `net I/O while s.mu is write-locked`
}

func (t *tableEntry) compactHostile(f *os.File) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return f.Sync() // want `fsync while t.mu is write-locked`
}

func (s *Store) flush() error {
	return s.f.Sync()
}

func (s *Store) syncNow() error { return s.flush() }

// commitHostile reaches the fsync through two same-package hops; the
// finding names the chain.
func (s *Store) commitHostile() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncNow() // want `fsync \(syncNow -> flush\) while s.mu is write-locked`
}

// appendStaged is clean: stage under the lock, flush after releasing.
func (s *Store) appendStaged(rec []byte) error {
	s.mu.Lock()
	buf := append([]byte(nil), rec...)
	s.mu.Unlock()
	if _, err := s.f.Write(buf); err != nil {
		return err
	}
	return s.f.Sync()
}

// scan is clean: a read lock does not serialise writers.
func (t *tableEntry) scan() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	time.Sleep(time.Microsecond)
	return len(t.rows)
}

// asyncFlush is clean: the goroutine body runs outside the region.
func (s *Store) asyncFlush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.f.Sync()
	}()
}

// Close takes a documented exception for the shutdown path.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//phlint:ignore lockio shutdown path: no readers remain, a final flush under the lock is harmless
	return s.f.Sync()
}
