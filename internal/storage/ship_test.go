package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// shipCursor is a test follower's position in the primary's log.
type shipCursor struct {
	epoch, seq uint64
}

// tailOnce runs one follower poll: read a chunk at the cursor, reset on
// rotation, apply, advance. Returns whether the follower is caught up
// with the head the poll observed.
func tailOnce(t *testing.T, primary, follower *Store, cur *shipCursor, maxBytes uint32) bool {
	t.Helper()
	recs, epoch, start, head, err := primary.ReadLog(cur.epoch, cur.seq, maxBytes)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if epoch != cur.epoch || start != cur.seq {
		// Rotation (or first contact): restart from the served origin.
		if err := follower.Reset(); err != nil {
			t.Fatalf("Reset: %v", err)
		}
		cur.epoch, cur.seq = epoch, start
	}
	for _, rec := range recs {
		if err := follower.ApplyShipped(rec); err != nil {
			// Divergence: drop everything and re-bootstrap next poll.
			follower.Reset()
			cur.epoch, cur.seq = 0, 0
			return false
		}
	}
	cur.seq += uint64(len(recs))
	return cur.seq >= head
}

// catchUp polls until the follower reaches the primary's head.
func catchUp(t *testing.T, primary, follower *Store, cur *shipCursor) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if tailOnce(t, primary, follower, cur, 1<<20) {
			return
		}
	}
	t.Fatal("follower never caught up")
}

// assertSameState fails unless the two stores hold identical tables with
// identical authenticated roots — the bit-for-bit equivalence the
// trustless replica model rests on.
func assertSameState(t *testing.T, primary, follower *Store) {
	t.Helper()
	pl, fl := primary.List(), follower.List()
	if !reflect.DeepEqual(pl, fl) {
		t.Fatalf("directories differ:\nprimary:  %v\nfollower: %v", pl, fl)
	}
	for _, info := range pl {
		pt, err := primary.Get(info.Name)
		if err != nil {
			t.Fatal(err)
		}
		ft, err := follower.Get(info.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pt, ft) {
			t.Fatalf("table %q differs between primary and follower", info.Name)
		}
		proot, _, _, err := primary.Root(info.Name)
		if err != nil {
			t.Fatal(err)
		}
		froot, _, _, err := follower.Root(info.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(proot, froot) {
			t.Fatalf("table %q: follower root %x != primary root %x", info.Name, froot, proot)
		}
	}
}

func TestShipBootstrapAndRoots(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Put("emp", fakeTable(4)); err != nil {
		t.Fatal(err)
	}
	if err := p.Append("emp", fakeTable(3).Tuples); err != nil {
		t.Fatal(err)
	}
	if err := p.Put("dept", fakeTable(2)); err != nil {
		t.Fatal(err)
	}
	if err := p.Put("gone", fakeTable(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Drop("gone"); err != nil {
		t.Fatal(err)
	}

	f := NewMemory()
	var cur shipCursor
	catchUp(t, p, f, &cur)
	assertSameState(t, p, f)

	// Incremental tail: new writes arrive without re-bootstrapping.
	seqBefore := cur.seq
	if err := p.Append("dept", fakeTable(5).Tuples); err != nil {
		t.Fatal(err)
	}
	catchUp(t, p, f, &cur)
	if cur.seq != seqBefore+1 {
		t.Fatalf("cursor advanced %d -> %d, want exactly one record", seqBefore, cur.seq)
	}
	assertSameState(t, p, f)
}

func TestShipSmallBudgetResumes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 8; i++ {
		if err := p.Put(fmt.Sprintf("t%d", i), fakeTable(2)); err != nil {
			t.Fatal(err)
		}
	}
	f := NewMemory()
	var cur shipCursor
	polls := 0
	for !tailOnce(t, p, f, &cur, 1) { // 1-byte budget: one record per poll
		polls++
		if polls > 100 {
			t.Fatal("never caught up under tiny budget")
		}
	}
	if polls < 7 {
		t.Fatalf("caught up in %d polls; a 1-byte budget should ship one record each", polls)
	}
	assertSameState(t, p, f)
}

func TestShipRotatedCursorRebootstraps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Put("emp", fakeTable(3)); err != nil {
		t.Fatal(err)
	}
	if err := p.Append("emp", fakeTable(2).Tuples); err != nil {
		t.Fatal(err)
	}
	f := NewMemory()
	var cur shipCursor
	catchUp(t, p, f, &cur)
	oldEpoch := cur.epoch

	// Rotate under the follower's feet.
	if err := p.Drop("emp"); err != nil {
		t.Fatal(err)
	}
	if err := p.Put("fresh", fakeTable(6)); err != nil {
		t.Fatal(err)
	}
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := p.LogEpoch(); got == oldEpoch {
		t.Fatal("Compact did not rotate the epoch")
	}
	catchUp(t, p, f, &cur)
	if cur.epoch == oldEpoch {
		t.Fatal("follower cursor kept the rotated epoch")
	}
	assertSameState(t, p, f)
}

func TestShipHostileCursorClamped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Put("emp", fakeTable(1)); err != nil {
		t.Fatal(err)
	}
	epoch, head := p.LogHead()
	recs, gotEpoch, start, gotHead, err := p.ReadLog(epoch, head+1<<40, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 || gotEpoch != epoch || gotHead != head {
		t.Fatalf("hostile cursor answered (epoch %d, start %d, head %d), want bootstrap", gotEpoch, start, gotHead)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want the full bootstrap", len(recs))
	}
}

func TestShipEpochSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Put("emp", fakeTable(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Append("emp", fakeTable(1).Tuples); err != nil {
		t.Fatal(err)
	}
	e1 := p.LogEpoch()
	if e1 == 0 {
		t.Fatal("durable store has epoch 0")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if e2 := p2.LogEpoch(); e2 != e1 {
		t.Fatalf("epoch changed across restart: %d -> %d (followers would re-bootstrap needlessly)", e1, e2)
	}
	// A restart must also preserve the record sequence: the reopened head
	// equals the replayed record count.
	if _, head := p2.LogHead(); head != 2 {
		t.Fatalf("reopened head %d, want 2 (store + nothing lost)", head)
	}
}

func TestShipLostSidecarRotates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Put("emp", fakeTable(1)); err != nil {
		t.Fatal(err)
	}
	e1 := p.LogEpoch()
	p.Close()
	if err := os.Remove(path + epochSuffix); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.LogEpoch() == e1 {
		t.Fatal("lost sidecar reused the old epoch; stale cursors could resolve wrongly")
	}
}

// TestResetDurable pins the lifted memory-only restriction: Reset on a
// durable store resets the log together with memory (no fork), rotates
// the shipping epoch so stale cursors cannot resolve into the new file,
// and leaves a store that accepts writes and reopens to exactly what
// was written after the reset.
func TestResetDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Put("emp", fakeTable(3)); err != nil {
		t.Fatal(err)
	}
	oldEpoch := p.LogEpoch()
	if err := p.Reset(); err != nil {
		t.Fatalf("durable Reset: %v", err)
	}
	if n := len(p.List()); n != 0 {
		t.Fatalf("after Reset, %d tables remain", n)
	}
	if size, _ := p.LogSize(); size != 0 {
		t.Fatalf("after Reset, log holds %d bytes; memory and log forked", size)
	}
	if p.LogEpoch() == oldEpoch {
		t.Fatal("Reset kept the shipping epoch; stale cursors would resolve into the new file")
	}
	if err := p.Put("dept", fakeTable(2)); err != nil {
		t.Fatalf("write after Reset: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after Reset: %v", err)
	}
	defer r.Close()
	if got := len(r.List()); got != 1 {
		t.Fatalf("reopened store has %d tables, want just the post-Reset one", got)
	}
	if _, err := r.Get("dept"); err != nil {
		t.Fatalf("post-Reset table lost across reopen: %v", err)
	}
}

func TestMemoryStoreHasNoLogToShip(t *testing.T) {
	s := NewMemory()
	if _, _, _, _, err := s.ReadLog(0, 0, 1<<20); err == nil {
		t.Fatal("in-memory store served a log ship")
	}
	if e, h := s.LogHead(); e != 0 || h != 0 {
		t.Fatalf("in-memory LogHead = (%d, %d), want zeros", e, h)
	}
}

// TestCompactRacingActiveTail is the satellite fault-injection test: a
// writer mutates the primary and Compact runs repeatedly while a
// follower tails the log. The follower must either follow the stream or
// re-bootstrap on rotation — never diverge — and once the dust settles
// its state must be byte-identical to the primary's. Run under -race.
func TestCompactRacingActiveTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	p, err := OpenOptions(path, Options{Sync: SyncNever}) // keep the loop fast
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Put("emp", fakeTable(1)); err != nil {
		t.Fatal(err)
	}

	f := NewMemory()
	var cur shipCursor
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer: appends, replacements, drops
		defer wg.Done()
		for i := 0; i < 3000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 5 {
			case 0, 1, 2:
				if err := p.Append("emp", fakeTable(1).Tuples); err != nil {
					t.Error(err)
					return
				}
			case 3:
				if err := p.Put(fmt.Sprintf("side%d", i%7), fakeTable(2)); err != nil {
					t.Error(err)
					return
				}
			case 4:
				p.Drop(fmt.Sprintf("side%d", (i-1)%7)) // may or may not exist
			}
		}
	}()
	go func() { // compactor
		defer wg.Done()
		for i := 0; i < 25; i++ {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if err := p.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Tail while both are running.
	for i := 0; i < 400; i++ {
		tailOnce(t, p, f, &cur, 1<<18)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	catchUp(t, p, f, &cur)
	assertSameState(t, p, f)
}
