package scanshare

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/sched"
	"repro/internal/workload"
)

// fixture is an encrypted employees table plus ready-made query tokens.
type fixture struct {
	scheme *core.PH
	et     *ph.EncryptedTable
}

func newFixture(t testing.TB, tuples int, seed int64) *fixture {
	t.Helper()
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	table, err := workload.Employees(tuples, seed)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := core.New(key, table.Schema(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	et, err := scheme.EncryptTable(table)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{scheme: scheme, et: et}
}

// deptQuery returns the encrypted select for one department value.
func (f *fixture) deptQuery(t testing.TB, dept string) *ph.EncryptedQuery {
	t.Helper()
	q, err := f.scheme.EncryptQuery(relation.Eq{Column: "dept", Value: relation.String(dept)})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// nameQuery returns the encrypted select for a name value; names are
// near-distinct, so this mints many distinct trapdoors.
func (f *fixture) nameQuery(t testing.TB, name string) *ph.EncryptedQuery {
	t.Helper()
	q, err := f.scheme.EncryptQuery(relation.Eq{Column: "name", Value: relation.String(name)})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// serialPositions is the ground truth: EvaluateSerial over a snapshot
// prefix of n tuples.
func serialPositions(t testing.TB, et *ph.EncryptedTable, q *ph.EncryptedQuery, n int) []int {
	t.Helper()
	snap := &ph.EncryptedTable{SchemeID: et.SchemeID, Meta: et.Meta, Tuples: et.Tuples[:n]}
	res, err := core.EvaluateSerial(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	return res.Positions
}

// waitIdle polls until the sharer has no live pass (the rider's Scan
// returns at result publication, one boundary before the pass retires).
func waitIdle(t *testing.T, s *Sharer) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.passes)
		s.mu.Unlock()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sharer still has %d live passes", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitRiders polls until the sharer has registered want rider groups.
func waitRiders(t *testing.T, s *Sharer, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Riders < want {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d riders registered", s.Stats().Riders, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSingleRiderMatchesSerial(t *testing.T) {
	f := newFixture(t, 2000, 1)
	s := New(256)
	key := new(int)
	for _, dept := range []string{"HR", "FIN", "IT"} {
		q := f.deptQuery(t, dept)
		got, ok, err := s.Scan(key, Snapshot{SchemeID: f.et.SchemeID, Meta: f.et.Meta, Tuples: f.et.Tuples}, q)
		if err != nil || !ok {
			t.Fatalf("Scan(%s) = ok=%v err=%v", dept, ok, err)
		}
		want := serialPositions(t, f.et, q, len(f.et.Tuples))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("dept %s: shared positions diverge from serial (%d vs %d hits)", dept, len(got), len(want))
		}
	}
	// The zero-rider degenerate path: with no rider pending, every pass
	// must have retired and unkeyed itself.
	waitIdle(t, s)
	if st := s.Stats(); st.Riders != 3 || st.Passes == 0 {
		t.Fatalf("stats = %+v, want 3 riders over >=1 passes", st)
	}
}

func TestManyRidersMatchSerial(t *testing.T) {
	f := newFixture(t, 3000, 2)
	s := New(256)
	key := new(int)
	queries := make([]*ph.EncryptedQuery, 24)
	for i := range queries {
		if i%3 == 0 {
			queries[i] = f.deptQuery(t, workload.Departments[i%len(workload.Departments)])
		} else {
			queries[i] = f.nameQuery(t, fmt.Sprintf("Ada%03d", i))
		}
	}
	snap := Snapshot{SchemeID: f.et.SchemeID, Meta: f.et.Meta, Tuples: f.et.Tuples}
	results := make([][]int, len(queries))
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q *ph.EncryptedQuery) {
			defer wg.Done()
			got, ok, err := s.Scan(key, snap, q)
			if err != nil || !ok {
				t.Errorf("rider %d: ok=%v err=%v", i, ok, err)
				return
			}
			results[i] = got
		}(i, q)
	}
	wg.Wait()
	for i, q := range queries {
		want := serialPositions(t, f.et, q, len(f.et.Tuples))
		if !reflect.DeepEqual(results[i], want) {
			t.Fatalf("rider %d diverges from serial (%d vs %d hits)", i, len(results[i]), len(want))
		}
	}
	waitIdle(t, s)
}

func TestAttachedRidersShareOneScan(t *testing.T) {
	f := newFixture(t, 2000, 3)
	s := New(256)
	key := new(int)
	q := f.deptQuery(t, "SALES")
	snap := Snapshot{SchemeID: f.et.SchemeID, Meta: f.et.Meta, Tuples: f.et.Tuples}

	// Hold the pass at its first boundary until both queries are in, so
	// the second deterministically attaches to the first rider's group.
	release := make(chan struct{})
	s.boundary = func(any, int) {
		<-release
	}
	var wg sync.WaitGroup
	results := make([][]int, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, ok, err := s.Scan(key, snap, q)
			if err != nil || !ok {
				t.Errorf("query %d: ok=%v err=%v", i, ok, err)
			}
			results[i] = got
		}(i)
	}
	waitRiders(t, s, 1)
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Attached < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second query never attached")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	want := serialPositions(t, f.et, q, len(f.et.Tuples))
	for i := range results {
		if !reflect.DeepEqual(results[i], want) {
			t.Fatalf("query %d diverges from serial", i)
		}
	}
	st := s.Stats()
	if st.Riders != 1 || st.Attached != 1 || st.Passes != 1 {
		t.Fatalf("stats = %+v, want 1 rider, 1 attached, 1 pass", st)
	}
	waitIdle(t, s)
}

func TestLateJoinWrapsAround(t *testing.T) {
	f := newFixture(t, 1300, 4) // shard 256 -> 6 shards
	s := New(256)
	key := new(int)
	qA := f.deptQuery(t, "OPS")
	qB := f.deptQuery(t, "R&D")
	snap := Snapshot{SchemeID: f.et.SchemeID, Meta: f.et.Meta, Tuples: f.et.Tuples}

	atShard2 := make(chan struct{})
	joinedB := make(chan struct{})
	var once sync.Once
	s.boundary = func(_ any, visited int) {
		if visited == 2 {
			once.Do(func() {
				close(atShard2)
				<-joinedB
			})
		}
	}
	var wg sync.WaitGroup
	var gotA, gotB []int
	wg.Add(1)
	go func() {
		defer wg.Done()
		var ok bool
		var err error
		gotA, ok, err = s.Scan(key, snap, qA)
		if err != nil || !ok {
			t.Errorf("rider A: ok=%v err=%v", ok, err)
		}
	}()
	<-atShard2 // pass has scanned shards 0 and 1 for A
	wg.Add(1)
	go func() {
		defer wg.Done()
		var ok bool
		var err error
		gotB, ok, err = s.Scan(key, snap, qB)
		if err != nil || !ok {
			t.Errorf("rider B: ok=%v err=%v", ok, err)
		}
	}()
	waitRiders(t, s, 2)
	close(joinedB) // admit B at cursor 2: shards 2..5 now, 0..1 after wrap
	wg.Wait()

	if want := serialPositions(t, f.et, qA, len(f.et.Tuples)); !reflect.DeepEqual(gotA, want) {
		t.Fatalf("rider A diverges from serial (%d vs %d hits)", len(gotA), len(want))
	}
	if want := serialPositions(t, f.et, qB, len(f.et.Tuples)); !reflect.DeepEqual(gotB, want) {
		t.Fatalf("late rider B diverges from serial (%d vs %d hits)", len(gotB), len(want))
	}
	st := s.Stats()
	if st.LateJoins != 1 || st.Passes != 1 {
		t.Fatalf("stats = %+v, want exactly 1 late join on 1 pass", st)
	}
	waitIdle(t, s)
}

func TestMixedSnapshotLengthsShareOnePass(t *testing.T) {
	f := newFixture(t, 1500, 5) // shard 256: A sees 4 shards, B sees 6
	s := New(256)
	key := new(int)
	qA := f.deptQuery(t, "LEGAL")
	qB := f.deptQuery(t, "HR")
	nA := 1024
	snapA := Snapshot{SchemeID: f.et.SchemeID, Meta: f.et.Meta, Tuples: f.et.Tuples[:nA]}
	snapB := Snapshot{SchemeID: f.et.SchemeID, Meta: f.et.Meta, Tuples: f.et.Tuples}

	release := make(chan struct{})
	s.boundary = func(any, int) {
		<-release
	}
	var wg sync.WaitGroup
	var gotA, gotB []int
	wg.Add(2)
	go func() {
		defer wg.Done()
		var ok bool
		var err error
		gotA, ok, err = s.Scan(key, snapA, qA)
		if err != nil || !ok {
			t.Errorf("rider A: ok=%v err=%v", ok, err)
		}
	}()
	go func() {
		defer wg.Done()
		var ok bool
		var err error
		gotB, ok, err = s.Scan(key, snapB, qB)
		if err != nil || !ok {
			t.Errorf("rider B: ok=%v err=%v", ok, err)
		}
	}()
	waitRiders(t, s, 2)
	close(release)
	wg.Wait()

	if want := serialPositions(t, f.et, qA, nA); !reflect.DeepEqual(gotA, want) {
		t.Fatalf("short-snapshot rider diverges from serial (%d vs %d hits)", len(gotA), len(want))
	}
	if want := serialPositions(t, f.et, qB, len(f.et.Tuples)); !reflect.DeepEqual(gotB, want) {
		t.Fatalf("full-snapshot rider diverges from serial (%d vs %d hits)", len(gotB), len(want))
	}
	if st := s.Stats(); st.Passes != 1 {
		t.Fatalf("stats = %+v, want one shared pass", st)
	}
	waitIdle(t, s)
}

func TestSmallTableServedInline(t *testing.T) {
	f := newFixture(t, 200, 6)
	s := New(0) // default shard size 1024 > 200 tuples
	key := new(int)
	q := f.deptQuery(t, "IT")
	got, ok, err := s.Scan(key, Snapshot{SchemeID: f.et.SchemeID, Meta: f.et.Meta, Tuples: f.et.Tuples}, q)
	if err != nil || !ok {
		t.Fatalf("Scan = ok=%v err=%v", ok, err)
	}
	if want := serialPositions(t, f.et, q, len(f.et.Tuples)); !reflect.DeepEqual(got, want) {
		t.Fatalf("inline scan diverges from serial")
	}
	st := s.Stats()
	if st.Inline != 1 || st.Passes != 0 {
		t.Fatalf("stats = %+v, want inline serve with no pass", st)
	}
}

func TestEmptySnapshot(t *testing.T) {
	f := newFixture(t, 10, 7)
	s := New(0)
	q := f.deptQuery(t, "FIN")
	got, ok, err := s.Scan(new(int), Snapshot{SchemeID: f.et.SchemeID, Meta: f.et.Meta, Tuples: nil}, q)
	if err != nil || !ok {
		t.Fatalf("Scan on empty snapshot = ok=%v err=%v", ok, err)
	}
	if got == nil || len(got) != 0 {
		t.Fatalf("empty snapshot positions = %v, want empty non-nil", got)
	}
}

func TestDeclinesForeignScheme(t *testing.T) {
	s := New(0)
	q := &ph.EncryptedQuery{SchemeID: "other", Token: []byte{1, 2, 3}}
	_, ok, err := s.Scan(new(int), Snapshot{SchemeID: "other"}, q)
	if ok || err != nil {
		t.Fatalf("foreign scheme: ok=%v err=%v, want declined", ok, err)
	}
	if st := s.Stats(); st.Declined != 1 {
		t.Fatalf("stats = %+v, want 1 declined", st)
	}
}

func TestBadTokenFailsLikeEvaluate(t *testing.T) {
	f := newFixture(t, 1200, 8)
	s := New(256)
	q := &ph.EncryptedQuery{SchemeID: core.SchemeID, Token: []byte{1, 2, 3}}
	_, ok, err := s.Scan(new(int), Snapshot{SchemeID: f.et.SchemeID, Meta: f.et.Meta, Tuples: f.et.Tuples}, q)
	if !ok || err == nil {
		t.Fatalf("bad token: ok=%v err=%v, want handled error", ok, err)
	}
	if _, serialErr := core.EvaluateSerial(f.et, q); serialErr == nil || serialErr.Error() != err.Error() {
		t.Fatalf("sharer error %q does not match evaluator error %q", err, serialErr)
	}
}

// TestSixteenRidersOneAllotment is the budget-discipline gate: a pass
// serving 16 simultaneously admitted riders draws exactly ONE allotment
// from the scheduler budget — the per-query path would have drawn 16.
func TestSixteenRidersOneAllotment(t *testing.T) {
	f := newFixture(t, 2048, 9)
	s := New(256)
	key := new(int)
	queries := make([]*ph.EncryptedQuery, 16)
	wants := make([][]int, 16)
	for i := range queries {
		queries[i] = f.nameQuery(t, fmt.Sprintf("Grace%02d", i))
		wants[i] = serialPositions(t, f.et, queries[i], len(f.et.Tuples))
	}
	snap := Snapshot{SchemeID: f.et.SchemeID, Meta: f.et.Meta, Tuples: f.et.Tuples}

	release := make(chan struct{})
	s.boundary = func(any, int) {
		<-release
	}
	budget := sched.NewBudget(runtime.GOMAXPROCS(0))
	old := sched.SetProcess(budget)
	defer sched.SetProcess(old)

	results := make([][]int, 16)
	var wg sync.WaitGroup
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, ok, err := s.Scan(key, snap, queries[i])
			if err != nil || !ok {
				t.Errorf("rider %d: ok=%v err=%v", i, ok, err)
			}
			results[i] = got
		}(i)
	}
	waitRiders(t, s, 16)
	close(release)
	wg.Wait()
	waitIdle(t, s) // the pass releases its allotment on retirement

	for i := range results {
		if !reflect.DeepEqual(results[i], wants[i]) {
			t.Fatalf("rider %d diverges from serial", i)
		}
	}
	st := s.Stats()
	if st.Riders != 16 || st.Passes != 1 {
		t.Fatalf("stats = %+v, want 16 riders on 1 pass", st)
	}
	bst := budget.Stats()
	if bst.Acquires != 1 {
		t.Fatalf("budget acquires = %d, want exactly 1 for a 16-rider pass", bst.Acquires)
	}
	if idle := budget.Idle(); idle != budget.Capacity() {
		t.Fatalf("budget idle = %d, want full capacity %d back", idle, budget.Capacity())
	}
}

func TestShardWindowCoversEverySlotOnce(t *testing.T) {
	for _, tc := range []struct{ workers, lo, hi int }{
		{1, 0, 100}, {4, 0, 100}, {8, 0, 3}, {4, 50, 60}, {4, 10, 10}, {3, 0, 1024},
	} {
		var mu sync.Mutex
		covered := make(map[int]int)
		core.ShardWindow(tc.workers, tc.lo, tc.hi, func(lo, hi, slot int) {
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		})
		for i := tc.lo; i < tc.hi; i++ {
			if covered[i] != 1 {
				t.Fatalf("%+v: index %d covered %d times", tc, i, covered[i])
			}
		}
		if len(covered) != tc.hi-tc.lo {
			t.Fatalf("%+v: covered %d indices, want %d", tc, len(covered), tc.hi-tc.lo)
		}
	}
}
