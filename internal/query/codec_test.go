package query

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/authindex"
	"repro/internal/ph"
	"repro/internal/wire"
)

func sampleInfo() *PlanInfo {
	return &PlanInfo{
		Tuples: 10000,
		Steps: []StepInfo{
			{Index: 1, Source: SourceScan, Est: 0.005, EstKnown: true, Tested: 10000, Hits: 48},
			{Index: 0, Source: SourceNarrow, Est: 0.5, Tested: 48, Hits: 23},
		},
	}
}

func sampleResult() *ph.Result {
	return &ph.Result{
		Positions: []int{3, 9},
		Tuples: []ph.EncryptedTuple{
			{ID: []byte{3}, Words: [][]byte{[]byte("w3")}},
			{ID: []byte{9}, Words: [][]byte{[]byte("w9")}},
		},
	}
}

func TestResponseCodecRoundTrip(t *testing.T) {
	cases := []*Response{
		{Plan: sampleInfo(), Result: sampleResult()},
		{Plan: sampleInfo()}, // explain: plan only
		{Plan: sampleInfo(), Verified: &authindex.VerifiedResult{
			Result:  sampleResult(),
			Root:    []byte("0123456789abcdef0123456789abcdef"),
			Leaves:  10,
			Version: 42,
			Proofs: []authindex.Proof{
				{Position: 3, Siblings: [][]byte{[]byte("0123456789abcdef0123456789abcdef")}},
				{Position: 9, Siblings: nil},
			},
		}},
	}
	for ci, resp := range cases {
		enc := EncodeResponse(nil, resp)
		dec, err := DecodeResponse(wire.NewBuffer(enc))
		if err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		re := EncodeResponse(nil, dec)
		if !reflect.DeepEqual(enc, re) {
			t.Fatalf("case %d: re-encoding differs", ci)
		}
		if !reflect.DeepEqual(dec.Plan, resp.Plan) {
			t.Fatalf("case %d: plan = %+v, want %+v", ci, dec.Plan, resp.Plan)
		}
		if (dec.Result == nil) != (resp.Result == nil) || (dec.Verified == nil) != (resp.Verified == nil) {
			t.Fatalf("case %d: payload kind mismatch", ci)
		}
	}
}

func TestEncodeRequestDecodable(t *testing.T) {
	qs := []*ph.EncryptedQuery{
		{SchemeID: "swp-ph", Token: []byte("tok-a")},
		{SchemeID: "swp-ph", Token: []byte("tok-b")},
	}
	payload := EncodeRequest(nil, "emp", wire.ConjFlagVerified, qs)
	r := wire.NewBuffer(payload)
	name, err := r.String()
	if err != nil || name != "emp" {
		t.Fatalf("name = %q, %v", name, err)
	}
	flags, err := r.U8()
	if err != nil || flags != wire.ConjFlagVerified {
		t.Fatalf("flags = %v, %v", flags, err)
	}
	n, err := r.U32()
	if err != nil || n != 2 {
		t.Fatalf("count = %d, %v", n, err)
	}
	for i := uint32(0); i < n; i++ {
		q, err := wire.DecodeQuery(r)
		if err != nil {
			t.Fatal(err)
		}
		if q.SchemeID != qs[i].SchemeID || string(q.Token) != string(qs[i].Token) {
			t.Fatalf("query %d round-trip mismatch", i)
		}
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeResponseRejectsHostileCounts(t *testing.T) {
	// A tiny frame declaring a huge plan must fail cleanly, not allocate.
	payload := wire.AppendU8(nil, 0)
	payload = wire.AppendU32(payload, 100)
	payload = wire.AppendU32(payload, 0xFFFFFFFF)
	if _, err := DecodeResponse(wire.NewBuffer(payload)); err == nil {
		t.Fatal("hostile step count must be rejected")
	}
	// An estimate outside [0,1] (or NaN) is a protocol violation.
	payload = wire.AppendU8(nil, 0)
	payload = wire.AppendU32(payload, 100)
	payload = wire.AppendU32(payload, 1)
	payload = wire.AppendU32(payload, 0)                  // index
	payload = wire.AppendU8(payload, 0)                   // source
	payload = wire.AppendU64(payload, 0x7FF8000000000001) // NaN
	payload = wire.AppendU8(payload, 0)
	payload = wire.AppendU32(payload, 0)
	payload = wire.AppendU32(payload, 0)
	if _, err := DecodeResponse(wire.NewBuffer(payload)); err == nil {
		t.Fatal("NaN estimate must be rejected")
	}
}

func TestRenderUsesLabels(t *testing.T) {
	out := sampleInfo().Render("emp", []string{"dept = 'HR'", "salary = 7500"})
	for _, want := range []string{"plan for emp (10000 tuples)", "salary = 7500", "dept = 'HR'", "full-scan", "narrow", "observed", "prior"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered plan missing %q:\n%s", want, out)
		}
	}
	// Steps render in execution order: the selective conjunct (request
	// index 1) first.
	if strings.Index(out, "salary = 7500") > strings.Index(out, "dept = 'HR'") {
		t.Fatalf("execution order not reflected:\n%s", out)
	}
}
