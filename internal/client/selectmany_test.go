package client

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/storage"
)

// SelectMany used to bypass the replica-aware read routing and talk
// straight to the primary connection. These tests pin the fix: the
// batch rides withRead like every other read — replicas serve it,
// failures quarantine and fail over — and a pinned client gets the
// one-round verified discipline instead of an unverified batch.

// TestSelectManyRoutedThroughReplicas: with a healthy replica attached,
// the batch is served by the replica, not the primary.
func TestSelectManyRoutedThroughReplicas(t *testing.T) {
	store := storage.NewMemory()
	conn := startPipe(t, store)
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	db.PinRoot(nil, 0) // isolate the routing assertion from verification

	srv := server.New(store, nil)
	dial, _ := replicaDialer(t, srv)
	db.AddReplica(dial)

	tables, err := db.SelectMany([]relation.Eq{
		{Column: "dept", Value: relation.String("HR")},
		{Column: "dept", Value: relation.String("IT")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].Len() != 2 || tables[1].Len() != 1 {
		t.Fatalf("batch results wrong: %v", tables)
	}
	stats := db.ReadStats()
	if stats.ReplicaReads == 0 {
		t.Fatalf("batch bypassed the replicas: %+v", stats)
	}
	if stats.PrimaryReads != 0 {
		t.Fatalf("batch hit the primary despite a healthy replica: %+v", stats)
	}
}

// TestSelectManyFailsOverToPrimary: a dead replica quarantines and the
// batch falls back to the primary instead of erroring.
func TestSelectManyFailsOverToPrimary(t *testing.T) {
	store := storage.NewMemory()
	conn := startPipe(t, store)
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	db.PinRoot(nil, 0)

	srv := server.New(store, nil)
	dial, kill := replicaDialer(t, srv)
	db.AddReplica(dial)
	kill()

	tables, err := db.SelectMany([]relation.Eq{{Column: "dept", Value: relation.String("HR")}})
	if err != nil {
		t.Fatalf("batch with dead replica: %v", err)
	}
	if len(tables) != 1 || tables[0].Len() != 2 {
		t.Fatalf("batch results wrong: %v", tables)
	}
	stats := db.ReadStats()
	if stats.Failovers == 0 || stats.PrimaryReads == 0 {
		t.Fatalf("dead replica did not fail over: %+v", stats)
	}
}

// TestSelectManyPinnedUsesVerifiedReads: with a root pinned, SelectMany
// serves each select through the one-round verified protocol, so a
// mutated table fails the batch.
func TestSelectManyPinnedUsesVerifiedReads(t *testing.T) {
	store := storage.NewMemory()
	conn := startPipe(t, store)
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}

	tables, err := db.SelectMany([]relation.Eq{{Column: "dept", Value: relation.String("HR")}})
	if err != nil {
		t.Fatalf("verified batch: %v", err)
	}
	if len(tables) != 1 || tables[0].Len() != 2 {
		t.Fatalf("verified batch results wrong: %v", tables)
	}

	ct, err := store.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	mutated := ct.Clone()
	mutated.Tuples[0].ID[0] ^= 0xFF
	if err := store.Put("emp", mutated); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SelectMany([]relation.Eq{{Column: "dept", Value: relation.String("HR")}}); err == nil {
		t.Fatal("pinned SelectMany accepted a mutated table")
	}
}
