package shard

import (
	"fmt"
	"log"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/storage"
)

// startShardConn serves store over an in-memory pipe and returns the
// client side.
func startShardConn(t *testing.T, store *storage.Store) *client.Conn {
	t.Helper()
	srv := server.New(store, log.New(shardTestWriter{t}, "", 0))
	cliSide, srvSide := net.Pipe()
	go srv.ServeConn(srvSide)
	conn := client.NewConn(cliSide)
	t.Cleanup(func() { conn.Close() })
	return conn
}

type shardTestWriter struct{ t *testing.T }

func (w shardTestWriter) Write(p []byte) (int, error) {
	w.t.Logf("server: %s", strings.TrimSpace(string(p)))
	return len(p), nil
}

// newCluster builds an in-process coordinator over n piped memory
// stores and returns both, so tests can reach behind a shard's server.
func newCluster(t *testing.T, n int) (*Coordinator, []*storage.Store) {
	t.Helper()
	stores := make([]*storage.Store, n)
	pools := make([]*client.ReadPool, n)
	for i := range stores {
		stores[i] = storage.NewMemory()
		pools[i] = client.NewReadPool(startShardConn(t, stores[i]))
	}
	co, err := NewCoordinator(Map{Version: 1, Count: n}, pools)
	if err != nil {
		t.Fatal(err)
	}
	return co, stores
}

func shardSchema() *relation.Schema {
	return relation.MustSchema("emp",
		relation.Column{Name: "name", Type: relation.TypeString, Width: 12},
		relation.Column{Name: "dept", Type: relation.TypeString, Width: 5},
		relation.Column{Name: "salary", Type: relation.TypeInt, Width: 6},
	)
}

func shardTable() *relation.Table {
	t := relation.NewTable(shardSchema())
	depts := []string{"HR", "IT", "OPS"}
	for i := 0; i < 24; i++ {
		t.MustInsert(
			relation.String(fmt.Sprintf("emp%02d", i)),
			relation.String(depts[i%len(depts)]),
			relation.Int(int64(5000+100*i)),
		)
	}
	return t
}

func shardScheme(t *testing.T) ph.Scheme {
	t.Helper()
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.New(key, shardSchema(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// rowsOf renders a table's rows as sorted strings: sharded unions
// concatenate per-shard matches in shard order, so equivalence against
// a single-server oracle is up to row order.
func rowsOf(t *relation.Table) []string {
	rows := make([]string, t.Len())
	for i := 0; i < t.Len(); i++ {
		rows[i] = fmt.Sprintf("%v", t.Tuple(i))
	}
	sort.Strings(rows)
	return rows
}

func sameRows(t *testing.T, label string, got, want *relation.Table) {
	t.Helper()
	g, w := rowsOf(got), rowsOf(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d rows, oracle has %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row %d differs:\n%s\nvs\n%s", label, i, g[i], w[i])
		}
	}
}

// TestShardedEquivalence: every read path over a 4-shard cluster
// answers exactly what a single-server oracle answers.
func TestShardedEquivalence(t *testing.T) {
	co, _ := newCluster(t, 4)
	scheme := shardScheme(t)
	db := client.NewShardedDB(co, scheme, "emp")
	oracle := client.NewDB(startShardConn(t, storage.NewMemory()), scheme, "emp")

	src := shardTable()
	if err := db.CreateTable(src); err != nil {
		t.Fatal(err)
	}
	if err := oracle.CreateTable(src); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		"SELECT * FROM emp WHERE dept = 'HR'",
		"SELECT * FROM emp WHERE dept = 'IT' AND salary = 5100",
		"SELECT * FROM emp",
		"SELECT * FROM emp WHERE name = 'emp07'",
		"SELECT * FROM emp WHERE dept = 'NONE'",
	}
	for _, q := range queries {
		got, err := db.Query(q)
		if err != nil {
			t.Fatalf("sharded %q: %v", q, err)
		}
		want, err := oracle.Query(q)
		if err != nil {
			t.Fatalf("oracle %q: %v", q, err)
		}
		sameRows(t, q, got, want)
	}

	// Inserts advance the per-shard pinned vector; reads stay verified
	// and equivalent.
	extra := []relation.Tuple{
		{relation.String("newhire1"), relation.String("HR"), relation.Int(4000)},
		{relation.String("newhire2"), relation.String("IT"), relation.Int(4100)},
		{relation.String("newhire3"), relation.String("OPS"), relation.Int(4200)},
	}
	if err := db.Insert(extra...); err != nil {
		t.Fatal(err)
	}
	if err := oracle.Insert(extra...); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"SELECT * FROM emp WHERE dept = 'HR'", "SELECT * FROM emp"} {
		got, err := db.Query(q)
		if err != nil {
			t.Fatalf("sharded %q after insert: %v", q, err)
		}
		want, err := oracle.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, q+" after insert", got, want)
	}

	// Explain reports the scatter.
	info, err := db.Explain("SELECT * FROM emp WHERE dept = 'HR'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info, "scattered to 4 shards") {
		t.Fatalf("explain does not mention the scatter: %q", info)
	}
}

// TestShardedRootVectorPersistence: ShardRoots/PinShardRoots carry the
// root-of-roots across a client restart, and the first insert after the
// restart rebuilds per-shard frontiers verified against the vector.
func TestShardedRootVectorPersistence(t *testing.T) {
	co, _ := newCluster(t, 3)
	scheme := shardScheme(t)
	db := client.NewShardedDB(co, scheme, "emp")
	if err := db.CreateTable(shardTable()); err != nil {
		t.Fatal(err)
	}
	roots, tuples := db.ShardRoots()
	if len(roots) != 3 {
		t.Fatalf("%d pinned roots, want 3", len(roots))
	}

	// "Restart": a fresh DB with only the persisted vector.
	db2 := client.NewShardedDB(co, scheme, "emp")
	if err := db2.PinShardRoots(roots, tuples); err != nil {
		t.Fatal(err)
	}
	got, err := db2.Select(relation.Eq{Column: "dept", Value: relation.String("HR")})
	if err != nil {
		t.Fatalf("verified select with re-pinned vector: %v", err)
	}
	if got.Len() == 0 {
		t.Fatal("verified select returned nothing")
	}
	if err := db2.Insert(relation.Tuple{relation.String("rejoin"), relation.String("HR"), relation.Int(1)}); err != nil {
		t.Fatalf("insert after re-pin (frontier rebuild): %v", err)
	}
	got, err = db2.Select(relation.Eq{Column: "name", Value: relation.String("rejoin")})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("inserted row not found: %d rows", got.Len())
	}

	// A wrong-length vector is refused.
	if err := db2.PinShardRoots(roots[:2], tuples[:2]); err == nil {
		t.Fatal("short root vector accepted")
	}
}

// TestConcurrentInsertVsScatterQuery exercises the coordinator from two
// goroutines — one inserting, one scatter-querying — under -race. The
// per-shard pools serialise access to each connection; the coordinator
// itself must be safe for concurrent scatters.
func TestConcurrentInsertVsScatterQuery(t *testing.T) {
	co, _ := newCluster(t, 4)
	scheme := shardScheme(t)
	writer := client.NewShardedDB(co, scheme, "emp")
	reader := client.NewShardedDB(co, scheme, "emp")
	if err := writer.CreateTable(shardTable()); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	errCh := make(chan error, 2)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			err := writer.Insert(relation.Tuple{
				relation.String(fmt.Sprintf("conc%02d", i)),
				relation.String("HR"),
				relation.Int(int64(i)),
			})
			if err != nil {
				errCh <- fmt.Errorf("insert %d: %w", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			got, err := reader.Select(relation.Eq{Column: "dept", Value: relation.String("IT")})
			if err != nil {
				errCh <- fmt.Errorf("select %d: %w", i, err)
				return
			}
			if got.Len() == 0 {
				errCh <- fmt.Errorf("select %d returned nothing", i)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestKillShardMidQuery: severing one shard's only connection turns the
// scatter into a deterministic error naming the shard — no hang, no
// partial merge — while a shard with a replica rides through the loss
// of a follower with quarantine + failover.
func TestKillShardMidQuery(t *testing.T) {
	stores := []*storage.Store{storage.NewMemory(), storage.NewMemory(), storage.NewMemory()}
	conns := make([]*client.Conn, 3)
	pools := make([]*client.ReadPool, 3)
	for i := range stores {
		conns[i] = startShardConn(t, stores[i])
		pools[i] = client.NewReadPool(conns[i])
	}
	// Shard 2 gets a flaky replica: first dial works, then dies.
	srv2 := server.New(stores[2], nil)
	var handed []net.Conn
	dead := false
	pools[2].AddReplica(func() (*client.Conn, error) {
		if dead {
			return nil, fmt.Errorf("replica is down")
		}
		cliSide, srvSide := net.Pipe()
		go srv2.ServeConn(srvSide)
		handed = append(handed, cliSide, srvSide)
		return client.NewConn(cliSide), nil
	})
	co, err := NewCoordinator(Map{Version: 1, Count: 3}, pools)
	if err != nil {
		t.Fatal(err)
	}
	scheme := shardScheme(t)
	db := client.NewShardedDB(co, scheme, "emp")
	if err := db.CreateTable(shardTable()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Select(relation.Eq{Column: "dept", Value: relation.String("HR")}); err != nil {
		t.Fatalf("healthy scatter: %v", err)
	}

	// Kill shard 2's replica: reads fail over to its primary.
	dead = true
	for _, c := range handed {
		c.Close()
	}
	if _, err := db.Select(relation.Eq{Column: "dept", Value: relation.String("HR")}); err != nil {
		t.Fatalf("scatter after replica loss: %v", err)
	}
	stats := co.ShardStats()
	if stats[2].ReplicaFailures == 0 && stats[2].Failovers == 0 {
		t.Fatalf("replica loss left no trace in shard 2 stats: %+v", stats[2])
	}

	// Kill shard 1 outright: the scatter fails loudly, naming the shard.
	conns[1].Close()
	_, err = db.Select(relation.Eq{Column: "dept", Value: relation.String("HR")})
	if err == nil {
		t.Fatal("scatter with a dead shard succeeded")
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("error does not name the dead shard: %v", err)
	}
}

// TestByzantineShardDrill: one mutated tuple on one shard.
//
// Sole-primary variant: the pinned root vector rejects the shard's
// sub-answer and the whole read fails loudly — the merge is never
// poisoned. Byzantine-follower variant: the verification callback runs
// inside the shard's read routing, so the lying follower is quarantined
// like a dead one, the shard's primary serves the retry, and the read
// succeeds while the failure is counted.
func TestByzantineShardDrill(t *testing.T) {
	co, stores := newCluster(t, 4)
	scheme := shardScheme(t)
	db := client.NewShardedDB(co, scheme, "emp")
	if err := db.CreateTable(shardTable()); err != nil {
		t.Fatal(err)
	}

	// Find a shard that actually holds tuples and flip one ciphertext
	// byte behind the authenticated index.
	target := -1
	for i, st := range stores {
		ct, err := st.Get("emp")
		if err != nil {
			t.Fatal(err)
		}
		if len(ct.Tuples) > 0 {
			target = i
			mutated := ct.Clone()
			mutated.Tuples[0].ID[0] ^= 0xFF
			if err := st.Put("emp", mutated); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if target < 0 {
		t.Fatal("no shard holds tuples")
	}

	_, err := db.Select(relation.Eq{Column: "dept", Value: relation.String("HR")})
	if err == nil {
		t.Fatal("verified scatter accepted a mutated shard")
	}
	if !strings.Contains(err.Error(), "shard") {
		t.Fatalf("rejection does not name the shard: %v", err)
	}
}

func TestByzantineFollowerQuarantinedShardKeepsServing(t *testing.T) {
	// Three honest shards; shard 0 additionally has a Byzantine
	// follower serving a mutated copy of its partition.
	co, stores := newCluster(t, 3)
	scheme := shardScheme(t)
	db := client.NewShardedDB(co, scheme, "emp")
	if err := db.CreateTable(shardTable()); err != nil {
		t.Fatal(err)
	}

	target := -1
	for i, st := range stores {
		ct, err := st.Get("emp")
		if err != nil {
			t.Fatal(err)
		}
		if len(ct.Tuples) == 0 {
			continue
		}
		target = i
		evil := storage.NewMemory()
		mutated := ct.Clone()
		mutated.Tuples[0].ID[0] ^= 0xFF
		if err := evil.Put("emp", mutated); err != nil {
			t.Fatal(err)
		}
		evilSrv := server.New(evil, nil)
		if err := co.AddShardReplicas(i, client.DialConfig{DialFunc: func(string) (net.Conn, error) {
			cliSide, srvSide := net.Pipe()
			go evilSrv.ServeConn(srvSide)
			return cliSide, nil
		}}, "byzantine"); err != nil {
			t.Fatal(err)
		}
		break
	}
	if target < 0 {
		t.Fatal("no shard holds tuples")
	}

	// The read succeeds: the follower's mutated sub-answer fails the
	// pinned vector inside the routing, quarantines it, and the shard's
	// primary answers the retry.
	got, err := db.Select(relation.Eq{Column: "dept", Value: relation.String("HR")})
	if err != nil {
		t.Fatalf("verified scatter with Byzantine follower: %v", err)
	}
	if got.Len() == 0 {
		t.Fatal("verified scatter returned nothing")
	}
	stats := co.ShardStats()
	if stats[target].ReplicaFailures == 0 {
		t.Fatalf("Byzantine follower was not detected: %+v", stats[target])
	}
}
