package bench

import (
	"fmt"

	"repro/internal/attacks"
	"repro/internal/core"
)

// RunE11 regenerates experiment E11: leakage accumulation over the query
// budget. Definition 2.1 parameterises Eve by the number q of observed
// queries; this experiment turns the §2 hospital attack into a curve —
// how fast does a passive Eve's estimate of every hospital's hidden
// fatality ratio converge as the application's query stream flows past
// her? Expected shape: at q = 0 her error equals the blind baseline; it
// decays toward ~0 as coverage of the (hospital, fatal) query pairs
// approaches 1.
func RunE11(patients, trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "leakage accumulation: passive Eve's error vs observed query budget q (scheme: " + core.SchemeID + ")",
		Header: []string{"q", "mean |err|", "blind |err|", "coverage"},
		Notes: []string{
			"generalises E2: Alex issues q queries drawn from a 5-query application mix; Eve fingerprints each by result size and estimates all three hidden per-hospital fatality ratios",
			fmt.Sprintf("patients: %d, trials per q: %d; fallback estimate is the public marginal 0.08", patients, trials),
		},
	}
	qs := []int{0, 1, 2, 4, 8, 16, 32}
	reports, err := attacks.LeakageAccumulation(MustFactory(core.SchemeID), patients, trials, qs, seed)
	if err != nil {
		return nil, fmt.Errorf("bench: E11: %w", err)
	}
	for _, r := range reports {
		t.AddRow(fmt.Sprintf("%d", r.Q), f3(r.MeanAbsError), f3(r.BlindError), f3(r.Coverage))
	}
	return t, nil
}
