package authindex

import (
	"fmt"

	"repro/internal/ph"
	"repro/internal/wire"
)

// VerifiedResult is the answer to a one-round verified query
// (wire.CmdQueryVerified): the query result together with the inclusion
// proofs, root, leaf count and store version of the *same* table
// snapshot, taken under a single lock acquisition server-side. Because
// everything is cut from one snapshot, proofs always verify against the
// root they travel with — the Root-then-Prove TOCTOU of the legacy
// two-round protocol is impossible by construction. The client still
// decides whether to trust the snapshot by comparing Root against its
// pinned root.
type VerifiedResult struct {
	// Result holds the matching positions and encrypted tuples.
	Result *ph.Result
	// Root is the tree root of the snapshot that produced Result.
	Root []byte
	// Leaves is the snapshot's tuple count (the proof-shape parameter).
	Leaves int
	// Version is the store's monotonic version stamp for the snapshot.
	Version uint64
	// Proofs are inclusion proofs for Result's tuples, aligned with
	// Result.Positions.
	Proofs []Proof
}

// EncodeVerifiedResult serialises a verified result for the wire.
func EncodeVerifiedResult(dst []byte, vr *VerifiedResult) []byte {
	dst = wire.EncodeResult(dst, vr.Result)
	dst = wire.AppendBytes(dst, vr.Root)
	dst = wire.AppendU32(dst, uint32(vr.Leaves))
	dst = wire.AppendU64(dst, vr.Version)
	return EncodeProofs(dst, vr.Proofs)
}

// DecodeVerifiedResult parses a verified result from a wire buffer.
func DecodeVerifiedResult(r *wire.Buffer) (*VerifiedResult, error) {
	res, err := wire.DecodeResult(r)
	if err != nil {
		return nil, fmt.Errorf("authindex: verified result: %w", err)
	}
	root, err := r.Bytes()
	if err != nil {
		return nil, fmt.Errorf("authindex: verified result root: %w", err)
	}
	leaves, err := r.U32()
	if err != nil {
		return nil, fmt.Errorf("authindex: verified result leaf count: %w", err)
	}
	version, err := r.U64()
	if err != nil {
		return nil, fmt.Errorf("authindex: verified result version: %w", err)
	}
	proofs, err := DecodeProofs(r)
	if err != nil {
		return nil, fmt.Errorf("authindex: verified result proofs: %w", err)
	}
	return &VerifiedResult{Result: res, Root: root, Leaves: int(leaves), Version: version, Proofs: proofs}, nil
}
