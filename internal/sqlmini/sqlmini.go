// Package sqlmini parses the SQL fragment the paper's construction can
// outsource: exact selects, optionally with projection and conjunction.
//
//	SELECT * FROM patients WHERE hospital = 1;
//	SELECT name, salary FROM emp WHERE dept = 'HR' AND salary = 7500;
//
// The grammar is deliberately exactly the paper's query class — the
// homomorphism preserves single-attribute exact selects. A conjunction
// is executed as one encrypted token per conjunct: the client pushes all
// of them down in a single CmdQueryConj and the server's
// selectivity-ordered planner (internal/query) intersects the
// scheme-opaque position sets where the data lives, so only tuples
// satisfying the whole conjunction cross the wire (against pre-pushdown
// servers the client falls back to intersecting per-equality results
// after decryption). Projection is applied after decryption either way.
// Range predicates, joins, OR and aggregation are rejected at parse time
// with a pointer to the paper's scope (§3, "a privacy homomorphism
// preserving exact selects").
package sqlmini

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/relation"
)

// Query is the parsed form of a supported statement.
type Query struct {
	// Projection lists the selected columns; nil means '*'.
	Projection []string
	// Table is the relation name after FROM.
	Table string
	// Where holds the conjunction of equality predicates; it may be
	// empty (full-table select, served by decrypting the whole table).
	Where []Condition
}

// Condition is one equality predicate column = literal.
type Condition struct {
	// Column is the attribute name.
	Column string
	// StrVal holds the literal for quoted strings.
	StrVal string
	// IntVal holds the literal for integers.
	IntVal int64
	// IsString distinguishes the two literal kinds.
	IsString bool
}

// Bind type-checks the condition against a schema and converts it into a
// relation predicate. Integer literals may bind to string columns (the
// digits taken verbatim) but not vice versa.
func (c Condition) Bind(s *relation.Schema) (relation.Eq, error) {
	col, ok := s.Column(c.Column)
	if !ok {
		return relation.Eq{}, fmt.Errorf("sqlmini: unknown column %q in table %q", c.Column, s.Name)
	}
	var v relation.Value
	switch {
	case c.IsString && col.Type == relation.TypeString:
		v = relation.String(c.StrVal)
	case !c.IsString && col.Type == relation.TypeInt:
		v = relation.Int(c.IntVal)
	case !c.IsString && col.Type == relation.TypeString:
		v = relation.String(strconv.FormatInt(c.IntVal, 10))
	default:
		return relation.Eq{}, fmt.Errorf("sqlmini: string literal %q compared to int column %q", c.StrVal, c.Column)
	}
	eq := relation.Eq{Column: c.Column, Value: v}
	if err := eq.Validate(s); err != nil {
		return relation.Eq{}, err
	}
	return eq, nil
}

// String renders the query back to SQL.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Projection == nil {
		b.WriteString("*")
	} else {
		b.WriteString(strings.Join(q.Projection, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(q.Table)
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			if c.IsString {
				fmt.Fprintf(&b, "%s = '%s'", c.Column, c.StrVal)
			} else {
				fmt.Fprintf(&b, "%s = %d", c.Column, c.IntVal)
			}
		}
	}
	b.WriteString(";")
	return b.String()
}

// tokenKind enumerates lexer token kinds.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokStar
	tokComma
	tokEquals
	tokSemicolon
	tokLess
	tokGreater
	tokOther
)

// token is one lexed token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex tokenises the input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEquals, "=", i})
			i++
		case c == ';':
			toks = append(toks, token{tokSemicolon, ";", i})
			i++
		case c == '<':
			toks = append(toks, token{tokLess, "<", i})
			i++
		case c == '>':
			toks = append(toks, token{tokGreater, ">", i})
			i++
		case c == '\'':
			j := i + 1
			for j < len(input) && input[j] != '\'' {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("sqlmini: unterminated string literal at offset %d", i)
			}
			toks = append(toks, token{tokString, input[i+1 : j], i})
			i = j + 1
		case c == '-' || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(input) && input[j] >= '0' && input[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case isIdentByte(c):
			j := i + 1
			for j < len(input) && isIdentByte(input[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("sqlmini: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// parser walks the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// expectKeyword consumes an identifier matching the keyword
// case-insensitively.
func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("sqlmini: expected %s at offset %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

// isKeyword reports whether the token is the given keyword.
func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// Parse parses one statement. Unsupported SQL (ranges, joins, aggregates,
// OR) produces a descriptive error rather than silently wrong results.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	// Projection list.
	if p.peek().kind == tokStar {
		p.next()
	} else {
		for {
			t := p.next()
			if t.kind != tokIdent || isKeyword(t, "FROM") || isKeyword(t, "WHERE") {
				return nil, fmt.Errorf("sqlmini: expected column name at offset %d, got %q", t.pos, t.text)
			}
			if isAggregate(t.text) && p.peek().kind == tokOther {
				return nil, fmt.Errorf("sqlmini: aggregates are not supported (exact selects only)")
			}
			q.Projection = append(q.Projection, t.text)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("sqlmini: expected table name at offset %d, got %q", t.pos, t.text)
	}
	q.Table = t.text
	// A second table (comma or JOIN) is out of scope.
	if p.peek().kind == tokComma || isKeyword(p.peek(), "JOIN") {
		return nil, fmt.Errorf("sqlmini: joins are not supported — the construction preserves exact selects on one relation (paper §3)")
	}
	// Optional WHERE clause.
	if isKeyword(p.peek(), "WHERE") {
		p.next()
		for {
			cond, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, cond)
			if !isKeyword(p.peek(), "AND") {
				break
			}
			p.next()
		}
		if isKeyword(p.peek(), "OR") {
			return nil, fmt.Errorf("sqlmini: OR is not supported — only conjunctions of exact selects")
		}
	}
	if p.peek().kind == tokSemicolon {
		p.next()
	}
	if p.peek().kind != tokEOF {
		t := p.peek()
		return nil, fmt.Errorf("sqlmini: unexpected trailing input %q at offset %d", t.text, t.pos)
	}
	return q, nil
}

// parseCondition parses one `column = literal`.
func (p *parser) parseCondition() (Condition, error) {
	t := p.next()
	if t.kind != tokIdent {
		return Condition{}, fmt.Errorf("sqlmini: expected column name at offset %d, got %q", t.pos, t.text)
	}
	col := t.text
	op := p.next()
	switch op.kind {
	case tokEquals:
		// supported
	case tokLess, tokGreater:
		return Condition{}, fmt.Errorf("sqlmini: range predicates are not supported — the construction preserves exact selects only (paper §3)")
	default:
		return Condition{}, fmt.Errorf("sqlmini: expected '=' after column %q at offset %d, got %q", col, op.pos, op.text)
	}
	lit := p.next()
	switch lit.kind {
	case tokString:
		return Condition{Column: col, StrVal: lit.text, IsString: true}, nil
	case tokNumber:
		n, err := strconv.ParseInt(lit.text, 10, 64)
		if err != nil {
			return Condition{}, fmt.Errorf("sqlmini: invalid integer literal %q at offset %d: %w", lit.text, lit.pos, err)
		}
		return Condition{Column: col, IntVal: n}, nil
	default:
		return Condition{}, fmt.Errorf("sqlmini: expected literal after %q = at offset %d, got %q", col, lit.pos, lit.text)
	}
}

// isAggregate recognises common aggregate function names for better error
// messages.
func isAggregate(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}
