// Package sched provides the server-wide parallelism budget: a weighted
// semaphore sized to runtime.GOMAXPROCS that every multi-core scan in the
// process draws its workers from.
//
// Before the budget existed, core.Evaluate sized a worker pool at
// GOMAXPROCS *per query* and server.queryBatch put several queries in
// flight per frame, so C concurrent clients could stack C×GOMAXPROCS scan
// goroutines. The runtime still bounds CPU at GOMAXPROCS threads, but the
// oversubscription inflates scheduling latency and tail latency under
// load. With the budget, the total number of *extra* scan workers across
// all concurrent queries never exceeds the budget's capacity.
//
// Deadlock freedom: Acquire never blocks. The calling goroutine itself is
// always granted as the first worker — it exists anyway, so letting it
// scan costs no new goroutine — and only the extra workers are drawn from
// spare capacity. A query therefore always makes progress (worst case:
// single-threaded), no matter how saturated the budget is.
package sched

import (
	"runtime"
	"sync/atomic"
)

// Budget is a weighted semaphore handing out scan workers. The zero value
// is not usable; construct with NewBudget.
type Budget struct {
	capacity int64
	avail    atomic.Int64

	acquires atomic.Uint64
	extras   atomic.Uint64
	releases atomic.Uint64
}

// Stats are a budget's monotonic accounting counters. They exist so tests
// can assert allotment discipline — most importantly that a shared scan
// pass serving many riders draws ONE allotment, not one per rider.
type Stats struct {
	// Acquires counts Acquire calls (each is one allotment, whatever its
	// size).
	Acquires uint64
	// Extras counts the extra workers granted beyond the guaranteed
	// caller across all acquires.
	Extras uint64
	// Releases counts Release calls that returned extras (Release of a
	// minimum grant of 1 is a no-op and is not counted).
	Releases uint64
}

// Stats returns a snapshot of the budget's counters. The fields are read
// independently, so a snapshot taken concurrently with traffic may be
// momentarily unbalanced; quiesce before asserting exact values.
func (b *Budget) Stats() Stats {
	return Stats{
		Acquires: b.acquires.Load(),
		Extras:   b.extras.Load(),
		Releases: b.releases.Load(),
	}
}

// NewBudget creates a budget with the given capacity; capacities below 1
// are clamped to 1.
func NewBudget(capacity int) *Budget {
	if capacity < 1 {
		capacity = 1
	}
	b := &Budget{capacity: int64(capacity)}
	b.avail.Store(int64(capacity))
	return b
}

// Capacity returns the budget's total worker count.
func (b *Budget) Capacity() int { return int(b.capacity) }

// Idle returns how many workers are currently unclaimed (for tests and
// introspection; the value may be stale by the time it is read).
func (b *Budget) Idle() int { return int(b.avail.Load()) }

// Acquire grants between 1 and want workers without blocking. The caller
// itself is the first worker — the guaranteed minimum that makes the
// scheme deadlock-free — and up to want-1 extras are claimed from spare
// capacity. The return value must be handed back via Release.
func (b *Budget) Acquire(want int) int {
	if want < 1 {
		want = 1
	}
	extra := b.tryAcquire(int64(want - 1))
	b.acquires.Add(1)
	if extra > 0 {
		b.extras.Add(uint64(extra))
	}
	return 1 + extra
}

// Release returns the extra workers of an Acquire(…) = granted grant.
func (b *Budget) Release(granted int) {
	if granted <= 1 {
		return
	}
	b.avail.Add(int64(granted - 1))
	b.releases.Add(1)
}

// tryAcquire claims up to want units, returning how many it got (possibly
// zero). Lock-free: a CAS loop against the available count.
func (b *Budget) tryAcquire(want int64) int {
	if want <= 0 {
		return 0
	}
	for {
		cur := b.avail.Load()
		if cur <= 0 {
			return 0
		}
		got := min(want, cur)
		if b.avail.CompareAndSwap(cur, cur-got) {
			return int(got)
		}
	}
}

// process is the shared process-wide budget. Everything that scans in
// parallel — core.Evaluate today — takes workers from here, which is what
// bounds total scan parallelism across concurrent clients.
var process atomic.Pointer[Budget]

func init() {
	process.Store(NewBudget(runtime.GOMAXPROCS(0)))
}

// Process returns the process-wide budget. Callers must Release to the
// same *Budget they Acquired from (hold the pointer across the pair), so
// a concurrent SetProcess cannot unbalance the counts.
func Process() *Budget {
	return process.Load()
}

// SetProcess replaces the process-wide budget and returns the previous
// one. It exists for benchmarks that emulate the pre-budget behaviour
// (e.g. an oversized budget reproduces the old every-query-gets-
// GOMAXPROCS-workers oversubscription) and for servers that want a
// different capacity. In-flight Acquire/Release pairs stay balanced
// because holders release to the budget instance they acquired from.
func SetProcess(b *Budget) *Budget {
	if b == nil {
		b = NewBudget(runtime.GOMAXPROCS(0))
	}
	return process.Swap(b)
}
