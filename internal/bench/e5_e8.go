package bench

import (
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"time"

	"repro/internal/authindex"
	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/schemes/gohph"
	"repro/internal/swp"
	"repro/internal/workload"
)

// RunE5 regenerates experiment E5: the false-positive rate of both
// searchable-encryption instantiations versus their security parameter.
// §3 claims "the error rate is relatively small for all practical
// purposes"; here it is measured against theory — 2^(−8m) per word slot
// for SWP's m-byte checksum, and the Bloom rate (1 − e^(−kn/m))^k per
// document for the Goh instantiation — by searching random data for an
// absent word.
func RunE5(slots int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "searchable-encryption false-positive rate vs security parameter (probes per cell: " + fmt.Sprint(slots) + ")",
		Header: []string{"instantiation", "parameter", "theoretical", "measured", "false hits"},
		Notes: []string{
			"paper §3: 'the error rate is relatively small for all practical purposes, this does not affect the efficiency of our construction'",
			"SWP: trapdoor for an absent word vs random-word documents (per word slot); Goh: absent-value queries vs encrypted tables (per tuple)",
		},
	}
	const wordLen = 8
	rng := mrand.New(mrand.NewSource(seed))
	for _, m := range []int{1, 2, 3, 4} {
		key, err := crypto.RandomKey()
		if err != nil {
			return nil, err
		}
		scheme, err := swp.New(key, swp.Params{WordLen: wordLen, ChecksumLen: m})
		if err != nil {
			return nil, err
		}
		// Absent word: all 0xFF never produced by the generator below.
		absent := make([]byte, wordLen)
		for i := range absent {
			absent[i] = 0xFF
		}
		td, err := scheme.NewTrapdoor(absent)
		if err != nil {
			return nil, err
		}
		falseHits := 0
		const docSize = 64
		for probed := 0; probed < slots; probed += docSize {
			docID := make([]byte, 8)
			if _, err := rand.Read(docID); err != nil {
				return nil, err
			}
			words := make([][]byte, docSize)
			for i := range words {
				w := make([]byte, wordLen)
				for j := range w {
					w[j] = byte(rng.Intn(255)) // never 0xFF in every byte
				}
				words[i] = w
			}
			cws, err := scheme.EncryptDocument(docID, words)
			if err != nil {
				return nil, err
			}
			falseHits += len(swp.SearchDocument(scheme.Params(), cws, td))
		}
		theo := scheme.Params().FalsePositiveRate()
		t.AddRow("swp", fmt.Sprintf("m=%d", m), formatRate(theo),
			formatRate(float64(falseHits)/float64(slots)), fmt.Sprintf("%d", falseHits))
	}
	// Goh instantiation: per-tuple Bloom filters. Probes are
	// (absent-value query) × (tuple) pairs.
	for _, fp := range []float64{1e-2, 1e-3, 1.0 / 65536} {
		hits, probes, theo, err := measureGohFP(fp, slots, rng.Int63())
		if err != nil {
			return nil, err
		}
		t.AddRow("goh", fmt.Sprintf("fp=%.0e", fp), formatRate(theo),
			formatRate(float64(hits)/float64(probes)), fmt.Sprintf("%d", hits))
	}
	return t, nil
}

// measureGohFP counts Bloom false positives of the Goh instantiation: an
// encrypted table is probed with queries for values that are not in it.
func measureGohFP(fpTarget float64, probes int, seed int64) (hits, done int, theo float64, err error) {
	key, err := crypto.RandomKey()
	if err != nil {
		return 0, 0, 0, err
	}
	schema := workload.EmployeeSchema()
	scheme, err := gohph.New(key, schema, gohph.Options{FPRate: fpTarget})
	if err != nil {
		return 0, 0, 0, err
	}
	const tuples = 4000
	table, err := workload.Employees(tuples, seed)
	if err != nil {
		return 0, 0, 0, err
	}
	ct, err := scheme.EncryptTable(table)
	if err != nil {
		return 0, 0, 0, err
	}
	m, k := scheme.FilterParams()
	theo = bloom.FalsePositiveRate(m, k, schema.NumColumns())
	for q := 0; done < probes; q++ {
		// "zz…" never appears in the generated names/departments.
		eq, err := scheme.EncryptQuery(relation.Eq{
			Column: "name", Value: relation.String(fmt.Sprintf("zz%06d", q)),
		})
		if err != nil {
			return 0, 0, 0, err
		}
		res, err := ph.Apply(ct, eq)
		if err != nil {
			return 0, 0, 0, err
		}
		hits += len(res.Positions)
		done += tuples
	}
	return hits, done, theo, nil
}

// formatRate renders small probabilities legibly.
func formatRate(r float64) string {
	if r == 0 {
		return "0"
	}
	if r < 1e-4 {
		return fmt.Sprintf("%.2e", r)
	}
	return f5(r)
}

// E6Row is one cell of the performance sweep.
type E6Row struct {
	Scheme       string
	Tuples       int
	EncryptNsOp  float64 // per tuple
	QueryNsOp    float64 // per query, server side
	DecryptNsOp  float64 // per result tuple incl. filtering
	ResultTuples float64 // avg server result size (pre-filter)
	TrueTuples   float64 // avg true result size (post-filter)
}

// RunE6 regenerates experiment E6: the performance profile the paper's §4
// alludes to ("researchers have been overly concerned with minimizing their
// performance overhead"). For each scheme and table size it measures
// encryption throughput, server-side query latency, and the post-filter
// overhead (how many extra tuples coarse schemes ship to the client).
// The plaintext scan row is the unencrypted baseline.
func RunE6(sizes []int, queriesPerSize int, seed int64) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "performance: encrypt / query / decrypt per scheme and table size",
		Header: []string{"scheme", "tuples", "encrypt µs/tuple", "query ms", "decrypt+filter µs/tuple",
			"result pre-filter", "result true"},
		Notes: []string{
			"shape, not absolute 2006 numbers: deterministic indexes answer fastest but leak; SWP search is linear in words with PRF cost per slot; bucketization ships false positives to the client",
		},
	}
	for _, n := range sizes {
		table, err := workload.Employees(n, seed)
		if err != nil {
			return nil, err
		}
		queries := workload.QueryMix(table, queriesPerSize, seed+1)
		// Plaintext baseline: linear scan.
		plainStart := time.Now()
		var plainHits int
		for _, q := range queries {
			res, err := relation.Select(table, q)
			if err != nil {
				return nil, err
			}
			plainHits += res.Len()
		}
		plainDur := time.Since(plainStart)
		t.AddRow("plaintext scan", fmt.Sprintf("%d", n), "-",
			fmt.Sprintf("%.3f", float64(plainDur.Nanoseconds())/1e6/float64(len(queries))),
			"-", f3(float64(plainHits)/float64(len(queries))), f3(float64(plainHits)/float64(len(queries))))

		for _, name := range SchemeNames {
			row, err := measureScheme(name, table, queries)
			if err != nil {
				return nil, fmt.Errorf("bench: E6 %s n=%d: %w", name, n, err)
			}
			t.AddRow(row.Scheme, fmt.Sprintf("%d", row.Tuples),
				fmt.Sprintf("%.1f", row.EncryptNsOp/1e3),
				fmt.Sprintf("%.3f", row.QueryNsOp/1e6),
				fmt.Sprintf("%.1f", row.DecryptNsOp/1e3),
				f3(row.ResultTuples), f3(row.TrueTuples))
		}
	}
	return t, nil
}

// measureScheme times one scheme over one table and query mix.
func measureScheme(name string, table *relation.Table, queries []relation.Eq) (*E6Row, error) {
	factory := MustFactory(name)
	scheme, err := factory(table.Schema())
	if err != nil {
		return nil, err
	}
	encStart := time.Now()
	ct, err := scheme.EncryptTable(table)
	if err != nil {
		return nil, err
	}
	encDur := time.Since(encStart)

	var queryDur, decDur time.Duration
	var preFilter, postFilter, resultTuples int
	for _, q := range queries {
		eq, err := scheme.EncryptQuery(q)
		if err != nil {
			return nil, err
		}
		qStart := time.Now()
		res, err := ph.Apply(ct, eq)
		if err != nil {
			return nil, err
		}
		queryDur += time.Since(qStart)
		preFilter += len(res.Tuples)
		dStart := time.Now()
		out, err := scheme.DecryptResult(q, res)
		if err != nil {
			return nil, err
		}
		decDur += time.Since(dStart)
		postFilter += out.Len()
		resultTuples += len(res.Tuples)
	}
	nq := float64(len(queries))
	row := &E6Row{
		Scheme:       name,
		Tuples:       table.Len(),
		EncryptNsOp:  float64(encDur.Nanoseconds()) / float64(table.Len()),
		QueryNsOp:    float64(queryDur.Nanoseconds()) / nq,
		ResultTuples: float64(preFilter) / nq,
		TrueTuples:   float64(postFilter) / nq,
	}
	if resultTuples > 0 {
		row.DecryptNsOp = float64(decDur.Nanoseconds()) / float64(resultTuples)
	}
	return row, nil
}

// RunE7 regenerates experiment E7: the Definition 1.1 homomorphism property
// E_k(σ_i(R)) = ψ_i(E_k(R)), checked (post-decryption, after false-positive
// filtering) over randomised relations and query sets for every scheme.
func RunE7(tables, queriesPerTable int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "Definition 1.1 homomorphism property: D(ψ(E(R))) = σ(R) over random relations",
		Header: []string{"scheme", "tables", "queries", "mismatches"},
		Notes: []string{
			"checked as result equality after decryption and client-side filtering, which is the operational content of E_k(σ_i(R)) = ψ_i(E_k(R)) for probabilistic E",
		},
	}
	rng := mrand.New(mrand.NewSource(seed))
	for _, name := range SchemeNames {
		factory := MustFactory(name)
		mismatches := 0
		totalQueries := 0
		for ti := 0; ti < tables; ti++ {
			table, err := workload.Employees(20+rng.Intn(60), rng.Int63())
			if err != nil {
				return nil, err
			}
			scheme, err := factory(table.Schema())
			if err != nil {
				return nil, err
			}
			ct, err := scheme.EncryptTable(table)
			if err != nil {
				return nil, err
			}
			for _, q := range workload.QueryMix(table, queriesPerTable, rng.Int63()) {
				totalQueries++
				want, err := relation.Select(table, q)
				if err != nil {
					return nil, err
				}
				eq, err := scheme.EncryptQuery(q)
				if err != nil {
					return nil, err
				}
				res, err := ph.Apply(ct, eq)
				if err != nil {
					return nil, err
				}
				got, err := scheme.DecryptResult(q, res)
				if err != nil {
					return nil, err
				}
				if !got.Equal(want) {
					mismatches++
				}
			}
		}
		t.AddRow(name, fmt.Sprintf("%d", tables), fmt.Sprintf("%d", totalQueries), fmt.Sprintf("%d", mismatches))
	}
	return t, nil
}

// RunE8 regenerates experiment E8 (extension): authenticated-index proof
// size, verification throughput, and tamper detection over table size.
func RunE8(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "extension: Merkle authenticated index — proof size, verification cost, tamper detection",
		Header: []string{"tuples", "proof hashes", "proof bytes", "verify µs", "tampering detected"},
		Notes: []string{
			"beyond the paper: its model trusts Eve to follow protocol; this measures the cost of dropping that assumption for result integrity",
		},
	}
	key, err := crypto.RandomKey()
	if err != nil {
		return nil, err
	}
	for _, n := range sizes {
		table, err := workload.Employees(n, seed)
		if err != nil {
			return nil, err
		}
		scheme, err := core.New(key, table.Schema(), core.Options{})
		if err != nil {
			return nil, err
		}
		ct, err := scheme.EncryptTable(table)
		if err != nil {
			return nil, err
		}
		tree := authindex.Build(ct)
		root := tree.Root()
		pos := n / 2
		proofs, err := tree.Prove([]int{pos})
		if err != nil {
			return nil, err
		}
		proof := proofs[0]
		// Verify throughput.
		const reps = 200
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := authindex.Verify(root, n, ct.Tuples[pos], proof); err != nil {
				return nil, fmt.Errorf("bench: E8 verify failed on honest data: %w", err)
			}
		}
		verifyUs := float64(time.Since(start).Microseconds()) / reps
		// Tamper detection: flip one ciphertext byte.
		tampered := ct.Tuples[pos]
		tampered.Words = append([][]byte(nil), tampered.Words...)
		tampered.Words[0] = append([]byte(nil), tampered.Words[0]...)
		tampered.Words[0][0] ^= 0x01
		detected := authindex.Verify(root, n, tampered, proof) != nil
		proofBytes := 0
		for _, s := range proof.Siblings {
			proofBytes += len(s)
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", len(proof.Siblings)),
			fmt.Sprintf("%d", proofBytes), fmt.Sprintf("%.1f", verifyUs), fmt.Sprintf("%v", detected))
	}
	return t, nil
}
