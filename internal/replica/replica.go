// Package replica implements the follower side of WAL shipping: a
// read replica that tails a primary's write-ahead log over the wire
// (CmdShipLog), replays the records into its own in-memory store, and
// serves reads from it — typically behind a read-only server
// (server.Options.ReadOnly), with mutations rejected locally.
//
// The follower's position is a cursor (epoch, seq): epoch names the
// primary's current log file, seq counts records applied from it. The
// primary answers every poll with (epoch, start, head) bookkeeping;
// whenever epoch or start disagrees with the cursor — the primary
// compacted its log, restarted into a fresh one, or never saw this
// follower — the follower discards its state and re-applies from the
// stream's start. The log is a total order from the empty store, so
// re-bootstrap is always sound and there is no snapshot format: silent
// divergence is structurally impossible, the worst case is repeated
// work.
//
// Trust is the interesting part, and there is deliberately nothing
// here: the follower applies whatever the primary ships, and makes no
// claim of integrity. The client's pinned authenticated root does not
// care which machine answered — replayed records produce bit-identical
// tuple bytes, hence identical Merkle leaves, hence the primary's root.
// A follower that is stale, corrupted, or lying produces a root
// mismatch at the client, which quarantines it and fails over (see
// internal/client's withRead). Replication adds read capacity, never
// trusted parties.
package replica

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/storage"
)

// Options tunes a Follower. The zero value gets sane defaults.
type Options struct {
	// PollInterval is the pause between polls once caught up (and after
	// errors). <=0 selects 100ms. While behind, the follower polls
	// continuously.
	PollInterval time.Duration
	// MaxBytes bounds one shipped chunk. <=0 selects 1MiB; the primary
	// clamps hostile values regardless.
	MaxBytes uint32
	// Logf, when set, receives progress and error lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.PollInterval <= 0 {
		o.PollInterval = 100 * time.Millisecond
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 1 << 20
	}
	return o
}

// Status is a snapshot of a follower's replication position.
type Status struct {
	// Epoch and Applied are the cursor: which primary log file the
	// follower is on and how many of its records it has applied.
	Epoch   uint64
	Applied uint64
	// Head is the primary's record count as of the last successful poll.
	Head uint64
	// CaughtUp reports whether the last poll found nothing to ship.
	CaughtUp bool
	// Resets counts re-bootstraps (primary compactions/restarts, apply
	// failures). A busy primary makes this grow occasionally; growth on
	// every poll means the follower cannot hold a cursor.
	Resets uint64
	// LastErr is the most recent poll error, nil when the last poll
	// succeeded.
	LastErr error
}

// Follower tails a primary and keeps an in-memory store in sync with
// its log. Create with New, serve reads from Store(), stop with Close.
type Follower struct {
	store *storage.Store
	dial  func() (*client.Conn, error)
	opts  Options

	mu       sync.Mutex
	epoch    uint64
	seq      uint64
	head     uint64
	caughtUp bool
	resets   uint64
	lastErr  error

	closeOnce sync.Once
	closed    chan struct{}
	done      chan struct{}
}

// New starts a follower polling the primary reached by dial. The dial
// function is invoked whenever the follower needs a (re)connection —
// pair it with client.DialWithConfig for bounded retry.
func New(dial func() (*client.Conn, error), opts Options) *Follower {
	f := &Follower{
		store:  storage.NewMemory(),
		dial:   dial,
		opts:   opts.withDefaults(),
		closed: make(chan struct{}),
		done:   make(chan struct{}),
	}
	go f.run()
	return f
}

// Store exposes the follower's replayed store, for serving reads (wrap
// it in a read-only server; the follower itself never writes except by
// replay).
func (f *Follower) Store() *storage.Store { return f.store }

// Status returns the follower's current replication position.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Status{
		Epoch: f.epoch, Applied: f.seq, Head: f.head,
		CaughtUp: f.caughtUp, Resets: f.resets, LastErr: f.lastErr,
	}
}

// WaitCaughtUp blocks until a poll finds the follower level with the
// primary's head, or the timeout expires.
func (f *Follower) WaitCaughtUp(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		st := f.Status()
		if st.CaughtUp && st.LastErr == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica: not caught up after %v (applied %d/%d, last error: %v)",
				timeout, st.Applied, st.Head, st.LastErr)
		}
		select {
		case <-f.closed:
			return fmt.Errorf("replica: follower closed while waiting")
		case <-time.After(time.Millisecond):
		}
	}
}

// Close stops the poll loop and waits for it to exit.
func (f *Follower) Close() {
	f.closeOnce.Do(func() { close(f.closed) })
	<-f.done
}

func (f *Follower) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

// sleep pauses for the poll interval, returning false when the follower
// was closed meanwhile.
func (f *Follower) sleep() bool {
	select {
	case <-f.closed:
		return false
	case <-time.After(f.opts.PollInterval):
		return true
	}
}

func (f *Follower) setErr(err error) {
	f.mu.Lock()
	f.lastErr = err
	f.caughtUp = false
	f.mu.Unlock()
}

// run is the poll loop: connect, ship from the cursor, apply, repeat —
// continuously while behind, at PollInterval once level or after any
// error. Transport errors drop the connection and redial; the cursor
// survives, so a restarted primary (same log) resumes where shipping
// stopped, and a rotated one resets the follower through the epoch
// check.
func (f *Follower) run() {
	defer close(f.done)
	var conn *client.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		select {
		case <-f.closed:
			return
		default:
		}
		if conn == nil {
			c, err := f.dial()
			if err != nil {
				f.setErr(fmt.Errorf("replica: dialing primary: %w", err))
				if !f.sleep() {
					return
				}
				continue
			}
			conn = c
		}
		f.mu.Lock()
		epoch, seq := f.epoch, f.seq
		f.mu.Unlock()
		ch, err := conn.ShipLog(epoch, seq, f.opts.MaxBytes)
		if err != nil {
			f.setErr(fmt.Errorf("replica: shipping from (%d,%d): %w", epoch, seq, err))
			f.logf("replica: poll failed, redialing: %v", err)
			conn.Close()
			conn = nil
			if !f.sleep() {
				return
			}
			continue
		}
		behind, err := f.apply(epoch, seq, ch)
		if err != nil {
			f.setErr(err)
			f.logf("replica: %v", err)
		}
		if err != nil || !behind {
			if !f.sleep() {
				return
			}
		}
	}
}

// apply folds one shipped chunk into the store. It returns whether the
// follower is still behind (poll again immediately). A chunk whose
// epoch or start disagrees with the cursor means the follower's history
// is gone on the primary: the store is reset and the chunk applied from
// the stream's start. A record that fails to apply resets too — the
// cursor goes to (0, 0) so the next poll re-bootstraps — because a
// partially applied log is the one state shipping must never hold.
func (f *Follower) apply(epoch, seq uint64, ch *client.LogChunk) (behind bool, err error) {
	if ch.Epoch != epoch || ch.Start != seq {
		if ch.Start != 0 {
			// The primary answered from a cursor this follower never held;
			// force a clean bootstrap on the next poll.
			f.reset(0, 0)
			return true, fmt.Errorf("replica: primary answered from (%d,%d) to cursor (%d,%d); re-bootstrapping",
				ch.Epoch, ch.Start, epoch, seq)
		}
		if epoch == 0 && seq == 0 {
			// Virgin cursor adopting the primary's epoch: the first poll of
			// a fresh follower, not a discard of applied state.
			f.mu.Lock()
			f.epoch = ch.Epoch
			f.mu.Unlock()
		} else {
			f.logf("replica: cursor (%d,%d) rotated away (primary at epoch %d); re-bootstrapping", epoch, seq, ch.Epoch)
			f.reset(ch.Epoch, 0)
		}
		epoch, seq = ch.Epoch, 0
	}
	for i, rec := range ch.Records {
		if aerr := f.store.ApplyShipped(rec); aerr != nil {
			f.reset(0, 0)
			return true, fmt.Errorf("replica: applying record %d of (%d,%d): %w", i, ch.Epoch, ch.Start, aerr)
		}
		seq++
	}
	f.mu.Lock()
	f.epoch, f.seq, f.head = epoch, seq, ch.Head
	f.caughtUp = seq >= ch.Head
	f.lastErr = nil
	behind = !f.caughtUp
	f.mu.Unlock()
	return behind, nil
}

// reset discards the replayed state and moves the cursor.
func (f *Follower) reset(epoch, seq uint64) {
	f.store.Reset()
	f.mu.Lock()
	f.epoch, f.seq, f.head = epoch, seq, 0
	f.caughtUp = false
	f.resets++
	f.mu.Unlock()
}
