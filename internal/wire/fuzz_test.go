package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeTable checks the wire decoder never panics or over-allocates on
// arbitrary bytes, and that re-encoding anything it accepts is stable.
func FuzzDecodeTable(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeTable(nil, sampleTable()))
	f.Add(AppendU32(AppendBytes(AppendString(nil, "swp-ph"), []byte{1}), 0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, data []byte) {
		et, err := DecodeTable(NewBuffer(data))
		if err != nil {
			return
		}
		re := EncodeTable(nil, et)
		et2, err := DecodeTable(NewBuffer(re))
		if err != nil {
			t.Fatalf("re-decode of re-encoded table failed: %v", err)
		}
		if !bytes.Equal(EncodeTable(nil, et2), re) {
			t.Fatal("encoding not stable")
		}
	})
}

// FuzzReadFrame checks framing against arbitrary streams.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, Frame{Type: CmdQuery, Payload: []byte("x")})
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, fr); err != nil {
			t.Fatalf("re-writing accepted frame failed: %v", err)
		}
	})
}
