package server

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"repro/internal/authindex"
	"repro/internal/ph"
	"repro/internal/query"
	"repro/internal/wire"
)

var conjRegisterOnce sync.Once

// conjStore registers a word-equality evaluator so conjunctive plans do
// real narrowing in these tests (the shared "server-test" evaluator
// ignores its token).
func conjScheme() {
	conjRegisterOnce.Do(func() {
		ph.RegisterEvaluator("server-conj", func(et *ph.EncryptedTable, q *ph.EncryptedQuery) (*ph.Result, error) {
			var pos []int
			for i, tp := range et.Tuples {
				for _, w := range tp.Words {
					if bytes.Equal(w, q.Token) {
						pos = append(pos, i)
						break
					}
				}
			}
			return ph.SelectPositions(et, pos), nil
		})
	})
}

// conjTable: tuple i carries words "even"/"odd" and a per-tuple id word.
func conjTable(n int) *ph.EncryptedTable {
	et := &ph.EncryptedTable{SchemeID: "server-conj"}
	for i := 0; i < n; i++ {
		parity := []byte("odd")
		if i%2 == 0 {
			parity = []byte("even")
		}
		et.Tuples = append(et.Tuples, ph.EncryptedTuple{
			ID:    []byte{byte(i)},
			Words: [][]byte{parity, {0xB0, byte(i)}},
		})
	}
	return et
}

func conjFrame(name string, flags byte, tokens ...string) wire.Frame {
	qs := make([]*ph.EncryptedQuery, len(tokens))
	for i, tok := range tokens {
		qs[i] = &ph.EncryptedQuery{SchemeID: "server-conj", Token: []byte(tok)}
	}
	return wire.Frame{Type: wire.CmdQueryConj, Payload: query.EncodeRequest(nil, name, flags, qs)}
}

func TestDispatchQueryConj(t *testing.T) {
	conjScheme()
	s := New(testStore(t), nil)
	if resp := s.dispatch(storeFrame("emp", conjTable(8)), nil); resp.Type != wire.RespOK {
		t.Fatalf("store failed: %s", resp.Payload)
	}
	resp := s.dispatch(conjFrame("emp", 0, "even", string([]byte{0xB0, 2})), nil)
	if resp.Type != wire.RespResultConj {
		t.Fatalf("response %#x: %s", resp.Type, resp.Payload)
	}
	dec, err := query.DecodeResponse(wire.NewBuffer(resp.Payload))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Result == nil || dec.Verified != nil {
		t.Fatal("plain execution must carry a plain result")
	}
	if want := []int{2}; !reflect.DeepEqual(dec.Result.Positions, want) {
		t.Fatalf("intersection %v, want %v", dec.Result.Positions, want)
	}
	if len(dec.Plan.Steps) != 2 || dec.Plan.Tuples != 8 {
		t.Fatalf("plan %+v", dec.Plan)
	}
}

func TestDispatchQueryConjExplain(t *testing.T) {
	conjScheme()
	s := New(testStore(t), nil)
	if resp := s.dispatch(storeFrame("emp", conjTable(8)), nil); resp.Type != wire.RespOK {
		t.Fatalf("store failed: %s", resp.Payload)
	}
	resp := s.dispatch(conjFrame("emp", wire.ConjFlagExplain, "even", "odd"), nil)
	if resp.Type != wire.RespResultConj {
		t.Fatalf("response %#x: %s", resp.Type, resp.Payload)
	}
	dec, err := query.DecodeResponse(wire.NewBuffer(resp.Payload))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Result != nil || dec.Verified != nil {
		t.Fatal("explain must not execute")
	}
	for _, st := range dec.Plan.Steps {
		if st.Tested != 0 || st.Hits != 0 {
			t.Fatalf("explain step reports work: %+v", st)
		}
	}
}

func TestDispatchQueryConjVerified(t *testing.T) {
	conjScheme()
	s := New(testStore(t), nil)
	et := conjTable(8)
	if resp := s.dispatch(storeFrame("emp", et), nil); resp.Type != wire.RespOK {
		t.Fatalf("store failed: %s", resp.Payload)
	}
	resp := s.dispatch(conjFrame("emp", wire.ConjFlagVerified, "even", string([]byte{0xB0, 4})), nil)
	if resp.Type != wire.RespResultConj {
		t.Fatalf("response %#x: %s", resp.Type, resp.Payload)
	}
	dec, err := query.DecodeResponse(wire.NewBuffer(resp.Payload))
	if err != nil {
		t.Fatal(err)
	}
	vr := dec.Verified
	if vr == nil {
		t.Fatal("verified execution must carry a verified result")
	}
	if want := []int{4}; !reflect.DeepEqual(vr.Result.Positions, want) {
		t.Fatalf("intersection %v, want %v", vr.Result.Positions, want)
	}
	if want := authindex.Build(et).Root(); !bytes.Equal(vr.Root, want) {
		t.Fatal("verified root differs from a rebuild")
	}
	for i, p := range vr.Proofs {
		if err := authindex.Verify(vr.Root, vr.Leaves, vr.Result.Tuples[i], p); err != nil {
			t.Fatalf("proof %d rejected: %v", i, err)
		}
	}
}

// TestHostileConjCountAllocation: a small frame declaring 2^32-1
// conjuncts must fail cleanly without a count-proportional allocation
// (same clamp discipline as CmdQueryBatch and CmdProve).
func TestHostileConjCountAllocation(t *testing.T) {
	conjScheme()
	s := New(testStore(t), nil)
	if resp := s.dispatch(storeFrame("emp", conjTable(2)), nil); resp.Type != wire.RespOK {
		t.Fatalf("store failed: %s", resp.Payload)
	}
	payload := wire.AppendString(nil, "emp")
	payload = wire.AppendU8(payload, 0)
	payload = wire.AppendU32(payload, 0xFFFFFFFF)
	allocs := testing.AllocsPerRun(5, func() {
		resp := s.dispatch(wire.Frame{Type: wire.CmdQueryConj, Payload: payload}, nil)
		if resp.Type != wire.RespError {
			t.Fatalf("hostile count answered %#x", resp.Type)
		}
	})
	if allocs > 100 {
		t.Fatalf("hostile conjunct count cost %.0f allocations", allocs)
	}
}

func TestDispatchQueryConjUnknownTable(t *testing.T) {
	conjScheme()
	s := New(testStore(t), nil)
	resp := s.dispatch(conjFrame("missing", 0, "even"), nil)
	if resp.Type != wire.RespError {
		t.Fatalf("unknown table answered %#x", resp.Type)
	}
}
