// Package load turns Go packages into analysis.Targets using only the
// standard library and the go tool itself: `go list -export` supplies
// package metadata and compiled export data for dependencies, and the
// target packages are parsed and type-checked from source. This is the
// stdlib-only replacement for golang.org/x/tools/go/packages that the
// phlint driver and the analysistest harness share.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"

	"repro/internal/analysis"
)

// listPackage is the slice of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over the patterns
// and decodes the package stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Packages loads every package matching the patterns (relative to dir),
// parsed and type-checked, ready for the analysis driver. Dependencies —
// including the standard library — are resolved from export data, so
// loading is offline and does not re-type-check the world.
func Packages(dir string, patterns ...string) ([]*analysis.Target, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var targets []*analysis.Target
	for _, p := range pkgs {
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		t, err := Check(p.ImportPath, fset, files, imp)
		if err != nil {
			return nil, err
		}
		targets = append(targets, t)
	}
	return targets, nil
}

// ExportImporter returns a types importer that resolves import paths
// through compiled export data files, located by the lookup function
// (import path → export file path).
func ExportImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Check parses the named files and type-checks them as one package.
func Check(path string, fset *token.FileSet, filenames []string, imp types.Importer) (*analysis.Target, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", path, err)
	}
	return &analysis.Target{Path: path, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// ExportsFor shells out once to resolve export data for the given
// import paths and their transitive dependencies, for callers (the
// analysistest harness) that type-check loose files instead of listed
// packages.
func ExportsFor(paths ...string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	pkgs, err := goList("", paths)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
