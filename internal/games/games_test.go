package games

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
)

// coreFactory builds the paper's scheme with fresh keys.
func coreFactory(s *relation.Schema) (ph.Scheme, error) {
	key, err := crypto.RandomKey()
	if err != nil {
		return nil, err
	}
	return core.New(key, s, core.Options{})
}

func pairSchema() *relation.Schema {
	return relation.MustSchema("t",
		relation.Column{Name: "a", Type: relation.TypeString, Width: 4},
	)
}

// pairAdversary is a configurable test adversary.
type pairAdversary struct {
	choose func(*rand.Rand) (*relation.Table, *relation.Table, error)
	guess  func(*rand.Rand, *Transcript) (int, error)
}

func (a pairAdversary) Name() string { return "test" }
func (a pairAdversary) Choose(r *rand.Rand) (*relation.Table, *relation.Table, error) {
	return a.choose(r)
}
func (a pairAdversary) Guess(r *rand.Rand, tr *Transcript) (int, error) { return a.guess(r, tr) }

func defaultChoose(*rand.Rand) (*relation.Table, *relation.Table, error) {
	t0 := relation.NewTable(pairSchema())
	t0.MustInsert(relation.String("aaaa"))
	t1 := relation.NewTable(pairSchema())
	t1.MustInsert(relation.String("bbbb"))
	return t0, t1, nil
}

func TestBlindGuesserWinsHalf(t *testing.T) {
	g := Def21{Factory: coreFactory, Q: 0, Mode: Passive}
	adv := pairAdversary{
		choose: defaultChoose,
		guess:  func(r *rand.Rand, _ *Transcript) (int, error) { return r.Intn(2), nil },
	}
	res, err := g.Run(adv, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate() < 0.38 || res.Rate() > 0.62 {
		t.Fatalf("blind guesser win rate %v far from 0.5", res.Rate())
	}
}

func TestConstantGuesserWinsHalf(t *testing.T) {
	// The challenge bit is uniform, so a constant guess wins half.
	g := Def21{Factory: coreFactory, Q: 0, Mode: Passive}
	adv := pairAdversary{
		choose: defaultChoose,
		guess:  func(*rand.Rand, *Transcript) (int, error) { return 0, nil },
	}
	res, err := g.Run(adv, 400, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate() < 0.38 || res.Rate() > 0.62 {
		t.Fatalf("constant guesser win rate %v far from 0.5", res.Rate())
	}
}

func TestCardinalityMismatchRejected(t *testing.T) {
	g := Def21{Factory: coreFactory, Q: 0, Mode: Passive}
	adv := pairAdversary{
		choose: func(*rand.Rand) (*relation.Table, *relation.Table, error) {
			t0 := relation.NewTable(pairSchema())
			t0.MustInsert(relation.String("a"))
			t1 := relation.NewTable(pairSchema()) // empty: different cardinality
			return t0, t1, nil
		},
		guess: func(*rand.Rand, *Transcript) (int, error) { return 0, nil },
	}
	if _, err := g.Run(adv, 1, 1); err == nil {
		t.Fatal("tables of different cardinality accepted — Definition 2.1 step 1 violated")
	}
}

func TestSchemaMismatchRejected(t *testing.T) {
	g := Def21{Factory: coreFactory, Q: 0, Mode: Passive}
	adv := pairAdversary{
		choose: func(*rand.Rand) (*relation.Table, *relation.Table, error) {
			t0 := relation.NewTable(pairSchema())
			t0.MustInsert(relation.String("a"))
			other := relation.MustSchema("u", relation.Column{Name: "b", Type: relation.TypeString, Width: 4})
			t1 := relation.NewTable(other)
			t1.MustInsert(relation.String("b"))
			return t0, t1, nil
		},
		guess: func(*rand.Rand, *Transcript) (int, error) { return 0, nil },
	}
	if _, err := g.Run(adv, 1, 1); err == nil {
		t.Fatal("tables over different schemas accepted")
	}
}

func TestInvalidGuessRejected(t *testing.T) {
	g := Def21{Factory: coreFactory, Q: 0, Mode: Passive}
	adv := pairAdversary{
		choose: defaultChoose,
		guess:  func(*rand.Rand, *Transcript) (int, error) { return 2, nil },
	}
	if _, err := g.Run(adv, 1, 1); err == nil {
		t.Fatal("out-of-range guess accepted")
	}
}

func TestOracleBudgetEnforced(t *testing.T) {
	g := Def21{Factory: coreFactory, Q: 2, Mode: Active}
	calls := 0
	adv := pairAdversary{
		choose: defaultChoose,
		guess: func(r *rand.Rand, tr *Transcript) (int, error) {
			if tr.Oracle == nil {
				return 0, fmt.Errorf("no oracle in active mode with q=2")
			}
			q := relation.Eq{Column: "a", Value: relation.String("aaaa")}
			for i := 0; i < 3; i++ {
				if _, err := tr.Oracle(q); err != nil {
					if i != 2 {
						return 0, fmt.Errorf("oracle refused call %d of budget 2", i+1)
					}
					calls = i
					return 0, nil // third call correctly refused
				}
			}
			return 0, fmt.Errorf("oracle allowed 3 calls with budget 2")
		},
	}
	if _, err := g.Run(adv, 1, 3); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("oracle allowed %d calls, want 2", calls)
	}
}

func TestActiveQZeroHasNoOracle(t *testing.T) {
	g := Def21{Factory: coreFactory, Q: 0, Mode: Active}
	adv := pairAdversary{
		choose: defaultChoose,
		guess: func(r *rand.Rand, tr *Transcript) (int, error) {
			if tr.Oracle != nil {
				return 0, fmt.Errorf("oracle present with q=0")
			}
			return r.Intn(2), nil
		},
	}
	if _, err := g.Run(adv, 4, 5); err != nil {
		t.Fatal(err)
	}
}

func TestPassiveQueriesLimitedToQ(t *testing.T) {
	q := relation.Eq{Column: "a", Value: relation.String("aaaa")}
	g := Def21{
		Factory:     coreFactory,
		Q:           2,
		Mode:        Passive,
		AlexQueries: []relation.Eq{q, q, q, q},
	}
	adv := pairAdversary{
		choose: defaultChoose,
		guess: func(r *rand.Rand, tr *Transcript) (int, error) {
			if len(tr.Issued) != 2 {
				return 0, fmt.Errorf("observed %d queries, budget is 2", len(tr.Issued))
			}
			return r.Intn(2), nil
		},
	}
	if _, err := g.Run(adv, 3, 11); err != nil {
		t.Fatal(err)
	}
}

func TestTranscriptApplyWorks(t *testing.T) {
	// The homomorphic property must be available to the adversary: Apply
	// on an oracle-encrypted query returns the matching positions.
	g := Def21{Factory: coreFactory, Q: 1, Mode: Active}
	adv := pairAdversary{
		choose: defaultChoose,
		guess: func(r *rand.Rand, tr *Transcript) (int, error) {
			eq, err := tr.Oracle(relation.Eq{Column: "a", Value: relation.String("aaaa")})
			if err != nil {
				return 0, err
			}
			res, err := tr.Apply(eq)
			if err != nil {
				return 0, err
			}
			if len(res.Positions) > 0 {
				return 0, nil // "aaaa" present: table 0
			}
			return 1, nil
		},
	}
	res, err := g.Run(adv, 50, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate() < 0.95 {
		t.Fatalf("homomorphism-using adversary should win (Theorem 2.1): rate %v", res.Rate())
	}
}

func TestRunValidation(t *testing.T) {
	adv := pairAdversary{
		choose: defaultChoose,
		guess:  func(r *rand.Rand, _ *Transcript) (int, error) { return 0, nil },
	}
	if _, err := (Def21{Q: 0}).Run(adv, 10, 1); err == nil {
		t.Fatal("missing factory accepted")
	}
	if _, err := (Def21{Factory: coreFactory}).Run(adv, 0, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestModeString(t *testing.T) {
	if Passive.String() != "passive" || Active.String() != "active" {
		t.Fatal("Mode.String wrong")
	}
}
