package bench

import (
	"fmt"

	"repro/internal/attacks"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/games"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/workload"
)

// varlenFactory builds the construction in per-column-width mode.
func varlenFactory(s *relation.Schema) (ph.Scheme, error) {
	key, err := crypto.RandomKey()
	if err != nil {
		return nil, err
	}
	return core.New(key, s, core.Options{PerColumnWidth: true})
}

// RunE10 regenerates experiment E10: the "attributes of variable length"
// optimisation the paper defers to its full version, as an ablation of the
// §3 fixed-width layout. Measured: ciphertext bytes per tuple (the
// optimisation's benefit), homomorphic-select correctness, and the §1
// distinguisher's advantage (the optimisation must not reintroduce the
// attack — value equality stays hidden; only column identity of each
// cipherword becomes visible through its length).
func RunE10(tuples, trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "ablation: fixed-width layout (§3) vs per-column variable-length words",
		Header: []string{"layout", "cipherword bytes/tuple", "select mismatches", "salary-pair advantage"},
		Notes: []string{
			"the paper mentions 'attributes of variable length' as a straightforward optimisation for the full version",
			"trade-off: smaller ciphertext, but a cipherword's length reveals its column (never its value)",
			fmt.Sprintf("tuples: %d, game trials: %d", tuples, trials),
		},
	}
	table, err := workload.Employees(tuples, seed)
	if err != nil {
		return nil, err
	}
	queries := workload.QueryMix(table, 20, seed+1)
	layouts := []struct {
		name    string
		factory games.SchemeFactory
	}{
		{"fixed (paper §3)", MustFactory(core.SchemeID)},
		{"per-column", varlenFactory},
	}
	for _, l := range layouts {
		scheme, err := l.factory(table.Schema())
		if err != nil {
			return nil, err
		}
		ct, err := scheme.EncryptTable(table)
		if err != nil {
			return nil, err
		}
		bytesTotal := 0
		for _, tp := range ct.Tuples {
			for _, w := range tp.Words {
				bytesTotal += len(w)
			}
		}
		mismatches := 0
		for _, q := range queries {
			want, err := relation.Select(table, q)
			if err != nil {
				return nil, err
			}
			eq, err := scheme.EncryptQuery(q)
			if err != nil {
				return nil, err
			}
			res, err := ph.Apply(ct, eq)
			if err != nil {
				return nil, err
			}
			got, err := scheme.DecryptResult(q, res)
			if err != nil {
				return nil, err
			}
			if !got.Equal(want) {
				mismatches++
			}
		}
		g := games.Def21{Factory: l.factory, Q: 0, Mode: games.Passive}
		res, err := g.Run(attacks.SalaryPair{}, trials, seed+2)
		if err != nil {
			return nil, err
		}
		t.AddRow(l.name,
			fmt.Sprintf("%.1f", float64(bytesTotal)/float64(table.Len())),
			fmt.Sprintf("%d", mismatches),
			f3(res.Advantage()))
	}
	return t, nil
}
