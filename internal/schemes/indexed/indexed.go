// Package indexed implements the family of outsourced-database encryption
// schemes the paper attacks in §1: "every tuple is encrypted with a secure
// cipher first, then weakly encrypted attributes are attached to the
// ciphertext". The strong cipher is AES-GCM over the binary-encoded tuple;
// the weak encryptions ("index labels") are produced by a pluggable Labeler.
//
// Three labelers in the sibling packages instantiate the framework:
//
//   - schemes/bucket:  interval bucketization with a secret label
//     permutation — Hacıgümüş et al., SIGMOD'02 (paper reference [4]).
//   - schemes/damiani: deterministic keyed-hash buckets — Damiani et al.,
//     CCS'03 (paper reference [3]).
//   - schemes/detph:   injective deterministic labels (worst-case
//     comparator; the full equality pattern leaks).
//
// All of them satisfy Definition 1.1 — they are database PHs for exact
// selects, with false positives filtered client-side — and all of them fall
// to the distinguisher of §1 (internal/attacks), because their labels are
// deterministic functions of the attribute value.
package indexed

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"math/big"

	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
)

// Labeler computes the weak index label attached to the strong ciphertext
// for one attribute value. Labels are deterministic per (scheme key,
// column, value) — that determinism is exactly what the server exploits to
// answer queries, and what the paper's adversary exploits to win the
// indistinguishability game.
type Labeler interface {
	// Label maps a column value to its index label.
	Label(colIdx int, col relation.Column, v relation.Value) ([]byte, error)
}

// Scheme is an indexed outsourcing scheme over a fixed relation schema. It
// implements ph.Scheme.
type Scheme struct {
	id      string
	schema  *relation.Schema
	sealer  *crypto.Sealer
	labeler Labeler
}

// New constructs an indexed scheme. The scheme ID must have been registered
// with ph.RegisterEvaluator(id, indexed.Evaluate) by the instantiating
// package.
func New(id string, master crypto.Key, schema *relation.Schema, labeler Labeler) (*Scheme, error) {
	sealer, err := crypto.NewSealer(crypto.NewPRF(master).DeriveKey("indexed/seal/"+id, nil))
	if err != nil {
		return nil, err
	}
	return &Scheme{id: id, schema: schema, sealer: sealer, labeler: labeler}, nil
}

// Name implements ph.Scheme.
func (s *Scheme) Name() string { return s.id }

// Schema implements ph.Scheme.
func (s *Scheme) Schema() *relation.Schema { return s.schema }

// EncryptTable implements E: each tuple is sealed whole with the strong
// cipher and annotated with one weak label per column. Tuples are emitted in
// random order.
func (s *Scheme) EncryptTable(t *relation.Table) (*ph.EncryptedTable, error) {
	if !t.Schema().Equal(s.schema) {
		return nil, fmt.Errorf("%s: table schema %q does not match instance schema %q",
			s.id, t.Schema().Name, s.schema.Name)
	}
	et := &ph.EncryptedTable{SchemeID: s.id, Tuples: make([]ph.EncryptedTuple, 0, t.Len())}
	order, err := randomPerm(t.Len())
	if err != nil {
		return nil, err
	}
	for _, ti := range order {
		tp := t.Tuple(ti)
		blob, err := s.sealer.Seal(relation.EncodeTuple(tp))
		if err != nil {
			return nil, fmt.Errorf("%s: sealing tuple: %w", s.id, err)
		}
		words := make([][]byte, len(tp))
		for col, v := range tp {
			lbl, err := s.labeler.Label(col, s.schema.Columns[col], v)
			if err != nil {
				return nil, fmt.Errorf("%s: labelling column %q: %w", s.id, s.schema.Columns[col].Name, err)
			}
			words[col] = lbl
		}
		id := make([]byte, 16)
		if _, err := rand.Read(id); err != nil {
			return nil, fmt.Errorf("%s: drawing tuple id: %w", s.id, err)
		}
		et.Tuples = append(et.Tuples, ph.EncryptedTuple{ID: id, Blob: blob, Words: words})
	}
	return et, nil
}

// EncryptQuery implements Eq: the token is the column index plus the label
// of the queried value.
func (s *Scheme) EncryptQuery(q relation.Eq) (*ph.EncryptedQuery, error) {
	if err := q.Validate(s.schema); err != nil {
		return nil, err
	}
	col := s.schema.ColumnIndex(q.Column)
	lbl, err := s.labeler.Label(col, s.schema.Columns[col], q.Value)
	if err != nil {
		return nil, err
	}
	token := make([]byte, 2+len(lbl))
	binary.BigEndian.PutUint16(token, uint16(col))
	copy(token[2:], lbl)
	return &ph.EncryptedQuery{SchemeID: s.id, Token: token}, nil
}

// DecryptTable implements D on whole tables.
func (s *Scheme) DecryptTable(ct *ph.EncryptedTable) (*relation.Table, error) {
	if ct.SchemeID != s.id {
		return nil, fmt.Errorf("%s: cannot decrypt table of scheme %q", s.id, ct.SchemeID)
	}
	t := relation.NewTable(s.schema)
	for i, etp := range ct.Tuples {
		tp, err := s.openTuple(etp)
		if err != nil {
			return nil, fmt.Errorf("%s: decrypting tuple %d: %w", s.id, i, err)
		}
		if err := t.Insert(tp); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// DecryptResult opens the returned tuples and filters the false positives
// that coarse labels necessarily produce (several plaintext values share a
// bucket).
func (s *Scheme) DecryptResult(q relation.Eq, r *ph.Result) (*relation.Table, error) {
	t := relation.NewTable(s.schema)
	for i, etp := range r.Tuples {
		tp, err := s.openTuple(etp)
		if err != nil {
			return nil, fmt.Errorf("%s: decrypting result tuple %d: %w", s.id, i, err)
		}
		ok, err := q.Eval(s.schema, tp)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // bucket collision; drop
		}
		if err := t.Insert(tp); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// openTuple decrypts the strong ciphertext back into a tuple.
func (s *Scheme) openTuple(etp ph.EncryptedTuple) (relation.Tuple, error) {
	pt, err := s.sealer.Open(etp.Blob)
	if err != nil {
		return nil, err
	}
	return relation.DecodeTuple(pt)
}

// Evaluate is the shared key-free server-side ψ for all indexed schemes: a
// tuple matches when its label for the queried column equals the token's
// label.
func Evaluate(et *ph.EncryptedTable, q *ph.EncryptedQuery) (*ph.Result, error) {
	if len(q.Token) < 2 {
		return nil, fmt.Errorf("indexed: query token too short (%d bytes)", len(q.Token))
	}
	col := int(binary.BigEndian.Uint16(q.Token))
	want := q.Token[2:]
	var positions []int
	for i, etp := range et.Tuples {
		if col >= len(etp.Words) {
			return nil, fmt.Errorf("indexed: token column %d out of range for tuple with %d labels", col, len(etp.Words))
		}
		if bytesEqual(etp.Words[col], want) {
			positions = append(positions, i)
		}
	}
	return ph.SelectPositions(et, positions), nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomPerm draws a uniformly random permutation of [0, n) from
// crypto/rand.
func randomPerm(n int) ([]int, error) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		jBig, err := rand.Int(rand.Reader, big.NewInt(int64(i+1)))
		if err != nil {
			return nil, fmt.Errorf("indexed: drawing permutation: %w", err)
		}
		j := int(jBig.Int64())
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm, nil
}
