// Package core implements the paper's primary contribution (§3): a database
// privacy homomorphism preserving exact selects, built from the searchable
// encryption scheme of Song, Wagner and Perrig (internal/swp).
//
// The construction maps every tuple of a relation to a *document* — a set of
// fixed-length words, one per attribute. A word is the attribute value,
// padded with '#' to the width of the widest attribute, followed by a
// one-byte attribute identifier (needed for decryption). For the paper's
// running example
//
//	Emp(name:string[9], dept:string[5], salary:int)
//	⟨name:"Montgomery", dept:"HR", sal:7500⟩
//	  ↦ {"MontgomeryN", "HR########D", "7500######S"}
//
// the exact select σ_name:"Montgomery" becomes the search
// ϕ_"MontgomeryN", evaluated by the server over the SWP cipherwords.
// SWP searches admit false positives (probability 2^(−8m) per word slot);
// the client filters them by re-evaluating the plaintext predicate on the
// decrypted result, as §3 prescribes.
package core

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/relation"
)

// PadByte is the padding symbol '#' from the paper. Attribute values must
// not contain it; EncryptTable rejects tables that do.
const PadByte = '#'

// idWidth is the byte width of the attribute identifier appended to every
// word. One byte suffices for up to 255 columns.
const idWidth = 1

// layout precomputes the word geometry for a schema: the word length per
// column and the per-column identifier bytes. Two modes exist:
//
//   - fixed (the paper's §3 default): one global word length, "the length
//     of the longest attribute value plus the length of an attribute
//     identifier". Cipherword lengths reveal nothing.
//   - per-column (the "attributes of variable length" optimisation the
//     paper defers to its full version): each column's words are only as
//     wide as that column needs. Ciphertext shrinks, but cipherword
//     lengths now reveal which column a word belongs to (and only that —
//     values are still padded to the full column width).
type layout struct {
	schema     *relation.Schema
	perColumn  bool
	valueWidth int          // widest encoded attribute value (fixed mode)
	ids        []byte       // column index -> identifier byte
	colOf      map[byte]int // identifier byte -> column index
}

// newLayout derives the word layout from a schema. Identifier bytes are
// chosen deterministically: the uppercased first letter of the column name
// when free (matching the paper's "N", "D", "S" for name, dept, salary),
// otherwise the first free byte. The assignment depends only on the schema,
// so client and decryptor always agree; the server never needs it.
func newLayout(s *relation.Schema, perColumn bool) (*layout, error) {
	if s.NumColumns() > 255 {
		return nil, fmt.Errorf("core: schema %q has %d columns; at most 255 supported", s.Name, s.NumColumns())
	}
	l := &layout{schema: s, perColumn: perColumn, colOf: make(map[byte]int, s.NumColumns())}
	for _, c := range s.Columns {
		if w := c.EncodedWidth(); w > l.valueWidth {
			l.valueWidth = w
		}
	}
	// The SWP scheme needs words of at least 2 bytes; a 1-byte value width
	// already gives wordLen = 2.
	if l.valueWidth < 1 {
		return nil, fmt.Errorf("core: schema %q has zero value width", s.Name)
	}
	l.ids = make([]byte, s.NumColumns())
	for i, c := range s.Columns {
		id, err := l.pickID(c.Name)
		if err != nil {
			return nil, err
		}
		l.ids[i] = id
		l.colOf[id] = i
	}
	return l, nil
}

// valueWidthFor returns the padded value width of a column under the
// layout mode.
func (l *layout) valueWidthFor(col int) int {
	if l.perColumn {
		return l.schema.Columns[col].EncodedWidth()
	}
	return l.valueWidth
}

// wordLenFor returns the word length of a column under the layout mode.
func (l *layout) wordLenFor(col int) int {
	return l.valueWidthFor(col) + idWidth
}

// wordLengths returns the sorted distinct word lengths the layout produces.
func (l *layout) wordLengths() []int {
	seen := map[int]bool{}
	var out []int
	for col := range l.schema.Columns {
		n := l.wordLenFor(col)
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// pickID chooses the identifier byte for a column.
func (l *layout) pickID(name string) (byte, error) {
	if len(name) > 0 {
		first := name[0]
		if first >= 'a' && first <= 'z' {
			first -= 'a' - 'A'
		}
		if _, taken := l.colOf[first]; !taken && first != PadByte {
			return first, nil
		}
	}
	for b := 0; b < 256; b++ {
		id := byte(b)
		if id == PadByte {
			continue
		}
		if _, taken := l.colOf[id]; !taken {
			return id, nil
		}
	}
	return 0, fmt.Errorf("core: no free identifier byte for column %q", name)
}

// makeWord builds the word value|padding|id for column col, padded to the
// column's word length under the layout mode.
func (l *layout) makeWord(col int, v relation.Value) ([]byte, error) {
	enc := v.Encode()
	width := l.valueWidthFor(col)
	if len(enc) > width {
		return nil, fmt.Errorf("core: value %s too wide for layout (%d > %d)", v, len(enc), width)
	}
	for i := 0; i < len(enc); i++ {
		if enc[i] == PadByte {
			return nil, fmt.Errorf("core: value %s contains the padding symbol %q", v, PadByte)
		}
	}
	w := make([]byte, width+idWidth)
	copy(w, enc)
	for i := len(enc); i < width; i++ {
		w[i] = PadByte
	}
	w[width] = l.ids[col]
	return w, nil
}

// parseWord inverts makeWord: it extracts the column index and value from a
// decrypted word.
func (l *layout) parseWord(w []byte) (col int, v relation.Value, err error) {
	if len(w) < 2 {
		return 0, relation.Value{}, fmt.Errorf("core: word of %d bytes too short", len(w))
	}
	id := w[len(w)-idWidth]
	col, ok := l.colOf[id]
	if !ok {
		return 0, relation.Value{}, fmt.Errorf("core: unknown attribute identifier %#x", id)
	}
	if len(w) != l.wordLenFor(col) {
		return 0, relation.Value{}, fmt.Errorf("core: word for column %q has %d bytes, layout expects %d",
			l.schema.Columns[col].Name, len(w), l.wordLenFor(col))
	}
	end := len(w) - idWidth
	for end > 0 && w[end-1] == PadByte {
		end--
	}
	enc := string(w[:end])
	switch c := l.schema.Columns[col]; c.Type {
	case relation.TypeString:
		v = relation.String(enc)
	case relation.TypeInt:
		i, perr := strconv.ParseInt(enc, 10, 64)
		if perr != nil {
			return 0, relation.Value{}, fmt.Errorf("core: word for int column %q holds %q: %w", c.Name, enc, perr)
		}
		v = relation.Int(i)
	default:
		return 0, relation.Value{}, fmt.Errorf("core: column %q has unsupported type", c.Name)
	}
	return col, v, nil
}

// WordLen returns the global fixed-mode word length the layout derives for
// a schema, exposed for tests and capacity planning.
func WordLen(s *relation.Schema) (int, error) {
	l, err := newLayout(s, false)
	if err != nil {
		return 0, err
	}
	return l.valueWidth + idWidth, nil
}
