package sqlmini

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestParseStar(t *testing.T) {
	q, err := Parse("SELECT * FROM patients WHERE hospital = 1;")
	if err != nil {
		t.Fatal(err)
	}
	if q.Projection != nil {
		t.Fatal("star should give nil projection")
	}
	if q.Table != "patients" {
		t.Fatalf("table = %q", q.Table)
	}
	if len(q.Where) != 1 || q.Where[0].Column != "hospital" || q.Where[0].IsString || q.Where[0].IntVal != 1 {
		t.Fatalf("where = %+v", q.Where)
	}
}

func TestParseProjectionAndConjunction(t *testing.T) {
	q, err := Parse("select name, salary from emp where dept = 'HR' and salary = 7500")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Projection) != 2 || q.Projection[0] != "name" || q.Projection[1] != "salary" {
		t.Fatalf("projection = %v", q.Projection)
	}
	if len(q.Where) != 2 {
		t.Fatalf("where = %+v", q.Where)
	}
	if !q.Where[0].IsString || q.Where[0].StrVal != "HR" {
		t.Fatalf("first condition = %+v", q.Where[0])
	}
	if q.Where[1].IsString || q.Where[1].IntVal != 7500 {
		t.Fatalf("second condition = %+v", q.Where[1])
	}
}

func TestParseNoWhere(t *testing.T) {
	q, err := Parse("SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 0 {
		t.Fatalf("where = %+v", q.Where)
	}
}

func TestParseNegativeInt(t *testing.T) {
	q, err := Parse("SELECT * FROM t WHERE x = -17")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].IntVal != -17 {
		t.Fatalf("IntVal = %d", q.Where[0].IntVal)
	}
}

func TestParseStringWithSpaces(t *testing.T) {
	q, err := Parse("SELECT * FROM t WHERE name = 'Ada Lovelace'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].StrVal != "Ada Lovelace" {
		t.Fatalf("StrVal = %q", q.Where[0].StrVal)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		sql     string
		mention string
	}{
		{"", "SELECT"},
		{"DELETE FROM t", "SELECT"},
		{"SELECT FROM t", "column"},
		{"SELECT * WHERE x = 1", "FROM"},
		{"SELECT * FROM", "table"},
		{"SELECT * FROM t WHERE", "column"},
		{"SELECT * FROM t WHERE x", "="},
		{"SELECT * FROM t WHERE x = ", "literal"},
		{"SELECT * FROM t WHERE x < 5", "range"},
		{"SELECT * FROM t WHERE x > 5", "range"},
		{"SELECT * FROM t, u WHERE x = 1", "join"},
		{"SELECT * FROM t JOIN u WHERE x = 1", "join"},
		{"SELECT * FROM t WHERE x = 1 OR y = 2", "OR"},
		{"SELECT * FROM t WHERE name = 'unterminated", "unterminated"},
		{"SELECT * FROM t WHERE x = 1 garbage", "trailing"},
		{"SELECT * FROM t WHERE x = 99999999999999999999", "integer"},
	}
	for _, c := range cases {
		_, err := Parse(c.sql)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error mentioning %q", c.sql, c.mention)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.mention)) {
			t.Errorf("Parse(%q) error %q does not mention %q", c.sql, err, c.mention)
		}
	}
}

func TestQueryString(t *testing.T) {
	q, err := Parse("SELECT name FROM emp WHERE dept = 'HR' AND salary = 1")
	if err != nil {
		t.Fatal(err)
	}
	got := q.String()
	want := "SELECT name FROM emp WHERE dept = 'HR' AND salary = 1;"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	// Round trip: rendering must reparse to the same query.
	q2, err := Parse(got)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if q2.String() != got {
		t.Fatalf("reparse changed the query: %q vs %q", q2.String(), got)
	}
}

func TestConditionBind(t *testing.T) {
	s := relation.MustSchema("emp",
		relation.Column{Name: "name", Type: relation.TypeString, Width: 10},
		relation.Column{Name: "salary", Type: relation.TypeInt, Width: 5},
	)
	q, err := Parse("SELECT * FROM emp WHERE name = 'Ada' AND salary = 7500")
	if err != nil {
		t.Fatal(err)
	}
	eq0, err := q.Where[0].Bind(s)
	if err != nil {
		t.Fatal(err)
	}
	if eq0.Column != "name" || eq0.Value.Str() != "Ada" {
		t.Fatalf("bound condition 0 = %+v", eq0)
	}
	eq1, err := q.Where[1].Bind(s)
	if err != nil {
		t.Fatal(err)
	}
	if eq1.Value.Integer() != 7500 {
		t.Fatalf("bound condition 1 = %+v", eq1)
	}
}

func TestConditionBindErrors(t *testing.T) {
	s := relation.MustSchema("emp",
		relation.Column{Name: "name", Type: relation.TypeString, Width: 10},
		relation.Column{Name: "salary", Type: relation.TypeInt, Width: 5},
	)
	if _, err := (Condition{Column: "zzz", IntVal: 1}).Bind(s); err == nil {
		t.Fatal("unknown column bound")
	}
	if _, err := (Condition{Column: "salary", StrVal: "x", IsString: true}).Bind(s); err == nil {
		t.Fatal("string literal bound to int column")
	}
	// Int literal against a string column binds as digits.
	eq, err := (Condition{Column: "name", IntVal: 42}).Bind(s)
	if err != nil {
		t.Fatal(err)
	}
	if eq.Value.Str() != "42" {
		t.Fatalf("int-to-string bind = %q", eq.Value.Str())
	}
}
