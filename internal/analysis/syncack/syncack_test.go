package syncack_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/syncack"
)

func TestSyncack(t *testing.T) {
	analysistest.Run(t, "testdata", syncack.Analyzer, "storage")
}
