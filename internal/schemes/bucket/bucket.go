// Package bucket reimplements the bucketization scheme of Hacıgümüş, Iyer,
// Li and Mehrotra, "Executing SQL over Encrypted Data in the
// Database-Service-Provider Model" (SIGMOD 2002) — reference [4] of the
// paper and the main target of its §1 distinguishing attack.
//
// Integer attribute values are mapped to one of B equal-width intervals of
// the column's declared domain; the interval identifier is then encrypted
// under a secret permutation (realised as a PRF — indistinguishable from a
// random injective relabelling at these sizes). String values are
// partitioned by a keyed hash into B buckets, which is a random B-way domain
// partition. Two plaintexts in the same interval receive the same label;
// two plaintexts in different intervals receive different labels — the
// determinism the paper's adversary exploits with its two salary tables.
package bucket

import (
	"fmt"
	"math"

	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/schemes/indexed"
)

// SchemeID is the evaluator-registry name of the bucketization scheme.
const SchemeID = "bucket"

// labelLen is the byte length of the permuted interval labels.
const labelLen = 8

// Domain declares the value range [Min, Max] of an integer column, needed
// to partition it into equal-width intervals.
type Domain struct {
	// Min is the smallest admissible value.
	Min int64
	// Max is the largest admissible value, Max >= Min.
	Max int64
}

// width returns the number of values in the domain.
func (d Domain) width() uint64 {
	return uint64(d.Max-d.Min) + 1
}

// Options configures the scheme.
type Options struct {
	// Buckets is the number of intervals B per column. Zero selects
	// DefaultBuckets. Larger B means fewer false positives but more
	// leakage (finer equality pattern).
	Buckets int
	// IntDomains maps integer column names to their value domains.
	// Integer columns without an entry get a domain derived from the
	// column width: [-(10^w - 1), 10^w - 1].
	IntDomains map[string]Domain
}

// DefaultBuckets is the default interval count per column.
const DefaultBuckets = 16

// labeler implements indexed.Labeler with interval bucketization.
type labeler struct {
	buckets int
	domains []Domain // per column; only meaningful for int columns
	prf     *crypto.PRF
}

// New constructs a bucketization instance over the schema.
func New(master crypto.Key, schema *relation.Schema, opts Options) (*indexed.Scheme, error) {
	b := opts.Buckets
	if b == 0 {
		b = DefaultBuckets
	}
	if b < 2 {
		return nil, fmt.Errorf("bucket: need at least 2 buckets, got %d", b)
	}
	l := &labeler{
		buckets: b,
		domains: make([]Domain, schema.NumColumns()),
		prf:     crypto.NewPRF(crypto.NewPRF(master).DeriveKey("bucket/labels", nil)),
	}
	for i, c := range schema.Columns {
		if c.Type != relation.TypeInt {
			continue
		}
		if d, ok := opts.IntDomains[c.Name]; ok {
			if d.Max < d.Min {
				return nil, fmt.Errorf("bucket: column %q has inverted domain [%d, %d]", c.Name, d.Min, d.Max)
			}
			l.domains[i] = d
			continue
		}
		bound := int64(math.Pow10(min(c.Width, 18))) - 1
		l.domains[i] = Domain{Min: -bound, Max: bound}
	}
	return indexed.New(SchemeID, master, schema, l)
}

// Label implements indexed.Labeler.
func (l *labeler) Label(colIdx int, col relation.Column, v relation.Value) ([]byte, error) {
	var bucketID uint64
	switch col.Type {
	case relation.TypeInt:
		d := l.domains[colIdx]
		x := v.Integer()
		if x < d.Min || x > d.Max {
			return nil, fmt.Errorf("bucket: value %d outside declared domain [%d, %d] of column %q",
				x, d.Min, d.Max, col.Name)
		}
		// Equal-width intervals over [Min, Max]; the final interval
		// absorbs the remainder.
		intervalWidth := d.width() / uint64(l.buckets)
		if intervalWidth == 0 {
			intervalWidth = 1
		}
		bucketID = uint64(x-d.Min) / intervalWidth
		if bucketID >= uint64(l.buckets) {
			bucketID = uint64(l.buckets) - 1
		}
	case relation.TypeString:
		// Keyed-hash partition of the string domain into B buckets.
		h := l.prf.SumStrings(8, []byte("partition"), []byte(col.Name), []byte(v.Str()))
		bucketID = be64(h) % uint64(l.buckets)
	default:
		return nil, fmt.Errorf("bucket: column %q has unsupported type %s", col.Name, col.Type)
	}
	// Secret permutation of the interval identifier, per column.
	return l.prf.SumStrings(labelLen, []byte("perm"), []byte(col.Name), u64bytes(bucketID)), nil
}

func be64(b []byte) uint64 {
	var x uint64
	for _, c := range b[:8] {
		x = x<<8 | uint64(c)
	}
	return x
}

func u64bytes(x uint64) []byte {
	b := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		b[i] = byte(x)
		x >>= 8
	}
	return b
}

func init() {
	ph.RegisterEvaluator(SchemeID, indexed.Evaluate)
}
