package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randTable builds a small random two-column table.
func propTable(rng *rand.Rand, rows int) *Table {
	s := MustSchema("t",
		Column{Name: "a", Type: TypeString, Width: 3},
		Column{Name: "n", Type: TypeInt, Width: 2},
	)
	t := NewTable(s)
	letters := []string{"x", "y", "z", "xy", ""}
	for i := 0; i < rows; i++ {
		t.MustInsert(String(letters[rng.Intn(len(letters))]), Int(rng.Int63n(10)))
	}
	return t
}

// Property: selects commute — σ_p(σ_q(T)) = σ_q(σ_p(T)).
func TestPropertySelectsCommute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := propTable(rng, rng.Intn(20))
		p := Eq{Column: "a", Value: String("x")}
		q := Eq{Column: "n", Value: Int(rng.Int63n(10))}
		pq1, err := Select(tab, p)
		if err != nil {
			return false
		}
		pq1, err = Select(pq1, q)
		if err != nil {
			return false
		}
		pq2, err := Select(tab, q)
		if err != nil {
			return false
		}
		pq2, err = Select(pq2, p)
		if err != nil {
			return false
		}
		return pq1.Equal(pq2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a conjunction equals the intersection of its conjuncts'
// results — the identity the client-side SQL executor relies on.
func TestPropertyConjunctionIsIntersection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := propTable(rng, rng.Intn(25))
		p := Eq{Column: "a", Value: String("y")}
		q := Eq{Column: "n", Value: Int(rng.Int63n(10))}
		both, err := Select(tab, And{Preds: []Pred{p, q}})
		if err != nil {
			return false
		}
		rp, err := Select(tab, p)
		if err != nil {
			return false
		}
		rq, err := Select(tab, q)
		if err != nil {
			return false
		}
		inter, err := Intersect(rp, rq)
		if err != nil {
			return false
		}
		return both.Equal(inter)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: selection is idempotent — σ_p(σ_p(T)) = σ_p(T).
func TestPropertySelectIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := propTable(rng, rng.Intn(20))
		p := Eq{Column: "a", Value: String("z")}
		once, err := Select(tab, p)
		if err != nil {
			return false
		}
		twice, err := Select(once, p)
		if err != nil {
			return false
		}
		return once.Equal(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: intersection is commutative on multisets.
func TestPropertyIntersectCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := propTable(rng, rng.Intn(15))
		b := propTable(rng, rng.Intn(15))
		ab, err := Intersect(a, b)
		if err != nil {
			return false
		}
		ba, err := Intersect(b, a)
		if err != nil {
			return false
		}
		return ab.Equal(ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: table binary codec round trip on random tables.
func TestPropertyTableCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := propTable(rng, rng.Intn(20))
		back, err := DecodeTable(EncodeTable(tab))
		if err != nil {
			return false
		}
		return back.Equal(tab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Equal is symmetric and Clone preserves equality.
func TestPropertyEqualCloneLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := propTable(rng, rng.Intn(12))
		b := propTable(rng, rng.Intn(12))
		if a.Equal(b) != b.Equal(a) {
			return false
		}
		return a.Equal(a.Clone()) && a.Clone().Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
