// Payroll: the full outsourcing stack over TCP in one process. A phserver
// (Eve) is started on a loopback port with a durable log; a client (Alex)
// uploads an encrypted payroll table, runs SQL — including a conjunctive
// query and a projection — inserts a tuple, and verifies every answer
// against the Merkle root pinned at upload time.
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	// --- Eve's side: storage + server ------------------------------------
	dir, err := os.MkdirTemp("", "payroll-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := storage.Open(filepath.Join(dir, "store.log"))
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	srv := server.New(store, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	fmt.Printf("server (Eve) listening on %s, durable log in %s\n", l.Addr(), dir)

	// --- Alex's side ------------------------------------------------------
	key := crypto.KeyFromBytes([]byte("payroll-demo-passphrase"))
	scheme, err := core.New(key, workload.EmployeeSchema(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	conn, err := client.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	db := client.NewDB(conn, scheme, "payroll")

	table, err := workload.Employees(200, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.CreateTable(table); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded %d employees, Merkle root pinned client-side\n", table.Len())

	run := func(sql string) {
		res, err := db.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n%s(%d tuples, every one verified against the pinned root)\n",
			sql, res.Sorted(), res.Len())
	}
	run("SELECT * FROM emp WHERE dept = 'HR'")
	run("SELECT name, salary FROM emp WHERE dept = 'IT'")

	// Conjunction: evaluated as two homomorphic selects intersected
	// client-side.
	hr, err := db.Query("SELECT salary FROM emp WHERE dept = 'HR'")
	if err != nil {
		log.Fatal(err)
	}
	if hr.Len() > 0 {
		s := hr.Tuple(0)[0].Integer()
		run(fmt.Sprintf("SELECT name FROM emp WHERE dept = 'HR' AND salary = %d", s))
	}

	// Insert and read back.
	if err := db.Insert(relation.Tuple{
		relation.String("Newhire"), relation.String("R&D"), relation.Int(55000),
	}); err != nil {
		log.Fatal(err)
	}
	run("SELECT * FROM emp WHERE name = 'Newhire'")

	// What does Eve actually hold? Only ciphertext.
	infos, err := conn.List()
	if err != nil {
		log.Fatal(err)
	}
	ct, err := conn.FetchAll("payroll")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEve's directory: %+v\n", infos)
	fmt.Printf("Eve's view of tuple 0: id=%x words[0]=%x…\n",
		ct.Tuples[0].ID[:4], ct.Tuples[0].Words[0][:8])
}
