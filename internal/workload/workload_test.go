package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestHospitalMarginals(t *testing.T) {
	const n = 5000
	tab, err := Hospital(HospitalConfig{Patients: n}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != n {
		t.Fatalf("generated %d patients, want %d", tab.Len(), n)
	}
	s := tab.Schema()
	hIdx := s.ColumnIndex("hospital")
	oIdx := s.ColumnIndex("outcome")
	counts := map[int64]int{}
	fatal := 0
	for _, tp := range tab.Tuples() {
		counts[tp[hIdx].Integer()]++
		if tp[oIdx].Str() == OutcomeFatal {
			fatal++
		}
	}
	for h, want := range map[int64]float64{1: 0.2, 2: 0.3, 3: 0.5} {
		got := float64(counts[h]) / n
		if math.Abs(got-want) > 0.03 {
			t.Errorf("hospital %d flow %v, want ≈ %v", h, got, want)
		}
	}
	if got := float64(fatal) / n; math.Abs(got-OutcomeFatalRate) > 0.02 {
		t.Errorf("fatal rate %v, want ≈ %v", got, OutcomeFatalRate)
	}
}

func TestHospitalPerHospitalRates(t *testing.T) {
	tab, err := Hospital(HospitalConfig{
		Patients:            6000,
		FatalRateByHospital: []float64{0.30, 0.05, 0.01},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	inH1, err := relation.Select(tab, relation.Eq{Column: "hospital", Value: relation.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	fatal1, err := relation.Select(inH1, relation.Eq{Column: "outcome", Value: relation.String(OutcomeFatal)})
	if err != nil {
		t.Fatal(err)
	}
	got := float64(fatal1.Len()) / float64(inH1.Len())
	if math.Abs(got-0.30) > 0.05 {
		t.Fatalf("hospital-1 rate %v, want ≈ 0.30", got)
	}
}

func TestHospitalEnsureName(t *testing.T) {
	tab, err := Hospital(HospitalConfig{Patients: 50, EnsureName: "John"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := relation.Select(tab, relation.Eq{Column: "name", Value: relation.String("John")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("found %d Johns, want exactly 1", res.Len())
	}
}

func TestHospitalDeterministicPerSeed(t *testing.T) {
	a, err := Hospital(HospitalConfig{Patients: 100}, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Hospital(HospitalConfig{Patients: 100}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same seed produced different tables")
	}
	c, err := Hospital(HospitalConfig{Patients: 100}, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Fatal("different seeds produced identical tables")
	}
}

func TestHospitalValidation(t *testing.T) {
	if _, err := Hospital(HospitalConfig{Patients: 0}, 1); err == nil {
		t.Fatal("zero patients accepted")
	}
}

func TestEmployeesValid(t *testing.T) {
	tab, err := Employees(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 500 {
		t.Fatalf("generated %d employees", tab.Len())
	}
	// All values must satisfy the schema (Insert enforces) and avoid '#'.
	for _, tp := range tab.Tuples() {
		for _, v := range tp {
			if strings.ContainsRune(v.Encode(), '#') {
				t.Fatalf("generated value contains padding symbol: %v", v)
			}
		}
	}
}

func TestEmployeesZipfSkew(t *testing.T) {
	tab, err := Employees(2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	di := tab.Schema().ColumnIndex("dept")
	for _, tp := range tab.Tuples() {
		counts[tp[di].Str()]++
	}
	// Zipf: the most common department must dominate the least common.
	max, min := 0, tab.Len()
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max < 4*min {
		t.Fatalf("department distribution not skewed: max %d, min %d", max, min)
	}
}

func TestPersonNameFits(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		n := PersonName(rng)
		if len(n) > 10 || len(n) == 0 {
			t.Fatalf("name %q out of bounds", n)
		}
	}
}

func TestUniformInts(t *testing.T) {
	tab, err := UniformInts(200, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tab.Tuples() {
		v := tp[0].Integer()
		if v < 0 || v >= 1000 {
			t.Fatalf("value %d outside domain", v)
		}
	}
}

func TestQueryMixHasHits(t *testing.T) {
	tab, err := Employees(100, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range QueryMix(tab, 50, 12) {
		res, err := relation.Select(tab, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() == 0 {
			t.Fatalf("query %s has no hits", q)
		}
	}
}

func TestStormDeterministicAndOrdered(t *testing.T) {
	cfg := StormConfig{Arrivals: 500, Rate: 1000, Keys: 16, Skew: 1.2}
	a, err := Storm(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Storm(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != cfg.Arrivals {
		t.Fatalf("got %d arrivals, want %d", len(a), cfg.Arrivals)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across identically-seeded runs: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].At < a[i-1].At {
			t.Fatalf("arrival %d at %v precedes arrival %d at %v", i, a[i].At, i-1, a[i-1].At)
		}
		if a[i].Key < 0 || a[i].Key >= cfg.Keys {
			t.Fatalf("arrival %d key %d outside [0,%d)", i, a[i].Key, cfg.Keys)
		}
	}
	c, err := Storm(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical storms")
	}
}

func TestStormThunderingHerd(t *testing.T) {
	a, err := Storm(StormConfig{Arrivals: 100, Rate: 0, Keys: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, ar := range a {
		if ar.At != 0 {
			t.Fatalf("arrival %d at %v, want t=0 for the rate-0 herd", i, ar.At)
		}
		if ar.Key != 0 {
			t.Fatalf("arrival %d key %d, want 0 for a single-key storm", i, ar.Key)
		}
	}
}

func TestStormSkewConcentratesHotKey(t *testing.T) {
	const n = 4000
	hot := func(skew float64) int {
		a, err := Storm(StormConfig{Arrivals: n, Rate: 100, Keys: 32, Skew: skew}, 5)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for _, ar := range a {
			if ar.Key == 0 {
				count++
			}
		}
		return count
	}
	uniform := hot(0)
	skewed := hot(2.0)
	if skewed <= 2*uniform {
		t.Fatalf("skew 2.0 put %d arrivals on key 0 vs %d uniform; want strong concentration", skewed, uniform)
	}
	if skewed < n/2 {
		t.Fatalf("skew 2.0 put only %d/%d arrivals on key 0", skewed, n)
	}
}

func TestStormRejectsNegativeArrivals(t *testing.T) {
	if _, err := Storm(StormConfig{Arrivals: -1}, 1); err == nil {
		t.Fatal("negative arrival count accepted")
	}
}

func TestStormRateSetsMeanGap(t *testing.T) {
	const n = 20000
	a, err := Storm(StormConfig{Arrivals: n, Rate: 500}, 9)
	if err != nil {
		t.Fatal(err)
	}
	mean := a[n-1].At.Seconds() / float64(n-1)
	if want := 1.0 / 500; math.Abs(mean-want)/want > 0.1 {
		t.Fatalf("mean interarrival %.6fs, want within 10%% of %.6fs", mean, want)
	}
}
