// Package client implements Alex: the trusted client library. The low-level
// Conn speaks the wire protocol; the high-level DB wraps a database privacy
// homomorphism (ph.Scheme) so that applications work entirely in plaintext
// terms — plaintext tables in, plaintext results out — while nothing but
// ciphertext ever crosses the connection.
//
// Conjunctions (`WHERE a = x AND b = y`) are pushed down to the server:
// DB.Query encrypts one token per conjunct and sends a single
// CmdQueryConj, and the server's selectivity-ordered planner
// (internal/query) intersects the scheme-opaque position sets where the
// data lives, returning only the tuples in the intersection — with
// inclusion proofs from the same snapshot when a root is pinned. The old
// client-side evaluation (SelectMany per conjunct, relation.Intersect
// after decryption) survives as the documented legacy fallback
// (SelectConjLegacy) and is used automatically when the server predates
// CmdQueryConj. Pushdown changes where the intersection happens, not
// what the server learns: per-conjunct access patterns are on the wire
// either way.
//
// The transport is allowed to fail: DialWithConfig retries dials with
// jittered backoff, connections take per-round-trip I/O deadlines, and
// a DB can spread its single-round reads over untrusted read replicas
// (AddReplicas) with round-robin routing, quarantine and failover to
// the primary — replica answers are verified against the pinned root
// exactly like the primary's, so replication never loosens the trust
// model. See net.go.
package client

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/authindex"
	"repro/internal/ph"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sqlmini"
	"repro/internal/wire"
)

// Conn is a low-level protocol connection. It is not safe for concurrent
// use; wrap it in your own mutex or pool connections.
type Conn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	// ioTimeout, when positive, bounds every round trip (request write +
	// response read) so a wedged server cannot pin the caller forever.
	// Set it via DialConfig.IOTimeout or SetIOTimeout.
	ioTimeout time.Duration
}

// Dial connects to a server address.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing %s: %w", addr, err)
	}
	return NewConn(c), nil
}

// NewConn wraps an established connection (e.g. one side of net.Pipe in
// tests).
func NewConn(c net.Conn) *Conn {
	return &Conn{conn: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.conn.Close() }

// roundTrip sends a command frame and reads the response, converting
// RespError into a Go error.
func (c *Conn) roundTrip(f wire.Frame) (wire.Frame, error) {
	if c.ioTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.ioTimeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := wire.WriteFrame(c.w, f); err != nil {
		return wire.Frame{}, err
	}
	if err := c.w.Flush(); err != nil {
		return wire.Frame{}, fmt.Errorf("client: flushing: %w", err)
	}
	resp, err := wire.ReadFrame(c.r)
	if err != nil {
		return wire.Frame{}, err
	}
	if resp.Type == wire.RespError {
		r := wire.NewBuffer(resp.Payload)
		msg, merr := r.String()
		if merr != nil {
			msg = "malformed error response"
		}
		return wire.Frame{}, fmt.Errorf("client: server error: %s", msg)
	}
	return resp, nil
}

// RoundTrip sends one command frame and returns the response frame,
// with the connection's I/O deadline applied and RespError converted to
// a Go error. It exists for protocol extensions that live outside this
// package (internal/shard's coordinator framing) so they can speak new
// commands over the managed connection without duplicating its
// transport discipline.
func (c *Conn) RoundTrip(f wire.Frame) (wire.Frame, error) { return c.roundTrip(f) }

// Store uploads an encrypted table under the given name.
func (c *Conn) Store(name string, t *ph.EncryptedTable) error {
	payload := wire.AppendString(nil, name)
	payload = wire.EncodeTable(payload, t)
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdStore, Payload: payload})
	if err != nil {
		return err
	}
	if resp.Type != wire.RespOK {
		return fmt.Errorf("client: unexpected response %#x to store", resp.Type)
	}
	return nil
}

// InsertAck is the server's placement acknowledgement for an insert:
// where the batch landed and the table version it installed.
type InsertAck struct {
	// Base is the table's tuple count before the append — the index the
	// batch's first tuple landed at.
	Base int
	// Count is the number of tuples appended.
	Count int
	// Version is the store version the append installed.
	Version uint64
}

// Insert appends encrypted tuples to a stored table via the legacy
// CmdInsert (bare RespOK ack).
func (c *Conn) Insert(name string, tuples []ph.EncryptedTuple) error {
	payload := wire.AppendString(nil, name)
	payload = wire.AppendU32(payload, uint32(len(tuples)))
	for _, tp := range tuples {
		payload = wire.EncodeTuple(payload, tp)
	}
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdInsert, Payload: payload})
	if err != nil {
		return err
	}
	if resp.Type != wire.RespOK {
		return fmt.Errorf("client: unexpected response %#x to insert", resp.Type)
	}
	return nil
}

// InsertStamped appends encrypted tuples to a stored table via
// CmdInsertStamped and returns the server's placement ack, from which a
// verifying client advances its pinned authenticated root incrementally
// (the leaves are the client's own tuples; the ack says where they
// went).
func (c *Conn) InsertStamped(name string, tuples []ph.EncryptedTuple) (InsertAck, error) {
	payload := wire.AppendString(nil, name)
	payload = wire.AppendU32(payload, uint32(len(tuples)))
	for _, tp := range tuples {
		payload = wire.EncodeTuple(payload, tp)
	}
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdInsertStamped, Payload: payload})
	if err != nil {
		return InsertAck{}, err
	}
	if resp.Type != wire.RespInserted {
		return InsertAck{}, fmt.Errorf("client: unexpected response %#x to stamped insert", resp.Type)
	}
	r := wire.NewBuffer(resp.Payload)
	base, err := r.U32()
	if err != nil {
		return InsertAck{}, fmt.Errorf("client: insert ack base: %w", err)
	}
	count, err := r.U32()
	if err != nil {
		return InsertAck{}, fmt.Errorf("client: insert ack count: %w", err)
	}
	version, err := r.U64()
	if err != nil {
		return InsertAck{}, fmt.Errorf("client: insert ack version: %w", err)
	}
	return InsertAck{Base: int(base), Count: int(count), Version: version}, nil
}

// Query evaluates an encrypted query server-side.
func (c *Conn) Query(name string, q *ph.EncryptedQuery) (*ph.Result, error) {
	payload := wire.AppendString(nil, name)
	payload = wire.EncodeQuery(payload, q)
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdQuery, Payload: payload})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.RespResult {
		return nil, fmt.Errorf("client: unexpected response %#x to query", resp.Type)
	}
	return wire.DecodeResult(wire.NewBuffer(resp.Payload))
}

// QueryBatch evaluates several encrypted queries against one table in a
// single round trip, in order.
func (c *Conn) QueryBatch(name string, qs []*ph.EncryptedQuery) ([]*ph.Result, error) {
	payload := wire.AppendString(nil, name)
	payload = wire.AppendU32(payload, uint32(len(qs)))
	for _, q := range qs {
		payload = wire.EncodeQuery(payload, q)
	}
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdQueryBatch, Payload: payload})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.RespResults {
		return nil, fmt.Errorf("client: unexpected response %#x to query batch", resp.Type)
	}
	r := wire.NewBuffer(resp.Payload)
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	if int(n) != len(qs) {
		return nil, fmt.Errorf("client: batch returned %d results for %d queries", n, len(qs))
	}
	out := make([]*ph.Result, n)
	for i := range out {
		if out[i], err = wire.DecodeResult(r); err != nil {
			return nil, fmt.Errorf("client: batch result %d: %w", i, err)
		}
	}
	return out, nil
}

// FetchAll downloads a complete encrypted table.
func (c *Conn) FetchAll(name string) (*ph.EncryptedTable, error) {
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdFetchAll, Payload: wire.AppendString(nil, name)})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.RespTable {
		return nil, fmt.Errorf("client: unexpected response %#x to fetch", resp.Type)
	}
	return wire.DecodeTable(wire.NewBuffer(resp.Payload))
}

// Drop removes a stored table.
func (c *Conn) Drop(name string) error {
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdDrop, Payload: wire.AppendString(nil, name)})
	if err != nil {
		return err
	}
	if resp.Type != wire.RespOK {
		return fmt.Errorf("client: unexpected response %#x to drop", resp.Type)
	}
	return nil
}

// List enumerates stored tables.
func (c *Conn) List() ([]wire.TableInfo, error) {
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdList})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.RespList {
		return nil, fmt.Errorf("client: unexpected response %#x to list", resp.Type)
	}
	return wire.DecodeList(wire.NewBuffer(resp.Payload))
}

// Root fetches the server's authenticated-index root, tuple count and
// version stamp for a table (extension). Caveat: a root fetched here and
// proofs fetched by a later Prove are separate snapshots — a mutation
// between the two calls makes honest proofs fail against this root. Use
// QueryVerified for a race-free verified read.
func (c *Conn) Root(name string) (root []byte, tuples int, version uint64, err error) {
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdRoot, Payload: wire.AppendString(nil, name)})
	if err != nil {
		return nil, 0, 0, err
	}
	if resp.Type != wire.RespRoot {
		return nil, 0, 0, fmt.Errorf("client: unexpected response %#x to root", resp.Type)
	}
	r := wire.NewBuffer(resp.Payload)
	root, err = r.Bytes()
	if err != nil {
		return nil, 0, 0, err
	}
	n, err := r.U32()
	if err != nil {
		return nil, 0, 0, err
	}
	version, err = r.U64()
	if err != nil {
		return nil, 0, 0, err
	}
	return root, int(n), version, nil
}

// QueryVerified evaluates an encrypted query server-side and returns the
// result with inclusion proofs, root, leaf count and version cut from
// one server-side snapshot (extension). Proofs always verify against the
// returned root; trusting that root is the caller's decision (DB
// compares it against the pinned one).
func (c *Conn) QueryVerified(name string, q *ph.EncryptedQuery) (*authindex.VerifiedResult, error) {
	payload := wire.AppendString(nil, name)
	payload = wire.EncodeQuery(payload, q)
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdQueryVerified, Payload: payload})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.RespResultVerified {
		return nil, fmt.Errorf("client: unexpected response %#x to verified query", resp.Type)
	}
	return authindex.DecodeVerifiedResult(wire.NewBuffer(resp.Payload))
}

// QueryConj evaluates a conjunction of encrypted queries server-side in
// one round trip through the selectivity-ordered planner (CmdQueryConj)
// and returns the intersection — plain, or with snapshot-consistent
// proofs when verified is set — together with the executed plan summary.
// Servers predating the command answer with an unknown-command error;
// IsUnsupported recognises it so callers can fall back to the legacy
// client-side intersection.
func (c *Conn) QueryConj(name string, qs []*ph.EncryptedQuery, verified bool) (*query.Response, error) {
	var flags byte
	if verified {
		flags |= wire.ConjFlagVerified
	}
	return c.queryConj(name, flags, qs)
}

// ExplainConj asks the server to plan — but not execute — a conjunctive
// query: conjunct order, selectivity estimates, cache state.
func (c *Conn) ExplainConj(name string, qs []*ph.EncryptedQuery) (*query.PlanInfo, error) {
	resp, err := c.queryConj(name, wire.ConjFlagExplain, qs)
	if err != nil {
		return nil, err
	}
	return resp.Plan, nil
}

// queryConj sends one CmdQueryConj with the given flags.
func (c *Conn) queryConj(name string, flags byte, qs []*ph.EncryptedQuery) (*query.Response, error) {
	payload := query.EncodeRequest(nil, name, flags, qs)
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdQueryConj, Payload: payload})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.RespResultConj {
		return nil, fmt.Errorf("client: unexpected response %#x to conjunctive query", resp.Type)
	}
	return query.DecodeResponse(wire.NewBuffer(resp.Payload))
}

// IsUnsupported reports whether a server error says the command does not
// exist there — the signal to fall back to a legacy protocol path when
// talking to a server predating an extension.
func IsUnsupported(err error) bool {
	return err != nil && strings.Contains(err.Error(), "unknown command")
}

// IsRemote reports whether the error is an answer the server gave
// (RespError) rather than a transport failure: the connection is
// healthy, and redialing would change nothing.
func IsRemote(err error) bool {
	return err != nil && strings.Contains(err.Error(), "server error:")
}

// Prove fetches inclusion proofs for result positions (extension). Same
// caveat as Root: the proofs describe the table as of this call, not as
// of any earlier Root fetch.
func (c *Conn) Prove(name string, positions []int) ([]authindex.Proof, error) {
	payload := wire.AppendString(nil, name)
	payload = wire.AppendU32(payload, uint32(len(positions)))
	for _, p := range positions {
		payload = wire.AppendU32(payload, uint32(p))
	}
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdProve, Payload: payload})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.RespProofs {
		return nil, fmt.Errorf("client: unexpected response %#x to prove", resp.Type)
	}
	return authindex.DecodeProofs(wire.NewBuffer(resp.Payload))
}

// DB is the high-level secure-outsourcing client: a scheme instance (keys
// stay here) bound to a connection and a remote table name.
type DB struct {
	conn   *Conn
	scheme ph.Scheme
	table  string

	// root pins the authenticated-index root after CreateTable /
	// PinRoot; nil disables verification.
	root       []byte
	rootTuples int
	// rootVersion is the last server version stamp observed for a
	// snapshot matching the pinned root (informational: version stamps
	// are server-asserted and carry no authentication).
	rootVersion uint64
	// frontier is the O(log n) Merkle frontier behind the pinned root.
	// While present, the client's own inserts advance the root from
	// their local leaf hashes — no re-download. It is nil after PinRoot
	// (only the 32-byte anchor was persisted); the first insert then
	// rebuilds it from a fetch *verified against the pinned root*.
	frontier *authindex.Frontier

	// pool routes single-round reads: round-robin over registered read
	// replicas with quarantine backoff, failover to the primary
	// (net.go). A replica whose answer fails the pinned-root check is
	// quarantined like any other failure — the trust anchor never
	// loosens.
	pool *ReadPool

	// cluster, when set, replaces the single connection with a sharded
	// serving tier (internal/shard): tuples hash-partition over N
	// backends, reads scatter to every shard, and the trust anchor
	// becomes a *vector* of per-shard roots (pins). conn and pool are
	// nil in this mode. See cluster.go.
	cluster Cluster
	// pins holds one pinned root (and its frontier) per shard while
	// cluster is set and verification is enabled.
	pins []shardPin
}

// NewDB binds a scheme to a connection and remote table name.
func NewDB(conn *Conn, scheme ph.Scheme, table string) *DB {
	return &DB{conn: conn, scheme: scheme, table: table, pool: NewReadPool(conn)}
}

// Scheme returns the underlying privacy homomorphism.
func (db *DB) Scheme() ph.Scheme { return db.scheme }

// Root returns the currently pinned authenticated-index root and tuple
// count (nil if none is pinned). Applications persist this across restarts
// — it is the only trust anchor needed to verify future answers.
func (db *DB) Root() (root []byte, tuples int) {
	return append([]byte(nil), db.root...), db.rootTuples
}

// PinRoot installs a previously persisted root (e.g. after a client
// restart). Passing a nil root disables verification. Only the anchor is
// installed: the Merkle frontier behind it is rebuilt lazily — and
// verified against this root — on the first insert that needs it.
func (db *DB) PinRoot(root []byte, tuples int) {
	db.frontier = nil
	db.rootVersion = 0
	if root == nil {
		db.root, db.rootTuples = nil, 0
		return
	}
	db.root = append([]byte(nil), root...)
	db.rootTuples = tuples
}

// CreateTable encrypts and uploads the plaintext table, pinning the
// authenticated-index root of the uploaded ciphertext and keeping its
// frontier so later inserts advance the root incrementally.
func (db *DB) CreateTable(t *relation.Table) error {
	ct, err := db.scheme.EncryptTable(t)
	if err != nil {
		return err
	}
	if db.cluster != nil {
		return db.createTableSharded(ct)
	}
	if err := db.conn.Store(db.table, ct); err != nil {
		return err
	}
	db.frontier = authindex.FrontierOf(ct)
	db.root = db.frontier.Root()
	db.rootTuples = db.frontier.Count()
	db.rootVersion = 0
	return nil
}

// encryptTuples builds a single-use table from the plaintext tuples and
// encrypts it under the DB's scheme.
func (db *DB) encryptTuples(tuples []relation.Tuple) (*ph.EncryptedTable, error) {
	t := relation.NewTable(db.scheme.Schema())
	for _, tp := range tuples {
		if err := t.Insert(tp); err != nil {
			return nil, err
		}
	}
	return db.scheme.EncryptTable(t)
}

// RepinRoot re-pins the authenticated-index root (and rebuilds the
// frontier) from a full fetch of the server's current table. This is the
// explicit recovery path — it *trusts* the fetched ciphertext exactly as
// CreateTable trusts the upload — for when the client knowingly lost
// sync with the table (another writer appended, a partial batch failure,
// a deliberate server-side reload). Routine inserts never call it: they
// advance the root incrementally from their own leaf hashes.
func (db *DB) RepinRoot() error {
	if db.cluster != nil {
		return db.repinShardRoots()
	}
	full, err := db.conn.FetchAll(db.table)
	if err != nil {
		return err
	}
	db.frontier = authindex.FrontierOf(full)
	db.root = db.frontier.Root()
	db.rootTuples = db.frontier.Count()
	db.rootVersion = 0
	return nil
}

// ensureFrontier makes the frontier behind the pinned root available,
// rebuilding it from a full fetch when only the anchor was persisted
// (PinRoot after a restart). Unlike RepinRoot, the rebuild is *verified*:
// the fetched table must hash back to the pinned root, so a tampering
// server cannot use the rebuild to swap the anchor from under the client.
func (db *DB) ensureFrontier() error {
	if db.frontier != nil {
		return nil
	}
	full, err := db.conn.FetchAll(db.table)
	if err != nil {
		return err
	}
	f := authindex.FrontierOf(full)
	if !bytes.Equal(f.Root(), db.root) || f.Count() != db.rootTuples {
		return fmt.Errorf("client: server table does not match the pinned root (%d tuples fetched, %d pinned) — verification failed; RepinRoot only if the mismatch is expected", f.Count(), db.rootTuples)
	}
	db.frontier = f
	return nil
}

// advanceRoot folds an insert's placement ack and the locally encrypted
// tuples into the pinned root. The server appends batches in the order
// sent, so the leaves are known locally; the ack only has to confirm
// *where* they landed. A base that is not the frontier's leaf count means
// someone else moved the table (or a pre-placement server answered) —
// the pin is stale and the caller must decide (RepinRoot) rather than
// have the client silently adopt foreign leaves it cannot hash.
func (db *DB) advanceRoot(ack InsertAck, tuples []ph.EncryptedTuple) error {
	if ack.Base != db.frontier.Count() {
		return fmt.Errorf("client: insert landed at tuple %d but the pinned root covers %d — concurrent external writes; call RepinRoot to resync (or pin a fresh root)", ack.Base, db.frontier.Count())
	}
	for _, tp := range tuples {
		db.frontier.AppendTuple(tp)
	}
	db.root = db.frontier.Root()
	db.rootTuples = db.frontier.Count()
	db.rootVersion = ack.Version
	return nil
}

// Insert encrypts and appends plaintext tuples. With a pinned root, the
// root advances incrementally from the placement ack and the local leaf
// hashes — O(k log n) hashing and zero extra round trips, against the
// old full-table re-download per insert.
func (db *DB) Insert(tuples ...relation.Tuple) error {
	ct, err := db.encryptTuples(tuples)
	if err != nil {
		return err
	}
	if db.cluster != nil {
		return db.insertSharded(ct.Tuples)
	}
	if db.root == nil {
		return db.conn.Insert(db.table, ct.Tuples)
	}
	if err := db.ensureFrontier(); err != nil {
		return err
	}
	ack, err := db.conn.InsertStamped(db.table, ct.Tuples)
	if err != nil {
		return err
	}
	return db.advanceRoot(ack, ct.Tuples)
}

// InsertBatch encrypts the tuples once and appends them to the remote
// table in chunks of chunk tuples, fanned out over workers parallel
// connections opened with dial. The concurrent CmdInsert frames land in
// the server's group-commit write path, so the whole batch shares
// fsyncs instead of paying one per chunk; every chunk is durably
// acknowledged when InsertBatch returns (under the server's sync
// policy). Chunks from different workers interleave, so the server-side
// tuple order within the batch is unspecified — exact selects don't
// care, and the pinned root (if any) advances from the per-chunk
// placement acks: each ack says where its chunk landed, so sorting the
// acks by base reconstructs the server-side leaf order from purely local
// hashes. When that reconstruction is impossible — a worker failed (its
// chunk may or may not have landed) or a foreign writer interleaved —
// the pin is left untouched and the returned error says to call
// RepinRoot: re-pinning silently would extend full-fetch trust to the
// server on a call that reports success.
//
// workers <= 0 defaults to 4; chunk <= 0 defaults to 256. A nil dial
// falls back to a serial Insert over the DB's own connection.
func (db *DB) InsertBatch(dial func() (*Conn, error), workers, chunk int, tuples ...relation.Tuple) error {
	if dial == nil || db.cluster != nil {
		// A sharded insert already fans out: the coordinator scatters
		// the partitioned batch to every shard's group-commit write path.
		return db.Insert(tuples...)
	}
	if workers <= 0 {
		workers = 4
	}
	if chunk <= 0 {
		chunk = 256
	}
	ct, err := db.encryptTuples(tuples)
	if err != nil {
		return err
	}
	if db.root != nil {
		if err := db.ensureFrontier(); err != nil {
			return err
		}
	}
	var chunks [][]ph.EncryptedTuple
	for off := 0; off < len(ct.Tuples); off += chunk {
		end := min(off+chunk, len(ct.Tuples))
		chunks = append(chunks, ct.Tuples[off:end])
	}
	if len(chunks) == 0 {
		return nil
	}
	if w := len(chunks); w < workers {
		workers = w
	}
	type job struct {
		idx   int
		batch []ph.EncryptedTuple
	}
	work := make(chan job)
	errs := make([]error, workers)
	acks := make([]InsertAck, len(chunks))
	acked := make([]bool, len(chunks))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := dial()
			if err != nil {
				errs[w] = fmt.Errorf("client: batch insert worker %d: %w", w, err)
				// Keep draining so the feeder never blocks on a dead worker.
				for range work {
				}
				return
			}
			defer conn.Close()
			for j := range work {
				ack, err := conn.InsertStamped(db.table, j.batch)
				if err != nil {
					errs[w] = fmt.Errorf("client: batch insert worker %d: %w", w, err)
					for range work {
					}
					return
				}
				acks[j.idx], acked[j.idx] = ack, true
			}
		}(w)
	}
	for i, c := range chunks {
		work <- job{idx: i, batch: c}
	}
	close(work)
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	if db.root == nil {
		return firstErr
	}
	// Advance the pinned root from the placement acks: sort the acked
	// chunks by landing position and append their leaf hashes in server
	// order. The bases must tile [frontier.Count(), …) exactly; any gap
	// means an unacked chunk may have landed inside it or a foreign
	// writer interleaved, and the only sound continuation is the
	// caller's explicit RepinRoot — re-pinning silently here would let a
	// misbehaving server swap the trust anchor under a call that then
	// reports success. Until the caller resyncs, verified selects fail
	// with a root mismatch naming the same recovery path.
	if err := db.advanceRootBatch(chunks, acks, acked); err != nil {
		err = fmt.Errorf("client: batch inserted but the pinned root could not be advanced (%v) — call RepinRoot to resync", err)
		if firstErr == nil {
			firstErr = err
		} else {
			firstErr = fmt.Errorf("%w; additionally: %v", firstErr, err)
		}
	}
	return firstErr
}

// advanceRootBatch folds the acked chunks of one InsertBatch into the
// pinned root, in server-side landing order. It fails (without touching
// the pin) when the acks do not contiguously extend the frontier.
func (db *DB) advanceRootBatch(chunks [][]ph.EncryptedTuple, acks []InsertAck, acked []bool) error {
	idx := make([]int, 0, len(chunks))
	for i := range chunks {
		if acked[i] {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return acks[idx[a]].Base < acks[idx[b]].Base })
	next := db.frontier.Count()
	for _, i := range idx {
		if acks[i].Base != next {
			return fmt.Errorf("client: chunk landed at %d, frontier at %d", acks[i].Base, next)
		}
		next += len(chunks[i])
	}
	// Contiguity proven; now actually advance.
	var version uint64
	for _, i := range idx {
		for _, tp := range chunks[i] {
			db.frontier.AppendTuple(tp)
		}
		if acks[i].Version > version {
			version = acks[i].Version
		}
	}
	db.root = db.frontier.Root()
	db.rootTuples = db.frontier.Count()
	if version != 0 {
		db.rootVersion = version
	}
	return nil
}

// Select runs one exact select end to end: encrypt the query, evaluate it
// at the server, decrypt, filter false positives. If a root is pinned, it
// runs as a VerifiedQuery: one round trip whose result, proofs and root
// come from the same server snapshot (extension). With read replicas
// configured, the query is served from a replica when one answers
// (withRead), failing over to the primary otherwise.
func (db *DB) Select(q relation.Eq) (*relation.Table, error) {
	if db.pinned() {
		return db.VerifiedQuery(q)
	}
	eq, err := db.scheme.EncryptQuery(q)
	if err != nil {
		return nil, err
	}
	if db.cluster != nil {
		return db.selectSharded(q, eq)
	}
	var res *ph.Result
	if err := db.withRead(func(c *Conn) error {
		r, err := c.Query(db.table, eq)
		if err != nil {
			return err
		}
		res = r
		return nil
	}); err != nil {
		return nil, err
	}
	return db.scheme.DecryptResult(q, res)
}

// VerifiedQuery runs one exact select through the one-round verified
// protocol: the server answers with (result, proofs, root, leaf count,
// version) cut from a single table snapshot. Every returned tuple is
// verified against the *pinned* root before decryption; any mismatch —
// wrong root, wrong count, missing or misplaced proof, failed hash chain
// — refuses the answer. Because proofs travel with the root they belong
// to, a mutation racing the query can never make an honest answer fail
// (the legacy Root-then-Prove TOCTOU); what a mismatch now means is that
// the *table* no longer matches the client's pin — tampering, or a
// foreign writer the client must acknowledge via RepinRoot.
func (db *DB) VerifiedQuery(q relation.Eq) (*relation.Table, error) {
	if !db.pinned() {
		return nil, fmt.Errorf("client: VerifiedQuery without a pinned root (CreateTable or PinRoot first)")
	}
	eq, err := db.scheme.EncryptQuery(q)
	if err != nil {
		return nil, err
	}
	if db.cluster != nil {
		return db.verifiedQuerySharded(q, eq)
	}
	// The whole read — round trip AND pinned-root verification — runs
	// inside withRead, so a stale or Byzantine replica fails like a dead
	// one: quarantined, and the query retried elsewhere.
	var vr *authindex.VerifiedResult
	if err := db.withRead(func(c *Conn) error {
		r, err := c.QueryVerified(db.table, eq)
		if err != nil {
			return err
		}
		if err := db.checkVerified(r); err != nil {
			return err
		}
		vr = r
		return nil
	}); err != nil {
		return nil, err
	}
	db.rootVersion = vr.Version
	return db.scheme.DecryptResult(q, vr.Result)
}

// SelectMany runs several exact selects and returns the decrypted,
// filtered result per query (order preserved). With a pinned root each
// select runs through the same one-round verified-read discipline as
// Select — replica-routed (withRead), result and proofs from one server
// snapshot — at the cost of one round trip per query; only against
// servers predating CmdQueryVerified does it fall back to the legacy
// batched two-round path (batch + Prove, with verifyResult's caveat),
// mirroring how SelectConj falls back to SelectConjLegacy. Without a
// pin it stays a single batched round trip, now routed through withRead
// so replicas serve it and a dead one costs a failover, not the query.
// On a sharded DB every select scatters to all shards.
func (db *DB) SelectMany(qs []relation.Eq) ([]*relation.Table, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	if db.pinned() {
		out, err := db.selectManyVerified(qs)
		if !IsUnsupported(err) {
			return out, err
		}
		// The server predates the one-round verified protocol: fall
		// through to the legacy batch whose results verify via the
		// two-round Prove path inside the same routed attempt.
	}
	eqs := make([]*ph.EncryptedQuery, len(qs))
	for i, q := range qs {
		eq, err := db.scheme.EncryptQuery(q)
		if err != nil {
			return nil, err
		}
		eqs[i] = eq
	}
	var results []*ph.Result
	if db.cluster != nil {
		merged, err := db.queryBatchSharded(eqs)
		if err != nil {
			return nil, err
		}
		results = merged
	} else if err := db.withRead(func(c *Conn) error {
		rs, err := c.QueryBatch(db.table, eqs)
		if err != nil {
			return err
		}
		if db.root != nil {
			// Verification runs inside the routed attempt, against the
			// same connection that served the batch: a stale or lying
			// replica fails here and is quarantined, and the batch is
			// retried elsewhere rather than poisoning the answer.
			for _, res := range rs {
				if err := db.verifyResult(c, res); err != nil {
					return err
				}
			}
		}
		results = rs
		return nil
	}); err != nil {
		return nil, err
	}
	out := make([]*relation.Table, len(results))
	var err error
	for i, res := range results {
		if out[i], err = db.scheme.DecryptResult(qs[i], res); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// selectManyVerified serves SelectMany through one VerifiedQuery per
// select: each answer is snapshot-consistent and replica-routed.
func (db *DB) selectManyVerified(qs []relation.Eq) ([]*relation.Table, error) {
	out := make([]*relation.Table, len(qs))
	for i, q := range qs {
		t, err := db.VerifiedQuery(q)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// verifyResult checks inclusion proofs for every returned tuple against
// the pinned root, via the legacy two-round protocol (the result arrived
// earlier; the proofs are fetched now, over the same connection). Caveat,
// by construction of the two rounds: a mutation landing between result
// and proofs yields proofs for a tree the pinned root does not describe,
// so an *honest* answer can fail verification under concurrent writes.
// The legacy SelectMany fallback accepts this for the sake of the batched
// round trip; everything else uses the race-free VerifiedQuery instead.
func (db *DB) verifyResult(c *Conn, res *ph.Result) error {
	if len(res.Positions) == 0 {
		return nil
	}
	proofs, err := c.Prove(db.table, res.Positions)
	if err != nil {
		return err
	}
	if len(proofs) != len(res.Tuples) {
		return fmt.Errorf("client: %d proofs for %d result tuples", len(proofs), len(res.Tuples))
	}
	for i, p := range proofs {
		// Same strictly-ascending discipline as checkVerified: a repeated
		// position with a valid proof must not inflate the result.
		if i > 0 && res.Positions[i] <= res.Positions[i-1] {
			return fmt.Errorf("client: verification failed: result positions not strictly ascending (%d after %d) — duplicated or reordered tuples", res.Positions[i], res.Positions[i-1])
		}
		if p.Position != res.Positions[i] {
			return fmt.Errorf("client: proof %d speaks about position %d, want %d", i, p.Position, res.Positions[i])
		}
		if err := authindex.Verify(db.root, db.rootTuples, res.Tuples[i], p); err != nil {
			return fmt.Errorf("client: result tuple %d failed verification: %w", i, err)
		}
	}
	return nil
}

// SelectAll downloads and decrypts the whole table (every shard's
// partition, concatenated, on a sharded DB).
func (db *DB) SelectAll() (*relation.Table, error) {
	if db.cluster != nil {
		return db.selectAllSharded()
	}
	ct, err := db.conn.FetchAll(db.table)
	if err != nil {
		return nil, err
	}
	return db.scheme.DecryptTable(ct)
}

// Query executes a mini-SQL statement. A single equality runs as one
// homomorphic select through Select — which, with a pinned root, is the
// one-round verified protocol, so Query never silently downgrades a
// verified client to the unverified path. A conjunction is pushed down
// as one CmdQueryConj: the server's planner intersects the per-conjunct
// position sets and returns only the matching tuples (verified against
// the pinned root when one is set; see SelectConj for what conjunctive
// verification does and does not promise). Servers predating the
// pushdown are detected by their unknown-command error and served via
// the legacy SelectConjLegacy intersection. An absent WHERE clause falls
// back to a full download; projections apply after decryption.
func (db *DB) Query(sql string) (*relation.Table, error) {
	q, err := sqlmini.Parse(sql)
	if err != nil {
		return nil, err
	}
	eqs, err := db.bindWhere(q)
	if err != nil {
		return nil, err
	}
	var out *relation.Table
	switch len(eqs) {
	case 0:
		out, err = db.SelectAll()
	case 1:
		out, err = db.Select(eqs[0])
	default:
		out, err = db.SelectConj(eqs)
		if IsUnsupported(err) {
			out, err = db.SelectConjLegacy(eqs)
		}
	}
	if err != nil {
		return nil, err
	}
	if q.Projection != nil {
		return relation.Project(out, q.Projection...)
	}
	return out, nil
}

// bindWhere checks the statement addresses this DB's table and binds its
// WHERE conjuncts against the schema.
func (db *DB) bindWhere(q *sqlmini.Query) ([]relation.Eq, error) {
	if q.Table != db.scheme.Schema().Name && q.Table != db.table {
		return nil, fmt.Errorf("client: query addresses table %q, this client serves %q (schema %q)",
			q.Table, db.table, db.scheme.Schema().Name)
	}
	eqs := make([]relation.Eq, len(q.Where))
	for i, cond := range q.Where {
		eq, err := cond.Bind(db.scheme.Schema())
		if err != nil {
			return nil, err
		}
		eqs[i] = eq
	}
	return eqs, nil
}

// encryptConj encrypts one token per conjunct.
func (db *DB) encryptConj(eqs []relation.Eq) ([]*ph.EncryptedQuery, error) {
	qs := make([]*ph.EncryptedQuery, len(eqs))
	for i, eq := range eqs {
		q, err := db.scheme.EncryptQuery(eq)
		if err != nil {
			return nil, err
		}
		qs[i] = q
	}
	return qs, nil
}

// SelectConj runs a conjunctive exact select through the server-side
// planner: one round trip, and only the tuples in the intersection come
// back. With a pinned root the request is verified — every returned
// tuple travels with an inclusion proof cut from the same snapshot as
// the result, checked against the pinned root before decryption exactly
// like VerifiedQuery. As everywhere in the authenticated extension, the
// proofs authenticate *inclusion* of what was returned, not completeness
// of the intersection: a malicious server may still withhold matches
// (for conjunctions as for single selects; see authindex's scope note).
// Decryption filters checksum false positives by re-evaluating the full
// conjunction on the plaintext, so pushdown answers are exactly the
// legacy path's answers.
func (db *DB) SelectConj(eqs []relation.Eq) (*relation.Table, error) {
	if len(eqs) == 0 {
		return nil, fmt.Errorf("client: empty conjunction")
	}
	qs, err := db.encryptConj(eqs)
	if err != nil {
		return nil, err
	}
	if db.cluster != nil {
		return db.selectConjSharded(eqs, qs)
	}
	// As in VerifiedQuery, verification runs inside withRead so replica
	// answers are held to the pinned root before they count as served.
	var res *ph.Result
	var version uint64
	if err := db.withRead(func(c *Conn) error {
		resp, err := c.QueryConj(db.table, qs, db.root != nil)
		if err != nil {
			return err
		}
		r := resp.Result
		if db.root != nil {
			vr := resp.Verified
			if vr == nil {
				return fmt.Errorf("client: server answered a verified conjunctive query without proofs")
			}
			if err := db.checkVerified(vr); err != nil {
				return err
			}
			version = vr.Version
			r = vr.Result
		}
		if r == nil {
			return fmt.Errorf("client: conjunctive query answered without a result")
		}
		res = r
		return nil
	}); err != nil {
		return nil, err
	}
	if db.root != nil {
		db.rootVersion = version
	}
	return db.decryptConj(eqs, res)
}

// decryptConj decrypts an intersection result and filters false
// positives against every conjunct: DecryptResult re-evaluates the
// first, relation.Select the rest.
func (db *DB) decryptConj(eqs []relation.Eq, res *ph.Result) (*relation.Table, error) {
	out, err := db.scheme.DecryptResult(eqs[0], res)
	if err != nil {
		return nil, err
	}
	if len(eqs) == 1 {
		return out, nil
	}
	rest := make([]relation.Pred, len(eqs)-1)
	for i, eq := range eqs[1:] {
		rest[i] = eq
	}
	return relation.Select(out, relation.And{Preds: rest})
}

// SelectConjLegacy evaluates a conjunction the pre-pushdown way: one
// batched round trip fetching every conjunct's full match set, then
// decryption and relation.Intersect client-side. It remains only as the
// compatibility fallback for servers without CmdQueryConj (and as the
// before-side of experiment E17); it transfers and decrypts work
// proportional to the *least* selective conjunct, and with a pinned root
// it verifies through the legacy two-round Prove path with the caveat
// documented on verifyResult.
func (db *DB) SelectConjLegacy(eqs []relation.Eq) (*relation.Table, error) {
	if len(eqs) == 0 {
		return nil, fmt.Errorf("client: empty conjunction")
	}
	parts, err := db.SelectMany(eqs)
	if err != nil {
		return nil, err
	}
	out := parts[0]
	for _, part := range parts[1:] {
		out, err = relation.Intersect(out, part)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// checkVerified verifies a one-round verified answer against the pinned
// root: root and leaf count must match the pin, and every returned tuple
// must carry a proof for its position that hashes back to the root.
func (db *DB) checkVerified(vr *authindex.VerifiedResult) error {
	return checkVerifiedAgainst(db.root, db.rootTuples, vr)
}

// checkVerifiedAgainst verifies a one-round verified answer against an
// explicit (root, leaf count) pin. It is the single verification
// discipline behind both anchors the client can hold: DB's one pinned
// root, and — in sharded mode — each entry of the pinned root *vector*,
// where every shard's sub-answer is checked against that shard's own
// root (the root-of-roots argument: trusting the vector is trusting
// every shard's tree, so one mutated tuple on one shard fails its entry
// and with it the whole read).
func checkVerifiedAgainst(root []byte, tuples int, vr *authindex.VerifiedResult) error {
	if !bytes.Equal(vr.Root, root) || vr.Leaves != tuples {
		return fmt.Errorf("client: verification failed: server root does not match the pinned root (server %d tuples, pinned %d) — tampering or unacknowledged external writes", vr.Leaves, tuples)
	}
	if len(vr.Proofs) != len(vr.Result.Tuples) || len(vr.Result.Tuples) != len(vr.Result.Positions) {
		return fmt.Errorf("client: verification failed: %d proofs for %d tuples at %d positions", len(vr.Proofs), len(vr.Result.Tuples), len(vr.Result.Positions))
	}
	for i, p := range vr.Proofs {
		// Positions must be strictly ascending: inclusion proofs say a
		// tuple IS at a position, not how often the server may list it —
		// without this check a malicious server could repeat one tuple
		// (with its valid proof) to inflate the result multiset.
		if i > 0 && vr.Result.Positions[i] <= vr.Result.Positions[i-1] {
			return fmt.Errorf("client: verification failed: result positions not strictly ascending (%d after %d) — duplicated or reordered tuples", vr.Result.Positions[i], vr.Result.Positions[i-1])
		}
		if p.Position != vr.Result.Positions[i] {
			return fmt.Errorf("client: verification failed: proof %d speaks about position %d, want %d", i, p.Position, vr.Result.Positions[i])
		}
		if err := authindex.Verify(root, tuples, vr.Result.Tuples[i], p); err != nil {
			return fmt.Errorf("client: result tuple %d failed verification: %w", i, err)
		}
	}
	return nil
}

// Explain returns the server's plan for a statement without executing
// it: conjunct evaluation order, estimated selectivities (from the
// server's per-table sketch and result cache) and each conjunct's
// predicted serving path, rendered against the statement's plaintext
// conditions. Single-equality and full-download statements are described
// locally — there is nothing to plan.
func (db *DB) Explain(sql string) (string, error) {
	q, err := sqlmini.Parse(sql)
	if err != nil {
		return "", err
	}
	eqs, err := db.bindWhere(q)
	if err != nil {
		return "", err
	}
	switch len(eqs) {
	case 0:
		return fmt.Sprintf("plan for %s: full table download (no WHERE clause)\n", db.table), nil
	case 1:
		path := "single select (CmdQuery)"
		if db.pinned() {
			path = "one-round verified select (CmdQueryVerified)"
		}
		if db.cluster != nil {
			path += fmt.Sprintf(", scattered to %d shards", db.cluster.NumShards())
		}
		return fmt.Sprintf("plan for %s: %s on %s\n", db.table, path, eqs[0]), nil
	}
	qs, err := db.encryptConj(eqs)
	if err != nil {
		return "", err
	}
	var info *query.PlanInfo
	if db.cluster != nil {
		// Each shard plans against its own sketch (conjunct order adapts
		// to per-shard skew); the merged summary adds the coordinator-side
		// merge view of their costs.
		info, err = db.cluster.ExplainConj(db.table, qs)
	} else {
		info, err = db.conn.ExplainConj(db.table, qs)
	}
	if err != nil {
		return "", err
	}
	labels := make([]string, len(eqs))
	for i, eq := range eqs {
		labels[i] = eq.String()
	}
	return info.Render(db.table, labels), nil
}
