package authindex

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

// FuzzDecodeProofsVerify drives attacker-controlled bytes through the
// proof decoder and the verifier: whatever DecodeProofs accepts must
// never panic Verify, must never allocate count-proportional memory for
// a lying declared count, and — the soundness property — must only
// verify when it is byte-for-byte the honest proof for the claimed
// (tuple, position, root, leaf count).
func FuzzDecodeProofsVerify(f *testing.F) {
	// Honest encodings at odd and even leaf counts seed the corpus, plus
	// targeted mutants: swapped positions, truncated and extra siblings,
	// flipped sibling bytes, malformed sibling widths, hostile counts.
	for _, n := range []int{1, 2, 3, 5, 8, 9, 16, 17} {
		tab := tableOf(n)
		tree := Build(tab)
		positions := make([]int, n)
		for i := range positions {
			positions[i] = i
		}
		proofs, err := tree.Prove(positions)
		if err != nil {
			f.Fatal(err)
		}
		honest := EncodeProofs(nil, proofs)
		f.Add(honest, uint16(n))

		// Swapped positions: proof i claims proof (i+1)'s position.
		swapped := make([]Proof, len(proofs))
		copy(swapped, proofs)
		if n >= 2 {
			swapped[0], swapped[1] = swapped[1], swapped[0]
			f.Add(EncodeProofs(nil, swapped), uint16(n))
		}
		// Truncated siblings on the first proof.
		if len(proofs[0].Siblings) > 0 {
			trunc := Proof{Position: proofs[0].Position, Siblings: proofs[0].Siblings[1:]}
			f.Add(EncodeProofs(nil, []Proof{trunc}), uint16(n))
		}
		// Extra sibling appended.
		extra := Proof{Position: proofs[0].Position,
			Siblings: append(append([][]byte{}, proofs[0].Siblings...), make([]byte, HashSize))}
		f.Add(EncodeProofs(nil, []Proof{extra}), uint16(n))
		// Flipped sibling byte.
		if len(proofs[0].Siblings) > 0 {
			mut := Proof{Position: proofs[0].Position,
				Siblings: append([][]byte{}, proofs[0].Siblings...)}
			mut.Siblings[0] = append([]byte(nil), mut.Siblings[0]...)
			mut.Siblings[0][0] ^= 1
			f.Add(EncodeProofs(nil, []Proof{mut}), uint16(n))
		}
		// Malformed sibling width.
		f.Add(EncodeProofs(nil, []Proof{{Position: 0, Siblings: [][]byte{{1, 2, 3}}}}), uint16(n))
	}
	// Hostile declared counts over tiny payloads.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, uint16(8))
	f.Add(wire.AppendU32(wire.AppendU32(nil, 1), 0xFFFFFFFF), uint16(8))
	f.Add([]byte{}, uint16(8))

	f.Fuzz(func(t *testing.T, data []byte, leafRaw uint16) {
		n := int(leafRaw)%40 + 1
		tab := tableOf(n)
		tree := Build(tab)
		root := tree.Root()

		proofs, err := DecodeProofs(wire.NewBuffer(data))
		if err != nil {
			return // malformed encodings must be rejected, never panic
		}
		for _, p := range proofs {
			if p.Position < 0 || p.Position >= n {
				if Verify(root, n, tab.Tuples[0], p) == nil {
					t.Fatalf("out-of-range position %d verified", p.Position)
				}
				continue
			}
			err := Verify(root, n, tab.Tuples[p.Position], p)
			// Soundness: a decoded proof may only verify if it is exactly
			// the honest proof for (position, n).
			honest, herr := tree.Prove([]int{p.Position})
			if herr != nil {
				t.Fatalf("Prove(%d) on honest tree: %v", p.Position, herr)
			}
			same := len(p.Siblings) == len(honest[0].Siblings)
			if same {
				for i := range p.Siblings {
					if !bytes.Equal(p.Siblings[i], honest[0].Siblings[i]) {
						same = false
						break
					}
				}
			}
			if same && err != nil {
				t.Fatalf("honest proof for position %d rejected: %v", p.Position, err)
			}
			if !same && err == nil {
				t.Fatalf("forged proof for position %d accepted (siblings differ from honest)", p.Position)
			}
		}
	})
}
